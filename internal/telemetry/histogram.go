package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency bucket layout in seconds: 25µs to
// 10s, roughly 1-2.5-5 per decade — wide enough to cover a cache-hit
// /ask (tens of microseconds) and a split-and-merge flush (seconds) in
// one schema.
var DefBuckets = []float64{
	0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets is a bucket layout for small cardinalities (cluster
// sizes, solver iterations, replayed records).
var CountBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256, 512, 1024}

// SizeBuckets is a bucket layout for byte sizes (WAL records), 64B-16MB.
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}

// Histogram is a fixed-bucket histogram: per-bucket atomic counters, an
// atomic running sum, and a total count. Observations are lock-free;
// concurrent scrapes see each component atomically (the exposition
// format does not require a consistent multi-component snapshot).
type Histogram struct {
	now    func() time.Time
	bounds []float64       // inclusive upper bounds, strictly increasing
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(bounds []float64, now func() time.Time) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	if now == nil {
		now = time.Now
	}
	return &Histogram{
		now:    now,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewHistogram returns an unregistered histogram (nil bounds =
// DefBuckets, nil now = time.Now); tests and ad-hoc measurement use it
// directly.
func NewHistogram(bounds []float64, now func() time.Time) *Histogram {
	return newHistogram(bounds, now)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Start begins timing on the histogram's clock and returns a stop
// function that observes the elapsed seconds. Safe on a nil histogram
// (returns a no-op stop).
func (h *Histogram) Start() func() {
	if h == nil {
		return func() {}
	}
	t0 := h.now()
	return func() { h.Observe(h.now().Sub(t0).Seconds()) }
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketCount returns the (non-cumulative) count of bucket i, where
// i == len(bounds) addresses the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// Bounds returns the finite upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// inside the bucket containing the target rank — the standard
// fixed-bucket estimate, exact in tests that align observations with
// bucket bounds. Values in the +Inf bucket clamp to the largest finite
// bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: no finite upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			return lower + (upper-lower)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// atomicFloat is a float64 accumulated with CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 {
	return math.Float64frombits(f.bits.Load())
}
