package telemetry

import (
	"strings"
	"testing"
)

// TestParseRoundTrip feeds a real registry's scrape back through the
// parser and checks the values survive.
func TestParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("kgvote_rt_total", "Round trips.", Labels{"route": "/ask"}).Add(7)
	reg.Gauge("kgvote_rt_depth", "", nil).Set(-3)
	h := reg.Histogram("kgvote_rt_seconds", "", nil, []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if exp.Types["kgvote_rt_total"] != "counter" || exp.Types["kgvote_rt_seconds"] != "histogram" {
		t.Fatalf("types = %v", exp.Types)
	}
	if exp.Help["kgvote_rt_total"] != "Round trips." {
		t.Fatalf("help = %v", exp.Help)
	}
	if v, ok := exp.Value("kgvote_rt_total", map[string]string{"route": "/ask"}); !ok || v != 7 {
		t.Fatalf("counter value = %g ok=%v", v, ok)
	}
	if v, ok := exp.Value("kgvote_rt_depth", nil); !ok || v != -3 {
		t.Fatalf("gauge value = %g ok=%v", v, ok)
	}
	if v, ok := exp.Value("kgvote_rt_seconds_bucket", map[string]string{"le": "2"}); !ok || v != 2 {
		t.Fatalf("cumulative bucket le=2 = %g ok=%v", v, ok)
	}
	if v, ok := exp.Value("kgvote_rt_seconds_count", nil); !ok || v != 2 {
		t.Fatalf("count = %g ok=%v", v, ok)
	}
	// 3 series for counter+gauge, histogram = 3 buckets + sum + count.
	if got := exp.Series(); got != 7 {
		t.Fatalf("series = %d, want 7", got)
	}
	fams := exp.Families()
	if len(fams) != 3 {
		t.Fatalf("families = %v, want 3 (histogram components collapsed)", fams)
	}
	if err := exp.CheckHistograms(); err != nil {
		t.Fatalf("histogram invariants: %v", err)
	}
}

// TestParseEscapedLabels checks the escape decoding matches the
// writer's encoding exactly.
func TestParseEscapedLabels(t *testing.T) {
	reg := NewRegistry()
	raw := "a\\b\"c\nd"
	reg.Counter("kgvote_esc_total", "", Labels{"path": raw}).Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := exp.Value("kgvote_esc_total", map[string]string{"path": raw}); !ok || v != 1 {
		t.Fatalf("escaped label did not round-trip: %+v", exp.Samples)
	}
}

// TestParseRejects is the negative table: every malformed input must be
// an error, not a silent skip.
func TestParseRejects(t *testing.T) {
	cases := []struct{ name, in string }{
		{"malformed TYPE", "# TYPE kgvote_x\n"},
		{"unknown type", "# TYPE kgvote_x flavor\n"},
		{"invalid name in TYPE", "# TYPE 9bad counter\n"},
		{"retyped family", "# TYPE kgvote_x counter\n# TYPE kgvote_x gauge\n"},
		{"invalid sample name", "9bad 1\n"},
		{"missing value", "kgvote_x\n"},
		{"garbage value", "kgvote_x one\n"},
		{"trailing junk", "kgvote_x 1 2 3\n"},
		{"bad timestamp", "kgvote_x 1 later\n"},
		{"unterminated labels", "kgvote_x{a=\"b\" 1\n"},
		{"unquoted label value", "kgvote_x{a=b} 1\n"},
		{"invalid label name", "kgvote_x{9a=\"b\"} 1\n"},
		{"duplicate label", "kgvote_x{a=\"1\",a=\"2\"} 1\n"},
		{"unknown escape", "kgvote_x{a=\"\\t\"} 1\n"},
		{"dangling escape", "kgvote_x{a=\"b\\\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseExposition(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("input %q parsed without error", tc.in)
			}
		})
	}
}

// TestCheckHistogramInvariants hand-writes broken histogram scrapes the
// parser accepts but the checker must reject.
func TestCheckHistogramInvariants(t *testing.T) {
	cases := []struct{ name, in string }{
		{
			"non-monotonic buckets",
			"# TYPE kgvote_h histogram\n" +
				"kgvote_h_bucket{le=\"1\"} 5\n" +
				"kgvote_h_bucket{le=\"2\"} 3\n" +
				"kgvote_h_bucket{le=\"+Inf\"} 6\n" +
				"kgvote_h_sum 1\nkgvote_h_count 6\n",
		},
		{
			"count disagrees with +Inf bucket",
			"# TYPE kgvote_h histogram\n" +
				"kgvote_h_bucket{le=\"1\"} 1\n" +
				"kgvote_h_bucket{le=\"+Inf\"} 2\n" +
				"kgvote_h_sum 1\nkgvote_h_count 3\n",
		},
		{
			"missing +Inf bucket",
			"# TYPE kgvote_h histogram\n" +
				"kgvote_h_bucket{le=\"1\"} 1\n" +
				"kgvote_h_sum 1\nkgvote_h_count 1\n",
		},
		{
			"zero observations with nonzero sum",
			"# TYPE kgvote_h histogram\n" +
				"kgvote_h_bucket{le=\"1\"} 0\n" +
				"kgvote_h_bucket{le=\"+Inf\"} 0\n" +
				"kgvote_h_sum 4\nkgvote_h_count 0\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := CheckExposition(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("checker accepted broken scrape:\n%s", tc.in)
			}
		})
	}
	// And a well-formed one passes with the right series count.
	ok := "# TYPE kgvote_h histogram\n" +
		"kgvote_h_bucket{le=\"1\"} 1\n" +
		"kgvote_h_bucket{le=\"+Inf\"} 2\n" +
		"kgvote_h_sum 3\nkgvote_h_count 2\n"
	n, err := CheckExposition(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid scrape rejected: %v", err)
	}
	if n != 4 {
		t.Fatalf("series = %d, want 4", n)
	}
}
