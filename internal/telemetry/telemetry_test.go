package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable test clock: tests advance it explicitly,
// so histogram and trace durations are exact instead of sleep-derived.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestCounter(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("kgvote_test_ops_total", "Ops.", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("kgvote_test_depth", "Depth.", nil)
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryAndNilMetricsAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("kgvote_x_total", "", nil)
	g := reg.Gauge("kgvote_x", "", nil)
	h := reg.Histogram("kgvote_x_seconds", "", nil, nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil metrics, got %v %v %v", c, g, h)
	}
	// Every method must be callable without panicking.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.Start()()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if h.Quantile(0.5) != 0 || h.Bounds() != nil || h.BucketCount(0) != 0 {
		t.Fatal("nil histogram reads must be zero")
	}
	reg.GaugeFunc("kgvote_x_fn", "", nil, func() float64 { return 1 })
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	tr := reg.NewTrace("id-1")
	if tr == nil || tr.ID() != "id-1" {
		t.Fatal("nil registry must still mint real traces")
	}
}

func TestGetOrCreateReturnsSameMetric(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("kgvote_test_total", "", Labels{"route": "/ask"})
	b := reg.Counter("kgvote_test_total", "", Labels{"route": "/ask"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := reg.Counter("kgvote_test_total", "", Labels{"route": "/vote"})
	if a == c {
		t.Fatal("different labels must return distinct counters")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Fatalf("shared/distinct confusion: b=%d c=%d", b.Value(), c.Value())
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("kgvote_test_total", "", nil)
	mustPanic("kind conflict", func() { reg.Gauge("kgvote_test_total", "", nil) })
	mustPanic("invalid metric name", func() { reg.Counter("9starts_with_digit", "", nil) })
	mustPanic("invalid metric name chars", func() { reg.Counter("has space", "", nil) })
	mustPanic("invalid label name", func() {
		reg.Counter("kgvote_ok_total", "", Labels{"bad-label": "x"})
	})
	mustPanic("non-increasing bounds", func() {
		reg.Histogram("kgvote_h_seconds", "", nil, []float64{1, 1})
	})
}

func TestFuncSeriesReplaceOnReregister(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("kgvote_test_live", "", nil, func() float64 { return 1 })
	reg.GaugeFunc("kgvote_test_live", "", nil, func() float64 { return 2 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "kgvote_test_live 2\n") {
		t.Fatalf("re-registered GaugeFunc must win the series:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "kgvote_test_live 1") {
		t.Fatalf("stale GaugeFunc still emitted:\n%s", sb.String())
	}
}

func TestHistogramExactBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("kgvote_test_seconds", "", nil, []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 9} {
		h.Observe(v)
	}
	// Upper bounds are inclusive: 1 lands in the le=1 bucket, 4 in le=4.
	want := []uint64{2, 2, 2, 1} // (≤1)=0.5,1  (≤2)=1.5,2  (≤4)=3,4  (+Inf)=9
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if sum := h.Sum(); sum != 21 {
		t.Fatalf("sum = %g, want 21", sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4}, nil)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 4; i++ {
		h.Observe(0.5) // bucket le=1
		h.Observe(1.5) // bucket le=2
	}
	cases := []struct{ q, want float64 }{
		{0.5, 1},    // rank 4: end of first bucket
		{0.25, 0.5}, // rank 2: halfway through first bucket
		{0.75, 1.5}, // rank 6: halfway through second bucket
		{1, 2},      // rank 8: end of second bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// +Inf bucket clamps to the largest finite bound.
	h2 := NewHistogram([]float64{1, 2, 4}, nil)
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 4 {
		t.Fatalf("+Inf quantile = %g, want clamp to 4", got)
	}
}

func TestHistogramTimerOnFakeClock(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistryWithClock(clk.now)
	h := reg.Histogram("kgvote_test_seconds", "", nil, []float64{0.1, 0.5, 1})
	stop := h.Start()
	clk.advance(250 * time.Millisecond)
	stop()
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Sum() != 0.25 {
		t.Fatalf("sum = %g, want exactly 0.25 (fake clock)", h.Sum())
	}
	if h.BucketCount(1) != 1 { // 0.25 ∈ (0.1, 0.5]
		t.Fatalf("0.25 must land in the le=0.5 bucket, got %v %v %v",
			h.BucketCount(0), h.BucketCount(1), h.BucketCount(2))
	}
}

func TestTraceStagesOnFakeClock(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistryWithClock(clk.now)
	tr := reg.NewTrace("req-42")
	stop := tr.Stage("seed")
	clk.advance(100 * time.Microsecond)
	stop()
	stop = tr.Stage("rank")
	clk.advance(2 * time.Millisecond)
	stop()
	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %v, want 2", stages)
	}
	if stages[0].Name != "seed" || stages[0].Micros != 100 {
		t.Fatalf("seed stage = %+v, want 100µs", stages[0])
	}
	if stages[1].Name != "rank" || stages[1].Micros != 2000 {
		t.Fatalf("rank stage = %+v, want 2000µs", stages[1])
	}
	if got := tr.Elapsed(); got != 2100*time.Microsecond {
		t.Fatalf("elapsed = %s, want 2.1ms", got)
	}
	s := tr.String()
	if !strings.HasPrefix(s, "req-42 ") || !strings.Contains(s, "seed=100.0µs") {
		t.Fatalf("trace string = %q", s)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Stage("x")()
	tr.Observe("y", time.Second)
	if tr.ID() != "" || tr.Stages() != nil || tr.Elapsed() != 0 || tr.String() != "" {
		t.Fatal("nil trace must read as empty")
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil trace")
	}
	tr := NewTrace("ctx-1", nil)
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want the attached trace", got)
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}

func TestWithLabelsScopedViews(t *testing.T) {
	r := NewRegistry()
	a := r.WithLabels(Labels{"tenant": "a"})
	b := r.WithLabels(Labels{"tenant": "b"})

	a.Counter("kgvote_test_total", "h", nil).Add(1)
	b.Counter("kgvote_test_total", "h", nil).Add(2)
	r.Counter("kgvote_test_total", "h", nil).Add(4)

	// Same name+labels through the same view is the same series.
	a.Counter("kgvote_test_total", "h", nil).Add(10)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`kgvote_test_total{tenant="a"} 11`,
		`kgvote_test_total{tenant="b"} 2`,
		"\nkgvote_test_total 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	// One family: exactly one TYPE line even with three views writing.
	if got := strings.Count(out, "# TYPE kgvote_test_total"); got != 1 {
		t.Fatalf("TYPE lines = %d, want 1 (views must share the family table)", got)
	}

	// A view's scrape is the root's scrape — storage is shared.
	var fromView strings.Builder
	if err := a.WritePrometheus(&fromView); err != nil {
		t.Fatal(err)
	}
	if fromView.String() != out {
		t.Fatal("scoped view scrape differs from root scrape")
	}

	// Per-call labels win on collision; base labels stack across nesting.
	nested := a.WithLabels(Labels{"shard": "0"})
	nested.Gauge("kgvote_test_gauge", "h", Labels{"tenant": "override"}).Set(7)
	var buf2 strings.Builder
	_ = r.WritePrometheus(&buf2)
	if !strings.Contains(buf2.String(), `kgvote_test_gauge{shard="0",tenant="override"} 7`) {
		t.Fatalf("nested/overridden labels wrong:\n%s", buf2.String())
	}

	// Nil stays no-op through the chain.
	var nilReg *Registry
	if nilReg.WithLabels(Labels{"x": "y"}) != nil {
		t.Fatal("nil registry must scope to nil")
	}
}
