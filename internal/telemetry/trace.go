package telemetry

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Trace records the stage timings of one request: the server mints (or
// accepts via X-Request-ID) an ID, threads the Trace through the
// request context, and handlers bracket their stages with Stage. The
// recorded spans come back inline on /ask?trace=1 and in slow-request
// log lines.
//
// A nil *Trace is valid everywhere and records nothing, so the serving
// path stays branch-free when tracing is off.
type Trace struct {
	id    string
	now   func() time.Time
	start time.Time

	mu     sync.Mutex
	stages []Stage
}

// Stage is one completed span of a trace, with its duration in
// microseconds (the natural unit of the serving path).
type Stage struct {
	Name   string  `json:"name"`
	Micros float64 `json:"us"`
}

// NewTrace starts a trace on the given clock (nil = time.Now).
func NewTrace(id string, now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	return &Trace{id: id, now: now, start: now()}
}

// ID returns the request ID the trace was started with.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Stage begins a named span and returns the function that ends it.
func (t *Trace) Stage(name string) func() {
	if t == nil {
		return func() {}
	}
	t0 := t.now()
	return func() { t.Observe(name, t.now().Sub(t0)) }
}

// Observe records a completed span directly.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Micros: float64(d.Nanoseconds()) / 1e3})
	t.mu.Unlock()
}

// Stages returns the recorded spans in completion order.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Stage(nil), t.stages...)
}

// Elapsed is the time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return t.now().Sub(t.start)
}

// String renders the trace for log lines: "id stage=12.3µs ...".
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	s := t.id
	for _, st := range t.Stages() {
		s += fmt.Sprintf(" %s=%.1fµs", st.Name, st.Micros)
	}
	return s
}

type traceKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// reqSeq numbers minted request IDs within this process.
var reqSeq atomic.Uint64

// reqPrefix makes IDs from different processes distinguishable without
// coordination; it is fixed at init.
var reqPrefix = fmt.Sprintf("%x-%x", os.Getpid(), time.Now().UnixNano()&0xffffff)

// NewRequestID mints a process-unique request ID for requests that did
// not carry an X-Request-ID header.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqSeq.Add(1))
}
