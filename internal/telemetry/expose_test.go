package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExposition is the table-driven format check: each case builds a
// registry and asserts the exact rendered scrape, so any formatting
// drift (escaping, float spelling, bucket cumulation, ordering) fails
// with a readable diff.
func TestExposition(t *testing.T) {
	cases := []struct {
		name  string
		build func(reg *Registry)
		want  string
	}{
		{
			name: "counter with help and type",
			build: func(reg *Registry) {
				reg.Counter("kgvote_test_ops_total", "Operations performed.", nil).Add(3)
			},
			want: "# HELP kgvote_test_ops_total Operations performed.\n" +
				"# TYPE kgvote_test_ops_total counter\n" +
				"kgvote_test_ops_total 3\n",
		},
		{
			name: "no help line when help is empty",
			build: func(reg *Registry) {
				reg.Gauge("kgvote_test_depth", "", nil).Set(2)
			},
			want: "# TYPE kgvote_test_depth gauge\n" +
				"kgvote_test_depth 2\n",
		},
		{
			name: "label values escape backslash quote and newline",
			build: func(reg *Registry) {
				reg.Counter("kgvote_test_total", "", Labels{"path": "a\\b\"c\nd"}).Inc()
			},
			want: "# TYPE kgvote_test_total counter\n" +
				"kgvote_test_total{path=\"a\\\\b\\\"c\\nd\"} 1\n",
		},
		{
			name: "help escapes backslash and newline",
			build: func(reg *Registry) {
				reg.Gauge("kgvote_test_depth", "line\\one\nline two", nil).Set(1)
			},
			want: "# HELP kgvote_test_depth line\\\\one\\nline two\n" +
				"# TYPE kgvote_test_depth gauge\n" +
				"kgvote_test_depth 1\n",
		},
		{
			name: "labels render sorted by key",
			build: func(reg *Registry) {
				reg.Counter("kgvote_test_total", "", Labels{"zone": "b", "app": "kg"}).Inc()
			},
			want: "# TYPE kgvote_test_total counter\n" +
				"kgvote_test_total{app=\"kg\",zone=\"b\"} 1\n",
		},
		{
			name: "series within a family sort by label signature",
			build: func(reg *Registry) {
				reg.Counter("kgvote_test_total", "", Labels{"route": "/vote"}).Add(2)
				reg.Counter("kgvote_test_total", "", Labels{"route": "/ask"}).Add(5)
			},
			want: "# TYPE kgvote_test_total counter\n" +
				"kgvote_test_total{route=\"/ask\"} 5\n" +
				"kgvote_test_total{route=\"/vote\"} 2\n",
		},
		{
			name: "families emit in registration order",
			build: func(reg *Registry) {
				reg.Counter("kgvote_b_total", "", nil).Inc()
				reg.Gauge("kgvote_a_depth", "", nil).Set(1)
			},
			want: "# TYPE kgvote_b_total counter\n" +
				"kgvote_b_total 1\n" +
				"# TYPE kgvote_a_depth gauge\n" +
				"kgvote_a_depth 1\n",
		},
		{
			name: "float formatting uses shortest round-trip form",
			build: func(reg *Registry) {
				reg.GaugeFunc("kgvote_test_tiny", "", nil, func() float64 { return 0.000025 })
				reg.GaugeFunc("kgvote_test_half", "", nil, func() float64 { return 1234.5 })
			},
			want: "# TYPE kgvote_test_tiny gauge\n" +
				"kgvote_test_tiny 2.5e-05\n" +
				"# TYPE kgvote_test_half gauge\n" +
				"kgvote_test_half 1234.5\n",
		},
		{
			name: "histogram renders cumulative buckets sum and count",
			build: func(reg *Registry) {
				h := reg.Histogram("kgvote_test_seconds", "Latency.", nil, []float64{1, 2})
				h.Observe(0.5)
				h.Observe(1.5)
				h.Observe(3)
			},
			want: "# HELP kgvote_test_seconds Latency.\n" +
				"# TYPE kgvote_test_seconds histogram\n" +
				"kgvote_test_seconds_bucket{le=\"1\"} 1\n" +
				"kgvote_test_seconds_bucket{le=\"2\"} 2\n" +
				"kgvote_test_seconds_bucket{le=\"+Inf\"} 3\n" +
				"kgvote_test_seconds_sum 5\n" +
				"kgvote_test_seconds_count 3\n",
		},
		{
			name: "histogram appends le to constant labels",
			build: func(reg *Registry) {
				h := reg.Histogram("kgvote_test_seconds", "", Labels{"route": "/ask"}, []float64{0.5})
				h.Observe(0.1)
			},
			want: "# TYPE kgvote_test_seconds histogram\n" +
				"kgvote_test_seconds_bucket{route=\"/ask\",le=\"0.5\"} 1\n" +
				"kgvote_test_seconds_bucket{route=\"/ask\",le=\"+Inf\"} 1\n" +
				"kgvote_test_seconds_sum{route=\"/ask\"} 0.1\n" +
				"kgvote_test_seconds_count{route=\"/ask\"} 1\n",
		},
		{
			name: "empty histogram still emits its full shape",
			build: func(reg *Registry) {
				reg.Histogram("kgvote_test_seconds", "", nil, []float64{1})
			},
			want: "# TYPE kgvote_test_seconds histogram\n" +
				"kgvote_test_seconds_bucket{le=\"1\"} 0\n" +
				"kgvote_test_seconds_bucket{le=\"+Inf\"} 0\n" +
				"kgvote_test_seconds_sum 0\n" +
				"kgvote_test_seconds_count 0\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			tc.build(reg)
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			if sb.String() != tc.want {
				t.Fatalf("exposition mismatch\ngot:\n%s\nwant:\n%s", sb.String(), tc.want)
			}
			// Everything this package emits must satisfy its own checker.
			if _, err := CheckExposition(strings.NewReader(sb.String())); err != nil {
				t.Fatalf("emitted exposition fails own checker: %v", err)
			}
		})
	}
}

func TestHandlerServesContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("kgvote_test_total", "T.", nil).Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "kgvote_test_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}
