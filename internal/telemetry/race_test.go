package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammerAndScrape drives counters, gauges, and histograms
// from many goroutines while a scraper renders the registry, then
// asserts no increment was lost and the final scrape satisfies every
// structural invariant. Run under -race (the CI telemetry job does)
// this also proves the hot path has no data races.
func TestConcurrentHammerAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("kgvote_race_ops_total", "Ops.", nil)
	g := reg.Gauge("kgvote_race_inflight", "In flight.", nil)
	h := reg.Histogram("kgvote_race_seconds", "Latency.", nil, []float64{0.25, 0.5, 1})
	perRoute := []*Counter{
		reg.Counter("kgvote_race_route_total", "", Labels{"route": "/ask"}),
		reg.Counter("kgvote_race_route_total", "", Labels{"route": "/vote"}),
	}

	const workers = 8
	const iters = 5000

	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			// Mid-hammer scrapes must stay parseable. (CheckHistograms is
			// deliberately not applied here: _count is loaded after the
			// buckets, so a concurrent observation can legitimately make
			// _count exceed the +Inf bucket within one scrape.)
			if _, err := ParseExposition(&buf); err != nil {
				t.Errorf("mid-hammer scrape unparseable: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.25) // 0, 0.25, 0.5, 0.75
				perRoute[w%2].Inc()
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	const total = workers * iters
	if got := c.Value(); got != total {
		t.Fatalf("counter lost increments: %d != %d", got, total)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge should settle at 0, got %d", got)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram lost observations: %d != %d", got, total)
	}
	// Each worker observes 0, 0.25, 0.5, 0.75 in rotation: per cycle of 4
	// the sum is 1.5, and each value count splits evenly across buckets.
	if want := float64(total) / 4 * 1.5; h.Sum() != want {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want)
	}
	if b0 := h.BucketCount(0); b0 != total/2 { // 0 and 0.25 both ≤ 0.25
		t.Fatalf("bucket 0 = %d, want %d", b0, total/2)
	}
	if got := perRoute[0].Value() + perRoute[1].Value(); got != total {
		t.Fatalf("route counters lost increments: %d != %d", got, total)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("final scrape fails invariants: %v", err)
	}
}
