// Package telemetry is the daemon's dependency-free instrumentation
// layer (DESIGN.md §10): atomic counters, gauges, and fixed-bucket
// latency histograms collected in a named Registry and exposed in the
// Prometheus text exposition format, plus a per-request span recorder
// (Trace) for inline stage timings.
//
// Metric names follow the schema kgvote_<subsystem>_<name>_<unit>:
// counters end in _total, histograms and gauges end in their unit
// (_seconds, _bytes, _votes, ...). Every metric type is safe for
// concurrent use, and every method is a no-op on a nil receiver so
// instrumented code paths cost nothing when telemetry is disabled — a
// nil *Registry hands out nil metrics, so callers never branch.
//
// The clock is injectable (NewRegistryWithClock) so tests can assert
// exact bucket counts and span durations without sleeping.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is an immutable-by-convention set of constant label pairs
// attached to one metric at registration time. Series cardinality is
// fixed up front: there is no dynamic label API, which keeps the hot
// path free of map lookups.
type Labels map[string]string

// Kind discriminates metric families in the exposition output.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry is a named collection of metrics. Registration is
// get-or-create: asking twice for the same name+labels returns the same
// metric, so independently wired subsystems can share one registry
// without coordination. Registration takes a lock; the returned handles
// are lock-free.
//
// WithLabels returns a scoped view of the same registry: every
// registration through the view carries the view's constant base labels
// (the multi-tenant daemon scopes one view per tenant, so every series
// a tenant's stack registers gains a tenant="..." label while /metrics
// still scrapes the one shared family table).
type Registry struct {
	now func() time.Time

	// base is merged into every registration's label set; root points at
	// the registry owning the family table (nil on the root itself).
	// Scoped views share the root's storage, so their mu/families/byName
	// stay unused.
	base Labels
	root *Registry

	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// storage resolves the registry owning the shared family table.
func (r *Registry) storage() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// WithLabels returns a view of the registry whose registrations all
// carry labels in addition to their own (per-call labels win on
// collision). Metrics registered through the view land in the shared
// family table, so one WritePrometheus scrape covers every view. A nil
// registry returns nil, keeping the whole chain no-op.
func (r *Registry) WithLabels(labels Labels) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{now: r.now, base: mergeLabels(r.base, labels), root: r.storage()}
}

// mergeLabels overlays over on base into a fresh map; nil when both are
// empty so unlabeled registrations keep their fast path.
func mergeLabels(base, over Labels) Labels {
	if len(base) == 0 && len(over) == 0 {
		return nil
	}
	m := make(Labels, len(base)+len(over))
	for k, v := range base {
		m[k] = v
	}
	for k, v := range over {
		m[k] = v
	}
	return m
}

// family groups every metric sharing one name (differing only in
// labels), matching the exposition format's one-HELP/TYPE-per-name rule.
type family struct {
	name string
	help string
	kind Kind

	mu      sync.Mutex
	entries []familyEntry
	byKey   map[string]int
}

type familyEntry struct {
	labels string // pre-rendered {k="v",...} or ""
	metric any    // *Counter, *Gauge, funcMetric, *Histogram
}

// funcMetric is a scrape-time metric: its value is read by calling fn.
type funcMetric struct{ fn func() float64 }

// NewRegistry returns an empty registry on the real clock.
func NewRegistry() *Registry {
	return NewRegistryWithClock(time.Now)
}

// NewRegistryWithClock returns a registry whose histograms and traces
// read time from now — tests inject a fake clock here.
func NewRegistryWithClock(now func() time.Time) *Registry {
	if now == nil {
		now = time.Now
	}
	return &Registry{now: now, byName: make(map[string]*family)}
}

// Now reads the registry clock (time.Now unless injected).
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Now()
	}
	return r.now()
}

// NewTrace returns a Trace on the registry clock. It works on a nil
// registry (real clock), so handlers can trace without telemetry wired.
func (r *Registry) NewTrace(id string) *Trace {
	if r == nil {
		return NewTrace(id, nil)
	}
	return NewTrace(id, r.now)
}

// getFamily finds or creates the family for name, enforcing that a name
// is never reused with a different kind. Invalid names and kind
// conflicts panic: both are programming errors in registration code,
// not runtime conditions.
func (r *Registry) getFamily(name, help string, kind Kind) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r = r.storage()
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, byKey: make(map[string]int)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// getOrCreate returns the family's metric under the rendered label set,
// creating it with mk on first registration.
func (f *family) getOrCreate(labels Labels, mk func() any) any {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if i, ok := f.byKey[key]; ok {
		return f.entries[i].metric
	}
	m := mk()
	f.byKey[key] = len(f.entries)
	f.entries = append(f.entries, familyEntry{labels: key, metric: m})
	return m
}

// Counter registers (or returns) a monotonically increasing counter.
// A nil registry returns a nil counter whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindCounter)
	return f.getOrCreate(mergeLabels(r.base, labels), func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindGauge)
	return f.getOrCreate(mergeLabels(r.base, labels), func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time;
// use it to surface existing counters (stats structs, cache sizes)
// without double bookkeeping. Re-registering the same name+labels
// replaces the function, so a fresh snapshot can take over a series.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.funcSeries(name, help, KindGauge, labels, fn)
}

// CounterFunc is GaugeFunc with counter semantics: fn must be
// monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.funcSeries(name, help, KindCounter, labels, fn)
}

func (r *Registry) funcSeries(name, help string, kind Kind, labels Labels, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	f := r.getFamily(name, help, kind)
	key := renderLabels(mergeLabels(r.base, labels))
	f.mu.Lock()
	defer f.mu.Unlock()
	if i, ok := f.byKey[key]; ok {
		f.entries[i].metric = funcMetric{fn: fn}
		return
	}
	f.byKey[key] = len(f.entries)
	f.entries = append(f.entries, familyEntry{labels: key, metric: funcMetric{fn: fn}})
}

// Histogram registers (or returns) a fixed-bucket histogram. bounds are
// the inclusive upper bucket bounds in increasing order (a +Inf bucket
// is implicit); nil bounds take DefBuckets.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindHistogram)
	return f.getOrCreate(mergeLabels(r.base, labels), func() any { return newHistogram(bounds, r.now) }).(*Histogram)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters only
// go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (in-flight requests, queue
// depths).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// validMetricName enforces the exposition-format name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName enforces [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels renders a label set as {k="v",...} with keys sorted, or
// "" for an empty set. The rendered form doubles as the dedup key.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !validLabelName(k) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := make([]byte, 0, 32)
	b = append(b, '{')
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, k...)
		b = append(b, '=', '"')
		b = appendEscapedLabelValue(b, labels[k])
		b = append(b, '"')
	}
	b = append(b, '}')
	return string(b)
}

// appendEscapedLabelValue escapes backslash, double quote, and newline
// per the exposition format.
func appendEscapedLabelValue(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, v[i])
		}
	}
	return b
}
