package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format: one # HELP and # TYPE line per family
// (registration order), then one sample line per series (label-sorted).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	st := r.storage()
	st.mu.Lock()
	fams := append([]*family(nil), st.families...)
	st.mu.Unlock()
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

func (f *family) write(w *bufio.Writer) {
	f.mu.Lock()
	entries := append([]familyEntry(nil), f.entries...)
	f.mu.Unlock()
	if len(entries) == 0 {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].labels < entries[j].labels })

	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(string(f.kind))
	w.WriteByte('\n')

	for _, e := range entries {
		switch m := e.metric.(type) {
		case *Counter:
			writeSample(w, f.name, e.labels, float64(m.Value()))
		case *Gauge:
			writeSample(w, f.name, e.labels, float64(m.Value()))
		case funcMetric:
			writeSample(w, f.name, e.labels, m.fn())
		case *Histogram:
			writeHistogram(w, f.name, e.labels, m)
		}
	}
}

func writeSample(w *bufio.Writer, name, labels string, v float64) {
	w.WriteString(name)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count. The le label is appended to any constant labels the series
// carries.
func writeHistogram(w *bufio.Writer, name, labels string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(w, name, labels, formatValue(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket(w, name, labels, "+Inf", cum)
	writeSample(w, name+"_sum", labels, h.Sum())
	writeSample(w, name+"_count", labels, float64(h.Count()))
}

func writeBucket(w *bufio.Writer, name, labels, le string, cum uint64) {
	w.WriteString(name)
	w.WriteString("_bucket")
	if labels == "" {
		w.WriteString(`{le="`)
	} else {
		w.WriteString(labels[:len(labels)-1]) // strip trailing '}'
		w.WriteString(`,le="`)
	}
	w.WriteString(le)
	w.WriteString(`"} `)
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')
}

// formatValue renders a sample value: shortest round-trip decimal,
// with the exposition spellings of the non-finite values.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline per the exposition format
// (double quotes are legal inside HELP text).
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
