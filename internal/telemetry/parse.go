package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the test harness's minimal exposition-format checker: a
// strict parser for the subset of the Prometheus text format this
// package emits. The e2e tests and `make metrics-smoke` scrape a live
// daemon and run the output through ParseExposition, so a formatting
// regression fails loudly instead of silently breaking scrapers.

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed scrape.
type Exposition struct {
	Types   map[string]string // family name → counter/gauge/histogram/...
	Help    map[string]string
	Samples []Sample
}

// Series returns the number of distinct (name, labels) series.
func (e *Exposition) Series() int {
	seen := make(map[string]bool, len(e.Samples))
	for _, s := range e.Samples {
		seen[s.Name+renderLabels(s.Labels)] = true
	}
	return len(seen)
}

// Value returns the sample value for an exact name + label match.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	want := renderLabels(labels)
	for _, s := range e.Samples {
		if s.Name == name && renderLabels(s.Labels) == want {
			return s.Value, true
		}
	}
	return 0, false
}

// Families returns the distinct family names that have at least one
// sample, where histogram component suffixes (_bucket, _sum, _count)
// collapse into their base name when a TYPE line declares it.
func (e *Exposition) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range e.Samples {
		name := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && e.Types[base] == "histogram" {
				name = base
				break
			}
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ParseExposition parses (and thereby validates) a text-format scrape.
// Any line that is not a well-formed comment or sample is an error.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE line names invalid metric %q", name)
		}
		if !validTypes[typ] {
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if prev, ok := e.Types[name]; ok && prev != typ {
			return fmt.Errorf("metric %q re-typed from %s to %s", name, prev, typ)
		}
		e.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("HELP line names invalid metric %q", name)
		}
		if len(fields) == 4 {
			e.Help[name] = fields[3]
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value (and optional timestamp) after %q", s.Name)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{',
// returning the index just past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return 0, nil, fmt.Errorf("label name without value")
		}
		name := s[i:j]
		if !validLabelName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		if j+1 >= len(s) || s[j+1] != '"' {
			return 0, nil, fmt.Errorf("label %q value is not quoted", name)
		}
		val, next, err := parseQuoted(s, j+1)
		if err != nil {
			return 0, nil, fmt.Errorf("label %q: %w", name, err)
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val
		i = next
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// parseQuoted decodes a double-quoted label value with \\, \", and \n
// escapes, starting at the opening quote.
func parseQuoted(s string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i+1])
			}
			i += 2
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value")
}

// CheckExposition parses a scrape and applies the structural invariants
// the e2e tests rely on: every sample's family (when typed) matches a
// declared TYPE, histogram buckets are cumulative in le order, and each
// histogram's _count equals its +Inf bucket. It returns the number of
// distinct series.
func CheckExposition(r io.Reader) (int, error) {
	exp, err := ParseExposition(r)
	if err != nil {
		return 0, err
	}
	if err := exp.CheckHistograms(); err != nil {
		return 0, err
	}
	return exp.Series(), nil
}

// CheckHistograms validates bucket monotonicity, +Inf/_count agreement,
// and count-vs-sum consistency for every histogram family.
func (e *Exposition) CheckHistograms() error {
	type hist struct {
		buckets map[string][]Sample // label-sig (sans le) → bucket samples
		sum     map[string]float64
		count   map[string]float64
	}
	hists := make(map[string]*hist)
	get := func(name string) *hist {
		h := hists[name]
		if h == nil {
			h = &hist{buckets: map[string][]Sample{}, sum: map[string]float64{}, count: map[string]float64{}}
			hists[name] = h
		}
		return h
	}
	sigSansLe := func(labels map[string]string) string {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		return renderLabels(rest)
	}
	for _, s := range e.Samples {
		if base := strings.TrimSuffix(s.Name, "_bucket"); base != s.Name && e.Types[base] == "histogram" {
			get(base).buckets[sigSansLe(s.Labels)] = append(get(base).buckets[sigSansLe(s.Labels)], s)
		} else if base := strings.TrimSuffix(s.Name, "_sum"); base != s.Name && e.Types[base] == "histogram" {
			get(base).sum[renderLabels(s.Labels)] = s.Value
		} else if base := strings.TrimSuffix(s.Name, "_count"); base != s.Name && e.Types[base] == "histogram" {
			get(base).count[renderLabels(s.Labels)] = s.Value
		}
	}
	for name, h := range hists {
		for sig, buckets := range h.buckets {
			var prev float64
			var inf float64
			sawInf := false
			// Buckets arrive in emission order, which is le-ascending.
			for _, b := range buckets {
				le := b.Labels["le"]
				if le == "" {
					return fmt.Errorf("histogram %s: bucket without le label", name)
				}
				if b.Value < prev {
					return fmt.Errorf("histogram %s%s: bucket le=%s count %g below previous %g", name, sig, le, b.Value, prev)
				}
				prev = b.Value
				if le == "+Inf" {
					inf, sawInf = b.Value, true
				}
			}
			if !sawInf {
				return fmt.Errorf("histogram %s%s: no +Inf bucket", name, sig)
			}
			if c, ok := h.count[sig]; ok && c != inf {
				return fmt.Errorf("histogram %s%s: _count %g != +Inf bucket %g", name, sig, c, inf)
			}
			if sum, ok := h.sum[sig]; ok && inf == 0 && sum != 0 {
				return fmt.Errorf("histogram %s%s: zero observations but sum %g", name, sig, sum)
			}
		}
	}
	return nil
}
