package solvefarm

import "kgvote/internal/telemetry"

// farmMetrics is the dispatcher's instrument set (all nil-safe: a nil
// receiver or field makes every record a no-op, so the farm runs fine
// without a registry).
type farmMetrics struct {
	remote    *telemetry.Counter
	fallbacks *telemetry.Counter
	retries   *telemetry.Counter
	hedges    *telemetry.Counter
	hedgeWins *telemetry.Counter
	seconds   *telemetry.Histogram
}

func newFarmMetrics(reg *telemetry.Registry, healthy func() float64) *farmMetrics {
	if reg == nil {
		return nil
	}
	m := &farmMetrics{
		remote: reg.Counter("kgvote_farm_jobs_total",
			"Cluster solve jobs completed, by where they were solved.",
			telemetry.Labels{"where": "remote"}),
		fallbacks: reg.Counter("kgvote_farm_jobs_total",
			"Cluster solve jobs completed, by where they were solved.",
			telemetry.Labels{"where": "fallback"}),
		retries: reg.Counter("kgvote_farm_retries_total",
			"Job attempts re-dispatched after a failed or timed-out attempt.", nil),
		hedges: reg.Counter("kgvote_farm_hedges_total",
			"Hedge replicas sent for straggling jobs.", nil),
		hedgeWins: reg.Counter("kgvote_farm_hedge_wins_total",
			"Jobs whose hedge replica finished before the primary.", nil),
		seconds: reg.Histogram("kgvote_farm_dispatch_seconds",
			"End-to-end latency of one cluster job through the farm, including retries and hedges.",
			nil, nil),
	}
	reg.GaugeFunc("kgvote_farm_workers_healthy",
		"Workers currently marked healthy by the dispatcher pool.", nil, healthy)
	return m
}

func (m *farmMetrics) incRemote() {
	if m != nil {
		m.remote.Inc()
	}
}

func (m *farmMetrics) incFallback() {
	if m != nil {
		m.fallbacks.Inc()
	}
}

func (m *farmMetrics) incRetry() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *farmMetrics) incHedge() {
	if m != nil {
		m.hedges.Inc()
	}
}

func (m *farmMetrics) incHedgeWin() {
	if m != nil {
		m.hedgeWins.Inc()
	}
}

func (m *farmMetrics) timer() func() {
	if m == nil {
		return func() {}
	}
	return m.seconds.Start()
}
