package solvefarm

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/sgp"
	"kgvote/internal/signomial"
)

func testProgram() *sgp.Program {
	p := sgp.NewProgram()
	i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.3)
	i1 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 2}, 0.5)
	p.AddSoftConstraint(signomial.NewConst(1e-9).Add(
		signomial.Monomial(1, i1),
		signomial.Monomial(-1, i0),
	))
	return p
}

func TestFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		typ     byte
		payload []byte
	}{
		{FrameJob, nil},
		{FrameResult, []byte{}},
		{FrameError, []byte("solver exploded")},
		{FrameJob, bytes.Repeat([]byte{0xAB}, 4096)},
	} {
		buf := AppendFrame(nil, tc.typ, tc.payload)
		typ, payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf)))
		if err != nil {
			t.Fatalf("type %d: %v", tc.typ, err)
		}
		if typ != tc.typ || !bytes.Equal(payload, tc.payload) {
			t.Fatalf("type %d: round-trip mismatch", tc.typ)
		}
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	frame := AppendFrame(nil, FrameJob, []byte("payload"))
	// Flip one bit anywhere in the frame: the checksum must catch it.
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x10
		_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(bad)))
		if err == nil {
			// Flipping a length byte can make the frame shorter but still
			// checksum-valid only if the CRC happens to match — it cannot,
			// because the CRC covers the payload the length selects.
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
	// Truncations fail with ErrBadFrame, except the empty read (clean EOF).
	for n := 1; n < len(frame); n++ {
		_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame[:n])))
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncation at %d: want ErrBadFrame, got %v", n, err)
		}
	}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil))); err != io.EOF {
		t.Fatalf("empty read: want io.EOF, got %v", err)
	}
	// An absurd length must be rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("huge length: want ErrBadFrame, got %v", err)
	}
}

func TestJobCodecRoundTrip(t *testing.T) {
	p := testProgram()
	params := sgp.Params{Mode: sgp.Full}
	frame := EncodeJob(42, p, params)
	typ, payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil || typ != FrameJob {
		t.Fatalf("frame: type %d, err %v", typ, err)
	}
	id, dec, gotParams, err := DecodeJob(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || gotParams.Mode != sgp.Full {
		t.Fatalf("id %d mode %v", id, gotParams.Mode)
	}
	// The decoded program must re-encode into the identical job bytes.
	if !bytes.Equal(EncodeJob(42, dec, gotParams), frame) {
		t.Fatal("decoded job re-encodes differently")
	}

	sol, err := p.Solve(sgp.SolveOptions{Mode: sgp.Full})
	if err != nil {
		t.Fatal(err)
	}
	rframe := EncodeResult(42, sol)
	typ, payload, err = ReadFrame(bufio.NewReader(bytes.NewReader(rframe)))
	if err != nil || typ != FrameResult {
		t.Fatalf("result frame: type %d, err %v", typ, err)
	}
	rid, got, err := DecodeResult(payload)
	if err != nil || rid != 42 {
		t.Fatalf("result: id %d, err %v", rid, err)
	}
	for i := range sol.X {
		if got.X[i] != sol.X[i] {
			t.Fatalf("X[%d] not bitwise identical", i)
		}
	}

	eframe := EncodeError(7, "no")
	typ, payload, err = ReadFrame(bufio.NewReader(bytes.NewReader(eframe)))
	if err != nil || typ != FrameError {
		t.Fatalf("error frame: type %d, err %v", typ, err)
	}
	eid, msg, err := DecodeError(payload)
	if err != nil || eid != 7 || msg != "no" {
		t.Fatalf("error: id %d msg %q err %v", eid, msg, err)
	}
}

// FuzzReadFrame feeds arbitrary bytes through the frame decoder in a
// replay-style loop (the WAL fuzz idiom): it must never panic, never
// allocate beyond MaxFrameSize, and fail only with io.EOF or ErrBadFrame.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, FrameJob, []byte("hello")))
	f.Add(append(AppendFrame(nil, FrameResult, []byte("first")), AppendFrame(nil, FrameError, []byte("second"))...))
	f.Add(AppendFrame(nil, FrameJob, []byte("torn"))[:5])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1})
	corrupted := AppendFrame(nil, FrameJob, []byte("bitflip"))
	corrupted[len(corrupted)-1] ^= 0x40
	f.Add(corrupted)
	f.Add(EncodeJob(1, testProgram(), sgp.Params{Mode: sgp.Reduced}))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			_, payload, err := ReadFrame(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("unexpected error kind: %v", err)
				}
				return
			}
			if len(payload) > MaxFrameSize {
				t.Fatalf("decoder returned %d-byte payload beyond max", len(payload))
			}
		}
	})
}
