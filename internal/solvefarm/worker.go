package solvefarm

import (
	"bufio"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"kgvote/internal/sgp"
	"kgvote/internal/telemetry"
)

// Worker is the stateless solve service one kgsolved process exposes. It
// holds no graph and no session state: every POST /solve carries a
// complete program, so any worker can serve any job — which is what makes
// retry and hedging against a different replica trivially correct.
type Worker struct {
	// MaxJobs bounds concurrently solving requests; extra requests queue
	// on the semaphore (the dispatcher's own in-flight cap keeps the queue
	// short). Defaults to runtime.GOMAXPROCS(0).
	MaxJobs int
	// Reg, when non-nil, receives worker metrics and serves GET /metrics.
	Reg *telemetry.Registry

	once    sync.Once
	sem     chan struct{}
	jobs    *telemetry.Counter
	errs    *telemetry.Counter
	seconds *telemetry.Histogram
	busy    *telemetry.Gauge
}

func (w *Worker) init() {
	w.once.Do(func() {
		n := w.MaxJobs
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		w.sem = make(chan struct{}, n)
		if w.Reg != nil {
			w.jobs = w.Reg.Counter("kgvote_farm_worker_jobs_total",
				"Solve jobs accepted by this worker.", nil)
			w.errs = w.Reg.Counter("kgvote_farm_worker_errors_total",
				"Solve jobs that failed to decode or solve.", nil)
			w.seconds = w.Reg.Histogram("kgvote_farm_worker_solve_seconds",
				"Per-job solve latency on this worker.", nil, nil)
			w.busy = w.Reg.Gauge("kgvote_farm_worker_busy",
				"Jobs currently solving on this worker.", nil)
		}
	})
}

// Handler returns the worker's HTTP surface: POST /solve, GET /healthz,
// and GET /metrics when a registry is attached.
func (w *Worker) Handler() http.Handler {
	w.init()
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", w.handleSolve)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	})
	if w.Reg != nil {
		mux.Handle("/metrics", w.Reg.Handler())
	}
	return mux
}

// handleSolve decodes one framed job, solves it, and replies with a
// framed result. The request context is wired into the solve's Stop
// callback, so a dispatcher abandoning the request (timeout, hedge loss,
// flush cancel) stops the optimizer within one inner iteration instead of
// burning the worker slot to completion.
func (w *Worker) handleSolve(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	typ, payload, err := ReadFrame(bufio.NewReader(r.Body))
	if err != nil || typ != FrameJob {
		w.countErr()
		http.Error(rw, fmt.Sprintf("bad job frame: %v", err), http.StatusBadRequest)
		return
	}
	id, p, params, err := DecodeJob(payload)
	if err != nil {
		w.countErr()
		http.Error(rw, fmt.Sprintf("bad job %d: %v", id, err), http.StatusBadRequest)
		return
	}

	ctx := r.Context()
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		w.writeError(rw, id, fmt.Sprintf("queued job cancelled: %v", ctx.Err()))
		return
	}
	defer func() { <-w.sem }()

	if w.jobs != nil {
		w.jobs.Inc()
		w.busy.Add(1)
		defer w.busy.Add(-1)
		defer w.seconds.Start()()
	}
	sol, err := p.Solve(sgp.SolveOptions{
		Mode: params.Mode,
		AL:   params.AL,
		Stop: func() bool { return ctx.Err() != nil },
	})
	if err != nil {
		w.countErr()
		w.writeError(rw, id, err.Error())
		return
	}
	// A stopped solve means the client abandoned this request mid-solve;
	// its best-so-far iterate must not reach the merge (a hedge replica or
	// retry will deliver the converged answer), so report it as an error.
	if sol.Stopped {
		w.writeError(rw, id, "solve stopped before convergence")
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	_, _ = rw.Write(EncodeResult(id, sol))
}

// writeError replies with a framed, checksummed error record (HTTP 200:
// the transport worked; the job failed).
func (w *Worker) writeError(rw http.ResponseWriter, id uint64, msg string) {
	rw.Header().Set("Content-Type", "application/octet-stream")
	_, _ = rw.Write(EncodeError(id, msg))
}

func (w *Worker) countErr() {
	if w.errs != nil {
		w.errs.Inc()
	}
}
