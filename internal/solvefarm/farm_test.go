package solvefarm_test

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/sgp"
	"kgvote/internal/signomial"
	"kgvote/internal/solvefarm"
	"kgvote/internal/telemetry"
	"kgvote/internal/vote"
)

// startWorker serves a solvefarm.Worker over a real socket and returns
// its host:port.
func startWorker(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	w := &solvefarm.Worker{Reg: telemetry.NewRegistry()}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return srv, strings.TrimPrefix(srv.URL, "http://")
}

// deadAddr reserves a port and closes it, yielding connection-refused.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func newDispatcher(t *testing.T, opt solvefarm.Options) *solvefarm.Dispatcher {
	t.Helper()
	if opt.RetryBackoff == 0 {
		opt.RetryBackoff = time.Millisecond
	}
	d, err := solvefarm.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// fourRegions builds four independent query regions with one negative
// vote each (the split-and-merge test workload).
func fourRegions(t *testing.T) (*graph.Graph, func(*core.Engine) []vote.Vote) {
	t.Helper()
	g := graph.New(0)
	type region struct {
		q    graph.NodeID
		x, y graph.NodeID
	}
	regions := make([]region, 4)
	for i := range regions {
		q := g.AddNodes(5)
		a, b, x, y := q+1, q+2, q+3, q+4
		g.MustSetEdge(q, a, 0.6)
		g.MustSetEdge(q, b, 0.4)
		g.MustSetEdge(a, x, 1)
		g.MustSetEdge(b, y, 1)
		regions[i] = region{q: q, x: x, y: y}
	}
	collect := func(e *core.Engine) []vote.Vote {
		votes := make([]vote.Vote, 0, len(regions))
		for _, r := range regions {
			v, err := e.CollectVote(r.q, []graph.NodeID{r.x, r.y}, r.y)
			if err != nil {
				t.Fatal(err)
			}
			votes = append(votes, v)
		}
		return votes
	}
	return g, collect
}

// flushWeights runs one split-and-merge flush (optionally through cs) and
// returns the final edge weights.
func flushWeights(t *testing.T, cs core.ClusterSolver) map[graph.EdgeKey]float64 {
	t.Helper()
	g, collect := fourRegions(t)
	e, err := core.New(g, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cs != nil {
		e.SetClusterSolver(cs)
	}
	if _, err := e.SolveSplitMerge(collect(e)); err != nil {
		t.Fatal(err)
	}
	out := make(map[graph.EdgeKey]float64)
	g.Edges(func(from, to graph.NodeID, w float64) {
		out[graph.EdgeKey{From: from, To: to}] = w
	})
	return out
}

func assertSameWeights(t *testing.T, got, want map[graph.EdgeKey]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: edge counts differ: %d vs %d", label, len(got), len(want))
	}
	for k, w := range want {
		if gw := got[k]; gw != w {
			t.Fatalf("%s: edge %v: %x != %x (not bitwise identical)", label, k, gw, w)
		}
	}
}

// TestFarmFlushGoldenDeterminism is the acceptance gate: the same flush
// solved in process, through remote workers, and with every job hedged
// onto a duplicate replica must all produce bitwise-identical weights.
func TestFarmFlushGoldenDeterminism(t *testing.T) {
	local := flushWeights(t, nil)

	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	remote := flushWeights(t, newDispatcher(t, solvefarm.Options{Workers: []string{a1, a2}}))
	assertSameWeights(t, remote, local, "remote")

	// HedgeAfter of 1ns duplicates effectively every job; first result
	// wins, whichever replica that is.
	hedged := flushWeights(t, newDispatcher(t, solvefarm.Options{
		Workers:    []string{a1, a2},
		HedgeAfter: time.Nanosecond,
	}))
	assertSameWeights(t, hedged, local, "hedged")
}

func TestFarmRetriesPastDeadWorker(t *testing.T) {
	_, live := startWorker(t)
	d := newDispatcher(t, solvefarm.Options{
		Workers:     []string{deadAddr(t), live},
		HealthEvery: time.Hour, // no revival during the test
	})
	local := flushWeights(t, nil)
	remote := flushWeights(t, d)
	assertSameWeights(t, remote, local, "one dead worker")
	if n := d.HealthyWorkers(); n != 1 {
		t.Errorf("healthy workers = %d, want 1 (dead one marked down)", n)
	}
}

func TestFarmFallsBackWhenAllWorkersDead(t *testing.T) {
	d := newDispatcher(t, solvefarm.Options{
		Workers:     []string{deadAddr(t), deadAddr(t)},
		MaxRetries:  1,
		HealthEvery: time.Hour,
	})
	local := flushWeights(t, nil)
	remote := flushWeights(t, d)
	assertSameWeights(t, remote, local, "all workers dead")
	if n := d.HealthyWorkers(); n != 0 {
		t.Errorf("healthy workers = %d, want 0", n)
	}
}

func TestFarmWorkerRecoversViaHealthProbe(t *testing.T) {
	srv, addr := startWorker(t)
	d := newDispatcher(t, solvefarm.Options{
		Workers:     []string{addr},
		MaxRetries:  1,
		HealthEvery: 10 * time.Millisecond,
	})
	// Kill the worker's sockets: next dispatch fails, marks it down.
	srv.CloseClientConnections()
	srv.Close()
	if _ = flushWeights(t, d); d.HealthyWorkers() != 0 {
		t.Fatalf("dead worker still marked healthy")
	}
	// Revive a worker on the same port; the probe must bring it back.
	w := &solvefarm.Worker{}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("port %s not reusable: %v", addr, err)
	}
	revived := &http.Server{Handler: w.Handler()}
	go revived.Serve(l)
	t.Cleanup(func() { revived.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for d.HealthyWorkers() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.HealthyWorkers() != 1 {
		t.Fatalf("revived worker never re-marked healthy")
	}
}

// solveProgram builds a small solvable program for direct dispatcher and
// worker exercises.
func solveProgram() (*sgp.Program, sgp.Params) {
	p := sgp.NewProgram()
	i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.3)
	i1 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 2}, 0.5)
	p.AddSoftConstraint(signomial.NewConst(1e-9).Add(
		signomial.Monomial(1, i1),
		signomial.Monomial(-1, i0),
	))
	return p, sgp.Params{Mode: sgp.Full}
}

func TestDispatcherCancelledContextReturnsStopped(t *testing.T) {
	d := newDispatcher(t, solvefarm.Options{
		Workers:     []string{deadAddr(t)},
		MaxRetries:  1,
		HealthEvery: time.Hour,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, params := solveProgram()
	sol, err := d.SolveProgram(ctx, p, params)
	if err != nil {
		t.Fatal(err)
	}
	// The local fallback under a dead ctx must hand back the best-so-far
	// iterate flagged Stopped, which the engine surfaces as Report.Partial.
	if !sol.Stopped {
		t.Fatal("cancelled solve not flagged Stopped")
	}
	if len(sol.X) != p.NumVars() {
		t.Fatalf("cancelled solve returned %d vars, want %d", len(sol.X), p.NumVars())
	}
}

func TestWorkerSolveMatchesInProcess(t *testing.T) {
	_, addr := startWorker(t)
	p, params := solveProgram()
	want, err := p.Solve(sgp.SolveOptions{Mode: params.Mode, AL: params.AL})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := solveProgram()
	resp, err := http.Post("http://"+addr+"/solve", "application/octet-stream",
		bytes.NewReader(solvefarm.EncodeJob(9, p2, params)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	typ, payload, err := solvefarm.ReadFrame(bufio.NewReader(resp.Body))
	if err != nil || typ != solvefarm.FrameResult {
		t.Fatalf("frame type %d, err %v", typ, err)
	}
	id, got, err := solvefarm.DecodeResult(payload)
	if err != nil || id != 9 {
		t.Fatalf("id %d, err %v", id, err)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("X[%d] not bitwise identical to in-process solve", i)
		}
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	_, addr := startWorker(t)
	for name, body := range map[string][]byte{
		"garbage":   []byte("not a frame at all"),
		"empty":     nil,
		"truncated": solvefarm.EncodeJob(1, mustProgram(), sgp.Params{Mode: sgp.Full})[:10],
	} {
		resp, err := http.Post("http://"+addr+"/solve", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	// A bit flip inside the payload must be caught by the frame checksum.
	frame := solvefarm.EncodeJob(1, mustProgram(), sgp.Params{Mode: sgp.Full})
	frame[len(frame)-1] ^= 0x04
	resp, err := http.Post("http://"+addr+"/solve", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bit flip: HTTP %d, want 400", resp.StatusCode)
	}
	// GET on /solve is not allowed.
	resp, err = http.Get("http://" + addr + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: HTTP %d, want 405", resp.StatusCode)
	}
}

func mustProgram() *sgp.Program {
	p, _ := solveProgram()
	return p
}
