package solvefarm

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"
)

// ErrNoWorkers reports that every configured worker is marked down; the
// dispatcher reacts by solving in process.
var ErrNoWorkers = errors.New("solvefarm: no healthy workers")

// worker is the pool's view of one remote solver.
type worker struct {
	addr     string // host:port
	healthy  bool
	inflight int
}

// pool tracks worker health and per-worker in-flight load. Acquisition is
// least-loaded-first over the healthy set; a worker whose transport fails
// is marked down immediately (passive detection) and revived by the
// background health probe (active detection), so a killed process stops
// receiving jobs after one failed dispatch and a restarted one rejoins
// within a probe period.
type pool struct {
	maxInFlight int
	client      *http.Client

	mu      sync.Mutex
	workers []*worker
	waitc   chan struct{} // closed+replaced whenever capacity may have appeared
	closed  bool

	probeStop chan struct{}
	probeDone chan struct{}
}

func newPool(addrs []string, maxInFlight int, client *http.Client, probeEvery time.Duration) *pool {
	p := &pool{
		maxInFlight: maxInFlight,
		client:      client,
		waitc:       make(chan struct{}),
		probeStop:   make(chan struct{}),
		probeDone:   make(chan struct{}),
	}
	for _, a := range addrs {
		p.workers = append(p.workers, &worker{addr: a, healthy: true})
	}
	go p.probeLoop(probeEvery)
	return p
}

// acquire blocks until a healthy worker has a free slot, then reserves
// one. It fails fast with ErrNoWorkers when every worker is down (no
// point queueing: the caller should fall back to the local solver) and
// with ctx.Err() on cancellation.
func (p *pool) acquire(ctx context.Context) (*worker, error) {
	for {
		p.mu.Lock()
		w, anyHealthy := p.pick(nil)
		if w != nil {
			w.inflight++
			p.mu.Unlock()
			return w, nil
		}
		waitc := p.waitc
		p.mu.Unlock()
		if !anyHealthy {
			return nil, ErrNoWorkers
		}
		select {
		case <-waitc:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// tryAcquire reserves a slot on a healthy worker other than exclude, or
// returns nil without blocking. Hedges use it: a hedge is only worth
// sending when a second worker has spare capacity right now.
func (p *pool) tryAcquire(exclude *worker) *worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, _ := p.pick(exclude)
	if w != nil {
		w.inflight++
	}
	return w
}

// pick returns the least-loaded healthy worker with a free slot (nil if
// none) and whether any worker is healthy at all. Ties break by slice
// order, so selection is deterministic given identical load.
func (p *pool) pick(exclude *worker) (*worker, bool) {
	var best *worker
	anyHealthy := false
	for _, w := range p.workers {
		if !w.healthy || w == exclude {
			anyHealthy = anyHealthy || w.healthy
			continue
		}
		anyHealthy = true
		if w.inflight >= p.maxInFlight {
			continue
		}
		if best == nil || w.inflight < best.inflight {
			best = w
		}
	}
	return best, anyHealthy
}

// release returns w's slot. A transport-level failure (ok=false) marks
// the worker down on the spot so subsequent acquires skip it.
func (p *pool) release(w *worker, ok bool) {
	p.mu.Lock()
	w.inflight--
	if !ok {
		w.healthy = false
	}
	close(p.waitc)
	p.waitc = make(chan struct{})
	p.mu.Unlock()
}

// healthyCount reports how many workers are currently marked healthy.
func (p *pool) healthyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.healthy {
			n++
		}
	}
	return n
}

// probeLoop GETs /healthz on every down worker each period, reviving the
// ones that answer. Healthy workers are not probed — their liveness is
// observed passively on every dispatch.
func (p *pool) probeLoop(every time.Duration) {
	defer close(p.probeDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-p.probeStop:
			return
		case <-t.C:
		}
		p.mu.Lock()
		var down []*worker
		for _, w := range p.workers {
			if !w.healthy {
				down = append(down, w)
			}
		}
		p.mu.Unlock()
		for _, w := range down {
			if p.probe(w.addr) {
				p.mu.Lock()
				w.healthy = true
				close(p.waitc)
				p.waitc = make(chan struct{})
				p.mu.Unlock()
			}
		}
	}
}

func (p *pool) probe(addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.probeStop)
	<-p.probeDone
}
