// Package solvefarm distributes the split-and-merge flush's per-cluster
// SGP solves across remote worker processes (DESIGN.md §13).
//
// The flush pre-solve — judgment filter, enumeration cache, Jaccard
// matrix, clustering, program encoding — stays on the writer, which owns
// the graph. Each cluster's finished program is serialized into a
// self-contained, CRC32C-checked binary job (reusing the internal/wal
// framing idiom) and POSTed to a stateless solver worker; the worker
// needs no copy of the graph. The dispatcher owns the reliability story:
// bounded in-flight jobs per worker, per-job timeouts with jittered
// exponential retry, hedged re-dispatch of stragglers (first result wins,
// deterministic because both replicas solve the identical serialized
// program from the identical initial point), a health-checked worker
// pool, and automatic fallback to the in-process solver when no worker is
// live or a flush is cancelled.
package solvefarm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"kgvote/internal/sgp"
)

// Frame types on the wire.
const (
	// FrameJob carries [job id: u64 LE][encoded program+params].
	FrameJob byte = 1
	// FrameResult carries [job id: u64 LE][encoded solution].
	FrameResult byte = 2
	// FrameError carries [job id: u64 LE][UTF-8 message].
	FrameError byte = 3
)

const (
	frameHeaderSize = 9 // uint32 length + uint32 crc + 1 type byte
	// MaxFrameSize bounds one frame's payload; a decoded length beyond it
	// is corruption, never an allocation request. Cluster programs carry a
	// signomial term per walk, so the cap is generous.
	MaxFrameSize = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame marks a torn, truncated, or corrupted frame.
var ErrBadFrame = errors.New("solvefarm: partial or corrupt frame")

// AppendFrame appends one framed record to dst:
//
//	[payload length: u32 LE] [CRC32C: u32 LE] [type: 1 byte] [payload]
//
// with the checksum (Castagnoli) covering the type byte and the payload —
// the WAL's record framing, reused so a bit flip anywhere between writer
// and worker is caught before a corrupted program is ever solved.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = typ
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadFrame decodes one frame from r. It returns io.EOF at a clean
// boundary and ErrBadFrame (wrapped) for any framing violation; it never
// panics on arbitrary input and never allocates beyond MaxFrameSize.
func ReadFrame(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header: %v", ErrBadFrame, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: header: %v", ErrBadFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds max %d", ErrBadFrame, n, MaxFrameSize)
	}
	crcWant := binary.LittleEndian.Uint32(hdr[4:8])
	typ = hdr[8]
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload: %v", ErrBadFrame, err)
	}
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != crcWant {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (want %08x, got %08x)", ErrBadFrame, crcWant, crc)
	}
	return typ, payload, nil
}

// EncodeJob frames one solve job: the job id followed by the serialized
// program and solve parameters. The returned bytes are immutable and may
// be POSTed concurrently by hedged replicas.
func EncodeJob(id uint64, p *sgp.Program, params sgp.Params) []byte {
	payload := binary.LittleEndian.AppendUint64(nil, id)
	payload = sgp.EncodeProgram(payload, p, params)
	return AppendFrame(nil, FrameJob, payload)
}

// DecodeJob unpacks a FrameJob payload into its id, program, and params.
func DecodeJob(payload []byte) (uint64, *sgp.Program, sgp.Params, error) {
	if len(payload) < 8 {
		return 0, nil, sgp.Params{}, fmt.Errorf("%w: job payload %d bytes", ErrBadFrame, len(payload))
	}
	id := binary.LittleEndian.Uint64(payload[:8])
	p, params, err := sgp.DecodeProgram(payload[8:])
	if err != nil {
		return id, nil, params, err
	}
	return id, p, params, nil
}

// EncodeResult frames one solved job's solution.
func EncodeResult(id uint64, sol *sgp.Solution) []byte {
	payload := binary.LittleEndian.AppendUint64(nil, id)
	payload = sgp.EncodeSolution(payload, sol)
	return AppendFrame(nil, FrameResult, payload)
}

// DecodeResult unpacks a FrameResult payload.
func DecodeResult(payload []byte) (uint64, *sgp.Solution, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: result payload %d bytes", ErrBadFrame, len(payload))
	}
	id := binary.LittleEndian.Uint64(payload[:8])
	sol, err := sgp.DecodeSolution(payload[8:])
	if err != nil {
		return id, nil, err
	}
	return id, sol, nil
}

// EncodeError frames a worker-side failure for one job.
func EncodeError(id uint64, msg string) []byte {
	payload := binary.LittleEndian.AppendUint64(nil, id)
	payload = append(payload, msg...)
	return AppendFrame(nil, FrameError, payload)
}

// DecodeError unpacks a FrameError payload.
func DecodeError(payload []byte) (uint64, string, error) {
	if len(payload) < 8 {
		return 0, "", fmt.Errorf("%w: error payload %d bytes", ErrBadFrame, len(payload))
	}
	return binary.LittleEndian.Uint64(payload[:8]), string(payload[8:]), nil
}
