package solvefarm

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/internal/sgp"
	"kgvote/internal/telemetry"
)

// Options configures a Dispatcher.
type Options struct {
	// Workers lists solver addresses (host:port). Required.
	Workers []string
	// MaxInFlight bounds concurrent jobs per worker. Default 2: one
	// solving, one queued behind the worker's semaphore, so a finishing
	// worker never idles waiting for the next dispatch round-trip.
	MaxInFlight int
	// JobTimeout bounds one dispatch attempt (connect + solve + respond).
	// Default 5m.
	JobTimeout time.Duration
	// MaxRetries is how many times a failed attempt is re-dispatched
	// before giving the job to the local fallback. Default 3.
	MaxRetries int
	// RetryBackoff is the base of the jittered exponential backoff between
	// attempts. Default 50ms.
	RetryBackoff time.Duration
	// HedgeAfter is how long an attempt may straggle before a duplicate is
	// sent to a second worker, first result winning. Both replicas solve
	// the identical serialized program, so the winner is interchangeable.
	// Zero picks the 30s default; negative disables hedging.
	HedgeAfter time.Duration
	// HealthEvery is the down-worker probe period. Default 500ms.
	HealthEvery time.Duration
	// Reg, when non-nil, receives kgvote_farm_* metrics.
	Reg *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 5 * time.Minute
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 30 * time.Second
	}
	if o.HealthEvery <= 0 {
		o.HealthEvery = 500 * time.Millisecond
	}
	return o
}

// Dispatcher ships cluster programs to the worker pool and implements
// core.ClusterSolver. It is safe for concurrent use — a split-and-merge
// flush calls SolveProgram from many goroutines at once.
//
// Failure handling, in escalation order: a failed or timed-out attempt is
// retried on the (possibly different) least-loaded worker with jittered
// exponential backoff; an attempt that outlives HedgeAfter gets a
// duplicate on a second worker, first result winning; when retries are
// exhausted or every worker is down, the job is solved in process. The
// local solver and the workers produce bit-identical converged solutions
// (see core.ClusterSolver), so none of these paths changes the flush
// output — only under flush cancellation does the fallback return a
// best-so-far iterate, which the engine reports as Partial.
type Dispatcher struct {
	opt     Options
	pool    *pool
	client  *http.Client
	metrics *farmMetrics
	nextID  atomic.Uint64
	rng     *lockedRand
}

// New builds a dispatcher over the configured workers and starts its
// health probe. Call Close to stop the probe.
func New(opt Options) (*Dispatcher, error) {
	if len(opt.Workers) == 0 {
		return nil, fmt.Errorf("solvefarm: no worker addresses")
	}
	opt = opt.withDefaults()
	client := &http.Client{} // no client timeout: per-attempt ctx owns the deadline
	d := &Dispatcher{
		opt:    opt,
		pool:   newPool(opt.Workers, opt.MaxInFlight, client, opt.HealthEvery),
		client: client,
		rng:    newLockedRand(1),
	}
	d.metrics = newFarmMetrics(opt.Reg, func() float64 { return float64(d.pool.healthyCount()) })
	return d, nil
}

// Close stops the health probe. In-flight solves finish normally.
func (d *Dispatcher) Close() { d.pool.close() }

// HealthyWorkers reports how many workers the pool currently trusts.
func (d *Dispatcher) HealthyWorkers() int { return d.pool.healthyCount() }

// SolveProgram implements core.ClusterSolver: encode once, dispatch with
// retry and hedging, fall back to the in-process solver when the farm
// cannot deliver.
func (d *Dispatcher) SolveProgram(ctx context.Context, p *sgp.Program, params sgp.Params) (*sgp.Solution, error) {
	defer d.metrics.timer()()
	id := d.nextID.Add(1)
	// Encoded once and never mutated: retries and hedge replicas POST the
	// same bytes, so every attempt solves the identical program even
	// though the engine recycles *sgp.Program workspaces between clusters.
	body := EncodeJob(id, p, params)
	want := p.NumVars()

	var lastErr error
	for attempt := 0; attempt <= d.opt.MaxRetries; attempt++ {
		if ctx.Err() != nil {
			break
		}
		if attempt > 0 {
			d.metrics.incRetry()
			if !d.backoff(ctx, attempt) {
				break
			}
		}
		w, err := d.pool.acquire(ctx)
		if err != nil {
			// Every worker down, or the flush was cancelled while
			// waiting: the local fallback handles both.
			lastErr = err
			break
		}
		sol, err := d.solveOn(ctx, w, id, body)
		if err != nil {
			lastErr = err
			continue
		}
		if len(sol.X) != want {
			lastErr = fmt.Errorf("solvefarm: job %d: result has %d vars, program has %d", id, len(sol.X), want)
			continue
		}
		d.metrics.incRemote()
		return sol, nil
	}

	// Local fallback: correctness never depends on the farm. Under a live
	// ctx this solves to convergence bit-identically to a worker; under a
	// cancelled ctx it returns the best-so-far iterate with Stopped set,
	// which the engine surfaces as Report.Partial.
	d.metrics.incFallback()
	sol, err := p.Solve(sgp.SolveOptions{
		Mode: params.Mode,
		AL:   params.AL,
		Stop: func() bool { return ctx.Err() != nil },
	})
	if err != nil && lastErr != nil {
		return nil, fmt.Errorf("%v (after farm error: %w)", err, lastErr)
	}
	return sol, err
}

// attemptResult is one replica's outcome.
type attemptResult struct {
	sol    *sgp.Solution
	err    error
	hedged bool
}

// solveOn runs one dispatch attempt on w, hedging onto a second worker if
// the attempt straggles past HedgeAfter. First result wins; the loser's
// request context is cancelled, which trips the worker's Stop callback so
// the abandoned replica stops solving almost immediately.
func (d *Dispatcher) solveOn(ctx context.Context, w *worker, id uint64, body []byte) (*sgp.Solution, error) {
	actx, cancel := context.WithTimeout(ctx, d.opt.JobTimeout)
	defer cancel()

	resc := make(chan attemptResult, 2) // buffered: the losing replica's send never blocks
	go d.post(actx, w, id, body, false, resc)

	var hedgeTimer *time.Timer
	var hedgec <-chan time.Time
	if d.opt.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(d.opt.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgec = hedgeTimer.C
	}

	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case <-hedgec:
			hedgec = nil
			if hw := d.pool.tryAcquire(w); hw != nil {
				d.metrics.incHedge()
				pending++
				go d.post(actx, hw, id, body, true, resc)
			}
		case res := <-resc:
			pending--
			if res.err != nil {
				if firstErr == nil {
					firstErr = res.err
				}
				continue
			}
			if res.hedged {
				d.metrics.incHedgeWin()
			}
			return res.sol, nil
		}
	}
	return nil, firstErr
}

// post POSTs the job to one worker and decodes the reply. It owns the
// worker's slot: released healthy when the transport worked (including
// job-level errors the worker reported) or when we cancelled the request
// ourselves, released down on an unprovoked transport failure.
func (d *Dispatcher) post(ctx context.Context, w *worker, id uint64, body []byte, hedged bool, resc chan<- attemptResult) {
	sol, err := d.roundTrip(ctx, w.addr, id, body)
	transportDown := err != nil && !isJobError(err) && ctx.Err() == nil
	d.pool.release(w, !transportDown)
	resc <- attemptResult{sol: sol, err: err, hedged: hedged}
}

// jobError marks a failure the worker itself reported over a working
// transport — the worker is healthy, only this attempt failed.
type jobError struct{ msg string }

func (e *jobError) Error() string { return e.msg }

// isJobError reports whether err is a job-level error rather than a
// transport failure.
func isJobError(err error) bool {
	_, ok := err.(*jobError)
	return ok
}

// roundTrip performs the HTTP exchange for one replica.
func (d *Dispatcher) roundTrip(ctx context.Context, addr string, id uint64, body []byte) (*sgp.Solution, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/solve", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("solvefarm: job %d on %s: %w", id, addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The worker answered — transport is fine — but rejected the
		// frame (e.g. bytes corrupted in transit). Retryable job error.
		return nil, &jobError{msg: fmt.Sprintf("solvefarm: job %d on %s: HTTP %d", id, addr, resp.StatusCode)}
	}
	typ, payload, err := ReadFrame(bufio.NewReader(resp.Body))
	if err != nil {
		return nil, fmt.Errorf("solvefarm: job %d on %s: %w", id, addr, err)
	}
	switch typ {
	case FrameResult:
		gotID, sol, err := DecodeResult(payload)
		if err != nil {
			return nil, fmt.Errorf("solvefarm: job %d on %s: %w", id, addr, err)
		}
		if gotID != id {
			return nil, &jobError{msg: fmt.Sprintf("solvefarm: job %d on %s: result for job %d", id, addr, gotID)}
		}
		return sol, nil
	case FrameError:
		_, msg, err := DecodeError(payload)
		if err != nil {
			return nil, fmt.Errorf("solvefarm: job %d on %s: %w", id, addr, err)
		}
		return nil, &jobError{msg: fmt.Sprintf("solvefarm: job %d on %s: worker: %s", id, addr, msg)}
	default:
		return nil, &jobError{msg: fmt.Sprintf("solvefarm: job %d on %s: unexpected frame type %d", id, addr, typ)}
	}
}

// backoff sleeps the jittered exponential delay before retry n (n ≥ 1),
// returning false if ctx was cancelled while sleeping. Jitter spreads
// synchronized retries from a flush's many concurrent jobs so a recovered
// worker is not stampeded.
func (d *Dispatcher) backoff(ctx context.Context, n int) bool {
	delay := d.opt.RetryBackoff << (n - 1)
	if max := 5 * time.Second; delay > max {
		delay = max
	}
	delay += time.Duration(d.rng.Int63n(int64(delay))) // delay..2*delay
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// lockedRand is a mutex-guarded rand.Rand: backoff jitter is called from
// many flush goroutines. Only retry timing consumes randomness — never
// anything that reaches the solve or the merge, so determinism holds.
type lockedRand struct {
	mu  sync.Mutex
	rnd *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rnd: rand.New(rand.NewSource(seed))}
}

func (r *lockedRand) Int63n(n int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rnd.Int63n(n)
}
