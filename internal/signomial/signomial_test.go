package signomial

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMonomialMergesRepeats(t *testing.T) {
	m := Monomial(2.0, 3, 1, 3, 3)
	if len(m.Factors) != 2 {
		t.Fatalf("factors = %v", m.Factors)
	}
	if m.Factors[0].Var != 1 || m.Factors[0].Exp != 1 {
		t.Errorf("factor 0 = %+v", m.Factors[0])
	}
	if m.Factors[1].Var != 3 || m.Factors[1].Exp != 3 {
		t.Errorf("factor 1 = %+v", m.Factors[1])
	}
	x := []float64{0, 0.5, 0, 2}
	if got, want := m.Eval(x), 2.0*0.5*8; math.Abs(got-want) > 1e-15 {
		t.Errorf("Eval = %v, want %v", got, want)
	}
}

func TestConstantMonomial(t *testing.T) {
	m := Monomial(7.5)
	if m.Eval(nil) != 7.5 {
		t.Errorf("constant monomial Eval = %v", m.Eval(nil))
	}
}

func TestPowFast(t *testing.T) {
	for _, c := range []struct{ b, e float64 }{
		{0.7, 1}, {0.7, 2}, {0.7, 3}, {0.7, 4}, {0.7, 5}, {0.7, 11},
		{0.7, 0.5}, {0.7, 17}, {2, 2.5}, {3, 0},
	} {
		if got, want := powFast(c.b, c.e), math.Pow(c.b, c.e); math.Abs(got-want) > 1e-12*math.Abs(want)+1e-15 {
			t.Errorf("powFast(%v,%v) = %v, want %v", c.b, c.e, got, want)
		}
	}
}

func TestSignomialEval(t *testing.T) {
	// f = 3 + 2·x0·x1 − x1².
	s := NewConst(3).Add(Monomial(2, 0, 1), Monomial(-1, 1, 1))
	x := []float64{2, 5}
	if got, want := s.Eval(x), 3+2*2*5-25.0; got != want {
		t.Errorf("Eval = %v, want %v", got, want)
	}
	if s.NumTerms() != 2 {
		t.Errorf("NumTerms = %d", s.NumTerms())
	}
	if s.MaxVar() != 1 {
		t.Errorf("MaxVar = %d", s.MaxVar())
	}
	if NewConst(1).MaxVar() != -1 {
		t.Errorf("constant MaxVar should be -1")
	}
}

func TestGradAnalytic(t *testing.T) {
	// f = 2·x0·x1 − x1²: ∂f/∂x0 = 2x1, ∂f/∂x1 = 2x0 − 2x1.
	s := NewConst(0).Add(Monomial(2, 0, 1), Monomial(-1, 1, 1))
	x := []float64{2, 5}
	g := s.Grad(x, 2)
	if math.Abs(g[0]-10) > 1e-14 || math.Abs(g[1]-(4-10)) > 1e-14 {
		t.Errorf("grad = %v, want [10 -6]", g)
	}
}

func TestGradAtZeroBase(t *testing.T) {
	// f = x0·x1: at x0=0 the partials are [x1, 0].
	s := NewConst(0).Add(Monomial(1, 0, 1))
	g := s.Grad([]float64{0, 3}, 2)
	if g[0] != 3 || g[1] != 0 {
		t.Errorf("grad = %v, want [3 0]", g)
	}
	// f = x0²·x1: at x0=0 both partials are 0.
	s2 := NewConst(0).Add(Monomial(1, 0, 0, 1))
	g2 := s2.Grad([]float64{0, 3}, 2)
	if g2[0] != 0 || g2[1] != 0 {
		t.Errorf("grad = %v, want [0 0]", g2)
	}
	// Two zero bases: all partials 0.
	s3 := NewConst(0).Add(Monomial(1, 0, 1))
	g3 := s3.Grad([]float64{0, 0}, 2)
	if g3[0] != 0 || g3[1] != 0 {
		t.Errorf("grad = %v, want [0 0]", g3)
	}
}

// Property: the analytic gradient matches central finite differences on
// random signomials with positive inputs.
func TestQuickGradMatchesFiniteDifference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		s := NewConst(rng.NormFloat64())
		for k := 0; k < 6; k++ {
			nvars := 1 + rng.Intn(4)
			vars := make([]int, nvars)
			for i := range vars {
				vars[i] = rng.Intn(n)
			}
			s.Add(Monomial(rng.NormFloat64(), vars...))
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = 0.1 + rng.Float64()
		}
		g := s.Grad(x, n)
		const h = 1e-6
		for i := 0; i < n; i++ {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[i] += h
			xm[i] -= h
			fd := (s.Eval(xp) - s.Eval(xm)) / (2 * h)
			if math.Abs(fd-g[i]) > 1e-4*(1+math.Abs(fd)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAddScaled(t *testing.T) {
	a := NewConst(1).Add(Monomial(2, 0))
	b := NewConst(3).Add(Monomial(4, 1))
	a.AddScaled(b, 0.5)
	x := []float64{10, 100}
	if got, want := a.Eval(x), 1+2*10+0.5*(3+4*100); got != want {
		t.Errorf("Eval = %v, want %v", got, want)
	}
	// Factors are immutable once built, so AddScaled may alias o's factor
	// slices — but the coefficients must stay independent.
	a.Terms[1].Coef = 99
	if b.Terms[0].Coef != 4 {
		t.Errorf("AddScaled shared coefficient storage: b coef = %v, want 4", b.Terms[0].Coef)
	}
	if b.Terms[0].Factors[0].Var != 1 || b.Terms[0].Factors[0].Exp != 1 {
		t.Errorf("AddScaled corrupted b's factors: %+v", b.Terms[0].Factors[0])
	}
}

func TestNormalizeMergesAndDrops(t *testing.T) {
	s := NewConst(0).Add(
		Monomial(1, 0, 1),
		Monomial(2, 1, 0), // same factor multiset as above
		Monomial(3, 2),
		Monomial(-3, 2), // cancels with the previous term
	)
	s.Normalize()
	if s.NumTerms() != 1 {
		t.Fatalf("NumTerms after Normalize = %d, want 1", s.NumTerms())
	}
	if s.Terms[0].Coef != 3 {
		t.Errorf("merged coef = %v, want 3", s.Terms[0].Coef)
	}
}

func TestNormalizePreservesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewConst(rng.NormFloat64())
	for k := 0; k < 20; k++ {
		vars := make([]int, 1+rng.Intn(3))
		for i := range vars {
			vars[i] = rng.Intn(3)
		}
		s.Add(Monomial(rng.NormFloat64(), vars...))
	}
	x := []float64{0.3, 0.7, 1.9}
	before := s.Eval(x)
	s.Normalize()
	after := s.Eval(x)
	if math.Abs(before-after) > 1e-12 {
		t.Errorf("Normalize changed value: %v vs %v", before, after)
	}
}

func TestAddConstChainable(t *testing.T) {
	s := NewConst(1).AddConst(2).Add(Monomial(1, 0))
	if got := s.Eval([]float64{5}); got != 8 {
		t.Errorf("Eval = %v, want 8", got)
	}
}

func TestString(t *testing.T) {
	s := NewConst(1).Add(Monomial(2, 0), Monomial(3, 1, 1))
	str := s.String()
	for _, want := range []string{"1", "2·x0", "3·x1^2"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func BenchmarkEval(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewConst(0)
	for k := 0; k < 500; k++ {
		vars := make([]int, 1+rng.Intn(5))
		for i := range vars {
			vars[i] = rng.Intn(64)
		}
		s.Add(Monomial(rng.NormFloat64(), vars...))
	}
	x := make([]float64, 64)
	for i := range x {
		x[i] = 0.1 + rng.Float64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Eval(x)
	}
	_ = sink
}

func BenchmarkAddGrad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewConst(0)
	for k := 0; k < 500; k++ {
		vars := make([]int, 1+rng.Intn(5))
		for i := range vars {
			vars[i] = rng.Intn(64)
		}
		s.Add(Monomial(rng.NormFloat64(), vars...))
	}
	x := make([]float64, 64)
	g := make([]float64, 64)
	for i := range x {
		x[i] = 0.1 + rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddGrad(x, g, 1)
	}
}
