package signomial

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary codec for signomials, used by the SGP job serialization of the
// distributed solve farm (DESIGN.md §13). The encoding is positional and
// exact: coefficients and exponents are stored as their IEEE-754 bit
// patterns, and term/factor order is preserved, so a decoded signomial
// evaluates bit-for-bit identically to the original — the property the
// farm's determinism contract rests on.
//
// Layout (all integers little-endian):
//
//	[Const: f64] [numTerms: u32]
//	per term:   [Coef: f64] [numFactors: u32]
//	per factor: [Var: u32]  [Exp: f64]

// ErrCodec marks a malformed signomial or program encoding.
var ErrCodec = errors.New("signomial: malformed encoding")

const (
	factorBytes  = 4 + 8 // Var u32 + Exp f64
	termMinBytes = 8 + 4 // Coef f64 + numFactors u32
)

// AppendBinary appends the binary encoding of s to dst and returns the
// extended slice.
func AppendBinary(dst []byte, s *Signomial) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Const))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Terms)))
	for i := range s.Terms {
		t := &s.Terms[i]
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.Coef))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Factors)))
		for _, f := range t.Factors {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Var))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Exp))
		}
	}
	return dst
}

// DecodeBinary decodes one signomial from the front of data, returning it
// and the number of bytes consumed. Counts are validated against the
// remaining input before any allocation, so hostile lengths cannot
// request absurd slices.
func DecodeBinary(data []byte) (*Signomial, int, error) {
	r := Reader{Data: data}
	s, err := r.Signomial()
	if err != nil {
		return nil, 0, err
	}
	return s, r.Off, nil
}

// Reader is a bounds-checked cursor over a binary buffer, shared by the
// signomial and SGP program decoders. All methods return an ErrCodec-
// wrapped error (and leave the cursor where it stopped) on truncated
// input; they never panic and never over-allocate.
type Reader struct {
	Data []byte
	Off  int
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.Data) - r.Off }

// U8 reads one byte.
func (r *Reader) U8() (byte, error) {
	if r.Remaining() < 1 {
		return 0, fmt.Errorf("%w: truncated byte at offset %d", ErrCodec, r.Off)
	}
	b := r.Data[r.Off]
	r.Off++
	return b, nil
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() (uint32, error) {
	if r.Remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated uint32 at offset %d", ErrCodec, r.Off)
	}
	v := binary.LittleEndian.Uint32(r.Data[r.Off:])
	r.Off += 4
	return v, nil
}

// F64 reads a little-endian IEEE-754 double.
func (r *Reader) F64() (float64, error) {
	if r.Remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated float64 at offset %d", ErrCodec, r.Off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.Data[r.Off:]))
	r.Off += 8
	return v, nil
}

// Count reads a u32 element count and validates it against the remaining
// bytes assuming each element occupies at least minBytes, so a corrupt
// length can never drive an allocation larger than the input itself.
func (r *Reader) Count(minBytes int) (int, error) {
	n, err := r.U32()
	if err != nil {
		return 0, err
	}
	if minBytes > 0 && int64(n)*int64(minBytes) > int64(r.Remaining()) {
		return 0, fmt.Errorf("%w: count %d at offset %d exceeds remaining %d bytes",
			ErrCodec, n, r.Off-4, r.Remaining())
	}
	return int(n), nil
}

// Signomial decodes one signomial at the cursor.
func (r *Reader) Signomial() (*Signomial, error) {
	c, err := r.F64()
	if err != nil {
		return nil, err
	}
	nTerms, err := r.Count(termMinBytes)
	if err != nil {
		return nil, err
	}
	s := &Signomial{Const: c}
	if nTerms > 0 {
		s.Terms = make([]Term, 0, nTerms)
	}
	for i := 0; i < nTerms; i++ {
		coef, err := r.F64()
		if err != nil {
			return nil, err
		}
		nFac, err := r.Count(factorBytes)
		if err != nil {
			return nil, err
		}
		var fs []Factor
		if nFac > 0 {
			fs = make([]Factor, 0, nFac)
		}
		for j := 0; j < nFac; j++ {
			v, err := r.U32()
			if err != nil {
				return nil, err
			}
			exp, err := r.F64()
			if err != nil {
				return nil, err
			}
			fs = append(fs, Factor{Var: int(v), Exp: exp})
		}
		s.Terms = append(s.Terms, Term{Coef: coef, Factors: fs})
	}
	return s, nil
}
