// Package signomial implements the signomial-function algebra that the
// SGP formulation of the paper is built on. A signomial is a sum of terms
//
//	f(x) = Σ_k c_k · x_1^{e_{1k}} · … · x_n^{e_{nk}},   c_k ∈ ℝ, e ∈ ℝ
//
// (Equation (3) of the paper). Here the variables are edge weights, the
// exponents are the edge multiplicities along a walk, and each walk of the
// extended inverse P-distance contributes one monomial with coefficient
// c·(1−c)^{|z|}.
//
// The package provides exact evaluation and analytic gradients, which is
// what makes the hand-rolled SGP solver practical: no numeric
// differentiation is ever needed.
package signomial

import (
	"fmt"
	"math"
	"strings"
)

// Factor is one variable raised to a power inside a monomial.
type Factor struct {
	Var int     // variable index
	Exp float64 // exponent; > 0 in all uses here, ℝ in general
}

// Term is one monomial: Coef · Π x[Var]^Exp. Factors are kept sorted by
// variable index with no duplicates (Monomial and Normalize enforce
// this), and are immutable once a term is built: AddScaled and Normalize
// alias factor slices between terms instead of copying them.
type Term struct {
	Coef    float64
	Factors []Factor
}

// Monomial builds a term from a coefficient and a sequence of variable
// indices, merging repeated variables into exponents. It is the natural
// constructor for a walk: pass the variable index of every edge along the
// walk, with repetition.
func Monomial(coef float64, vars ...int) Term {
	return Term{Coef: coef, Factors: appendFactors(nil, vars)}
}

// appendFactors appends the sorted, multiplicity-merged factors of vars
// to dst. vars is scratch and may be reordered in place; walk monomials
// have a handful of variables, so an insertion sort beats any map- or
// sort.Slice-based grouping and allocates nothing.
func appendFactors(dst []Factor, vars []int) []Factor {
	for i := 1; i < len(vars); i++ {
		v := vars[i]
		j := i - 1
		for j >= 0 && vars[j] > v {
			vars[j+1] = vars[j]
			j--
		}
		vars[j+1] = v
	}
	for i := 0; i < len(vars); {
		j := i + 1
		for j < len(vars) && vars[j] == vars[i] {
			j++
		}
		dst = append(dst, Factor{Var: vars[i], Exp: float64(j - i)})
		i = j
	}
	return dst
}

// Builder constructs terms for hot encoding loops. Factor storage comes
// from an internal arena, amortizing what would otherwise be one slice
// allocation per walk monomial; the per-monomial variable scratch is
// reused across terms. A Builder is not safe for concurrent use — the
// parallel flush pipeline gives each cluster solve its own.
type Builder struct {
	arena []Factor
	vars  []int
}

// StartMonomial begins a new monomial, discarding any unfinished one.
func (b *Builder) StartMonomial() { b.vars = b.vars[:0] }

// Var appends one variable occurrence to the current monomial.
func (b *Builder) Var(i int) { b.vars = append(b.vars, i) }

// Finish completes the current monomial with the given coefficient. The
// returned term's factors live in the builder's arena but are immutable,
// so terms stay valid for the life of the signomials they join.
func (b *Builder) Finish(coef float64) Term {
	start := len(b.arena)
	b.arena = appendFactors(b.arena, b.vars)
	// Cap the slice at its length so a later arena append can never
	// write into (and a Finish never shares) this term's factors.
	fs := b.arena[start:len(b.arena):len(b.arena)]
	return Term{Coef: coef, Factors: fs}
}

// Eval evaluates the term at x.
func (t Term) Eval(x []float64) float64 {
	v := t.Coef
	for _, f := range t.Factors {
		v *= powFast(x[f.Var], f.Exp)
	}
	return v
}

// powFast computes base^exp with a fast path for small integer exponents,
// which dominate in walk monomials.
func powFast(base, exp float64) float64 {
	switch exp {
	case 1:
		return base
	case 2:
		return base * base
	case 3:
		return base * base * base
	case 4:
		b2 := base * base
		return b2 * b2
	}
	if e := int(exp); float64(e) == exp && e > 0 && e < 16 {
		v := 1.0
		for i := 0; i < e; i++ {
			v *= base
		}
		return v
	}
	return math.Pow(base, exp)
}

// Signomial is a sum of terms with an optional constant. The zero value
// is the constant 0.
type Signomial struct {
	Const float64
	Terms []Term
}

// NewConst returns the constant signomial c.
func NewConst(c float64) *Signomial { return &Signomial{Const: c} }

// Add appends terms (and is chainable).
func (s *Signomial) Add(terms ...Term) *Signomial {
	s.Terms = append(s.Terms, terms...)
	return s
}

// AddConst adds to the constant part (and is chainable).
func (s *Signomial) AddConst(c float64) *Signomial {
	s.Const += c
	return s
}

// AddScaled appends every term of o scaled by k, and k·o.Const. The new
// terms alias o's factor slices (factors are immutable once built), so
// the operation allocates nothing beyond the term headers.
func (s *Signomial) AddScaled(o *Signomial, k float64) *Signomial {
	s.Const += k * o.Const
	for _, t := range o.Terms {
		s.Terms = append(s.Terms, Term{Coef: k * t.Coef, Factors: t.Factors})
	}
	return s
}

// NumTerms returns the number of non-constant terms.
func (s *Signomial) NumTerms() int { return len(s.Terms) }

// Eval evaluates the signomial at x.
func (s *Signomial) Eval(x []float64) float64 {
	v := s.Const
	for i := range s.Terms {
		v += s.Terms[i].Eval(x)
	}
	return v
}

// EvalAt evaluates the signomial reading variable i's value from at(i) —
// the indirection lets callers evaluate at points they never materialize
// as a vector (e.g. a program's per-variable initial values).
func (s *Signomial) EvalAt(at func(int) float64) float64 {
	v := s.Const
	for i := range s.Terms {
		t := &s.Terms[i]
		tv := t.Coef
		for _, f := range t.Factors {
			tv *= powFast(at(f.Var), f.Exp)
		}
		v += tv
	}
	return v
}

// AddGrad accumulates scale·∇s(x) into g. g must have length ≥ the
// largest variable index used.
func (s *Signomial) AddGrad(x []float64, g []float64, scale float64) {
	for i := range s.Terms {
		t := &s.Terms[i]
		// ∂/∂x_j of c·Πx_i^{e_i} = e_j · (term value) / x_j for x_j ≠ 0.
		// Compute the full product once, then divide out each factor; fall
		// back to an explicit product when a factor's base is 0.
		full := t.Coef
		zeroAt := -1
		for k, f := range t.Factors {
			b := x[f.Var]
			if b == 0 {
				if zeroAt >= 0 {
					// Two zero bases: every partial derivative is 0.
					zeroAt = -2
					break
				}
				zeroAt = k
				continue
			}
			full *= powFast(b, f.Exp)
		}
		switch {
		case zeroAt == -2:
			continue
		case zeroAt >= 0:
			// Only the zero-base factor has a (possibly) nonzero partial:
			// d/dx_j x_j^e at 0 is 0 for e > 1 and 1 for e == 1.
			f := t.Factors[zeroAt]
			if f.Exp == 1 {
				g[f.Var] += scale * full
			}
			continue
		default:
			for _, f := range t.Factors {
				g[f.Var] += scale * f.Exp * full / x[f.Var]
			}
		}
	}
}

// Grad returns ∇s(x) as a fresh slice of length n.
func (s *Signomial) Grad(x []float64, n int) []float64 {
	g := make([]float64, n)
	s.AddGrad(x, g, 1)
	return g
}

// MaxVar returns the largest variable index referenced, or -1 for a
// constant signomial.
func (s *Signomial) MaxVar() int {
	max := -1
	for _, t := range s.Terms {
		for _, f := range t.Factors {
			if f.Var > max {
				max = f.Var
			}
		}
	}
	return max
}

// Normalize merges terms with identical factor sets, drops zero-coefficient
// terms, and returns the receiver. It reduces evaluation cost when many
// walks share an edge-multiset. First-seen term order is preserved, so
// evaluation order — and thus float rounding — is deterministic.
//
// Terms are bucketed by an FNV-1a hash of their factor lists (with exact
// factor comparison inside a bucket) instead of a rendered string key:
// the encoder normalizes one signomial per (vote, answer) pair with one
// term per walk, and per-term string formatting dominated that path.
func (s *Signomial) Normalize() *Signomial {
	merged := make(map[uint64][]int, len(s.Terms))
	out := s.Terms[:0]
	for _, t := range s.Terms {
		h := factorHash(t.Factors)
		found := -1
		for _, i := range merged[h] {
			if factorsEqual(out[i].Factors, t.Factors) {
				found = i
				break
			}
		}
		if found >= 0 {
			out[found].Coef += t.Coef
			continue
		}
		merged[h] = append(merged[h], len(out))
		out = append(out, t)
	}
	// Drop terms that cancelled to zero.
	final := out[:0]
	for _, t := range out {
		if t.Coef != 0 {
			final = append(final, t)
		}
	}
	s.Terms = final
	return s
}

// factorHash is FNV-1a over the factor list's variable indices and
// exponent bit patterns.
func factorHash(fs []Factor) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, f := range fs {
		mix(uint64(f.Var))
		mix(math.Float64bits(f.Exp))
	}
	return h
}

// factorsEqual reports exact equality of two sorted factor lists.
func factorsEqual(a, b []Factor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the signomial for debugging.
func (s *Signomial) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%g", s.Const)
	for _, t := range s.Terms {
		fmt.Fprintf(&b, " + %g", t.Coef)
		for _, f := range t.Factors {
			if f.Exp == 1 {
				fmt.Fprintf(&b, "·x%d", f.Var)
			} else {
				fmt.Fprintf(&b, "·x%d^%g", f.Var, f.Exp)
			}
		}
	}
	return b.String()
}
