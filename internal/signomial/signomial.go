// Package signomial implements the signomial-function algebra that the
// SGP formulation of the paper is built on. A signomial is a sum of terms
//
//	f(x) = Σ_k c_k · x_1^{e_{1k}} · … · x_n^{e_{nk}},   c_k ∈ ℝ, e ∈ ℝ
//
// (Equation (3) of the paper). Here the variables are edge weights, the
// exponents are the edge multiplicities along a walk, and each walk of the
// extended inverse P-distance contributes one monomial with coefficient
// c·(1−c)^{|z|}.
//
// The package provides exact evaluation and analytic gradients, which is
// what makes the hand-rolled SGP solver practical: no numeric
// differentiation is ever needed.
package signomial

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Factor is one variable raised to a power inside a monomial.
type Factor struct {
	Var int     // variable index
	Exp float64 // exponent; > 0 in all uses here, ℝ in general
}

// Term is one monomial: Coef · Π x[Var]^Exp. Factors are kept sorted by
// variable index with no duplicates (Monomial and normalize enforce this).
type Term struct {
	Coef    float64
	Factors []Factor
}

// Monomial builds a term from a coefficient and a sequence of variable
// indices, merging repeated variables into exponents. It is the natural
// constructor for a walk: pass the variable index of every edge along the
// walk, with repetition.
func Monomial(coef float64, vars ...int) Term {
	counts := make(map[int]float64, len(vars))
	for _, v := range vars {
		counts[v]++
	}
	fs := make([]Factor, 0, len(counts))
	for v, e := range counts {
		fs = append(fs, Factor{Var: v, Exp: e})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].Var < fs[j].Var })
	return Term{Coef: coef, Factors: fs}
}

// Eval evaluates the term at x.
func (t Term) Eval(x []float64) float64 {
	v := t.Coef
	for _, f := range t.Factors {
		v *= powFast(x[f.Var], f.Exp)
	}
	return v
}

// powFast computes base^exp with a fast path for small integer exponents,
// which dominate in walk monomials.
func powFast(base, exp float64) float64 {
	switch exp {
	case 1:
		return base
	case 2:
		return base * base
	case 3:
		return base * base * base
	case 4:
		b2 := base * base
		return b2 * b2
	}
	if e := int(exp); float64(e) == exp && e > 0 && e < 16 {
		v := 1.0
		for i := 0; i < e; i++ {
			v *= base
		}
		return v
	}
	return math.Pow(base, exp)
}

// Signomial is a sum of terms with an optional constant. The zero value
// is the constant 0.
type Signomial struct {
	Const float64
	Terms []Term
}

// NewConst returns the constant signomial c.
func NewConst(c float64) *Signomial { return &Signomial{Const: c} }

// Add appends terms (and is chainable).
func (s *Signomial) Add(terms ...Term) *Signomial {
	s.Terms = append(s.Terms, terms...)
	return s
}

// AddConst adds to the constant part (and is chainable).
func (s *Signomial) AddConst(c float64) *Signomial {
	s.Const += c
	return s
}

// AddScaled appends every term of o scaled by k, and k·o.Const.
func (s *Signomial) AddScaled(o *Signomial, k float64) *Signomial {
	s.Const += k * o.Const
	for _, t := range o.Terms {
		nt := Term{Coef: k * t.Coef, Factors: append([]Factor(nil), t.Factors...)}
		s.Terms = append(s.Terms, nt)
	}
	return s
}

// NumTerms returns the number of non-constant terms.
func (s *Signomial) NumTerms() int { return len(s.Terms) }

// Eval evaluates the signomial at x.
func (s *Signomial) Eval(x []float64) float64 {
	v := s.Const
	for i := range s.Terms {
		v += s.Terms[i].Eval(x)
	}
	return v
}

// AddGrad accumulates scale·∇s(x) into g. g must have length ≥ the
// largest variable index used.
func (s *Signomial) AddGrad(x []float64, g []float64, scale float64) {
	for i := range s.Terms {
		t := &s.Terms[i]
		// ∂/∂x_j of c·Πx_i^{e_i} = e_j · (term value) / x_j for x_j ≠ 0.
		// Compute the full product once, then divide out each factor; fall
		// back to an explicit product when a factor's base is 0.
		full := t.Coef
		zeroAt := -1
		for k, f := range t.Factors {
			b := x[f.Var]
			if b == 0 {
				if zeroAt >= 0 {
					// Two zero bases: every partial derivative is 0.
					zeroAt = -2
					break
				}
				zeroAt = k
				continue
			}
			full *= powFast(b, f.Exp)
		}
		switch {
		case zeroAt == -2:
			continue
		case zeroAt >= 0:
			// Only the zero-base factor has a (possibly) nonzero partial:
			// d/dx_j x_j^e at 0 is 0 for e > 1 and 1 for e == 1.
			f := t.Factors[zeroAt]
			if f.Exp == 1 {
				g[f.Var] += scale * full
			}
			continue
		default:
			for _, f := range t.Factors {
				g[f.Var] += scale * f.Exp * full / x[f.Var]
			}
		}
	}
}

// Grad returns ∇s(x) as a fresh slice of length n.
func (s *Signomial) Grad(x []float64, n int) []float64 {
	g := make([]float64, n)
	s.AddGrad(x, g, 1)
	return g
}

// MaxVar returns the largest variable index referenced, or -1 for a
// constant signomial.
func (s *Signomial) MaxVar() int {
	max := -1
	for _, t := range s.Terms {
		for _, f := range t.Factors {
			if f.Var > max {
				max = f.Var
			}
		}
	}
	return max
}

// Normalize merges terms with identical factor sets, drops zero-coefficient
// terms, and returns the receiver. It reduces evaluation cost when many
// walks share an edge-multiset.
func (s *Signomial) Normalize() *Signomial {
	type key string
	merged := make(map[key]int)
	out := s.Terms[:0]
	var b strings.Builder
	for _, t := range s.Terms {
		b.Reset()
		for _, f := range t.Factors {
			fmt.Fprintf(&b, "%d^%g,", f.Var, f.Exp)
		}
		k := key(b.String())
		if i, ok := merged[k]; ok {
			out[i].Coef += t.Coef
			continue
		}
		merged[k] = len(out)
		out = append(out, t)
	}
	// Drop terms that cancelled to zero.
	final := out[:0]
	for _, t := range out {
		if t.Coef != 0 {
			final = append(final, t)
		}
	}
	s.Terms = final
	return s
}

// String renders the signomial for debugging.
func (s *Signomial) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%g", s.Const)
	for _, t := range s.Terms {
		fmt.Fprintf(&b, " + %g", t.Coef)
		for _, f := range t.Factors {
			if f.Exp == 1 {
				fmt.Fprintf(&b, "·x%d", f.Var)
			} else {
				fmt.Fprintf(&b, "·x%d^%g", f.Var, f.Exp)
			}
		}
	}
	return b.String()
}
