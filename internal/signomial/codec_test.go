package signomial

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	cases := []*Signomial{
		NewConst(0),
		NewConst(-3.25),
		NewConst(1e-9).Add(Monomial(1, 4), Monomial(-1, 0)),
		NewConst(math.Pi).Add(
			Monomial(0.123456789, 0, 0, 3), // repeated var → exponent 2
			Monomial(-42, 7),
			Term{Coef: 2, Factors: []Factor{{Var: 1, Exp: -0.5}, {Var: 2, Exp: 3.75}}},
		),
	}
	for i, s := range cases {
		enc := AppendBinary(nil, s)
		got, n, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(enc))
		}
		// Exact bit equality of the re-encoding implies exact structural
		// equality of the decoded signomial.
		if re := AppendBinary(nil, got); !bytes.Equal(re, enc) {
			t.Fatalf("case %d: re-encoding differs", i)
		}
		// And the decoded signomial must evaluate bit-identically.
		x := []float64{0.31, 0.47, 0.59, 0.73, 0.89, 0.11, 0.23, 0.91}
		if a, b := s.Eval(x), got.Eval(x); a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("case %d: Eval %v != %v", i, a, b)
		}
	}
}

func TestBinaryRoundTripConcatenated(t *testing.T) {
	a := NewConst(1).Add(Monomial(2, 0))
	b := NewConst(-1).Add(Monomial(3, 1, 2))
	enc := AppendBinary(AppendBinary(nil, a), b)
	gotA, n, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	gotB, m, err := DecodeBinary(enc[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != len(enc) {
		t.Fatalf("consumed %d+%d of %d", n, m, len(enc))
	}
	if !bytes.Equal(AppendBinary(nil, gotA), AppendBinary(nil, a)) ||
		!bytes.Equal(AppendBinary(nil, gotB), AppendBinary(nil, b)) {
		t.Fatal("concatenated decode mismatch")
	}
}

func TestDecodeBinaryRejectsCorruption(t *testing.T) {
	s := NewConst(1).Add(Monomial(2, 0, 1), Monomial(-3, 2))
	enc := AppendBinary(nil, s)
	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeBinary(enc[:n]); !errors.Is(err, ErrCodec) {
			t.Fatalf("prefix %d: want ErrCodec, got %v", n, err)
		}
	}
	// A hostile term count must not drive a huge allocation.
	hostile := AppendBinary(nil, NewConst(0))
	hostile[8] = 0xff // numTerms low byte
	hostile[9] = 0xff
	hostile[10] = 0xff
	hostile[11] = 0x7f
	if _, _, err := DecodeBinary(hostile); !errors.Is(err, ErrCodec) {
		t.Fatalf("hostile count: want ErrCodec, got %v", err)
	}
}
