//go:build !race

package signomial

// Allocation guards for the hot numeric kernels. Excluded under the
// race detector, which instruments allocations and breaks the counts.

import "testing"

func benchSignomial() (*Signomial, []float64) {
	s := NewConst(0.5)
	for i := 0; i < 32; i++ {
		s.Add(Monomial(0.1*float64(i+1), i%7, (i+1)%7, (i+2)%7))
	}
	x := make([]float64, 8)
	for i := range x {
		x[i] = 0.5 + 0.05*float64(i)
	}
	return s, x
}

func TestEvalZeroAllocs(t *testing.T) {
	s, x := benchSignomial()
	if n := testing.AllocsPerRun(200, func() { s.Eval(x) }); n != 0 {
		t.Errorf("Eval allocates %v per run, want 0", n)
	}
}

func TestEvalAtZeroAllocs(t *testing.T) {
	s, x := benchSignomial()
	at := func(i int) float64 { return x[i] }
	if n := testing.AllocsPerRun(200, func() { s.EvalAt(at) }); n != 0 {
		t.Errorf("EvalAt allocates %v per run, want 0", n)
	}
}

func TestAddGradZeroAllocs(t *testing.T) {
	s, x := benchSignomial()
	g := make([]float64, len(x))
	if n := testing.AllocsPerRun(200, func() { s.AddGrad(x, g, 1) }); n != 0 {
		t.Errorf("AddGrad allocates %v per run, want 0", n)
	}
}

func TestAddScaledZeroAllocsSteadyState(t *testing.T) {
	s, _ := benchSignomial()
	dst := NewConst(0)
	// Preallocate the term slice; steady-state AddScaled then only writes
	// term headers (the factor slices are aliased, never copied).
	dst.Terms = make([]Term, 0, 300*s.NumTerms())
	if n := testing.AllocsPerRun(200, func() {
		dst.Terms = dst.Terms[:0]
		dst.AddScaled(s, 0.5)
	}); n != 0 {
		t.Errorf("AddScaled allocates %v per run with capacity available, want 0", n)
	}
}

// Builder amortizes factor storage: after the arena has grown to the
// working-set size, building a monomial allocates nothing.
func TestBuilderAmortizedAllocs(t *testing.T) {
	var b Builder
	build := func() {
		b.StartMonomial()
		b.Var(3)
		b.Var(1)
		b.Var(3)
		b.Finish(2.5)
	}
	n := testing.AllocsPerRun(1000, build)
	if n > 0.1 {
		t.Errorf("Builder allocates %v per monomial, want amortized ~0", n)
	}
	b.StartMonomial()
	b.Var(2)
	b.Var(2)
	term := b.Finish(4)
	if len(term.Factors) != 1 || term.Factors[0] != (Factor{Var: 2, Exp: 2}) {
		t.Errorf("Builder term = %+v", term)
	}
}
