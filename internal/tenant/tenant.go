// Package tenant hosts N fully independent serving stacks — engine,
// vote stream, reputation tracker, rank cache, admission controller,
// and durability manager — inside one kgvoted process (DESIGN.md §17).
//
// Each tenant is a complete *server.Server built by a caller-supplied
// Factory, so every isolation property of the single-tenant daemon
// (single-writer gate, epoch-published snapshots, WAL-first votes)
// holds per tenant with zero shared mutable state between them. The
// only process-wide resources are the listener, the telemetry family
// table (tenants separate their series with a tenant="..." label via
// telemetry.WithLabels), and the OS page cache.
//
// Durability is namespaced: tenant state lives under
// <data-dir>/tenants/<id>/, each directory recovered independently at
// boot. A tenant whose log fails recovery is quarantined in a failed
// set — it answers 503 while every other tenant keeps serving — so one
// corrupt WAL never poisons its neighbors.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"kgvote/api"
	"kgvote/internal/server"
	"kgvote/internal/telemetry"
)

// DefaultID is the tenant every un-scoped /v1 request resolves to. It
// always exists, cannot be created or deleted, and keeps the legacy
// shed codes (server.DefaultTenant re-exported to avoid an import for
// callers that only deal in tenants).
const DefaultID = server.DefaultTenant

// MaxIDLen caps tenant ids at 64 bytes, matching the voter-id cap.
const MaxIDLen = 64

// Registry errors; the HTTP layer maps them onto the error envelope
// (tenant_not_found, tenant_exists, bad_request).
var (
	ErrNotFound  = errors.New("tenant not found")
	ErrExists    = errors.New("tenant already exists")
	ErrInvalidID = errors.New("invalid tenant id")
	ErrReserved  = errors.New("tenant id is reserved")
)

// ValidID reports whether id is a well-formed tenant id:
// ^[a-z0-9][a-z0-9_-]{0,63}$. Reserved names (admin) are well-formed
// but rejected at creation; ValidID only checks shape.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > MaxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '_' || c == '-':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// reserved ids can never be created as tenants: admin is the admin API
// namespace under /v1/admin, default is created implicitly at Open.
func reserved(id string) bool {
	return id == "admin"
}

// Factory builds one tenant's complete server stack rooted at dir
// (empty dir = no durability, for tests and ephemeral tenants). It
// returns the server plus a closer that releases the tenant's
// resources (durable manager, background flushers) after the server
// has drained; the closer may be nil.
type Factory func(id, dir string) (*server.Server, func() error, error)

// Options configures a Registry.
type Options struct {
	// Factory builds each tenant's stack. Required.
	Factory Factory
	// DataDir is the daemon's data root; tenant state is namespaced
	// under DataDir/tenants/<id>. Empty disables durability.
	DataDir string
	// Telemetry, when non-nil, registers registry-level gauges
	// (kgvote_tenants, kgvote_tenants_failed_total).
	Telemetry *telemetry.Registry
}

// Tenant is one hosted serving stack.
type Tenant struct {
	ID      string
	srv     *server.Server
	handler http.Handler
	close   func() error
}

// Server returns the tenant's server (tests and stats use it).
func (t *Tenant) Server() *server.Server { return t.srv }

// Registry owns the tenant map. Reads (request routing) take an
// RLock; tenant creation builds the stack outside the lock with the id
// reserved in a building set, so a slow recovery never blocks serving
// traffic for other tenants.
type Registry struct {
	factory Factory
	dataDir string

	mu       sync.RWMutex
	tenants  map[string]*Tenant
	failed   map[string]error
	building map[string]bool
}

// New returns an empty registry. Call Open to boot tenants; the
// factory is not invoked until then, so callers can capture the
// registry in factory closures (the default tenant's stats hook needs
// it) before any tenant exists.
func New(o Options) *Registry {
	g := &Registry{
		factory:  o.Factory,
		dataDir:  o.DataDir,
		tenants:  make(map[string]*Tenant),
		failed:   make(map[string]error),
		building: make(map[string]bool),
	}
	if o.Telemetry != nil {
		o.Telemetry.GaugeFunc("kgvote_tenants", "Live tenants hosted by the registry.", nil, func() float64 {
			g.mu.RLock()
			defer g.mu.RUnlock()
			return float64(len(g.tenants))
		})
		o.Telemetry.GaugeFunc("kgvote_tenants_failed", "Tenants quarantined by a boot recovery failure.", nil, func() float64 {
			g.mu.RLock()
			defer g.mu.RUnlock()
			return float64(len(g.failed))
		})
	}
	return g
}

// Dir returns the durability directory for tenant id, or "" when the
// registry runs without a data dir.
func (g *Registry) Dir(id string) string {
	if g.dataDir == "" {
		return ""
	}
	return filepath.Join(g.dataDir, "tenants", id)
}

// Open boots the registry: the default tenant, every id in ids, and —
// when a data dir is configured — every tenant directory already on
// disk (so tenants created at runtime come back after a restart). Each
// tenant recovers independently; a recovery failure quarantines that
// tenant in the failed set and never aborts the others. Open returns
// an error only if the default tenant cannot be built, since the
// un-scoped /v1 alias cannot work without it.
func (g *Registry) Open(ids []string) error {
	want := map[string]bool{DefaultID: true}
	for _, id := range ids {
		if id != "" {
			want[id] = true
		}
	}
	if g.dataDir != "" {
		entries, err := os.ReadDir(filepath.Join(g.dataDir, "tenants"))
		if err == nil {
			for _, e := range entries {
				if e.IsDir() && ValidID(e.Name()) && !reserved(e.Name()) {
					want[e.Name()] = true
				}
			}
		}
	}
	order := make([]string, 0, len(want))
	for id := range want {
		order = append(order, id)
	}
	sort.Strings(order)
	for _, id := range order {
		if !ValidID(id) || reserved(id) {
			g.mu.Lock()
			g.failed[id] = fmt.Errorf("%w: %q", ErrInvalidID, id)
			g.mu.Unlock()
			continue
		}
		if err := g.boot(id); err != nil {
			if id == DefaultID {
				return fmt.Errorf("tenant %q: %w", id, err)
			}
			g.mu.Lock()
			g.failed[id] = err
			g.mu.Unlock()
		}
	}
	return nil
}

// boot builds one tenant and inserts it.
func (g *Registry) boot(id string) error {
	dir := g.Dir(id)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	srv, closer, err := g.factory(id, dir)
	if err != nil {
		return err
	}
	t := &Tenant{ID: id, srv: srv, handler: srv.Handler(), close: closer}
	g.mu.Lock()
	g.tenants[id] = t
	delete(g.failed, id)
	g.mu.Unlock()
	return nil
}

// Get returns the live tenant for id.
func (g *Registry) Get(id string) (*Tenant, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	t, ok := g.tenants[id]
	return t, ok
}

// FailedErr returns the quarantine error for id, or nil if id is not
// quarantined.
func (g *Registry) FailedErr(id string) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.failed[id]
}

// IDs returns the live tenant ids, sorted.
func (g *Registry) IDs() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.tenants))
	for id := range g.tenants {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Create provisions a new tenant at runtime. The id is reserved in a
// building set while the factory runs outside the lock, so concurrent
// creates of the same id collide with ErrExists and other tenants keep
// serving. A quarantined id may be re-created; success clears the
// quarantine.
func (g *Registry) Create(id string) (*Tenant, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("%w: %q", ErrInvalidID, id)
	}
	if reserved(id) {
		return nil, fmt.Errorf("%w: %q", ErrReserved, id)
	}
	g.mu.Lock()
	if _, ok := g.tenants[id]; ok {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	if g.building[id] {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: %q (creation in flight)", ErrExists, id)
	}
	g.building[id] = true
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.building, id)
		g.mu.Unlock()
	}()
	if err := g.boot(id); err != nil {
		return nil, err
	}
	t, _ := g.Get(id)
	return t, nil
}

// Delete removes a tenant: it leaves the map immediately (requests see
// tenant_not_found), then drains and closes outside the lock. With
// purge, the tenant's durability directory is removed; otherwise the
// WAL stays on disk and the next Open resurrects the tenant. The
// default tenant cannot be deleted. Deleting a quarantined tenant
// clears the quarantine (purge also removes its directory).
func (g *Registry) Delete(id string, purge bool) error {
	if id == DefaultID {
		return fmt.Errorf("%w: %q", ErrReserved, id)
	}
	g.mu.Lock()
	t, ok := g.tenants[id]
	delete(g.tenants, id)
	_, wasFailed := g.failed[id]
	delete(g.failed, id)
	g.mu.Unlock()
	if !ok && !wasFailed {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if t != nil {
		t.srv.BeginDrain()
		_ = t.srv.Drain(context.Background())
		if t.close != nil {
			_ = t.close()
		}
	}
	if purge {
		if dir := g.Dir(id); dir != "" {
			if err := os.RemoveAll(dir); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary builds the tenants section of /v1/stats and the admin list:
// one row per live tenant (from its server's stats) plus one row per
// quarantined tenant, sorted by id.
func (g *Registry) Summary() api.TenantsStats {
	g.mu.RLock()
	live := make([]*Tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		live = append(live, t)
	}
	failed := make(map[string]error, len(g.failed))
	for id, err := range g.failed {
		failed[id] = err
	}
	g.mu.RUnlock()

	out := api.TenantsStats{Count: len(live), Failed: len(failed)}
	for _, t := range live {
		st := t.srv.StatsLocal()
		out.Tenants = append(out.Tenants, api.TenantSummary{
			ID:            t.ID,
			State:         "serving",
			Documents:     st.Documents,
			VotesAccepted: st.VotesAccepted,
			VotesPending:  st.VotesPending,
			Flushes:       st.Flushes,
			Epoch:         st.Epoch,
			Draining:      st.Draining,
		})
	}
	for id, err := range failed {
		out.Tenants = append(out.Tenants, api.TenantSummary{ID: id, State: "failed", Error: err.Error()})
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].ID < out.Tenants[j].ID })
	return out
}

// BeginDrain flips every tenant into drain mode (health reports
// draining, new votes shed) ahead of listener shutdown.
func (g *Registry) BeginDrain() {
	for _, t := range g.snapshot() {
		t.srv.BeginDrain()
	}
}

// Close drains and closes every tenant within ctx's budget. Safe to
// call once at process shutdown after the listener stops accepting.
func (g *Registry) Close(ctx context.Context) error {
	var first error
	for _, t := range g.snapshot() {
		if err := t.srv.Drain(ctx); err != nil && first == nil {
			first = err
		}
		if t.close != nil {
			if err := t.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (g *Registry) snapshot() []*Tenant {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		out = append(out, t)
	}
	return out
}
