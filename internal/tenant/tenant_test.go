package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"kgvote/api"
	"kgvote/api/client"
	"kgvote/internal/admit"
	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/qa"
	"kgvote/internal/server"
	"kgvote/internal/synth"
)

var engineOpts = core.Options{K: 5, L: 4}

func testCorpus(t testing.TB) *qa.Corpus {
	t.Helper()
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

// testFactory builds identical stacks per tenant (the golden test
// depends on that). With a dir it is durable, mirroring the kgvoted
// factory: open → recover-or-bootstrap → serve.
func testFactory(t testing.TB, sopts server.Options) Factory {
	return func(id, dir string) (*server.Server, func() error, error) {
		var (
			mgr *durable.Manager
			rec *durable.Recovered
			sys *qa.System
			err error
		)
		if dir != "" {
			mgr, err = durable.Open(durable.Options{Dir: dir, Engine: engineOpts})
			if err != nil {
				return nil, nil, err
			}
			if rec, err = mgr.Recover(); err != nil {
				mgr.Close()
				return nil, nil, err
			}
		}
		if rec != nil {
			sys = rec.Sys
		} else {
			if sys, err = qa.Build(testCorpus(t), engineOpts); err != nil {
				if mgr != nil {
					mgr.Close()
				}
				return nil, nil, err
			}
			if mgr != nil {
				if err := mgr.Bootstrap(sys); err != nil {
					mgr.Close()
					return nil, nil, err
				}
			}
		}
		o := sopts
		o.Tenant = id
		o.Durable = mgr
		o.Recovered = rec
		srv, err := server.NewWithOptions(sys, o)
		if err != nil {
			if mgr != nil {
				mgr.Close()
			}
			return nil, nil, err
		}
		closer := func() error {
			if mgr != nil {
				return mgr.Close()
			}
			return nil
		}
		return srv, closer, nil
	}
}

func openRegistry(t *testing.T, sopts server.Options, ids ...string) *Registry {
	t.Helper()
	g := New(Options{Factory: testFactory(t, sopts)})
	if err := g.Open(ids); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close(context.Background()) })
	return g
}

func defaultSopts() server.Options {
	return server.Options{BatchSize: 2, Solver: core.StreamMulti}
}

// decodeEnvelope pulls the error envelope out of a response body;
// empty code means the body was not an envelope.
func decodeEnvelope(t *testing.T, resp *http.Response) api.Error {
	t.Helper()
	var env api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return api.Error{}
	}
	return env.Error
}

func TestScopedRouting(t *testing.T) {
	g := openRegistry(t, defaultSopts(), "acme", strings.Repeat("a", 64))
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		path   string
		status int
		code   string // expected envelope code; "" = don't check
	}{
		{"scoped health", "/v1/t/acme/healthz", 200, ""},
		{"scoped stats", "/v1/t/acme/stats", 200, ""},
		{"default alias via scope", "/v1/t/default/healthz", 200, ""},
		{"unknown tenant", "/v1/t/nope/healthz", 404, api.CodeTenantNotFound},
		{"uppercase id", "/v1/t/ACME/healthz", 404, api.CodeTenantNotFound},
		{"leading dash", "/v1/t/-acme/healthz", 404, api.CodeTenantNotFound},
		{"leading underscore", "/v1/t/_acme/healthz", 404, api.CodeTenantNotFound},
		{"64-byte id serves", "/v1/t/" + strings.Repeat("a", 64) + "/healthz", 200, ""},
		{"65-byte id rejected", "/v1/t/" + strings.Repeat("a", 65) + "/healthz", 404, api.CodeTenantNotFound},
		{"reserved admin", "/v1/t/admin/healthz", 404, api.CodeTenantNotFound},
		{"empty id", "/v1/t//healthz", 404, api.CodeTenantNotFound},
		{"dot id", "/v1/t/../healthz", 404, api.CodeTenantNotFound},
		{"percent-encoded id", "/v1/t/ac%6de/healthz", 200, ""},
		{"percent-encoded slash", "/v1/t/acme%2Fhealthz", 404, api.CodeTenantNotFound},
		{"percent-encoded traversal", "/v1/t/%2e%2e/healthz", 404, api.CodeTenantNotFound},
		{"no subpath", "/v1/t/acme", 404, ""},
		{"unscoped default", "/v1/healthz", 200, ""},
		{"legacy alias", "/healthz", 200, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodGet, ts.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Keep the raw path: the router must see the escaped form.
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.status)
			}
			if tc.code != "" {
				if e := decodeEnvelope(t, resp); e.Code != tc.code {
					t.Fatalf("%s: code %q, want %q", tc.path, e.Code, tc.code)
				}
			}
		})
	}

	// The scoped stats body names its tenant.
	resp, err := http.Get(ts.URL + "/v1/t/acme/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.StatsBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "acme" {
		t.Fatalf("scoped stats tenant = %q, want acme", st.Tenant)
	}
	if st.Serving == nil || st.Serving.Documents != st.Documents {
		t.Fatalf("serving section missing or disagrees with flat fields: %+v", st.Serving)
	}
}

func TestAdminLifecycle(t *testing.T) {
	g := openRegistry(t, defaultSopts())
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	if _, err := c.TenantCreate(ctx, "acme"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Tenant("acme").Stats(ctx); err != nil {
		t.Fatalf("scoped stats after create: %v", err)
	}

	// Duplicate create collides.
	_, err := c.TenantCreate(ctx, "acme")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeTenantExists {
		t.Fatalf("duplicate create: %v, want %s", err, api.CodeTenantExists)
	}
	// So does re-creating the default tenant.
	if _, err := c.TenantCreate(ctx, "default"); err == nil {
		t.Fatal("creating default should fail")
	}
	// Reserved and malformed ids are 400s.
	for _, id := range []string{"admin", "UPPER", "", "-x", strings.Repeat("a", 65)} {
		_, err := c.TenantCreate(ctx, id)
		if !errors.As(err, &apiErr) || apiErr.HTTPStatus != http.StatusBadRequest {
			t.Fatalf("create %q: %v, want 400", id, err)
		}
	}

	list, err := c.TenantList(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, s := range list.Tenants {
		ids = append(ids, s.ID)
	}
	if got := strings.Join(ids, ","); got != "acme,default" {
		t.Fatalf("list = %s, want acme,default", got)
	}

	if _, err := c.TenantDelete(ctx, "default", false); err == nil {
		t.Fatal("deleting default should fail")
	}
	if _, err := c.TenantDelete(ctx, "acme", false); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// Deleted tenants answer tenant_not_found, errors.As-able.
	_, err = c.Tenant("acme").Stats(ctx)
	var nf *api.TenantNotFoundError
	if !errors.As(err, &nf) || nf.Tenant != "acme" {
		t.Fatalf("stats after delete: %v, want TenantNotFoundError{acme}", err)
	}
	if _, err := c.TenantDelete(ctx, "acme", false); err == nil {
		t.Fatal("double delete should fail")
	}
}

// queryEnts picks a deterministic two-entity question that the test
// corpus is guaranteed to know (its first document's vocabulary).
func queryEnts(t testing.TB) map[string]int {
	t.Helper()
	corpus := testCorpus(t)
	keys := make([]string, 0, len(corpus.Docs[0].Entities))
	for k := range corpus.Docs[0].Entities {
		keys = append(keys, k)
	}
	if len(keys) < 2 {
		t.Fatalf("test corpus doc 0 has %d entities, want >= 2", len(keys))
	}
	sort.Strings(keys)
	return map[string]int{keys[0]: 2, keys[1]: 1}
}

// driveAskVote serves one ask and votes best on the scoped handle.
func driveAskVote(t *testing.T, c *client.Client, best int) *api.VoteResponse {
	t.Helper()
	ctx := context.Background()
	ask, err := c.Ask(ctx, api.AskRequest{Entities: queryEnts(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ask.Results) == 0 {
		t.Fatal("empty ranking")
	}
	ranked := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		ranked[i] = r.Doc
	}
	vr, err := c.Vote(ctx, api.VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: ranked[best%len(ranked)]})
	if err != nil {
		t.Fatal(err)
	}
	return vr
}

// rankingBits captures a ranking as exact float bit patterns.
func rankingBits(t *testing.T, c *client.Client) string {
	t.Helper()
	ask, err := c.Ask(context.Background(), api.AskRequest{Entities: queryEnts(t)})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range ask.Results {
		fmt.Fprintf(&b, "%d:%016x;", r.Doc, math.Float64bits(r.Score))
	}
	return b.String()
}

// TestGoldenIsolation: a 4-tenant registry fed per-tenant vote streams
// must be bitwise identical to 4 isolated single-tenant servers fed
// the same streams — co-residency must leak nothing, not even a ULP.
func TestGoldenIsolation(t *testing.T) {
	tenants := []string{"t-a", "t-b", "t-c", "t-d"}
	g := openRegistry(t, defaultSopts(), tenants...)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	solo := make(map[string]*client.Client)
	for _, id := range tenants {
		sys, err := qa.Build(testCorpus(t), engineOpts)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.NewWithOptions(sys, defaultSopts())
		if err != nil {
			t.Fatal(err)
		}
		sts := httptest.NewServer(srv.Handler())
		t.Cleanup(sts.Close)
		solo[id] = client.New(sts.URL)
	}

	// Distinct per-tenant streams: tenant i prefers result (i+k)%n over
	// 4 votes (2 flushed batches at BatchSize=2).
	for i, id := range tenants {
		scoped := client.New(ts.URL).Tenant(id)
		for k := 0; k < 4; k++ {
			driveAskVote(t, scoped, i+k)
			driveAskVote(t, solo[id], i+k)
		}
	}
	for i, id := range tenants {
		got := rankingBits(t, client.New(ts.URL).Tenant(id))
		want := rankingBits(t, solo[id])
		if got != want {
			t.Fatalf("tenant %s diverged from isolated daemon:\n  multi: %s\n  solo:  %s", id, got, want)
		}
		// And tenants with different streams must differ from each other.
		if j := (i + 1) % len(tenants); got == rankingBits(t, client.New(ts.URL).Tenant(tenants[j])) {
			t.Fatalf("tenants %s and %s have identical rankings despite different vote streams", id, tenants[j])
		}
	}
}

func TestQuotaShedCodes(t *testing.T) {
	sopts := defaultSopts()
	// One vote per client, then rate_limited.
	sopts.Admission = admit.Config{Capacity: 64, PerClientRate: 0.0001, PerClientBurst: 1}
	g := openRegistry(t, sopts, "acme")
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	ctx := context.Background()

	// Named tenant: shed maps to tenant_quota_exceeded and unwraps to
	// the typed quota error.
	scoped := client.New(ts.URL, client.WithClientID("c1")).Tenant("acme")
	driveAskVote(t, scoped, 0)
	ask, err := scoped.Ask(ctx, api.AskRequest{Entities: queryEnts(t)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = scoped.Vote(ctx, api.VoteRequest{Query: ask.Query, Ranked: []int{ask.Results[0].Doc}, BestDoc: ask.Results[0].Doc})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeTenantQuota {
		t.Fatalf("tenant shed: %v, want %s", err, api.CodeTenantQuota)
	}
	var quota *api.TenantQuotaError
	if !errors.As(err, &quota) || quota.Tenant != "acme" {
		t.Fatalf("tenant shed does not unwrap to TenantQuotaError: %v", err)
	}
	if !apiErr.Temporary() {
		t.Fatal("tenant_quota_exceeded must be Temporary for VoteRetry")
	}

	// Default tenant keeps the legacy per-reason code.
	unscoped := client.New(ts.URL, client.WithClientID("c2"))
	driveAskVote(t, unscoped, 0)
	ask, err = unscoped.Ask(ctx, api.AskRequest{Entities: queryEnts(t)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = unscoped.Vote(ctx, api.VoteRequest{Query: ask.Query, Ranked: []int{ask.Results[0].Doc}, BestDoc: ask.Results[0].Doc})
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeRateLimited {
		t.Fatalf("default shed: %v, want %s", err, api.CodeRateLimited)
	}
}

func TestBootFailureQuarantine(t *testing.T) {
	inner := testFactory(t, defaultSopts())
	factory := func(id, dir string) (*server.Server, func() error, error) {
		if id == "bad" {
			return nil, nil, errors.New("injected boot failure")
		}
		return inner(id, dir)
	}
	g := New(Options{Factory: factory})
	if err := g.Open([]string{"good", "bad"}); err != nil {
		t.Fatal(err)
	}
	defer g.Close(context.Background())
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	for path, want := range map[string]int{
		"/v1/t/good/healthz": 200,
		"/v1/t/bad/healthz":  503,
		"/v1/healthz":        200,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	sum := g.Summary()
	if sum.Count != 2 || sum.Failed != 1 {
		t.Fatalf("summary = %d live / %d failed, want 2/1", sum.Count, sum.Failed)
	}
	// Deleting the quarantined tenant clears it; re-creating works once
	// the failure is gone.
	if err := g.Delete("bad", false); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Create("bad"); err == nil {
		t.Fatal("factory still failing, create should fail")
	}
}

// TestCorruptTenantIsolation: destroying one tenant's checkpoint makes
// only that tenant fail recovery; its neighbors recover their exact
// pre-shutdown state.
func TestCorruptTenantIsolation(t *testing.T) {
	dataDir := t.TempDir()
	sopts := defaultSopts()
	open := func() *Registry {
		g := New(Options{Factory: testFactory(t, sopts), DataDir: dataDir})
		if err := g.Open([]string{"alpha", "beta"}); err != nil {
			t.Fatal(err)
		}
		return g
	}

	g := open()
	ts := httptest.NewServer(g.Handler())
	for _, id := range []string{"alpha", "beta"} {
		scoped := client.New(ts.URL).Tenant(id)
		driveAskVote(t, scoped, 1)
		driveAskVote(t, scoped, 1)
	}
	alphaBits := rankingBits(t, client.New(ts.URL).Tenant("alpha"))
	ts.Close()
	if err := g.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Corrupt beta: a WAL with no checkpoint is unrecoverable.
	matches, err := filepath.Glob(filepath.Join(dataDir, "tenants", "beta", "checkpoint-*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no beta checkpoints found: %v", err)
	}
	for _, f := range matches {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}

	g2 := open()
	defer g2.Close(context.Background())
	ts2 := httptest.NewServer(g2.Handler())
	defer ts2.Close()

	if err := g2.FailedErr("beta"); err == nil {
		t.Fatal("beta should be quarantined after checkpoint loss")
	}
	resp, err := http.Get(ts2.URL + "/v1/t/beta/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined tenant status %d, want 503", resp.StatusCode)
	}
	if got := rankingBits(t, client.New(ts2.URL).Tenant("alpha")); got != alphaBits {
		t.Fatalf("alpha state changed across beta's corruption:\n  before: %s\n  after:  %s", alphaBits, got)
	}
	// The registry summary reports the quarantine.
	sum := g2.Summary()
	if sum.Failed != 1 {
		t.Fatalf("summary failed = %d, want 1", sum.Failed)
	}
}

// TestDeleteWithoutPurgeResurrects: deleting a tenant keeps its WAL, so
// the next boot brings it back with its state; purge removes it.
func TestDeletePurgeSemantics(t *testing.T) {
	dataDir := t.TempDir()
	open := func() *Registry {
		g := New(Options{Factory: testFactory(t, defaultSopts()), DataDir: dataDir})
		if err := g.Open(nil); err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := open()
	if _, err := g.Create("keep"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Create("gone"); err != nil {
		t.Fatal(err)
	}
	if err := g.Delete("keep", false); err != nil {
		t.Fatal(err)
	}
	if err := g.Delete("gone", true); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	g2 := open()
	defer g2.Close(context.Background())
	ids := g2.IDs()
	if got := strings.Join(ids, ","); got != "default,keep" {
		t.Fatalf("rebooted tenants = %s, want default,keep", got)
	}
}
