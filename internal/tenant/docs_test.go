package tenant

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"kgvote/internal/server"
)

// docRoute is one method+path row parsed out of an API.md table.
type docRoute struct{ method, path string }

var tableRow = regexp.MustCompile("^\\|\\s*(GET|POST|PUT|DELETE|PATCH)\\s*\\|\\s*`([^`]+)`")

func loadDocRoutes(t *testing.T) (string, []docRoute) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "API.md"))
	if err != nil {
		t.Fatalf("API.md: %v", err)
	}
	doc := string(raw)
	seen := map[docRoute]bool{}
	var routes []docRoute
	for _, line := range strings.Split(doc, "\n") {
		m := tableRow.FindStringSubmatch(line)
		if m == nil || !strings.HasPrefix(m[2], "/v1") {
			continue
		}
		r := docRoute{method: m[1], path: m[2]}
		if !seen[r] {
			seen[r] = true
			routes = append(routes, r)
		}
	}
	if len(routes) < 10 {
		t.Fatalf("parsed only %d routes from API.md tables; the table format changed?", len(routes))
	}
	return doc, routes
}

// muxMiss reports a response produced by the mux itself rather than a
// handler: Go's ServeMux answers unknown paths and method mismatches
// with text/plain, while every handler-owned error is a JSON envelope.
func muxMiss(resp *http.Response) bool {
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusMethodNotAllowed {
		return false
	}
	return strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain")
}

// TestAPIDocsRoutesExist keeps API.md and the mux in lock-step, both
// directions: every documented route must be answered by a handler
// (not a mux-level 404/405), and every mounted route must be
// documented.
func TestAPIDocsRoutesExist(t *testing.T) {
	doc, routes := loadDocRoutes(t)

	g := openRegistry(t, defaultSopts(), "acme")
	if _, err := g.Create("victim"); err != nil { // consumed by the DELETE probe
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Forward: probe every documented route — canonical, tenant-scoped,
	// and legacy-alias forms — with an empty body. Handler-owned errors
	// (JSON envelopes) are fine; a text/plain mux miss is drift.
	for _, r := range routes {
		path := strings.ReplaceAll(r.path, "{tenant}", "acme")
		path = strings.ReplaceAll(path, "{id}", "victim")
		probes := []string{path}
		if rest, ok := strings.CutPrefix(path, "/v1/"); ok && !strings.HasPrefix(rest, "admin") && !strings.HasPrefix(rest, "t/") {
			probes = append(probes, "/v1/t/acme/"+rest, "/"+rest)
		}
		for _, p := range probes {
			req, err := http.NewRequestWithContext(context.Background(), r.method, ts.URL+p, strings.NewReader(""))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if muxMiss(resp) {
				t.Errorf("documented route %s %s (probed as %s) is not mounted: mux answered %d %s",
					r.method, r.path, p, resp.StatusCode, resp.Header.Get("Content-Type"))
			}
		}
	}

	// Reverse: every mounted route must appear in API.md, on a table row
	// carrying its method.
	documented := func(method, path string) bool {
		for _, r := range routes {
			if r.method == method && r.path == path {
				return true
			}
		}
		return false
	}
	for _, r := range server.Routes() {
		if !documented(r.Method, r.Path) {
			t.Errorf("mounted route %s %s missing from API.md", r.Method, r.Path)
		}
	}
	for _, r := range AdminRoutes() {
		if !documented(r.Method, r.Path) {
			t.Errorf("admin route %s %s missing from API.md", r.Method, r.Path)
		}
	}

	// The deprecation notes the contract promises must stay written down.
	for _, needle := range []string{"Deprecation", "tenant_not_found", "tenant_quota_exceeded", "/v1/t/{tenant}"} {
		if !strings.Contains(doc, needle) {
			t.Errorf("API.md lost its %q coverage", needle)
		}
	}
}
