package tenant

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"kgvote/api"
)

const (
	scopedPrefix = "/v1/t/"
	adminPath    = "/v1/admin/tenants"
)

// AdminRoutes lists the tenant-admin API surface; the docs-drift test
// checks it against API.md alongside server.Routes().
func AdminRoutes() []struct{ Method, Path string } {
	return []struct{ Method, Path string }{
		{"POST", adminPath},
		{"GET", adminPath},
		{"DELETE", adminPath + "/{id}"},
	}
}

// Handler returns the process-wide mux of a multi-tenant daemon:
//
//   - /v1/t/{tenant}/...  → that tenant's server, path rewritten to /v1/...
//   - /v1/admin/tenants   → create/list/delete tenants
//   - everything else     → the default tenant, bit-identically to a
//     single-tenant daemon (including /metrics, legacy aliases, pprof)
//
// Tenant ids are parsed from the escaped path and unescaped before
// validation, so %2F smuggling cannot splice path segments.
func (g *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		esc := r.URL.EscapedPath()
		switch {
		case strings.HasPrefix(esc, scopedPrefix):
			g.serveScoped(w, r, esc[len(scopedPrefix):])
		case esc == adminPath || strings.HasPrefix(esc, adminPath+"/"):
			g.serveAdmin(w, r, esc)
		default:
			g.serveDefault(w, r)
		}
	})
}

func (g *Registry) serveDefault(w http.ResponseWriter, r *http.Request) {
	t, ok := g.Get(DefaultID)
	if !ok {
		writeEnvelope(w, http.StatusServiceUnavailable, api.Error{
			Code:    api.CodeUnavailable,
			Message: "default tenant is not serving",
			Tenant:  DefaultID,
		})
		return
	}
	t.handler.ServeHTTP(w, r)
}

// serveScoped routes /v1/t/{tenant}/<rest> to the tenant's server with
// the path rewritten to /v1/<rest>. rest is the escaped remainder
// after the prefix.
func (g *Registry) serveScoped(w http.ResponseWriter, r *http.Request, rest string) {
	seg, tail, _ := strings.Cut(rest, "/")
	id, err := url.PathUnescape(seg)
	if err != nil || !ValidID(id) {
		writeTenantNotFound(w, clip(id, seg))
		return
	}
	t, ok := g.Get(id)
	if !ok {
		if ferr := g.FailedErr(id); ferr != nil {
			writeEnvelope(w, http.StatusServiceUnavailable, api.Error{
				Code:    api.CodeUnavailable,
				Message: "tenant " + strconv.Quote(id) + " failed recovery: " + ferr.Error(),
				Tenant:  id,
			})
			return
		}
		writeTenantNotFound(w, id)
		return
	}
	newEsc := "/v1"
	if tail != "" {
		newEsc += "/" + tail
	}
	path, err := url.PathUnescape(newEsc)
	if err != nil {
		writeEnvelope(w, http.StatusBadRequest, api.Error{Code: api.CodeBadRequest, Message: "bad path encoding"})
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = path
	if path == newEsc {
		r2.URL.RawPath = ""
	} else {
		r2.URL.RawPath = newEsc
	}
	t.handler.ServeHTTP(w, r2)
}

func (g *Registry) serveAdmin(w http.ResponseWriter, r *http.Request, esc string) {
	if esc == adminPath {
		switch r.Method {
		case http.MethodPost:
			g.adminCreate(w, r)
		case http.MethodGet:
			summary := g.Summary()
			writeJSON(w, http.StatusOK, api.TenantListResponse{Tenants: summary.Tenants})
		default:
			writeEnvelope(w, http.StatusMethodNotAllowed, api.Error{Code: api.CodeBadRequest, Message: "method not allowed"})
		}
		return
	}
	seg := esc[len(adminPath)+1:]
	id, err := url.PathUnescape(seg)
	if err != nil || strings.Contains(id, "/") {
		writeTenantNotFound(w, clip(id, seg))
		return
	}
	if r.Method != http.MethodDelete {
		writeEnvelope(w, http.StatusMethodNotAllowed, api.Error{Code: api.CodeBadRequest, Message: "method not allowed"})
		return
	}
	purge := r.URL.Query().Get("purge") == "true"
	if err := g.Delete(id, purge); err != nil {
		writeTenantErr(w, err, id)
		return
	}
	writeJSON(w, http.StatusOK, api.TenantDeleteResponse{ID: id, Purged: purge})
}

func (g *Registry) adminCreate(w http.ResponseWriter, r *http.Request) {
	var req api.TenantCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeEnvelope(w, http.StatusBadRequest, api.Error{Code: api.CodeBadRequest, Message: "bad request body: " + err.Error()})
		return
	}
	if req.ID == DefaultID {
		writeTenantErr(w, ErrExists, req.ID)
		return
	}
	t, err := g.Create(req.ID)
	if err != nil {
		writeTenantErr(w, err, req.ID)
		return
	}
	st := t.srv.StatsLocal()
	writeJSON(w, http.StatusCreated, api.TenantSummary{
		ID:        t.ID,
		State:     "serving",
		Documents: st.Documents,
		Epoch:     st.Epoch,
	})
}

// writeTenantErr maps registry errors onto the envelope.
func writeTenantErr(w http.ResponseWriter, err error, id string) {
	switch {
	case errors.Is(err, ErrNotFound):
		writeTenantNotFound(w, id)
	case errors.Is(err, ErrExists):
		writeEnvelope(w, http.StatusConflict, api.Error{Code: api.CodeTenantExists, Message: err.Error(), Tenant: id})
	case errors.Is(err, ErrInvalidID), errors.Is(err, ErrReserved):
		writeEnvelope(w, http.StatusBadRequest, api.Error{Code: api.CodeBadRequest, Message: err.Error(), Tenant: id})
	default:
		writeEnvelope(w, http.StatusInternalServerError, api.Error{Code: api.CodeInternal, Message: err.Error(), Tenant: id})
	}
}

func writeTenantNotFound(w http.ResponseWriter, id string) {
	writeEnvelope(w, http.StatusNotFound, api.Error{
		Code:    api.CodeTenantNotFound,
		Message: "tenant " + strconv.Quote(id) + " not found",
		Tenant:  id,
	})
}

// clip prefers the decoded id for error reporting but falls back to
// the raw segment when decoding failed, capped so a hostile path can't
// balloon the envelope.
func clip(id, raw string) string {
	s := id
	if s == "" {
		s = raw
	}
	if len(s) > 2*MaxIDLen {
		s = s[:2*MaxIDLen]
	}
	return s
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeEnvelope(w http.ResponseWriter, status int, e api.Error) {
	if e.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((e.RetryAfterMS+999)/1000, 10))
	}
	e.HTTPStatus = 0
	writeJSON(w, status, api.ErrorBody{Error: e})
}
