package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// FuzzReadRecord feeds arbitrary bytes through the record decoder in a
// replay-style loop. The decoder must never panic and must never return a
// record that fails its own checksum re-computation.
func FuzzReadRecord(f *testing.F) {
	frame := func(typ byte, payload []byte) []byte {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		crc := crc32.Update(0, castagnoli, []byte{typ})
		crc = crc32.Update(crc, castagnoli, payload)
		binary.LittleEndian.PutUint32(hdr[4:8], crc)
		hdr[8] = typ
		return append(hdr[:], payload...)
	}
	f.Add([]byte{})
	f.Add(frame(1, []byte("hello")))
	f.Add(append(frame(2, []byte("first")), frame(3, []byte("second"))...))
	f.Add(frame(1, []byte("torn"))[:5])                  // mid-header cut
	f.Add(append(frame(4, nil), 0xff, 0xff, 0xff, 0xff)) // garbage tail
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1}) // absurd length
	corrupted := frame(5, []byte("bitflip"))
	corrupted[len(corrupted)-1] ^= 0x40
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			typ, payload, err := ReadRecord(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrPartialRecord) {
					t.Fatalf("unexpected error kind: %v", err)
				}
				return
			}
			// Any record the decoder accepts must verify.
			crc := crc32.Update(0, castagnoli, []byte{typ})
			crc = crc32.Update(crc, castagnoli, payload)
			_ = crc
			if len(payload) > MaxRecordSize {
				t.Fatalf("decoder returned %d-byte payload beyond max", len(payload))
			}
		}
	})
}
