// Package wal implements the segmented append-only write-ahead log
// underneath the serving daemon's durability layer (DESIGN.md §9). Each
// record is framed as
//
//	[payload length: uint32 LE] [CRC32C: uint32 LE] [type: 1 byte] [payload]
//
// where the checksum (Castagnoli polynomial) covers the type byte and the
// payload. Records are numbered by a monotonically increasing sequence
// starting at 1 and are grouped into segment files named
// "<first-seq, 20 digits>.wal"; a segment is rotated once it crosses the
// configured size threshold, so obsolete history can be reclaimed by
// deleting whole files (TruncateBefore).
//
// Crash safety: a crash can leave a partially written record at the tail
// of the newest segment. Open detects any framing violation there — short
// header, short payload, checksum mismatch, absurd length — and truncates
// the file back to the last whole record instead of failing recovery. The
// same violation in an older (rotated, fsynced) segment is real
// corruption and is reported as an error.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"kgvote/internal/telemetry"
)

// Metrics instruments the log's write path. All fields are nil-safe;
// a log without metrics observes nothing.
type Metrics struct {
	// AppendSeconds times record framing + buffering (rotation
	// included when it triggers).
	AppendSeconds *telemetry.Histogram
	// FsyncSeconds times each fsync of the active segment.
	FsyncSeconds *telemetry.Histogram
	// AppendBytes counts framed bytes written (header + payload).
	AppendBytes *telemetry.Counter
	// Records counts appended records.
	Records *telemetry.Counter
}

// NewMetrics registers the WAL series in reg (nil reg = nil metrics).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		AppendSeconds: reg.Histogram("kgvote_wal_append_seconds",
			"Latency of framing and buffering one WAL record.", nil, nil),
		FsyncSeconds: reg.Histogram("kgvote_wal_fsync_seconds",
			"Latency of fsyncing the active WAL segment.", nil, nil),
		AppendBytes: reg.Counter("kgvote_wal_append_bytes_total",
			"Framed bytes appended to the WAL (header + payload).", nil),
		Records: reg.Counter("kgvote_wal_records_total",
			"Records appended to the WAL.", nil),
	}
}

// SyncPolicy controls when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every Commit — no acknowledged write is ever
	// lost, at the cost of one fsync per commit.
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes on every Commit but fsyncs at most once per
	// configured interval; a crash loses at most the last interval.
	SyncInterval
	// SyncNever flushes to the OS on Commit and never fsyncs; a process
	// crash loses nothing, a machine crash may lose anything unflushed by
	// the kernel.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always, interval, never)", s)
}

const (
	headerSize = 9 // uint32 length + uint32 crc + 1 type byte
	// MaxRecordSize bounds a single record's payload; a decoded length
	// beyond it is treated as corruption, never as an allocation request.
	MaxRecordSize = 16 << 20

	// DefaultSegmentBytes is the rotation threshold when Options leaves it
	// zero.
	DefaultSegmentBytes = 8 << 20

	segSuffix = ".wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// Dir is the segment directory; created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it grows past this
	// size (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// Sync selects the fsync policy applied by Commit.
	Sync SyncPolicy
	// SyncEvery is the maximum fsync staleness under SyncInterval
	// (0 = 100ms).
	SyncEvery time.Duration
	// Metrics, when non-nil, receives append/fsync instrumentation.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	return o
}

// Stats is a point-in-time summary of the log, surfaced by /stats.
type Stats struct {
	Segments      int    `json:"segments"`
	Records       uint64 `json:"records"` // total appended over the log's lifetime
	Bytes         int64  `json:"bytes"`   // live bytes across current segments
	Syncs         int64  `json:"syncs"`
	TornTruncated int64  `json:"torn_truncated"` // partial tail records dropped at open
}

// segment is one on-disk file of consecutive records.
type segment struct {
	firstSeq uint64
	path     string
	size     int64
}

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use, though the intended caller is the server's single writer.
type Log struct {
	opt Options

	mu       sync.Mutex
	segments []segment // sorted by firstSeq; last one is active
	f        *os.File  // active segment
	w        *bufio.Writer
	size     int64  // active segment size including buffered bytes
	nextSeq  uint64 // sequence the next Append will get
	lastSync time.Time
	syncs    int64
	torn     int64
	closed   bool
}

// Open opens (creating if necessary) the log in opts.Dir, scanning
// existing segments, repairing a torn tail, and positioning for append.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opt: opts, nextSeq: 1}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	return l, nil
}

func segPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", firstSeq, segSuffix))
}

// scan lists segment files, validates every record, truncates a torn tail
// on the last segment, and computes nextSeq.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.opt.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != segSuffix {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(name, "%020d"+segSuffix, &first); err != nil {
			return fmt.Errorf("wal: unrecognized segment file %q", name)
		}
		segs = append(segs, segment{firstSeq: first, path: filepath.Join(l.opt.Dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	counts := make([]uint64, len(segs))
	for i, s := range segs {
		last := i == len(segs)-1
		n, validSize, err := countRecords(s.path)
		if err != nil {
			if !last {
				return fmt.Errorf("wal: segment %s: %w", filepath.Base(s.path), err)
			}
			// Torn tail on the newest segment: drop the partial record.
			if terr := os.Truncate(s.path, validSize); terr != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(s.path), terr)
			}
			l.torn++
		}
		segs[i].size = validSize
		counts[i] = uint64(n)
		if last {
			l.nextSeq = s.firstSeq + uint64(n)
		}
	}
	// Continuity: each segment must start where the previous ended, so a
	// missing middle segment is detected rather than silently skipped
	// during replay.
	for i := 1; i < len(segs); i++ {
		if want := segs[i-1].firstSeq + counts[i-1]; segs[i].firstSeq != want {
			return fmt.Errorf("wal: gap between segments: %s ends at seq %d but %s starts at %d",
				filepath.Base(segs[i-1].path), want-1, filepath.Base(segs[i].path), segs[i].firstSeq)
		}
	}
	l.segments = segs
	return nil
}

// openActive opens the newest segment for append, creating the first
// segment of an empty log.
func (l *Log) openActive() error {
	if len(l.segments) == 0 {
		l.segments = append(l.segments, segment{firstSeq: l.nextSeq, path: segPath(l.opt.Dir, l.nextSeq)})
	}
	active := &l.segments[len(l.segments)-1]
	f, err := os.OpenFile(active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = st.Size()
	active.size = st.Size()
	return nil
}

// Append frames and buffers one record, returning its sequence number.
// Durability is governed by Commit/Sync, not Append.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record payload %d bytes exceeds max %d", len(payload), MaxRecordSize)
	}
	if m := l.opt.Metrics; m != nil {
		defer m.AppendSeconds.Start()()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = typ
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	seq := l.nextSeq
	l.nextSeq++
	if m := l.opt.Metrics; m != nil {
		m.Records.Inc()
		m.AppendBytes.Add(int64(headerSize + len(payload)))
	}
	l.size += int64(headerSize + len(payload))
	l.segments[len(l.segments)-1].size = l.size
	if l.size >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// rotateLocked seals the active segment (flush + fsync + close) and opens
// a fresh one starting at nextSeq. Sealed segments are immutable, which is
// what lets scan treat their corruption as fatal.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.syncs++
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.segments = append(l.segments, segment{firstSeq: l.nextSeq, path: segPath(l.opt.Dir, l.nextSeq)})
	return l.openActive()
}

// Commit makes everything appended so far durable according to the
// configured policy. Servers call it once per request, after the last
// Append of the commit unit, before acknowledging the client.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: commit: %w", err)
	}
	switch l.opt.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opt.SyncEvery {
			return l.syncLocked()
		}
	case SyncNever:
	}
	return nil
}

// Sync forces a flush + fsync regardless of policy (checkpoints use it).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	var stop func()
	if m := l.opt.Metrics; m != nil {
		stop = m.FsyncSeconds.Start()
	}
	err := l.f.Sync()
	if stop != nil {
		stop()
	}
	if err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.syncs++
	l.lastSync = time.Now()
	return nil
}

// NextSeq returns the sequence number the next Append will be assigned.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Replay streams every durable record with sequence >= from, in order,
// to fn. It reads from disk, so callers should Sync first if they need
// buffered appends included; recovery replays before any append, where
// this cannot arise.
func (l *Log) Replay(from uint64, fn func(seq uint64, typ byte, payload []byte) error) error {
	l.mu.Lock()
	if !l.closed {
		if err := l.w.Flush(); err != nil {
			l.mu.Unlock()
			return fmt.Errorf("wal: replay: %w", err)
		}
	}
	segs := make([]segment, len(l.segments))
	copy(segs, l.segments)
	l.mu.Unlock()

	for _, s := range segs {
		if err := replaySegment(s, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(s segment, from uint64, fn func(uint64, byte, []byte) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // truncated concurrently
		}
		return fmt.Errorf("wal: replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(io.LimitReader(f, s.size), 1<<16)
	seq := s.firstSeq
	for {
		typ, payload, err := ReadRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("wal: replay %s seq %d: %w", filepath.Base(s.path), seq, err)
		}
		if seq >= from {
			if err := fn(seq, typ, payload); err != nil {
				return err
			}
		}
		seq++
	}
}

// TruncateBefore deletes every sealed segment whose records all have
// sequence < seq. The segment containing seq (and the active segment) are
// kept, so the log always remains replayable from seq.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segments[:0]
	for i, s := range l.segments {
		// A segment is deletable when the next segment starts at or below
		// seq (so every record here is < seq) and it is not the active one.
		if i+1 < len(l.segments) && l.segments[i+1].firstSeq <= seq {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			continue
		}
		kept = append(kept, s)
	}
	l.segments = append([]segment(nil), kept...)
	return nil
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	var bytes int64
	for _, s := range l.segments {
		bytes += s.size
	}
	return Stats{
		Segments:      len(l.segments),
		Records:       l.nextSeq - 1,
		Bytes:         bytes,
		Syncs:         l.syncs,
		TornTruncated: l.torn,
	}
}

// Close flushes, fsyncs, and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	return l.f.Close()
}

// ReadRecord decodes one framed record from r. It returns io.EOF at a
// clean record boundary and ErrPartialRecord (wrapped) for any framing
// violation — short header, short payload, oversized length, or checksum
// mismatch. It never panics on arbitrary input.
func ReadRecord(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header: %v", ErrPartialRecord, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: header: %v", ErrPartialRecord, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxRecordSize {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds max %d", ErrPartialRecord, n, MaxRecordSize)
	}
	crcWant := binary.LittleEndian.Uint32(hdr[4:8])
	typ = hdr[8]
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload: %v", ErrPartialRecord, err)
	}
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != crcWant {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (want %08x, got %08x)", ErrPartialRecord, crcWant, crc)
	}
	return typ, payload, nil
}

// ErrPartialRecord marks a framing violation: a record that is torn,
// truncated, or corrupted.
var ErrPartialRecord = errors.New("wal: partial or corrupt record")

// countRecords validates a segment file record by record, returning the
// record count and the byte offset of the end of the last whole record.
// A framing violation is returned as an error with validSize still set,
// so the caller can truncate a torn tail.
func countRecords(path string) (n int, validSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		typ, payload, rerr := ReadRecord(r)
		_ = typ
		if rerr == io.EOF {
			return n, validSize, nil
		}
		if rerr != nil {
			return n, validSize, rerr
		}
		n++
		validSize += int64(headerSize + len(payload))
	}
}
