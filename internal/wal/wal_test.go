package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collect replays the whole log into (seq, typ, payload) tuples.
func collect(t *testing.T, l *Log, from uint64) (seqs []uint64, typs []byte, payloads [][]byte) {
	t.Helper()
	err := l.Replay(from, func(seq uint64, typ byte, payload []byte) error {
		seqs = append(seqs, seq)
		typs = append(typs, typ)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		seq, err := l.Append(byte(i%5), []byte(fmt.Sprintf("payload-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	seqs, typs, payloads := collect(t, l, 1)
	if len(seqs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(seqs))
	}
	for i := range seqs {
		if seqs[i] != uint64(i+1) || typs[i] != byte(i%5) || string(payloads[i]) != fmt.Sprintf("payload-%03d", i) {
			t.Fatalf("record %d mismatch: seq=%d typ=%d payload=%q", i, seqs[i], typs[i], payloads[i])
		}
	}
	// Replay from the middle.
	seqs, _, _ = collect(t, l, 51)
	if len(seqs) != 50 || seqs[0] != 51 {
		t.Fatalf("partial replay: %d records from %d", len(seqs), seqs[0])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify persistence.
	l2, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextSeq(); got != 101 {
		t.Fatalf("reopened NextSeq = %d, want 101", got)
	}
	seqs, _, _ = collect(t, l2, 1)
	if len(seqs) != 100 {
		t.Fatalf("reopened replay: %d records", len(seqs))
	}
}

func TestSegmentRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 40; i++ {
		if _, err := l.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want >= 3 after rotation", st.Segments)
	}
	seqs, _, _ := collect(t, l, 1)
	if len(seqs) != 40 {
		t.Fatalf("replay across segments: %d records", len(seqs))
	}

	// Truncating before seq 20 must keep everything >= 20 replayable.
	if err := l.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	seqs, _, _ = collect(t, l, 20)
	if len(seqs) != 21 || seqs[0] != 20 || seqs[len(seqs)-1] != 40 {
		t.Fatalf("post-truncate replay: got %d records [%d..%d]", len(seqs), seqs[0], seqs[len(seqs)-1])
	}
	if got := l.Stats().Segments; got >= st.Segments {
		t.Fatalf("truncate deleted nothing: %d segments", got)
	}
	l.Close()

	// Reopen after truncation: replay still works, nextSeq preserved.
	l2, err := Open(Options{Dir: dir, Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextSeq(); got != 41 {
		t.Fatalf("NextSeq = %d, want 41", got)
	}
}

// tailSegment returns the path of the newest segment file.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return matches[len(matches)-1]
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(7, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: chop the last record in half.
	path := tailSegment(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	if got := l2.Stats().TornTruncated; got != 1 {
		t.Errorf("TornTruncated = %d, want 1", got)
	}
	seqs, _, payloads := collect(t, l2, 1)
	if len(seqs) != 9 {
		t.Fatalf("replay after torn tail: %d records, want 9", len(seqs))
	}
	if string(payloads[8]) != "rec-8" {
		t.Errorf("last surviving record = %q", payloads[8])
	}
	// The next append must reuse the torn record's sequence number.
	seq, err := l2.Append(7, []byte("rec-9b"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 10 {
		t.Errorf("append after truncation got seq %d, want 10", seq)
	}
}

func TestCorruptSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncNever, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 64)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 2 {
		t.Fatal("test needs at least two segments")
	}
	l.Close()

	matches, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	b, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff // flip a bit inside a sealed segment
	if err := os.WriteFile(matches[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Sync: SyncNever, SegmentBytes: 128}); err == nil {
		t.Fatal("corrupt sealed segment must fail open, not be truncated")
	}
}

func TestChecksumCatchesBitFlipInTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(3, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(3, []byte("second")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	path := tailSegment(t, dir)
	b, _ := os.ReadFile(path)
	b[len(b)-2] ^= 0x01 // corrupt the final record's payload
	os.WriteFile(path, b, 0o644)

	l2, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l2.Close()
	seqs, _, payloads := collect(t, l2, 1)
	if len(seqs) != 1 || string(payloads[0]) != "hello world" {
		t.Fatalf("corrupted tail record not dropped: %d records", len(seqs))
	}
}

func TestSyncPolicyParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SyncAlways.String() != "always" || SyncInterval.String() != "interval" || SyncNever.String() != "never" {
		t.Error("SyncPolicy.String mismatch")
	}
}

func TestCommitSyncCounters(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Syncs; got != 3 {
		t.Errorf("SyncAlways: %d syncs after 3 commits, want 3", got)
	}

	l2, err := Open(Options{Dir: t.TempDir(), Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for i := 0; i < 3; i++ {
		l2.Append(1, []byte("a"))
		l2.Commit()
	}
	if got := l2.Stats().Syncs; got != 0 {
		t.Errorf("SyncNever: %d syncs, want 0", got)
	}
}

func TestOpenEmptyDirAndAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 1 {
		t.Fatalf("empty log NextSeq = %d", got)
	}
	l.Close()
	l2, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seq, err := l2.Append(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first append seq = %d", seq)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversized payload must be rejected")
	}
}
