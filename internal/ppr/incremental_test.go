package ppr

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"kgvote/internal/graph"
)

// mutateEdges changes k existing edge weights in g at random and returns
// the absolute deltas, leaving g already updated.
func mutateEdges(g *graph.Graph, k int, rng *rand.Rand) []EdgeDelta {
	keys := g.EdgeKeys()
	if len(keys) == 0 {
		return []EdgeDelta{}
	}
	out := make([]EdgeDelta, 0, k)
	for i := 0; i < k; i++ {
		e := keys[rng.Intn(len(keys))]
		old := g.Weight(e.From, e.To)
		nw := rng.Float64() * 0.9
		g.MustSetEdge(e.From, e.To, nw)
		out = append(out, EdgeDelta{From: e.From, To: e.To, Old: old, New: nw})
	}
	return out
}

// allNodes lists every node ID of an n-node graph (full-vector ranking).
func allNodes(n int) []graph.NodeID {
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	return ids
}

// TestIncrementalRepairMatchesFresh is the incremental differential
// property: after a random sequence of edge-delta flushes, the repaired
// tracked state must match a from-scratch push solve on the final graph
// within the sum of both certified bounds.
func TestIncrementalRepairMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 6; trial++ {
		n := 24 + rng.Intn(40)
		g := trickyGraph(n, rng)
		opt := PushOptions{C: 0.15, L: 5, RMax: 1e-6, RebuildBound: -1}
		inc, err := NewIncremental(opt, 8)
		if err != nil {
			t.Fatal(err)
		}
		csr := graph.Compile(g)
		inc.Update(csr, 1, []EdgeDelta{})
		ids := []graph.NodeID{graph.NodeID(rng.Intn(n / 2)), graph.NodeID(rng.Intn(n))}
		ws := []float64{0.6, 0.4}
		const key = "seed"
		if _, _, err := inc.RankSeeded(key, csr, 1, ids, ws, allNodes(n), 0); err != nil {
			t.Fatal(err)
		}
		epoch := uint64(1)
		for flush := 0; flush < 5; flush++ {
			deltas := mutateEdges(g, 1+rng.Intn(6), rng)
			csr = graph.Compile(g)
			epoch++
			rep := inc.Update(csr, epoch, deltas)
			if rep.Reset {
				t.Fatalf("trial %d flush %d: non-nil delta caused a reset", trial, flush)
			}
			got, incBound, err := inc.RankSeeded(key, csr, epoch, ids, ws, allNodes(n), 0)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := LocalPushSeeded(csr, ids, ws, opt)
			if err != nil {
				t.Fatal(err)
			}
			tol := incBound + fresh.Bound() + 1e-12
			for _, r := range got {
				if d := math.Abs(r.Score - fresh.Score(r.Node)); d > tol {
					t.Fatalf("trial %d flush %d node %d: |repaired-fresh| = %v > %v",
						trial, flush, r.Node, d, tol)
				}
			}
		}
		if st := inc.Stats(); st.ColdRanks != 1 {
			t.Fatalf("trial %d: %d cold ranks, want 1 (repairs must serve the tracked state)",
				trial, st.ColdRanks)
		}
	}
}

func TestIncrementalStaleEpoch(t *testing.T) {
	g := chain(t, 1, 1)
	csr := graph.Compile(g)
	inc, err := NewIncremental(PushOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	inc.Update(csr, 5, []EdgeDelta{})
	_, _, err = inc.RankSeeded("k", csr, 4, []graph.NodeID{0}, []float64{1}, allNodes(3), 0)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale read returned %v, want ErrStaleEpoch", err)
	}
	if st := inc.Stats(); st.StaleFallbacks != 1 {
		t.Fatalf("StaleFallbacks = %d, want 1", st.StaleFallbacks)
	}
}

func TestIncrementalNilDeltaResets(t *testing.T) {
	g := chain(t, 1, 1)
	csr := graph.Compile(g)
	inc, err := NewIncremental(PushOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	inc.Update(csr, 1, []EdgeDelta{})
	if _, _, err := inc.RankSeeded("k", csr, 1, []graph.NodeID{0}, []float64{1}, allNodes(3), 0); err != nil {
		t.Fatal(err)
	}
	if st := inc.Stats(); st.TrackedSeeds != 1 {
		t.Fatalf("TrackedSeeds = %d, want 1", st.TrackedSeeds)
	}
	rep := inc.Update(csr, 2, nil)
	if !rep.Reset {
		t.Fatal("nil delta did not report Reset")
	}
	if st := inc.Stats(); st.TrackedSeeds != 0 || st.Evictions != 1 {
		t.Fatalf("after reset: tracked=%d evictions=%d, want 0/1", st.TrackedSeeds, st.Evictions)
	}
}

// TestIncrementalRebuild: with a rebuild ceiling below any lossy solve's
// bound, every update re-solves from scratch, and the tracked bound drops
// back to the fresh-solve bound instead of accumulating.
func TestIncrementalRebuild(t *testing.T) {
	// Chain 0→1→…→5 with weight 0.5 per hop: the level-5 residual
	// (0.5⁴ = 0.0625) is below RMax = 0.1, so even the cold solve drops
	// mass and carries a bound above the 1e-12 ceiling.
	g := chain(t, 0.5, 0.5, 0.5, 0.5, 0.5)
	opt := PushOptions{C: 0.15, L: 5, RMax: 0.1, RebuildBound: 1e-12}
	inc, err := NewIncremental(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	csr := graph.Compile(g)
	inc.Update(csr, 1, []EdgeDelta{})
	ids, ws := []graph.NodeID{0}, []float64{1}
	if _, _, err := inc.RankSeeded("k", csr, 1, ids, ws, allNodes(6), 0); err != nil {
		t.Fatal(err)
	}
	old := g.Weight(0, 1)
	g.MustSetEdge(0, 1, 0.8)
	deltas := []EdgeDelta{{From: 0, To: 1, Old: old, New: 0.8}}
	csr = graph.Compile(g)
	rep := inc.Update(csr, 2, deltas)
	if rep.Rebuilt != 1 {
		t.Fatalf("no rebuild despite ceiling 1e-12 (report %+v)", rep)
	}
	fresh, err := LocalPushSeeded(csr, ids, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	bound, ok := inc.TrackedBound("k")
	if !ok {
		t.Fatal("tracked state vanished")
	}
	if bound != fresh.Bound() {
		t.Fatalf("post-rebuild bound %v, want fresh-solve bound %v", bound, fresh.Bound())
	}
	if st := inc.Stats(); st.Rebuilds == 0 {
		t.Fatal("Rebuilds counter not bumped")
	}
}

func TestIncrementalEviction(t *testing.T) {
	g := chain(t, 1, 1, 1, 1)
	csr := graph.Compile(g)
	inc, err := NewIncremental(PushOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inc.Update(csr, 1, []EdgeDelta{})
	for i := 0; i < 3; i++ {
		ids := []graph.NodeID{graph.NodeID(i)}
		key := string(rune('a' + i))
		if _, _, err := inc.RankSeeded(key, csr, 1, ids, []float64{1}, allNodes(5), 0); err != nil {
			t.Fatal(err)
		}
	}
	st := inc.Stats()
	if st.TrackedSeeds != 2 || st.Evictions != 1 {
		t.Fatalf("tracked=%d evictions=%d, want 2/1 (FIFO at capacity)", st.TrackedSeeds, st.Evictions)
	}
	// The oldest key "a" must be the one gone.
	if _, ok := inc.TrackedBound("a"); ok {
		t.Fatal("oldest key survived eviction")
	}
	if _, ok := inc.TrackedBound("c"); !ok {
		t.Fatal("newest key evicted")
	}
}

// TestIncrementalEmptyKeyDoesNotTrack: the serving path uses "" when it
// has no canonical cache key; those solves must stay untracked.
func TestIncrementalEmptyKeyDoesNotTrack(t *testing.T) {
	g := chain(t, 1, 1)
	csr := graph.Compile(g)
	inc, err := NewIncremental(PushOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	inc.Update(csr, 1, []EdgeDelta{})
	if _, _, err := inc.RankSeeded("", csr, 1, []graph.NodeID{0}, []float64{1}, allNodes(3), 0); err != nil {
		t.Fatal(err)
	}
	if st := inc.Stats(); st.TrackedSeeds != 0 || st.ColdRanks != 1 {
		t.Fatalf("tracked=%d cold=%d, want 0/1", st.TrackedSeeds, st.ColdRanks)
	}
}

// TestIncrementalDeterministic: two trackers fed the identical flush
// sequence must produce bitwise-identical rankings and bounds.
func TestIncrementalDeterministic(t *testing.T) {
	build := func() ([]Ranked, float64) {
		rng := rand.New(rand.NewSource(7))
		g := trickyGraph(36, rng)
		opt := PushOptions{C: 0.15, L: 5, RMax: 1e-5, RebuildBound: -1}
		inc, err := NewIncremental(opt, 4)
		if err != nil {
			t.Fatal(err)
		}
		csr := graph.Compile(g)
		inc.Update(csr, 1, []EdgeDelta{})
		ids, ws := []graph.NodeID{2, 9}, []float64{0.7, 0.3}
		if _, _, err := inc.RankSeeded("k", csr, 1, ids, ws, allNodes(36), 0); err != nil {
			t.Fatal(err)
		}
		var epoch uint64 = 1
		for flush := 0; flush < 3; flush++ {
			deltas := mutateEdges(g, 3, rng)
			csr = graph.Compile(g)
			epoch++
			inc.Update(csr, epoch, deltas)
		}
		ranked, bound, err := inc.RankSeeded("k", csr, epoch, ids, ws, allNodes(36), 0)
		if err != nil {
			t.Fatal(err)
		}
		return ranked, bound
	}
	r1, b1 := build()
	r2, b2 := build()
	if b1 != b2 {
		t.Fatalf("bounds differ: %v vs %v", b1, b2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("rank[%d] differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestSortEdgeDeltas(t *testing.T) {
	ds := []EdgeDelta{{From: 2, To: 1}, {From: 0, To: 5}, {From: 2, To: 0}, {From: 0, To: 1}}
	SortEdgeDeltas(ds)
	want := []EdgeDelta{{From: 0, To: 1}, {From: 0, To: 5}, {From: 2, To: 0}, {From: 2, To: 1}}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("ds[%d] = %+v, want %+v", i, ds[i], want[i])
		}
	}
}
