// Package ppr implements Personalized PageRank over the weighted graph
// substrate, following Equation (1) of the paper:
//
//	π_vq = (1 − c)·M·π_vq + c·u_vq
//
// where M_ij = w(vj, vi) and u_vq is the one-hot preference vector of the
// query node. Two solvers are provided: power iteration and Gauss–Seidel.
// The per-answer "random walk" evaluation of the paper's baseline [5] is
// in this package as well (see Walker).
package ppr

import (
	"fmt"
	"math"
	"sort"

	"kgvote/internal/graph"
)

// DefaultC is the restart probability used throughout the paper (c ≈ 0.15).
const DefaultC = 0.15

// Options configures a PPR solve.
type Options struct {
	// C is the restart probability; DefaultC if zero.
	C float64
	// Tol is the L1 convergence tolerance; 1e-10 if zero.
	Tol float64
	// MaxIter bounds the number of iterations; 1000 if zero.
	MaxIter int
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = DefaultC
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 1000
	}
	return o
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("ppr: restart probability c=%v outside (0,1)", o.C)
	}
	if o.Tol <= 0 {
		return fmt.Errorf("ppr: tolerance %v must be positive", o.Tol)
	}
	return nil
}

// PowerIteration computes the PPR vector of source by fixed-point
// iteration. The returned vector has one entry per node; entry i is
// π_{source, i}. The iteration count actually used is also returned.
//
// Nodes without outgoing edges lose their walk mass (the walk stops), so
// the vector sums to at most 1; this matches the extended inverse
// P-distance semantics of Section IV-A.
func PowerIteration(g *graph.Graph, source graph.NodeID, opt Options) ([]float64, int, error) {
	if err := opt.Validate(); err != nil {
		return nil, 0, err
	}
	opt = opt.withDefaults()
	n := g.NumNodes()
	if int(source) < 0 || int(source) >= n {
		return nil, 0, fmt.Errorf("ppr: source %d out of range [0, %d)", source, n)
	}
	pi := make([]float64, n)
	next := make([]float64, n)
	pi[source] = 1
	var iter int
	for iter = 1; iter <= opt.MaxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		next[source] = opt.C
		damp := 1 - opt.C
		for from := 0; from < n; from++ {
			p := pi[from]
			if p == 0 {
				continue
			}
			for _, e := range g.Out(graph.NodeID(from)) {
				next[e.To] += damp * p * e.Weight
			}
		}
		var diff float64
		for i := range pi {
			diff += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		if diff < opt.Tol {
			break
		}
	}
	return pi, iter, nil
}

// GaussSeidel solves the PPR linear system
//
//	(I − (1−c)·Mᵀ restricted appropriately) π = c·u
//
// in-place with Gauss–Seidel sweeps over the reverse adjacency. It
// converges faster than power iteration on most graphs and serves as an
// independent oracle for tests.
func GaussSeidel(g *graph.Graph, source graph.NodeID, opt Options) ([]float64, int, error) {
	if err := opt.Validate(); err != nil {
		return nil, 0, err
	}
	opt = opt.withDefaults()
	n := g.NumNodes()
	if int(source) < 0 || int(source) >= n {
		return nil, 0, fmt.Errorf("ppr: source %d out of range [0, %d)", source, n)
	}
	// π_i = c·u_i + (1−c)·Σ_j w(j,i)·π_j needs in-edges of i.
	rev := g.Reverse()
	pi := make([]float64, n)
	pi[source] = opt.C
	damp := 1 - opt.C
	var iter int
	for iter = 1; iter <= opt.MaxIter; iter++ {
		var diff float64
		for i := 0; i < n; i++ {
			var acc float64
			for _, e := range rev.Out(graph.NodeID(i)) {
				// e.To is an in-neighbor j of i with weight w(j, i).
				acc += e.Weight * pi[e.To]
			}
			v := damp * acc
			if graph.NodeID(i) == source {
				v += opt.C
			}
			diff += math.Abs(v - pi[i])
			pi[i] = v
		}
		if diff < opt.Tol {
			break
		}
	}
	return pi, iter, nil
}

// Ranked is one entry of a ranked answer list.
type Ranked struct {
	Node  graph.NodeID
	Score float64
}

// TopK ranks the candidate nodes by their entries in the score vector,
// descending, breaking ties by node ID for determinism, and returns at
// most k entries. k ≤ 0 means all candidates.
func TopK(scores []float64, candidates []graph.NodeID, k int) []Ranked {
	out := make([]Ranked, 0, len(candidates))
	for _, c := range candidates {
		var s float64
		if int(c) >= 0 && int(c) < len(scores) {
			s = scores[c]
		}
		out = append(out, Ranked{Node: c, Score: s})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Walker evaluates query→answer similarity the way the paper's baseline
// [5] does: one linear-system solve per answer evaluation, so the cost of
// ranking |A| answers is linear in |A|. It exists to reproduce Table VI's
// comparison against the extended inverse P-distance.
type Walker struct {
	g   *graph.Graph
	opt Options
}

// NewWalker returns a Walker over g.
func NewWalker(g *graph.Graph, opt Options) (*Walker, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Walker{g: g, opt: opt.withDefaults()}, nil
}

// Similarity returns π_{query, answer}, recomputing the solve for every
// call (deliberately, to model the baseline's per-answer cost).
func (w *Walker) Similarity(query, answer graph.NodeID) (float64, error) {
	pi, _, err := GaussSeidel(w.g, query, w.opt)
	if err != nil {
		return 0, err
	}
	if int(answer) < 0 || int(answer) >= len(pi) {
		return 0, fmt.Errorf("ppr: answer %d out of range", answer)
	}
	return pi[answer], nil
}

// Rank ranks the answers for a query with one solve per answer, returning
// the top-k list.
func (w *Walker) Rank(query graph.NodeID, answers []graph.NodeID, k int) ([]Ranked, error) {
	scores := make([]float64, w.g.NumNodes())
	for _, a := range answers {
		s, err := w.Similarity(query, a)
		if err != nil {
			return nil, err
		}
		scores[a] = s
	}
	return TopK(scores, answers, k), nil
}
