package ppr

import (
	"math"
	"math/rand"
	"testing"

	"kgvote/internal/graph"
)

func TestMonteCarloMatchesPowerIteration(t *testing.T) {
	g := randomGraph(25, 3, rand.New(rand.NewSource(21)))
	exact, _, err := PowerIteration(g, 0, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMonteCarlo(g, 200000, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := mc.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(est[i]-exact[i]) > 0.01 {
			t.Errorf("node %d: MC %v vs exact %v", i, est[i], exact[i])
		}
	}
	// Total estimated mass ≤ 1 + noise.
	var sum float64
	for _, v := range est {
		sum += v
	}
	if sum > 1.05 {
		t.Errorf("MC total mass %v", sum)
	}
}

func TestMonteCarloSubStochasticLeak(t *testing.T) {
	// Node 0 has out-mass 0.5: half the walks die immediately after the
	// first step decision, so node 1 must get roughly (1−c)·0.5 of a visit.
	g := graph.New(0)
	g.AddNodes(2)
	g.MustSetEdge(0, 1, 0.5)
	mc, err := NewMonteCarlo(g, 100000, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := mc.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultC * (1 - DefaultC) * 0.5
	if math.Abs(est[1]-want) > 0.01 {
		t.Errorf("est[1] = %v, want ≈ %v", est[1], want)
	}
}

func TestMonteCarloSimilarityAndErrors(t *testing.T) {
	g := graph.New(0)
	g.AddNodes(2)
	g.MustSetEdge(0, 1, 1)
	mc, err := NewMonteCarlo(g, 1000, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := mc.Similarity(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("similarity = %v, want > 0", s)
	}
	if _, err := mc.Similarity(0, 99); err == nil {
		t.Errorf("out-of-range target should fail")
	}
	if _, err := mc.Scores(99); err == nil {
		t.Errorf("out-of-range source should fail")
	}
	if _, err := NewMonteCarlo(g, 0, 1, Options{}); err == nil {
		t.Errorf("zero walks should fail")
	}
	if _, err := NewMonteCarlo(g, 10, 1, Options{C: 9}); err == nil {
		t.Errorf("bad options should fail")
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	g := randomGraph(10, 2, rand.New(rand.NewSource(3)))
	a, err := NewMonteCarlo(g, 5000, 11, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMonteCarlo(g, 5000, 11, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed diverged at node %d", i)
		}
	}
}

func BenchmarkGaussSeidel(b *testing.B) {
	g := randomGraph(2000, 5, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GaussSeidel(g, graph.NodeID(i%2000), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerIteration(b *testing.B) {
	g := randomGraph(2000, 5, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PowerIteration(g, graph.NodeID(i%2000), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarlo(b *testing.B) {
	g := randomGraph(2000, 5, rand.New(rand.NewSource(1)))
	mc, err := NewMonteCarlo(g, 10000, 1, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Scores(graph.NodeID(i % 2000)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMonteCarloBitwiseReproducible: the estimator draws randomness only
// from the explicit seed, so two estimators built with the same seed must
// produce bitwise-identical score vectors — no global rand, no
// time-derived state.
func TestMonteCarloBitwiseReproducible(t *testing.T) {
	g := randomGraph(40, 3, rand.New(rand.NewSource(5)))
	run := func() []float64 {
		mc, err := NewMonteCarlo(g, 5000, 99, Options{})
		if err != nil {
			t.Fatal(err)
		}
		est, err := mc.Scores(0)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d: %v vs %v — same seed must be bitwise identical", i, a[i], b[i])
		}
	}
}
