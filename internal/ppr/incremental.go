package ppr

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"kgvote/internal/graph"
)

// ErrStaleEpoch is returned by Incremental.RankSeeded when the caller's
// snapshot epoch does not match the tracker's: a reader holding an old
// snapshot must fall back to the exact enumerator rather than mix
// estimates from a different graph generation.
var ErrStaleEpoch = errors.New("ppr: snapshot epoch does not match incremental tracker")

// EdgeDelta is one edge-weight change of a flush, in absolute terms.
type EdgeDelta struct {
	From, To graph.NodeID
	Old, New float64
}

// SortEdgeDeltas orders deltas by (From, To) — the canonical repair
// order, so repeated repairs of the same flush are bitwise identical.
func SortEdgeDeltas(ds []EdgeDelta) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].From != ds[j].From {
			return ds[i].From < ds[j].From
		}
		return ds[i].To < ds[j].To
	})
}

// Incremental maintains local-push EIPD states for a bounded set of
// tracked seed vectors and repairs all of them in O(delta) when a flush
// changes edge weights, instead of re-solving per query per epoch.
//
// Concurrency contract: Update is called by the engine's single writer
// (snapshot republish); RankSeeded is called by any number of serving
// readers. Tracked states are only mutated under the write lock, so
// readers may rank from them under the read lock. A reader whose
// snapshot epoch trails the tracker gets ErrStaleEpoch and must use the
// exact enumerator for that request.
type Incremental struct {
	mu         sync.RWMutex
	opt        PushOptions
	maxTracked int

	epoch  uint64
	states map[string]*trackedSeed
	// order holds tracked keys oldest-first for capacity eviction.
	order []string

	// Monotonic counters; atomics so the read path can bump them under
	// RLock and scrape-time collectors can read without any lock.
	pushes         atomic.Int64
	updates        atomic.Int64
	coldRanks      atomic.Int64
	rebuilds       atomic.Int64
	staleFallbacks atomic.Int64
	evictions      atomic.Int64
}

// trackedSeed pins one seed vector (so rebuilds can re-solve it) to its
// push state.
type trackedSeed struct {
	ids []graph.NodeID
	ws  []float64
	st  *PushState
}

// IncrementalStats is a scrape-time snapshot of the tracker.
type IncrementalStats struct {
	// TrackedSeeds is the number of seed vectors currently maintained.
	TrackedSeeds int
	// ResidualMass is the sum of the tracked states' certified bounds.
	ResidualMass float64
	// Pushes counts push operations across cold solves, repairs, and
	// rebuilds (monotonic; survives eviction).
	Pushes int64
	// Updates counts Update calls (one per snapshot republish).
	Updates int64
	// ColdRanks counts from-scratch seeded solves on the read path.
	ColdRanks int64
	// Rebuilds counts tracked states re-solved because their bound
	// crossed PushOptions.RebuildBound.
	Rebuilds int64
	// StaleFallbacks counts reads rejected with ErrStaleEpoch.
	StaleFallbacks int64
	// Evictions counts tracked states dropped under capacity pressure.
	Evictions int64
}

// UpdateReport summarizes one Update call for telemetry.
type UpdateReport struct {
	// Repaired is the number of tracked states whose invariant was
	// repaired in place; Rebuilt counts those re-solved from scratch.
	Repaired, Rebuilt int
	// Pushes is the push work this update performed.
	Pushes int64
	// Reset reports a nil-delta update: every tracked state was dropped.
	Reset bool
}

// NewIncremental returns a tracker. maxTracked ≤ 0 uses
// DefaultMaxTracked. The tracker starts empty at epoch 0; the first
// Update binds it to a snapshot.
func NewIncremental(opt PushOptions, maxTracked int) (*Incremental, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if maxTracked <= 0 {
		maxTracked = DefaultMaxTracked
	}
	return &Incremental{
		opt:        opt.withDefaults(),
		maxTracked: maxTracked,
		states:     make(map[string]*trackedSeed),
	}, nil
}

// Options returns the tracker's push configuration with defaults applied.
func (inc *Incremental) Options() PushOptions { return inc.opt }

// Epoch returns the snapshot generation the tracker is bound to.
func (inc *Incremental) Epoch() uint64 {
	inc.mu.RLock()
	defer inc.mu.RUnlock()
	return inc.epoch
}

// Update binds the tracker to the new snapshot and repairs every tracked
// state from the flush's changed edges. A nil deltas slice means the
// delta is unknown (restore, import, structural growth): all tracked
// states are dropped, because a repair needs the full change set to be
// sound. An empty non-nil slice repairs nothing and retains everything.
// deltas need not be pre-sorted; entries with New == Old are ignored.
func (inc *Incremental) Update(adj Adjacency, epoch uint64, deltas []EdgeDelta) UpdateReport {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.epoch = epoch
	inc.updates.Add(1)
	if deltas == nil {
		n := len(inc.states)
		inc.states = make(map[string]*trackedSeed)
		inc.order = inc.order[:0]
		inc.evictions.Add(int64(n))
		return UpdateReport{Reset: true}
	}
	ds := make([]EdgeDelta, 0, len(deltas))
	for _, d := range deltas {
		if d.New != d.Old {
			ds = append(ds, d)
		}
	}
	SortEdgeDeltas(ds)
	var rep UpdateReport
	for _, key := range inc.order {
		ts := inc.states[key]
		before := ts.st.pushes
		ts.st.Repair(adj, ds)
		rep.Pushes += ts.st.pushes - before
		rebuild := inc.opt.RebuildBound >= 0 && ts.st.bound > inc.opt.RebuildBound
		if rebuild {
			fresh, err := LocalPushSeeded(adj, ts.ids, ts.ws, inc.opt)
			if err == nil {
				rep.Pushes += fresh.pushes
				ts.st = fresh
				rep.Rebuilt++
				inc.rebuilds.Add(1)
				continue
			}
		}
		rep.Repaired++
	}
	inc.pushes.Add(rep.Pushes)
	return rep
}

// RankSeeded ranks candidates for the seed vector (ids, weights) against
// the snapshot adj at the given epoch, returning the ranking and the
// state's certified additive bound. A tracked key is served from the
// repaired state in O(candidates); an untracked key is solved cold and,
// capacity permitting, tracked for future flushes. Keys must be
// canonical for their seed vector (the serving rank-cache key is).
// An empty key ranks cold without tracking.
func (inc *Incremental) RankSeeded(key string, adj Adjacency, epoch uint64, ids []graph.NodeID, weights []float64, candidates []graph.NodeID, k int) ([]Ranked, float64, error) {
	inc.mu.RLock()
	if epoch != inc.epoch {
		inc.mu.RUnlock()
		inc.staleFallbacks.Add(1)
		return nil, 0, ErrStaleEpoch
	}
	if key != "" {
		if ts, ok := inc.states[key]; ok {
			ranked := ts.st.Rank(candidates, k)
			bound := ts.st.bound
			inc.mu.RUnlock()
			return ranked, bound, nil
		}
	}
	inc.mu.RUnlock()

	st, err := LocalPushSeeded(adj, ids, weights, inc.opt)
	if err != nil {
		return nil, 0, err
	}
	inc.coldRanks.Add(1)
	inc.pushes.Add(st.pushes)
	ranked := st.Rank(candidates, k)
	if key != "" {
		inc.mu.Lock()
		// Only adopt the state if no flush advanced the tracker while we
		// solved (the state describes the epoch we solved against) and
		// no concurrent reader beat us to the key.
		if epoch == inc.epoch {
			if _, exists := inc.states[key]; !exists {
				if len(inc.states) >= inc.maxTracked {
					oldest := inc.order[0]
					inc.order = inc.order[1:]
					delete(inc.states, oldest)
					inc.evictions.Add(1)
				}
				inc.states[key] = &trackedSeed{
					ids: append([]graph.NodeID(nil), ids...),
					ws:  append([]float64(nil), weights...),
					st:  st,
				}
				inc.order = append(inc.order, key)
			}
		}
		inc.mu.Unlock()
	}
	return ranked, st.bound, nil
}

// TrackedBound returns a tracked state's certified bound.
func (inc *Incremental) TrackedBound(key string) (float64, bool) {
	inc.mu.RLock()
	defer inc.mu.RUnlock()
	ts, ok := inc.states[key]
	if !ok {
		return 0, false
	}
	return ts.st.bound, true
}

// Stats snapshots the tracker's counters.
func (inc *Incremental) Stats() IncrementalStats {
	inc.mu.RLock()
	tracked := len(inc.states)
	var residual float64
	for _, key := range inc.order {
		residual += inc.states[key].st.bound
	}
	inc.mu.RUnlock()
	return IncrementalStats{
		TrackedSeeds:   tracked,
		ResidualMass:   residual,
		Pushes:         inc.pushes.Load(),
		Updates:        inc.updates.Load(),
		ColdRanks:      inc.coldRanks.Load(),
		Rebuilds:       inc.rebuilds.Load(),
		StaleFallbacks: inc.staleFallbacks.Load(),
		Evictions:      inc.evictions.Load(),
	}
}
