package ppr

import (
	"math"
	"math/rand"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
)

// trickyGraph builds a random graph exercising every structure the push
// solver must survive: dangling nodes (no out-edges), zero-weight
// (pruned) edges, disconnected components, and self-loops.
func trickyGraph(n int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	g.AddNodes(n)
	// Two halves are kept disconnected; the last few nodes stay dangling.
	half := n / 2
	dangleFrom := n - n/8 - 1
	addEdges := func(lo, hi int) {
		for i := lo; i < hi && i < dangleFrom; i++ {
			deg := 1 + rng.Intn(3)
			for d := 0; d < deg; d++ {
				j := lo + rng.Intn(hi-lo)
				w := rng.Float64()
				switch {
				case rng.Intn(7) == 0:
					w = 0 // pruned edge: present but weightless
				case rng.Intn(9) == 0:
					j = i // self-loop
				}
				g.MustSetEdge(graph.NodeID(i), graph.NodeID(j), w)
			}
			if g.OutWeightSum(graph.NodeID(i)) > 1 {
				g.NormalizeOut(graph.NodeID(i))
			}
		}
	}
	addEdges(0, half)
	addEdges(half, n)
	return g
}

// enumScores runs the exact bounded-walk enumerator (the serving-path
// CSRScorer) from source at the given truncation.
func enumScores(t *testing.T, g *graph.Graph, source graph.NodeID, c float64, l int) []float64 {
	t.Helper()
	sc, err := pathidx.NewCSRScorer(graph.Compile(g), pathidx.Options{C: c, L: l})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sc.Scores(source)
	if err != nil {
		t.Fatal(err)
	}
	return append([]float64(nil), out...)
}

// TestLocalPushExactMatchesEnumerator: with drops disabled (RMax < 0) the
// push solve must agree with the enumerator to float-roundoff on graphs
// with dangling nodes, zero-weight edges, disconnected components, and
// self-loops.
func TestLocalPushExactMatchesEnumerator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 16 + rng.Intn(48)
		g := trickyGraph(n, rng)
		csr := graph.Compile(g)
		source := graph.NodeID(rng.Intn(n))
		opt := PushOptions{C: 0.15, L: 5, RMax: -1}
		st, err := LocalPush(csr, source, opt)
		if err != nil {
			t.Fatal(err)
		}
		if st.Bound() != 0 {
			t.Fatalf("trial %d: exact solve has bound %v", trial, st.Bound())
		}
		want := enumScores(t, g, source, 0.15, 5)
		for v := 0; v < n; v++ {
			if d := math.Abs(st.Score(graph.NodeID(v)) - want[v]); d > 1e-12 {
				t.Fatalf("trial %d node %d: push %v enum %v (diff %v)",
					trial, v, st.Score(graph.NodeID(v)), want[v], d)
			}
		}
	}
}

// TestLocalPushBoundHolds: with a coarse RMax that actually drops
// residuals, every estimate must stay within the certified bound of the
// exact enumerator value — and the certificate must be non-trivial (some
// trial drops mass, every trial pushes).
func TestLocalPushBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var sawDrop bool
	for trial := 0; trial < 20; trial++ {
		n := 24 + rng.Intn(40)
		g := trickyGraph(n, rng)
		csr := graph.Compile(g)
		source := graph.NodeID(rng.Intn(n / 2))
		opt := PushOptions{C: 0.15, L: 5, RMax: 2e-3}
		st, err := LocalPush(csr, source, opt)
		if err != nil {
			t.Fatal(err)
		}
		if st.Pushes() == 0 {
			t.Fatalf("trial %d: no pushes recorded", trial)
		}
		if st.Bound() > 0 {
			sawDrop = true
		}
		want := enumScores(t, g, source, 0.15, 5)
		for v := 0; v < n; v++ {
			if d := math.Abs(st.Score(graph.NodeID(v)) - want[v]); d > st.Bound()+1e-12 {
				t.Fatalf("trial %d node %d: |push-enum| = %v exceeds bound %v",
					trial, v, d, st.Bound())
			}
		}
	}
	if !sawDrop {
		t.Fatal("RMax=2e-3 never dropped any residual across 20 trials; bound untested")
	}
}

// TestLocalPushSeededMatchesEnumerator checks the seeded (virtual query
// node) mode against CSRScorer.ScoresSeeded at exact and lossy RMax.
func TestLocalPushSeededMatchesEnumerator(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(40)
		g := trickyGraph(n, rng)
		csr := graph.Compile(g)
		k := 1 + rng.Intn(4)
		ids := make([]graph.NodeID, k)
		ws := make([]float64, k)
		var total float64
		for i := range ids {
			ids[i] = graph.NodeID(rng.Intn(n))
			ws[i] = rng.Float64() + 0.01
			total += ws[i]
		}
		for i := range ws {
			ws[i] /= total
		}
		sc, err := pathidx.NewCSRScorer(csr, pathidx.Options{C: 0.15, L: 5})
		if err != nil {
			t.Fatal(err)
		}
		want, err := sc.ScoresSeeded(ids, ws)
		if err != nil {
			t.Fatal(err)
		}
		for _, rmax := range []float64{-1, 1e-3} {
			st, err := LocalPushSeeded(csr, ids, ws, PushOptions{C: 0.15, L: 5, RMax: rmax})
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < n; v++ {
				if d := math.Abs(st.Score(graph.NodeID(v)) - want[v]); d > st.Bound()+1e-12 {
					t.Fatalf("trial %d rmax %v node %d: diff %v > bound %v",
						trial, rmax, v, d, st.Bound())
				}
			}
		}
	}
}

// TestLocalPushVsPowerIteration checks against the second, independent
// oracle: the untruncated fixed-point solve. With a deep truncation the
// push estimate plus the explicit zero-length term must match π within
// bound + geometric tail (1−c)^{L+1}.
func TestLocalPushVsPowerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const L = 120
	for trial := 0; trial < 8; trial++ {
		n := 16 + rng.Intn(32)
		g := trickyGraph(n, rng)
		csr := graph.Compile(g)
		source := graph.NodeID(rng.Intn(n))
		pi, _, err := PowerIteration(g, source, Options{Tol: 1e-13})
		if err != nil {
			t.Fatal(err)
		}
		for _, rmax := range []float64{-1, 1e-7} {
			st, err := LocalPush(csr, source, PushOptions{C: 0.15, L: L, RMax: rmax})
			if err != nil {
				t.Fatal(err)
			}
			tail := math.Pow(1-0.15, L+1)
			for v := 0; v < n; v++ {
				est := st.Score(graph.NodeID(v))
				if graph.NodeID(v) == source {
					est += 0.15 // zero-length walk, excluded from the EIPD
				}
				if d := math.Abs(est - pi[v]); d > st.Bound()+tail+1e-8 {
					t.Fatalf("trial %d rmax %v node %d: |push-π| = %v > %v",
						trial, rmax, v, d, st.Bound()+tail+1e-8)
				}
			}
		}
	}
}

// TestLocalPushDeterministic: two identical solves must agree bitwise —
// scores, bound, and push count (no map-iteration order leaks).
func TestLocalPushDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := trickyGraph(60, rng)
	csr := graph.Compile(g)
	opt := PushOptions{C: 0.15, L: 5, RMax: 1e-5}
	ids := []graph.NodeID{3, 17, 9}
	ws := []float64{0.5, 0.25, 0.25}
	a, err := LocalPushSeeded(csr, ids, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LocalPushSeeded(csr, ids, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bound() != b.Bound() || a.Pushes() != b.Pushes() {
		t.Fatalf("bound/pushes differ: %v/%d vs %v/%d", a.Bound(), a.Pushes(), b.Bound(), b.Pushes())
	}
	if len(a.ScoreMap()) != len(b.ScoreMap()) {
		t.Fatalf("score support differs: %d vs %d", len(a.ScoreMap()), len(b.ScoreMap()))
	}
	for v, s := range a.ScoreMap() {
		if b.ScoreMap()[v] != s {
			t.Fatalf("node %d: %v vs %v (not bitwise equal)", v, s, b.ScoreMap()[v])
		}
	}
}

func TestLocalPushErrors(t *testing.T) {
	g := chain(t, 1, 1)
	csr := graph.Compile(g)
	if _, err := LocalPush(csr, 99, PushOptions{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := LocalPush(csr, 0, PushOptions{C: 1.5}); err == nil {
		t.Error("c=1.5 accepted")
	}
	if _, err := LocalPushSeeded(csr, []graph.NodeID{0}, []float64{1, 2}, PushOptions{}); err == nil {
		t.Error("mismatched seed lengths accepted")
	}
	if _, err := LocalPushSeeded(csr, []graph.NodeID{0}, []float64{0}, PushOptions{}); err == nil {
		t.Error("all-zero seed accepted")
	}
	if _, err := LocalPushSeeded(csr, []graph.NodeID{99}, []float64{1}, PushOptions{}); err == nil {
		t.Error("out-of-range seed accepted")
	}
}

// TestPushRankOrder: Rank must sort descending with ties broken by node
// ID, exactly like TopK and the pathidx rankers.
func TestPushRankOrder(t *testing.T) {
	g := chain(t, 1, 1, 1)
	csr := graph.Compile(g)
	st, err := LocalPush(csr, 0, PushOptions{C: 0.15, L: 5, RMax: -1})
	if err != nil {
		t.Fatal(err)
	}
	ranked := st.Rank([]graph.NodeID{3, 2, 1, 0}, 0)
	wantOrder := []graph.NodeID{1, 2, 3, 0} // 0 scores 0 (no zero-length walks)
	for i, w := range wantOrder {
		if ranked[i].Node != w {
			t.Fatalf("rank[%d] = %d, want %d (full: %+v)", i, ranked[i].Node, w, ranked)
		}
	}
	if top := st.Rank([]graph.NodeID{3, 2, 1, 0}, 2); len(top) != 2 || top[0].Node != 1 {
		t.Fatalf("top-2 = %+v", top)
	}
}
