package ppr

import (
	"fmt"
	"math"
	"sort"

	"kgvote/internal/graph"
)

// This file implements the forward local-push solver for the truncated
// EIPD (DESIGN.md §16). Instead of sweeping a dense frontier level by
// level like pathidx.CSRScorer, LocalPush maintains the classic
// push invariant
//
//	truth(v) = π̂(v) + Σ_{u,l} r_l(u) · contribution of a walk resuming
//	           at u on step l
//
// where π̂ is the running estimate and r is residual walk mass that has
// not been settled yet. A residual below the RMax threshold is dropped
// instead of pushed; every drop's worst-case score contribution is
// accumulated into an exact, per-solve additive error bound, so the
// estimate carries its own certificate: |π̂(v) − truth(v)| ≤ Bound() for
// every v. RMax = 0 settles everything and reproduces the enumerator
// bit-for-bit up to float association order.
//
// The residuals are level-indexed (one sparse vector per walk length
// 1..L) because the paper's score is the *truncated* inverse P-distance:
// a unit of walk mass at node v on step l contributes c(1−c)^l to
// score(v) and at most tails[l] = Σ_{j=l..L} c(1−c)^j in total, and mass
// at level L propagates no further. The settled occupancies are retained
// per level so Incremental can later repair the invariant from a set of
// changed edges alone (push_test.go proves the bound; incremental.go
// uses the occupancies).

const (
	// DefaultPushL is the default truncation depth (matches
	// pathidx.DefaultL; the serving path typically runs L=4).
	DefaultPushL = 5
	// DefaultRMax is the default residual-drop threshold. Smaller
	// thresholds tighten the certified bound and cost more pushes.
	DefaultRMax = 1e-6
	// DefaultRebuildBound is the accumulated-bound ceiling above which
	// Incremental re-solves a tracked seed from scratch rather than
	// repairing it further (repairs only ever grow the bound).
	DefaultRebuildBound = 1e-3
	// DefaultMaxTracked bounds Incremental's tracked seed sets. Each
	// tracked seed holds sparse per-level occupancies, so memory is
	// O(L · reachable nodes) per seed.
	DefaultMaxTracked = 256
)

// Adjacency is the read-only out-edge view the push solver walks.
// *graph.CSR satisfies it directly; tests compile a mutable graph with
// graph.Compile. Row may return zero-weight (pruned) edges; the solver
// skips them, matching the enumerator.
type Adjacency interface {
	NumNodes() int
	Row(graph.NodeID) ([]graph.NodeID, []float64)
}

// PushOptions configures a local-push solve.
type PushOptions struct {
	// C is the restart probability; DefaultC if zero.
	C float64
	// L is the walk-length truncation in edges; DefaultPushL if zero.
	L int
	// RMax is the residual-drop threshold; DefaultRMax if zero,
	// negative means exact (never drop).
	RMax float64
	// RebuildBound is Incremental's from-scratch re-solve trigger;
	// DefaultRebuildBound if zero, negative disables rebuilds.
	RebuildBound float64
}

func (o PushOptions) withDefaults() PushOptions {
	if o.C == 0 {
		o.C = DefaultC
	}
	if o.L == 0 {
		o.L = DefaultPushL
	}
	if o.RMax == 0 {
		o.RMax = DefaultRMax
	}
	if o.RMax < 0 {
		o.RMax = 0
	}
	if o.RebuildBound == 0 {
		o.RebuildBound = DefaultRebuildBound
	}
	return o
}

// Validate reports configuration errors.
func (o PushOptions) Validate() error {
	o = o.withDefaults()
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("ppr: restart probability c=%v outside (0,1)", o.C)
	}
	if o.L < 1 {
		return fmt.Errorf("ppr: push L = %d must be >= 1", o.L)
	}
	return nil
}

// PushState is the result of one local-push solve: the score estimates,
// the settled per-level occupancies (the repair substrate), and the
// certified additive error bound. A PushState is not safe for concurrent
// mutation; Incremental serializes repairs behind its own lock.
type PushState struct {
	opt PushOptions
	// damps[l] = c(1−c)^l, the score weight of settled mass at level l.
	// tails[l] = Σ_{j=l..L} damps[j], the worst-case total contribution
	// of one unit of dropped mass at level l (the drop certificate).
	damps, tails []float64
	// occ[l], 0 ≤ l < L, is the settled walk-mass occupancy x_l(v).
	// Level L is settled into scores only — it propagates no further and
	// no repair ever reads it, so storing it would only cost memory.
	// occ[0] is used by source-mode solves; seeded solves start at 1.
	occ []map[graph.NodeID]float64
	// scores is the running estimate π̂(v) = Σ_l damps[l]·x_l(v).
	scores map[graph.NodeID]float64
	// bound is the accumulated certificate: Σ over dropped residual mass
	// m at level l of |m|·tails[l].
	bound  float64
	pushes int64
}

// frontier is one level's pending residual mass: a map for accumulation
// plus the insertion order, so settling is deterministic (map iteration
// order never leaks into float accumulation or push order).
type frontier struct {
	mass  map[graph.NodeID]float64
	order []graph.NodeID
}

func (f *frontier) add(v graph.NodeID, m float64) {
	if _, ok := f.mass[v]; !ok {
		f.order = append(f.order, v)
	}
	f.mass[v] += m
}

func newPushState(opt PushOptions) *PushState {
	opt = opt.withDefaults()
	st := &PushState{
		opt:    opt,
		damps:  make([]float64, opt.L+1),
		tails:  make([]float64, opt.L+1),
		occ:    make([]map[graph.NodeID]float64, opt.L),
		scores: make(map[graph.NodeID]float64),
	}
	damp := opt.C
	for l := 0; l <= opt.L; l++ {
		st.damps[l] = damp
		damp *= 1 - opt.C
	}
	tail := 0.0
	for l := opt.L; l >= 0; l-- {
		tail += st.damps[l]
		st.tails[l] = tail
	}
	for l := range st.occ {
		st.occ[l] = make(map[graph.NodeID]float64)
	}
	return st
}

func (st *PushState) newFrontiers() []*frontier {
	fr := make([]*frontier, st.opt.L+1)
	for l := range fr {
		fr[l] = &frontier{mass: make(map[graph.NodeID]float64)}
	}
	return fr
}

// settleLevel drains one level's frontier: each entry is either dropped
// into the bound (|mass| ≤ RMax) or pushed — settled into the occupancy
// and score at its level and propagated one step forward. Entries are
// processed in insertion order; out-edges in Row order.
func (st *PushState) settleLevel(adj Adjacency, fr []*frontier, l int) {
	f := fr[l]
	for _, v := range f.order {
		m := f.mass[v]
		if m == 0 {
			continue
		}
		if math.Abs(m) <= st.opt.RMax {
			st.bound += math.Abs(m) * st.tails[l]
			continue
		}
		st.pushes++
		if l >= 1 {
			st.scores[v] += st.damps[l] * m
		}
		if l < st.opt.L {
			st.occ[l][v] += m
			cols, wts := adj.Row(v)
			next := fr[l+1]
			for i, u := range cols {
				w := wts[i]
				if w == 0 {
					continue
				}
				next.add(u, m*w)
			}
		}
	}
	f.mass = nil
	f.order = nil
}

// LocalPush computes the truncated EIPD from source to every reachable
// node by forward local push, returning the state with its certified
// additive bound: |Score(v) − Φ_L(source, v)| ≤ Bound() for all v.
// Walks of length zero are excluded, matching the enumerator.
func LocalPush(adj Adjacency, source graph.NodeID, opt PushOptions) (*PushState, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if int(source) < 0 || int(source) >= adj.NumNodes() {
		return nil, fmt.Errorf("ppr: source %d out of range [0, %d)", source, adj.NumNodes())
	}
	st := newPushState(opt)
	fr := st.newFrontiers()
	fr[0].add(source, 1)
	for l := 0; l <= st.opt.L; l++ {
		st.settleLevel(adj, fr, l)
	}
	return st, nil
}

// LocalPushSeeded computes the truncated EIPD from a virtual source node
// whose out-edges are (ids[i], weights[i]) — the push twin of
// pathidx.CSRScorer.ScoresSeeded: the virtual hop lands the seed weights
// at level 1 (collecting c(1−c)·w) before pushing outward.
func LocalPushSeeded(adj Adjacency, ids []graph.NodeID, weights []float64, opt PushOptions) (*PushState, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(ids) != len(weights) {
		return nil, fmt.Errorf("ppr: %d seed ids but %d weights", len(ids), len(weights))
	}
	n := adj.NumNodes()
	var live int
	for i, v := range ids {
		if weights[i] == 0 {
			continue
		}
		if int(v) < 0 || int(v) >= n {
			return nil, fmt.Errorf("ppr: seed %d out of range [0, %d)", v, n)
		}
		live++
	}
	if live == 0 {
		return nil, fmt.Errorf("ppr: empty seed")
	}
	st := newPushState(opt)
	fr := st.newFrontiers()
	for i, v := range ids {
		if weights[i] == 0 {
			continue
		}
		fr[1].add(v, weights[i])
	}
	for l := 1; l <= st.opt.L; l++ {
		st.settleLevel(adj, fr, l)
	}
	return st, nil
}

// Repair restores the push invariant after the graph's edge weights
// changed, pushing residuals only from the endpoints of changed edges:
// per level, the occupancy delta is Δx_{l+1} = Δx_l·W' + x_l·ΔW, seeded
// solely by the x_l(from)·(new−old) injections at changed-edge heads, so
// the work is proportional to the flush's delta (and the mass it
// actually moves), not to |E|. adj must be the post-change graph; deltas
// must be sorted by (From, To) with no duplicates (see SortEdgeDeltas).
// Dropped repair mass accrues into the same certified bound, which
// therefore only grows — callers re-solve from scratch once it crosses
// RebuildBound.
func (st *PushState) Repair(adj Adjacency, deltas []EdgeDelta) {
	fr := st.newFrontiers()
	for l := 0; l <= st.opt.L; l++ {
		// Inject x_l·ΔW before settling this level's Δx_l: the injection
		// must read the pre-repair occupancy.
		if l < st.opt.L {
			occ := st.occ[l]
			for _, d := range deltas {
				if m := occ[d.From]; m != 0 && d.New != d.Old {
					fr[l+1].add(d.To, m*(d.New-d.Old))
				}
			}
		}
		st.settleLevel(adj, fr, l)
	}
}

// Score returns the estimate for one node.
func (st *PushState) Score(v graph.NodeID) float64 { return st.scores[v] }

// ScoreMap returns the estimate map itself; callers must treat it as
// read-only.
func (st *PushState) ScoreMap() map[graph.NodeID]float64 { return st.scores }

// Bound returns the certified additive error: every estimate is within
// Bound() of the exact truncated EIPD on the graph the state was last
// solved or repaired against.
func (st *PushState) Bound() float64 { return st.bound }

// Pushes returns the number of push operations performed so far.
func (st *PushState) Pushes() int64 { return st.pushes }

// Rank returns the top-k candidates by estimated score (descending,
// ties by node ID — the same order as pathidx and TopK). k ≤ 0 keeps all.
func (st *PushState) Rank(candidates []graph.NodeID, k int) []Ranked {
	out := make([]Ranked, 0, len(candidates))
	for _, c := range candidates {
		out = append(out, Ranked{Node: c, Score: st.scores[c]})
	}
	sortRankedStable(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// sortRankedStable orders descending by score, ties by node ID —
// TopK's comparator, so every backend ranks identically.
func sortRankedStable(rs []Ranked) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Node < rs[j].Node
	})
}
