package ppr

import (
	"fmt"
	"math/rand"

	"kgvote/internal/graph"
)

// MonteCarlo estimates PPR scores by simulating restart random walks, the
// classic alternative to linear-system solves for very large graphs. Each
// walk starts at the source; at every step it terminates with probability
// c, otherwise moves to an out-neighbor with probability proportional to
// the edge weight (terminating early if the residual out-mass is spent,
// which models sub-stochastic rows exactly like the power iteration).
//
// The estimator of π_{s,v} is c · (visits to v) / walks, which is
// unbiased; the standard error decays as 1/√walks.
type MonteCarlo struct {
	g   *graph.Graph
	opt Options
	rng *rand.Rand
	// Walks is the number of simulated walks per Scores call.
	Walks int
}

// NewMonteCarlo returns an estimator with the given walk budget and seed.
func NewMonteCarlo(g *graph.Graph, walks int, seed int64, opt Options) (*MonteCarlo, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if walks < 1 {
		return nil, fmt.Errorf("ppr: MonteCarlo needs >= 1 walk, got %d", walks)
	}
	return &MonteCarlo{
		g:     g,
		opt:   opt.withDefaults(),
		rng:   rand.New(rand.NewSource(seed)),
		Walks: walks,
	}, nil
}

// Scores estimates the full PPR vector of source.
func (m *MonteCarlo) Scores(source graph.NodeID) ([]float64, error) {
	n := m.g.NumNodes()
	if int(source) < 0 || int(source) >= n {
		return nil, fmt.Errorf("ppr: source %d out of range [0, %d)", source, n)
	}
	visits := make([]float64, n)
	c := m.opt.C
	// Walks are bounded in expectation by 1/c steps; cap the worst case.
	maxSteps := int(20.0 / c)
	for w := 0; w < m.Walks; w++ {
		at := source
		for step := 0; step < maxSteps; step++ {
			visits[at]++
			if m.rng.Float64() < c {
				break
			}
			next, ok := m.step(at)
			if !ok {
				break // dangling node or spent out-mass: walk dies
			}
			at = next
		}
	}
	scale := c / float64(m.Walks)
	for i := range visits {
		visits[i] *= scale
	}
	return visits, nil
}

// step samples the next node from at's out-distribution; the residual
// probability mass 1 − Σw kills the walk.
func (m *MonteCarlo) step(at graph.NodeID) (graph.NodeID, bool) {
	r := m.rng.Float64()
	var acc float64
	for _, e := range m.g.Out(at) {
		acc += e.Weight
		if r < acc {
			return e.To, true
		}
	}
	return graph.None, false
}

// Similarity estimates π_{source, target}.
func (m *MonteCarlo) Similarity(source, target graph.NodeID) (float64, error) {
	s, err := m.Scores(source)
	if err != nil {
		return 0, err
	}
	if int(target) < 0 || int(target) >= len(s) {
		return 0, fmt.Errorf("ppr: target %d out of range", target)
	}
	return s[target], nil
}
