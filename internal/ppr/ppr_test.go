package ppr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kgvote/internal/graph"
)

func chain(t *testing.T, ws ...float64) *graph.Graph {
	t.Helper()
	g := graph.New(len(ws) + 1)
	g.AddNodes(len(ws) + 1)
	for i, w := range ws {
		g.MustSetEdge(graph.NodeID(i), graph.NodeID(i+1), w)
	}
	return g
}

func randomGraph(n, deg int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		for d := 0; d < deg; d++ {
			j := graph.NodeID(rng.Intn(n))
			if j == graph.NodeID(i) {
				continue
			}
			g.MustSetEdge(graph.NodeID(i), j, rng.Float64()+0.01)
		}
		g.NormalizeOut(graph.NodeID(i))
	}
	return g
}

// On a simple chain 0→1→2 with unit weights, the PPR mass at node k is
// c·(1−c)^k exactly.
func TestPowerIterationChainExact(t *testing.T) {
	g := chain(t, 1, 1)
	pi, _, err := PowerIteration(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultC
	want := []float64{c, c * (1 - c), c * (1 - c) * (1 - c)}
	for i, w := range want {
		if math.Abs(pi[i]-w) > 1e-9 {
			t.Errorf("pi[%d] = %v, want %v", i, pi[i], w)
		}
	}
}

func TestPowerIterationWeightedChain(t *testing.T) {
	g := chain(t, 0.5, 0.25)
	pi, _, err := PowerIteration(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultC
	if want := c * (1 - c) * 0.5; math.Abs(pi[1]-want) > 1e-9 {
		t.Errorf("pi[1] = %v, want %v", pi[1], want)
	}
	if want := c * (1 - c) * (1 - c) * 0.5 * 0.25; math.Abs(pi[2]-want) > 1e-9 {
		t.Errorf("pi[2] = %v, want %v", pi[2], want)
	}
}

func TestPowerIterationMassBound(t *testing.T) {
	g := randomGraph(100, 4, rand.New(rand.NewSource(3)))
	pi, _, err := PowerIteration(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range pi {
		if v < 0 {
			t.Fatalf("negative PPR mass %v", v)
		}
		sum += v
	}
	if sum > 1+1e-9 {
		t.Errorf("total mass %v > 1", sum)
	}
	if sum < DefaultC {
		t.Errorf("total mass %v below restart mass", sum)
	}
}

// Power iteration and Gauss–Seidel must agree: they solve the same linear
// system with different sweeps.
func TestSolversAgree(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(60, 5, rand.New(rand.NewSource(seed)))
		src := graph.NodeID(seed % 60)
		a, _, err := PowerIteration(g, src, Options{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := GaussSeidel(g, src, Options{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-8 {
				t.Fatalf("seed %d node %d: power %v vs gauss-seidel %v", seed, i, a[i], b[i])
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	g := chain(t, 1)
	if _, _, err := PowerIteration(g, 0, Options{C: 1.5}); err == nil {
		t.Errorf("c > 1 should fail")
	}
	if _, _, err := PowerIteration(g, 0, Options{C: -0.1}); err == nil {
		t.Errorf("c < 0 should fail")
	}
	if _, _, err := PowerIteration(g, 0, Options{Tol: -1}); err == nil {
		t.Errorf("negative tol should fail")
	}
	if _, _, err := PowerIteration(g, 99, Options{}); err == nil {
		t.Errorf("out-of-range source should fail")
	}
	if _, _, err := GaussSeidel(g, 99, Options{}); err == nil {
		t.Errorf("out-of-range source should fail")
	}
	if _, err := NewWalker(g, Options{C: 2}); err == nil {
		t.Errorf("bad walker options should fail")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	cands := []graph.NodeID{0, 1, 2, 3, 4}
	top := TopK(scores, cands, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	// Ties broken by node ID: 1 before 3.
	if top[0].Node != 1 || top[1].Node != 3 || top[2].Node != 2 {
		t.Errorf("order = %v", top)
	}
	if all := TopK(scores, cands, 0); len(all) != 5 {
		t.Errorf("k<=0 should return all, got %d", len(all))
	}
	// Candidate outside the score vector gets score 0.
	out := TopK(scores, []graph.NodeID{99}, 1)
	if out[0].Score != 0 {
		t.Errorf("out-of-range candidate score = %v", out[0].Score)
	}
}

func TestWalkerMatchesDirectSolve(t *testing.T) {
	g := randomGraph(40, 4, rand.New(rand.NewSource(11)))
	w, err := NewWalker(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pi, _, err := GaussSeidel(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []graph.NodeID{1, 5, 17} {
		s, err := w.Similarity(0, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s-pi[a]) > 1e-9 {
			t.Errorf("walker sim(0,%d) = %v, want %v", a, s, pi[a])
		}
	}
	if _, err := w.Similarity(0, 9999); err == nil {
		t.Errorf("out-of-range answer should fail")
	}
}

func TestWalkerRank(t *testing.T) {
	g := randomGraph(40, 4, rand.New(rand.NewSource(12)))
	w, err := NewWalker(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	answers := []graph.NodeID{3, 9, 21, 33}
	ranked, err := w.Rank(0, answers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("len = %d", len(ranked))
	}
	if ranked[0].Score < ranked[1].Score {
		t.Errorf("not sorted: %v", ranked)
	}
}

// Property: PPR scores scale monotonically with a single edge weight on
// the path to a target (increasing w(0,1) on the chain cannot decrease
// pi[1]).
func TestQuickMonotoneInEdgeWeight(t *testing.T) {
	f := func(raw float64) bool {
		w := math.Mod(math.Abs(raw), 0.9) + 0.05
		g := graph.New(3)
		g.AddNodes(3)
		g.MustSetEdge(0, 1, w)
		g.MustSetEdge(1, 2, 0.5)
		lo, _, err := PowerIteration(g, 0, Options{})
		if err != nil {
			return false
		}
		g2 := g.Clone()
		if err := g2.SetWeight(0, 1, math.Min(w*1.1, 1)); err != nil {
			return false
		}
		hi, _, err := PowerIteration(g2, 0, Options{})
		if err != nil {
			return false
		}
		return hi[1] >= lo[1]-1e-12 && hi[2] >= lo[2]-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: restart mass at the source is at least c.
func TestQuickSourceMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(30, 3, rng)
		src := graph.NodeID(rng.Intn(30))
		pi, _, err := PowerIteration(g, src, Options{})
		if err != nil {
			return false
		}
		return pi[src] >= DefaultC-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
