package metrics

import (
	"math"
	"testing"
)

func TestOmega(t *testing.T) {
	// Paper's example: best answer moves from rank 2 to rank 1 → +1.
	got, err := Omega([]int{2}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("Omega = %v, want 1", got)
	}
	got, err = Omega([]int{2, 5, 1}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1+3-2 {
		t.Errorf("Omega = %v, want 2", got)
	}
	if _, err := Omega([]int{1}, []int{1, 2}); err == nil {
		t.Errorf("length mismatch should fail")
	}
}

func TestOmegaAvg(t *testing.T) {
	got, err := OmegaAvg([]int{3, 5}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("OmegaAvg = %v, want 3", got)
	}
	got, err = OmegaAvg(nil, nil)
	if err != nil || got != 0 {
		t.Errorf("empty OmegaAvg = %v, %v", got, err)
	}
	if _, err := OmegaAvg([]int{1}, []int{}); err == nil {
		t.Errorf("length mismatch should fail")
	}
}

func TestMeanRank(t *testing.T) {
	if got := MeanRank([]int{1, 2, 3}); got != 2 {
		t.Errorf("MeanRank = %v, want 2", got)
	}
	// Missing ranks are excluded.
	if got := MeanRank([]int{0, 4}); got != 4 {
		t.Errorf("MeanRank = %v, want 4", got)
	}
	if got := MeanRank([]int{0, 0}); got != 0 {
		t.Errorf("all-missing MeanRank = %v, want 0", got)
	}
	if got := MeanRank(nil); got != 0 {
		t.Errorf("empty MeanRank = %v, want 0", got)
	}
}

func TestPctImprovement(t *testing.T) {
	// R_avg 3 → 2 is a 1/3 improvement.
	got, err := PctImprovement([]int{4, 2}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/3) > 1e-15 {
		t.Errorf("PctImprovement = %v, want 1/3", got)
	}
	// The paper's own Table IV numbers: 3.56 → 2.86 ≈ 19.7%.
	before := []int{3, 4, 4, 3, 4, 3, 4, 4, 3, 4} // R_avg 3.6
	after := []int{3, 3, 3, 3, 3, 3, 3, 3, 2, 3}  // R_avg 2.9
	got, err = PctImprovement(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(3.6-2.9)/3.6) > 1e-12 {
		t.Errorf("PctImprovement = %v", got)
	}
	// Degradation is negative.
	got, err = PctImprovement([]int{2}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if got != -1 {
		t.Errorf("PctImprovement = %v, want -1", got)
	}
	// Missing ranks are skipped pairwise.
	got, err = PctImprovement([]int{0, 2}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("PctImprovement = %v, want 0.5", got)
	}
	got, err = PctImprovement([]int{0}, []int{0})
	if err != nil || got != 0 {
		t.Errorf("all-missing = %v, %v", got, err)
	}
	if _, err := PctImprovement([]int{1}, []int{1, 2}); err == nil {
		t.Errorf("length mismatch should fail")
	}
}

func TestHitsAtK(t *testing.T) {
	ranks := []int{1, 3, 7, 0}
	if got := HitsAtK(ranks, 1); got != 0.25 {
		t.Errorf("H@1 = %v, want 0.25", got)
	}
	if got := HitsAtK(ranks, 3); got != 0.5 {
		t.Errorf("H@3 = %v, want 0.5", got)
	}
	if got := HitsAtK(ranks, 10); got != 0.75 {
		t.Errorf("H@10 = %v, want 0.75 (missing rank never hits)", got)
	}
	if got := HitsAtK(nil, 5); got != 0 {
		t.Errorf("empty H@k = %v", got)
	}
}

func TestMRR(t *testing.T) {
	if got := MRR([]int{1, 2, 4}); math.Abs(got-(1+0.5+0.25)/3) > 1e-15 {
		t.Errorf("MRR = %v", got)
	}
	if got := MRR([]int{0}); got != 0 {
		t.Errorf("missing rank MRR = %v, want 0", got)
	}
	if got := MRR(nil); got != 0 {
		t.Errorf("empty MRR = %v, want 0", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	rel := map[int64]bool{10: true, 30: true}
	// Ranked: 10 (hit, p=1), 20, 30 (hit, p=2/3) → AP = (1 + 2/3)/2.
	got := AveragePrecision([]int64{10, 20, 30}, rel)
	if want := (1.0 + 2.0/3.0) / 2; math.Abs(got-want) > 1e-15 {
		t.Errorf("AP = %v, want %v", got, want)
	}
	if got := AveragePrecision([]int64{20, 40}, rel); got != 0 {
		t.Errorf("no hits AP = %v, want 0", got)
	}
	if got := AveragePrecision([]int64{10}, nil); got != 0 {
		t.Errorf("no relevant AP = %v, want 0", got)
	}
	// A single relevant item at rank r gives AP = 1/r (matches MRR).
	single := map[int64]bool{7: true}
	if got := AveragePrecision([]int64{1, 2, 7}, single); math.Abs(got-1.0/3) > 1e-15 {
		t.Errorf("single-relevant AP = %v, want 1/3", got)
	}
}

func TestMAP(t *testing.T) {
	if got := MAP([]float64{1, 0.5}); got != 0.75 {
		t.Errorf("MAP = %v, want 0.75", got)
	}
	if got := MAP(nil); got != 0 {
		t.Errorf("empty MAP = %v, want 0", got)
	}
}

func TestPD(t *testing.T) {
	if got := PD(2, 3); got != 0.5 {
		t.Errorf("PD = %v, want 0.5", got)
	}
	if got := PD(0, 0); got != 0 {
		t.Errorf("PD(0,0) = %v, want 0", got)
	}
	if got := PD(0, 1); !math.IsInf(got, 1) {
		t.Errorf("PD(0,1) = %v, want +Inf", got)
	}
}
