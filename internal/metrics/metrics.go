// Package metrics implements the evaluation measures of Section VII:
// Ω_avg (Definition 3 / Equation (21)), R_avg, P_avg, H@k, MRR, and MAP.
//
// Ranks are 1-based throughout; rank 0 means "not found" and is treated as
// worse than any finite rank (contributing 0 to reciprocal measures).
package metrics

import (
	"fmt"
	"math"
)

// Omega is the graph score of Definition 3: Σ (rank_t − rank'_t) over
// votes, where rank is the best answer's position before optimization and
// rank' after. Positive is better.
func Omega(before, after []int) (float64, error) {
	if len(before) != len(after) {
		return 0, fmt.Errorf("metrics: %d before vs %d after ranks", len(before), len(after))
	}
	var s float64
	for i := range before {
		s += float64(before[i] - after[i])
	}
	return s, nil
}

// OmegaAvg is Equation (21): Omega divided by the number of votes.
func OmegaAvg(before, after []int) (float64, error) {
	if len(before) == 0 {
		return 0, nil
	}
	o, err := Omega(before, after)
	if err != nil {
		return 0, err
	}
	return o / float64(len(before)), nil
}

// MeanRank is R_avg: the average 1-based rank of the best answers.
// Missing answers (rank 0) are excluded; if all are missing it returns 0.
func MeanRank(ranks []int) float64 {
	var s float64
	n := 0
	for _, r := range ranks {
		if r > 0 {
			s += float64(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// PctImprovement is P_avg: the percentage improvement of the average
// ranking, (R_avg(before) − R_avg(after)) / R_avg(before). This matches
// the paper's Table IV, where 3.56 → 2.86 is reported as ≈ 18.8%.
// Queries with a missing rank on either side are skipped pairwise.
func PctImprovement(before, after []int) (float64, error) {
	if len(before) != len(after) {
		return 0, fmt.Errorf("metrics: %d before vs %d after ranks", len(before), len(after))
	}
	var sumB, sumA float64
	n := 0
	for i := range before {
		if before[i] <= 0 || after[i] <= 0 {
			continue
		}
		sumB += float64(before[i])
		sumA += float64(after[i])
		n++
	}
	if n == 0 || sumB == 0 {
		return 0, nil
	}
	return (sumB - sumA) / sumB, nil
}

// HitsAtK is H@k: the fraction of queries whose best answer ranks no lower
// than k.
func HitsAtK(ranks []int, k int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	hit := 0
	for _, r := range ranks {
		if r > 0 && r <= k {
			hit++
		}
	}
	return float64(hit) / float64(len(ranks))
}

// MRR is the mean reciprocal rank; rank 0 contributes 0.
func MRR(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var s float64
	for _, r := range ranks {
		if r > 0 {
			s += 1 / float64(r)
		}
	}
	return s / float64(len(ranks))
}

// AveragePrecision computes AP for one query: ranked is the returned list
// (by whatever IDs the caller uses) and relevant the set of relevant IDs.
// AP = Σ_k precision@k·rel(k) / |relevant ∩ retrievable|, with the
// convention AP = 0 when nothing relevant exists.
func AveragePrecision(ranked []int64, relevant map[int64]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	var sum float64
	for i, id := range ranked {
		if relevant[id] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / float64(len(relevant))
}

// MAP is the mean of per-query average precisions.
func MAP(aps []float64) float64 {
	if len(aps) == 0 {
		return 0
	}
	var s float64
	for _, v := range aps {
		s += v
	}
	return s / float64(len(aps))
}

// PD is the percentage difference of Equation (22):
// (sum_j − sum_i) / sum_i, used by the Fig. 7(a) experiment on cumulative
// similarity mass for consecutive path-length limits.
func PD(sumI, sumJ float64) float64 {
	if sumI == 0 {
		if sumJ == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (sumJ - sumI) / sumI
}
