package harness

import (
	"fmt"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/metrics"
	"kgvote/internal/pathidx"
	"kgvote/internal/qa"
	"kgvote/internal/sgp"
	"kgvote/internal/synth"
)

// AblationSolverMode compares the full augmented-Lagrangian multi-vote
// solve (deviation variables as real variables, the paper's fmincon-style
// formulation) against the reduced form that eliminates deviations
// analytically (DESIGN.md §5).
func AblationSolverMode(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	host, err := synth.Twitter.Scaled(cfg.GraphScale).Generate(cfg.Seed + 40)
	if err != nil {
		return Table{}, err
	}
	w, err := synth.GenerateWorkload(host, synth.WorkloadConfig{
		NQ: 20, NA: 60, Nnodes: min(host.NumNodes(), 2000), K: cfg.K, Seed: cfg.Seed + 41,
	})
	if err != nil {
		return Table{}, err
	}
	nv := min(len(w.Votes), 8)
	votes := w.Votes[:nv]
	t := Table{
		Title:  "Ablation: multi-vote SGP solving strategy",
		Header: []string{"Mode", "Elapsed", "Omega_avg", "Satisfied", "Constraints"},
	}
	for _, mode := range []struct {
		name string
		mode sgp.Mode
	}{{"Full (aug. Lagrangian)", sgp.Full}, {"Reduced (dev eliminated)", sgp.Reduced}} {
		g := w.Aug.Graph.Clone()
		eng, err := core.New(g, core.Options{K: cfg.K, L: cfg.L, Mode: mode.mode})
		if err != nil {
			return Table{}, err
		}
		before, err := voteOmegaRanks(eng, votes, w.Answers)
		if err != nil {
			return Table{}, err
		}
		start := time.Now()
		rep, err := eng.SolveMulti(votes)
		if err != nil {
			return Table{}, fmt.Errorf("harness: mode %s: %w", mode.name, err)
		}
		elapsed := time.Since(start)
		after, err := voteOmegaRanks(eng, votes, w.Answers)
		if err != nil {
			return Table{}, err
		}
		omega, err := metrics.OmegaAvg(before, after)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			mode.name, elapsed.String(), f2(omega),
			fmt.Sprintf("%d", rep.Satisfied), fmt.Sprintf("%d", rep.Constraints),
		})
	}
	return t, nil
}

// AblationMergeRule compares the paper's vote-weighted sign/max merge rule
// against plain (vote-weighted) averaging in split-and-merge.
func AblationMergeRule(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	host, err := synth.Digg.Scaled(cfg.GraphScale).Generate(cfg.Seed + 42)
	if err != nil {
		return Table{}, err
	}
	w, err := synth.GenerateWorkload(host, synth.WorkloadConfig{
		NQ: 24, NA: 60, Nnodes: min(host.NumNodes(), 2000), K: cfg.K, Seed: cfg.Seed + 43,
	})
	if err != nil {
		return Table{}, err
	}
	nv := min(len(w.Votes), 10)
	votes := w.Votes[:nv]
	t := Table{
		Title:  "Ablation: split-and-merge delta combination rule",
		Header: []string{"Rule", "Elapsed", "Omega_avg", "Clusters"},
	}
	for _, rule := range []struct {
		name string
		rule core.MergeRule
	}{{"Vote-weighted sign/max (paper)", core.VoteWeighted}, {"Vote-weighted average", core.AverageDeltas}} {
		g := w.Aug.Graph.Clone()
		eng, err := core.New(g, core.Options{K: cfg.K, L: cfg.L, Mode: cfg.sgpMode(), Merge: rule.rule})
		if err != nil {
			return Table{}, err
		}
		before, err := voteOmegaRanks(eng, votes, w.Answers)
		if err != nil {
			return Table{}, err
		}
		start := time.Now()
		rep, err := eng.SolveSplitMerge(votes)
		if err != nil {
			return Table{}, fmt.Errorf("harness: rule %s: %w", rule.name, err)
		}
		elapsed := time.Since(start)
		after, err := voteOmegaRanks(eng, votes, w.Answers)
		if err != nil {
			return Table{}, err
		}
		omega, err := metrics.OmegaAvg(before, after)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{rule.name, elapsed.String(), f2(omega), fmt.Sprintf("%d", rep.Clusters)})
	}
	return t, nil
}

// AblationScorer compares the two equivalent EIPD evaluation strategies:
// explicit walk enumeration (needed for constraint encoding) versus the
// truncated power-series sweep (used for ranking).
func AblationScorer(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	host, err := synth.Gnutella.Scaled(cfg.GraphScale).Generate(cfg.Seed + 44)
	if err != nil {
		return Table{}, err
	}
	w, err := synth.GenerateWorkload(host, synth.WorkloadConfig{
		NQ: 4, NA: 40, Nnodes: min(host.NumNodes(), 2000), K: cfg.K, Seed: cfg.Seed + 45,
	})
	if err != nil {
		return Table{}, err
	}
	opt := pathidx.Options{L: pathidx.DefaultL}
	t := Table{
		Title:  "Ablation: EIPD evaluation strategy (per query, all answers)",
		Header: []string{"Strategy", "Elapsed/query"},
	}
	// Enumeration strategy.
	start := time.Now()
	for _, q := range w.Queries {
		paths, err := pathidx.Enumerate(w.Aug.Graph, q, w.Answers, opt)
		if err != nil {
			return Table{}, err
		}
		for _, ps := range paths {
			_ = pathidx.SumPaths(w.Aug.Graph, ps, 0.15)
		}
	}
	enumPer := time.Since(start) / time.Duration(len(w.Queries))
	t.Rows = append(t.Rows, []string{"Explicit walk enumeration", enumPer.String()})

	scorer, err := pathidx.NewScorer(w.Aug.Graph, opt)
	if err != nil {
		return Table{}, err
	}
	start = time.Now()
	for _, q := range w.Queries {
		if _, err := scorer.Scores(q); err != nil {
			return Table{}, err
		}
	}
	sweepPer := time.Since(start) / time.Duration(len(w.Queries))
	t.Rows = append(t.Rows, []string{"Truncated power-series sweep", sweepPer.String()})
	return t, nil
}

// AblationNormalize compares the post-solve normalization modes.
func AblationNormalize(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	f, err := newTaobaoFixture(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Ablation: post-solve normalization mode (multi-vote, test-set ranks)",
		Header: []string{"Mode", "R_avg", "Omega_avg vs original"},
	}
	var baseRanks []int
	for _, m := range []struct {
		name string
		mode core.NormalizeMode
	}{{"original (no votes)", -1}, {"CapSum (default)", core.CapSum}, {"UnitSum", core.UnitSum}, {"NoNormalize", core.NoNormalize}} {
		var ranks []int
		if m.mode < 0 {
			sys, _, err := f.buildOptimized(originalGraph)
			if err != nil {
				return Table{}, err
			}
			ranks, err = f.testRanks(sys)
			if err != nil {
				return Table{}, err
			}
			baseRanks = ranks
			t.Rows = append(t.Rows, []string{m.name, f2(metrics.MeanRank(ranks)), "-"})
			continue
		}
		sys, err := buildWithNormalize(f, m.mode)
		if err != nil {
			return Table{}, err
		}
		ranks, err = f.testRanks(sys)
		if err != nil {
			return Table{}, err
		}
		omega, err := metrics.OmegaAvg(baseRanks, ranks)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{m.name, f2(metrics.MeanRank(ranks)), f2(omega)})
	}
	return t, nil
}

func buildWithNormalize(f *taobaoFixture, mode core.NormalizeMode) (*qa.System, error) {
	s, err := qa.Build(f.corpus, core.Options{K: f.cfg.K, L: f.cfg.L, Mode: f.cfg.sgpMode(), Normalize: mode})
	if err != nil {
		return nil, err
	}
	synth.CorruptWeights(s.Aug.Graph, f.cfg.Corruption, f.cfg.Seed+5)
	recs, err := synth.SimulateVotes(s, f.train, synth.VoterConfig{Seed: f.cfg.Seed + 4})
	if err != nil {
		return nil, err
	}
	if _, err := s.Engine.SolveMulti(synth.Votes(recs)); err != nil {
		return nil, err
	}
	return s, nil
}

// AblationCluster compares the split strategy's clustering algorithms:
// the paper's affinity propagation (adaptive k) versus k-medoids with
// k = ⌈√votes⌉.
func AblationCluster(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	host, err := synth.Twitter.Scaled(cfg.GraphScale).Generate(cfg.Seed + 46)
	if err != nil {
		return Table{}, err
	}
	w, err := synth.GenerateWorkload(host, synth.WorkloadConfig{
		NQ: 24, NA: 60, Nnodes: min(host.NumNodes(), 2000), K: cfg.K, Seed: cfg.Seed + 47,
	})
	if err != nil {
		return Table{}, err
	}
	nv := min(len(w.Votes), 10)
	votes := w.Votes[:nv]
	t := Table{
		Title:  "Ablation: split strategy clustering algorithm",
		Header: []string{"Algorithm", "Elapsed", "Omega_avg", "Clusters"},
	}
	for _, algo := range []struct {
		name string
		algo core.ClusterAlgo
	}{{"Affinity propagation (paper)", core.APCluster}, {"K-medoids (k = ceil sqrt n)", core.KMedoidsCluster}} {
		g := w.Aug.Graph.Clone()
		eng, err := core.New(g, core.Options{K: cfg.K, L: cfg.L, Mode: cfg.sgpMode(), Cluster: algo.algo})
		if err != nil {
			return Table{}, err
		}
		before, err := voteOmegaRanks(eng, votes, w.Answers)
		if err != nil {
			return Table{}, err
		}
		start := time.Now()
		rep, err := eng.SolveSplitMerge(votes)
		if err != nil {
			return Table{}, fmt.Errorf("harness: cluster algo %s: %w", algo.name, err)
		}
		elapsed := time.Since(start)
		after, err := voteOmegaRanks(eng, votes, w.Answers)
		if err != nil {
			return Table{}, err
		}
		omega, err := metrics.OmegaAvg(before, after)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{algo.name, elapsed.String(), f2(omega), fmt.Sprintf("%d", rep.Clusters)})
	}
	return t, nil
}
