package harness

import "testing"

func TestScenarioBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario bench is slow")
	}
	res, err := ScenarioBench(ScenarioConfig{
		Config:  Config{Seed: 1, Docs: 30, TrainQuestions: 14, TestQuestions: 14},
		Include: []string{"spam-flood"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() != nil {
		t.Fatalf("%v\n%s", res.Err(), res)
	}
	if len(res.Scenarios) != 1 || res.Scenarios[0].Name != "spam-flood" {
		t.Fatalf("Include filter broken: %+v", res.Scenarios)
	}
	s := res.Scenarios[0]
	if s.Quarantined == 0 {
		t.Error("spam flood was never quarantined")
	}
	if s.HonestQuarantined != 0 {
		t.Errorf("%d honest voters quarantined", s.HonestQuarantined)
	}
	// The load-bearing ablation: without the tracker the same stream must
	// leave the system measurably worse than with it.
	if !(s.OffMRR < s.MRR || s.OffOmegaAvg < s.OmegaAvg) {
		t.Errorf("quarantine-off ablation did not degrade: %+v", s)
	}
	if res.String() == "" {
		t.Error("empty summary")
	}
}
