package harness

import (
	"fmt"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/metrics"
	"kgvote/internal/pathidx"
	"kgvote/internal/ppr"
	"kgvote/internal/synth"
	"kgvote/internal/vote"
)

// TableVI reproduces Table VI: the average elapsed time per query of the
// random-walk similarity evaluation of [5] (one linear-system solve per
// answer) versus the extended inverse P-distance, as the number of
// answers grows. Absolute times differ from the paper's MATLAB setup; the
// reproduction target is the shape — random walk grows linearly with |A|
// while EIPD stays nearly flat.
func TableVI(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	host, err := synth.RandomGraph(max(200, cfg.AnswerCounts[len(cfg.AnswerCounts)-1]/2), max(800, cfg.AnswerCounts[len(cfg.AnswerCounts)-1]*2), cfg.Seed+10)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Table VI: average elapsed time per query",
		Header: []string{"|A|", "Random Walk [5]", "Extended Inverse P-Distance", "Speedup"},
	}
	for _, na := range cfg.AnswerCounts {
		g := host.Clone()
		w, err := synth.GenerateWorkload(g, synth.WorkloadConfig{
			NQ: cfg.TimingQueries, NA: na, Nnodes: g.NumNodes(), K: cfg.K, Seed: cfg.Seed + 11,
		})
		if err != nil {
			return Table{}, err
		}
		// Random-walk baseline: one Gauss–Seidel solve per answer.
		walker, err := ppr.NewWalker(g, ppr.Options{})
		if err != nil {
			return Table{}, err
		}
		start := time.Now()
		for _, q := range w.Queries {
			if _, err := walker.Rank(q, w.Answers, cfg.K); err != nil {
				return Table{}, err
			}
		}
		walkPer := time.Since(start) / time.Duration(len(w.Queries))

		// EIPD: one truncated sweep scores all answers.
		scorer, err := pathidx.NewScorer(g, pathidx.Options{})
		if err != nil {
			return Table{}, err
		}
		start = time.Now()
		for _, q := range w.Queries {
			if _, err := scorer.Rank(q, w.Answers, cfg.K); err != nil {
				return Table{}, err
			}
		}
		eipdPer := time.Since(start) / time.Duration(len(w.Queries))

		speedup := float64(walkPer) / float64(maxDuration(eipdPer, time.Nanosecond))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", na), walkPer.String(), eipdPer.String(), fmt.Sprintf("%.1fx", speedup),
		})
	}
	return t, nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Figure6Row is one measurement of the Fig. 6 sweep.
type Figure6Row struct {
	Graph    string
	Votes    int
	Solver   string
	Elapsed  time.Duration
	OmegaAvg float64
	Clusters int
}

// Figure6 reproduces Fig. 6(a–f): for each graph profile and vote count,
// the elapsed time and Ω_avg of the basic multi-vote solution, the
// split-and-merge strategy (sequential and parallel/distributed), and the
// single-vote solution.
func Figure6(cfg Config, profiles []synth.Profile) ([]Figure6Row, error) {
	cfg = cfg.withDefaults()
	if len(profiles) == 0 {
		profiles = []synth.Profile{
			synth.Twitter.Scaled(cfg.GraphScale),
			synth.Digg.Scaled(cfg.GraphScale),
			synth.Gnutella.Scaled(cfg.GraphScale),
		}
	}
	var rows []Figure6Row
	for _, p := range profiles {
		host, err := p.Generate(cfg.Seed + 20)
		if err != nil {
			return nil, err
		}
		maxVotes := cfg.Votes[len(cfg.Votes)-1]
		w, err := synth.GenerateWorkload(host, synth.WorkloadConfig{
			NQ:     maxVotes * 2, // head-room: not every query yields a vote
			NA:     max(40, maxVotes*4),
			Nnodes: min(host.NumNodes(), 2000),
			K:      cfg.K,
			Seed:   cfg.Seed + 21,
		})
		if err != nil {
			return nil, err
		}
		for _, nv := range cfg.Votes {
			if nv > len(w.Votes) {
				nv = len(w.Votes)
			}
			votes := w.Votes[:nv]
			type variant struct {
				name    string
				workers int
				run     func(e *core.Engine, vs []vote.Vote) (*core.Report, error)
			}
			variants := []variant{
				{"Multi-Vote", 1, func(e *core.Engine, vs []vote.Vote) (*core.Report, error) { return e.SolveMulti(vs) }},
				{"S-M", 1, func(e *core.Engine, vs []vote.Vote) (*core.Report, error) { return e.SolveSplitMerge(vs) }},
				{"Distributed S-M", cfg.Workers, func(e *core.Engine, vs []vote.Vote) (*core.Report, error) { return e.SolveSplitMerge(vs) }},
				{"Single-Vote", 1, func(e *core.Engine, vs []vote.Vote) (*core.Report, error) { return e.SolveSingle(vs) }},
			}
			for _, v := range variants {
				g := w.Aug.Graph.Clone()
				eng, err := core.New(g, core.Options{K: cfg.K, L: cfg.L, Mode: cfg.sgpMode(), Workers: v.workers})
				if err != nil {
					return nil, err
				}
				before, err := voteOmegaRanks(eng, votes, w.Answers)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				rep, err := v.run(eng, votes)
				if err != nil {
					return nil, fmt.Errorf("harness: %s on %s with %d votes: %w", v.name, p.Name, nv, err)
				}
				elapsed := time.Since(start)
				after, err := voteOmegaRanks(eng, votes, w.Answers)
				if err != nil {
					return nil, err
				}
				omega, err := metrics.OmegaAvg(before, after)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Figure6Row{
					Graph: p.Name, Votes: nv, Solver: v.name,
					Elapsed: elapsed, OmegaAvg: omega, Clusters: rep.Clusters,
				})
			}
		}
	}
	return rows, nil
}

// Figure6Table renders Figure6 rows as a table.
func Figure6Table(rows []Figure6Row) Table {
	t := Table{
		Title:  "Figure 6: number of votes vs elapsed time and Omega_avg",
		Header: []string{"Graph", "Votes", "Solver", "Elapsed", "Omega_avg", "Clusters"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Graph, fmt.Sprintf("%d", r.Votes), r.Solver,
			r.Elapsed.String(), f2(r.OmegaAvg), fmt.Sprintf("%d", r.Clusters),
		})
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
