package harness

import (
	"strings"
	"testing"
)

func TestTelemetryBenchSmoke(t *testing.T) {
	res, err := TelemetryBench(TelemetryConfig{Docs: 30, Queries: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlainQPS <= 0 || res.InstrumentedQPS <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	// Both passes over the instrumented system (warmup + measured) must
	// have hit the live metrics.
	if want := uint64(2 * res.Queries); res.Observations != want {
		t.Fatalf("observations = %d, want %d", res.Observations, want)
	}
	if !strings.Contains(res.String(), "overhead") {
		t.Fatalf("summary = %q", res.String())
	}
}
