package harness

import (
	"strconv"
	"strings"
	"testing"

	"kgvote/internal/sgp"
	"kgvote/internal/synth"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{
		Seed:             1,
		Topics:           4,
		EntitiesPerTopic: 10,
		Docs:             48,
		EntitiesPerDoc:   5,
		TrainQuestions:   24,
		TestQuestions:    24,
		K:                8,
		L:                3,
		GraphScale:       0.004,
		Votes:            []int{2, 4},
		AnswerCounts:     []int{20, 40},
		Workers:          2,
		TimingQueries:    2,
		Lengths:          []int{2, 3, 4},
	}
}

func TestTableString(t *testing.T) {
	tab := Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
		Notes:  []string{"n"},
	}
	s := tab.String()
	for _, want := range []string{"T\n", "xxx", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTableIII(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fixture experiment; skipped in -short")
	}
	tab, err := TableIII(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("no optimized edges reported:\n%s", tab)
	}
	for _, row := range tab.Rows {
		if len(row) != 5 {
			t.Fatalf("row shape: %v", row)
		}
		orig, err1 := strconv.ParseFloat(row[2], 64)
		opt, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparsable weights in row %v", row)
		}
		if orig == opt {
			t.Errorf("unchanged edge reported: %v", row)
		}
		if row[0] == "" || row[1] == "" {
			t.Errorf("entity names missing: %v", row)
		}
	}
}

func TestTableIVShapeAndImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fixture experiment; skipped in -short")
	}
	tab, err := TableIV(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(tab.Rows), tab)
	}
	orig, err := strconv.ParseFloat(tab.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := strconv.ParseFloat(tab.Rows[2][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if orig <= 1 {
		t.Skipf("degenerate fixture: original R_avg = %v", orig)
	}
	// The paper's headline: the multi-vote solution improves the average
	// ranking of best answers.
	if multi > orig {
		t.Errorf("multi-vote R_avg %v worse than original %v:\n%s", multi, orig, tab)
	}
}

func TestTableVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fixture experiment; skipped in -short")
	}
	tab, err := TableV(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5:\n%s", len(tab.Rows), tab)
	}
	parse := func(row []string) []float64 {
		out := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(row[i+1], 64)
			if err != nil {
				t.Fatalf("unparsable H@k in %v", row)
			}
			out[i] = v
		}
		return out
	}
	for _, row := range tab.Rows {
		hs := parse(row)
		for i := 0; i+1 < len(hs); i++ {
			if hs[i] > hs[i+1]+1e-9 {
				t.Errorf("H@k must be non-decreasing in k: %v", row)
			}
		}
	}
	// Robust shape claims at test scale: the multi-vote solution must not
	// hurt the KG at H@10, and must beat the single-vote solution at H@1
	// (the paper's central comparison). The IR column is noise-free (it
	// never reads the corrupted graph), so KG-vs-IR is only meaningful at
	// cmd/experiments scale; see EXPERIMENTS.md.
	kg := parse(tab.Rows[2])
	single := parse(tab.Rows[3])
	multi := parse(tab.Rows[4])
	// One-question tolerance: at 24 test questions each hit is worth
	// 1/24 ≈ 0.042 of H@k, well within seed noise.
	tol := 1.0/float64(tiny().TestQuestions) + 1e-9
	if multi[3] < kg[3]-tol {
		t.Errorf("multi-vote degraded KG H@10 (kg=%v multi=%v):\n%s", kg[3], multi[3], tab)
	}
	if multi[0] < single[0]-tol {
		t.Errorf("multi-vote H@1 %v below single-vote %v:\n%s", multi[0], single[0], tab)
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fixture experiment; skipped in -short")
	}
	tab, err := Figure5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for col := 1; col <= 4; col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v < 0 || v > 1 {
				t.Errorf("column %d out of range: %v", col, row)
			}
		}
	}
}

func TestTableVIShape(t *testing.T) {
	cfg := tiny()
	tab, err := TableVI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(cfg.AnswerCounts) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(cfg.AnswerCounts))
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[3], "x") {
			t.Errorf("speedup cell malformed: %v", row)
		}
	}
}

func TestFigure6SmallSweep(t *testing.T) {
	cfg := tiny()
	profiles := []synth.Profile{synth.Twitter.Scaled(cfg.GraphScale)}
	rows, err := Figure6(cfg, profiles)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Votes) * 4 // 4 solver variants
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	solvers := map[string]bool{}
	for _, r := range rows {
		solvers[r.Solver] = true
		if r.Elapsed <= 0 {
			t.Errorf("non-positive elapsed for %+v", r)
		}
	}
	for _, s := range []string{"Multi-Vote", "S-M", "Distributed S-M", "Single-Vote"} {
		if !solvers[s] {
			t.Errorf("missing solver %q", s)
		}
	}
	tab := Figure6Table(rows)
	if len(tab.Rows) != len(rows) {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
}

func TestFigure7PD(t *testing.T) {
	cfg := tiny()
	profiles := []synth.Profile{synth.Digg.Scaled(cfg.GraphScale)}
	tab, err := Figure7PD(cfg, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Rows[0]) != len(cfg.Lengths) {
		t.Errorf("cells = %d, want %d", len(tab.Rows[0]), len(cfg.Lengths))
	}
}

func TestFigure7Time(t *testing.T) {
	cfg := tiny()
	profiles := []synth.Profile{synth.Digg.Scaled(cfg.GraphScale)}
	tab, err := Figure7Time(cfg, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != len(cfg.Lengths)+1 {
		t.Fatalf("table shape wrong:\n%s", tab)
	}
}

func TestFigure2(t *testing.T) {
	tab := Figure2()
	if len(tab.Rows) == 0 {
		t.Fatalf("no rows")
	}
	for _, row := range tab.Rows {
		absErr, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("unparsable error cell: %v", row)
		}
		x, _ := strconv.ParseFloat(row[0], 64)
		if x > 0.05 || x < -0.05 {
			if absErr > 1e-6 {
				t.Errorf("sigmoid far from step away from origin: %v", row)
			}
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fixture experiment; skipped in -short")
	}
	cfg := tiny()
	for name, fn := range map[string]func(Config) (Table, error){
		"solver-mode": AblationSolverMode,
		"merge-rule":  AblationMergeRule,
		"scorer":      AblationScorer,
		"normalize":   AblationNormalize,
		"cluster":     AblationCluster,
	} {
		tab, err := fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) < 2 {
			t.Errorf("%s: rows = %d", name, len(tab.Rows))
		}
	}
}

func TestPaperConfigIsLarger(t *testing.T) {
	p := Paper()
	d := Config{}.withDefaults()
	if p.Docs <= d.Docs || p.K <= d.K || p.GraphScale <= d.GraphScale {
		t.Errorf("Paper() should exceed defaults: %+v vs %+v", p, d)
	}
	if len(p.Votes) != 6 {
		t.Errorf("paper vote sweep = %v", p.Votes)
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x,1", `he said "hi"`}, {"plain", "cell"}},
	}
	got := tab.CSV()
	want := "a,b\n\"x,1\",\"he said \"\"hi\"\"\"\nplain,cell\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestHelperFormatters(t *testing.T) {
	if got := f2(1.234); got != "1.23" {
		t.Errorf("f2 = %q", got)
	}
	if got := f3(0.1); got != "0.100" {
		t.Errorf("f3 = %q", got)
	}
	if got := pct(0.1882); got != "18.82%" {
		t.Errorf("pct = %q", got)
	}
	if got := maxDuration(2, 5); got != 5 {
		t.Errorf("maxDuration = %v", got)
	}
	if got := maxDuration(7, 5); got != 7 {
		t.Errorf("maxDuration = %v", got)
	}
	if min(3, 4) != 3 || max(3, 4) != 4 {
		t.Errorf("min/max wrong")
	}
}

func TestSolverKindString(t *testing.T) {
	for k, want := range map[solverKind]string{
		originalGraph:  "Original Graph",
		singleVote:     "Single-Vote",
		multiVote:      "Multi-Vote",
		splitMerge:     "Split-Merge",
		solverKind(42): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestSgpModeSwitch(t *testing.T) {
	if (Config{}).sgpMode() != sgp.Reduced {
		t.Errorf("default should use the reduced solve")
	}
	if (Config{FullSolver: true}).sgpMode() != sgp.Full {
		t.Errorf("FullSolver should select the full solve")
	}
	if !Paper().FullSolver {
		t.Errorf("Paper() should use the full formulation")
	}
}
