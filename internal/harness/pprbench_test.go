package harness

import (
	"testing"

	"kgvote/internal/synth"
)

// TestPPRBenchSmall runs the bench on two tiny profiles — timings are
// meaningless at this scale, so the speedup floor is disabled, but the
// bound contract and the result shape must hold.
func TestPPRBenchSmall(t *testing.T) {
	res, err := PPRBench(PPRConfig{
		Profiles:   []synth.Profile{synth.Twitter.Scaled(0.02), synth.Twitter.Scaled(0.08)},
		Queries:    4,
		Cands:      32,
		Flushes:    2,
		Rounds:     1,
		MinSpeedup: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := res.Err(); verr != nil {
		t.Fatal(verr)
	}
	if len(res.Profiles) != 2 {
		t.Fatalf("profiles = %d", len(res.Profiles))
	}
	for _, p := range res.Profiles {
		if !p.BoundHeld {
			t.Errorf("%s: bound violated (divergence %g, budget %g)", p.Profile, p.MaxDivergence, p.ErrorBudget)
		}
		if p.Pushes == 0 {
			t.Errorf("%s: zero pushes", p.Profile)
		}
		if p.PushFlushMicros <= 0 || p.EnumFlushMicros <= 0 {
			t.Errorf("%s: missing flush timings %+v", p.Profile, p)
		}
	}
	if res.String() == "" {
		t.Error("empty summary")
	}
}

// TestPPRBenchSpeedupViolation: an absurd floor must be reported as a
// violation, proving the self-assertion has teeth.
func TestPPRBenchSpeedupViolation(t *testing.T) {
	res, err := PPRBench(PPRConfig{
		Profiles:   []synth.Profile{synth.Twitter.Scaled(0.02)},
		Queries:    2,
		Cands:      16,
		Flushes:    1,
		Rounds:     1,
		MinSpeedup: 1e12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("floor 1e12 not reported as a violation")
	}
}
