package harness

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/synth"
	"kgvote/internal/vote"
)

// FarmConfig sizes the solve-farm benchmark (DESIGN.md §13): the same
// synthetic vote batch is flushed once with the in-process solver and
// once dispatched to already-running kgsolved workers, and the final
// weights are compared bit-for-bit. An optional third pass SIGKILLs one
// worker mid-flush and checks the flush still completes — identically —
// via retry and fallback.
type FarmConfig struct {
	Docs    int   // corpus documents; default 120
	Votes   int   // votes in the measured batch; default 64
	Workers int   // flush-pipeline (dispatch) concurrency; default GOMAXPROCS
	Rounds  int   // timed repetitions per pass (min is kept); default 3
	Seed    int64 // default 1
	K       int   // top-K; default 10
	L       int   // walk-length bound; default 4

	// Clusters pins the vote clustering to KMedoids with this many
	// clusters (0 = the paper's affinity propagation). The farm can only
	// parallelize across clusters, so the benchmark pins enough of them to
	// keep every worker busy; both passes use the same clustering, which
	// keeps the bitwise weight comparison valid.
	Clusters int

	// Addrs lists running kgsolved workers. The caller owns their
	// lifecycle — the harness only dispatches to them.
	Addrs []string
	// Solver dispatches cluster jobs to Addrs; typically a
	// *solvefarm.Dispatcher (the harness takes the interface to avoid
	// depending on the farm package).
	Solver core.ClusterSolver

	// KillWorker, when non-nil, enables the fault pass: once KillAddr's
	// /metrics shows it accepted a job of the in-flight flush, KillWorker
	// is invoked (typically a SIGKILL of that process).
	KillWorker func() error
	KillAddr   string
}

func (c FarmConfig) withDefaults() FarmConfig {
	if c.Docs == 0 {
		c.Docs = 120
	}
	if c.Votes == 0 {
		c.Votes = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.L == 0 {
		c.L = 4
	}
	return c
}

// FarmResult is the JSON-serializable outcome of FarmBench; it rides in
// BENCH_flush.json next to the single-process flush numbers.
type FarmResult struct {
	Docs        int `json:"docs"`
	Votes       int `json:"votes"`
	FarmWorkers int `json:"farm_workers"` // worker processes
	Workers     int `json:"workers"`      // dispatch concurrency
	Clusters    int `json:"clusters"`

	// Wall-clock per flush (minimum over rounds) and the solve stage
	// alone, in milliseconds. Local is the in-process single-worker flush
	// the farm is judged against.
	LocalMillis      float64 `json:"local_ms"`
	FarmMillis       float64 `json:"farm_ms"`
	LocalSolveMillis float64 `json:"local_solve_ms"`
	FarmSolveMillis  float64 `json:"farm_solve_ms"`

	// SolveSpeedup is the headline number: the solve stage is the part
	// the farm distributes, and the pre-solve pipeline stays on the
	// writer either way. Speedup is end-to-end for context.
	Speedup      float64 `json:"speedup"`
	SolveSpeedup float64 `json:"solve_speedup"`

	// MatchesLocal is the determinism contract: farm-solved final weights
	// bitwise identical to the in-process flush.
	MatchesLocal bool `json:"matches_local"`

	// Fault pass (zero-valued when FarmConfig.KillWorker is nil): one
	// worker SIGKILLed mid-flush, flush must still complete and match.
	KillRan      bool    `json:"kill_ran,omitempty"`
	KillMillis   float64 `json:"kill_ms,omitempty"`
	KillMatches  bool    `json:"kill_matches,omitempty"`
	KillSurvived bool    `json:"kill_survived,omitempty"`
}

// String renders a one-screen summary.
func (r FarmResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "farm bench: %d docs, %d votes, %d clusters, %d worker processes\n",
		r.Docs, r.Votes, r.Clusters, r.FarmWorkers)
	fmt.Fprintf(&sb, "  local (in-process, 1 worker):   %9.1f ms  (solve %9.1f ms)\n",
		r.LocalMillis, r.LocalSolveMillis)
	fmt.Fprintf(&sb, "  farm  (%d workers, %d dispatch): %9.1f ms  (solve %9.1f ms)\n",
		r.FarmWorkers, r.Workers, r.FarmMillis, r.FarmSolveMillis)
	fmt.Fprintf(&sb, "  solve speedup %.2fx (%.2fx end-to-end), matches local: %v",
		r.SolveSpeedup, r.Speedup, r.MatchesLocal)
	if r.KillRan {
		fmt.Fprintf(&sb, "\n  worker killed mid-flush: survived=%v matches=%v (%.1f ms)",
			r.KillSurvived, r.KillMatches, r.KillMillis)
	}
	return sb.String()
}

// farmPass runs cfg.Rounds single-flush solves over fresh systems, with
// solver (nil = in-process) plugged into each engine and preFlush armed
// before each timed solve. It returns the minimum flush time, the report
// of the fastest round, and the final weights of the last round.
func farmPass(corpus *qa.Corpus, questions []qa.Question, cfg FarmConfig, opt core.Options, solver core.ClusterSolver, preFlush func()) (time.Duration, *core.Report, map[graph.EdgeKey]float64, error) {
	best := time.Duration(0)
	var rep *core.Report
	var weights map[graph.EdgeKey]float64
	for round := 0; round < cfg.Rounds; round++ {
		sys, err := qa.Build(corpus, opt)
		if err != nil {
			return 0, nil, nil, err
		}
		if solver != nil {
			sys.Engine.SetClusterSolver(solver)
		}
		votes := make([]vote.Vote, 0, len(questions))
		for i, q := range questions {
			qn, ranked, err := sys.Ask(q)
			if err != nil {
				return 0, nil, nil, fmt.Errorf("ask %d: %w", i, err)
			}
			pick := 1 + i%(len(ranked)-1)
			v, err := sys.VoteBest(qn, ranked, sys.DocOf(ranked[pick]))
			if err != nil {
				return 0, nil, nil, fmt.Errorf("vote %d: %w", i, err)
			}
			votes = append(votes, v)
		}
		if preFlush != nil {
			preFlush()
		}
		start := time.Now()
		r, err := sys.Engine.SolveSplitMerge(votes)
		elapsed := time.Since(start)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("flush: %w", err)
		}
		if best == 0 || elapsed < best {
			best = elapsed
			rep = r
		}
		weights = make(map[graph.EdgeKey]float64)
		sys.Aug.Graph.Edges(func(from, to graph.NodeID, w float64) {
			weights[graph.EdgeKey{From: from, To: to}] = w
		})
	}
	return best, rep, weights, nil
}

// FarmBench measures one split-and-merge flush of an identical vote
// batch solved in process versus dispatched to the worker farm, asserts
// bitwise-identical final weights, and (when configured) repeats the
// farm flush with one worker killed mid-solve.
func FarmBench(cfg FarmConfig) (FarmResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Solver == nil {
		return FarmResult{}, fmt.Errorf("harness: FarmConfig.Solver is required")
	}
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: cfg.Docs, Seed: cfg.Seed})
	if err != nil {
		return FarmResult{}, err
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: cfg.Votes, Seed: cfg.Seed + 1})
	if err != nil {
		return FarmResult{}, err
	}
	localOpt := core.Options{K: cfg.K, L: cfg.L, Workers: 1}
	farmOpt := core.Options{K: cfg.K, L: cfg.L, Workers: cfg.Workers}
	if cfg.Clusters > 0 {
		localOpt.Cluster, localOpt.ClusterK = core.KMedoidsCluster, cfg.Clusters
		farmOpt.Cluster, farmOpt.ClusterK = core.KMedoidsCluster, cfg.Clusters
	}

	localTime, localRep, localWeights, err := farmPass(corpus, questions, cfg, localOpt, nil, nil)
	if err != nil {
		return FarmResult{}, fmt.Errorf("local pass: %w", err)
	}
	farmTime, farmRep, farmWeights, err := farmPass(corpus, questions, cfg, farmOpt, cfg.Solver, nil)
	if err != nil {
		return FarmResult{}, fmt.Errorf("farm pass: %w", err)
	}

	res := FarmResult{
		Docs:             cfg.Docs,
		Votes:            cfg.Votes,
		FarmWorkers:      len(cfg.Addrs),
		Workers:          cfg.Workers,
		Clusters:         farmRep.Clusters,
		LocalMillis:      localTime.Seconds() * 1e3,
		FarmMillis:       farmTime.Seconds() * 1e3,
		LocalSolveMillis: localRep.SolveSeconds * 1e3,
		FarmSolveMillis:  farmRep.SolveSeconds * 1e3,
		Speedup:          localTime.Seconds() / farmTime.Seconds(),
		MatchesLocal:     weightsEqual(farmWeights, localWeights),
	}
	if farmRep.SolveSeconds > 0 {
		res.SolveSpeedup = localRep.SolveSeconds / farmRep.SolveSeconds
	}

	if cfg.KillWorker != nil {
		res.KillRan = true
		killCfg := cfg
		killCfg.Rounds = 1 // one flush; the kill is a one-shot event
		armed := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			<-armed
			if waitForJob(cfg.KillAddr, 2*time.Minute) {
				_ = cfg.KillWorker()
			}
		}()
		killTime, _, killWeights, err := farmPass(corpus, questions, killCfg, farmOpt, cfg.Solver, func() { close(armed) })
		<-done
		if err != nil {
			return res, fmt.Errorf("kill pass: %w", err)
		}
		res.KillSurvived = true
		res.KillMillis = killTime.Seconds() * 1e3
		res.KillMatches = weightsEqual(killWeights, localWeights)
	}
	return res, nil
}

// waitForJob polls addr's /metrics until the worker reports at least one
// accepted solve job, so the kill lands while the flush is actually using
// that worker. Returns false on timeout or unreachable worker.
func waitForJob(addr string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(body), "\n") {
				if strings.HasPrefix(line, "kgvote_farm_worker_jobs_total") &&
					!strings.HasSuffix(strings.TrimSpace(line), " 0") {
					return true
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}
