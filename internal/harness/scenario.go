package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"kgvote/internal/core"
	"kgvote/internal/metrics"
	"kgvote/internal/synth"
	"kgvote/internal/vote"
)

// ScenarioConfig sizes the adversarial-workload benchmark (DESIGN.md
// §15): each synth scenario is mixed with honest traffic and driven
// through full vote→flush→re-rank cycles, once with the reputation
// tracker installed and once without (the load-bearing ablation), and
// the run verifies the quarantine contract instead of just timing it.
type ScenarioConfig struct {
	Config
	// BatchSize is the stream flush threshold. Default 16.
	BatchSize int
	// Epsilon bounds how far test MRR/MAP may fall below the honest-only
	// baseline while an adversarial scenario runs with quarantine on.
	// Default 0.05.
	Epsilon float64
	// DegradeMargin is how much worse than the quarantine-on run the
	// quarantine-off ablation must score (MRR or MAP) for spam-flood and
	// colluding-ring — the proof the tracker is load-bearing. A scenario
	// whose ablation also clears the Ω_avg drop (OmegaMargin) passes too.
	// Default 0.02.
	DegradeMargin float64
	// OmegaMargin is the alternative ablation criterion: honest Ω_avg
	// under quarantine off trails the quarantine-on run by at least this
	// many rank positions. Default 0.3.
	OmegaMargin float64
	// Include restricts which scenarios run (by synth kind name, e.g.
	// "spam-flood"); empty runs the full suite.
	Include []string
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	c.Config = c.Config.withDefaults()
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.DegradeMargin == 0 {
		c.DegradeMargin = 0.02
	}
	if c.OmegaMargin == 0 {
		c.OmegaMargin = 0.3
	}
	return c
}

// scenarioSuite is the default workload suite: every non-honest synth
// kind, with sizes that let the adversarial streams rival the honest one.
func (c ScenarioConfig) scenarioSuite() []synth.Scenario {
	all := []synth.Scenario{
		{Kind: synth.Noisy, Seed: c.Seed + 20},
		{Kind: synth.SpamFlood, Seed: c.Seed + 21, Volume: 3 * c.TrainQuestions},
		{Kind: synth.ColludingRing, Seed: c.Seed + 22, Waves: 3},
		{Kind: synth.Contradictory, Seed: c.Seed + 23},
		{Kind: synth.Implicit, Seed: c.Seed + 24},
	}
	if len(c.Include) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, n := range c.Include {
		want[n] = true
	}
	var out []synth.Scenario
	for _, sc := range all {
		if want[sc.Kind.String()] {
			out = append(out, sc)
		}
	}
	return out
}

// ScenarioOutcome reports one adversarial scenario's effect on ranking
// quality, with the reputation tracker on and (for adversarial kinds)
// off.
type ScenarioOutcome struct {
	Name        string `json:"name"`
	Adversarial bool   `json:"adversarial"`
	// Vote-stream composition of the mixed run.
	HonestVotes      int `json:"honest_votes"`
	AdversarialVotes int `json:"adversarial_votes"`
	// Quarantine-on metrics.
	Quarantined       int     `json:"quarantined"`
	QuarantinedVoters int     `json:"quarantined_voters"`
	HonestQuarantined int     `json:"honest_quarantined_voters"`
	OmegaAvg          float64 `json:"omega_avg"`
	MRR               float64 `json:"mrr"`
	MAP               float64 `json:"map"`
	// Quarantine-off ablation (adversarial kinds only).
	OffOmegaAvg float64 `json:"off_omega_avg,omitempty"`
	OffMRR      float64 `json:"off_mrr,omitempty"`
	OffMAP      float64 `json:"off_map,omitempty"`
}

// ScenarioResult is the JSON-serializable outcome of ScenarioBench (the
// "scenarios" entry of BENCH_serve.json). Violations lists every broken
// contract clause; an empty list is a passing run.
type ScenarioResult struct {
	Docs      int     `json:"docs"`
	Train     int     `json:"train_questions"`
	Test      int     `json:"test_questions"`
	BatchSize int     `json:"batch_size"`
	Epsilon   float64 `json:"epsilon"`

	// Honest-only baseline (tracker on, nothing to quarantine).
	BaselineOmegaAvg float64 `json:"baseline_omega_avg"`
	BaselineMRR      float64 `json:"baseline_mrr"`
	BaselineMAP      float64 `json:"baseline_map"`

	Scenarios []ScenarioOutcome `json:"scenarios"`

	Violations []string `json:"violations,omitempty"`
}

// String renders a one-screen summary.
func (r ScenarioResult) String() string {
	verdict := "PASS"
	if len(r.Violations) > 0 {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario bench: %d docs, %d train / %d test questions, batch %d, ε %.2f — %s\n",
		r.Docs, r.Train, r.Test, r.BatchSize, r.Epsilon, verdict)
	fmt.Fprintf(&b, "  baseline (honest only): Ω_avg %+.2f  MRR %.3f  MAP %.3f\n",
		r.BaselineOmegaAvg, r.BaselineMRR, r.BaselineMAP)
	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "  %-14s %4d adv votes: quarantined %3d votes / %d voters (honest hit: %d)  Ω_avg %+.2f  MRR %.3f  MAP %.3f",
			s.Name, s.AdversarialVotes, s.Quarantined, s.QuarantinedVoters, s.HonestQuarantined, s.OmegaAvg, s.MRR, s.MAP)
		if s.Adversarial {
			fmt.Fprintf(&b, "  [off: Ω_avg %+.2f  MRR %.3f  MAP %.3f]", s.OffOmegaAvg, s.OffMRR, s.OffMAP)
		}
		b.WriteByte('\n')
	}
	for _, v := range r.Violations {
		b.WriteString("  VIOLATION: " + v + "\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// Err returns a non-nil error when the run broke the quarantine contract.
func (r ScenarioResult) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("scenario contract: %d violations: %v", len(r.Violations), r.Violations)
}

// passMetrics is one full vote→flush→re-rank cycle's outcome.
type passMetrics struct {
	honest, adversarial int
	quarantined         int
	quarantinedVoters   int
	honestQuarantined   int
	omegaAvg            float64
	mrr, mapScore       float64
}

// runScenarioPass builds a fresh identically-corrupted system, generates
// the honest stream plus (optionally) one adversarial stream against it,
// interleaves them in a deterministic shuffle, and streams everything
// through batch flushes. Honest Ω_avg compares each honest vote's
// ground-truth rank at vote time against its final rank; MRR/MAP come
// from the held-out test set.
func runScenarioPass(f *taobaoFixture, cfg ScenarioConfig, adv *synth.Scenario, withTracker bool) (passMetrics, error) {
	var pm passMetrics
	sys, err := f.buildCorrupted()
	if err != nil {
		return pm, err
	}
	honest, err := synth.SimulateScenario(sys, f.train, synth.Scenario{
		Kind: synth.Honest, Seed: cfg.Seed + 4, Voters: 5,
	})
	if err != nil {
		return pm, err
	}
	recs := append([]synth.VoteRecord(nil), honest...)
	if adv != nil {
		advRecs, err := synth.SimulateScenario(sys, f.train, *adv)
		if err != nil {
			return pm, err
		}
		pm.adversarial = len(advRecs)
		recs = append(recs, advRecs...)
	}
	pm.honest = len(honest)
	rand.New(rand.NewSource(cfg.Seed+6)).Shuffle(len(recs), func(i, j int) {
		recs[i], recs[j] = recs[j], recs[i]
	})

	stream, err := sys.Engine.NewStream(cfg.BatchSize, core.StreamMulti)
	if err != nil {
		return pm, err
	}
	var tracker *vote.Reputation
	if withTracker {
		tracker = vote.NewReputation(vote.ReputationConfig{})
		stream.SetVoterPolicy(tracker)
	}
	for _, rec := range recs {
		if tracker != nil {
			tracker.Observe(rec.Vote.Voter, uint64(rec.Question.ID), rec.Vote.Best)
		}
		rep, err := stream.Push(rec.Vote)
		if err != nil {
			return pm, err
		}
		if rep != nil {
			pm.quarantined += rep.Quarantined
		}
	}
	rep, err := stream.Flush()
	if err != nil {
		return pm, err
	}
	if rep != nil {
		pm.quarantined += rep.Quarantined
	}
	if tracker != nil {
		pm.quarantinedVoters = tracker.Stats().QuarantinedVoters
		for i := 0; i < 5; i++ {
			if tracker.Quarantine(voterID("honest", i)) {
				pm.honestQuarantined++
			}
		}
	}

	// Honest Ω: the ground-truth answer's rank at vote time vs now.
	var before, after []int
	for _, rec := range honest {
		best, err := sys.AnswerOf(rec.Question.BestDoc)
		if err != nil {
			return pm, err
		}
		now, err := sys.Engine.RankOf(rec.Query, best, sys.Answers())
		if err != nil {
			return pm, err
		}
		before = append(before, rec.TrueRank)
		after = append(after, now)
	}
	pm.omegaAvg, err = metrics.OmegaAvg(before, after)
	if err != nil {
		return pm, err
	}
	ranks, err := f.testRanks(sys)
	if err != nil {
		return pm, err
	}
	pm.mrr = metrics.MRR(ranks)
	aps, err := f.testAPs(sys)
	if err != nil {
		return pm, err
	}
	pm.mapScore = metrics.MAP(aps)
	return pm, nil
}

// voterID mirrors synth's voter naming so the harness can ask the
// tracker about specific honest identities.
func voterID(prefix string, i int) string { return fmt.Sprintf("%s-%d", prefix, i) }

// ScenarioBench runs the adversarial vote workloads of DESIGN.md §15
// through full vote→flush→re-rank cycles and checks the quarantine
// contract:
//
//   - with the reputation tracker on, honest votes keep landing (Ω_avg
//     stays positive) and held-out MRR/MAP stay within Epsilon of the
//     honest-only baseline for every adversarial scenario, while no
//     honest voter is quarantined;
//   - with the tracker off, at least the spam-flood and colluding-ring
//     scenarios measurably degrade quality — the ablation proving the
//     tracker (not the solver alone) absorbs the attacks.
func ScenarioBench(cfg ScenarioConfig) (ScenarioResult, error) {
	cfg = cfg.withDefaults()
	f, err := newTaobaoFixture(cfg.Config)
	if err != nil {
		return ScenarioResult{}, err
	}
	res := ScenarioResult{
		Docs:      cfg.Docs,
		Train:     cfg.TrainQuestions,
		Test:      cfg.TestQuestions,
		BatchSize: cfg.BatchSize,
		Epsilon:   cfg.Epsilon,
	}
	violation := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	base, err := runScenarioPass(f, cfg, nil, true)
	if err != nil {
		return res, fmt.Errorf("baseline pass: %w", err)
	}
	res.BaselineOmegaAvg = base.omegaAvg
	res.BaselineMRR = base.mrr
	res.BaselineMAP = base.mapScore
	if base.omegaAvg <= 0 {
		violation("baseline honest Ω_avg = %.3f, want > 0", base.omegaAvg)
	}
	if base.quarantined != 0 || base.quarantinedVoters != 0 {
		violation("baseline quarantined %d votes / %d voters with only honest traffic",
			base.quarantined, base.quarantinedVoters)
	}

	for _, sc := range cfg.scenarioSuite() {
		sc := sc
		on, err := runScenarioPass(f, cfg, &sc, true)
		if err != nil {
			return res, fmt.Errorf("%s pass: %w", sc.Kind, err)
		}
		out := ScenarioOutcome{
			Name:              sc.Kind.String(),
			Adversarial:       sc.Adversarial(),
			HonestVotes:       on.honest,
			AdversarialVotes:  on.adversarial,
			Quarantined:       on.quarantined,
			QuarantinedVoters: on.quarantinedVoters,
			HonestQuarantined: on.honestQuarantined,
			OmegaAvg:          on.omegaAvg,
			MRR:               on.mrr,
			MAP:               on.mapScore,
		}
		if on.omegaAvg <= 0 {
			violation("%s: honest Ω_avg = %.3f with quarantine on, want > 0", out.Name, on.omegaAvg)
		}
		if out.HonestQuarantined != 0 {
			violation("%s: %d honest voters quarantined", out.Name, out.HonestQuarantined)
		}
		if out.Adversarial {
			if on.mrr < res.BaselineMRR-cfg.Epsilon {
				violation("%s: MRR %.3f fell more than ε=%.2f below baseline %.3f",
					out.Name, on.mrr, cfg.Epsilon, res.BaselineMRR)
			}
			if on.mapScore < res.BaselineMAP-cfg.Epsilon {
				violation("%s: MAP %.3f fell more than ε=%.2f below baseline %.3f",
					out.Name, on.mapScore, cfg.Epsilon, res.BaselineMAP)
			}
			if on.quarantined == 0 {
				violation("%s: tracker quarantined no votes", out.Name)
			}

			off, err := runScenarioPass(f, cfg, &sc, false)
			if err != nil {
				return res, fmt.Errorf("%s ablation pass: %w", sc.Kind, err)
			}
			out.OffOmegaAvg = off.omegaAvg
			out.OffMRR = off.mrr
			out.OffMAP = off.mapScore
			// Only spam-flood and colluding-ring are required to collapse:
			// a contradictory campaign half-cancels itself by construction.
			if sc.Kind == synth.SpamFlood || sc.Kind == synth.ColludingRing {
				qualityDrop := (on.mrr-off.mrr >= cfg.DegradeMargin) ||
					(on.mapScore-off.mapScore >= cfg.DegradeMargin)
				omegaDrop := on.omegaAvg-off.omegaAvg >= cfg.OmegaMargin
				if !qualityDrop && !omegaDrop {
					violation("%s: quarantine-off ablation did not degrade (MRR %.3f→%.3f, MAP %.3f→%.3f, Ω_avg %+.2f→%+.2f) — tracker not load-bearing",
						out.Name, on.mrr, off.mrr, on.mapScore, off.mapScore, on.omegaAvg, off.omegaAvg)
				}
			}
		}
		res.Scenarios = append(res.Scenarios, out)
	}
	return res, nil
}
