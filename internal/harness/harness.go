// Package harness regenerates every table and figure of the paper's
// evaluation (Section VII). Each experiment is a function returning a
// Table; cmd/experiments prints them and bench_test.go wraps them in
// testing.B benchmarks. Sizes are controlled by Config so tests run in
// milliseconds while cmd/experiments can approach the paper's scale.
package harness

import (
	"fmt"
	"strings"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/metrics"
	"kgvote/internal/qa"
	"kgvote/internal/sgp"
	"kgvote/internal/synth"
	"kgvote/internal/vote"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config controls experiment sizes. The zero value gives a fast,
// CI-friendly configuration; Paper() approaches the paper's scale.
type Config struct {
	Seed int64
	// Corpus shape for the Taobao-style experiments (Tables III–V, Fig 5).
	Topics, EntitiesPerTopic, Docs, EntitiesPerDoc int
	TrainQuestions, TestQuestions                  int
	// K is the answer-list length.
	K int
	// L is the path-length pruning threshold used by the optimizers.
	L int
	// Corruption is the log-normal noise level injected into the initial
	// knowledge-graph weights (the paper's "source data errors"); the
	// effectiveness experiments measure how well votes repair it.
	Corruption float64
	// FullSolver switches the SGP solving strategy to the paper's full
	// augmented-Lagrangian formulation. The default (false) uses the
	// reduced deviation-eliminated solve, which the solver-mode ablation
	// shows reaches the same Ω_avg at a fraction of the cost; Paper()
	// sets it for fidelity.
	FullSolver bool
	// GraphScale scales the KONECT profiles for Fig 6/7 and Table VI.
	GraphScale float64
	// Votes is the vote-count sweep of Fig 6.
	Votes []int
	// AnswerCounts is the |A| sweep of Table VI.
	AnswerCounts []int
	// Workers for the distributed split-and-merge variant.
	Workers int
	// Queries per timing measurement in Table VI.
	TimingQueries int
	// Lengths is the L sweep of Fig 7.
	Lengths []int
}

func (c Config) withDefaults() Config {
	if c.Topics == 0 {
		c.Topics = 6
	}
	if c.EntitiesPerTopic == 0 {
		c.EntitiesPerTopic = 14
	}
	if c.Docs == 0 {
		c.Docs = 90
	}
	if c.EntitiesPerDoc == 0 {
		c.EntitiesPerDoc = 5
	}
	if c.TrainQuestions == 0 {
		c.TrainQuestions = 40
	}
	if c.TestQuestions == 0 {
		c.TestQuestions = 40
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.L == 0 {
		c.L = 4
	}
	if c.Corruption == 0 {
		c.Corruption = 0.8
	}

	if c.GraphScale == 0 {
		c.GraphScale = 0.01
	}
	if len(c.Votes) == 0 {
		c.Votes = []int{4, 8, 12}
	}
	if len(c.AnswerCounts) == 0 {
		c.AnswerCounts = []int{50, 100, 200, 400}
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.TimingQueries == 0 {
		c.TimingQueries = 3
	}
	if len(c.Lengths) == 0 {
		c.Lengths = []int{2, 3, 4, 5, 6}
	}
	return c
}

// Paper returns a configuration close to the paper's experimental scale.
// Expect multi-minute runtimes.
func Paper() Config {
	return Config{
		Topics:           12,
		EntitiesPerTopic: 32,
		Docs:             2379,
		EntitiesPerDoc:   6,
		TrainQuestions:   100,
		TestQuestions:    100,
		K:                20,
		L:                5,
		Corruption:       0.8,
		FullSolver:       true,
		GraphScale:       1.0,
		Votes:            []int{10, 30, 50, 100, 150, 200},
		AnswerCounts:     []int{5000, 10000, 20000, 40000},
		Workers:          4,
		TimingQueries:    5,
		Lengths:          []int{2, 3, 4, 5, 6},
	}
}

// taobaoFixture bundles the Taobao-substitute scenario shared by Tables
// III–V and Fig 5: a corpus, train questions (that produce votes), and a
// held-out test set.
type taobaoFixture struct {
	corpus *qa.Corpus
	train  []qa.Question
	test   []qa.Question
	cfg    Config
}

func newTaobaoFixture(cfg Config) (*taobaoFixture, error) {
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{
		Topics:         cfg.Topics,
		EntitiesPer:    cfg.EntitiesPerTopic,
		Docs:           cfg.Docs,
		EntitiesPerDoc: cfg.EntitiesPerDoc,
		Seed:           cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	// Noise 0.4: users phrase questions with related-but-different entities,
	// the regime where graph inference beats literal entity overlap.
	// Hot-document skew: train and test questions concentrate on the same
	// popular quarter of the corpus, the regime where vote feedback
	// transfers to future questions.
	qcfg := synth.QuestionConfig{
		Noise:   0.4,
		HotDocs: max(1, cfg.Docs/4),
		HotProb: 0.75,
		HotSeed: cfg.Seed + 9,
	}
	qcfg.N, qcfg.Seed = cfg.TrainQuestions, cfg.Seed+2
	train, err := synth.GenerateQuestions(corpus, qcfg)
	if err != nil {
		return nil, err
	}
	qcfg.N, qcfg.Seed = cfg.TestQuestions, cfg.Seed+3
	test, err := synth.GenerateQuestions(corpus, qcfg)
	if err != nil {
		return nil, err
	}
	return &taobaoFixture{corpus: corpus, train: train, test: test, cfg: cfg}, nil
}

// solverKind names the optimization variants compared throughout.
type solverKind int

const (
	originalGraph solverKind = iota
	singleVote
	multiVote
	splitMerge
)

func (k solverKind) String() string {
	switch k {
	case originalGraph:
		return "Original Graph"
	case singleVote:
		return "Single-Vote"
	case multiVote:
		return "Multi-Vote"
	case splitMerge:
		return "Split-Merge"
	default:
		return "unknown"
	}
}

// buildOptimized builds a fresh system from the fixture's corpus,
// simulates the training votes, and applies the requested solver. It
// returns the system (already optimized) and the simulated vote records.
func (f *taobaoFixture) buildOptimized(kind solverKind) (*qa.System, []synth.VoteRecord, error) {
	sys, err := f.buildCorrupted()
	if err != nil {
		return nil, nil, err
	}
	recs, err := synth.SimulateVotes(sys, f.train, synth.VoterConfig{Seed: f.cfg.Seed + 4})
	if err != nil {
		return nil, nil, err
	}
	votes := synth.Votes(recs)
	switch kind {
	case originalGraph:
	case singleVote:
		_, err = sys.Engine.SolveSingle(votes)
	case multiVote:
		_, err = sys.Engine.SolveMulti(votes)
	case splitMerge:
		_, err = sys.Engine.SolveSplitMerge(votes)
	}
	if err != nil {
		return nil, nil, err
	}
	return sys, recs, nil
}

// buildCorrupted builds a fresh system and injects the configured weight
// corruption — identically (same seed) for every solver variant, so all
// variants start from the same erroneous graph.
// sgpMode maps the FullSolver switch onto the engine option.
func (c Config) sgpMode() sgp.Mode {
	if c.FullSolver {
		return sgp.Full
	}
	return sgp.Reduced
}

func (f *taobaoFixture) buildCorrupted() (*qa.System, error) {
	sys, err := qa.Build(f.corpus, core.Options{K: f.cfg.K, L: f.cfg.L, Mode: f.cfg.sgpMode()})
	if err != nil {
		return nil, err
	}
	synth.CorruptWeights(sys.Aug.Graph, f.cfg.Corruption, f.cfg.Seed+5)
	return sys, nil
}

// testRanks evaluates the held-out questions on a system: the 1-based
// rank of each question's ground-truth best document (0 = unrankable).
func (f *taobaoFixture) testRanks(sys *qa.System) ([]int, error) {
	ranks := make([]int, 0, len(f.test))
	for _, q := range f.test {
		qn, err := sys.AttachQuestion(q)
		if err != nil {
			// Questions whose entities are all unknown are unrankable.
			ranks = append(ranks, 0)
			continue
		}
		r, err := sys.RankOfDoc(qn, q.BestDoc)
		if err != nil {
			return nil, err
		}
		ranks = append(ranks, r)
	}
	return ranks, nil
}

// testAPs computes per-question average precision on a system using the
// graded relevance sets (BestDoc plus Question.Relevant), for the MAP
// columns of Fig. 5.
func (f *taobaoFixture) testAPs(sys *qa.System) ([]float64, error) {
	aps := make([]float64, 0, len(f.test))
	for _, q := range f.test {
		qn, err := sys.AttachQuestion(q)
		if err != nil {
			aps = append(aps, 0)
			continue
		}
		ranked, err := sys.Engine.RankAll(qn, sys.Answers())
		if err != nil {
			return nil, err
		}
		ids := make([]int64, len(ranked))
		for i, r := range ranked {
			ids[i] = int64(sys.DocOf(r.Node))
		}
		relevant := map[int64]bool{int64(q.BestDoc): true}
		for _, d := range q.Relevant {
			relevant[int64(d)] = true
		}
		aps = append(aps, metrics.AveragePrecision(ids, relevant))
	}
	return aps, nil
}

// voteOmegaRanks returns the before/after ranks (among all answers) of
// each vote's best answer on the given engine; before ranks must have been
// captured prior to optimization.
func voteOmegaRanks(e *core.Engine, votes []vote.Vote, answers []graph.NodeID) ([]int, error) {
	ranks := make([]int, len(votes))
	for i, v := range votes {
		r, err := e.RankOf(v.Query, v.Best, answers)
		if err != nil {
			return nil, err
		}
		ranks[i] = r
	}
	return ranks, nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.2f%%", 100*v)
}

// CSV renders the table as RFC-4180-ish CSV (comma-separated, quotes
// around cells containing commas or quotes), for plotting pipelines.
func (t Table) CSV() string {
	var b strings.Builder
	esc := func(cell string) string {
		if strings.ContainsAny(cell, ",\"\n") {
			return "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
		}
		return cell
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}
