package harness

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/ppr"
	"kgvote/internal/synth"
)

// PPRConfig sizes the incremental-scorer benchmark (DESIGN.md §16): the
// same tracked query set is served across a sequence of weight flushes by
// the exact enumerator (re-rank every query per epoch) and by the
// edge-based local-push tracker (one O(delta) repair per epoch), over at
// least two profile scales so the per-flush cost growth of each backend
// is measurable.
type PPRConfig struct {
	// Profiles are the graph scales, smallest first; default Twitter and
	// Twitter.Scaled(4).
	Profiles []synth.Profile
	Queries  int     // tracked seed vectors; default 16
	SeedSize int     // entities per seed vector; default 3
	Cands    int     // candidate answers per ranking; default 128
	K        int     // top-K; default 20
	L        int     // walk-length bound; default 4
	RMax     float64 // residual-drop threshold; default 1e-6
	Delta    int     // changed edges per flush; default 8
	Flushes  int     // flushes per profile; default 4
	Rounds   int     // timed repetitions (min kept); default 3
	Seed     int64   // default 1
	// MinSpeedup is the self-asserted floor on the largest profile's
	// per-flush enum/push cost ratio; 0 means the default 5, negative
	// disables the assertion (tests on tiny profiles).
	MinSpeedup float64
}

func (c PPRConfig) withDefaults() PPRConfig {
	if len(c.Profiles) == 0 {
		c.Profiles = []synth.Profile{synth.Twitter, synth.Twitter.Scaled(4)}
	}
	if c.Queries == 0 {
		c.Queries = 16
	}
	if c.SeedSize == 0 {
		c.SeedSize = 3
	}
	if c.Cands == 0 {
		c.Cands = 128
	}
	if c.K == 0 {
		c.K = 20
	}
	if c.L == 0 {
		c.L = 4
	}
	if c.RMax == 0 {
		c.RMax = 1e-6
	}
	if c.Delta == 0 {
		c.Delta = 8
	}
	if c.Flushes == 0 {
		c.Flushes = 4
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinSpeedup == 0 {
		c.MinSpeedup = 5
	}
	return c
}

// PPRProfileResult is one profile's measurements.
type PPRProfileResult struct {
	Profile string `json:"profile"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`

	// Cold-rank cost per query (min over rounds), microseconds.
	EnumColdMicros float64 `json:"enum_cold_us"`
	PushColdMicros float64 `json:"push_cold_us"`

	// Per-flush cost of keeping every tracked query serveable on the new
	// epoch: the enumerator re-ranks all queries, the push tracker runs
	// one delta repair. Microseconds, minimum over flushes.
	EnumFlushMicros float64 `json:"enum_flush_us"`
	PushFlushMicros float64 `json:"push_flush_us"`
	UpdateSpeedup   float64 `json:"update_speedup"`

	Pushes       int64   `json:"pushes"`
	ResidualMass float64 `json:"residual_mass"`

	// MaxDivergence is the worst |tracked − fresh solve| over every query
	// and candidate after the final flush; ErrorBudget is the certified
	// allowance (tracked bound + fresh bound). BoundHeld is the contract.
	MaxDivergence float64 `json:"max_divergence"`
	ErrorBudget   float64 `json:"error_budget"`
	BoundHeld     bool    `json:"bound_held"`
}

// PPRResult is the JSON-serializable outcome of PPRBench (the "ppr"
// entry of BENCH_serve.json runs).
type PPRResult struct {
	Queries int     `json:"queries"`
	Delta   int     `json:"delta_edges"`
	Flushes int     `json:"flushes"`
	L       int     `json:"l"`
	RMax    float64 `json:"rmax"`

	Profiles []PPRProfileResult `json:"profiles"`

	// EnumGrowth / PushGrowth are the last profile's per-flush cost over
	// the first's: how each backend's flush cost scales with |E|. The
	// self-asserted contract is that push stays near-flat while enum
	// tracks the graph size.
	EnumGrowth float64 `json:"enum_growth"`
	PushGrowth float64 `json:"push_growth"`

	Violations []string `json:"violations,omitempty"`
}

// Err reports the violated contract clauses, if any.
func (r PPRResult) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("ppr bench violations: %s", strings.Join(r.Violations, "; "))
}

// String renders a one-screen summary.
func (r PPRResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ppr bench: %d tracked queries, %d edges changed per flush, L=%d, rmax=%g\n",
		r.Queries, r.Delta, r.L, r.RMax)
	for _, p := range r.Profiles {
		fmt.Fprintf(&sb, "  %-12s %7d nodes %8d edges  cold %9.1f/%9.1f us  flush %10.1f/%8.1f us  %7.1fx  bound held: %v\n",
			p.Profile, p.Nodes, p.Edges, p.EnumColdMicros, p.PushColdMicros,
			p.EnumFlushMicros, p.PushFlushMicros, p.UpdateSpeedup, p.BoundHeld)
	}
	fmt.Fprintf(&sb, "  per-flush growth %s → %s: enum %.2fx, push %.2fx",
		r.Profiles[0].Profile, r.Profiles[len(r.Profiles)-1].Profile, r.EnumGrowth, r.PushGrowth)
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "\n  VIOLATION: %s", v)
	}
	return sb.String()
}

// pprQuery is one benchmark seed vector with its canonical tracker key.
type pprQuery struct {
	key   string
	ids   []graph.NodeID
	ws    []float64
	cands []graph.NodeID
}

// pprProfilePass measures one profile end to end.
func pprProfilePass(p synth.Profile, cfg PPRConfig, rng *rand.Rand) (PPRProfileResult, error) {
	res := PPRProfileResult{Profile: p.Name}
	g, err := p.Generate(cfg.Seed)
	if err != nil {
		return res, err
	}
	res.Nodes, res.Edges = g.NumNodes(), g.NumEdges()
	var epoch uint64 = 1
	csr := graph.CompileAt(g, epoch)

	queries := make([]pprQuery, cfg.Queries)
	for i := range queries {
		q := pprQuery{
			key:   fmt.Sprintf("q%d", i),
			ids:   make([]graph.NodeID, cfg.SeedSize),
			ws:    make([]float64, cfg.SeedSize),
			cands: make([]graph.NodeID, cfg.Cands),
		}
		var total float64
		for j := range q.ids {
			q.ids[j] = graph.NodeID(rng.Intn(res.Nodes))
			q.ws[j] = rng.Float64() + 0.01
			total += q.ws[j]
		}
		for j := range q.ws {
			q.ws[j] /= total
		}
		for j := range q.cands {
			q.cands[j] = graph.NodeID(rng.Intn(res.Nodes))
		}
		queries[i] = q
	}

	pathOpt := pathidx.Options{C: ppr.DefaultC, L: cfg.L}
	enumRank := func(c *graph.CSR) (time.Duration, error) {
		start := time.Now()
		sc, err := pathidx.NewCSRScorer(c, pathOpt)
		if err != nil {
			return 0, err
		}
		for _, q := range queries {
			if _, err := sc.RankSeeded(q.ids, q.ws, q.cands, cfg.K); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	// Cold ranks: enumerator (min over rounds, per query) ...
	var enumCold time.Duration
	for round := 0; round < cfg.Rounds; round++ {
		d, err := enumRank(csr)
		if err != nil {
			return res, err
		}
		if enumCold == 0 || d < enumCold {
			enumCold = d
		}
	}
	res.EnumColdMicros = enumCold.Seconds() * 1e6 / float64(cfg.Queries)

	// ... and push (one cold pass populates the tracker; extra rounds rank
	// fresh untracked states for a comparable cold figure).
	pushOpt := ppr.PushOptions{C: ppr.DefaultC, L: cfg.L, RMax: cfg.RMax}
	inc, err := ppr.NewIncremental(pushOpt, cfg.Queries)
	if err != nil {
		return res, err
	}
	inc.Update(csr, epoch, nil)
	var pushCold time.Duration
	for round := 0; round < cfg.Rounds; round++ {
		key := "" // untracked on warm-up rounds
		if round == cfg.Rounds-1 {
			key = "track" // last round adopts the states
		}
		start := time.Now()
		for _, q := range queries {
			k := key
			if k != "" {
				k = q.key
			}
			if _, _, err := inc.RankSeeded(k, csr, epoch, q.ids, q.ws, q.cands, cfg.K); err != nil {
				return res, err
			}
		}
		if d := time.Since(start); pushCold == 0 || d < pushCold {
			pushCold = d
		}
	}
	res.PushColdMicros = pushCold.Seconds() * 1e6 / float64(cfg.Queries)

	// Flush sequence: mutate Delta existing edges, republish, and time
	// what each backend must do to serve the tracked queries again.
	keys := g.EdgeKeys()
	var enumFlush, pushFlush time.Duration
	for flush := 0; flush < cfg.Flushes; flush++ {
		deltas := make([]ppr.EdgeDelta, 0, cfg.Delta)
		for i := 0; i < cfg.Delta; i++ {
			e := keys[rng.Intn(len(keys))]
			old := g.Weight(e.From, e.To)
			nw := rng.Float64() * 0.9
			g.MustSetEdge(e.From, e.To, nw)
			deltas = append(deltas, ppr.EdgeDelta{From: e.From, To: e.To, Old: old, New: nw})
		}
		epoch++
		csr = graph.CompileAt(g, epoch)

		start := time.Now()
		inc.Update(csr, epoch, deltas)
		if d := time.Since(start); pushFlush == 0 || d < pushFlush {
			pushFlush = d
		}
		d, err := enumRank(csr)
		if err != nil {
			return res, err
		}
		if enumFlush == 0 || d < enumFlush {
			enumFlush = d
		}
	}
	res.EnumFlushMicros = enumFlush.Seconds() * 1e6
	res.PushFlushMicros = pushFlush.Seconds() * 1e6
	if res.PushFlushMicros > 0 {
		res.UpdateSpeedup = res.EnumFlushMicros / res.PushFlushMicros
	}

	// Differential check after the final flush: every tracked estimate
	// must sit within the certified budget of a from-scratch solve.
	res.BoundHeld = true
	for _, q := range queries {
		got, trackedBound, err := inc.RankSeeded(q.key, csr, epoch, q.ids, q.ws, q.cands, 0)
		if err != nil {
			return res, err
		}
		fresh, err := ppr.LocalPushSeeded(csr, q.ids, q.ws, pushOpt)
		if err != nil {
			return res, err
		}
		budget := trackedBound + fresh.Bound() + 1e-12
		if budget > res.ErrorBudget {
			res.ErrorBudget = budget
		}
		var maxD float64
		for _, r := range got {
			if d := math.Abs(r.Score - fresh.Score(r.Node)); d > maxD {
				maxD = d
			}
		}
		if maxD > res.MaxDivergence {
			res.MaxDivergence = maxD
		}
		if maxD > budget {
			res.BoundHeld = false
		}
	}
	st := inc.Stats()
	res.Pushes = st.Pushes
	res.ResidualMass = st.ResidualMass
	return res, nil
}

// PPRBench measures cold-rank and per-flush update cost of the exact
// enumerator vs the incremental push tracker across the configured
// profile scales, self-asserting the bound contract and the scaling
// claim: push repair cost stays roughly flat as |E| grows while the
// enumerator's per-epoch re-rank cost does not.
func PPRBench(cfg PPRConfig) (PPRResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := PPRResult{
		Queries: cfg.Queries, Delta: cfg.Delta, Flushes: cfg.Flushes,
		L: cfg.L, RMax: cfg.RMax,
	}
	for _, p := range cfg.Profiles {
		pr, err := pprProfilePass(p, cfg, rng)
		if err != nil {
			return res, fmt.Errorf("profile %s: %w", p.Name, err)
		}
		res.Profiles = append(res.Profiles, pr)
	}
	first, last := res.Profiles[0], res.Profiles[len(res.Profiles)-1]
	if first.EnumFlushMicros > 0 {
		res.EnumGrowth = last.EnumFlushMicros / first.EnumFlushMicros
	}
	if first.PushFlushMicros > 0 {
		res.PushGrowth = last.PushFlushMicros / first.PushFlushMicros
	}
	for _, p := range res.Profiles {
		if p.Pushes == 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("profile %s recorded zero pushes", p.Profile))
		}
		if !p.BoundHeld {
			res.Violations = append(res.Violations,
				fmt.Sprintf("profile %s: divergence %g exceeded certified budget %g",
					p.Profile, p.MaxDivergence, p.ErrorBudget))
		}
	}
	if cfg.MinSpeedup > 0 && last.UpdateSpeedup < cfg.MinSpeedup {
		res.Violations = append(res.Violations,
			fmt.Sprintf("largest profile per-flush speedup %.2fx below floor %.2fx",
				last.UpdateSpeedup, cfg.MinSpeedup))
	}
	// The scaling contract: push growth must stay well under enum growth
	// (within noise on small profiles). Only meaningful with ≥2 profiles.
	if len(res.Profiles) >= 2 && cfg.MinSpeedup > 0 {
		ceiling := math.Max(2.5, res.EnumGrowth/2)
		if res.PushGrowth > ceiling {
			res.Violations = append(res.Violations,
				fmt.Sprintf("push per-flush cost grew %.2fx across profiles (ceiling %.2fx, enum grew %.2fx)",
					res.PushGrowth, ceiling, res.EnumGrowth))
		}
	}
	return res, nil
}
