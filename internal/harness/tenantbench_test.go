package harness

import "testing"

// TestTenantBenchSmoke runs the isolation bench at a tiny scale and
// requires a clean verdict: quota-exact shedding on the noisy tenant,
// bounded quiet-tenant interference, zero weight leakage.
func TestTenantBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("floods a multi-tenant registry")
	}
	res, err := TenantBench(TenantConfig{
		Docs: 24, Tenants: 3, Capacity: 4, Workers: 4, Flood: 40, Asks: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("flood never shed: quota too large for the flood")
	}
}
