package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/api"
	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/server"
	"kgvote/internal/shard"
	"kgvote/internal/synth"
)

// ClusterConfig sizes the sharded-serving benchmark (DESIGN.md §14): an
// in-process cluster of shard writers with peer replication, snapshot
// read-replicas following each writer, and a fan-out/merge router in
// front, measured against a single-process oracle.
type ClusterConfig struct {
	Docs     int   // corpus documents; default 96
	Shards   int   // shard writers; default 3
	Replicas int   // read replicas per shard; default 1
	Queries  int   // asks per timed pass, per endpoint worker set; default 200
	Votes    int   // warm-up votes driven through the router; default 6
	Workers  int   // ask clients per endpoint; default 4
	Seed     int64 // default 1
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Docs == 0 {
		c.Docs = 96
	}
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Replicas < 0 {
		c.Replicas = 0
	}
	if c.Queries == 0 {
		c.Queries = 200
	}
	if c.Votes == 0 {
		c.Votes = 6
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ClusterResult is the JSON-serializable outcome of ClusterBench.
//
// The three throughput figures share one client model — a fixed worker
// count per serving endpoint — so they compare capacity shapes, not
// client counts: SingleQPS is one process, DirectQPS spreads the same
// per-endpoint load over every shard writer, and ReplicaQPS adds each
// shard's read replicas to the endpoint set. RouterQPS is measured
// through the fan-out/merge router (every ask touches all shards), so it
// prices the router's merge overhead rather than horizontal capacity.
type ClusterResult struct {
	Docs     int `json:"docs"`
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`
	Workers  int `json:"workers_per_endpoint"`

	SingleQPS  float64 `json:"single_qps"`
	RouterQPS  float64 `json:"router_qps"`
	DirectQPS  float64 `json:"direct_qps"`
	ReplicaQPS float64 `json:"replica_qps"`
	// ReplicaSpeedup is ReplicaQPS / DirectQPS: how much serving capacity
	// the read replicas add on top of the writers alone.
	ReplicaSpeedup float64 `json:"replica_speedup"`

	// MergeDeterministic reports that the router's merged rankings were
	// bit-identical to the single-process oracle, before and after the
	// warm-up votes.
	MergeDeterministic bool `json:"merge_deterministic"`
	// DegradedPartial reports that with one shard down the router kept
	// answering with Partial set instead of failing.
	DegradedPartial bool `json:"degraded_partial"`

	Violations []string `json:"violations,omitempty"`
}

// Err returns a non-nil error when the run violated a correctness clause.
func (r ClusterResult) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("cluster bench violations: %s", strings.Join(r.Violations, "; "))
}

func (r ClusterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster bench: %d docs, %d shards, %d replicas/shard, %d workers/endpoint\n",
		r.Docs, r.Shards, r.Replicas, r.Workers)
	fmt.Fprintf(&b, "  ask throughput   single %.0f qps | router %.0f qps | writers-direct %.0f qps | +replicas %.0f qps (%.2fx)\n",
		r.SingleQPS, r.RouterQPS, r.DirectQPS, r.ReplicaQPS, r.ReplicaSpeedup)
	fmt.Fprintf(&b, "  merge deterministic: %v, degraded partial: %v", r.MergeDeterministic, r.DegradedPartial)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  VIOLATION: %s", v)
	}
	return b.String()
}

// benchCluster is the in-process cluster: shard writers, their pushers,
// per-shard replicas with followers, and the router.
type benchCluster struct {
	smap     *shard.Map
	writers  []*server.Server
	whttp    []*httptest.Server
	pushers  []*shard.Pusher
	replicas [][]*httptest.Server // per shard
	follow   []*shard.Follower
	router   *shard.Router
	rhttp    *httptest.Server
}

func (bc *benchCluster) close() {
	for _, f := range bc.follow {
		f.Close()
	}
	if bc.rhttp != nil {
		bc.rhttp.Close()
	}
	if bc.router != nil {
		bc.router.Close()
	}
	for _, p := range bc.pushers {
		p.Close()
	}
	for _, rs := range bc.replicas {
		for _, r := range rs {
			r.Close()
		}
	}
	for _, h := range bc.whttp {
		h.Close()
	}
}

func newBenchCluster(corpus *qa.Corpus, shards, replicas int) (*benchCluster, error) {
	smap, err := shard.NewMap(shards, 1)
	if err != nil {
		return nil, err
	}
	bc := &benchCluster{smap: smap}
	opt := core.Options{K: 10, L: 4}
	cfgs := make([]*server.ShardConfig, shards)
	for i := 0; i < shards; i++ {
		sys, err := qa.Build(corpus, opt)
		if err != nil {
			bc.close()
			return nil, err
		}
		cfgs[i] = &server.ShardConfig{Map: smap, Index: i}
		srv, err := server.NewWithOptions(sys, server.Options{
			BatchSize: 1,
			Solver:    core.StreamSingle,
			Shard:     cfgs[i],
		})
		if err != nil {
			bc.close()
			return nil, err
		}
		bc.writers = append(bc.writers, srv)
		bc.whttp = append(bc.whttp, httptest.NewServer(srv.Handler()))
	}
	for i := 0; i < shards; i++ {
		var peers []string
		for j := 0; j < shards; j++ {
			if j != i {
				peers = append(peers, bc.whttp[j].URL)
			}
		}
		srv := bc.writers[i]
		pusher, err := shard.NewPusher(shard.PusherOptions{
			Source:       i,
			Peers:        peers,
			Export:       srv.ExportReplicated,
			RetryBackoff: 20 * time.Millisecond,
		})
		if err != nil {
			bc.close()
			return nil, err
		}
		bc.pushers = append(bc.pushers, pusher)
		cfgs[i].OnFlush = pusher.Publish
	}
	eps := make([]shard.ShardEndpoints, shards)
	bc.replicas = make([][]*httptest.Server, shards)
	for i := 0; i < shards; i++ {
		eps[i] = shard.ShardEndpoints{Writer: bc.whttp[i].URL}
		for r := 0; r < replicas; r++ {
			sys, err := qa.Build(corpus, opt)
			if err != nil {
				bc.close()
				return nil, err
			}
			rep, err := server.NewWithOptions(sys, server.Options{
				BatchSize: 1,
				Solver:    core.StreamSingle,
				ReadOnly:  true,
				Shard:     &server.ShardConfig{Map: smap, Index: i},
			})
			if err != nil {
				bc.close()
				return nil, err
			}
			rh := httptest.NewServer(rep.Handler())
			bc.replicas[i] = append(bc.replicas[i], rh)
			fl, err := shard.NewFollower(shard.FollowerOptions{
				Writer: bc.whttp[i].URL,
				Every:  25 * time.Millisecond,
				Apply:  rep.ImportSnapshot,
				OnSync: rep.ReportReplica,
			})
			if err != nil {
				bc.close()
				return nil, err
			}
			bc.follow = append(bc.follow, fl)
			eps[i].Replicas = append(eps[i].Replicas, rh.URL)
		}
	}
	rt, err := shard.NewRouter(shard.RouterOptions{
		Map:        smap,
		Shards:     eps,
		TopK:       opt.K,
		Timeout:    10 * time.Second,
		HedgeAfter: 50 * time.Millisecond,
	})
	if err != nil {
		bc.close()
		return nil, err
	}
	bc.router = rt
	bc.rhttp = httptest.NewServer(rt.Handler())
	return bc, nil
}

func clusterPost(url string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func clusterStats(base string) (api.StatsBody, error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return api.StatsBody{}, err
	}
	defer resp.Body.Close()
	var st api.StatsBody
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func resultsEqual(a, b []api.AskResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// askPass drives Queries asks per worker set: each base URL gets its own
// `workers` goroutines cycling through the questions. Returns total
// asks/second across all endpoints.
func askPass(bases []string, questions []qa.Question, workers, queries int) (float64, error) {
	perWorker := queries / workers
	if perWorker < 1 {
		perWorker = 1
	}
	var (
		wg      sync.WaitGroup
		firstMu sync.Mutex
		first   error
		total   atomic.Int64
	)
	start := time.Now()
	for _, base := range bases {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(base string, off int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					q := questions[(off+i)%len(questions)]
					var resp api.AskResponse
					st, err := clusterPost(base+"/v1/ask", api.AskRequest{Entities: q.Entities}, &resp)
					if err == nil && st != http.StatusOK {
						err = fmt.Errorf("ask %s: http %d", base, st)
					}
					if err != nil {
						firstMu.Lock()
						if first == nil {
							first = err
						}
						firstMu.Unlock()
						return
					}
					total.Add(1)
				}
			}(base, w*perWorker)
		}
	}
	wg.Wait()
	if first != nil {
		return 0, first
	}
	return float64(total.Load()) / time.Since(start).Seconds(), nil
}

// ClusterBench measures the sharded serving path end to end: merged-
// ranking determinism against a single-process oracle, ask throughput
// single vs. routed vs. replica-fanned, and partial degradation with a
// shard down. Correctness failures land in Violations (and Err()), not
// just the log.
func ClusterBench(cfg ClusterConfig) (ClusterResult, error) {
	cfg = cfg.withDefaults()
	res := ClusterResult{Docs: cfg.Docs, Shards: cfg.Shards, Replicas: cfg.Replicas, Workers: cfg.Workers}

	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: cfg.Docs, Seed: cfg.Seed})
	if err != nil {
		return res, err
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: 32, Seed: cfg.Seed + 1})
	if err != nil {
		return res, err
	}

	osys, err := qa.Build(corpus, core.Options{K: 10, L: 4})
	if err != nil {
		return res, err
	}
	oracle, err := server.NewWithOptions(osys, server.Options{BatchSize: 1, Solver: core.StreamSingle})
	if err != nil {
		return res, err
	}
	oh := httptest.NewServer(oracle.Handler())
	defer oh.Close()

	bc, err := newBenchCluster(corpus, cfg.Shards, cfg.Replicas)
	if err != nil {
		return res, err
	}
	defer bc.close()

	// Warm-up votes through the router (mirrored to the oracle), so the
	// measured graphs are post-feedback, then wait for peer replication
	// and replica snapshots to converge.
	res.MergeDeterministic = true
	flushSeq := make(map[int]uint64)
	for v := 0; v < cfg.Votes; v++ {
		q := questions[v%len(questions)]
		var oresp, rresp api.AskResponse
		if st, err := clusterPost(oh.URL+"/v1/ask", api.AskRequest{Entities: q.Entities}, &oresp); err != nil || st != http.StatusOK {
			return res, fmt.Errorf("oracle ask: %v (http %d)", err, st)
		}
		if st, err := clusterPost(bc.rhttp.URL+"/v1/ask", api.AskRequest{Entities: q.Entities}, &rresp); err != nil || st != http.StatusOK {
			return res, fmt.Errorf("router ask: %v (http %d)", err, st)
		}
		if !resultsEqual(oresp.Results, rresp.Results) {
			res.MergeDeterministic = false
		}
		if len(oresp.Results) < 2 {
			continue
		}
		ranked := make([]int, len(oresp.Results))
		for i, r := range oresp.Results {
			ranked[i] = r.Doc
		}
		best := ranked[1]
		var ovr, rvr api.VoteResponse
		ov := api.VoteRequest{Query: oresp.Query, Ranked: ranked, BestDoc: best}
		if st, err := clusterPost(oh.URL+"/v1/vote", ov, &ovr); err != nil || st != http.StatusOK {
			return res, fmt.Errorf("oracle vote: %v (http %d)", err, st)
		}
		rv := api.VoteRequest{Query: rresp.Query, Ranked: ranked, BestDoc: best}
		if st, err := clusterPost(bc.rhttp.URL+"/v1/vote", rv, &rvr); err != nil || st != http.StatusOK {
			return res, fmt.Errorf("router vote: %v (http %d)", err, st)
		}
		owner := bc.smap.Owner(best)
		flushSeq[owner]++
		if err := waitClusterReplicated(bc, owner, flushSeq[owner]); err != nil {
			return res, err
		}
	}
	if err := waitReplicaSync(bc); err != nil {
		return res, err
	}
	// Post-vote determinism sweep across every question.
	for _, q := range questions {
		var oresp, rresp api.AskResponse
		clusterPost(oh.URL+"/v1/ask", api.AskRequest{Entities: q.Entities}, &oresp)
		clusterPost(bc.rhttp.URL+"/v1/ask", api.AskRequest{Entities: q.Entities}, &rresp)
		if !resultsEqual(oresp.Results, rresp.Results) {
			res.MergeDeterministic = false
			break
		}
	}
	if !res.MergeDeterministic {
		res.Violations = append(res.Violations, "router merged rankings diverged from the single-process oracle")
	}

	// Timed passes. Same per-endpoint client model throughout.
	if res.SingleQPS, err = askPass([]string{oh.URL}, questions, cfg.Workers, cfg.Queries); err != nil {
		return res, err
	}
	if res.RouterQPS, err = askPass([]string{bc.rhttp.URL}, questions, cfg.Workers*cfg.Shards, cfg.Queries); err != nil {
		return res, err
	}
	writerBases := make([]string, 0, cfg.Shards)
	for _, h := range bc.whttp {
		writerBases = append(writerBases, h.URL)
	}
	if res.DirectQPS, err = askPass(writerBases, questions, cfg.Workers, cfg.Queries); err != nil {
		return res, err
	}
	allBases := append([]string(nil), writerBases...)
	for _, rs := range bc.replicas {
		for _, r := range rs {
			allBases = append(allBases, r.URL)
		}
	}
	if res.ReplicaQPS, err = askPass(allBases, questions, cfg.Workers, cfg.Queries); err != nil {
		return res, err
	}
	if res.DirectQPS > 0 {
		res.ReplicaSpeedup = res.ReplicaQPS / res.DirectQPS
	}

	// Degradation: close one writer (its replicas, if any, keep covering
	// the shard; with none the router must answer partial).
	if cfg.Shards > 1 {
		bc.whttp[1].Close()
		deadline := time.Now().Add(10 * time.Second)
		for {
			var dresp api.AskResponse
			st, err := clusterPost(bc.rhttp.URL+"/v1/ask", api.AskRequest{Entities: questions[0].Entities}, &dresp)
			full := cfg.Replicas > 0 // replicas still cover the closed writer's shard
			if err == nil && st == http.StatusOK && len(dresp.Results) > 0 &&
				(full && !dresp.Partial || !full && dresp.Partial && dresp.ShardsAnswered == cfg.Shards-1) {
				res.DegradedPartial = true
				break
			}
			if time.Now().After(deadline) {
				res.Violations = append(res.Violations,
					fmt.Sprintf("degraded ask never settled: http %d err %v partial %v %d/%d",
						st, err, dresp.Partial, dresp.ShardsAnswered, dresp.ShardsTotal))
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
	} else {
		res.DegradedPartial = true
	}
	return res, res.Err()
}

// waitClusterReplicated blocks until every non-owner writer has applied
// the owner's replication stream through wantSeq.
func waitClusterReplicated(bc *benchCluster, owner int, wantSeq uint64) error {
	deadline := time.Now().Add(15 * time.Second)
	for i := range bc.writers {
		if i == owner {
			continue
		}
		for {
			st, err := clusterStats(bc.whttp[i].URL)
			if err == nil && st.Shard != nil && st.Shard.RemoteSeqs[uint32(owner)] >= wantSeq {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("shard %d never applied shard %d's push seq %d", i, owner, wantSeq)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nil
}

// waitReplicaSync blocks until every replica has caught up to its
// writer's published epoch.
func waitReplicaSync(bc *benchCluster) error {
	deadline := time.Now().Add(15 * time.Second)
	for i, rs := range bc.replicas {
		if len(rs) == 0 {
			continue
		}
		wst, err := clusterStats(bc.whttp[i].URL)
		if err != nil {
			return err
		}
		for _, r := range rs {
			for {
				st, err := clusterStats(r.URL)
				if err == nil && st.Replica != nil && st.Replica.Epoch >= wst.Epoch {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("replica of shard %d never reached epoch %d", i, wst.Epoch)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	return nil
}
