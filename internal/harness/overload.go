package harness

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/api"
	"kgvote/api/client"
	"kgvote/internal/admit"
	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/server"
	"kgvote/internal/synth"
)

// OverloadConfig sizes the overload benchmark (DESIGN.md §12): a server
// with a small admission queue is flooded far past capacity by
// concurrent writers while reader goroutines keep asking, and the run
// verifies the overload-safety contract instead of just timing it.
type OverloadConfig struct {
	Docs     int   // corpus documents; default 60
	Capacity int   // admission queue bound; default 8
	Workers  int   // concurrent flooding clients; default 16
	Flood    int   // total vote attempts across all workers; default 25×Capacity
	Asks     int   // /v1/ask probes issued during the flood; default 200
	Seed     int64 // default 1
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Docs == 0 {
		c.Docs = 60
	}
	if c.Capacity == 0 {
		c.Capacity = 8
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Flood == 0 {
		c.Flood = 25 * c.Capacity
	}
	if c.Asks == 0 {
		c.Asks = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// OverloadResult is the JSON-serializable outcome of OverloadBench
// (BENCH_overload.json). Violations lists every broken contract clause;
// an empty list is a passing run.
type OverloadResult struct {
	Docs     int `json:"docs"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
	Flood    int `json:"flood"`

	Admitted          int64 `json:"admitted"`
	Shed              int64 `json:"shed"`
	ShedNoRetryAfter  int64 `json:"shed_without_retry_after"`
	UnexpectedStatus  int64 `json:"unexpected_status"`
	QueueDepthAfter   int   `json:"queue_depth_after"`
	ControllerShed    int64 `json:"controller_shed"`
	ControllerClients int   `json:"controller_clients"`

	Asks         int     `json:"asks"`
	AskP50Micros float64 `json:"ask_p50_us"`
	AskP99Micros float64 `json:"ask_p99_us"`

	// HeapGrowthBytes is live-heap growth across the flood after a final
	// GC: a bounded queue must not accumulate shed work.
	HeapGrowthBytes int64 `json:"heap_growth_bytes"`

	Violations []string `json:"violations,omitempty"`
}

// String renders a one-screen summary.
func (r OverloadResult) String() string {
	verdict := "PASS"
	if len(r.Violations) > 0 {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	s := fmt.Sprintf(
		"overload bench: %d docs, capacity %d, %d workers × flood %d — %s\n"+
			"  admitted %d (exactly capacity: %v)   shed %d (429 + Retry-After)   unexpected %d\n"+
			"  asks during flood: %d   p50 %.1fµs   p99 %.1fµs\n"+
			"  live-heap growth %.1f MiB",
		r.Docs, r.Capacity, r.Workers, r.Flood, verdict,
		r.Admitted, r.Admitted == int64(r.Capacity), r.Shed, r.UnexpectedStatus,
		r.Asks, r.AskP50Micros, r.AskP99Micros,
		float64(r.HeapGrowthBytes)/(1<<20))
	for _, v := range r.Violations {
		s += "\n  VIOLATION: " + v
	}
	return s
}

// Err returns a non-nil error when the run broke the overload contract.
func (r OverloadResult) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("overload contract: %d violations: %v", len(r.Violations), r.Violations)
}

// OverloadBench floods a capacity-K server with far more than K votes
// from concurrent clients (batch size > capacity, so no flush frees
// slots mid-flood) and checks the contract end to end through the public
// api/client:
//
//   - exactly K votes are admitted (200); every other attempt is shed
//     with 429 and a Retry-After hint — no request hangs, errors
//     surprisingly, or vanishes;
//   - /v1/ask keeps serving from the snapshot throughout the flood;
//   - the live heap does not grow with the shed load (bounded queue).
func OverloadBench(cfg OverloadConfig) (OverloadResult, error) {
	cfg = cfg.withDefaults()
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: cfg.Docs, Seed: cfg.Seed})
	if err != nil {
		return OverloadResult{}, err
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: cfg.Workers, Seed: cfg.Seed + 1})
	if err != nil {
		return OverloadResult{}, err
	}
	sys, err := qa.Build(corpus, core.Options{K: 10, L: 4})
	if err != nil {
		return OverloadResult{}, err
	}
	srv, err := server.NewWithOptions(sys, server.Options{
		BatchSize: cfg.Flood + cfg.Capacity, // never flushes: admission owns the bound
		Solver:    core.StreamMulti,
		Admission: admit.Config{Capacity: cfg.Capacity},
	})
	if err != nil {
		return OverloadResult{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res := OverloadResult{Docs: cfg.Docs, Capacity: cfg.Capacity, Workers: cfg.Workers, Flood: cfg.Flood}
	ctx := context.Background()

	// Each worker asks once up front (outside the measured flood) so its
	// vote bodies carry a valid handle and ranked list.
	type prepared struct{ req api.VoteRequest }
	prep := make([]prepared, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		cl := client.New(ts.URL)
		q := questions[w%len(questions)]
		ask, err := cl.Ask(ctx, api.AskRequest{Entities: q.Entities})
		if err != nil {
			return res, fmt.Errorf("prefly ask %d: %w", w, err)
		}
		if len(ask.Results) == 0 {
			return res, fmt.Errorf("prefly ask %d returned no results", w)
		}
		ranked := make([]int, len(ask.Results))
		for i, r := range ask.Results {
			ranked[i] = r.Doc
		}
		prep[w] = prepared{req: api.VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: ranked[0]}}
	}

	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	var (
		admitted, shed, shedNoRA, unexpected atomic.Int64
		wg                                   sync.WaitGroup
	)
	per := cfg.Flood / cfg.Workers
	res.Flood = per * cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.New(ts.URL)
			for i := 0; i < per; i++ {
				_, err := cl.Vote(ctx, prep[w].req)
				if err == nil {
					admitted.Add(1)
					continue
				}
				var apiErr *api.Error
				if errors.As(err, &apiErr) && apiErr.HTTPStatus == 429 {
					shed.Add(1)
					if apiErr.RetryAfter() <= 0 {
						shedNoRA.Add(1)
					}
					continue
				}
				unexpected.Add(1)
			}
		}(w)
	}

	// Reader probes run against the same server while the flood is on;
	// their latency shows the snapshot path staying responsive.
	askLat := make([]time.Duration, cfg.Asks)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := client.New(ts.URL)
		for i := 0; i < cfg.Asks; i++ {
			q := questions[i%len(questions)]
			t0 := time.Now()
			if _, err := cl.Ask(ctx, api.AskRequest{Entities: q.Entities}); err != nil {
				unexpected.Add(1)
			}
			askLat[i] = time.Since(t0)
		}
	}()
	wg.Wait()

	runtime.GC()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	res.Admitted = admitted.Load()
	res.Shed = shed.Load()
	res.ShedNoRetryAfter = shedNoRA.Load()
	res.UnexpectedStatus = unexpected.Load()
	res.Asks = cfg.Asks
	res.AskP50Micros = micros(percentile(askLat, 0.50))
	res.AskP99Micros = micros(percentile(askLat, 0.99))
	res.HeapGrowthBytes = int64(msAfter.HeapAlloc) - int64(msBefore.HeapAlloc)

	st, err := client.New(ts.URL).Stats(ctx)
	if err != nil {
		return res, fmt.Errorf("stats: %w", err)
	}
	res.QueueDepthAfter = st.VotesPending
	if st.Admission != nil {
		res.ControllerShed = st.Admission.Shed
		res.ControllerClients = st.Admission.Clients
	}

	violation := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if res.Admitted != int64(cfg.Capacity) {
		violation("admitted = %d, want exactly capacity %d", res.Admitted, cfg.Capacity)
	}
	if want := int64(res.Flood) - res.Admitted; res.Shed != want {
		violation("shed = %d, want %d (flood %d − admitted %d)", res.Shed, want, res.Flood, res.Admitted)
	}
	if res.ShedNoRetryAfter != 0 {
		violation("%d shed responses lacked a Retry-After hint", res.ShedNoRetryAfter)
	}
	if res.UnexpectedStatus != 0 {
		violation("%d requests failed with a status other than 200/429", res.UnexpectedStatus)
	}
	if res.QueueDepthAfter != cfg.Capacity {
		violation("queue depth after flood = %d, want %d", res.QueueDepthAfter, cfg.Capacity)
	}
	// The shed load must not accumulate: allow a generous fixed slack for
	// the admitted batch, HTTP buffers, and allocator noise, but nothing
	// proportional to the flood.
	const heapSlack = 64 << 20
	if res.HeapGrowthBytes > heapSlack {
		violation("live heap grew %d bytes during the flood (bound %d)", res.HeapGrowthBytes, int64(heapSlack))
	}
	return res, nil
}
