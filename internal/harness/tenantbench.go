package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/api"
	"kgvote/api/client"
	"kgvote/internal/admit"
	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/server"
	"kgvote/internal/synth"
	"kgvote/internal/tenant"
)

// TenantConfig sizes the multi-tenant isolation benchmark (DESIGN.md
// §17): a registry hosting several tenants over identical corpora has
// one tenant's vote path flooded far past its admission quota while
// reader probes keep asking the quiet tenants, and the run verifies the
// isolation contract — bounded sheds on the noisy tenant, bounded
// latency interference and zero weight leakage on its neighbors.
type TenantConfig struct {
	Docs     int   // corpus documents per tenant; default 60
	Tenants  int   // hosted tenants beside default (first one is flooded); default 4
	Capacity int   // per-tenant admission queue bound; default 8
	Workers  int   // concurrent flooding clients; default 8
	Flood    int   // total vote attempts against the noisy tenant; default 25×Capacity
	Asks     int   // quiet-tenant ask probes per phase; default 200
	Seed     int64 // default 1
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.Docs == 0 {
		c.Docs = 60
	}
	if c.Tenants < 2 {
		c.Tenants = 4
	}
	if c.Capacity == 0 {
		c.Capacity = 8
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Flood == 0 {
		c.Flood = 25 * c.Capacity
	}
	if c.Asks == 0 {
		c.Asks = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TenantResult is the JSON-serializable outcome of TenantBench
// (recorded under "tenants" in BENCH_serve.json). Violations lists
// every broken isolation clause; an empty list is a passing run.
type TenantResult struct {
	Docs     int `json:"docs"`
	Tenants  int `json:"tenants"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
	Flood    int `json:"flood"`

	// Noisy-tenant flood outcome: exactly Capacity admitted, the rest
	// shed as tenant_quota_exceeded with a Retry-After hint.
	Admitted         int64 `json:"admitted"`
	Shed             int64 `json:"shed"`
	ShedWrongCode    int64 `json:"shed_wrong_code"`
	ShedNoRetryAfter int64 `json:"shed_without_retry_after"`
	Unexpected       int64 `json:"unexpected_status"`

	// Quiet-tenant ask latency, unflooded baseline vs during the flood.
	Asks              int     `json:"asks_per_phase"`
	BaseP50Micros     float64 `json:"quiet_ask_p50_us_baseline"`
	BaseP95Micros     float64 `json:"quiet_ask_p95_us_baseline"`
	FloodP50Micros    float64 `json:"quiet_ask_p50_us_flooded"`
	FloodP95Micros    float64 `json:"quiet_ask_p95_us_flooded"`
	InterferenceRatio float64 `json:"interference_p95_ratio"`

	// LeakedTenants lists quiet tenants whose rankings were not bitwise
	// identical before and after the flood (must stay empty).
	LeakedTenants []string `json:"leaked_tenants,omitempty"`

	Violations []string `json:"violations,omitempty"`
}

// String renders a one-screen summary.
func (r TenantResult) String() string {
	verdict := "PASS"
	if len(r.Violations) > 0 {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	s := fmt.Sprintf(
		"tenant isolation bench: %d tenants × %d docs, quota %d, %d workers × flood %d — %s\n"+
			"  noisy tenant: admitted %d (exactly quota: %v)   shed %d (tenant_quota_exceeded + Retry-After)   unexpected %d\n"+
			"  quiet asks/phase %d: baseline p50 %.1fµs p95 %.1fµs   flooded p50 %.1fµs p95 %.1fµs   p95 ratio %.2fx\n"+
			"  weight leakage: %d tenants",
		r.Tenants, r.Docs, r.Capacity, r.Workers, r.Flood, verdict,
		r.Admitted, r.Admitted == int64(r.Capacity), r.Shed, r.Unexpected,
		r.Asks, r.BaseP50Micros, r.BaseP95Micros, r.FloodP50Micros, r.FloodP95Micros, r.InterferenceRatio,
		len(r.LeakedTenants))
	for _, v := range r.Violations {
		s += "\n  VIOLATION: " + v
	}
	return s
}

// Err returns a non-nil error when the run broke the isolation contract.
func (r TenantResult) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("tenant isolation contract: %d violations: %v", len(r.Violations), r.Violations)
}

// interferenceSlack absorbs scheduler noise in the p95 comparison: the
// 2× ratio bound only fires when the flooded p95 also exceeds the
// baseline by this much, so a 40µs→90µs wiggle on an idle laptop does
// not fail a run that the contract is actually about.
const interferenceSlack = 2 * time.Millisecond

// TenantBench boots a tenant registry where every tenant serves an
// identical corpus, floods the first hosted tenant's vote path far past
// its admission quota from concurrent clients, and checks the
// multi-tenant isolation contract end to end through the public
// api/client:
//
//   - the noisy tenant admits exactly its quota and sheds everything
//     else as 429 tenant_quota_exceeded with a Retry-After hint (typed
//     api.TenantQuotaError through errors.As);
//   - co-resident tenants keep answering /v1/t/{id}/ask with p95 within
//     2× of their unflooded baseline;
//   - no flooded vote leaks into a neighbor: every quiet tenant's full
//     ranking stays bitwise identical across the flood.
func TenantBench(cfg TenantConfig) (TenantResult, error) {
	cfg = cfg.withDefaults()
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: cfg.Docs, Seed: cfg.Seed})
	if err != nil {
		return TenantResult{}, err
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: cfg.Workers, Seed: cfg.Seed + 1})
	if err != nil {
		return TenantResult{}, err
	}

	// Every tenant gets its own engine built from the same corpus:
	// identical initial rankings make cross-tenant leakage a bitwise
	// comparison rather than a statistical one.
	factory := func(id, dir string) (*server.Server, func() error, error) {
		sys, err := qa.Build(corpus, core.Options{K: 10, L: 4})
		if err != nil {
			return nil, nil, err
		}
		srv, err := server.NewWithOptions(sys, server.Options{
			BatchSize: cfg.Flood + cfg.Capacity, // never flushes: admission owns the bound
			Solver:    core.StreamMulti,
			Admission: admit.Config{Capacity: cfg.Capacity},
			Tenant:    id,
		})
		if err != nil {
			return nil, nil, err
		}
		return srv, nil, nil
	}
	ids := make([]string, cfg.Tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%d", i)
	}
	reg := tenant.New(tenant.Options{Factory: factory})
	if err := reg.Open(ids); err != nil {
		return TenantResult{}, err
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	noisy, quiet := ids[0], ids[1:]
	res := TenantResult{Docs: cfg.Docs, Tenants: cfg.Tenants, Capacity: cfg.Capacity, Workers: cfg.Workers, Asks: cfg.Asks}
	ctx := context.Background()

	// Each flood worker asks the noisy tenant once up front so its vote
	// bodies carry a valid handle and ranked list.
	votes := make([]api.VoteRequest, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		cl := client.New(ts.URL).Tenant(noisy)
		q := questions[w%len(questions)]
		ask, err := cl.Ask(ctx, api.AskRequest{Entities: q.Entities})
		if err != nil {
			return res, fmt.Errorf("prefly ask %d: %w", w, err)
		}
		if len(ask.Results) == 0 {
			return res, fmt.Errorf("prefly ask %d returned no results", w)
		}
		ranked := make([]int, len(ask.Results))
		for i, r := range ask.Results {
			ranked[i] = r.Doc
		}
		votes[w] = api.VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: ranked[0]}
	}

	// askQuiet round-robins one measured ask over the quiet tenants.
	askQuiet := func(n int) ([]time.Duration, error) {
		lat := make([]time.Duration, n)
		cls := make([]*client.Client, len(quiet))
		for i, id := range quiet {
			cls[i] = client.New(ts.URL).Tenant(id)
		}
		for i := 0; i < n; i++ {
			q := questions[i%len(questions)]
			t0 := time.Now()
			if _, err := cls[i%len(cls)].Ask(ctx, api.AskRequest{Entities: q.Entities}); err != nil {
				return nil, err
			}
			lat[i] = time.Since(t0)
		}
		return lat, nil
	}
	// rankings fingerprints every quiet tenant's full ranking for one
	// fixed query, bit-exact.
	rankings := func() (map[string]string, error) {
		out := make(map[string]string, len(quiet))
		for _, id := range quiet {
			ask, err := client.New(ts.URL).Tenant(id).Ask(ctx, api.AskRequest{Entities: questions[0].Entities})
			if err != nil {
				return nil, fmt.Errorf("tenant %s: %w", id, err)
			}
			var sb strings.Builder
			for _, r := range ask.Results {
				fmt.Fprintf(&sb, "%d:%016x ", r.Doc, math.Float64bits(r.Score))
			}
			out[id] = sb.String()
		}
		return out, nil
	}

	baseLat, err := askQuiet(cfg.Asks)
	if err != nil {
		return res, fmt.Errorf("baseline ask: %w", err)
	}
	before, err := rankings()
	if err != nil {
		return res, err
	}

	var (
		admitted, shed, wrongCode, noRA, unexpected atomic.Int64
		wg                                          sync.WaitGroup
	)
	per := cfg.Flood / cfg.Workers
	res.Flood = per * cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.New(ts.URL).Tenant(noisy)
			for i := 0; i < per; i++ {
				_, err := cl.Vote(ctx, votes[w])
				if err == nil {
					admitted.Add(1)
					continue
				}
				var apiErr *api.Error
				if errors.As(err, &apiErr) && apiErr.HTTPStatus == 429 {
					shed.Add(1)
					var quota *api.TenantQuotaError
					if apiErr.Code != api.CodeTenantQuota || !errors.As(err, &quota) || quota.Tenant != noisy {
						wrongCode.Add(1)
					}
					if apiErr.RetryAfter() <= 0 {
						noRA.Add(1)
					}
					continue
				}
				unexpected.Add(1)
			}
		}(w)
	}
	var floodLat []time.Duration
	var floodErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		floodLat, floodErr = askQuiet(cfg.Asks)
	}()
	wg.Wait()
	if floodErr != nil {
		return res, fmt.Errorf("flooded ask: %w", floodErr)
	}

	after, err := rankings()
	if err != nil {
		return res, err
	}
	for _, id := range quiet {
		if before[id] != after[id] {
			res.LeakedTenants = append(res.LeakedTenants, id)
		}
	}

	res.Admitted = admitted.Load()
	res.Shed = shed.Load()
	res.ShedWrongCode = wrongCode.Load()
	res.ShedNoRetryAfter = noRA.Load()
	res.Unexpected = unexpected.Load()
	res.BaseP50Micros = micros(percentile(baseLat, 0.50))
	res.BaseP95Micros = micros(percentile(baseLat, 0.95))
	res.FloodP50Micros = micros(percentile(floodLat, 0.50))
	res.FloodP95Micros = micros(percentile(floodLat, 0.95))
	if res.BaseP95Micros > 0 {
		res.InterferenceRatio = res.FloodP95Micros / res.BaseP95Micros
	}

	violation := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if res.Admitted != int64(cfg.Capacity) {
		violation("noisy tenant admitted = %d, want exactly quota %d", res.Admitted, cfg.Capacity)
	}
	if want := int64(res.Flood) - res.Admitted; res.Shed != want {
		violation("shed = %d, want %d (flood %d − admitted %d)", res.Shed, want, res.Flood, res.Admitted)
	}
	if res.ShedWrongCode != 0 {
		violation("%d sheds were not typed tenant_quota_exceeded for %q", res.ShedWrongCode, noisy)
	}
	if res.ShedNoRetryAfter != 0 {
		violation("%d shed responses lacked a Retry-After hint", res.ShedNoRetryAfter)
	}
	if res.Unexpected != 0 {
		violation("%d requests failed with a status other than 200/429", res.Unexpected)
	}
	if over := res.FloodP95Micros - 2*res.BaseP95Micros; over > 0 && res.FloodP95Micros-res.BaseP95Micros > micros(interferenceSlack) {
		violation("quiet-tenant ask p95 under flood = %.1fµs, more than 2× the %.1fµs baseline (+%s slack)",
			res.FloodP95Micros, res.BaseP95Micros, interferenceSlack)
	}
	for _, id := range res.LeakedTenants {
		violation("tenant %s ranking changed across a neighbor's flood (weight leakage)", id)
	}
	return res, nil
}
