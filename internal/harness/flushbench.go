package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/synth"
	"kgvote/internal/vote"
)

// FlushConfig sizes the flush-path benchmark (DESIGN.md §11): the same
// synthetic vote batch is solved as one split-and-merge flush under
// three configurations — the legacy path (enumeration cache disabled,
// one worker), the cached sequential path, and the cached parallel
// path — so the quoted speedup isolates this PR's pipeline work.
type FlushConfig struct {
	Docs    int   // corpus documents; default 120
	Votes   int   // votes in the measured batch; default 64
	Workers int   // parallel-pass workers; default GOMAXPROCS
	Rounds  int   // timed repetitions per pass (min is kept); default 3
	Seed    int64 // default 1
	K       int   // top-K; default 10
	L       int   // walk-length bound; default 4
}

func (c FlushConfig) withDefaults() FlushConfig {
	if c.Docs == 0 {
		c.Docs = 120
	}
	if c.Votes == 0 {
		c.Votes = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.L == 0 {
		c.L = 4
	}
	return c
}

// FlushResult is the JSON-serializable outcome of FlushBench
// (BENCH_flush.json).
type FlushResult struct {
	Docs    int `json:"docs"`
	Votes   int `json:"votes"`
	Workers int `json:"workers"`

	Encoded  int `json:"encoded"`
	Clusters int `json:"clusters"`

	// Wall-clock per flush (minimum over rounds), in milliseconds.
	BaselineMillis   float64 `json:"baseline_ms"`   // no cache, 1 worker (legacy)
	SequentialMillis float64 `json:"sequential_ms"` // cache, 1 worker
	ParallelMillis   float64 `json:"parallel_ms"`   // cache, Workers workers

	// Speedup is the headline number: legacy flush time over the new
	// pipeline's (cache + Workers). ParallelSpeedup isolates the worker
	// fan-out (cached sequential over cached parallel); on a single-core
	// host it hovers at 1.0 and the cache carries the win.
	Speedup         float64 `json:"speedup"`
	ParallelSpeedup float64 `json:"parallel_speedup"`

	// Pre-solve pipeline wall-clock (enumerate + judge + cluster stages,
	// last round's report): the stages this PR's enumeration cache and
	// worker pool rewrote. The SGP solves dominate end-to-end flush time,
	// so the cache's 3-DFS→1-DFS reduction shows here rather than in
	// Speedup on hosts where the solves cannot fan out.
	BaselinePresolveMillis float64 `json:"baseline_presolve_ms"`
	ParallelPresolveMillis float64 `json:"parallel_presolve_ms"`
	PresolveSpeedup        float64 `json:"presolve_speedup"`

	// Enumeration-cache outcome of one parallel flush; misses equal the
	// batch's distinct query nodes.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`

	// Heap allocations per flush (runtime Mallocs delta around the solve).
	BaselineAllocs uint64 `json:"baseline_allocs"`
	ParallelAllocs uint64 `json:"parallel_allocs"`

	// MatchesSequential is true when the parallel pass's final edge
	// weights are bitwise identical to the cached sequential pass's — the
	// pipeline's determinism contract.
	MatchesSequential bool `json:"matches_sequential"`
}

// String renders a one-screen summary.
func (r FlushResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "flush bench: %d docs, %d votes (%d encoded, %d clusters)\n",
		r.Docs, r.Votes, r.Encoded, r.Clusters)
	fmt.Fprintf(&sb, "  legacy   (no cache, 1 worker):  %9.1f ms   %9d allocs\n",
		r.BaselineMillis, r.BaselineAllocs)
	fmt.Fprintf(&sb, "  cached   (1 worker):            %9.1f ms\n", r.SequentialMillis)
	fmt.Fprintf(&sb, "  pipeline (%2d workers):          %9.1f ms   %9d allocs   hits/misses %d/%d\n",
		r.Workers, r.ParallelMillis, r.ParallelAllocs, r.CacheHits, r.CacheMisses)
	fmt.Fprintf(&sb, "  speedup %.2fx vs legacy (%.2fx from workers), matches sequential: %v\n",
		r.Speedup, r.ParallelSpeedup, r.MatchesSequential)
	fmt.Fprintf(&sb, "  pre-solve stages: %.1f ms legacy → %.1f ms pipeline (%.2fx)",
		r.BaselinePresolveMillis, r.ParallelPresolveMillis, r.PresolveSpeedup)
	return sb.String()
}

// flushPass builds a fresh system over the shared corpus, collects the
// vote batch, and times cfg.Rounds single-flush solves (each on its own
// system so every round optimizes the same pristine graph). It returns
// the minimum flush time, the Mallocs delta of the last round, the
// report with the minimum pre-solve stage time (stage timings are
// ms-scale and noisy, so the minimum over rounds is kept, like the
// wall-clock), and the final edge weights of the last round's graph.
func flushPass(corpus *qa.Corpus, questions []qa.Question, cfg FlushConfig, opt core.Options) (time.Duration, uint64, *core.Report, map[graph.EdgeKey]float64, error) {
	best := time.Duration(0)
	var allocs uint64
	var rep *core.Report
	var weights map[graph.EdgeKey]float64
	for round := 0; round < cfg.Rounds; round++ {
		sys, err := qa.Build(corpus, opt)
		if err != nil {
			return 0, 0, nil, nil, err
		}
		votes := make([]vote.Vote, 0, len(questions))
		for i, q := range questions {
			qn, ranked, err := sys.Ask(q)
			if err != nil {
				return 0, 0, nil, nil, fmt.Errorf("ask %d: %w", i, err)
			}
			// Vote a non-top answer best so every vote is negative and the
			// flush has real optimization work.
			pick := 1 + i%(len(ranked)-1)
			v, err := sys.VoteBest(qn, ranked, sys.DocOf(ranked[pick]))
			if err != nil {
				return 0, 0, nil, nil, fmt.Errorf("vote %d: %w", i, err)
			}
			votes = append(votes, v)
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		r, err := sys.Engine.SolveSplitMerge(votes)
		elapsed := time.Since(start)
		if err != nil {
			return 0, 0, nil, nil, fmt.Errorf("flush: %w", err)
		}
		runtime.ReadMemStats(&ms1)
		if best == 0 || elapsed < best {
			best = elapsed
		}
		allocs = ms1.Mallocs - ms0.Mallocs
		if rep == nil || presolveMillis(r) < presolveMillis(rep) {
			rep = r
		}
		weights = make(map[graph.EdgeKey]float64)
		sys.Aug.Graph.Edges(func(from, to graph.NodeID, w float64) {
			weights[graph.EdgeKey{From: from, To: to}] = w
		})
	}
	return best, allocs, rep, weights, nil
}

// FlushBench measures one split-and-merge flush of an identical vote
// batch through the legacy path, the cached sequential path, and the
// cached parallel pipeline.
func FlushBench(cfg FlushConfig) (FlushResult, error) {
	cfg = cfg.withDefaults()
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: cfg.Docs, Seed: cfg.Seed})
	if err != nil {
		return FlushResult{}, err
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: cfg.Votes, Seed: cfg.Seed + 1})
	if err != nil {
		return FlushResult{}, err
	}
	base := core.Options{K: cfg.K, L: cfg.L}

	legacyOpt := base
	legacyOpt.NoEnumCache = true
	legacyOpt.Workers = 1
	seqOpt := base
	seqOpt.Workers = 1
	parOpt := base
	parOpt.Workers = cfg.Workers

	legacyTime, legacyAllocs, legacyRep, legacyWeights, err := flushPass(corpus, questions, cfg, legacyOpt)
	if err != nil {
		return FlushResult{}, fmt.Errorf("legacy pass: %w", err)
	}
	seqTime, _, _, seqWeights, err := flushPass(corpus, questions, cfg, seqOpt)
	if err != nil {
		return FlushResult{}, fmt.Errorf("sequential pass: %w", err)
	}
	parTime, parAllocs, parRep, parWeights, err := flushPass(corpus, questions, cfg, parOpt)
	if err != nil {
		return FlushResult{}, fmt.Errorf("parallel pass: %w", err)
	}

	res := FlushResult{
		Docs:              cfg.Docs,
		Votes:             cfg.Votes,
		Workers:           cfg.Workers,
		Encoded:           parRep.Encoded,
		Clusters:          parRep.Clusters,
		BaselineMillis:    legacyTime.Seconds() * 1e3,
		SequentialMillis:  seqTime.Seconds() * 1e3,
		ParallelMillis:    parTime.Seconds() * 1e3,
		Speedup:           legacyTime.Seconds() / parTime.Seconds(),
		ParallelSpeedup:   seqTime.Seconds() / parTime.Seconds(),
		CacheHits:         parRep.EnumCacheHits,
		CacheMisses:       parRep.EnumCacheMisses,
		BaselineAllocs:    legacyAllocs,
		ParallelAllocs:    parAllocs,
		MatchesSequential: weightsEqual(parWeights, seqWeights) && weightsEqual(parWeights, legacyWeights),
	}
	res.BaselinePresolveMillis = presolveMillis(legacyRep)
	res.ParallelPresolveMillis = presolveMillis(parRep)
	if res.ParallelPresolveMillis > 0 {
		res.PresolveSpeedup = res.BaselinePresolveMillis / res.ParallelPresolveMillis
	}
	return res, nil
}

// presolveMillis sums a report's pre-solve stage durations.
func presolveMillis(rep *core.Report) float64 {
	return (rep.EnumSeconds + rep.JudgeSeconds + rep.ClusterSeconds) * 1e3
}

// weightsEqual reports bitwise equality of two edge-weight maps.
func weightsEqual(a, b map[graph.EdgeKey]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, w := range a {
		if bw, ok := b[k]; !ok || bw != w {
			return false
		}
	}
	return true
}
