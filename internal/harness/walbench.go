package harness

import (
	"fmt"
	"os"
	"strings"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/qa"
	"kgvote/internal/synth"
	"kgvote/internal/wal"
)

// WalBenchConfig sizes the durability benchmark: the same synthetic
// ask+vote stream is driven through the serving write path once without a
// WAL (baseline) and once per fsync policy, so the quoted overhead is the
// durability layer and nothing else.
type WalBenchConfig struct {
	Docs  int   // corpus documents; default 120
	Votes int   // ask+vote rounds per pass; default 150
	Batch int   // votes per optimization batch; default 10
	Seed  int64 // default 1
	K     int   // top-K; default 10
	L     int   // walk-length bound; default 4
}

func (c WalBenchConfig) withDefaults() WalBenchConfig {
	if c.Docs == 0 {
		c.Docs = 120
	}
	if c.Votes == 0 {
		c.Votes = 150
	}
	if c.Batch == 0 {
		c.Batch = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.L == 0 {
		c.L = 4
	}
	return c
}

// WalPolicyResult is one pass of the vote loop under one fsync policy.
type WalPolicyResult struct {
	Policy      string  `json:"policy"` // "none" = durability disabled
	VotesPerSec float64 `json:"votes_per_sec"`
	// Overhead is baseline time / this policy's time for the same stream
	// (1.0 = free, 2.0 = votes take twice as long).
	Overhead float64 `json:"overhead"`
	Syncs    int64   `json:"syncs"`
	WalBytes int64   `json:"wal_bytes"`
}

// WalResult is the JSON-serializable outcome of WalBench.
type WalResult struct {
	Docs     int               `json:"docs"`
	Votes    int               `json:"votes"`
	Batch    int               `json:"batch"`
	Policies []WalPolicyResult `json:"policies"`
}

// String renders a one-screen summary.
func (r WalResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wal bench: %d docs, %d votes, batch %d\n", r.Docs, r.Votes, r.Batch)
	for _, p := range r.Policies {
		fmt.Fprintf(&sb, "  %-8s %10.1f votes/s   %5.2fx overhead   %5d syncs   %7d wal bytes\n",
			p.Policy, p.VotesPerSec, p.Overhead, p.Syncs, p.WalBytes)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// WalBench measures the write-path cost of each WAL fsync policy against a
// durability-free baseline on an identical vote stream.
func WalBench(cfg WalBenchConfig) (WalResult, error) {
	cfg = cfg.withDefaults()
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: cfg.Docs, Seed: cfg.Seed})
	if err != nil {
		return WalResult{}, err
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: cfg.Votes, Seed: cfg.Seed + 1})
	if err != nil {
		return WalResult{}, err
	}
	res := WalResult{Docs: cfg.Docs, Votes: cfg.Votes, Batch: cfg.Batch}

	passes := []struct {
		name    string
		durable bool
		policy  wal.SyncPolicy
	}{
		{"none", false, wal.SyncNever},
		{"never", true, wal.SyncNever},
		{"interval", true, wal.SyncInterval},
		{"always", true, wal.SyncAlways},
	}
	var baseline time.Duration
	for _, pass := range passes {
		elapsed, syncs, bytes, err := walBenchPass(corpus, questions, cfg, pass.durable, pass.policy)
		if err != nil {
			return WalResult{}, fmt.Errorf("pass %s: %w", pass.name, err)
		}
		if !pass.durable {
			baseline = elapsed
		}
		pr := WalPolicyResult{
			Policy:      pass.name,
			VotesPerSec: float64(cfg.Votes) / elapsed.Seconds(),
			Syncs:       syncs,
			WalBytes:    bytes,
		}
		if baseline > 0 {
			pr.Overhead = elapsed.Seconds() / baseline.Seconds()
		}
		res.Policies = append(res.Policies, pr)
	}
	return res, nil
}

// walBenchPass builds a fresh system over the shared corpus and drives the
// full serving write path — attach, log, push, flush log, commit — for
// every question, exactly as the server's /vote handler does.
func walBenchPass(corpus *qa.Corpus, questions []qa.Question, cfg WalBenchConfig, useWal bool, policy wal.SyncPolicy) (time.Duration, int64, int64, error) {
	opt := core.Options{K: cfg.K, L: cfg.L}
	sys, err := qa.Build(corpus, opt)
	if err != nil {
		return 0, 0, 0, err
	}
	stream, err := sys.Engine.NewStream(cfg.Batch, core.StreamMulti)
	if err != nil {
		return 0, 0, 0, err
	}
	var mgr *durable.Manager
	if useWal {
		dir, err := os.MkdirTemp("", "kgvote-walbench-*")
		if err != nil {
			return 0, 0, 0, err
		}
		defer os.RemoveAll(dir)
		mgr, err = durable.Open(durable.Options{Dir: dir, Fsync: policy, Engine: opt})
		if err != nil {
			return 0, 0, 0, err
		}
		defer mgr.Close()
		if err := mgr.Bootstrap(sys); err != nil {
			return 0, 0, 0, err
		}
	}

	start := time.Now()
	for i, q := range questions {
		qn, ranked, err := sys.Ask(q)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("ask %d: %w", i, err)
		}
		if mgr != nil {
			if err := mgr.LogAttach(durable.Attach{Node: qn, Question: q}); err != nil {
				return 0, 0, 0, err
			}
		}
		best := sys.DocOf(ranked[i%len(ranked)])
		v, err := sys.VoteBest(qn, ranked, best)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("vote %d: %w", i, err)
		}
		if mgr != nil {
			if err := mgr.LogVote(v); err != nil {
				return 0, 0, 0, err
			}
		}
		rep, err := stream.Push(v)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("push %d: %w", i, err)
		}
		if mgr != nil {
			if rep != nil {
				if err := mgr.LogFlush(rep.Applied); err != nil {
					return 0, 0, 0, err
				}
			}
			if err := mgr.Commit(); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	elapsed := time.Since(start)
	if mgr != nil {
		st := mgr.Stats()
		return elapsed, st.Wal.Syncs, st.Wal.Bytes, nil
	}
	return elapsed, 0, 0, nil
}
