package harness

import (
	"fmt"
	"math"
	"sort"

	"kgvote/internal/graph"
	"kgvote/internal/metrics"
	"kgvote/internal/qa"
)

// TableIII reproduces Table III: samples of optimized edge weights (head
// entity, tail entity, original weight, optimized weight, diff), showing
// the largest movements after multi-vote optimization.
func TableIII(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	f, err := newTaobaoFixture(cfg)
	if err != nil {
		return Table{}, err
	}
	base, err := f.buildCorrupted()
	if err != nil {
		return Table{}, err
	}
	entities := base.Aug.Entities
	before := base.Aug.Clone()
	sys, _, err := f.buildOptimized(multiVote)
	if err != nil {
		return Table{}, err
	}
	type change struct {
		from, to graph.NodeID
		old, new float64
	}
	var changes []change
	before.Edges(func(from, to graph.NodeID, w float64) {
		// Only report entity-entity edges (the knowledge graph proper).
		if int(from) >= entities || int(to) >= entities {
			return
		}
		nw := sys.Aug.Weight(from, to)
		if math.Abs(nw-w) > 1e-6 {
			changes = append(changes, change{from: from, to: to, old: w, new: nw})
		}
	})
	sort.Slice(changes, func(i, j int) bool {
		di := math.Abs(changes[i].new - changes[i].old)
		dj := math.Abs(changes[j].new - changes[j].old)
		if di != dj {
			return di > dj
		}
		if changes[i].from != changes[j].from {
			return changes[i].from < changes[j].from
		}
		return changes[i].to < changes[j].to
	})
	if len(changes) > 8 {
		changes = changes[:8]
	}
	t := Table{
		Title:  "Table III: samples of optimized edge weights",
		Header: []string{"Head Entity", "Tail Entity", "Original", "Optimized", "Diff"},
	}
	for _, c := range changes {
		t.Rows = append(t.Rows, []string{
			sys.Aug.Name(c.from), sys.Aug.Name(c.to),
			fmt.Sprintf("%.4f", c.old), fmt.Sprintf("%.4f", c.new),
			fmt.Sprintf("%+.4f", c.new-c.old),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d edges changed in total", countAllChanges(before, sys)))
	return t, nil
}

func countAllChanges(before *graph.Graph, sys *qa.System) int {
	n := 0
	before.Edges(func(from, to graph.NodeID, w float64) {
		if math.Abs(sys.Aug.Weight(from, to)-w) > 1e-6 {
			n++
		}
	})
	return n
}

// TableIV reproduces Table IV: the average ranking of best answers on the
// held-out test set (R_avg), the score change (Ω_avg), and the percentage
// improvement (P_avg) for the original graph, the single-vote solution,
// and the multi-vote solution.
func TableIV(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	f, err := newTaobaoFixture(cfg)
	if err != nil {
		return Table{}, err
	}
	ranks := make(map[solverKind][]int)
	for _, kind := range []solverKind{originalGraph, singleVote, multiVote} {
		sys, _, err := f.buildOptimized(kind)
		if err != nil {
			return Table{}, fmt.Errorf("harness: %v: %w", kind, err)
		}
		r, err := f.testRanks(sys)
		if err != nil {
			return Table{}, err
		}
		ranks[kind] = r
	}
	t := Table{
		Title:  "Table IV: ranking of best answers in test dataset",
		Header: []string{"Graph", "R_avg", "Omega_avg", "P_avg"},
	}
	base := ranks[originalGraph]
	t.Rows = append(t.Rows, []string{originalGraph.String(), f2(metrics.MeanRank(base)), "-", "-"})
	for _, kind := range []solverKind{singleVote, multiVote} {
		omega, err := metrics.OmegaAvg(base, ranks[kind])
		if err != nil {
			return Table{}, err
		}
		p, err := metrics.PctImprovement(base, ranks[kind])
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			"Optimized by " + kind.String(), f2(metrics.MeanRank(ranks[kind])), f2(omega), pct(p),
		})
	}
	return t, nil
}

// TableV reproduces Table V: H@{1,3,5,10} on the test set for the IR
// baseline, the random-walk Q&A of [5], the unoptimized KG, and the KG
// optimized by the single-vote and multi-vote solutions.
func TableV(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	f, err := newTaobaoFixture(cfg)
	if err != nil {
		return Table{}, err
	}
	ks := []int{1, 3, 5, 10}
	t := Table{
		Title:  "Table V: promotion of best answers in top-k list",
		Header: []string{"Method", "H@1", "H@3", "H@5", "H@10"},
	}
	addRow := func(name string, ranks []int) {
		row := []string{name}
		for _, k := range ks {
			row = append(row, f2(metrics.HitsAtK(ranks, k)))
		}
		t.Rows = append(t.Rows, row)
	}

	// IR baseline needs no graph.
	irRanks := make([]int, 0, len(f.test))
	for _, q := range f.test {
		irRanks = append(irRanks, qa.IRRankOf(f.corpus, q, q.BestDoc))
	}
	addRow("IR", irRanks)

	// Random-walk Q&A of [5] on the unoptimized graph.
	sys, _, err := f.buildOptimized(originalGraph)
	if err != nil {
		return Table{}, err
	}
	walkRanks := make([]int, 0, len(f.test))
	for _, q := range f.test {
		qn, err := sys.AttachQuestion(q)
		if err != nil {
			walkRanks = append(walkRanks, 0)
			continue
		}
		r, err := sys.WalkRankOf(qn, q.BestDoc)
		if err != nil {
			return Table{}, err
		}
		walkRanks = append(walkRanks, r)
	}
	addRow("Q&A of [5] (random walk)", walkRanks)

	for _, kind := range []solverKind{originalGraph, singleVote, multiVote} {
		s, _, err := f.buildOptimized(kind)
		if err != nil {
			return Table{}, err
		}
		ranks, err := f.testRanks(s)
		if err != nil {
			return Table{}, err
		}
		name := "KG without optimization"
		if kind != originalGraph {
			name = "KG optimized by " + kind.String()
		}
		addRow(name, ranks)
	}
	return t, nil
}

// Figure5 reproduces Fig. 5: MRR and MAP of the original, single-vote,
// and multi-vote graphs — (a) on the whole test set and (b) on the subset
// of questions whose best answer was not ranked first originally.
func Figure5(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	f, err := newTaobaoFixture(cfg)
	if err != nil {
		return Table{}, err
	}
	allRanks := make(map[solverKind][]int)
	allAPs := make(map[solverKind][]float64)
	for _, kind := range []solverKind{originalGraph, singleVote, multiVote} {
		sys, _, err := f.buildOptimized(kind)
		if err != nil {
			return Table{}, err
		}
		r, err := f.testRanks(sys)
		if err != nil {
			return Table{}, err
		}
		allRanks[kind] = r
		aps, err := f.testAPs(sys)
		if err != nil {
			return Table{}, err
		}
		allAPs[kind] = aps
	}
	// Subsets: questions whose ORIGINAL rank is > 1.
	subsetRanks := func(ranks []int) []int {
		out := make([]int, 0, len(ranks))
		for i, orig := range allRanks[originalGraph] {
			if orig > 1 {
				out = append(out, ranks[i])
			}
		}
		return out
	}
	subsetAPs := func(aps []float64) []float64 {
		out := make([]float64, 0, len(aps))
		for i, orig := range allRanks[originalGraph] {
			if orig > 1 {
				out = append(out, aps[i])
			}
		}
		return out
	}
	t := Table{
		Title:  "Figure 5: MRR and MAP on the test dataset",
		Header: []string{"Graph", "MRR(all)", "MAP(all)", "MRR(non-top1)", "MAP(non-top1)"},
	}
	for _, kind := range []solverKind{originalGraph, singleVote, multiVote} {
		r := allRanks[kind]
		t.Rows = append(t.Rows, []string{
			kind.String(),
			f3(metrics.MRR(r)), f3(metrics.MAP(allAPs[kind])),
			f3(metrics.MRR(subsetRanks(r))), f3(metrics.MAP(subsetAPs(allAPs[kind]))),
		})
	}
	return t, nil
}
