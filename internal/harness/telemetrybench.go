package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/synth"
	"kgvote/internal/telemetry"
)

// TelemetryConfig sizes the instrumentation-overhead benchmark: the same
// question stream is ranked through the snapshot path twice — once on a
// bare system, once with a full telemetry registry wired — and the QPS
// difference is the cost of the counters, histograms, and nil checks on
// the hot path.
type TelemetryConfig struct {
	Docs    int   // corpus documents; default 200
	Queries int   // questions per measured pass; default 300
	Workers int   // goroutines; default GOMAXPROCS
	Seed    int64 // default 1
	K       int   // top-K; default 10
	L       int   // walk-length bound; default 4
}

func (c TelemetryConfig) withDefaults() TelemetryConfig {
	if c.Docs == 0 {
		c.Docs = 200
	}
	if c.Queries == 0 {
		c.Queries = 300
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.L == 0 {
		c.L = 4
	}
	return c
}

// TelemetryResult is the JSON-serializable outcome of TelemetryBench.
type TelemetryResult struct {
	Docs    int `json:"docs"`
	Queries int `json:"queries"`
	Workers int `json:"workers"`

	PlainQPS        float64 `json:"plain_qps"`
	InstrumentedQPS float64 `json:"instrumented_qps"`
	// OverheadPct is how much slower the instrumented pass ran, in
	// percent of plain throughput (negative = noise made it faster).
	OverheadPct float64 `json:"overhead_pct"`
	// Observations actually recorded by the instrumented pass, as a
	// sanity check that the metrics were live during the measurement.
	Observations uint64 `json:"observations"`
}

// String renders a one-screen summary.
func (r TelemetryResult) String() string {
	return fmt.Sprintf(
		"telemetry bench: %d docs, %d queries, %d workers\n"+
			"  plain:        %8.1f qps\n"+
			"  instrumented: %8.1f qps (%d observations)\n"+
			"  overhead %.2f%%",
		r.Docs, r.Queries, r.Workers,
		r.PlainQPS, r.InstrumentedQPS, r.Observations, r.OverheadPct)
}

// TelemetryBench measures the Ask-path cost of a live registry. Both
// passes run the identical lock-free snapshot ranking with the rank
// cache disabled (so every query pays the full sweep and the metric
// observations are a fixed fraction of real work, not of a cache hit).
// The plain pass ranks through a system with no metrics wired; the
// instrumented pass wires qa.NewMetrics over a real registry, which is
// exactly what the daemon does under -metrics.
func TelemetryBench(cfg TelemetryConfig) (TelemetryResult, error) {
	cfg = cfg.withDefaults()
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: cfg.Docs, Seed: cfg.Seed})
	if err != nil {
		return TelemetryResult{}, err
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: cfg.Queries, Seed: cfg.Seed + 1})
	if err != nil {
		return TelemetryResult{}, err
	}
	opt := core.Options{K: cfg.K, L: cfg.L, RankCacheSize: -1}

	run := func(sys *qa.System) (float64, error) {
		var (
			next   atomic.Int64
			wg     sync.WaitGroup
			runErr atomic.Pointer[error]
		)
		start := time.Now()
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(questions) {
						return
					}
					if _, _, err := sys.RankSnapshot(questions[i]); err != nil {
						e := fmt.Errorf("ask %d: %w", i, err)
						runErr.Store(&e)
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if ep := runErr.Load(); ep != nil {
			return 0, *ep
		}
		return float64(len(questions)) / elapsed.Seconds(), nil
	}

	// Separate systems so one pass cannot warm the other's internals;
	// interleave a warmup of each so neither pays first-touch costs.
	plainSys, err := qa.Build(corpus, opt)
	if err != nil {
		return TelemetryResult{}, err
	}
	instSys, err := qa.Build(corpus, opt)
	if err != nil {
		return TelemetryResult{}, err
	}
	reg := telemetry.NewRegistry()
	metrics := qa.NewMetrics(reg)
	instSys.SetMetrics(metrics)

	if _, err := run(plainSys); err != nil { // warmup
		return TelemetryResult{}, err
	}
	if _, err := run(instSys); err != nil { // warmup
		return TelemetryResult{}, err
	}
	plainQPS, err := run(plainSys)
	if err != nil {
		return TelemetryResult{}, err
	}
	instQPS, err := run(instSys)
	if err != nil {
		return TelemetryResult{}, err
	}

	res := TelemetryResult{
		Docs:            cfg.Docs,
		Queries:         len(questions),
		Workers:         cfg.Workers,
		PlainQPS:        plainQPS,
		InstrumentedQPS: instQPS,
		Observations:    metrics.AskSeconds.Count(),
	}
	if plainQPS > 0 {
		res.OverheadPct = (plainQPS - instQPS) / plainQPS * 100
	}
	return res, nil
}
