package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/qa"
	"kgvote/internal/synth"
)

// ServeConfig sizes the serving benchmark (DESIGN.md §"Serving
// architecture"): a synthetic corpus is built once, then the same
// question stream is ranked through the legacy mutex path (attach query
// node, rank under the writer lock) and through the lock-free snapshot
// path (virtual seed vector against the published CSR).
type ServeConfig struct {
	Docs    int   // corpus documents; default 200
	Queries int   // questions per measured pass; default 300
	Workers int   // snapshot-path goroutines; default GOMAXPROCS
	Seed    int64 // default 1
	K       int   // top-K; default 10
	L       int   // walk-length bound; default 4
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Docs == 0 {
		c.Docs = 200
	}
	if c.Queries == 0 {
		c.Queries = 300
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.L == 0 {
		c.L = 4
	}
	return c
}

// ServeResult is the JSON-serializable outcome of ServeBench
// (BENCH_serve.json).
type ServeResult struct {
	Docs    int    `json:"docs"`
	Queries int    `json:"queries"`
	Workers int    `json:"workers"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Epoch   uint64 `json:"epoch"`

	SequentialQPS float64 `json:"sequential_qps"`
	ParallelQPS   float64 `json:"parallel_qps"`
	Speedup       float64 `json:"speedup"`

	// Per-query latency of the snapshot path and the legacy path, in
	// microseconds.
	P50Micros           float64 `json:"p50_us"`
	P99Micros           float64 `json:"p99_us"`
	SequentialP50Micros float64 `json:"sequential_p50_us"`
	SequentialP99Micros float64 `json:"sequential_p99_us"`

	// Steady-state heap allocations per ranked query on the snapshot
	// scoring loop (pool scorer + RankSeededInto); the design target is 0.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// String renders a one-screen summary.
func (r ServeResult) String() string {
	return fmt.Sprintf(
		"serve bench: %d docs (%d nodes / %d edges), %d queries, epoch %d\n"+
			"  sequential (mutex + attach): %8.1f qps   p50 %8.1fµs  p99 %8.1fµs\n"+
			"  snapshot   (%2d workers):     %8.1f qps   p50 %8.1fµs  p99 %8.1fµs\n"+
			"  speedup %.2fx, scoring loop %.1f allocs/op",
		r.Docs, r.Nodes, r.Edges, r.Queries, r.Epoch,
		r.SequentialQPS, r.SequentialP50Micros, r.SequentialP99Micros,
		r.Workers, r.ParallelQPS, r.P50Micros, r.P99Micros,
		r.Speedup, r.AllocsPerOp)
}

// ServeBench measures the legacy serialized ask path against the
// lock-free snapshot path on the same corpus and question stream.
//
// Two systems are built from identical corpora so the sequential pass's
// query-node attachments cannot slow the snapshot pass (or vice versa),
// and the snapshot system's rank cache is disabled so the comparison is
// sweep against sweep, not sweep against cache hit.
func ServeBench(cfg ServeConfig) (ServeResult, error) {
	cfg = cfg.withDefaults()
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: cfg.Docs, Seed: cfg.Seed})
	if err != nil {
		return ServeResult{}, err
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: cfg.Queries, Seed: cfg.Seed + 1})
	if err != nil {
		return ServeResult{}, err
	}
	opt := core.Options{K: cfg.K, L: cfg.L}

	// Legacy path: every ask attaches a query node and ranks under the
	// writer mutex — the pre-snapshot server serialized exactly like this.
	seqSys, err := qa.Build(corpus, opt)
	if err != nil {
		return ServeResult{}, err
	}
	var mu sync.Mutex
	seqLat := make([]time.Duration, len(questions))
	seqStart := time.Now()
	for i, q := range questions {
		t0 := time.Now()
		mu.Lock()
		_, _, err := seqSys.Ask(q)
		mu.Unlock()
		if err != nil {
			return ServeResult{}, fmt.Errorf("sequential ask %d: %w", i, err)
		}
		seqLat[i] = time.Since(t0)
	}
	seqElapsed := time.Since(seqStart)

	// Snapshot path: virtual seed vectors against the published CSR, no
	// lock, no attachment, pooled scorers. Cache disabled (see above).
	parOpt := opt
	parOpt.RankCacheSize = -1
	parSys, err := qa.Build(corpus, parOpt)
	if err != nil {
		return ServeResult{}, err
	}
	parLat := make([]time.Duration, len(questions))
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		parErr atomic.Pointer[error]
	)
	parStart := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(questions) {
					return
				}
				t0 := time.Now()
				if _, _, err := parSys.RankSnapshot(questions[i]); err != nil {
					e := fmt.Errorf("snapshot ask %d: %w", i, err)
					parErr.Store(&e)
					return
				}
				parLat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	parElapsed := time.Since(parStart)
	if ep := parErr.Load(); ep != nil {
		return ServeResult{}, *ep
	}

	// Steady-state allocation count of the scoring loop itself.
	allocs, err := scoringAllocsPerOp(parSys, questions)
	if err != nil {
		return ServeResult{}, err
	}

	snap := parSys.Engine.Serving()
	res := ServeResult{
		Docs:    cfg.Docs,
		Queries: len(questions),
		Workers: cfg.Workers,
		Nodes:   snap.NumNodes(),
		Edges:   snap.NumEdges(),
		Epoch:   snap.Epoch(),

		SequentialQPS: float64(len(questions)) / seqElapsed.Seconds(),
		ParallelQPS:   float64(len(questions)) / parElapsed.Seconds(),

		P50Micros:           micros(percentile(parLat, 0.50)),
		P99Micros:           micros(percentile(parLat, 0.99)),
		SequentialP50Micros: micros(percentile(seqLat, 0.50)),
		SequentialP99Micros: micros(percentile(seqLat, 0.99)),

		AllocsPerOp: allocs,
	}
	if res.SequentialQPS > 0 {
		res.Speedup = res.ParallelQPS / res.SequentialQPS
	}
	return res, nil
}

// scoringAllocsPerOp measures heap allocations per ranked query on the
// warm path: a pooled scorer, pre-seeded questions, and a reused result
// buffer, exactly what GraphSnapshot.RankSeeded does per request minus
// the per-request slice handed to the caller.
func scoringAllocsPerOp(sys *qa.System, questions []qa.Question) (float64, error) {
	type seeded struct {
		ids []graph.NodeID
		ws  []float64
	}
	n := len(questions)
	if n > 50 {
		n = 50
	}
	seeds := make([]seeded, 0, n)
	for _, q := range questions[:n] {
		ids, ws, _, err := sys.Seed(q)
		if err != nil {
			return 0, err
		}
		seeds = append(seeds, seeded{ids, ws})
	}
	snap := sys.Engine.Serving()
	sc := snap.Pool().Get()
	defer snap.Pool().Put(sc)
	answers := sys.Answers()
	k := sys.Engine.Options().K
	buf := make([]pathidx.Ranked, 0, len(answers))

	var rankErr error
	run := func() {
		for _, s := range seeds {
			var err error
			buf, err = sc.RankSeededInto(buf[:0], s.ids, s.ws, answers, k)
			if err != nil && rankErr == nil {
				rankErr = err
			}
		}
	}
	// Same protocol as testing.AllocsPerRun: warm once, then measure
	// mallocs across repeated runs on a single P.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	run()
	const rounds = 10
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	if rankErr != nil {
		return 0, rankErr
	}
	return float64(after.Mallocs-before.Mallocs) / float64(rounds*len(seeds)), nil
}

func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
