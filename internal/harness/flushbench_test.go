package harness

import "testing"

func TestFlushBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("flush bench is slow")
	}
	res, err := FlushBench(FlushConfig{Docs: 40, Votes: 8, Workers: 2, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Votes != 8 || res.Workers != 2 {
		t.Errorf("config echo wrong: %+v", res)
	}
	if res.Encoded == 0 {
		t.Errorf("no votes encoded; the benchmark measured an empty flush")
	}
	if res.BaselineMillis <= 0 || res.SequentialMillis <= 0 || res.ParallelMillis <= 0 {
		t.Errorf("missing timings: %+v", res)
	}
	if res.Speedup <= 0 {
		t.Errorf("speedup = %v", res.Speedup)
	}
	if res.CacheMisses == 0 {
		t.Errorf("parallel pass never touched the enumeration cache")
	}
	if !res.MatchesSequential {
		t.Errorf("parallel flush diverged from the sequential flush")
	}
	if res.BaselinePresolveMillis <= 0 || res.ParallelPresolveMillis <= 0 {
		t.Errorf("pre-solve stages not timed: %+v", res)
	}
	if res.String() == "" {
		t.Errorf("empty summary")
	}
}
