package harness

import (
	"fmt"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/metrics"
	"kgvote/internal/pathidx"
	"kgvote/internal/sgp"
	"kgvote/internal/synth"
	"kgvote/internal/vote"
)

// Figure7PD reproduces Fig. 7(a): the percentage difference
// PD(L_i, L_{i+1}) of the cumulative top-k similarity mass for consecutive
// path-length limits, per graph profile. The paper sets N_Q = 1 and
// top-20; PD collapsing near zero justifies L = 5.
func Figure7PD(cfg Config, profiles []synth.Profile) (Table, error) {
	cfg = cfg.withDefaults()
	if len(profiles) == 0 {
		profiles = []synth.Profile{
			synth.Twitter.Scaled(cfg.GraphScale),
			synth.Digg.Scaled(cfg.GraphScale),
			synth.Gnutella.Scaled(cfg.GraphScale),
		}
	}
	t := Table{
		Title:  "Figure 7(a): (L1,L2) vs PD(L1,L2)",
		Header: []string{"Graph"},
	}
	for i := 0; i+1 < len(cfg.Lengths); i++ {
		t.Header = append(t.Header, fmt.Sprintf("(%d,%d)", cfg.Lengths[i], cfg.Lengths[i+1]))
	}
	for _, p := range profiles {
		host, err := p.Generate(cfg.Seed + 30)
		if err != nil {
			return Table{}, err
		}
		w, err := synth.GenerateWorkload(host, synth.WorkloadConfig{
			NQ: 1, NA: max(40, cfg.K*4), Nnodes: min(host.NumNodes(), 2000), K: cfg.K, Seed: cfg.Seed + 31,
		})
		if err != nil {
			return Table{}, err
		}
		q := w.Queries[0]
		sums := make([]float64, len(cfg.Lengths))
		for i, l := range cfg.Lengths {
			scorer, err := pathidx.NewScorer(w.Aug.Graph, pathidx.Options{L: l})
			if err != nil {
				return Table{}, err
			}
			sums[i], err = scorer.SumTopK(q, w.Answers, cfg.K)
			if err != nil {
				return Table{}, err
			}
		}
		row := []string{p.Name}
		for i := 0; i+1 < len(sums); i++ {
			row = append(row, pct(metrics.PD(sums[i], sums[i+1])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure7Time reproduces Fig. 7(b): the elapsed time of graph
// optimization (one multi-vote solve over a fixed vote set) as the path
// pruning threshold L grows.
func Figure7Time(cfg Config, profiles []synth.Profile) (Table, error) {
	cfg = cfg.withDefaults()
	if len(profiles) == 0 {
		profiles = []synth.Profile{
			synth.Twitter.Scaled(cfg.GraphScale),
			synth.Digg.Scaled(cfg.GraphScale),
			synth.Gnutella.Scaled(cfg.GraphScale),
		}
	}
	t := Table{
		Title:  "Figure 7(b): L vs elapsed time of graph optimization",
		Header: []string{"Graph"},
	}
	for _, l := range cfg.Lengths {
		t.Header = append(t.Header, fmt.Sprintf("L=%d", l))
	}
	for _, p := range profiles {
		host, err := p.Generate(cfg.Seed + 30)
		if err != nil {
			return Table{}, err
		}
		w, err := synth.GenerateWorkload(host, synth.WorkloadConfig{
			NQ: 8, NA: max(40, cfg.K*4), Nnodes: min(host.NumNodes(), 2000), K: cfg.K, Seed: cfg.Seed + 31,
		})
		if err != nil {
			return Table{}, err
		}
		nv := min(len(w.Votes), 4)
		votes := append([]vote.Vote(nil), w.Votes[:nv]...)
		row := []string{p.Name}
		for _, l := range cfg.Lengths {
			g := w.Aug.Graph.Clone()
			eng, err := core.New(g, core.Options{K: cfg.K, L: l, Mode: cfg.sgpMode()})
			if err != nil {
				return Table{}, err
			}
			start := time.Now()
			if _, err := eng.SolveMulti(votes); err != nil {
				return Table{}, fmt.Errorf("harness: L=%d on %s: %w", l, p.Name, err)
			}
			row = append(row, time.Since(start).String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure2 reproduces Fig. 2: sampled values of the step function and its
// sigmoid approximation at w = 300.
func Figure2() Table {
	t := Table{
		Title:  "Figure 2: step function vs sigmoid approximation (w = 300)",
		Header: []string{"x", "Step(x)", "Sigmoid(300, x)", "AbsErr"},
	}
	for _, x := range []float64{-1, -0.5, -0.1, -0.05, -0.01, 0, 0.01, 0.05, 0.1, 0.5, 1} {
		s := sgp.Step(x)
		g := sgp.Sigmoid(sgp.DefaultSigmoidW, x)
		diff := g - s
		if diff < 0 {
			diff = -diff
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%+.2f", x), fmt.Sprintf("%.0f", s), fmt.Sprintf("%.6f", g), fmt.Sprintf("%.6f", diff),
		})
	}
	return t
}
