package harness

import "runtime"

// Provenance records the toolchain and machine shape a benchmark run was
// measured under. Every run entry in the BENCH_*.json history files
// embeds one, so historical numbers can be compared like-for-like: a
// throughput jump that coincides with a Go version or core-count change
// is a hardware/toolchain story, not a code story.
type Provenance struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CollectProvenance captures the current process's provenance.
func CollectProvenance() Provenance {
	return Provenance{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}
