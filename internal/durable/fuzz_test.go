package durable

import (
	"reflect"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
)

// FuzzDecodeRecords drives every payload decoder over arbitrary bytes.
// Decoders must never panic, and anything they accept must re-encode to
// the same bytes (round-trip stability).
func FuzzDecodeRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeVote(vote.Vote{Kind: vote.Negative, Query: 3, Ranked: []graph.NodeID{1, 2}, Best: 2, Weight: 0.5}))
	f.Add(EncodeVote2(vote.Vote{Kind: vote.Negative, Query: 3, Ranked: []graph.NodeID{1, 2}, Best: 2, Weight: 0.5, Voter: "alice"}))
	f.Add(EncodeVote2(vote.Vote{Kind: vote.Positive, Query: 1, Ranked: []graph.NodeID{4}, Best: 4, Voter: ""}))
	f.Add(EncodeAttach(Attach{Node: 7, Question: qa.Question{ID: 4, Entities: map[string]int{"email": 2, "send": 1}}}))
	f.Add(EncodeWeights([]core.WeightChange{{From: 0, To: 1, Weight: 0.25}, {From: 1, To: 2, Weight: 1}}))
	f.Add(EncodeCheckpoint(123456))
	f.Add(EncodeRemote(Remote{Source: 3, Seq: 17, Set: []core.WeightChange{{From: 1, To: 4, Weight: 0.5}}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // huge uvarint counts
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		if v, err := DecodeVote(data); err == nil {
			if v.Voter != "" {
				t.Errorf("v1 vote decoded with a voter: %q", v.Voter)
			}
			if got := EncodeVote(v); !reflect.DeepEqual(got, data) {
				t.Errorf("vote round trip changed bytes: %x -> %x", data, got)
			}
		}
		if v, err := DecodeVote2(data); err == nil {
			if got := EncodeVote2(v); !reflect.DeepEqual(got, data) {
				t.Errorf("vote2 round trip changed bytes: %x -> %x", data, got)
			}
		}
		if a, err := DecodeAttach(data); err == nil {
			// Attach encoding is canonical (sorted entities), so decoded
			// payloads must re-encode identically.
			if got := EncodeAttach(a); !reflect.DeepEqual(got, data) {
				t.Errorf("attach round trip changed bytes: %x -> %x", data, got)
			}
		}
		if ws, err := DecodeWeights(data); err == nil {
			if got := EncodeWeights(ws); !reflect.DeepEqual(got, data) {
				t.Errorf("weights round trip changed bytes: %x -> %x", data, got)
			}
		}
		if seq, err := DecodeCheckpoint(data); err == nil {
			if got := EncodeCheckpoint(seq); !reflect.DeepEqual(got, data) {
				t.Errorf("checkpoint round trip changed bytes: %x -> %x", data, got)
			}
		}
		if rm, err := DecodeRemote(data); err == nil {
			if got := EncodeRemote(rm); !reflect.DeepEqual(got, data) {
				t.Errorf("remote round trip changed bytes: %x -> %x", data, got)
			}
		}
	})
}
