package durable

import (
	"path/filepath"
	"reflect"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
	"kgvote/internal/wal"
)

// voteAs is voteOn with a voter identity attached, and without triggering
// a flush decision (queue only): the tests below control flush timing.
func (h *harness) voteAs(q qa.Question, bestDoc int, voter string) vote.Vote {
	h.t.Helper()
	qn, err := h.sys.AttachQuestion(q)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.mgr.LogAttach(Attach{Node: qn, Question: q}); err != nil {
		h.t.Fatal(err)
	}
	ranked, err := h.sys.Engine.Rank(qn, h.sys.Answers())
	if err != nil {
		h.t.Fatal(err)
	}
	list := make([]graph.NodeID, len(ranked))
	for i, r := range ranked {
		list[i] = r.Node
	}
	best, err := h.sys.AnswerOf(bestDoc)
	if err != nil {
		h.t.Fatal(err)
	}
	v, err := vote.FromRanking(qn, list, best)
	if err != nil {
		h.t.Fatal(err)
	}
	v.Voter = voter
	if err := h.mgr.LogVote(v); err != nil {
		h.t.Fatal(err)
	}
	if err := h.stream.PushQueue(v); err != nil {
		h.t.Fatal(err)
	}
	if err := h.mgr.Commit(); err != nil {
		h.t.Fatal(err)
	}
	return v
}

// pendingVoters projects the stream's pending queue onto voter ids.
func pendingVoters(st interface{ PendingVotes() []vote.Vote }) []string {
	var out []string
	for _, v := range st.PendingVotes() {
		out = append(out, v.Voter)
	}
	return out
}

// TestVoterIdentitySurvivesCrash: attributed and anonymous votes pending
// at crash time recover with their voters intact, in arrival order.
func TestVoterIdentitySurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 100) // batch never fills: all votes stay pending
	h.voteAs(qa.Question{ID: 1, Entities: map[string]int{"email": 1, "outlook": 1}}, 1, "alice")
	h.voteAs(qa.Question{ID: 2, Entities: map[string]int{"send": 1}}, 0, "")
	h.voteAs(qa.Question{ID: 3, Entities: map[string]int{"message": 1, "delay": 1}}, 2, "bob")
	want := []string{"alice", "", "bob"}
	if got := pendingVoters(h.stream); !reflect.DeepEqual(got, want) {
		t.Fatalf("pre-crash voters %v, want %v", got, want)
	}
	wantRank := rankings(t, h.sys)
	// Crash: no Close, no checkpoint.

	h2 := newHarness(t, dir, 100)
	if got := pendingVoters(h2.stream); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered voters %v, want %v", got, want)
	}
	if got := rankings(t, h2.sys); !reflect.DeepEqual(got, wantRank) {
		t.Fatalf("post-recovery rankings differ:\n got %v\nwant %v", got, wantRank)
	}
	if h2.stream.TotalVotes != 3 || h2.stream.Pending() != 3 {
		t.Errorf("recovered counters: total=%d pending=%d", h2.stream.TotalVotes, h2.stream.Pending())
	}
}

// TestVoterRecordsAreVersioned: anonymous votes keep the legacy RecVote
// frame (a log written by anonymous traffic is byte-compatible with
// pre-voter-id builds); attributed votes get RecVote2.
func TestVoterRecordsAreVersioned(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 100)
	h.voteAs(qa.Question{ID: 1, Entities: map[string]int{"email": 1}}, 0, "alice")
	h.voteAs(qa.Question{ID: 2, Entities: map[string]int{"send": 1}}, 0, "")
	if err := h.mgr.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	var types []byte
	err = log.Replay(0, func(seq uint64, typ byte, payload []byte) error {
		if typ == RecVote || typ == RecVote2 {
			types = append(types, typ)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{RecVote2, RecVote}; !reflect.DeepEqual(types, want) {
		t.Fatalf("vote record types %v, want %v", types, want)
	}
}

// TestLegacyWALReplaysAnonymous simulates a WAL written by a pre-voter-id
// build: raw RecVote/RecRequeue frames appended directly to the log (the
// exact bytes an old build would have written) replay cleanly and decode
// as anonymous votes.
func TestLegacyWALReplaysAnonymous(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 100)
	// Materialize a query node through the normal path so the legacy vote
	// has something valid to reference.
	q := qa.Question{ID: 1, Entities: map[string]int{"email": 1, "outlook": 1}}
	qn, err := h.sys.AttachQuestion(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.LogAttach(Attach{Node: qn, Question: q}); err != nil {
		t.Fatal(err)
	}
	ranked, err := h.sys.Engine.Rank(qn, h.sys.Answers())
	if err != nil {
		t.Fatal(err)
	}
	list := make([]graph.NodeID, len(ranked))
	for i, r := range ranked {
		list[i] = r.Node
	}
	best, err := h.sys.AnswerOf(1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vote.FromRanking(qn, list, best)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Append the legacy frames exactly as an old build would: v1 payloads
	// under the v1 record types.
	log, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(RecVote, EncodeVote(v)); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(RecRequeue, EncodeVote(v)); err != nil {
		t.Fatal(err)
	}
	if err := log.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, 100)
	defer h2.mgr.Close()
	got := h2.stream.PendingVotes()
	if len(got) != 2 {
		t.Fatalf("recovered %d pending votes, want 2", len(got))
	}
	for i, pv := range got {
		if pv.Voter != "" {
			t.Errorf("legacy vote %d recovered with voter %q, want anonymous", i, pv.Voter)
		}
		if pv.Query != v.Query || pv.Best != v.Best {
			t.Errorf("legacy vote %d mangled: %+v", i, pv)
		}
	}
}

// TestCheckpointPlusWALCurrentFormat is the acceptance check: a
// checkpoint plus a WAL tail written entirely by the current format
// (attributed and anonymous votes, a flush boundary, then more pending
// votes) restores byte-identical rankings and the exact pending queue.
func TestCheckpointPlusWALCurrentFormat(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 2)
	// Two votes fill the batch: flush, then checkpoint the flushed state.
	h.voteAs(qa.Question{ID: 1, Entities: map[string]int{"email": 1, "outlook": 1}}, 1, "alice")
	h.voteAs(qa.Question{ID: 2, Entities: map[string]int{"email": 1, "outlook": 1}}, 1, "bob")
	rep, err := h.stream.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("batch did not flush")
	}
	if err := h.mgr.LogFlush(rep.Applied); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Checkpoint(h.sys, h.stream.TotalVotes, h.stream.Flushes); err != nil {
		t.Fatal(err)
	}
	// WAL tail past the checkpoint: one attributed, one anonymous vote.
	h.voteAs(qa.Question{ID: 3, Entities: map[string]int{"send": 1}}, 0, "carol")
	h.voteAs(qa.Question{ID: 4, Entities: map[string]int{"message": 1}}, 2, "")
	want := rankings(t, h.sys)
	wantVoters := []string{"carol", ""}
	// Crash.

	h2 := newHarness(t, dir, 2)
	defer h2.mgr.Close()
	if got := rankings(t, h2.sys); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-replay rankings differ:\n got %v\nwant %v", got, want)
	}
	if got := pendingVoters(h2.stream); !reflect.DeepEqual(got, wantVoters) {
		t.Fatalf("post-replay pending voters %v, want %v", got, wantVoters)
	}
	if h2.stream.TotalVotes != 4 || h2.stream.Flushes != 1 || h2.stream.Pending() != 2 {
		t.Errorf("counters: total=%d flushes=%d pending=%d",
			h2.stream.TotalVotes, h2.stream.Flushes, h2.stream.Pending())
	}
}
