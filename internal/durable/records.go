// Package durable is the serving daemon's durability layer: it logs every
// accepted vote (and the query-node attachment it may imply) to a
// write-ahead log before the vote enters the optimization stream, logs the
// applied weight set of every completed flush, checkpoints the full system
// state periodically, and on startup reconstructs the exact pre-crash
// state by loading the latest checkpoint and replaying the WAL tail. See
// DESIGN.md §9 for the protocol.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
)

// WAL record types. The type byte travels in the wal frame, outside the
// payload, so each codec here handles payload bytes only.
const (
	// RecVote is one accepted vote, logged before it enters core.Stream.
	RecVote byte = 1
	// RecAttach is a query-node materialization: the question whose
	// entities were linked into the graph, logged before any vote that
	// references the node.
	RecAttach byte = 2
	// RecWeights is the applied weight set of one completed flush — final
	// absolute weights, so replay needs no solver. A flush that changed
	// nothing still logs an empty RecWeights: it is the batch boundary
	// that clears pending votes and advances the flush counter.
	RecWeights byte = 3
	// RecCheckpoint marks a completed checkpoint and names its WAL
	// position; purely informational (the checkpoint file name is
	// authoritative) but useful for log archaeology.
	RecCheckpoint byte = 4
	// RecRequeue is a vote a cancelled flush returned to the pending
	// queue unprocessed (vote payload, same codec as RecVote). The
	// RecWeights boundary of the cancelled flush already cleared the
	// vote's original record from the replay window, so the requeue run
	// — written immediately after that RecWeights, under the same writer
	// gate — re-establishes it. Replay counts a requeued vote toward
	// TotalVotes only when it did not also see the vote's earlier record
	// (i.e. when no RecWeights preceded it in the replayed tail).
	RecRequeue byte = 5
	// RecRemote is an absolute weight set received from a peer shard's
	// replication push (POST /v1/weights), logged before it is applied so
	// a crash replays it exactly like a local flush's RecWeights. Unlike
	// RecWeights it is not a batch boundary: it never clears pending
	// votes or advances the flush counter, and it carries the source
	// shard plus its per-source sequence so recovery rebuilds the gap
	// detector's table.
	RecRemote byte = 6
	// RecVote2 is the versioned vote record carrying a voter identity in
	// front of the RecVote payload. The manager writes it only for
	// attributed votes (Voter != ""), so anonymous votes stay byte-stable
	// as RecVote and logs written before voter tracking replay unchanged,
	// decoding as anonymous.
	RecVote2 byte = 7
	// RecRequeue2 is RecRequeue with a voter identity (RecVote2 payload,
	// same replay semantics as RecRequeue).
	RecRequeue2 byte = 8
)

// ErrBadRecord wraps every payload decoding failure. Decoders are fuzzed:
// they must return it — never panic — on arbitrary bytes.
var ErrBadRecord = errors.New("durable: malformed record")

// maxDecodeElems bounds decoded element counts so a corrupt length prefix
// cannot demand an absurd allocation before the data runs out.
const maxDecodeElems = 1 << 22

// buf is a bounds-checked little-endian reader over a record payload.
type buf struct {
	b []byte
}

func (r *buf) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, ErrBadRecord
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *buf) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, ErrBadRecord
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *buf) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, ErrBadRecord
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *buf) node() (graph.NodeID, error) {
	v, err := r.u32()
	return graph.NodeID(int32(v)), err
}

func (r *buf) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

// count decodes a uvarint element count and sanity-bounds it against both
// the global cap and the bytes actually remaining (each element costs at
// least minElemSize bytes). Non-minimal varint encodings are rejected so
// that every accepted payload has exactly one byte representation.
func (r *buf) count(minElemSize int) (int, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 || v > maxDecodeElems {
		return 0, ErrBadRecord
	}
	if n > 1 && r.b[n-1] == 0 {
		return 0, ErrBadRecord // non-canonical: trailing zero continuation
	}
	r.b = r.b[n:]
	if minElemSize > 0 && v > uint64(len(r.b)/minElemSize) {
		return 0, ErrBadRecord
	}
	return int(v), nil
}

func (r *buf) str() (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	if len(r.b) < n {
		return "", ErrBadRecord
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *buf) done() error {
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(r.b))
	}
	return nil
}

// out is the matching append-only encoder.
type out struct {
	b []byte
}

func (w *out) u8(v byte)           { w.b = append(w.b, v) }
func (w *out) u32(v uint32)        { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *out) u64(v uint64)        { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *out) node(v graph.NodeID) { w.u32(uint32(int32(v))) }
func (w *out) f64(v float64)       { w.u64(math.Float64bits(v)) }
func (w *out) count(v int)         { w.b = binary.AppendUvarint(w.b, uint64(v)) }
func (w *out) str(s string)        { w.count(len(s)); w.b = append(w.b, s...) }

// EncodeVote serializes a vote payload (the voter identity, if any, is
// dropped — attributed votes use EncodeVote2):
//
//	kind u8 | query i32 | best i32 | weight f64 | nRanked uvarint | ranked i32...
func EncodeVote(v vote.Vote) []byte {
	var w out
	encodeVoteBody(&w, v)
	return w.b
}

// DecodeVote parses an EncodeVote payload. The returned vote is
// structurally decoded but not semantically validated; callers replaying
// it run vote.Validate. Voter is always empty: pre-voter-id records are
// anonymous by definition.
func DecodeVote(p []byte) (vote.Vote, error) {
	r := buf{p}
	v, err := decodeVoteBody(&r)
	if err != nil {
		return v, err
	}
	return v, r.done()
}

// EncodeVote2 serializes a versioned vote payload with a voter identity:
//
//	voter str | kind u8 | query i32 | best i32 | weight f64 | nRanked uvarint | ranked i32...
func EncodeVote2(v vote.Vote) []byte {
	var w out
	w.str(v.Voter)
	encodeVoteBody(&w, v)
	return w.b
}

// DecodeVote2 parses an EncodeVote2 payload.
func DecodeVote2(p []byte) (vote.Vote, error) {
	r := buf{p}
	voter, err := r.str()
	if err != nil {
		return vote.Vote{}, err
	}
	v, err := decodeVoteBody(&r)
	if err != nil {
		return v, err
	}
	v.Voter = voter
	return v, r.done()
}

func encodeVoteBody(w *out, v vote.Vote) {
	w.u8(byte(v.Kind))
	w.node(v.Query)
	w.node(v.Best)
	w.f64(v.Weight)
	w.count(len(v.Ranked))
	for _, a := range v.Ranked {
		w.node(a)
	}
}

func decodeVoteBody(r *buf) (vote.Vote, error) {
	var v vote.Vote
	k, err := r.u8()
	if err != nil {
		return v, err
	}
	v.Kind = vote.Kind(k)
	if v.Query, err = r.node(); err != nil {
		return v, err
	}
	if v.Best, err = r.node(); err != nil {
		return v, err
	}
	if v.Weight, err = r.f64(); err != nil {
		return v, err
	}
	n, err := r.count(4)
	if err != nil {
		return v, err
	}
	v.Ranked = make([]graph.NodeID, n)
	for i := range v.Ranked {
		if v.Ranked[i], err = r.node(); err != nil {
			return v, err
		}
	}
	return v, nil
}

// Attach describes one query-node materialization: the question that was
// attached and the node ID the attachment produced (replay re-attaches
// and verifies it lands on the same ID).
type Attach struct {
	Node     graph.NodeID
	Question qa.Question
}

// EncodeAttach serializes an attach payload:
//
//	node i32 | qid i64 | nEntities uvarint | (name str, count i64)...
//
// Entities are written in sorted-name order so the encoding is
// deterministic; attachment itself sorts too, so order never matters.
func EncodeAttach(a Attach) []byte {
	var w out
	w.node(a.Node)
	w.u64(uint64(int64(a.Question.ID)))
	names := make([]string, 0, len(a.Question.Entities))
	for name := range a.Question.Entities {
		names = append(names, name)
	}
	sort.Strings(names)
	w.count(len(names))
	for _, name := range names {
		w.str(name)
		w.u64(uint64(int64(a.Question.Entities[name])))
	}
	return w.b
}

// DecodeAttach parses an EncodeAttach payload.
func DecodeAttach(p []byte) (Attach, error) {
	r := buf{p}
	var a Attach
	var err error
	if a.Node, err = r.node(); err != nil {
		return a, err
	}
	qid, err := r.u64()
	if err != nil {
		return a, err
	}
	a.Question.ID = int(int64(qid))
	n, err := r.count(2) // at least a 1-byte name length + 1 byte... counts are 8
	if err != nil {
		return a, err
	}
	a.Question.Entities = make(map[string]int, n)
	for i := 0; i < n; i++ {
		name, err := r.str()
		if err != nil {
			return a, err
		}
		c, err := r.u64()
		if err != nil {
			return a, err
		}
		if _, dup := a.Question.Entities[name]; dup {
			return a, fmt.Errorf("%w: duplicate entity %q", ErrBadRecord, name)
		}
		a.Question.Entities[name] = int(int64(c))
	}
	return a, r.done()
}

// EncodeWeights serializes a flush's applied weight set:
//
//	nEdges uvarint | (from i32, to i32, weight f64)...
//
// Weights travel as Float64bits, so replay is bit-exact.
func EncodeWeights(ws []core.WeightChange) []byte {
	var w out
	w.count(len(ws))
	for _, wc := range ws {
		w.node(wc.From)
		w.node(wc.To)
		w.f64(wc.Weight)
	}
	return w.b
}

// DecodeWeights parses an EncodeWeights payload.
func DecodeWeights(p []byte) ([]core.WeightChange, error) {
	r := buf{p}
	n, err := r.count(16)
	if err != nil {
		return nil, err
	}
	ws := make([]core.WeightChange, n)
	for i := range ws {
		if ws[i].From, err = r.node(); err != nil {
			return nil, err
		}
		if ws[i].To, err = r.node(); err != nil {
			return nil, err
		}
		if ws[i].Weight, err = r.f64(); err != nil {
			return nil, err
		}
	}
	return ws, r.done()
}

// Remote is one replicated weight set received from a peer shard.
type Remote struct {
	// Source is the sending shard's index.
	Source uint32
	// Seq is the source's replication sequence for this set.
	Seq uint64
	// Set is the absolute weight set (possibly empty: an empty flush
	// still advances the sequence).
	Set []core.WeightChange
}

// EncodeRemote serializes a replicated weight set:
//
//	source u32 | seq u64 | nEdges uvarint | (from i32, to i32, weight f64)...
func EncodeRemote(rm Remote) []byte {
	var w out
	w.u32(rm.Source)
	w.u64(rm.Seq)
	w.b = append(w.b, EncodeWeights(rm.Set)...)
	return w.b
}

// DecodeRemote parses an EncodeRemote payload.
func DecodeRemote(p []byte) (Remote, error) {
	r := buf{p}
	var rm Remote
	var err error
	if rm.Source, err = r.u32(); err != nil {
		return rm, err
	}
	if rm.Seq, err = r.u64(); err != nil {
		return rm, err
	}
	if rm.Set, err = DecodeWeights(r.b); err != nil {
		return rm, err
	}
	return rm, nil
}

// EncodeCheckpoint serializes a checkpoint marker: the WAL sequence the
// checkpoint covers up to (replay resumes from it).
func EncodeCheckpoint(seq uint64) []byte {
	var w out
	w.u64(seq)
	return w.b
}

// DecodeCheckpoint parses an EncodeCheckpoint payload.
func DecodeCheckpoint(p []byte) (uint64, error) {
	r := buf{p}
	seq, err := r.u64()
	if err != nil {
		return 0, err
	}
	return seq, r.done()
}
