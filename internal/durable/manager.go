package durable

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/telemetry"
	"kgvote/internal/vote"
	"kgvote/internal/wal"
)

// Metrics instruments the durability layer. All fields are nil-safe.
type Metrics struct {
	// CheckpointSeconds times full-state checkpoints (state + meta
	// write, barrier fsyncs, pruning).
	CheckpointSeconds *telemetry.Histogram
	// Checkpoints counts completed checkpoints.
	Checkpoints *telemetry.Counter
	// Commits counts successful WAL commit units.
	Commits *telemetry.Counter
	// ReplayedRecords is the WAL record count replayed by the last
	// recovery (0 on a boot that replayed nothing).
	ReplayedRecords *telemetry.Gauge
	// Wal carries the write-ahead log's own series.
	Wal *wal.Metrics
}

// NewMetrics registers the durability series (WAL included) in reg
// (nil reg = nil metrics).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		CheckpointSeconds: reg.Histogram("kgvote_durable_checkpoint_seconds",
			"Duration of full-state checkpoints.", nil, nil),
		Checkpoints: reg.Counter("kgvote_durable_checkpoints_total",
			"Completed full-state checkpoints.", nil),
		Commits: reg.Counter("kgvote_durable_commits_total",
			"WAL commit units made durable.", nil),
		ReplayedRecords: reg.Gauge("kgvote_durable_replayed_records",
			"WAL records replayed by the most recent recovery.", nil),
		Wal: wal.NewMetrics(reg),
	}
}

// Options configures a Manager.
type Options struct {
	// Dir is the durability root: WAL segments live in Dir/wal, checkpoint
	// files in Dir itself.
	Dir string
	// Fsync is the WAL commit policy.
	Fsync wal.SyncPolicy
	// SyncEvery is the fsync staleness bound under wal.SyncInterval.
	SyncEvery time.Duration
	// SegmentBytes is the WAL segment rotation threshold.
	SegmentBytes int64
	// Retain is how many checkpoints to keep (0 = 2). Older checkpoints
	// and the WAL segments they cover are deleted after each new one.
	Retain int
	// Engine is passed to qa.Load when recovering a checkpoint.
	Engine core.Options
	// Metrics, when non-nil, receives durability (and WAL)
	// instrumentation.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.Retain <= 0 {
		o.Retain = 2
	}
	return o
}

// Recovered is the reconstructed pre-crash state.
type Recovered struct {
	// Sys is the system loaded from the newest valid checkpoint with the
	// WAL tail replayed into it.
	Sys *qa.System
	// Pending are the votes that were accepted but not yet flushed when
	// the process died; the caller restores them into its core.Stream.
	Pending []vote.Vote
	// TotalVotes and Flushes are the stream counters to restore.
	TotalVotes int
	Flushes    int
	// Records is the number of WAL records replayed.
	Records int
	// CheckpointSeq is the WAL sequence the loaded checkpoint covered.
	CheckpointSeq uint64
	// RemoteSeqs is the last applied replication sequence per source
	// shard (sharded serving); nil when the process never received a
	// peer weight set.
	RemoteSeqs map[uint32]uint64
}

// Stats is the durability section of /stats.
type Stats struct {
	Wal               wal.Stats `json:"wal"`
	Checkpoints       int64     `json:"checkpoints"` // taken by this process
	LastCheckpointSeq uint64    `json:"last_checkpoint_seq"`
	ReplayedRecords   int       `json:"replayed_records"` // at last recovery
	FsyncPolicy       string    `json:"fsync_policy"`
	Failed            bool      `json:"failed"`
}

// checkpointMeta is the sidecar written next to each checkpoint state
// file. WalSeq is the replay barrier: every record with seq >= WalSeq must
// be replayed on top of the state file. Votes and Flushes are the stream
// counters as of the barrier (pending votes excluded — replay re-counts
// them).
type checkpointMeta struct {
	WalSeq  uint64 `json:"wal_seq"`
	Votes   int    `json:"votes"`
	Flushes int    `json:"flushes"`
	// Remote is the per-source replication sequence table as of the
	// barrier; RecRemote records past the barrier replay on top of it.
	Remote map[uint32]uint64 `json:"remote,omitempty"`
}

// Manager owns a data directory: a segmented WAL plus rolling full-state
// checkpoints, and the recovery protocol that stitches them back into a
// running system (DESIGN.md §9).
//
// The write path is single-writer, matching the server: LogAttach/LogVote
// before the corresponding engine mutation, LogFlush after a completed
// solve, Commit before acknowledging the client.
type Manager struct {
	opt Options
	log *wal.Log

	mu sync.Mutex
	// pendingCount/firstPendingSeq mirror the stream's un-flushed votes so
	// Checkpoint can place the replay barrier at the first WAL record a
	// future recovery still needs.
	pendingCount    int
	firstPendingSeq uint64
	lastCkptSeq     uint64
	replayed        int
	// remoteSeqs mirrors the last logged replication sequence per source
	// shard, persisted into each checkpoint's meta sidecar.
	remoteSeqs map[uint32]uint64

	checkpoints atomic.Int64
	failed      atomic.Bool
}

// Open opens (creating if needed) the durability directory. Call Recover
// next; if it returns nil state, build a fresh system and Bootstrap it.
func Open(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("durable: empty data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	var walMetrics *wal.Metrics
	if opts.Metrics != nil {
		walMetrics = opts.Metrics.Wal
	}
	log, err := wal.Open(wal.Options{
		Dir:          filepath.Join(opts.Dir, "wal"),
		SegmentBytes: opts.SegmentBytes,
		Sync:         opts.Fsync,
		SyncEvery:    opts.SyncEvery,
		Metrics:      walMetrics,
	})
	if err != nil {
		return nil, err
	}
	return &Manager{opt: opts, log: log}, nil
}

func (m *Manager) statePath(seq uint64) string {
	return filepath.Join(m.opt.Dir, fmt.Sprintf("checkpoint-%020d.json", seq))
}

func (m *Manager) metaPath(seq uint64) string {
	return filepath.Join(m.opt.Dir, fmt.Sprintf("checkpoint-%020d.meta.json", seq))
}

// listCheckpoints returns the barrier sequences of on-disk checkpoints,
// newest first. Only state files are listed; a checkpoint missing its
// meta sidecar is treated as incomplete at load time.
func (m *Manager) listCheckpoints() ([]uint64, error) {
	matches, err := filepath.Glob(filepath.Join(m.opt.Dir, "checkpoint-*.json"))
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	var seqs []uint64
	for _, p := range matches {
		base := filepath.Base(p)
		var seq uint64
		if _, err := fmt.Sscanf(base, "checkpoint-%020d.json", &seq); err != nil {
			continue // meta sidecars and foreign files
		}
		if base != fmt.Sprintf("checkpoint-%020d.json", seq) {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// Recover loads the newest valid checkpoint and replays the WAL tail
// through the system, reproducing the exact pre-crash graph, counters,
// and pending-vote buffer. It returns (nil, nil) for a fresh directory.
// A corrupt newest checkpoint falls back to the previous one (the WAL
// tail is retained far enough back by Checkpoint's pruning).
func (m *Manager) Recover() (*Recovered, error) {
	seqs, err := m.listCheckpoints()
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		if m.log.NextSeq() != 1 {
			return nil, errors.New("durable: WAL has records but no checkpoint exists; data directory is damaged")
		}
		return nil, nil
	}
	var firstErr error
	for _, seq := range seqs {
		rec, err := m.recoverFrom(seq)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("durable: checkpoint %d: %w", seq, err)
			}
			continue
		}
		m.mu.Lock()
		m.lastCkptSeq = seq
		m.replayed = rec.Records
		m.mu.Unlock()
		if mm := m.opt.Metrics; mm != nil {
			mm.ReplayedRecords.Set(int64(rec.Records))
		}
		return rec, nil
	}
	return nil, fmt.Errorf("durable: no loadable checkpoint: %w", firstErr)
}

func (m *Manager) recoverFrom(seq uint64) (*Recovered, error) {
	metaBytes, err := os.ReadFile(m.metaPath(seq))
	if err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}
	var meta checkpointMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}
	if meta.WalSeq != seq {
		return nil, fmt.Errorf("meta names wal seq %d, file names %d", meta.WalSeq, seq)
	}
	f, err := os.Open(m.statePath(seq))
	if err != nil {
		return nil, err
	}
	sys, err := qa.Load(f, m.opt.Engine)
	f.Close()
	if err != nil {
		return nil, err
	}

	rec := &Recovered{Sys: sys, TotalVotes: meta.Votes, Flushes: meta.Flushes, CheckpointSeq: seq}
	remoteSeqs := make(map[uint32]uint64, len(meta.Remote))
	for src, s := range meta.Remote {
		remoteSeqs[src] = s
	}
	var pendingSeqs []uint64
	sawFlush := false
	err = m.log.Replay(seq, func(recSeq uint64, typ byte, payload []byte) error {
		rec.Records++
		switch typ {
		case RecAttach:
			a, err := DecodeAttach(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", recSeq, err)
			}
			// Attachments at or past the barrier may already be inside the
			// checkpoint graph (the barrier sits at the first pending vote,
			// which can postdate its query's attachment): re-attaching
			// those would duplicate the node, so they are verified instead.
			if int(a.Node) < sys.Aug.NumNodes() {
				if !sys.Aug.IsQuery(a.Node) {
					return fmt.Errorf("seq %d: attach record names node %d which is not a query node", recSeq, a.Node)
				}
				return nil
			}
			qn, err := sys.AttachQuestion(a.Question)
			if err != nil {
				return fmt.Errorf("seq %d: replay attach: %w", recSeq, err)
			}
			if qn != a.Node {
				return fmt.Errorf("seq %d: replayed attachment landed on node %d, log says %d", recSeq, qn, a.Node)
			}
			return nil
		case RecVote, RecVote2:
			v, err := decodeVoteRecord(typ, payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", recSeq, err)
			}
			if err := v.Validate(); err != nil {
				return fmt.Errorf("seq %d: replayed vote invalid: %w", recSeq, err)
			}
			rec.Pending = append(rec.Pending, v)
			pendingSeqs = append(pendingSeqs, recSeq)
			rec.TotalVotes++
			return nil
		case RecWeights:
			ws, err := DecodeWeights(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", recSeq, err)
			}
			// Weight records carry absolute values, so re-applying one that
			// the checkpoint already covers is harmless.
			if err := sys.Engine.ApplyWeightSet(ws); err != nil {
				return fmt.Errorf("seq %d: %w", recSeq, err)
			}
			rec.Pending = rec.Pending[:0]
			pendingSeqs = pendingSeqs[:0]
			rec.Flushes++
			sawFlush = true
			return nil
		case RecRequeue, RecRequeue2:
			v, err := decodeVoteRecord(typ, payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", recSeq, err)
			}
			if err := v.Validate(); err != nil {
				return fmt.Errorf("seq %d: requeued vote invalid: %w", recSeq, err)
			}
			rec.Pending = append(rec.Pending, v)
			pendingSeqs = append(pendingSeqs, recSeq)
			// Requeue runs directly follow their flush boundary. If this
			// replay saw that RecWeights it also saw — and counted — the
			// vote's original record (checkpoint barriers never split a
			// batch: they sit at or before the batch's first pending record,
			// or at the requeue run that follows it). Only a replay starting
			// inside the requeue run itself still needs to count the vote.
			if !sawFlush {
				rec.TotalVotes++
			}
			return nil
		case RecRemote:
			rm, err := DecodeRemote(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", recSeq, err)
			}
			// Absolute values: re-applying a set the checkpoint already
			// covers is harmless. Remote sets are not batch boundaries, so
			// pending votes stay pending.
			if len(rm.Set) > 0 {
				if err := sys.Engine.ApplyWeightSet(rm.Set); err != nil {
					return fmt.Errorf("seq %d: %w", recSeq, err)
				}
			}
			if rm.Seq > remoteSeqs[rm.Source] {
				remoteSeqs[rm.Source] = rm.Seq
			}
			return nil
		case RecCheckpoint:
			if _, err := DecodeCheckpoint(payload); err != nil {
				return fmt.Errorf("seq %d: %w", recSeq, err)
			}
			return nil
		default:
			return fmt.Errorf("seq %d: unknown record type %d", recSeq, typ)
		}
	})
	if err != nil {
		return nil, err
	}
	if len(remoteSeqs) > 0 {
		rec.RemoteSeqs = remoteSeqs
	}
	m.mu.Lock()
	m.pendingCount = len(rec.Pending)
	if len(pendingSeqs) > 0 {
		m.firstPendingSeq = pendingSeqs[0]
	}
	m.remoteSeqs = remoteSeqs
	m.mu.Unlock()
	return rec, nil
}

// Bootstrap writes the initial checkpoint for a freshly built system, so
// the invariant "every WAL record is covered by some checkpoint's replay
// window" holds from the first vote.
func (m *Manager) Bootstrap(sys *qa.System) error {
	return m.Checkpoint(sys, 0, 0)
}

// errFailed reports writes attempted after a durability failure.
var errFailed = errors.New("durable: log is failed; restart the daemon to recover")

// LogAttach appends a query-attachment record. Call it at materialization
// time, before any vote referencing the node is logged.
func (m *Manager) LogAttach(a Attach) error {
	return m.append(RecAttach, EncodeAttach(a), false)
}

// decodeVoteRecord dispatches on the vote record version: RecVote and
// RecRequeue payloads predate voter identities and decode as anonymous;
// RecVote2 and RecRequeue2 carry the voter in front of the same body.
func decodeVoteRecord(typ byte, payload []byte) (vote.Vote, error) {
	if typ == RecVote2 || typ == RecRequeue2 {
		return DecodeVote2(payload)
	}
	return DecodeVote(payload)
}

// LogVote appends an accepted vote, before it enters the stream.
// Attributed votes get the versioned record; anonymous votes keep the
// original one, so a log written entirely by anonymous traffic is
// byte-identical to what a pre-voter-id build would write.
func (m *Manager) LogVote(v vote.Vote) error {
	if v.Voter != "" {
		return m.append(RecVote2, EncodeVote2(v), true)
	}
	return m.append(RecVote, EncodeVote(v), true)
}

// LogVoteCtx is LogVote with a final cancellation point: a context already
// cancelled on entry returns its error before anything is appended, so an
// expired request deadline never mutates durable state. Once the record is
// in the log the vote is committed to — later stages of the request must
// not abandon it (the server's vote path stops honoring the context here).
func (m *Manager) LogVoteCtx(ctx context.Context, v vote.Vote) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("durable: vote not logged: %w", err)
		}
	}
	return m.LogVote(v)
}

// LogAttachCtx is LogAttach with the same pre-append cancellation point as
// LogVoteCtx.
func (m *Manager) LogAttachCtx(ctx context.Context, a Attach) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("durable: attach not logged: %w", err)
		}
	}
	return m.LogAttach(a)
}

// LogFlush appends a completed flush's applied weight set (empty sets
// included: the record is the batch boundary that resets pending votes).
func (m *Manager) LogFlush(applied []core.WeightChange) error {
	if err := m.append(RecWeights, EncodeWeights(applied), false); err != nil {
		return err
	}
	m.mu.Lock()
	m.pendingCount = 0
	m.firstPendingSeq = 0
	m.mu.Unlock()
	return nil
}

// LogRemote appends a peer shard's replicated weight set, before it is
// applied to the engine (WAL-first, like votes). The per-source sequence
// table it maintains is persisted in each checkpoint's meta sidecar and
// rebuilt on replay, so the gap detector survives restarts.
func (m *Manager) LogRemote(rm Remote) error {
	if err := m.append(RecRemote, EncodeRemote(rm), false); err != nil {
		return err
	}
	m.mu.Lock()
	if m.remoteSeqs == nil {
		m.remoteSeqs = make(map[uint32]uint64)
	}
	if rm.Seq > m.remoteSeqs[rm.Source] {
		m.remoteSeqs[rm.Source] = rm.Seq
	}
	m.mu.Unlock()
	return nil
}

// LogRequeue appends a vote that a cancelled flush returned to the
// pending queue unprocessed. The preceding LogFlush erased the vote's
// original record from the replay window, so without this record a crash
// before the next flush would lose it. Call it immediately after
// LogFlush, under the same writer gate, once per requeued vote — replay
// relies on requeue runs directly following their flush boundary.
func (m *Manager) LogRequeue(v vote.Vote) error {
	if v.Voter != "" {
		return m.append(RecRequeue2, EncodeVote2(v), true)
	}
	return m.append(RecRequeue, EncodeVote(v), true)
}

func (m *Manager) append(typ byte, payload []byte, isVote bool) error {
	if m.failed.Load() {
		return errFailed
	}
	seq, err := m.log.Append(typ, payload)
	if err != nil {
		m.failed.Store(true)
		return err
	}
	if isVote {
		m.mu.Lock()
		if m.pendingCount == 0 {
			m.firstPendingSeq = seq
		}
		m.pendingCount++
		m.mu.Unlock()
	}
	return nil
}

// Fail poisons the manager: every subsequent write is rejected until the
// process restarts and recovers from disk. Callers use it when in-memory
// state and the log are known to have diverged (e.g. a mutation failed
// after its record was already appended), so that recovery — which trusts
// the log — becomes the only way forward.
func (m *Manager) Fail() {
	m.failed.Store(true)
}

// Commit makes all appended records durable per the fsync policy. Call it
// once per request, before acknowledging the client.
func (m *Manager) Commit() error {
	if m.failed.Load() {
		return errFailed
	}
	if err := m.log.Commit(); err != nil {
		m.failed.Store(true)
		return err
	}
	if mm := m.opt.Metrics; mm != nil {
		mm.Commits.Inc()
	}
	return nil
}

// Checkpoint atomically persists the full system state, then prunes
// checkpoints beyond the retention count and WAL segments older than the
// oldest retained barrier. totalVotes and flushes are the stream counters
// at call time; the barrier lands at the first still-pending vote record
// so those votes replay from the WAL on recovery.
func (m *Manager) Checkpoint(sys *qa.System, totalVotes, flushes int) error {
	if m.failed.Load() {
		return errFailed
	}
	if mm := m.opt.Metrics; mm != nil {
		defer mm.CheckpointSeconds.Start()()
	}
	m.mu.Lock()
	barrier := m.log.NextSeq()
	votesAtBarrier := totalVotes - m.pendingCount
	if m.pendingCount > 0 && m.firstPendingSeq > 0 {
		barrier = m.firstPendingSeq
	}
	var remote map[uint32]uint64
	if len(m.remoteSeqs) > 0 {
		remote = make(map[uint32]uint64, len(m.remoteSeqs))
		for src, s := range m.remoteSeqs {
			remote[src] = s
		}
	}
	m.mu.Unlock()
	if votesAtBarrier < 0 {
		votesAtBarrier = 0
	}

	// Everything below the barrier must be durable before the checkpoint
	// may supersede it.
	if err := m.log.Sync(); err != nil {
		m.failed.Store(true)
		return err
	}
	if err := writeFileAtomic(m.statePath(barrier), func(f *os.File) error {
		return sys.Save(f)
	}); err != nil {
		return fmt.Errorf("durable: checkpoint state: %w", err)
	}
	meta := checkpointMeta{WalSeq: barrier, Votes: votesAtBarrier, Flushes: flushes, Remote: remote}
	if err := writeFileAtomic(m.metaPath(barrier), func(f *os.File) error {
		b, err := json.Marshal(meta)
		if err != nil {
			return err
		}
		_, err = f.Write(append(b, '\n'))
		return err
	}); err != nil {
		return fmt.Errorf("durable: checkpoint meta: %w", err)
	}
	syncDir(m.opt.Dir)

	if _, err := m.log.Append(RecCheckpoint, EncodeCheckpoint(barrier)); err != nil {
		m.failed.Store(true)
		return err
	}
	if err := m.log.Sync(); err != nil {
		m.failed.Store(true)
		return err
	}

	m.mu.Lock()
	m.lastCkptSeq = barrier
	m.mu.Unlock()
	m.checkpoints.Add(1)
	if mm := m.opt.Metrics; mm != nil {
		mm.Checkpoints.Inc()
	}
	return m.prune()
}

// prune deletes checkpoints beyond Retain and WAL segments wholly below
// the oldest retained barrier.
func (m *Manager) prune() error {
	seqs, err := m.listCheckpoints()
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		return nil
	}
	keep := seqs
	if len(keep) > m.opt.Retain {
		keep = seqs[:m.opt.Retain]
		for _, seq := range seqs[m.opt.Retain:] {
			if err := os.Remove(m.statePath(seq)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("durable: prune: %w", err)
			}
			if err := os.Remove(m.metaPath(seq)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("durable: prune: %w", err)
			}
		}
	}
	oldest := keep[len(keep)-1]
	return m.log.TruncateBefore(oldest)
}

// Stats snapshots durability counters for /stats.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	last, replayed := m.lastCkptSeq, m.replayed
	m.mu.Unlock()
	return Stats{
		Wal:               m.log.Stats(),
		Checkpoints:       m.checkpoints.Load(),
		LastCheckpointSeq: last,
		ReplayedRecords:   replayed,
		FsyncPolicy:       m.opt.Fsync.String(),
		Failed:            m.failed.Load(),
	}
}

// Close flushes and closes the WAL. It does not checkpoint; callers
// wanting checkpoint-on-shutdown do that first.
func (m *Manager) Close() error {
	return m.log.Close()
}

// writeFileAtomic writes via temp file + fsync + rename so a crash never
// leaves a half-written checkpoint under the final name.
func writeFileAtomic(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// syncDir best-effort fsyncs a directory so renames inside it survive a
// machine crash.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
