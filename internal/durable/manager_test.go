package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
	"kgvote/internal/wal"
)

var engineOpts = core.Options{K: 3, L: 4}

func testCorpus() *qa.Corpus {
	return &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
		{ID: 2, Title: "Message delivery delays", Entities: map[string]int{"message": 2, "send": 2, "delay": 1}},
	}}
}

func buildSys(t *testing.T) *qa.System {
	t.Helper()
	sys, err := qa.Build(testCorpus(), engineOpts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// harness couples a system, a stream, and a manager the way the server
// does: log attach at materialization, log vote before push, log flush
// after a solve, commit per request.
type harness struct {
	t      *testing.T
	sys    *qa.System
	stream *core.Stream
	mgr    *Manager
}

func newHarness(t *testing.T, dir string, batch int) *harness {
	t.Helper()
	mgr, err := Open(Options{Dir: dir, Fsync: wal.SyncAlways, Engine: engineOpts})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := mgr.Recover()
	if err != nil {
		t.Fatal(err)
	}
	var sys *qa.System
	if rec == nil {
		sys = buildSys(t)
		if err := mgr.Bootstrap(sys); err != nil {
			t.Fatal(err)
		}
	} else {
		sys = rec.Sys
	}
	st, err := sys.Engine.NewStream(batch, core.StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		if err := st.Restore(rec.Pending, rec.TotalVotes, rec.Flushes); err != nil {
			t.Fatal(err)
		}
	}
	return &harness{t: t, sys: sys, stream: st, mgr: mgr}
}

// voteOn asks question q, logs + pushes a vote for bestDoc, exactly like
// the server's /ask + /vote pair.
func (h *harness) voteOn(q qa.Question, bestDoc int) {
	h.t.Helper()
	qn, err := h.sys.AttachQuestion(q)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.mgr.LogAttach(Attach{Node: qn, Question: q}); err != nil {
		h.t.Fatal(err)
	}
	ranked, err := h.sys.Engine.Rank(qn, h.sys.Answers())
	if err != nil {
		h.t.Fatal(err)
	}
	list := make([]graph.NodeID, len(ranked))
	for i, r := range ranked {
		list[i] = r.Node
	}
	best, err := h.sys.AnswerOf(bestDoc)
	if err != nil {
		h.t.Fatal(err)
	}
	v, err := vote.FromRanking(qn, list, best)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.mgr.LogVote(v); err != nil {
		h.t.Fatal(err)
	}
	rep, err := h.stream.Push(v)
	if err != nil {
		h.t.Fatal(err)
	}
	if rep != nil {
		if err := h.mgr.LogFlush(rep.Applied); err != nil {
			h.t.Fatal(err)
		}
	}
	if err := h.mgr.Commit(); err != nil {
		h.t.Fatal(err)
	}
}

// rankings returns the doc-ID ranking plus scores for a fixed query set.
func rankings(t *testing.T, sys *qa.System) []string {
	t.Helper()
	queries := []qa.Question{
		{ID: 100, Entities: map[string]int{"email": 1, "send": 1}},
		{ID: 101, Entities: map[string]int{"outlook": 1, "account": 1}},
		{ID: 102, Entities: map[string]int{"message": 1, "delay": 1}},
	}
	var out []string
	for _, q := range queries {
		_, ranked, err := sys.RankSnapshot(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range ranked {
			out = append(out, fmt.Sprintf("%d:%d:%x", q.ID, sys.DocOf(r.Node), r.Score))
		}
	}
	return out
}

func TestRecoverFreshDirIsNil(t *testing.T) {
	mgr, err := Open(Options{Dir: t.TempDir(), Engine: engineOpts})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	rec, err := mgr.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
}

// TestCrashRecoveryByteIdentical is the core durability guarantee: kill
// the process without any graceful shutdown (simulated by abandoning the
// manager), recover in a new one, and get byte-identical rankings plus
// identical stream counters.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 2)
	// 5 votes at batch 2: two flushes plus one pending vote at crash time.
	for i := 0; i < 5; i++ {
		h.voteOn(qa.Question{ID: i, Entities: map[string]int{"email": 1, "outlook": 1}}, 1)
	}
	if h.stream.Flushes != 2 || h.stream.Pending() != 1 {
		t.Fatalf("pre-crash: flushes=%d pending=%d", h.stream.Flushes, h.stream.Pending())
	}
	want := rankings(t, h.sys)
	wantNodes := h.sys.Aug.NumNodes()
	// No Close, no checkpoint: the process just dies.

	h2 := newHarness(t, dir, 2)
	if got := rankings(t, h2.sys); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery rankings differ:\n got %v\nwant %v", got, want)
	}
	if h2.sys.Aug.NumNodes() != wantNodes {
		t.Errorf("node count: recovered %d, pre-crash %d", h2.sys.Aug.NumNodes(), wantNodes)
	}
	if h2.stream.TotalVotes != 5 || h2.stream.Flushes != 2 || h2.stream.Pending() != 1 {
		t.Errorf("recovered counters: total=%d flushes=%d pending=%d",
			h2.stream.TotalVotes, h2.stream.Flushes, h2.stream.Pending())
	}
	// The recovered system keeps working: one more vote completes the batch.
	h2.voteOn(qa.Question{ID: 9, Entities: map[string]int{"send": 1}}, 0)
	if h2.stream.Flushes != 3 || h2.stream.Pending() != 0 {
		t.Errorf("post-recovery flush: flushes=%d pending=%d", h2.stream.Flushes, h2.stream.Pending())
	}
}

func TestCheckpointTruncatesWALAndRecovers(t *testing.T) {
	dir := t.TempDir()
	mgrOpts := Options{Dir: dir, Fsync: wal.SyncAlways, Engine: engineOpts, SegmentBytes: 512, Retain: 1}
	mgr, err := Open(mgrOpts)
	if err != nil {
		t.Fatal(err)
	}
	sys := buildSys(t)
	if err := mgr.Bootstrap(sys); err != nil {
		t.Fatal(err)
	}
	st, _ := sys.Engine.NewStream(2, core.StreamMulti)
	h := &harness{t: t, sys: sys, stream: st, mgr: mgr}
	for i := 0; i < 4; i++ {
		h.voteOn(qa.Question{ID: i, Entities: map[string]int{"email": 1, "message": 1}}, 2)
	}
	preSegs := mgr.Stats().Wal.Segments
	if err := mgr.Checkpoint(sys, st.TotalVotes, st.Flushes); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().Wal.Segments; got >= preSegs {
		t.Errorf("checkpoint did not truncate WAL: %d -> %d segments", preSegs, got)
	}
	want := rankings(t, sys)
	// Crash after checkpoint.
	h2 := newHarness(t, dir, 2)
	if got := rankings(t, h2.sys); !reflect.DeepEqual(got, want) {
		t.Fatalf("rankings after checkpoint recovery differ")
	}
	if h2.stream.TotalVotes != 4 || h2.stream.Flushes != 2 {
		t.Errorf("counters: total=%d flushes=%d", h2.stream.TotalVotes, h2.stream.Flushes)
	}
	// Only Retain=1 checkpoint (state+meta) remains.
	states, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.json"))
	if len(states) != 2 { // state + meta
		t.Errorf("retained checkpoint files: %v", states)
	}
}

// TestCheckpointWithPendingVotesKeepsThem places the barrier before the
// pending votes' records so they survive recovery even though WAL
// segments were pruned.
func TestCheckpointWithPendingVotesKeepsThem(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 10) // large batch: nothing flushes
	for i := 0; i < 3; i++ {
		h.voteOn(qa.Question{ID: i, Entities: map[string]int{"email": 1}}, 1)
	}
	if err := h.mgr.Checkpoint(h.sys, h.stream.TotalVotes, h.stream.Flushes); err != nil {
		t.Fatal(err)
	}
	h2 := newHarness(t, dir, 10)
	if h2.stream.Pending() != 3 || h2.stream.TotalVotes != 3 {
		t.Fatalf("pending votes lost across checkpoint: pending=%d total=%d",
			h2.stream.Pending(), h2.stream.TotalVotes)
	}
}

// TestRequeueRecordsSurviveReplay simulates a cancelled single-vote flush
// the way the server logs one: the RecWeights boundary lands, then the
// unprocessed tail is re-logged as RecRequeue records. Replay must keep
// those votes pending without double-counting TotalVotes — both when the
// replay window spans the whole sequence and when a checkpoint places the
// barrier inside the requeue run itself.
func TestRequeueRecordsSurviveReplay(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 10) // large batch: nothing auto-flushes
	for i := 0; i < 3; i++ {
		h.voteOn(qa.Question{ID: i, Entities: map[string]int{"email": 1}}, 1)
	}
	// The flush consumed only the first vote before cancellation; the
	// other two are requeued behind the batch boundary.
	pending := h.stream.PendingVotes()
	if err := h.mgr.LogFlush(nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range pending[1:] {
		if err := h.mgr.LogRequeue(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.mgr.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash with the barrier before the original vote records: replay sees
	// vote, flush, and requeue records and must count each vote once.
	h2 := newHarness(t, dir, 10)
	if h2.stream.Pending() != 2 || h2.stream.TotalVotes != 3 || h2.stream.Flushes != 1 {
		t.Fatalf("recovered pending=%d total=%d flushes=%d, want 2/3/1",
			h2.stream.Pending(), h2.stream.TotalVotes, h2.stream.Flushes)
	}

	// Checkpoint with the requeued votes pending: the barrier lands at the
	// first RecRequeue, so a second recovery replays only the requeue run
	// and must count those votes exactly once.
	if err := h2.mgr.Checkpoint(h2.sys, h2.stream.TotalVotes, h2.stream.Flushes); err != nil {
		t.Fatal(err)
	}
	h3 := newHarness(t, dir, 10)
	if h3.stream.Pending() != 2 || h3.stream.TotalVotes != 3 || h3.stream.Flushes != 1 {
		t.Fatalf("post-checkpoint recovery pending=%d total=%d flushes=%d, want 2/3/1",
			h3.stream.Pending(), h3.stream.TotalVotes, h3.stream.Flushes)
	}
	if !reflect.DeepEqual(h3.stream.PendingVotes(), pending[1:]) {
		t.Fatalf("recovered pending votes differ:\n got %+v\nwant %+v", h3.stream.PendingVotes(), pending[1:])
	}
}

// TestTornTailRecovery half-writes the final WAL record and proves
// recovery truncates it and lands on the state as of the previous record.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 10)
	h.voteOn(qa.Question{ID: 0, Entities: map[string]int{"email": 1}}, 1)
	h.voteOn(qa.Question{ID: 1, Entities: map[string]int{"outlook": 1}}, 1)
	h.mgr.Close()

	// Artificially tear the last record in half.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	last := segs[len(segs)-1]
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, b[:len(b)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, 10)
	// The torn record was the second vote: recovery keeps vote 0 and the
	// second question's attachment (logged whole), drops the half vote.
	if h2.stream.Pending() != 1 || h2.stream.TotalVotes != 1 {
		t.Fatalf("after torn tail: pending=%d total=%d, want 1/1",
			h2.stream.Pending(), h2.stream.TotalVotes)
	}
	if got := h2.mgr.Stats().Wal.TornTruncated; got != 1 {
		t.Errorf("TornTruncated = %d", got)
	}
	// Still writable after repair.
	h2.voteOn(qa.Question{ID: 2, Entities: map[string]int{"send": 1}}, 0)
	if h2.stream.Pending() != 2 {
		t.Errorf("pending after repair = %d", h2.stream.Pending())
	}
}

// TestCorruptNewestCheckpointFallsBack damages the latest checkpoint and
// expects recovery from the previous one plus a longer WAL replay.
func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 2)
	for i := 0; i < 2; i++ {
		h.voteOn(qa.Question{ID: i, Entities: map[string]int{"email": 1, "delay": 1}}, 2)
	}
	if err := h.mgr.Checkpoint(h.sys, h.stream.TotalVotes, h.stream.Flushes); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		h.voteOn(qa.Question{ID: i, Entities: map[string]int{"email": 1, "delay": 1}}, 2)
	}
	if err := h.mgr.Checkpoint(h.sys, h.stream.TotalVotes, h.stream.Flushes); err != nil {
		t.Fatal(err)
	}
	want := rankings(t, h.sys)

	seqs, err := h.mgr.listCheckpoints()
	if err != nil || len(seqs) < 2 {
		t.Fatalf("checkpoints: %v %v", seqs, err)
	}
	if err := os.WriteFile(h.mgr.statePath(seqs[0]), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, 2)
	if got := rankings(t, h2.sys); !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback recovery rankings differ")
	}
	if h2.stream.TotalVotes != 4 || h2.stream.Flushes != 2 {
		t.Errorf("fallback counters: total=%d flushes=%d", h2.stream.TotalVotes, h2.stream.Flushes)
	}
}

func TestWALWithoutCheckpointIsDamaged(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 2)
	h.voteOn(qa.Question{ID: 0, Entities: map[string]int{"email": 1}}, 1)
	h.mgr.Close()
	for _, p := range []string{"checkpoint-*.json"} {
		matches, _ := filepath.Glob(filepath.Join(dir, p))
		for _, f := range matches {
			os.Remove(f)
		}
	}
	mgr, err := Open(Options{Dir: dir, Engine: engineOpts})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, err := mgr.Recover(); err == nil {
		t.Fatal("WAL without checkpoint should be reported as damaged")
	}
}

func TestFailedManagerRejectsWrites(t *testing.T) {
	mgr, err := Open(Options{Dir: t.TempDir(), Engine: engineOpts})
	if err != nil {
		t.Fatal(err)
	}
	mgr.failed.Store(true)
	if err := mgr.LogVote(vote.Vote{}); err == nil {
		t.Error("failed manager accepted LogVote")
	}
	if err := mgr.Commit(); err == nil {
		t.Error("failed manager accepted Commit")
	}
	if !mgr.Stats().Failed {
		t.Error("Stats.Failed not set")
	}
}

func TestRecordRoundTrips(t *testing.T) {
	v := vote.Vote{Kind: vote.Negative, Query: 12, Ranked: []graph.NodeID{5, 9, 7}, Best: 9, Weight: 0.25}
	got, err := DecodeVote(EncodeVote(v))
	if err != nil || !reflect.DeepEqual(got, v) {
		t.Errorf("vote round trip: %+v, %v", got, err)
	}

	a := Attach{Node: 42, Question: qa.Question{ID: -1, Entities: map[string]int{"email": 2, "outbox": 1}}}
	gotA, err := DecodeAttach(EncodeAttach(a))
	if err != nil || gotA.Node != a.Node || gotA.Question.ID != a.Question.ID ||
		!reflect.DeepEqual(gotA.Question.Entities, a.Question.Entities) {
		t.Errorf("attach round trip: %+v, %v", gotA, err)
	}

	ws := []core.WeightChange{{From: 1, To: 2, Weight: 0.123456789}, {From: 3, To: 4, Weight: 1}}
	gotW, err := DecodeWeights(EncodeWeights(ws))
	if err != nil || !reflect.DeepEqual(gotW, ws) {
		t.Errorf("weights round trip: %+v, %v", gotW, err)
	}
	if gotE, err := DecodeWeights(EncodeWeights(nil)); err != nil || len(gotE) != 0 {
		t.Errorf("empty weights round trip: %v, %v", gotE, err)
	}

	seq, err := DecodeCheckpoint(EncodeCheckpoint(777))
	if err != nil || seq != 777 {
		t.Errorf("checkpoint round trip: %d, %v", seq, err)
	}

	rm := Remote{Source: 2, Seq: 9, Set: []core.WeightChange{{From: 0, To: 5, Weight: 0.75}}}
	gotR, err := DecodeRemote(EncodeRemote(rm))
	if err != nil || !reflect.DeepEqual(gotR, rm) {
		t.Errorf("remote round trip: %+v, %v", gotR, err)
	}
	if gotRE, err := DecodeRemote(EncodeRemote(Remote{Source: 1, Seq: 1})); err != nil || len(gotRE.Set) != 0 {
		t.Errorf("empty remote round trip: %+v, %v", gotRE, err)
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	v := EncodeVote(vote.Vote{Kind: vote.Positive, Query: 1, Ranked: []graph.NodeID{2}, Best: 2})
	for i := 0; i < len(v); i++ {
		if _, err := DecodeVote(v[:i]); err == nil {
			t.Fatalf("DecodeVote accepted %d-byte prefix", i)
		}
	}
	a := EncodeAttach(Attach{Node: 3, Question: qa.Question{Entities: map[string]int{"x": 1}}})
	for i := 0; i < len(a); i++ {
		if _, err := DecodeAttach(a[:i]); err == nil {
			t.Fatalf("DecodeAttach accepted %d-byte prefix", i)
		}
	}
	w := EncodeWeights([]core.WeightChange{{From: 1, To: 2, Weight: 3}})
	for i := 0; i < len(w); i++ {
		if _, err := DecodeWeights(w[:i]); err == nil {
			t.Fatalf("DecodeWeights accepted %d-byte prefix", i)
		}
	}
	r := EncodeRemote(Remote{Source: 1, Seq: 2, Set: []core.WeightChange{{From: 1, To: 2, Weight: 3}}})
	for i := 0; i < len(r); i++ {
		if _, err := DecodeRemote(r[:i]); err == nil {
			t.Fatalf("DecodeRemote accepted %d-byte prefix", i)
		}
	}
	// Trailing garbage is also rejected.
	if _, err := DecodeVote(append(v, 0)); err == nil {
		t.Error("DecodeVote accepted trailing bytes")
	}
	if _, err := DecodeRemote(append(r, 0)); err == nil {
		t.Error("DecodeRemote accepted trailing bytes")
	}
}

// TestRemoteRecordsSurviveReplay logs a peer's replicated weight set
// (RecRemote), crashes, and expects replay to re-apply it bit-exactly
// and rebuild the per-source sequence table — then checkpoints and
// verifies the table also survives WAL truncation via checkpoint meta.
func TestRemoteRecordsSurviveReplay(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, 1)
	// Some local traffic first so the remote set lands on a non-pristine
	// graph, like a real peer push would.
	h.voteOn(qa.Question{ID: 0, Entities: map[string]int{"email": 1, "send": 1}}, 2)

	boundary := graph.NodeID(h.sys.Aug.Entities + len(h.sys.Answers()))
	set := h.sys.Engine.Serving().ExportWeights(boundary)
	if len(set) == 0 {
		t.Fatal("no replicable edges to push")
	}
	set[0].Weight *= 0.5
	if err := h.mgr.LogRemote(Remote{Source: 2, Seq: 1, Set: set}); err != nil {
		t.Fatal(err)
	}
	if err := h.sys.Engine.ApplyWeightSet(set); err != nil {
		t.Fatal(err)
	}
	// An empty set still advances the source's sequence (empty flush).
	if err := h.mgr.LogRemote(Remote{Source: 2, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Commit(); err != nil {
		t.Fatal(err)
	}
	want := rankings(t, h.sys)
	h.mgr.Close() // crash: no checkpoint

	mgr2, err := Open(Options{Dir: dir, Fsync: wal.SyncAlways, Engine: engineOpts})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := mgr2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("no recovered state")
	}
	if got := rec.RemoteSeqs[2]; got != 2 {
		t.Fatalf("recovered remote seq for source 2 = %d, want 2 (table: %v)", got, rec.RemoteSeqs)
	}
	if got := rankings(t, rec.Sys); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed remote set diverged:\nwant %v\ngot  %v", want, got)
	}
	if err := mgr2.Checkpoint(rec.Sys, rec.TotalVotes, rec.Flushes); err != nil {
		t.Fatal(err)
	}
	mgr2.Close()

	mgr3, err := Open(Options{Dir: dir, Fsync: wal.SyncAlways, Engine: engineOpts})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr3.Close()
	rec3, err := mgr3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := rec3.RemoteSeqs[2]; got != 2 {
		t.Fatalf("post-checkpoint remote seq for source 2 = %d, want 2", got)
	}
	if got := rankings(t, rec3.Sys); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-checkpoint remote state diverged:\nwant %v\ngot  %v", want, got)
	}
}
