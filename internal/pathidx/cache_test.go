package pathidx

import (
	"reflect"
	"sync"
	"testing"

	"kgvote/internal/graph"
)

// cacheGraph builds q→a→x, q→b→y, a→y: two answers with a shared
// intermediate so x and y have distinct walk sets.
func cacheGraph(t *testing.T) (*graph.Graph, graph.NodeID, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New(0)
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x := g.AddNode("x")
	y := g.AddNode("y")
	g.MustSetEdge(q, a, 0.6)
	g.MustSetEdge(q, b, 0.4)
	g.MustSetEdge(a, x, 0.8)
	g.MustSetEdge(a, y, 0.2)
	g.MustSetEdge(b, y, 1)
	return g, q, x, y
}

func TestEnumCacheValidatesOptions(t *testing.T) {
	g, _, _, _ := cacheGraph(t)
	if _, err := NewEnumCache(g, Options{L: 3, C: 2}); err == nil {
		t.Errorf("invalid options should be rejected")
	}
}

func TestEnumCacheSubsetHitAndWidening(t *testing.T) {
	g, q, x, y := cacheGraph(t)
	opt := Options{L: 4, C: 0.15}
	c, err := NewEnumCache(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := EnumerateCalls()

	full, err := c.Paths(q, []graph.NodeID{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 0 || m != 1 {
		t.Fatalf("first request: hits=%d misses=%d, want 0/1", h, m)
	}
	// A subset of the cached targets is a hit and returns the shared map.
	sub, err := c.Paths(q, []graph.NodeID{x})
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 1 {
		t.Fatalf("subset request: hits=%d misses=%d, want 1/1", h, m)
	}
	if !reflect.DeepEqual(sub[x], full[x]) {
		t.Errorf("subset request returned different walks for x")
	}
	// Cached walks are identical to a direct enumeration.
	direct, err := Enumerate(g, q, []graph.NodeID{x, y}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, direct) {
		t.Errorf("cached walks differ from direct Enumerate")
	}
	// A wider target set re-enumerates with the union and keeps covering
	// the earlier targets.
	wide, err := c.Paths(q, []graph.NodeID{q})
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 2 {
		t.Fatalf("widening request: hits=%d misses=%d, want 1/2", h, m)
	}
	if !reflect.DeepEqual(wide[x], direct[x]) || !reflect.DeepEqual(wide[y], direct[y]) {
		t.Errorf("widened entry lost earlier targets' walks")
	}
	if _, err := c.Paths(q, []graph.NodeID{x, y, q}); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 2 || m != 2 {
		t.Fatalf("covered union request: hits=%d misses=%d, want 2/2", h, m)
	}
	// Initial fill + widening, plus this test's own direct comparison call.
	if got := EnumerateCalls() - before; got != 3 {
		t.Errorf("Enumerate ran %d times, want 3", got)
	}
}

func TestEnumCacheConcurrentSingleflight(t *testing.T) {
	g, q, x, y := cacheGraph(t)
	c, err := NewEnumCache(g, Options{L: 4, C: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	before := EnumerateCalls()
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = c.Paths(q, []graph.NodeID{x, y})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if m := c.Misses(); m != 1 {
		t.Errorf("concurrent identical requests caused %d misses, want 1", m)
	}
	if h := c.Hits(); h != workers-1 {
		t.Errorf("hits = %d, want %d", h, workers-1)
	}
	if got := EnumerateCalls() - before; got != 1 {
		t.Errorf("Enumerate ran %d times under concurrency, want 1", got)
	}
}

func TestEnumCachePropagatesEnumerateError(t *testing.T) {
	g, q, x, y := cacheGraph(t)
	c, err := NewEnumCache(g, Options{L: 4, C: 0.15, MaxPaths: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Paths(q, []graph.NodeID{x, y}); err == nil {
		t.Fatalf("MaxPaths overflow should propagate")
	}
	if m := c.Misses(); m != 0 {
		t.Errorf("failed enumeration counted as a miss")
	}
}
