package pathidx

import (
	"sync"

	"kgvote/internal/graph"
)

// ScorerPool is a free-list of CSRScorers bound to one immutable snapshot.
// Each scorer owns dense scratch buffers sized to the snapshot, so the
// pool lets any number of goroutines rank concurrently with zero
// steady-state allocation: a worker Gets a scorer, runs any number of
// queries, and Puts it back.
//
// A pool is bound to exactly one CSR; when a new snapshot is published a
// new pool is created alongside it and the old one is dropped wholesale
// (scorers still checked out of the old pool keep working against the old
// snapshot — it is immutable).
type ScorerPool struct {
	csr  *graph.CSR
	opt  Options
	pool sync.Pool
}

// NewScorerPool returns a pool over the snapshot.
func NewScorerPool(c *graph.CSR, opt Options) (*ScorerPool, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	p := &ScorerPool{csr: c, opt: opt.withDefaults()}
	p.pool.New = func() any {
		// opt was validated above, so construction cannot fail.
		s, _ := NewCSRScorer(p.csr, p.opt)
		return s
	}
	return p, nil
}

// CSR returns the snapshot the pool serves.
func (p *ScorerPool) CSR() *graph.CSR { return p.csr }

// Options returns the pool's effective scoring options.
func (p *ScorerPool) Options() Options { return p.opt }

// Get checks a scorer out of the pool, creating one if none is free.
func (p *ScorerPool) Get() *CSRScorer { return p.pool.Get().(*CSRScorer) }

// Put returns a scorer to the pool. Scorers bound to a different snapshot
// (checked out before an epoch swap) are silently dropped.
func (p *ScorerPool) Put(s *CSRScorer) {
	if s == nil || s.c != p.csr {
		return
	}
	p.pool.Put(s)
}
