package pathidx

import (
	"sync"
	"testing"

	"kgvote/internal/graph"
)

// seedGraph builds a small host graph with a few entities and an answer
// layer, plus a query node attached at the end so tests can compare
// attached-query scoring with virtual-seed scoring.
func seedGraph(t *testing.T) (*graph.Graph, graph.NodeID, []graph.NodeID, []graph.NodeID, []float64) {
	t.Helper()
	g := graph.New(8)
	e1 := g.AddNode("e1")
	e2 := g.AddNode("e2")
	e3 := g.AddNode("e3")
	a1 := g.AddNode("a1")
	a2 := g.AddNode("a2")
	edges := []struct {
		from, to graph.NodeID
		w        float64
	}{
		{e1, e2, 0.5}, {e1, e3, 0.3}, {e2, e3, 0.6}, {e3, e1, 0.2},
		{e1, a1, 0.2}, {e2, a1, 0.4}, {e3, a2, 0.7}, {e2, a2, 0.1},
	}
	for _, e := range edges {
		if err := g.SetEdge(e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	// The query node: out-edges to e1 (2/3) and e2 (1/3).
	q := g.AddNode("q")
	if err := g.SetEdge(q, e1, 2.0/3); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge(q, e2, 1.0/3); err != nil {
		t.Fatal(err)
	}
	return g, q, []graph.NodeID{a1, a2}, []graph.NodeID{e1, e2}, []float64{2.0 / 3, 1.0 / 3}
}

// TestScoresSeededMatchesAttachedQuery verifies the serving-path
// equivalence the snapshot design relies on: scoring a virtual query by
// seed vector over a CSR that excludes the query node gives exactly the
// scores of the attached query node, because query nodes have no
// in-edges.
func TestScoresSeededMatchesAttachedQuery(t *testing.T) {
	g, q, answers, seedIDs, seedWs := seedGraph(t)
	opt := Options{L: 4}

	full, err := NewScorer(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Scores(q)
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot without the query node: rebuild the graph minus q.
	sub := graph.New(8)
	for i := 0; i < g.NumNodes()-1; i++ {
		sub.AddNode(g.Name(graph.NodeID(i)))
	}
	for i := 0; i < sub.NumNodes(); i++ {
		for _, e := range g.Out(graph.NodeID(i)) {
			if err := sub.SetEdge(graph.NodeID(i), e.To, e.Weight); err != nil {
				t.Fatal(err)
			}
		}
	}
	cs, err := NewCSRScorer(graph.Compile(sub), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.ScoresSeeded(seedIDs, seedWs)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range append(append([]graph.NodeID{}, answers...), seedIDs...) {
		if d := got[a] - want[a]; d > 1e-12 || d < -1e-12 {
			t.Errorf("node %d: seeded %.15f, attached %.15f", a, got[a], want[a])
		}
	}

	// Ranking agrees too.
	wantRank, err := full.Rank(q, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotRank, err := cs.RankSeeded(seedIDs, seedWs, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantRank {
		if wantRank[i].Node != gotRank[i].Node {
			t.Fatalf("rank %d: seeded %d, attached %d", i, gotRank[i].Node, wantRank[i].Node)
		}
	}
}

func TestScoresSeededErrors(t *testing.T) {
	g, _, _, _, _ := seedGraph(t)
	cs, err := NewCSRScorer(graph.Compile(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.ScoresSeeded(nil, nil); err == nil {
		t.Error("empty seed accepted")
	}
	if _, err := cs.ScoresSeeded([]graph.NodeID{0}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := cs.ScoresSeeded([]graph.NodeID{99}, []float64{1}); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := cs.ScoresSeeded([]graph.NodeID{0}, []float64{0}); err == nil {
		t.Error("all-zero seed accepted")
	}
}

// TestScorerPoolConcurrent hammers one pool from many goroutines; run
// with -race this is the pool's torn-read check.
func TestScorerPoolConcurrent(t *testing.T) {
	g, _, answers, seedIDs, seedWs := seedGraph(t)
	pool, err := NewScorerPool(graph.Compile(g), Options{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want []Ranked
	{
		sc := pool.Get()
		want, err = sc.RankSeeded(seedIDs, seedWs, answers, 0)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(sc)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sc := pool.Get()
				got, err := sc.RankSeeded(seedIDs, seedWs, answers, 0)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("rank diverged: %v vs %v", got, want)
						return
					}
				}
				pool.Put(sc)
			}
		}()
	}
	wg.Wait()
}

// TestRankSeededIntoZeroAlloc asserts the steady-state scoring loop
// allocates nothing once buffers are warm.
func TestRankSeededIntoZeroAlloc(t *testing.T) {
	g, _, answers, seedIDs, seedWs := seedGraph(t)
	pool, err := NewScorerPool(graph.Compile(g), Options{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	sc := pool.Get()
	defer pool.Put(sc)
	buf := make([]Ranked, 0, len(answers))
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = sc.RankSeededInto(buf[:0], seedIDs, seedWs, answers, 10)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state scoring allocates %.1f per op, want 0", allocs)
	}
}
