package pathidx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kgvote/internal/graph"
	"kgvote/internal/ppr"
)

// fig1 builds the Section IV-A running example: the Fig. 1(a) knowledge
// graph with a query node q and answer node a3.
func fig1(t testing.TB) (*graph.Graph, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New(0)
	q := g.AddNode("q")
	outbox := g.AddNode("Outbox")
	email := g.AddNode("Email")
	send := g.AddNode("SendMessage")
	outlook := g.AddNode("Outlook")
	a3 := g.AddNode("a3")
	g.MustSetEdge(q, outbox, 0.33)
	g.MustSetEdge(q, email, 0.33)
	g.MustSetEdge(outbox, email, 0.3)
	g.MustSetEdge(outbox, send, 0.5)
	g.MustSetEdge(email, outbox, 0.4)
	g.MustSetEdge(email, send, 0.6)
	g.MustSetEdge(send, outlook, 0.3)
	g.MustSetEdge(outlook, a3, 1)
	return g, q, a3
}

func TestEnumerateFig1(t *testing.T) {
	g, q, a3 := fig1(t)
	paths, err := Enumerate(g, q, []graph.NodeID{a3}, Options{L: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := paths[a3]
	if len(got) != 4 {
		t.Fatalf("got %d paths at L=5, want 4 (the paper's example)", len(got))
	}
	// At L=4 only the two short paths remain.
	paths4, err := Enumerate(g, q, []graph.NodeID{a3}, Options{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths4[a3]) != 2 {
		t.Fatalf("got %d paths at L=4, want 2", len(paths4[a3]))
	}
	// At L=3 there is no path to a3.
	paths3, err := Enumerate(g, q, []graph.NodeID{a3}, Options{L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths3[a3]) != 0 {
		t.Fatalf("got %d paths at L=3, want 0", len(paths3[a3]))
	}
}

func TestEIPDFig1HandComputed(t *testing.T) {
	g, q, a3 := fig1(t)
	c := 0.15
	d := 1 - c
	want := c * (math.Pow(d, 5)*(0.33*0.3*0.6*0.3) +
		math.Pow(d, 4)*(0.33*0.5*0.3) +
		math.Pow(d, 5)*(0.33*0.4*0.5*0.3) +
		math.Pow(d, 4)*(0.33*0.6*0.3))
	got, err := EIPD(g, q, a3, Options{L: 5, C: c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("EIPD = %v, want %v", got, want)
	}
}

func TestEIPDNoPath(t *testing.T) {
	g := graph.New(0)
	g.AddNodes(2)
	got, err := EIPD(g, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("EIPD with no path = %v, want 0", got)
	}
}

func TestEnumerateRevisitsNodes(t *testing.T) {
	// Cycle 0→1→0 plus 1→2. Walks to 2 of length ≤ 4: 0-1-2 and 0-1-0-1-2.
	g := graph.New(0)
	g.AddNodes(3)
	g.MustSetEdge(0, 1, 0.5)
	g.MustSetEdge(1, 0, 0.5)
	g.MustSetEdge(1, 2, 0.5)
	paths, err := Enumerate(g, 0, []graph.NodeID{2}, Options{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[2]) != 2 {
		t.Fatalf("got %d walks, want 2 (revisiting allowed)", len(paths[2]))
	}
	lens := map[int]bool{}
	for _, p := range paths[2] {
		lens[p.Len()] = true
	}
	if !lens[2] || !lens[4] {
		t.Errorf("walk lengths = %v, want {2,4}", lens)
	}
}

func TestEnumerateIntermediateTarget(t *testing.T) {
	// 0→1→2, target 1 AND 2: the walk through 1 must be recorded and the
	// search must continue past it.
	g := graph.New(0)
	g.AddNodes(3)
	g.MustSetEdge(0, 1, 0.5)
	g.MustSetEdge(1, 2, 0.5)
	paths, err := Enumerate(g, 0, []graph.NodeID{1, 2}, Options{L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[1]) != 1 || len(paths[2]) != 1 {
		t.Fatalf("paths to 1: %d, to 2: %d; want 1 and 1", len(paths[1]), len(paths[2]))
	}
}

func TestEnumerateMaxPaths(t *testing.T) {
	// Complete-ish digraph: blowup guaranteed.
	g := graph.New(0)
	g.AddNodes(6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i != j {
				g.MustSetEdge(graph.NodeID(i), graph.NodeID(j), 0.2)
			}
		}
	}
	_, err := Enumerate(g, 0, []graph.NodeID{1}, Options{L: 6, MaxPaths: 10})
	if !errors.Is(err, ErrTooManyPaths) {
		t.Fatalf("err = %v, want ErrTooManyPaths", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	g, q, a3 := fig1(t)
	bad := []Options{{L: -1}, {C: 1.5}, {C: -0.2}, {MaxPaths: -3}}
	for _, o := range bad {
		if _, err := Enumerate(g, q, []graph.NodeID{a3}, o); err == nil {
			t.Errorf("Options %+v should be rejected", o)
		}
	}
	if _, err := Enumerate(g, 999, []graph.NodeID{a3}, Options{}); err == nil {
		t.Errorf("out-of-range source should fail")
	}
	if _, err := Enumerate(g, q, []graph.NodeID{999}, Options{}); err == nil {
		t.Errorf("out-of-range target should fail")
	}
	if _, err := NewScorer(g, Options{L: -2}); err == nil {
		t.Errorf("bad scorer options should fail")
	}
}

func TestPathHelpers(t *testing.T) {
	g := graph.New(0)
	g.AddNodes(2)
	g.MustSetEdge(0, 1, 0.5)
	g.MustSetEdge(1, 0, 0.25)
	p := Path{Nodes: []graph.NodeID{0, 1, 0, 1}}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	edges := p.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges len = %d", len(edges))
	}
	if edges[0] != (graph.EdgeKey{From: 0, To: 1}) || edges[2] != (graph.EdgeKey{From: 0, To: 1}) {
		t.Errorf("edge multiplicity lost: %v", edges)
	}
	if got, want := p.Prob(g), 0.5*0.25*0.5; math.Abs(got-want) > 1e-15 {
		t.Errorf("Prob = %v, want %v", got, want)
	}
	empty := Path{Nodes: []graph.NodeID{0}}
	if empty.Len() != 0 || empty.Edges() != nil || empty.Prob(g) != 1 {
		t.Errorf("trivial path helpers wrong")
	}
}

func TestEdgeSet(t *testing.T) {
	p1 := Path{Nodes: []graph.NodeID{0, 1, 2}}
	p2 := Path{Nodes: []graph.NodeID{0, 1, 3}}
	set := EdgeSet([]Path{p1, p2})
	if len(set) != 3 {
		t.Fatalf("set size = %d, want 3", len(set))
	}
	for _, k := range []graph.EdgeKey{{From: 0, To: 1}, {From: 1, To: 2}, {From: 1, To: 3}} {
		if _, ok := set[k]; !ok {
			t.Errorf("missing edge %v", k)
		}
	}
}

func randomGraph(n, deg int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		for d := 0; d < deg; d++ {
			j := graph.NodeID(rng.Intn(n))
			if j == graph.NodeID(i) {
				continue
			}
			g.MustSetEdge(graph.NodeID(i), j, rng.Float64()+0.01)
		}
		g.NormalizeOut(graph.NodeID(i))
	}
	return g
}

// Property: the fast Scorer agrees with explicit enumeration on random
// graphs — the two EIPD evaluation strategies are interchangeable.
func TestQuickScorerMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(15, 2, rng)
		opt := Options{L: 4}
		sc, err := NewScorer(g, opt)
		if err != nil {
			return false
		}
		src := graph.NodeID(rng.Intn(15))
		scores, err := sc.Scores(src)
		if err != nil {
			return false
		}
		for target := 0; target < 15; target++ {
			if target == int(src) {
				continue
			}
			want, err := EIPD(g, src, graph.NodeID(target), opt)
			if err != nil {
				return false
			}
			if math.Abs(scores[target]-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// With a large L the truncated score converges to the true PPR score: the
// truncation error is bounded by (1−c)^{L+1}.
func TestScorerConvergesToPPR(t *testing.T) {
	g := randomGraph(30, 3, rand.New(rand.NewSource(5)))
	sc, err := NewScorer(g, Options{L: 120})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := sc.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	pi, _, err := ppr.PowerIteration(g, 0, ppr.Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 30; i++ {
		if math.Abs(scores[i]-pi[i]) > 1e-8 {
			t.Errorf("node %d: truncated %v vs PPR %v", i, scores[i], pi[i])
		}
	}
}

// The scorer must be reusable: consecutive queries from different sources
// must not leak state.
func TestScorerReuse(t *testing.T) {
	g := randomGraph(25, 3, rand.New(rand.NewSource(9)))
	sc, err := NewScorer(g, Options{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, err := sc.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), first...)
	if _, err := sc.Scores(7); err != nil {
		t.Fatal(err)
	}
	again, err := sc.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if math.Abs(again[i]-snapshot[i]) > 1e-15 {
			t.Fatalf("scorer state leaked: node %d %v vs %v", i, again[i], snapshot[i])
		}
	}
}

func TestScorerRankAndSum(t *testing.T) {
	g, q, a3 := fig1(t)
	sc, err := NewScorer(g, Options{L: 5})
	if err != nil {
		t.Fatal(err)
	}
	outlook := g.Lookup("Outlook")
	ranked, err := sc.Rank(q, []graph.NodeID{a3, outlook}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("rank len = %d", len(ranked))
	}
	if ranked[0].Node != outlook {
		t.Errorf("Outlook (closer) should outrank a3: %v", ranked)
	}
	sum, err := sc.SumTopK(q, []graph.NodeID{a3, outlook}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := ranked[0].Score + ranked[1].Score; math.Abs(sum-want) > 1e-15 {
		t.Errorf("SumTopK = %v, want %v", sum, want)
	}
	if _, err := sc.Scores(999); err == nil {
		t.Errorf("out-of-range source should fail")
	}
	if _, err := sc.Similarity(q, 999); err == nil {
		t.Errorf("out-of-range target should fail")
	}
}

func TestRankOutOfRangeCandidate(t *testing.T) {
	g, q, _ := fig1(t)
	sc, err := NewScorer(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := sc.Rank(q, []graph.NodeID{999}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Score != 0 {
		t.Errorf("out-of-range candidate should score 0")
	}
}

// The scorer must keep working when the graph grows after the scorer was
// created (augmented graphs gain query/answer nodes continuously).
func TestScorerGraphGrowth(t *testing.T) {
	g := randomGraph(10, 2, rand.New(rand.NewSource(17)))
	sc, err := NewScorer(g, Options{L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Scores(0); err != nil {
		t.Fatal(err)
	}
	// Grow: attach a query-like node pointing at node 0, and an
	// answer-like node reachable from node 1.
	q := g.AddNodes(2)
	ans := q + 1
	g.MustSetEdge(q, 0, 1)
	g.MustSetEdge(1, ans, 1)
	scores, err := sc.Scores(q)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] <= 0 {
		t.Errorf("new query node scored nothing")
	}
	want, err := EIPD(g, q, ans, Options{L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scores[ans]-want) > 1e-12 {
		t.Errorf("grown-graph score %v, want %v", scores[ans], want)
	}
}
