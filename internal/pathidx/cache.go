package pathidx

import (
	"sync"
	"sync/atomic"

	"kgvote/internal/graph"
)

// enumerateCalls counts every Enumerate invocation process-wide. It backs
// the flush pipeline's "enumerate once per (query, path-options)" contract:
// tests snapshot it around a flush and assert the delta equals the number
// of distinct query nodes.
var enumerateCalls atomic.Uint64

// EnumerateCalls returns the process-wide number of Enumerate invocations.
func EnumerateCalls() uint64 { return enumerateCalls.Load() }

// EnumCache memoizes Enumerate results for one graph state. The flush
// pipeline creates one per optimization batch: judgment, edge-set
// computation, and SGP encoding all need the same walk sets per query
// node, and without the cache each stage re-runs the DFS (up to three
// enumerations per vote). The cache is safe for concurrent use by the
// parallel pipeline stages.
//
// Entries are keyed by source node and remember the target set they were
// enumerated with: a request whose targets are a subset of a cached
// entry's is a hit (walk sets per target are independent of the other
// targets requested), a wider request re-enumerates with the union. The
// pipeline prewarms each query with the union of every vote's ranked
// list, so steady-state flushes enumerate exactly once per query.
//
// The cache must only be used while the graph's weights are unchanged:
// Enumerate prunes zero-weight edges, so any weight write invalidates
// every entry. The engine therefore scopes a cache to a single flush
// (weights are applied only after all solves complete).
type EnumCache struct {
	g   *graph.Graph
	opt Options

	mu      sync.Mutex
	entries map[graph.NodeID]*enumEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type enumEntry struct {
	mu      sync.Mutex
	targets map[graph.NodeID]bool
	paths   map[graph.NodeID][]Path
}

// NewEnumCache returns an empty cache over g with the given enumeration
// options.
func NewEnumCache(g *graph.Graph, opt Options) (*EnumCache, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &EnumCache{g: g, opt: opt, entries: make(map[graph.NodeID]*enumEntry)}, nil
}

// Paths returns Enumerate(g, source, targets, opt), served from the cache
// when a previous enumeration for source already covers every requested
// target. The returned map may contain additional targets from earlier
// requests and is shared between callers: treat it as read-only.
func (c *EnumCache) Paths(source graph.NodeID, targets []graph.NodeID) (map[graph.NodeID][]Path, error) {
	c.mu.Lock()
	e, ok := c.entries[source]
	if !ok {
		e = &enumEntry{}
		c.entries[source] = e
	}
	c.mu.Unlock()

	// The per-entry lock serializes enumeration for one source, so
	// concurrent first requests do the DFS once (singleflight).
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.paths != nil {
		covered := true
		for _, t := range targets {
			if !e.targets[t] {
				covered = false
				break
			}
		}
		if covered {
			c.hits.Add(1)
			return e.paths, nil
		}
	}
	// Miss (or a wider target set than cached): enumerate with the union
	// so the entry keeps covering every earlier request.
	union := make([]graph.NodeID, 0, len(e.targets)+len(targets))
	seen := make(map[graph.NodeID]bool, len(e.targets)+len(targets))
	for t := range e.targets {
		union = append(union, t)
		seen[t] = true
	}
	for _, t := range targets {
		if !seen[t] {
			union = append(union, t)
			seen[t] = true
		}
	}
	paths, err := Enumerate(c.g, source, union, c.opt)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)
	e.targets = seen
	e.paths = paths
	return paths, nil
}

// Hits returns the number of requests served from the cache.
func (c *EnumCache) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of requests that ran Enumerate.
func (c *EnumCache) Misses() uint64 { return c.misses.Load() }
