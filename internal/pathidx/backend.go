package pathidx

import (
	"fmt"

	"kgvote/internal/graph"
)

// Backend selects the serving-path seeded-ranking implementation
// (kgvoted -scorer). The enumerator-equivalent sparse sweeps stay the
// default and the exactness oracle; the push backend trades a certified
// additive error bound for O(delta) per-flush updates (DESIGN.md §16).
type Backend int

const (
	// BackendEnum ranks with CSRScorer's exact truncated sparse sweeps.
	BackendEnum Backend = iota
	// BackendPush ranks with the incremental local-push estimator
	// (internal/ppr), repaired per flush from the changed-edge set.
	BackendPush
)

// String returns the flag spelling of the backend.
func (b Backend) String() string {
	switch b {
	case BackendEnum:
		return "enum"
	case BackendPush:
		return "push"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// Valid reports whether b names a known backend.
func (b Backend) Valid() bool { return b == BackendEnum || b == BackendPush }

// ParseBackend parses a -scorer flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "enum":
		return BackendEnum, nil
	case "push":
		return BackendPush, nil
	}
	return 0, fmt.Errorf("pathidx: unknown scorer backend %q (want enum or push)", s)
}

// SeededRanker is the contract every serving backend satisfies: rank
// candidates for a virtual query node with out-edges (ids[i], ws[i]),
// descending score with ties broken by node ID. CSRScorer implements it
// directly; the push backend is adapted in internal/core.
type SeededRanker interface {
	RankSeeded(ids []graph.NodeID, weights []float64, candidates []graph.NodeID, k int) ([]Ranked, error)
}

var _ SeededRanker = (*CSRScorer)(nil)
