package pathidx

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"kgvote/internal/graph"
)

func TestCSRScorerMatchesScorer(t *testing.T) {
	g := randomGraph(50, 4, rand.New(rand.NewSource(31)))
	opt := Options{L: 4}
	sc, err := NewScorer(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	csr := graph.Compile(g)
	cs, err := NewCSRScorer(csr, opt)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 50; src += 7 {
		a, err := sc.Scores(graph.NodeID(src))
		if err != nil {
			t.Fatal(err)
		}
		b, err := cs.Scores(graph.NodeID(src))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-14 {
				t.Fatalf("src %d node %d: %v vs %v", src, i, a[i], b[i])
			}
		}
	}
}

func TestCSRScorerSnapshotSemantics(t *testing.T) {
	g := randomGraph(20, 3, rand.New(rand.NewSource(5)))
	csr := graph.Compile(g)
	cs, err := NewCSRScorer(csr, Options{L: 3})
	if err != nil {
		t.Fatal(err)
	}
	before, err := cs.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), before...)
	// Mutate the live graph heavily; the snapshot scorer must not notice.
	g.Edges(func(from, to graph.NodeID, w float64) {
		_ = g.SetWeight(from, to, 0.001)
	})
	after, err := cs.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if after[i] != snapshot[i] {
			t.Fatalf("snapshot leaked live mutation at node %d", i)
		}
	}
}

func TestCSRScorerConcurrent(t *testing.T) {
	g := randomGraph(60, 4, rand.New(rand.NewSource(9)))
	csr := graph.Compile(g)
	ref, err := NewCSRScorer(csr, Options{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Scores(3)
	if err != nil {
		t.Fatal(err)
	}
	wantCopy := append([]float64(nil), want...)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cs, err := NewCSRScorer(csr, Options{L: 4})
			if err != nil {
				errs[w] = err
				return
			}
			for rep := 0; rep < 20; rep++ {
				got, err := cs.Scores(3)
				if err != nil {
					errs[w] = err
					return
				}
				for i := range wantCopy {
					if got[i] != wantCopy[i] {
						errs[w] = errMismatch
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errInternal("concurrent score mismatch")

type errInternal string

func (e errInternal) Error() string { return string(e) }

func TestCSRScorerErrors(t *testing.T) {
	g := randomGraph(5, 2, rand.New(rand.NewSource(2)))
	csr := graph.Compile(g)
	if _, err := NewCSRScorer(csr, Options{L: -1}); err == nil {
		t.Errorf("bad options should fail")
	}
	cs, err := NewCSRScorer(csr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Scores(99); err == nil {
		t.Errorf("out-of-range source should fail")
	}
	ranked, err := cs.Rank(0, []graph.NodeID{99, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 1 {
		t.Errorf("rank truncation failed")
	}
}

func BenchmarkScorer(b *testing.B) {
	g := randomGraph(5000, 6, rand.New(rand.NewSource(1)))
	sc, err := NewScorer(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Scores(graph.NodeID(i % 5000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSRScorer(b *testing.B) {
	g := randomGraph(5000, 6, rand.New(rand.NewSource(1)))
	csr := graph.Compile(g)
	cs, err := NewCSRScorer(csr, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Scores(graph.NodeID(i % 5000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerate(b *testing.B) {
	g := randomGraph(2000, 4, rand.New(rand.NewSource(1)))
	targets := []graph.NodeID{10, 20, 30, 40, 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, graph.NodeID(i%2000), targets, Options{L: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
