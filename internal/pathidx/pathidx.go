// Package pathidx implements path enumeration with length pruning and the
// extended inverse P-distance (EIPD) of Section IV-A:
//
//	Φ(vq, va) = Σ_{z: vq ⇝ va, |z| ≤ L} P[z] · c · (1 − c)^{|z|}
//
// where the sum ranges over all walks (nodes may repeat) of at most L
// edges and P[z] is the product of the edge weights along z. By Theorem 1
// of the paper the untruncated sum equals the Personalized PageRank score;
// truncation at L (default 5) is the paper's pruning strategy.
//
// Two evaluation strategies are provided:
//
//   - Enumerate/EIPD list the walks explicitly. This is what the SGP
//     encoding needs, because each walk becomes a monomial over edge-weight
//     variables.
//   - Scorer computes Σ_{l≤L} c(1−c)^l (Wˡ)_{q,·} with L sparse
//     vector–matrix sweeps, scoring every node at once. It is the fast
//     scorer used for ranking and is provably equal to the enumerated sum.
package pathidx

import (
	"fmt"

	"kgvote/internal/graph"
)

// DefaultL is the paper's default path-length pruning threshold.
const DefaultL = 5

// DefaultMaxPaths bounds explicit enumeration to guard against
// combinatorial blowup on dense graphs.
const DefaultMaxPaths = 1 << 21

// Path is one walk through the graph, endpoints included. Its length |z|
// is the number of edges, len(Nodes)−1.
type Path struct {
	Nodes []graph.NodeID
}

// Len returns the number of edges of the walk.
func (p Path) Len() int { return len(p.Nodes) - 1 }

// Edges returns the directed edges along the walk, in order and with
// multiplicity (a walk may use an edge more than once).
func (p Path) Edges() []graph.EdgeKey {
	if len(p.Nodes) < 2 {
		return nil
	}
	return p.AppendEdges(make([]graph.EdgeKey, 0, len(p.Nodes)-1))
}

// Edge returns the i-th directed edge of the walk without allocating.
// Valid for 0 ≤ i < Len().
func (p Path) Edge(i int) graph.EdgeKey {
	return graph.EdgeKey{From: p.Nodes[i], To: p.Nodes[i+1]}
}

// AppendEdges appends the walk's edges to dst and returns the extended
// slice — the allocation-free variant of Edges for hot loops that reuse a
// caller-owned buffer.
func (p Path) AppendEdges(dst []graph.EdgeKey) []graph.EdgeKey {
	for i := 0; i+1 < len(p.Nodes); i++ {
		dst = append(dst, graph.EdgeKey{From: p.Nodes[i], To: p.Nodes[i+1]})
	}
	return dst
}

// Prob returns P[z]: the product of the edge weights along the walk in g.
func (p Path) Prob(g *graph.Graph) float64 {
	prob := 1.0
	for i := 0; i+1 < len(p.Nodes); i++ {
		prob *= g.Weight(p.Nodes[i], p.Nodes[i+1])
	}
	return prob
}

// ErrTooManyPaths is returned when enumeration exceeds the configured
// bound.
var ErrTooManyPaths = fmt.Errorf("pathidx: path enumeration exceeded limit")

// Options configures enumeration and scoring.
type Options struct {
	// L is the maximum walk length in edges; DefaultL if zero.
	L int
	// C is the restart probability; ppr.DefaultC (0.15) if zero.
	C float64
	// MaxPaths bounds enumeration; DefaultMaxPaths if zero.
	MaxPaths int
}

func (o Options) withDefaults() Options {
	if o.L == 0 {
		o.L = DefaultL
	}
	if o.C == 0 {
		o.C = 0.15
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = DefaultMaxPaths
	}
	return o
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.L < 1 {
		return fmt.Errorf("pathidx: L=%d must be >= 1", o.L)
	}
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("pathidx: c=%v outside (0,1)", o.C)
	}
	if o.MaxPaths < 1 {
		return fmt.Errorf("pathidx: MaxPaths=%d must be >= 1", o.MaxPaths)
	}
	return nil
}

// Enumerate returns, for every target, all walks from source to that
// target of at most opt.L edges. Walks may revisit nodes (and targets):
// an intermediate visit to a target both records a walk and continues.
func Enumerate(g *graph.Graph, source graph.NodeID, targets []graph.NodeID, opt Options) (map[graph.NodeID][]Path, error) {
	enumerateCalls.Add(1)
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if int(source) < 0 || int(source) >= g.NumNodes() {
		return nil, fmt.Errorf("pathidx: source %d out of range", source)
	}
	isTarget := make(map[graph.NodeID]bool, len(targets))
	for _, t := range targets {
		if int(t) < 0 || int(t) >= g.NumNodes() {
			return nil, fmt.Errorf("pathidx: target %d out of range", t)
		}
		isTarget[t] = true
	}
	out := make(map[graph.NodeID][]Path, len(targets))
	stack := make([]graph.NodeID, 1, opt.L+1)
	stack[0] = source
	total := 0
	var dfs func(at graph.NodeID, depth int) error
	dfs = func(at graph.NodeID, depth int) error {
		if depth > 0 && isTarget[at] {
			total++
			if total > opt.MaxPaths {
				return fmt.Errorf("%w (%d)", ErrTooManyPaths, opt.MaxPaths)
			}
			out[at] = append(out[at], Path{Nodes: append([]graph.NodeID(nil), stack...)})
		}
		if depth == opt.L {
			return nil
		}
		for _, e := range g.Out(at) {
			if e.Weight == 0 {
				continue
			}
			stack = append(stack, e.To)
			if err := dfs(e.To, depth+1); err != nil {
				return err
			}
			stack = stack[:len(stack)-1]
		}
		return nil
	}
	if err := dfs(source, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// EIPD computes the extended inverse P-distance Φ(source, target) by
// explicit enumeration. It returns 0 when no walk of length ≤ L exists.
func EIPD(g *graph.Graph, source, target graph.NodeID, opt Options) (float64, error) {
	paths, err := Enumerate(g, source, []graph.NodeID{target}, opt)
	if err != nil {
		return 0, err
	}
	opt = opt.withDefaults()
	return SumPaths(g, paths[target], opt.C), nil
}

// SumPaths evaluates Σ P[z]·c·(1−c)^{|z|} over the given walks.
func SumPaths(g *graph.Graph, paths []Path, c float64) float64 {
	var s float64
	for _, p := range paths {
		damp := c
		for i := 0; i < p.Len(); i++ {
			damp *= 1 - c
		}
		s += p.Prob(g) * damp
	}
	return s
}

// EdgeSet returns the set of distinct edges used by any of the walks.
// This is Set(v) of Section V (judgment algorithm) and E(t) of Section
// VI-A (vote similarity).
func EdgeSet(paths []Path) map[graph.EdgeKey]struct{} {
	set := make(map[graph.EdgeKey]struct{})
	AddEdgeSet(set, paths)
	return set
}

// AddEdgeSet inserts the distinct edges of the walks into set — the
// allocation-free variant of EdgeSet for callers that accumulate over
// many walk lists (no per-walk edge slice is materialized).
func AddEdgeSet(set map[graph.EdgeKey]struct{}, paths []Path) {
	for _, p := range paths {
		for i := 0; i+1 < len(p.Nodes); i++ {
			set[p.Edge(i)] = struct{}{}
		}
	}
}
