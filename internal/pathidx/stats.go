package pathidx

import (
	"fmt"

	"kgvote/internal/graph"
)

// LengthStats summarizes the walk population of one length.
type LengthStats struct {
	// Length is the walk length in edges.
	Length int
	// Frontier is the number of distinct nodes reachable in exactly
	// Length steps (with nonzero probability).
	Frontier int
	// Mass is the total probability mass Σ_v (W^Length)_{source,v},
	// i.e. the chance a random walk survives Length steps.
	Mass float64
	// Contribution is c·(1−c)^Length · Mass: how much this length adds to
	// the total extended inverse P-distance.
	Contribution float64
}

// WalkStats profiles a source node's walk population per length up to
// opt.L: how wide each frontier is, how much probability mass survives,
// and how much each length contributes to the similarity total. This is
// the quantitative basis for choosing the pruning threshold L (the
// paper's Fig. 7(a) argument): pick the smallest L whose next length adds
// a negligible contribution.
func WalkStats(g *graph.Graph, source graph.NodeID, opt Options) ([]LengthStats, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	n := g.NumNodes()
	if int(source) < 0 || int(source) >= n {
		return nil, fmt.Errorf("pathidx: source %d out of range [0, %d)", source, n)
	}
	cur := map[graph.NodeID]float64{source: 1}
	out := make([]LengthStats, 0, opt.L)
	damp := opt.C
	for l := 1; l <= opt.L; l++ {
		damp *= 1 - opt.C
		next := make(map[graph.NodeID]float64)
		for from, p := range cur {
			for _, e := range g.Out(from) {
				if e.Weight > 0 {
					next[e.To] += p * e.Weight
				}
			}
		}
		var mass float64
		for _, p := range next {
			mass += p
		}
		out = append(out, LengthStats{
			Length:       l,
			Frontier:     len(next),
			Mass:         mass,
			Contribution: damp * mass,
		})
		if len(next) == 0 {
			break
		}
		cur = next
	}
	return out, nil
}

// SuggestL returns the smallest L whose next length's contribution falls
// below frac of the cumulative total so far (the Fig. 7(a) criterion),
// probing lengths up to maxL. It returns maxL when no length qualifies.
func SuggestL(g *graph.Graph, source graph.NodeID, maxL int, frac float64, c float64) (int, error) {
	if frac <= 0 || frac >= 1 {
		return 0, fmt.Errorf("pathidx: frac %v outside (0,1)", frac)
	}
	stats, err := WalkStats(g, source, Options{L: maxL, C: c})
	if err != nil {
		return 0, err
	}
	var cum float64
	for i, s := range stats {
		cum += s.Contribution
		if i+1 < len(stats) && cum > 0 && stats[i+1].Contribution/cum < frac {
			return s.Length, nil
		}
	}
	return maxL, nil
}
