package pathidx

import "testing"

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		err  bool
	}{
		{"", BackendEnum, false},
		{"enum", BackendEnum, false},
		{"push", BackendPush, false},
		{"Push", 0, true},
		{"gauss", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseBackend(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("ParseBackend(%q) err = %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseBackend(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if BackendEnum.String() != "enum" || BackendPush.String() != "push" {
		t.Errorf("String(): %q / %q", BackendEnum.String(), BackendPush.String())
	}
	if !BackendEnum.Valid() || !BackendPush.Valid() || Backend(9).Valid() {
		t.Error("Valid() misclassifies")
	}
}
