package pathidx

import (
	"fmt"

	"kgvote/internal/graph"
)

// CSRScorer is the serving-path twin of Scorer: it computes the same
// truncated extended inverse P-distances over an immutable graph.CSR
// snapshot. Because the snapshot never changes, any number of CSRScorers
// can score concurrently (one scorer per goroutine; each scorer holds its
// own scratch buffers) while the mutable graph keeps taking optimization
// writes elsewhere.
type CSRScorer struct {
	c   *graph.CSR
	opt Options

	cur, next   []float64
	curIdx      []graph.NodeID
	nextIdx     []graph.NodeID
	inNext      []bool
	scores      []float64
	touched     []graph.NodeID
	scoreActive []bool
}

// NewCSRScorer returns a scorer over the snapshot.
func NewCSRScorer(c *graph.CSR, opt Options) (*CSRScorer, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := c.NumNodes()
	return &CSRScorer{
		c:           c,
		opt:         opt.withDefaults(),
		cur:         make([]float64, n),
		next:        make([]float64, n),
		inNext:      make([]bool, n),
		scores:      make([]float64, n),
		scoreActive: make([]bool, n),
	}, nil
}

// CSR returns the snapshot the scorer is bound to.
func (s *CSRScorer) CSR() *graph.CSR { return s.c }

// reset clears the sparse state left by the previous call.
func (s *CSRScorer) reset() {
	for _, v := range s.touched {
		s.scores[v] = 0
		s.scoreActive[v] = false
	}
	s.touched = s.touched[:0]
	for _, v := range s.curIdx {
		s.cur[v] = 0
	}
	s.curIdx = s.curIdx[:0]
}

// run performs the sparse sweeps for walk lengths fromLevel..L given the
// frontier already staged in cur/curIdx, and returns the score vector.
func (s *CSRScorer) run(fromLevel int) []float64 {
	c := s.opt.C
	damp := c
	for l := 1; l < fromLevel; l++ {
		damp *= 1 - c
	}
	for l := fromLevel; l <= s.opt.L; l++ {
		damp *= 1 - c
		s.nextIdx = s.nextIdx[:0]
		for _, from := range s.curIdx {
			p := s.cur[from]
			cols, ws := s.c.Row(from)
			for i, to := range cols {
				w := ws[i]
				if w == 0 {
					continue
				}
				if !s.inNext[to] {
					s.inNext[to] = true
					s.nextIdx = append(s.nextIdx, to)
					s.next[to] = 0
				}
				s.next[to] += p * w
			}
		}
		for _, v := range s.nextIdx {
			s.inNext[v] = false
			if !s.scoreActive[v] {
				s.scoreActive[v] = true
				s.touched = append(s.touched, v)
			}
			s.scores[v] += damp * s.next[v]
		}
		for _, v := range s.curIdx {
			s.cur[v] = 0
		}
		s.cur, s.next = s.next, s.cur
		s.curIdx, s.nextIdx = s.nextIdx, s.curIdx
		if len(s.curIdx) == 0 {
			break
		}
	}
	for _, v := range s.curIdx {
		s.cur[v] = 0
	}
	s.curIdx = s.curIdx[:0]
	return s.scores
}

// Scores computes the truncated EIPD from source to every node. The
// returned slice is owned by the scorer and valid until the next call.
func (s *CSRScorer) Scores(source graph.NodeID) ([]float64, error) {
	if int(source) < 0 || int(source) >= s.c.NumNodes() {
		return nil, fmt.Errorf("pathidx: source %d out of range [0, %d)", source, s.c.NumNodes())
	}
	s.reset()
	s.cur[source] = 1
	s.curIdx = append(s.curIdx, source)
	return s.run(1), nil
}

// ScoresSeeded computes the truncated EIPD from a virtual source node
// whose out-edges are (ids[i], weights[i]). This is exactly the score a
// freshly attached query node would get — query nodes have no in-edges,
// so no walk re-enters them — which lets the serving path rank questions
// against an immutable snapshot without ever mutating the shared graph.
// The returned slice is owned by the scorer and valid until the next call.
func (s *CSRScorer) ScoresSeeded(ids []graph.NodeID, weights []float64) ([]float64, error) {
	if len(ids) != len(weights) {
		return nil, fmt.Errorf("pathidx: %d seed ids but %d weights", len(ids), len(weights))
	}
	n := s.c.NumNodes()
	var live int
	for i, v := range ids {
		if weights[i] == 0 {
			continue
		}
		if int(v) < 0 || int(v) >= n {
			return nil, fmt.Errorf("pathidx: seed %d out of range [0, %d)", v, n)
		}
		live++
	}
	if live == 0 {
		return nil, fmt.Errorf("pathidx: empty seed")
	}
	s.reset()
	for i, v := range ids {
		if weights[i] == 0 {
			continue
		}
		if s.cur[v] == 0 {
			s.curIdx = append(s.curIdx, v)
		}
		s.cur[v] += weights[i]
	}
	// Level 1: the virtual hop itself lands on the seed nodes, so they
	// collect c(1−c)·w before the remaining sweeps propagate outward.
	c := s.opt.C
	damp := c * (1 - c)
	for _, v := range s.curIdx {
		if !s.scoreActive[v] {
			s.scoreActive[v] = true
			s.touched = append(s.touched, v)
		}
		s.scores[v] += damp * s.cur[v]
	}
	return s.run(2), nil
}

// Rank scores every candidate and returns the top-k list (descending
// score, ties by node ID). k ≤ 0 returns all candidates.
func (s *CSRScorer) Rank(source graph.NodeID, candidates []graph.NodeID, k int) ([]Ranked, error) {
	sc, err := s.Scores(source)
	if err != nil {
		return nil, err
	}
	return rankScores(make([]Ranked, 0, len(candidates)), sc, candidates, k), nil
}

// RankSeeded ranks candidates for a virtual source node (see ScoresSeeded).
func (s *CSRScorer) RankSeeded(ids []graph.NodeID, weights []float64, candidates []graph.NodeID, k int) ([]Ranked, error) {
	sc, err := s.ScoresSeeded(ids, weights)
	if err != nil {
		return nil, err
	}
	return rankScores(make([]Ranked, 0, len(candidates)), sc, candidates, k), nil
}

// RankSeededInto is RankSeeded appending into a caller-owned buffer
// (typically dst[:0] of a retained slice), so the steady-state scoring
// loop performs zero allocations once buffers are warm.
func (s *CSRScorer) RankSeededInto(dst []Ranked, ids []graph.NodeID, weights []float64, candidates []graph.NodeID, k int) ([]Ranked, error) {
	sc, err := s.ScoresSeeded(ids, weights)
	if err != nil {
		return nil, err
	}
	return rankScores(dst, sc, candidates, k), nil
}

// rankScores appends one Ranked per candidate to dst, sorts (descending
// score, ties by node ID) and truncates to k (k ≤ 0 keeps all).
func rankScores(dst []Ranked, sc []float64, candidates []graph.NodeID, k int) []Ranked {
	for _, cand := range candidates {
		var v float64
		if int(cand) >= 0 && int(cand) < len(sc) {
			v = sc[cand]
		}
		dst = append(dst, Ranked{Node: cand, Score: v})
	}
	sortRanked(dst)
	if k > 0 && len(dst) > k {
		dst = dst[:k]
	}
	return dst
}
