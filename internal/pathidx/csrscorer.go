package pathidx

import (
	"fmt"
	"sort"

	"kgvote/internal/graph"
)

// CSRScorer is the serving-path twin of Scorer: it computes the same
// truncated extended inverse P-distances over an immutable graph.CSR
// snapshot. Because the snapshot never changes, any number of CSRScorers
// can score concurrently (one scorer per goroutine; each scorer holds its
// own scratch buffers) while the mutable graph keeps taking optimization
// writes elsewhere.
type CSRScorer struct {
	c   *graph.CSR
	opt Options

	cur, next   []float64
	curIdx      []graph.NodeID
	nextIdx     []graph.NodeID
	inNext      []bool
	scores      []float64
	touched     []graph.NodeID
	scoreActive []bool
}

// NewCSRScorer returns a scorer over the snapshot.
func NewCSRScorer(c *graph.CSR, opt Options) (*CSRScorer, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := c.NumNodes()
	return &CSRScorer{
		c:           c,
		opt:         opt.withDefaults(),
		cur:         make([]float64, n),
		next:        make([]float64, n),
		inNext:      make([]bool, n),
		scores:      make([]float64, n),
		scoreActive: make([]bool, n),
	}, nil
}

// Scores computes the truncated EIPD from source to every node. The
// returned slice is owned by the scorer and valid until the next call.
func (s *CSRScorer) Scores(source graph.NodeID) ([]float64, error) {
	if int(source) < 0 || int(source) >= s.c.NumNodes() {
		return nil, fmt.Errorf("pathidx: source %d out of range [0, %d)", source, s.c.NumNodes())
	}
	for _, v := range s.touched {
		s.scores[v] = 0
		s.scoreActive[v] = false
	}
	s.touched = s.touched[:0]
	for _, v := range s.curIdx {
		s.cur[v] = 0
	}
	s.curIdx = s.curIdx[:0]

	s.cur[source] = 1
	s.curIdx = append(s.curIdx, source)
	c := s.opt.C
	damp := c
	for l := 1; l <= s.opt.L; l++ {
		damp *= 1 - c
		s.nextIdx = s.nextIdx[:0]
		for _, from := range s.curIdx {
			p := s.cur[from]
			cols, ws := s.c.Row(from)
			for i, to := range cols {
				w := ws[i]
				if w == 0 {
					continue
				}
				if !s.inNext[to] {
					s.inNext[to] = true
					s.nextIdx = append(s.nextIdx, to)
					s.next[to] = 0
				}
				s.next[to] += p * w
			}
		}
		for _, v := range s.nextIdx {
			s.inNext[v] = false
			if !s.scoreActive[v] {
				s.scoreActive[v] = true
				s.touched = append(s.touched, v)
			}
			s.scores[v] += damp * s.next[v]
		}
		for _, v := range s.curIdx {
			s.cur[v] = 0
		}
		s.cur, s.next = s.next, s.cur
		s.curIdx, s.nextIdx = s.nextIdx, s.curIdx
		if len(s.curIdx) == 0 {
			break
		}
	}
	for _, v := range s.curIdx {
		s.cur[v] = 0
	}
	s.curIdx = s.curIdx[:0]
	return s.scores, nil
}

// Rank scores every candidate and returns the top-k list (descending
// score, ties by node ID). k ≤ 0 returns all candidates.
func (s *CSRScorer) Rank(source graph.NodeID, candidates []graph.NodeID, k int) ([]Ranked, error) {
	sc, err := s.Scores(source)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, 0, len(candidates))
	for _, cand := range candidates {
		var v float64
		if int(cand) >= 0 && int(cand) < len(sc) {
			v = sc[cand]
		}
		out = append(out, Ranked{Node: cand, Score: v})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}
