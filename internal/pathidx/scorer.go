package pathidx

import (
	"fmt"
	"slices"

	"kgvote/internal/graph"
)

// Scorer computes truncated extended inverse P-distances for every node in
// one pass: score(v) = Σ_{l=1..L} c·(1−c)^l · (Wˡ)_{source,v}, using L
// sparse frontier pushes instead of explicit walk enumeration.
//
// A Scorer is reusable across queries on the same graph; it keeps dense
// scratch buffers sized to the graph. It is not safe for concurrent use;
// create one Scorer per goroutine.
type Scorer struct {
	g   *graph.Graph
	opt Options

	cur, next   []float64
	curIdx      []graph.NodeID
	nextIdx     []graph.NodeID
	inNext      []bool
	scores      []float64
	touched     []graph.NodeID
	scoreActive []bool
}

// NewScorer returns a Scorer over g.
func NewScorer(g *graph.Graph, opt Options) (*Scorer, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	return &Scorer{
		g:           g,
		opt:         opt.withDefaults(),
		cur:         make([]float64, n),
		next:        make([]float64, n),
		inNext:      make([]bool, n),
		scores:      make([]float64, n),
		scoreActive: make([]bool, n),
	}, nil
}

// Graph returns the scorer's underlying graph.
func (s *Scorer) Graph() *graph.Graph { return s.g }

// Options returns the scorer's configuration with defaults applied.
func (s *Scorer) Options() Options { return s.opt }

// ensure grows the dense scratch buffers when the graph has gained nodes
// since the scorer was created (augmented graphs grow as queries and
// answers attach).
func (s *Scorer) ensure() {
	n := s.g.NumNodes()
	if n <= len(s.scores) {
		return
	}
	grow := func(v []float64) []float64 { return append(v, make([]float64, n-len(v))...) }
	s.cur = grow(s.cur)
	s.next = grow(s.next)
	s.scores = grow(s.scores)
	s.inNext = append(s.inNext, make([]bool, n-len(s.inNext))...)
	s.scoreActive = append(s.scoreActive, make([]bool, n-len(s.scoreActive))...)
}

// Scores computes the truncated EIPD from source to every node. The
// returned slice is owned by the Scorer and is valid until the next call.
func (s *Scorer) Scores(source graph.NodeID) ([]float64, error) {
	if int(source) < 0 || int(source) >= s.g.NumNodes() {
		return nil, fmt.Errorf("pathidx: source %d out of range [0, %d)", source, s.g.NumNodes())
	}
	s.ensure()
	// Reset sparse state from the previous call.
	for _, v := range s.touched {
		s.scores[v] = 0
		s.scoreActive[v] = false
	}
	s.touched = s.touched[:0]
	for _, v := range s.curIdx {
		s.cur[v] = 0
	}
	s.curIdx = s.curIdx[:0]

	s.cur[source] = 1
	s.curIdx = append(s.curIdx, source)
	c := s.opt.C
	damp := c
	for l := 1; l <= s.opt.L; l++ {
		damp *= 1 - c
		s.nextIdx = s.nextIdx[:0]
		for _, from := range s.curIdx {
			p := s.cur[from]
			for _, e := range s.g.Out(from) {
				if e.Weight == 0 {
					continue
				}
				if !s.inNext[e.To] {
					s.inNext[e.To] = true
					s.nextIdx = append(s.nextIdx, e.To)
					s.next[e.To] = 0
				}
				s.next[e.To] += p * e.Weight
			}
		}
		for _, v := range s.nextIdx {
			s.inNext[v] = false
			if !s.scoreActive[v] {
				s.scoreActive[v] = true
				s.touched = append(s.touched, v)
			}
			s.scores[v] += damp * s.next[v]
		}
		// Swap frontiers; zero the old one lazily via curIdx bookkeeping.
		for _, v := range s.curIdx {
			s.cur[v] = 0
		}
		s.cur, s.next = s.next, s.cur
		s.curIdx, s.nextIdx = s.nextIdx, s.curIdx
		if len(s.curIdx) == 0 {
			break
		}
	}
	for _, v := range s.curIdx {
		s.cur[v] = 0
	}
	s.curIdx = s.curIdx[:0]
	return s.scores, nil
}

// Similarity returns the truncated EIPD Φ_L(source, target).
func (s *Scorer) Similarity(source, target graph.NodeID) (float64, error) {
	sc, err := s.Scores(source)
	if err != nil {
		return 0, err
	}
	if int(target) < 0 || int(target) >= len(sc) {
		return 0, fmt.Errorf("pathidx: target %d out of range", target)
	}
	return sc[target], nil
}

// SumTopK returns the sum of the scores of the top-k candidates, used by
// the Fig. 7(a) percentage-difference experiment
// (Sum_L = Σ_{a ∈ A_k} S_L(q, a)).
func (s *Scorer) SumTopK(source graph.NodeID, candidates []graph.NodeID, k int) (float64, error) {
	ranked, err := s.Rank(source, candidates, k)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, r := range ranked {
		sum += r.Score
	}
	return sum, nil
}

// Ranked mirrors ppr.Ranked to avoid an import cycle at the call sites
// that only need pathidx.
type Ranked struct {
	Node  graph.NodeID
	Score float64
}

// Rank scores every candidate and returns the top-k list (descending
// score, ties by node ID). k ≤ 0 returns all candidates.
func (s *Scorer) Rank(source graph.NodeID, candidates []graph.NodeID, k int) ([]Ranked, error) {
	sc, err := s.Scores(source)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, 0, len(candidates))
	for _, cand := range candidates {
		var v float64
		if int(cand) >= 0 && int(cand) < len(sc) {
			v = sc[cand]
		}
		out = append(out, Ranked{Node: cand, Score: v})
	}
	sortRanked(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// sortRanked orders descending by score, ties by node ID. It uses the
// generic stable sort so the serving path's hot loop stays allocation-free
// (sort.SliceStable's reflection-based swapper allocates).
func sortRanked(rs []Ranked) {
	slices.SortStableFunc(rs, func(a, b Ranked) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.Node < b.Node:
			return -1
		case a.Node > b.Node:
			return 1
		}
		return 0
	})
}
