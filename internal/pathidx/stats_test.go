package pathidx

import (
	"math"
	"math/rand"
	"testing"

	"kgvote/internal/graph"
)

func TestWalkStatsChain(t *testing.T) {
	// 0 →(0.5) 1 →(0.5) 2: mass halves per step, frontier stays 1.
	g := graph.New(0)
	g.AddNodes(3)
	g.MustSetEdge(0, 1, 0.5)
	g.MustSetEdge(1, 2, 0.5)
	stats, err := WalkStats(g, 0, Options{L: 4, C: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	// Length 3 has an empty frontier, so the scan stops there.
	if len(stats) != 3 {
		t.Fatalf("lengths = %d, want 3", len(stats))
	}
	if stats[0].Frontier != 1 || math.Abs(stats[0].Mass-0.5) > 1e-15 {
		t.Errorf("L=1 stats = %+v", stats[0])
	}
	if stats[1].Frontier != 1 || math.Abs(stats[1].Mass-0.25) > 1e-15 {
		t.Errorf("L=2 stats = %+v", stats[1])
	}
	if stats[2].Frontier != 0 || stats[2].Mass != 0 {
		t.Errorf("L=3 stats = %+v", stats[2])
	}
	// Contribution matches c(1−c)^L · mass.
	want := 0.15 * 0.85 * 0.5
	if math.Abs(stats[0].Contribution-want) > 1e-15 {
		t.Errorf("L=1 contribution = %v, want %v", stats[0].Contribution, want)
	}
}

// The per-length contributions must sum to the total similarity mass over
// all nodes (cross-check against the Scorer).
func TestWalkStatsMatchesScorerTotal(t *testing.T) {
	g := randomGraph(30, 3, rand.New(rand.NewSource(8)))
	opt := Options{L: 4}
	stats, err := WalkStats(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range stats {
		total += s.Contribution
	}
	sc, err := NewScorer(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := sc.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	var scoreSum float64
	for _, v := range scores {
		scoreSum += v
	}
	if math.Abs(total-scoreSum) > 1e-12 {
		t.Errorf("stats total %v vs scorer total %v", total, scoreSum)
	}
}

func TestSuggestL(t *testing.T) {
	// Normalized random graph: mass stays ≈ (1−c)-powered, contributions
	// decay geometrically, so a loose threshold picks a small L.
	g := randomGraph(40, 4, rand.New(rand.NewSource(4)))
	l, err := SuggestL(g, 0, 8, 0.5, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if l < 1 || l > 8 {
		t.Errorf("SuggestL = %d", l)
	}
	// A minuscule threshold is never satisfied: falls back to maxL.
	l, err = SuggestL(g, 0, 6, 1e-9, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if l != 6 {
		t.Errorf("SuggestL strict = %d, want maxL 6", l)
	}
	if _, err := SuggestL(g, 0, 6, 0, 0.15); err == nil {
		t.Errorf("frac = 0 should fail")
	}
	if _, err := SuggestL(g, 99, 6, 0.1, 0.15); err == nil {
		t.Errorf("bad source should fail")
	}
}

func TestWalkStatsValidation(t *testing.T) {
	g := randomGraph(5, 2, rand.New(rand.NewSource(1)))
	if _, err := WalkStats(g, 99, Options{}); err == nil {
		t.Errorf("bad source should fail")
	}
	if _, err := WalkStats(g, 0, Options{C: 7}); err == nil {
		t.Errorf("bad options should fail")
	}
}
