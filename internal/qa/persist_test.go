package qa

import (
	"bytes"
	"strings"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

func TestSaveLoadRoundTripPreservesOptimization(t *testing.T) {
	sys, err := Build(smallCorpus(), core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Ask + vote + optimize, so the saved state carries learned weights
	// and an attached query node.
	q := Question{ID: 1, Entities: map[string]int{"email": 1}}
	qn, ranked, err := sys.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.VoteBest(qn, ranked, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind == vote.Positive {
		t.Skip("premise broken: doc2 already first")
	}
	if _, err := sys.Engine.SolveMulti([]vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	wantRank, err := sys.RankOfDoc(qn, 2)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The old query node must still rank identically on the loaded system.
	gotRank, err := loaded.RankOfDoc(qn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gotRank != wantRank {
		t.Errorf("rank after load = %d, want %d", gotRank, wantRank)
	}
	// Weights match edge for edge.
	sys.Aug.Edges(func(from, to graph.NodeID, w float64) {
		if lw := loaded.Aug.Weight(from, to); lw != w {
			t.Errorf("edge %d->%d: %v vs %v", from, to, lw, w)
		}
	})
	// New questions keep getting fresh query nodes (the counter resumed).
	qn2, _, err := loaded.Ask(Question{ID: 1, Entities: map[string]int{"email": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if qn2 == qn {
		t.Errorf("query counter did not resume: collided with old node")
	}
	if len(loaded.Answers()) != len(sys.Answers()) {
		t.Errorf("answers lost: %d vs %d", len(loaded.Answers()), len(sys.Answers()))
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{nope"), core.Options{}); err == nil {
		t.Errorf("bad JSON should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":99}`), core.Options{}); err == nil {
		t.Errorf("unknown version should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1}`), core.Options{}); err == nil {
		t.Errorf("missing corpus should fail")
	}
	// A state whose graph lost an entity node must be rejected.
	sys, err := Build(smallCorpus(), core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), `"email"`, `"notanentity"`, 1)
	if _, err := Load(strings.NewReader(corrupted), core.Options{K: 3}); err == nil {
		t.Errorf("corrupted state should fail to load")
	}
}
