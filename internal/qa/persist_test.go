package qa

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

func TestSaveLoadRoundTripPreservesOptimization(t *testing.T) {
	sys, err := Build(smallCorpus(), core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Ask + vote + optimize, so the saved state carries learned weights
	// and an attached query node.
	q := Question{ID: 1, Entities: map[string]int{"email": 1}}
	qn, ranked, err := sys.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.VoteBest(qn, ranked, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind == vote.Positive {
		t.Skip("premise broken: doc2 already first")
	}
	if _, err := sys.Engine.SolveMulti([]vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	wantRank, err := sys.RankOfDoc(qn, 2)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The old query node must still rank identically on the loaded system.
	gotRank, err := loaded.RankOfDoc(qn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gotRank != wantRank {
		t.Errorf("rank after load = %d, want %d", gotRank, wantRank)
	}
	// Weights match edge for edge.
	sys.Aug.Edges(func(from, to graph.NodeID, w float64) {
		if lw := loaded.Aug.Weight(from, to); lw != w {
			t.Errorf("edge %d->%d: %v vs %v", from, to, lw, w)
		}
	})
	// New questions keep getting fresh query nodes (the counter resumed).
	qn2, _, err := loaded.Ask(Question{ID: 1, Entities: map[string]int{"email": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if qn2 == qn {
		t.Errorf("query counter did not resume: collided with old node")
	}
	if len(loaded.Answers()) != len(sys.Answers()) {
		t.Errorf("answers lost: %d vs %d", len(loaded.Answers()), len(sys.Answers()))
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{nope"), core.Options{}); err == nil {
		t.Errorf("bad JSON should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":99}`), core.Options{}); err == nil {
		t.Errorf("unknown version should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1}`), core.Options{}); err == nil {
		t.Errorf("missing corpus should fail")
	}
	// A state whose graph lost an entity node must be rejected.
	sys, err := Build(smallCorpus(), core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), `"email"`, `"notanentity"`, 1)
	if _, err := Load(strings.NewReader(corrupted), core.Options{K: 3}); err == nil {
		t.Errorf("corrupted state should fail to load")
	}
}

// TestLoadHostileStates mutates a valid saved state field by field and
// requires Load to reject every variant with an error — never a panic and
// never a silently inconsistent system.
func TestLoadHostileStates(t *testing.T) {
	sys, err := Build(smallCorpus(), core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Attach a query so the queries list is non-empty.
	if _, _, err := sys.Ask(Question{ID: 1, Entities: map[string]int{"email": 1}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()

	mutate := func(t *testing.T, f func(state map[string]any)) []byte {
		t.Helper()
		var state map[string]any
		if err := json.Unmarshal(base, &state); err != nil {
			t.Fatal(err)
		}
		f(state)
		b, err := json.Marshal(state)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	numNodes := sys.Aug.NumNodes()

	cases := []struct {
		name string
		f    func(state map[string]any)
	}{
		{"query node out of bounds", func(s map[string]any) {
			s["queries"] = []int{numNodes + 7}
		}},
		{"query node below entities", func(s map[string]any) {
			s["queries"] = []int{0}
		}},
		{"duplicate query node", func(s map[string]any) {
			q := s["queries"].([]any)[0]
			s["queries"] = []any{q, q}
		}},
		{"duplicate answer node", func(s map[string]any) {
			a := s["answers"].([]any)[0]
			s["answers"] = []any{a, a}
		}},
		{"answer also a query", func(s map[string]any) {
			s["answers"] = append(s["answers"].([]any), s["queries"].([]any)[0])
		}},
		{"entities exceed node count", func(s map[string]any) {
			s["entities"] = numNodes + 1
		}},
		{"negative entities", func(s map[string]any) {
			s["entities"] = -1
		}},
		{"doc mapped to query node", func(s map[string]any) {
			da := s["doc_answer"].(map[string]any)
			for k := range da {
				da[k] = s["queries"].([]any)[0]
				break
			}
		}},
		{"two docs share an answer node", func(s map[string]any) {
			da := s["doc_answer"].(map[string]any)
			var first any
			for _, v := range da {
				first = v
				break
			}
			for k := range da {
				da[k] = first
			}
		}},
		{"answer mapping for unknown doc", func(s map[string]any) {
			da := s["doc_answer"].(map[string]any)
			var first any
			for _, v := range da {
				first = v
				break
			}
			da["9999"] = first
		}},
		{"missing doc mapping", func(s map[string]any) {
			da := s["doc_answer"].(map[string]any)
			for k := range da {
				delete(da, k)
				break
			}
		}},
		{"negative next_query", func(s map[string]any) {
			s["next_query"] = -3
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := mutate(t, tc.f)
			if _, err := Load(bytes.NewReader(b), core.Options{K: 3}); err == nil {
				t.Errorf("hostile state (%s) loaded without error", tc.name)
			}
		})
	}
	// The unmutated state still loads, proving the harness itself is sound.
	if _, err := Load(bytes.NewReader(base), core.Options{K: 3}); err != nil {
		t.Fatalf("baseline state failed to load: %v", err)
	}
}
