package qa

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/ppr"
	"kgvote/internal/telemetry"
)

// Metrics instruments the lock-free serving path. All fields are
// nil-safe: a system without metrics observes nothing.
type Metrics struct {
	// AskSeconds times one question end to end (seed + rank).
	AskSeconds *telemetry.Histogram
	// BatchSeconds times whole AskBatch calls.
	BatchSeconds *telemetry.Histogram
	// CacheHits / CacheMisses count rank-cache outcomes across
	// snapshots (process-lifetime totals; per-snapshot numbers live on
	// the snapshot's own cache, see core.GraphSnapshot.CacheStats).
	CacheHits   *telemetry.Counter
	CacheMisses *telemetry.Counter
}

// NewMetrics registers the qa serving series in reg (nil reg = nil
// metrics).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		AskSeconds: reg.Histogram("kgvote_qa_ask_seconds",
			"End-to-end latency of ranking one question against the serving snapshot.", nil, nil),
		BatchSeconds: reg.Histogram("kgvote_qa_askbatch_seconds",
			"Latency of whole AskBatch calls.", nil, nil),
		CacheHits: reg.Counter("kgvote_qa_rank_cache_hits_total",
			"Questions answered from the snapshot rank cache.", nil),
		CacheMisses: reg.Counter("kgvote_qa_rank_cache_misses_total",
			"Questions that required a fresh sparse sweep.", nil),
	}
}

// SetMetrics wires serving-path instrumentation; call once before
// serving. nil disables.
func (s *System) SetMetrics(m *Metrics) { s.metrics = m }

// PushStats surfaces the engine's incremental push-scorer counters; ok
// is false when the system serves with the exact enumerator backend
// (core.Options.Scorer == pathidx.BackendEnum, the default).
func (s *System) PushStats() (ppr.IncrementalStats, bool) { return s.Engine.PushStats() }

// This file is the system's lock-free serving path: questions are ranked
// against the engine's published GraphSnapshot as virtual query nodes
// (seed vectors) instead of being attached to the shared mutable graph.
// Any number of goroutines may call Seed, RankSnapshot, and AskBatch
// concurrently with a single writer voting and flushing — Build-time maps
// (vocabulary, entity IDs, document tables, answer list) are never
// mutated afterwards, and the graph itself is only read through the
// immutable snapshot.

// RankedDoc is one answer of a snapshot ranking resolved to its document.
type RankedDoc struct {
	Doc   int
	Title string
	Score float64
}

// Seed converts a question into the virtual-query seed vector that
// AttachQuestion would have produced as edge weights: entities in sorted
// name order, counts normalized to sum to 1. The returned key is a
// canonical cache key for the question (identical questions map to
// identical keys, so the snapshot rank cache can skip rescoring).
func (s *System) Seed(q Question) (ids []graph.NodeID, ws []float64, key string, err error) {
	ids, counts := entityVector(s, q.Entities)
	if len(ids) == 0 {
		return nil, nil, "", fmt.Errorf("qa: question %d has no known entities", q.ID)
	}
	var total float64
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return nil, nil, "", fmt.Errorf("qa: question %d has all-zero entity counts", q.ID)
	}
	var b strings.Builder
	for i := range counts {
		counts[i] /= total
		b.WriteString(strconv.Itoa(int(ids[i])))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(counts[i], 'g', -1, 64))
		b.WriteByte(';')
	}
	return ids, counts, b.String(), nil
}

// RankSnapshot ranks every answer for the question against the engine's
// current serving snapshot, without attaching a query node or otherwise
// mutating the graph. It returns the snapshot used (for its epoch) and
// the top-K ranked answers; the slice may be shared with the snapshot's
// rank cache and must be treated as immutable.
func (s *System) RankSnapshot(q Question) (*core.GraphSnapshot, []pathidx.Ranked, error) {
	snap, ranked, _, err := s.RankSnapshotTraced(q, nil)
	return snap, ranked, err
}

// RankSnapshotTraced is RankSnapshot with per-stage span recording and
// a cache-hit report: the seed and rank stages land on tr (nil = no
// tracing), and serving metrics — ask latency, cache hit/miss — are
// observed when SetMetrics has wired them. This is the server's
// /ask path.
func (s *System) RankSnapshotTraced(q Question, tr *telemetry.Trace) (snap *core.GraphSnapshot, ranked []pathidx.Ranked, cacheHit bool, err error) {
	return s.RankSnapshotTracedCtx(context.Background(), q, tr)
}

// RankSnapshotTracedCtx is RankSnapshotTraced with deadline awareness: a
// context that expired before the rank stage (the expensive walk
// enumeration) aborts with the context error instead of burning snapshot
// scorer time on a request nobody is waiting for.
func (s *System) RankSnapshotTracedCtx(ctx context.Context, q Question, tr *telemetry.Trace) (snap *core.GraphSnapshot, ranked []pathidx.Ranked, cacheHit bool, err error) {
	m := s.metrics
	var stopAsk func()
	if m != nil {
		stopAsk = m.AskSeconds.Start()
	}
	stopSeed := tr.Stage("seed")
	ids, ws, key, err := s.Seed(q)
	stopSeed()
	if err != nil {
		return nil, nil, false, err
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, false, fmt.Errorf("qa: rank aborted: %w", cerr)
		}
	}
	snap = s.Engine.Serving()
	stopRank := tr.Stage("rank")
	ranked, cacheHit, err = snap.RankSeededCached(key, ids, ws, s.ServingAnswers(), s.Engine.Options().K)
	stopRank()
	if err != nil {
		return nil, nil, false, err
	}
	if m != nil {
		if cacheHit {
			m.CacheHits.Inc()
		} else {
			m.CacheMisses.Inc()
		}
		stopAsk()
	}
	return snap, ranked, cacheHit, nil
}

// AskBatch ranks a batch of questions concurrently, fanning the queries
// across the snapshot's scorer pool with the given number of workers
// (≤ 0 = GOMAXPROCS). Results are positional: out[i] is the top-K ranked
// document list of qs[i]. The first question error aborts the batch.
func (s *System) AskBatch(qs []Question, workers int) ([][]RankedDoc, error) {
	out := make([][]RankedDoc, len(qs))
	if len(qs) == 0 {
		return out, nil
	}
	if m := s.metrics; m != nil {
		defer m.BatchSeconds.Start()()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				_, ranked, err := s.RankSnapshot(qs[i])
				if err != nil {
					errOnce.Do(func() { firstEr = fmt.Errorf("qa: batch question %d: %w", i, err) })
					return
				}
				docs := make([]RankedDoc, len(ranked))
				for j, r := range ranked {
					d := s.DocOf(r.Node)
					docs[j] = RankedDoc{Doc: d, Title: s.TitleOf(d), Score: r.Score}
				}
				out[i] = docs
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}
