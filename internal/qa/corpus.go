// Package qa is the question-answering substrate the paper's framework is
// evaluated on: a document corpus with extracted entities, the
// co-occurrence knowledge graph built from it (Section III-A), query and
// answer attachment, and the two baselines of Table V (entity-overlap IR
// and the random-walk Q&A of [5]).
package qa

import (
	"fmt"
	"sort"
	"strings"

	"kgvote/internal/graph"
)

// Document is one answer document (a HELP page in the paper's Taobao
// corpus) with its extracted entity occurrence counts.
type Document struct {
	ID       int
	Title    string
	Entities map[string]int // entity → occurrence count, all counts ≥ 1
}

// Question is one user question with extracted entities and optional
// ground truth for evaluation.
type Question struct {
	ID       int
	Entities map[string]int
	// BestDoc is the ground-truth best document ID, or −1 if unknown.
	BestDoc int
	// Relevant optionally lists additional relevant document IDs (for
	// MAP); BestDoc is always implied relevant.
	Relevant []int
}

// Corpus is a set of answer documents sharing an entity vocabulary.
type Corpus struct {
	Docs []Document
}

// Validate checks corpus invariants.
func (c *Corpus) Validate() error {
	seen := make(map[int]bool, len(c.Docs))
	for i, d := range c.Docs {
		if seen[d.ID] {
			return fmt.Errorf("qa: duplicate document ID %d", d.ID)
		}
		seen[d.ID] = true
		if len(d.Entities) == 0 {
			return fmt.Errorf("qa: document %d (index %d) has no entities", d.ID, i)
		}
		for e, n := range d.Entities {
			if e == "" || n < 1 {
				return fmt.Errorf("qa: document %d has bad entity %q count %d", d.ID, e, n)
			}
		}
	}
	return nil
}

// Vocabulary returns the sorted set of entities across all documents.
func (c *Corpus) Vocabulary() []string {
	set := make(map[string]bool)
	for _, d := range c.Docs {
		for e := range d.Entities {
			set[e] = true
		}
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// ExtractEntities is the sequence-labelling stand-in used by examples and
// the CLI: it lowercases, splits on non-letter/digit boundaries, and keeps
// tokens present in the vocabulary, counting occurrences.
func ExtractEntities(text string, vocabulary map[string]bool) map[string]int {
	out := make(map[string]int)
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
	for _, f := range fields {
		if vocabulary[f] {
			out[f]++
		}
	}
	return out
}

// BuildGraph constructs the knowledge graph of Section III-A from the
// corpus: one node per entity; a directed edge (vi, vj) weighted by the
// conditional co-occurrence probability
//
//	w(vi, vj) = #(vi, vj) / #(vi)
//
// where #(vi) is the number of documents containing vi and #(vi, vj) the
// number of documents containing both.
func BuildGraph(c *Corpus) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := graph.New(256)
	docFreq := make(map[graph.NodeID]int)
	pairFreq := make(map[graph.EdgeKey]int)
	for _, d := range c.Docs {
		// Entity node IDs must not depend on map iteration order: create
		// nodes in sorted-name order so identical corpora build identical
		// graphs run to run.
		names := make([]string, 0, len(d.Entities))
		for e := range d.Entities {
			names = append(names, e)
		}
		sort.Strings(names)
		ids := make([]graph.NodeID, 0, len(names))
		for _, e := range names {
			ids = append(ids, g.AddNode(e))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			docFreq[id]++
		}
		for _, a := range ids {
			for _, b := range ids {
				if a != b {
					pairFreq[graph.EdgeKey{From: a, To: b}]++
				}
			}
		}
	}
	// Deterministic edge insertion order: adjacency-list order decides
	// walk enumeration order and therefore floating-point summation order
	// in the solver; map iteration would make builds run-to-run unstable.
	keys := make([]graph.EdgeKey, 0, len(pairFreq))
	for k := range pairFreq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, k := range keys {
		w := float64(pairFreq[k]) / float64(docFreq[k.From])
		if err := g.SetEdge(k.From, k.To, w); err != nil {
			return nil, err
		}
	}
	// Conditional co-occurrence probabilities P(vj|vi) sum, over all j, to
	// the average number of co-occurring entities — often well above 1.
	// Random-walk semantics (and the PPR equivalence of Theorem 1) need
	// sub-stochastic rows, so cap each node's out-sum at 1 while keeping
	// the paper's initialization wherever it is already valid.
	for id := 0; id < g.NumNodes(); id++ {
		n := graph.NodeID(id)
		if s := g.OutWeightSum(n); s > 1 {
			for _, e := range g.Out(n) {
				if err := g.SetWeight(n, e.To, e.Weight/s); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
