package qa

import (
	"bytes"
	"strings"
	"testing"
)

func TestCorpusRoundTrip(t *testing.T) {
	c := smallCorpus()
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Docs) != len(c.Docs) {
		t.Fatalf("docs = %d, want %d", len(got.Docs), len(c.Docs))
	}
	for i, d := range c.Docs {
		g := got.Docs[i]
		if g.ID != d.ID || g.Title != d.Title || len(g.Entities) != len(d.Entities) {
			t.Errorf("doc %d mismatch: %+v vs %+v", i, g, d)
		}
		for e, n := range d.Entities {
			if g.Entities[e] != n {
				t.Errorf("doc %d entity %q: %d vs %d", i, e, g.Entities[e], n)
			}
		}
	}
}

func TestCorpusIOErrors(t *testing.T) {
	bad := &Corpus{Docs: []Document{{ID: 1}}}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, bad); err == nil {
		t.Errorf("invalid corpus should not serialize")
	}
	if _, err := ReadCorpus(strings.NewReader("{nope")); err == nil {
		t.Errorf("bad JSON should fail")
	}
	if _, err := ReadCorpus(strings.NewReader(`{"Docs":[{"ID":1}]}`)); err == nil {
		t.Errorf("invalid decoded corpus should fail")
	}
}

func TestQuestionsRoundTrip(t *testing.T) {
	qs := []Question{
		{ID: 1, Entities: map[string]int{"email": 2}, BestDoc: 3, Relevant: []int{3, 4}},
		{ID: 2, Entities: map[string]int{"cart": 1}, BestDoc: -1},
	}
	var buf bytes.Buffer
	if err := WriteQuestions(&buf, qs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQuestions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].BestDoc != 3 || got[1].BestDoc != -1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got[0].Entities["email"] != 2 {
		t.Errorf("entities lost")
	}
	if len(got[0].Relevant) != 2 {
		t.Errorf("relevant list lost")
	}
}

func TestReadQuestionsErrors(t *testing.T) {
	if _, err := ReadQuestions(strings.NewReader("[nope")); err == nil {
		t.Errorf("bad JSON should fail")
	}
	if _, err := ReadQuestions(strings.NewReader(`[{"ID":1}]`)); err == nil {
		t.Errorf("question without entities should fail")
	}
}
