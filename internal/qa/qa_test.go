package qa

import (
	"fmt"
	"math"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

func smallCorpus() *Corpus {
	return &Corpus{Docs: []Document{
		{ID: 1, Title: "stuck email in outbox", Entities: map[string]int{"email": 2, "outbox": 1}},
		{ID: 2, Title: "configure outlook email", Entities: map[string]int{"email": 1, "outlook": 1}},
		{ID: 3, Title: "refund from cart", Entities: map[string]int{"cart": 1, "refund": 1}},
	}}
}

func TestCorpusValidate(t *testing.T) {
	if err := smallCorpus().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Corpus{
		{Docs: []Document{{ID: 1, Entities: map[string]int{"a": 1}}, {ID: 1, Entities: map[string]int{"b": 1}}}},
		{Docs: []Document{{ID: 1, Entities: nil}}},
		{Docs: []Document{{ID: 1, Entities: map[string]int{"": 1}}}},
		{Docs: []Document{{ID: 1, Entities: map[string]int{"a": 0}}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad corpus %d accepted", i)
		}
	}
}

func TestVocabulary(t *testing.T) {
	v := smallCorpus().Vocabulary()
	want := []string{"cart", "email", "outbox", "outlook", "refund"}
	if len(v) != len(want) {
		t.Fatalf("vocabulary = %v", v)
	}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("vocabulary[%d] = %q, want %q", i, v[i], want[i])
		}
	}
}

func TestExtractEntities(t *testing.T) {
	vocab := map[string]bool{"email": true, "outbox": true}
	got := ExtractEntities("My EMAIL is stuck; email won't leave the Outbox!", vocab)
	if got["email"] != 2 || got["outbox"] != 1 {
		t.Errorf("extraction = %v", got)
	}
	if len(got) != 2 {
		t.Errorf("unexpected entities: %v", got)
	}
	if n := len(ExtractEntities("nothing known here", vocab)); n != 0 {
		t.Errorf("extracted %d entities from unknown text", n)
	}
}

func TestBuildGraphWeights(t *testing.T) {
	g, err := BuildGraph(smallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	email := g.Lookup("email")
	outbox := g.Lookup("outbox")
	outlook := g.Lookup("outlook")
	cart := g.Lookup("cart")
	refund := g.Lookup("refund")
	// email appears in 2 docs; co-occurs with outbox in 1 → w = 1/2.
	if w := g.Weight(email, outbox); math.Abs(w-0.5) > 1e-15 {
		t.Errorf("w(email,outbox) = %v, want 0.5", w)
	}
	// outbox appears in 1 doc; co-occurs with email in 1 → w = 1.
	if w := g.Weight(outbox, email); w != 1 {
		t.Errorf("w(outbox,email) = %v, want 1", w)
	}
	if w := g.Weight(email, outlook); math.Abs(w-0.5) > 1e-15 {
		t.Errorf("w(email,outlook) = %v, want 0.5", w)
	}
	if w := g.Weight(cart, refund); w != 1 {
		t.Errorf("w(cart,refund) = %v, want 1", w)
	}
	// No cross-topic edges.
	if g.HasEdge(email, cart) || g.HasEdge(cart, email) {
		t.Errorf("spurious cross-document edge")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGraph(&Corpus{Docs: []Document{{ID: 1}}}); err == nil {
		t.Errorf("invalid corpus should fail")
	}
}

func TestSystemAsk(t *testing.T) {
	s, err := Build(smallCorpus(), core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Answers()) != 3 {
		t.Fatalf("answers = %d, want 3", len(s.Answers()))
	}
	q := Question{ID: 1, Entities: map[string]int{"outbox": 1}, BestDoc: 1}
	qn, ranked, err := s.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatalf("no ranked answers")
	}
	// doc1 contains outbox directly; doc3 is unreachable from outbox.
	top := s.DocOf(ranked[0])
	if top != 1 {
		t.Errorf("top answer = doc %d, want doc 1", top)
	}
	r, err := s.RankOfDoc(qn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("rank of doc1 = %d, want 1", r)
	}
	if _, err := s.AnswerOf(99); err == nil {
		t.Errorf("unknown doc should fail")
	}
	if s.DocOf(qn) != -1 {
		t.Errorf("query node has no doc")
	}
}

func TestSystemUnknownEntities(t *testing.T) {
	s, err := Build(smallCorpus(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachQuestion(Question{ID: 9, Entities: map[string]int{"zzz": 1}}); err == nil {
		t.Errorf("question with unknown entities should fail")
	}
	// Known + unknown mix keeps the known ones.
	qn, err := s.AttachQuestion(Question{ID: 10, Entities: map[string]int{"email": 1, "zzz": 4}})
	if err != nil {
		t.Fatal(err)
	}
	if w := s.Aug.Weight(qn, s.Aug.Lookup("email")); w != 1 {
		t.Errorf("known entity weight = %v, want 1 (unknown dropped)", w)
	}
}

func TestEndToEndVoteImprovesRanking(t *testing.T) {
	s, err := Build(smallCorpus(), core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Query about email: doc1 (email ×2) initially beats doc2. The user
	// votes doc2 best.
	q := Question{ID: 1, Entities: map[string]int{"email": 1}}
	qn, ranked, err := s.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.RankOfDoc(qn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if before == 1 {
		t.Skip("doc2 already first; test premise broken")
	}
	v, err := s.VoteBest(qn, ranked, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != vote.Negative {
		t.Fatalf("expected a negative vote, got %v", v.Kind)
	}
	if _, err := s.Engine.SolveMulti([]vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	after, err := s.RankOfDoc(qn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("rank did not improve: %d → %d", before, after)
	}
}

func TestIRRank(t *testing.T) {
	c := smallCorpus()
	q := Question{ID: 1, Entities: map[string]int{"cart": 1, "refund": 1}}
	ids := IRRank(c, q, 2)
	if len(ids) != 2 || ids[0] != 3 {
		t.Errorf("IRRank = %v, want doc 3 first", ids)
	}
	if r := IRRankOf(c, q, 3); r != 1 {
		t.Errorf("IRRankOf(doc3) = %d, want 1", r)
	}
	if r := IRRankOf(c, q, 99); r != 0 {
		t.Errorf("IRRankOf(missing) = %d, want 0", r)
	}
	// k = 0 returns all.
	if got := IRRank(c, q, 0); len(got) != 3 {
		t.Errorf("IRRank all = %v", got)
	}
}

func TestWalkRankAgreesOnTopAnswer(t *testing.T) {
	s, err := Build(smallCorpus(), core.Options{K: 3, L: 6})
	if err != nil {
		t.Fatal(err)
	}
	q := Question{ID: 1, Entities: map[string]int{"outbox": 1}}
	qn, ranked, err := s.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	walk, err := s.WalkRank(qn, 3)
	if err != nil {
		t.Fatal(err)
	}
	// PPR and truncated EIPD agree on the top answer of this tiny graph.
	if walk[0].Node != ranked[0] {
		t.Errorf("walk top %d vs EIPD top %d", walk[0].Node, ranked[0])
	}
	r, err := s.WalkRankOf(qn, s.DocOf(ranked[0]))
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("WalkRankOf(top) = %d, want 1", r)
	}
	if _, err := s.WalkRankOf(qn, 99); err == nil {
		t.Errorf("unknown doc should fail")
	}
}

// Identical corpora must build byte-identical graphs: node IDs, adjacency
// order, and weights. Solver trajectories (and experiment results) depend
// on this.
func TestBuildGraphDeterministic(t *testing.T) {
	big := &Corpus{}
	for d := 0; d < 30; d++ {
		ents := map[string]int{}
		for e := 0; e < 5; e++ {
			ents[fmt.Sprintf("e%02d", (d*3+e*7)%40)] = 1 + e%2
		}
		big.Docs = append(big.Docs, Document{ID: d, Entities: ents})
	}
	a, err := BuildGraph(big)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGraph(big)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs")
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Name(graph.NodeID(i)) != b.Name(graph.NodeID(i)) {
			t.Fatalf("node %d name differs: %q vs %q", i, a.Name(graph.NodeID(i)), b.Name(graph.NodeID(i)))
		}
		ao, bo := a.Out(graph.NodeID(i)), b.Out(graph.NodeID(i))
		if len(ao) != len(bo) {
			t.Fatalf("node %d degree differs", i)
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("node %d edge %d differs: %+v vs %+v", i, j, ao[j], bo[j])
			}
		}
	}
}
