package qa

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"kgvote/internal/core"
	"kgvote/internal/graph"
)

// systemState is the serialized form of a System: the corpus, the full
// augmented graph (including every optimized weight and every attached
// query/answer node), and the bookkeeping needed to resume exactly where
// the previous session stopped.
type systemState struct {
	Version   int                  `json:"version"`
	Corpus    *Corpus              `json:"corpus"`
	Graph     json.RawMessage      `json:"graph"`
	Entities  int                  `json:"entities"`
	Queries   []graph.NodeID       `json:"queries"`
	Answers   []graph.NodeID       `json:"answers"`
	DocAnswer map[int]graph.NodeID `json:"doc_answer"`
	NextQuery int                  `json:"next_query"`
}

const stateVersion = 1

// Save serializes the system — optimized weights included — so a later
// Load resumes with the same rankings.
func (s *System) Save(w io.Writer) error {
	var gbuf bytes.Buffer
	if err := s.Aug.WriteJSON(&gbuf); err != nil {
		return fmt.Errorf("qa: save graph: %w", err)
	}
	state := systemState{
		Version:   stateVersion,
		Corpus:    s.Corpus,
		Graph:     json.RawMessage(gbuf.Bytes()),
		Entities:  s.Aug.Entities,
		Queries:   s.Aug.Queries,
		Answers:   s.Aug.Answers,
		DocAnswer: s.docAnswer,
		NextQuery: s.nextQuery,
	}
	return json.NewEncoder(w).Encode(state)
}

// Load reconstructs a saved System with a fresh engine using opt.
func Load(r io.Reader, opt core.Options) (*System, error) {
	var state systemState
	if err := json.NewDecoder(r).Decode(&state); err != nil {
		return nil, fmt.Errorf("qa: load: %w", err)
	}
	if state.Version != stateVersion {
		return nil, fmt.Errorf("qa: load: unsupported state version %d", state.Version)
	}
	if state.Corpus == nil {
		return nil, fmt.Errorf("qa: load: missing corpus")
	}
	if err := state.Corpus.Validate(); err != nil {
		return nil, err
	}
	g, err := graph.ReadJSON(bytes.NewReader(state.Graph))
	if err != nil {
		return nil, fmt.Errorf("qa: load graph: %w", err)
	}
	aug, err := graph.RestoreAugmented(g, state.Entities, state.Queries, state.Answers)
	if err != nil {
		return nil, err
	}
	s := &System{
		Corpus:    state.Corpus,
		Aug:       aug,
		vocab:     make(map[string]bool),
		entityID:  make(map[string]graph.NodeID),
		docAnswer: state.DocAnswer,
		answerDoc: make(map[graph.NodeID]int, len(state.DocAnswer)),
		docTitle:  make(map[int]string, len(state.Corpus.Docs)),
		nextQuery: state.NextQuery,
	}
	for _, d := range state.Corpus.Docs {
		s.docTitle[d.ID] = d.Title
	}
	for _, e := range state.Corpus.Vocabulary() {
		id := g.Lookup(e)
		if id == graph.None {
			return nil, fmt.Errorf("qa: load: entity %q missing from graph", e)
		}
		s.vocab[e] = true
		s.entityID[e] = id
	}
	if state.NextQuery < 0 {
		return nil, fmt.Errorf("qa: load: negative next_query %d", state.NextQuery)
	}
	for doc, ans := range state.DocAnswer {
		if _, ok := s.docTitle[doc]; !ok {
			return nil, fmt.Errorf("qa: load: answer mapping for unknown document %d", doc)
		}
		if !aug.IsAnswer(ans) {
			return nil, fmt.Errorf("qa: load: document %d maps to non-answer node %d", doc, ans)
		}
		if other, dup := s.answerDoc[ans]; dup {
			return nil, fmt.Errorf("qa: load: documents %d and %d both map to answer node %d", other, doc, ans)
		}
		s.answerDoc[ans] = doc
	}
	if len(s.docAnswer) != len(state.Corpus.Docs) {
		return nil, fmt.Errorf("qa: load: %d answer mappings for %d documents", len(s.docAnswer), len(state.Corpus.Docs))
	}
	eng, err := core.New(g, opt)
	if err != nil {
		return nil, err
	}
	s.Engine = eng
	return s, nil
}
