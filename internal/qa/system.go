package qa

import (
	"fmt"
	"sort"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

// System assembles a runnable Q&A system: the corpus, its augmented
// knowledge graph (answer node per document), and a core.Engine for
// similarity evaluation and vote-driven optimization.
type System struct {
	Corpus *Corpus
	Aug    *graph.Augmented
	Engine *core.Engine

	vocab     map[string]bool
	entityID  map[string]graph.NodeID
	docAnswer map[int]graph.NodeID
	answerDoc map[graph.NodeID]int
	docTitle  map[int]string
	// nextQuery numbers attached questions so that every attachment gets a
	// fresh query node, even when callers reuse Question IDs.
	nextQuery int

	// served, when non-nil, is the subset of answer nodes the lock-free
	// serving path ranks (sharded serving: a shard answers only for the
	// documents it owns). nil serves every answer. Set once before
	// serving; read lock-free.
	served []graph.NodeID

	// metrics, when non-nil, instruments the serving path (see
	// SetMetrics in serve.go). Set once before serving; read lock-free.
	metrics *Metrics
}

// Build constructs the system from a corpus: it builds the co-occurrence
// graph, attaches one answer node per document (entity-count weighted),
// and wires up the optimization engine.
func Build(c *Corpus, opt core.Options) (*System, error) {
	g, err := BuildGraph(c)
	if err != nil {
		return nil, err
	}
	aug := graph.Augment(g)
	s := &System{
		Corpus:    c,
		Aug:       aug,
		vocab:     make(map[string]bool),
		entityID:  make(map[string]graph.NodeID),
		docAnswer: make(map[int]graph.NodeID, len(c.Docs)),
		answerDoc: make(map[graph.NodeID]int, len(c.Docs)),
		docTitle:  make(map[int]string, len(c.Docs)),
	}
	for _, e := range c.Vocabulary() {
		s.vocab[e] = true
		s.entityID[e] = g.Lookup(e)
	}
	for _, d := range c.Docs {
		ents, counts := entityVector(s, d.Entities)
		name := fmt.Sprintf("doc#%d", d.ID)
		ans, err := aug.AttachAnswer(name, ents, counts)
		if err != nil {
			return nil, fmt.Errorf("qa: attaching document %d: %w", d.ID, err)
		}
		s.docAnswer[d.ID] = ans
		s.answerDoc[ans] = d.ID
		s.docTitle[d.ID] = d.Title
	}
	eng, err := core.New(g, opt)
	if err != nil {
		return nil, err
	}
	s.Engine = eng
	return s, nil
}

// entityVector converts an entity-count map into parallel slices in
// deterministic (sorted-name) order, dropping unknown entities.
func entityVector(s *System, ents map[string]int) ([]graph.NodeID, []float64) {
	names := make([]string, 0, len(ents))
	for e := range ents {
		if _, ok := s.entityID[e]; ok {
			names = append(names, e)
		}
	}
	sort.Strings(names)
	ids := make([]graph.NodeID, len(names))
	counts := make([]float64, len(names))
	for i, e := range names {
		ids[i] = s.entityID[e]
		counts[i] = float64(ents[e])
	}
	return ids, counts
}

// Vocabulary returns the entity vocabulary as a set.
func (s *System) Vocabulary() map[string]bool { return s.vocab }

// Answers returns all answer nodes.
func (s *System) Answers() []graph.NodeID { return s.Aug.Answers }

// RestrictServing limits the answers the lock-free serving path (Seed /
// RankSnapshot / AskBatch) ranks to the documents keep returns true for,
// and returns how many survive. Vote resolution (AnswerOf) and the
// legacy attach-and-rank path still see the full corpus — a sharded
// ranked list may legitimately reference documents owned elsewhere.
// Call once before serving; passing nil restores full serving.
func (s *System) RestrictServing(keep func(docID int) bool) int {
	if keep == nil {
		s.served = nil
		return len(s.Aug.Answers)
	}
	served := make([]graph.NodeID, 0, len(s.Aug.Answers))
	for _, a := range s.Aug.Answers {
		if keep(s.answerDoc[a]) {
			served = append(served, a)
		}
	}
	s.served = served
	return len(served)
}

// ServingAnswers returns the answer nodes the serving path ranks: the
// restricted subset under sharded serving, else every answer.
func (s *System) ServingAnswers() []graph.NodeID {
	if s.served != nil {
		return s.served
	}
	return s.Aug.Answers
}

// AnswerOf returns the answer node of a document ID.
func (s *System) AnswerOf(docID int) (graph.NodeID, error) {
	if a, ok := s.docAnswer[docID]; ok {
		return a, nil
	}
	return graph.None, fmt.Errorf("qa: unknown document %d", docID)
}

// TitleOf returns a document's title, or "" for unknown IDs.
func (s *System) TitleOf(docID int) string { return s.docTitle[docID] }

// DocOf returns the document ID of an answer node, or −1.
func (s *System) DocOf(a graph.NodeID) int {
	if d, ok := s.answerDoc[a]; ok {
		return d
	}
	return -1
}

// AttachQuestion links a question's entities to the graph and returns the
// query node (Section III-A: weights are normalized occurrence counts).
func (s *System) AttachQuestion(q Question) (graph.NodeID, error) {
	ents, counts := entityVector(s, q.Entities)
	if len(ents) == 0 {
		return graph.None, fmt.Errorf("qa: question %d has no known entities", q.ID)
	}
	name := fmt.Sprintf("q#%d/%d", q.ID, s.nextQuery)
	s.nextQuery++
	return s.Aug.AttachQuery(name, ents, counts)
}

// Ask links the question and returns the query node together with the
// top-K ranked answer nodes.
func (s *System) Ask(q Question) (graph.NodeID, []graph.NodeID, error) {
	qn, err := s.AttachQuestion(q)
	if err != nil {
		return graph.None, nil, err
	}
	ranked, err := s.Engine.Rank(qn, s.Answers())
	if err != nil {
		return graph.None, nil, err
	}
	out := make([]graph.NodeID, len(ranked))
	for i, r := range ranked {
		out[i] = r.Node
	}
	return qn, out, nil
}

// RankOfDoc returns the 1-based rank of a document among all answers for
// an already-attached query node.
func (s *System) RankOfDoc(qn graph.NodeID, docID int) (int, error) {
	ans, err := s.AnswerOf(docID)
	if err != nil {
		return 0, err
	}
	return s.Engine.RankOf(qn, ans, s.Answers())
}

// VoteBest forms the vote implied by the user choosing docID as the best
// answer for the already-asked question (query node qn, ranked list from
// Ask).
func (s *System) VoteBest(qn graph.NodeID, ranked []graph.NodeID, docID int) (vote.Vote, error) {
	ans, err := s.AnswerOf(docID)
	if err != nil {
		return vote.Vote{}, err
	}
	return vote.FromRanking(qn, ranked, ans)
}
