package qa

import (
	"testing"

	"kgvote/internal/core"
)

func serveTestSystem(t *testing.T) *System {
	t.Helper()
	corpus := &Corpus{Docs: []Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
		{ID: 2, Title: "Message delivery delays", Entities: map[string]int{"message": 2, "send": 2, "delay": 1}},
		{ID: 3, Title: "Spam filter settings", Entities: map[string]int{"spam": 2, "filter": 2, "email": 1}},
	}}
	sys, err := Build(corpus, core.Options{K: 4, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRankSnapshotMatchesAsk(t *testing.T) {
	sys := serveTestSystem(t)
	questions := []Question{
		{ID: 0, Entities: map[string]int{"email": 2, "send": 1}},
		{ID: 1, Entities: map[string]int{"outlook": 1}},
		{ID: 2, Entities: map[string]int{"message": 1, "delay": 2}},
	}
	// Snapshot rankings first: they must not mutate the graph.
	nodesBefore := sys.Aug.NumNodes()
	var snapDocs [][]int
	for _, q := range questions {
		_, ranked, err := sys.RankSnapshot(q)
		if err != nil {
			t.Fatal(err)
		}
		docs := make([]int, len(ranked))
		for i, r := range ranked {
			docs[i] = sys.DocOf(r.Node)
		}
		snapDocs = append(snapDocs, docs)
	}
	if sys.Aug.NumNodes() != nodesBefore {
		t.Fatalf("RankSnapshot mutated the graph: %d -> %d nodes", nodesBefore, sys.Aug.NumNodes())
	}
	// The attached path must agree document for document.
	for i, q := range questions {
		_, ranked, err := sys.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranked) != len(snapDocs[i]) {
			t.Fatalf("question %d: %d vs %d results", i, len(ranked), len(snapDocs[i]))
		}
		for j, a := range ranked {
			if sys.DocOf(a) != snapDocs[i][j] {
				t.Errorf("question %d rank %d: snapshot doc %d, attached doc %d",
					i, j, snapDocs[i][j], sys.DocOf(a))
			}
		}
	}
}

func TestAskBatch(t *testing.T) {
	sys := serveTestSystem(t)
	questions := []Question{
		{ID: 0, Entities: map[string]int{"email": 2, "send": 1}},
		{ID: 1, Entities: map[string]int{"outlook": 1}},
		{ID: 2, Entities: map[string]int{"message": 1, "delay": 2}},
		{ID: 3, Entities: map[string]int{"spam": 1, "filter": 1}},
		{ID: 4, Entities: map[string]int{"email": 1}},
		{ID: 5, Entities: map[string]int{"send": 3, "outbox": 1}},
	}
	batch, err := sys.AskBatch(questions, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(questions) {
		t.Fatalf("batch returned %d results for %d questions", len(batch), len(questions))
	}
	for i, q := range questions {
		_, ranked, err := sys.RankSnapshot(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(ranked) {
			t.Fatalf("question %d: batch %d vs direct %d", i, len(batch[i]), len(ranked))
		}
		for j, r := range ranked {
			if batch[i][j].Doc != sys.DocOf(r.Node) {
				t.Errorf("question %d rank %d: batch doc %d, direct doc %d",
					i, j, batch[i][j].Doc, sys.DocOf(r.Node))
			}
			if batch[i][j].Title != sys.TitleOf(batch[i][j].Doc) {
				t.Errorf("question %d rank %d: title mismatch", i, j)
			}
		}
	}

	// Errors propagate.
	if _, err := sys.AskBatch([]Question{{ID: 9, Entities: map[string]int{"nope": 1}}}, 2); err == nil {
		t.Error("unknown-entity question did not fail the batch")
	}
	// Empty batch is fine.
	if out, err := sys.AskBatch(nil, 3); err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}
