package qa

import (
	"sort"

	"kgvote/internal/graph"
	"kgvote/internal/ppr"
)

// IRRank is the information-retrieval baseline of Table V: documents are
// ranked by the entity coincidence rate between question and document
// (Jaccard over entity sets), with ties broken by document ID.
func IRRank(c *Corpus, q Question, k int) []int {
	type scored struct {
		id    int
		score float64
	}
	qset := make(map[string]bool, len(q.Entities))
	for e := range q.Entities {
		qset[e] = true
	}
	out := make([]scored, 0, len(c.Docs))
	for _, d := range c.Docs {
		inter, union := 0, len(qset)
		for e := range d.Entities {
			if qset[e] {
				inter++
			} else {
				union++
			}
		}
		var s float64
		if union > 0 {
			s = float64(inter) / float64(union)
		}
		out = append(out, scored{id: d.ID, score: s})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].id < out[j].id
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	ids := make([]int, len(out))
	for i, s := range out {
		ids[i] = s.id
	}
	return ids
}

// IRRankOf returns the 1-based IR rank of docID for the question, or 0.
func IRRankOf(c *Corpus, q Question, docID int) int {
	for i, id := range IRRank(c, q, 0) {
		if id == docID {
			return i + 1
		}
	}
	return 0
}

// WalkRank is the random-walk Q&A baseline of [5] (Table V and Table VI):
// similarity is the exact PPR score obtained by solving the linear system,
// evaluated once per answer, so ranking |A| answers costs |A| solves.
// The query node must already be attached.
func (s *System) WalkRank(qn graph.NodeID, k int) ([]ppr.Ranked, error) {
	w, err := ppr.NewWalker(s.Aug.Graph, ppr.Options{C: s.Engine.Options().C})
	if err != nil {
		return nil, err
	}
	return w.Rank(qn, s.Answers(), k)
}

// WalkRankOf returns the 1-based random-walk rank of docID for the
// attached query node.
func (s *System) WalkRankOf(qn graph.NodeID, docID int) (int, error) {
	ans, err := s.AnswerOf(docID)
	if err != nil {
		return 0, err
	}
	ranked, err := s.WalkRank(qn, 0)
	if err != nil {
		return 0, err
	}
	for i, r := range ranked {
		if r.Node == ans {
			return i + 1, nil
		}
	}
	return 0, nil
}
