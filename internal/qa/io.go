package qa

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteCorpus serializes a corpus as indented JSON.
func WriteCorpus(w io.Writer, c *Corpus) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadCorpus loads a corpus written by WriteCorpus (or any JSON matching
// the Corpus shape) and validates it.
func ReadCorpus(r io.Reader) (*Corpus, error) {
	var c Corpus
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("qa: decode corpus: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// WriteQuestions serializes a question set as indented JSON.
func WriteQuestions(w io.Writer, qs []Question) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(qs)
}

// ReadQuestions loads a question set written by WriteQuestions.
func ReadQuestions(r io.Reader) ([]Question, error) {
	var qs []Question
	if err := json.NewDecoder(r).Decode(&qs); err != nil {
		return nil, fmt.Errorf("qa: decode questions: %w", err)
	}
	for i, q := range qs {
		if len(q.Entities) == 0 {
			return nil, fmt.Errorf("qa: question %d (index %d) has no entities", q.ID, i)
		}
	}
	return qs, nil
}
