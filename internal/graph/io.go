package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonGraph is the serialized form of a Graph.
type jsonGraph struct {
	Nodes []string   `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonEdge struct {
	From   NodeID  `json:"f"`
	To     NodeID  `json:"t"`
	Weight float64 `json:"w"`
}

// WriteJSON serializes the graph as JSON. Anonymous nodes are written as
// empty strings; edge order is deterministic.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Nodes: g.names, Edges: make([]jsonEdge, 0, g.numEdges)}
	if jg.Nodes == nil {
		jg.Nodes = []string{}
	}
	g.Edges(func(from, to NodeID, wt float64) {
		jg.Edges = append(jg.Edges, jsonEdge{From: from, To: to, Weight: wt})
	})
	enc := json.NewEncoder(w)
	return enc.Encode(jg)
}

// ReadJSON deserializes a graph written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	g := New(len(jg.Nodes))
	for _, name := range jg.Nodes {
		g.AddNode(name)
	}
	for _, e := range jg.Edges {
		if err := g.SetEdge(e.From, e.To, e.Weight); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// WriteTSV writes the edge list as "from<TAB>to<TAB>weight" lines using
// node IDs. It is a compact interchange format for large graphs.
func (g *Graph) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(from, to NodeID, wt float64) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%d\t%d\t%g\n", from, to, wt)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// maxReadNodes bounds how many nodes ReadTSV will materialize: node IDs
// are taken from the input, so without a cap a one-line hostile file
// naming node 2000000000 would demand gigabytes before anything fails.
const maxReadNodes = 1 << 26

// ReadTSV reads an edge list written by WriteTSV. Nodes are created
// anonymously up to the largest ID seen. Lines starting with '#' and blank
// lines are skipped. A missing third column defaults to weight 1.
func ReadTSV(r io.Reader) (*Graph, error) {
	g := New(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q", lineNo, fields[0])
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q", lineNo, fields[1])
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node ID", lineNo)
		}
		max := from
		if to > max {
			max = to
		}
		if max >= maxReadNodes {
			return nil, fmt.Errorf("graph: line %d: node ID %d exceeds the %d-node reader limit", lineNo, max, maxReadNodes)
		}
		if max >= g.NumNodes() {
			g.AddNodes(max - g.NumNodes() + 1)
		}
		if err := g.SetEdge(NodeID(from), NodeID(to), w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	return g, nil
}
