package graph

import (
	"math/rand"
	"testing"
)

func TestNeighborhood(t *testing.T) {
	g := New(0)
	g.AddNodes(5)
	g.MustSetEdge(0, 1, 1)
	g.MustSetEdge(1, 2, 1)
	g.MustSetEdge(2, 3, 1)
	g.MustSetEdge(3, 0, 1) // cycle back

	n0, err := g.Neighborhood(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(n0) != 1 || n0[0] != 0 {
		t.Errorf("depth 0 = %v", n0)
	}
	n2, err := g.Neighborhood(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(n2) != 3 { // 0, 1, 2
		t.Errorf("depth 2 = %v", n2)
	}
	nAll, err := g.Neighborhood(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nAll) != 4 { // node 4 is disconnected
		t.Errorf("deep neighborhood = %v", nAll)
	}
	if _, err := g.Neighborhood(99, 1); err == nil {
		t.Errorf("bad start should fail")
	}
	if _, err := g.Neighborhood(0, -1); err == nil {
		t.Errorf("negative depth should fail")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(0)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNodes(1) // anonymous
	g.MustSetEdge(a, b, 0.5)
	g.MustSetEdge(b, c, 0.7)
	g.MustSetEdge(c, d, 0.9)
	g.MustSetEdge(d, a, 0.2)

	sub, mapping, err := g.InducedSubgraph([]NodeID{a, b, d})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes = %d", sub.NumNodes())
	}
	// Edges within the set survive: a→b and d→a. b→c and c→d are cut.
	if sub.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", sub.NumEdges())
	}
	if w := sub.Weight(mapping[a], mapping[b]); w != 0.5 {
		t.Errorf("w(a,b) = %v", w)
	}
	if w := sub.Weight(mapping[d], mapping[a]); w != 0.2 {
		t.Errorf("w(d,a) = %v", w)
	}
	if sub.Lookup("a") != mapping[a] {
		t.Errorf("names lost")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, _, err := g.InducedSubgraph([]NodeID{99}); err == nil {
		t.Errorf("bad node should fail")
	}
	if _, _, err := g.InducedSubgraph([]NodeID{a, a}); err == nil {
		t.Errorf("duplicate node should fail")
	}
}

func TestInducedSubgraphPreservesWalkStructure(t *testing.T) {
	g := randomGraph(40, 4, rand.New(rand.NewSource(23)))
	nodes, err := g.Neighborhood(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sub, mapping, err := g.InducedSubgraph(nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Every kept edge matches the original weight.
	for orig, subID := range mapping {
		for _, e := range sub.Out(subID) {
			// Find the original target.
			var origTo NodeID = None
			for o, s := range mapping {
				if s == e.To {
					origTo = o
					break
				}
			}
			if origTo == None {
				t.Fatalf("subgraph edge to unmapped node")
			}
			if g.Weight(orig, origTo) != e.Weight {
				t.Errorf("weight mismatch on %d->%d", orig, origTo)
			}
		}
	}
}
