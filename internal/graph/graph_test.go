package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddNodeDedup(t *testing.T) {
	g := New(0)
	a := g.AddNode("a")
	b := g.AddNode("b")
	if a == b {
		t.Fatalf("distinct names got same ID %d", a)
	}
	if got := g.AddNode("a"); got != a {
		t.Errorf("AddNode(a) again = %d, want %d", got, a)
	}
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", g.NumNodes())
	}
	if g.Lookup("a") != a || g.Lookup("b") != b {
		t.Errorf("Lookup mismatch")
	}
	if g.Lookup("zzz") != None {
		t.Errorf("Lookup of missing name should be None")
	}
	if g.Name(a) != "a" {
		t.Errorf("Name(a) = %q", g.Name(a))
	}
	if g.Name(NodeID(99)) != "" {
		t.Errorf("Name out of range should be empty")
	}
}

func TestAnonymousNodes(t *testing.T) {
	g := New(0)
	first := g.AddNodes(3)
	if first != 0 || g.NumNodes() != 3 {
		t.Fatalf("AddNodes: first=%d n=%d", first, g.NumNodes())
	}
	// Anonymous AddNode calls never dedup.
	x := g.AddNode("")
	y := g.AddNode("")
	if x == y {
		t.Errorf("anonymous nodes deduped: %d == %d", x, y)
	}
}

func TestSetEdgeAndWeight(t *testing.T) {
	g := New(0)
	a, b := g.AddNode("a"), g.AddNode("b")
	if err := g.SetEdge(a, b, 0.5); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Errorf("HasEdge wrong")
	}
	if w := g.Weight(a, b); w != 0.5 {
		t.Errorf("Weight = %v, want 0.5", w)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	// Update existing edge: count must not grow.
	if err := g.SetEdge(a, b, 0.7); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.Weight(a, b) != 0.7 {
		t.Errorf("update failed: n=%d w=%v", g.NumEdges(), g.Weight(a, b))
	}
	if err := g.SetWeight(a, b, 0.2); err != nil {
		t.Fatal(err)
	}
	if g.Weight(a, b) != 0.2 {
		t.Errorf("SetWeight failed")
	}
	if err := g.SetWeight(b, a, 0.1); err == nil {
		t.Errorf("SetWeight on missing edge should fail")
	}
}

func TestSetEdgeErrors(t *testing.T) {
	g := New(0)
	a := g.AddNode("a")
	cases := []struct {
		from, to NodeID
		w        float64
	}{
		{a, NodeID(5), 0.5},
		{NodeID(5), a, 0.5},
		{a, a, math.NaN()},
		{a, a, math.Inf(1)},
		{a, a, -0.1},
	}
	for _, c := range cases {
		if err := g.SetEdge(c.from, c.to, c.w); err == nil {
			t.Errorf("SetEdge(%d,%d,%v): want error", c.from, c.to, c.w)
		}
	}
}

func TestNormalize(t *testing.T) {
	g := New(0)
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.MustSetEdge(a, b, 2)
	g.MustSetEdge(a, c, 6)
	g.NormalizeOut(a)
	if w := g.Weight(a, b); math.Abs(w-0.25) > 1e-15 {
		t.Errorf("w(a,b) = %v, want 0.25", w)
	}
	if w := g.Weight(a, c); math.Abs(w-0.75) > 1e-15 {
		t.Errorf("w(a,c) = %v, want 0.75", w)
	}
	// Node with no out edges is a no-op.
	g.NormalizeOut(b)
	// Zero-sum node is a no-op.
	g.MustSetEdge(b, a, 0)
	g.NormalizeOut(b)
	if g.Weight(b, a) != 0 {
		t.Errorf("zero-weight normalization changed weight")
	}
}

func TestNormalizeAllInvariant(t *testing.T) {
	g := randomGraph(50, 4, rand.New(rand.NewSource(1)))
	g.NormalizeAll()
	for id := 0; id < g.NumNodes(); id++ {
		if g.OutDegree(NodeID(id)) == 0 {
			continue
		}
		s := g.OutWeightSum(NodeID(id))
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("node %d: out sum %v after NormalizeAll", id, s)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(0)
	a, b := g.AddNode("a"), g.AddNode("b")
	g.MustSetEdge(a, b, 0.5)
	c := g.Clone()
	c.MustSetEdge(b, a, 0.9)
	if err := c.SetWeight(a, b, 0.1); err != nil {
		t.Fatal(err)
	}
	if g.Weight(a, b) != 0.5 {
		t.Errorf("clone mutation leaked into original: %v", g.Weight(a, b))
	}
	if g.HasEdge(b, a) {
		t.Errorf("clone edge leaked into original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Lookup("a") != a {
		t.Errorf("clone lost name index")
	}
}

func TestReverse(t *testing.T) {
	g := New(0)
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.MustSetEdge(a, b, 0.3)
	g.MustSetEdge(b, c, 0.7)
	r := g.Reverse()
	if r.NumNodes() != 3 || r.NumEdges() != 2 {
		t.Fatalf("reverse shape: n=%d m=%d", r.NumNodes(), r.NumEdges())
	}
	if r.Weight(b, a) != 0.3 || r.Weight(c, b) != 0.7 {
		t.Errorf("reverse weights wrong: %v %v", r.Weight(b, a), r.Weight(c, b))
	}
	if r.Name(a) != "a" {
		t.Errorf("reverse lost names")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeKeysSorted(t *testing.T) {
	g := New(0)
	n := g.AddNodes(4)
	_ = n
	g.MustSetEdge(3, 0, 1)
	g.MustSetEdge(0, 2, 1)
	g.MustSetEdge(0, 1, 1)
	keys := g.EdgeKeys()
	want := []EdgeKey{{0, 1}, {0, 2}, {3, 0}}
	if len(keys) != len(want) {
		t.Fatalf("len = %d", len(keys))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("keys[%d] = %v, want %v", i, keys[i], want[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := New(0)
	a, b := g.AddNode("alpha"), g.AddNode("beta")
	anon := g.AddNodes(1)
	g.MustSetEdge(a, b, 0.25)
	g.MustSetEdge(b, anon, 0.75)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if got.Weight(a, b) != 0.25 || got.Weight(b, anon) != 0.75 {
		t.Errorf("weights lost in round trip")
	}
	if got.Lookup("alpha") != a {
		t.Errorf("names lost in round trip")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Errorf("bad JSON should fail")
	}
	// Edge pointing outside node range.
	if _, err := ReadJSON(strings.NewReader(`{"nodes":["a"],"edges":[{"f":0,"t":7,"w":1}]}`)); err == nil {
		t.Errorf("out-of-range edge should fail")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g := randomGraph(30, 3, rand.New(rand.NewSource(7)))
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: %d vs %d", got.NumEdges(), g.NumEdges())
	}
	g.Edges(func(from, to NodeID, w float64) {
		if gw := got.Weight(from, to); math.Abs(gw-w) > 1e-12 {
			t.Errorf("edge %d->%d: %v vs %v", from, to, gw, w)
		}
	})
}

func TestReadTSVForms(t *testing.T) {
	in := "# comment\n\n0 1 0.5\n2\t0\n"
	g, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.Weight(0, 1) != 0.5 {
		t.Errorf("explicit weight lost")
	}
	if g.Weight(2, 0) != 1 {
		t.Errorf("default weight should be 1, got %v", g.Weight(2, 0))
	}
	for _, bad := range []string{"0\n", "x 1\n", "0 y\n", "0 1 z\n", "-1 2\n"} {
		if _, err := ReadTSV(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadTSV(%q): want error", bad)
		}
	}
}

// randomGraph builds a random graph for tests: n nodes, ~deg out-edges per
// node, uniform random weights, normalized.
func randomGraph(n, deg int, rng *rand.Rand) *Graph {
	g := New(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		for d := 0; d < deg; d++ {
			j := NodeID(rng.Intn(n))
			if j == NodeID(i) {
				continue
			}
			g.MustSetEdge(NodeID(i), j, rng.Float64()+0.01)
		}
		g.NormalizeOut(NodeID(i))
	}
	return g
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := New(0)
	a, b := g.AddNode("a"), g.AddNode("b")
	g.MustSetEdge(a, b, 0.5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt internals directly.
	g.out[a][0].Weight = math.NaN()
	if err := g.Validate(); err == nil {
		t.Errorf("NaN weight not detected")
	}
	g.out[a][0].Weight = 0.5
	g.numEdges = 99
	if err := g.Validate(); err == nil {
		t.Errorf("edge count mismatch not detected")
	}
}

// Property: for any sequence of valid SetEdge calls, Validate passes and
// Weight returns what was last set.
func TestQuickSetEdgeConsistency(t *testing.T) {
	f := func(ops []struct {
		From, To uint8
		W        float64
	}) bool {
		g := New(0)
		g.AddNodes(16)
		last := map[EdgeKey]float64{}
		for _, op := range ops {
			from, to := NodeID(op.From%16), NodeID(op.To%16)
			w := math.Abs(op.W)
			if math.IsInf(w, 0) || math.IsNaN(w) {
				continue
			}
			if err := g.SetEdge(from, to, w); err != nil {
				return false
			}
			last[EdgeKey{from, to}] = w
		}
		if err := g.Validate(); err != nil {
			return false
		}
		for k, w := range last {
			if g.Weight(k.From, k.To) != w {
				return false
			}
		}
		return g.NumEdges() == len(last)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Reverse(Reverse(g)) has identical edges to g.
func TestQuickReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(20, 3, rng)
		rr := g.Reverse().Reverse()
		if rr.NumNodes() != g.NumNodes() || rr.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(from, to NodeID, w float64) {
			if math.Abs(rr.Weight(from, to)-w) > 1e-15 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
