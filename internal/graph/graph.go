// Package graph provides the weighted directed knowledge-graph substrate
// used by the whole framework: node/edge storage, weight access and
// mutation, per-node normalization, cloning, and validation.
//
// A knowledge graph is G = (V, E, W) where every directed edge (vi, vj)
// carries a weight w(vi, vj) ∈ (0, 1]. Weights are interpreted as random
// walk transition probabilities, so the out-weights of a node normally sum
// to at most 1 (exactly 1 after NormalizeAll).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node inside one Graph. IDs are dense: the first node
// added gets ID 0, the next 1, and so on.
type NodeID int32

// None is the invalid node ID returned by lookups that find nothing.
const None NodeID = -1

// Edge is one outgoing edge of a node.
type Edge struct {
	To     NodeID
	Weight float64
}

// EdgeKey identifies a directed edge by its endpoints. It is the key type
// used by edge sets and by the SGP variable mapping.
type EdgeKey struct {
	From, To NodeID
}

func (k EdgeKey) String() string { return fmt.Sprintf("%d->%d", k.From, k.To) }

// pack builds the internal map key for a directed edge.
func pack(from, to NodeID) uint64 { return uint64(uint32(from))<<32 | uint64(uint32(to)) }

// Graph is a mutable weighted directed graph. The zero value is an empty
// graph ready to use.
type Graph struct {
	names []string
	index map[string]NodeID
	out   [][]Edge
	// pos maps a packed (from, to) pair to the index of the edge inside
	// out[from], giving O(1) weight lookup and update.
	pos      map[uint64]int
	numEdges int
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		names: make([]string, 0, n),
		index: make(map[string]NodeID, n),
		out:   make([][]Edge, 0, n),
		pos:   make(map[uint64]int),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// AddNode adds a node with the given name and returns its ID. If a node
// with that name already exists its ID is returned unchanged. An empty
// name creates an anonymous node that cannot be looked up by name.
func (g *Graph) AddNode(name string) NodeID {
	if name != "" {
		if id, ok := g.index[name]; ok {
			return id
		}
	}
	id := NodeID(len(g.out))
	g.names = append(g.names, name)
	g.out = append(g.out, nil)
	if name != "" {
		if g.index == nil {
			g.index = make(map[string]NodeID)
		}
		g.index[name] = id
	}
	return id
}

// AddNodes adds n anonymous nodes and returns the ID of the first one.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.out))
	for i := 0; i < n; i++ {
		g.names = append(g.names, "")
		g.out = append(g.out, nil)
	}
	return first
}

// Lookup returns the ID of the named node, or None.
func (g *Graph) Lookup(name string) NodeID {
	if id, ok := g.index[name]; ok {
		return id
	}
	return None
}

// Name returns the name of a node (possibly empty for anonymous nodes).
func (g *Graph) Name(id NodeID) string {
	if int(id) < 0 || int(id) >= len(g.names) {
		return ""
	}
	return g.names[id]
}

// valid reports whether id refers to an existing node.
func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.out) }

// SetEdge adds the directed edge (from, to) with the given weight, or
// updates the weight if the edge already exists.
func (g *Graph) SetEdge(from, to NodeID, w float64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("graph: SetEdge(%d, %d): node out of range [0, %d)", from, to, len(g.out))
	}
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return fmt.Errorf("graph: SetEdge(%d, %d): invalid weight %v", from, to, w)
	}
	if g.pos == nil {
		g.pos = make(map[uint64]int)
	}
	key := pack(from, to)
	if i, ok := g.pos[key]; ok {
		g.out[from][i].Weight = w
		return nil
	}
	g.pos[key] = len(g.out[from])
	g.out[from] = append(g.out[from], Edge{To: to, Weight: w})
	g.numEdges++
	return nil
}

// MustSetEdge is SetEdge that panics on error. It is intended for
// construction code whose inputs are known to be valid.
func (g *Graph) MustSetEdge(from, to NodeID, w float64) {
	if err := g.SetEdge(from, to, w); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the directed edge (from, to) exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	_, ok := g.pos[pack(from, to)]
	return ok
}

// Weight returns the weight of the directed edge (from, to), or 0 if the
// edge does not exist.
func (g *Graph) Weight(from, to NodeID) float64 {
	if i, ok := g.pos[pack(from, to)]; ok {
		return g.out[from][i].Weight
	}
	return 0
}

// SetWeight updates the weight of an existing edge.
func (g *Graph) SetWeight(from, to NodeID, w float64) error {
	if _, ok := g.pos[pack(from, to)]; !ok {
		return fmt.Errorf("graph: SetWeight: edge %d->%d does not exist", from, to)
	}
	return g.SetEdge(from, to, w)
}

// Out returns the outgoing edges of a node. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Out(id NodeID) []Edge {
	if !g.valid(id) {
		return nil
	}
	return g.out[id]
}

// OutDegree returns the number of outgoing edges of a node.
func (g *Graph) OutDegree(id NodeID) int {
	if !g.valid(id) {
		return 0
	}
	return len(g.out[id])
}

// OutWeightSum returns the sum of outgoing edge weights of a node.
func (g *Graph) OutWeightSum(id NodeID) float64 {
	var s float64
	for _, e := range g.Out(id) {
		s += e.Weight
	}
	return s
}

// Edges calls fn for every directed edge. Iteration order is deterministic
// (by source node ID, then insertion order).
func (g *Graph) Edges(fn func(from, to NodeID, w float64)) {
	for from, es := range g.out {
		for _, e := range es {
			fn(NodeID(from), e.To, e.Weight)
		}
	}
}

// EdgeKeys returns every directed edge key, sorted by (From, To).
func (g *Graph) EdgeKeys() []EdgeKey {
	keys := make([]EdgeKey, 0, g.numEdges)
	g.Edges(func(from, to NodeID, _ float64) {
		keys = append(keys, EdgeKey{From: from, To: to})
	})
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	return keys
}

// NormalizeOut rescales the outgoing weights of a node so they sum to 1.
// A node with no outgoing edges, or whose weights sum to 0, is left
// unchanged.
func (g *Graph) NormalizeOut(id NodeID) {
	s := g.OutWeightSum(id)
	if s <= 0 {
		return
	}
	for i := range g.out[id] {
		g.out[id][i].Weight /= s
	}
}

// NormalizeAll rescales every node's outgoing weights to sum to 1.
func (g *Graph) NormalizeAll() {
	for id := range g.out {
		g.NormalizeOut(NodeID(id))
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names:    append([]string(nil), g.names...),
		index:    make(map[string]NodeID, len(g.index)),
		out:      make([][]Edge, len(g.out)),
		pos:      make(map[uint64]int, len(g.pos)),
		numEdges: g.numEdges,
	}
	for k, v := range g.index {
		c.index[k] = v
	}
	for i, es := range g.out {
		c.out[i] = append([]Edge(nil), es...)
	}
	for k, v := range g.pos {
		c.pos[k] = v
	}
	return c
}

// AvgOutDegree returns the average out-degree across all nodes, or 0 for
// an empty graph.
func (g *Graph) AvgOutDegree() float64 {
	if len(g.out) == 0 {
		return 0
	}
	return float64(g.numEdges) / float64(len(g.out))
}

// ErrInvalid is wrapped by Validate for all structural errors.
var ErrInvalid = errors.New("graph: invalid")

// Validate checks structural invariants: edge endpoints in range, weights
// finite and non-negative, and the position index consistent with the
// adjacency lists.
func (g *Graph) Validate() error {
	n := len(g.out)
	count := 0
	for from, es := range g.out {
		for i, e := range es {
			count++
			if int(e.To) < 0 || int(e.To) >= n {
				return fmt.Errorf("%w: edge %d->%d target out of range", ErrInvalid, from, e.To)
			}
			if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight < 0 {
				return fmt.Errorf("%w: edge %d->%d has weight %v", ErrInvalid, from, e.To, e.Weight)
			}
			j, ok := g.pos[pack(NodeID(from), e.To)]
			if !ok || j != i {
				return fmt.Errorf("%w: position index inconsistent for edge %d->%d", ErrInvalid, from, e.To)
			}
		}
	}
	if count != g.numEdges {
		return fmt.Errorf("%w: edge count %d != recorded %d", ErrInvalid, count, g.numEdges)
	}
	if len(g.pos) != count {
		return fmt.Errorf("%w: position index size %d != edge count %d", ErrInvalid, len(g.pos), count)
	}
	return nil
}

// Reverse returns a new graph with every edge direction flipped, keeping
// weights. Node names are preserved.
func (g *Graph) Reverse() *Graph {
	r := New(g.NumNodes())
	for _, name := range g.names {
		r.AddNode(name)
	}
	g.Edges(func(from, to NodeID, w float64) {
		r.MustSetEdge(to, from, w)
	})
	return r
}
