package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON feeds arbitrary bytes to the JSON graph reader. It must
// never panic, and any graph it accepts must serialize and re-read to the
// same shape.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"nodes":["a","b"],"edges":[{"f":0,"t":1,"w":0.5}]}`))
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":["x"],"edges":[{"f":0,"t":9,"w":1}]}`))     // dangling edge
	f.Add([]byte(`{"nodes":["x"],"edges":[{"f":0,"t":0,"w":-1}]}`))    // negative weight
	f.Add([]byte(`{"nodes":["x"],"edges":[{"f":-5,"t":0,"w":1}]}`))    // negative node
	f.Add([]byte(`{"nodes":["a","a"],"edges":[]}`))                    // duplicate names
	f.Add([]byte(`{"nodes":["x"],"edges":[{"f":0,"t":0,"w":1e309}]}`)) // overflow weight

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("serialized graph failed to re-read: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges",
				g.NumNodes(), g2.NumNodes(), g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzReadTSV feeds arbitrary text to the TSV edge-list reader: no
// panics, no unbounded allocations, and accepted graphs re-read cleanly.
func FuzzReadTSV(f *testing.F) {
	f.Add("0\t1\t0.5\n1\t2\n# comment\n\n")
	f.Add("0 1 nan")
	f.Add("0 1 -3")
	f.Add("2000000000 1 1") // must be rejected by the node cap, not OOM
	f.Add("a b c")
	f.Add("0\t0\t1e308\n")

	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadTSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteTSV(&buf); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("serialized graph failed to re-read: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count: %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}
