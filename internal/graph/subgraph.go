package graph

import "fmt"

// Neighborhood returns the nodes reachable from start within depth hops
// (start included), following out-edges. It is the local region a vote's
// similarity evaluation can touch when paths are pruned at L = depth.
func (g *Graph) Neighborhood(start NodeID, depth int) ([]NodeID, error) {
	if !g.valid(start) {
		return nil, fmt.Errorf("graph: Neighborhood: node %d out of range", start)
	}
	if depth < 0 {
		return nil, fmt.Errorf("graph: Neighborhood: negative depth %d", depth)
	}
	visited := map[NodeID]bool{start: true}
	frontier := []NodeID{start}
	out := []NodeID{start}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []NodeID
		for _, n := range frontier {
			for _, e := range g.Out(n) {
				if !visited[e.To] {
					visited[e.To] = true
					next = append(next, e.To)
					out = append(out, e.To)
				}
			}
		}
		frontier = next
	}
	return out, nil
}

// InducedSubgraph builds a new graph over the given nodes, keeping every
// edge whose endpoints are both in the set. Node names are preserved; the
// returned mapping translates original IDs to subgraph IDs.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, map[NodeID]NodeID, error) {
	sub := New(len(nodes))
	mapping := make(map[NodeID]NodeID, len(nodes))
	for _, n := range nodes {
		if !g.valid(n) {
			return nil, nil, fmt.Errorf("graph: InducedSubgraph: node %d out of range", n)
		}
		if _, dup := mapping[n]; dup {
			return nil, nil, fmt.Errorf("graph: InducedSubgraph: duplicate node %d", n)
		}
		// Names must stay unique in the subgraph; anonymous nodes are
		// added positionally.
		name := g.Name(n)
		var id NodeID
		if name == "" {
			id = sub.AddNodes(1)
		} else {
			id = sub.AddNode(name)
		}
		mapping[n] = id
	}
	for _, n := range nodes {
		for _, e := range g.Out(n) {
			to, ok := mapping[e.To]
			if !ok {
				continue
			}
			if err := sub.SetEdge(mapping[n], to, e.Weight); err != nil {
				return nil, nil, err
			}
		}
	}
	return sub, mapping, nil
}
