package graph

import (
	"math"
	"testing"
)

// fig1 builds the knowledge graph of the paper's Fig. 1(a): entities
// Stuck, Outlook, Email, Outbox, SendMessage, plus the edge weights used
// in the Section IV-A running example.
func fig1(t *testing.T) (*Augmented, map[string]NodeID) {
	t.Helper()
	g := New(0)
	names := []string{"Stuck", "Outlook", "Email", "Outbox", "SendMessage"}
	ids := make(map[string]NodeID, len(names))
	for _, n := range names {
		ids[n] = g.AddNode(n)
	}
	set := func(a, b string, w float64) { g.MustSetEdge(ids[a], ids[b], w) }
	set("Outbox", "Email", 0.3)
	set("Outbox", "SendMessage", 0.5)
	set("Email", "Outbox", 0.4)
	set("Email", "SendMessage", 0.6)
	set("SendMessage", "Outlook", 0.3)
	return Augment(g), ids
}

func TestAttachQuery(t *testing.T) {
	a, ids := fig1(t)
	q, err := a.AttachQuery("q", []NodeID{ids["Stuck"], ids["Outlook"], ids["Email"]}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsQuery(q) || a.IsAnswer(q) || a.IsEntity(q) {
		t.Errorf("query node classification wrong")
	}
	for _, e := range []string{"Stuck", "Outlook", "Email"} {
		if w := a.Weight(q, ids[e]); math.Abs(w-1.0/3) > 1e-12 {
			t.Errorf("w(q,%s) = %v, want 1/3", e, w)
		}
	}
	if len(a.Queries) != 1 || a.Queries[0] != q {
		t.Errorf("Queries list wrong: %v", a.Queries)
	}
}

func TestAttachAnswer(t *testing.T) {
	a, ids := fig1(t)
	ans, err := a.AttachAnswer("a1", []NodeID{ids["Email"], ids["Outbox"]}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsAnswer(ans) {
		t.Errorf("answer node classification wrong")
	}
	if w := a.Weight(ids["Email"], ans); math.Abs(w-0.75) > 1e-12 {
		t.Errorf("w(Email,a1) = %v, want 0.75", w)
	}
	if w := a.Weight(ids["Outbox"], ans); math.Abs(w-0.25) > 1e-12 {
		t.Errorf("w(Outbox,a1) = %v, want 0.25", w)
	}
}

func TestAttachAnswerUniform(t *testing.T) {
	a, ids := fig1(t)
	ans, err := a.AttachAnswerUniform("a3", []NodeID{ids["Outlook"]})
	if err != nil {
		t.Fatal(err)
	}
	if w := a.Weight(ids["Outlook"], ans); w != 1 {
		t.Errorf("w(Outlook,a3) = %v, want 1", w)
	}
	if len(a.Answers) != 1 {
		t.Errorf("Answers list wrong")
	}
}

func TestAttachErrors(t *testing.T) {
	a, ids := fig1(t)
	if _, err := a.AttachQuery("q", nil, nil); err == nil {
		t.Errorf("empty entity list should fail")
	}
	if _, err := a.AttachQuery("q", []NodeID{ids["Stuck"]}, []float64{1, 2}); err == nil {
		t.Errorf("length mismatch should fail")
	}
	if _, err := a.AttachQuery("q", []NodeID{ids["Stuck"]}, []float64{-1}); err == nil {
		t.Errorf("negative count should fail")
	}
	if _, err := a.AttachQuery("q", []NodeID{ids["Stuck"]}, []float64{0}); err == nil {
		t.Errorf("zero total should fail")
	}
	// Attach one query, then try linking another query to it (non-entity).
	q, err := a.AttachQuery("q", []NodeID{ids["Stuck"]}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AttachQuery("q2", []NodeID{q}, []float64{1}); err == nil {
		t.Errorf("linking to non-entity node should fail")
	}
	if _, err := a.AttachAnswerUniform("a", nil); err == nil {
		t.Errorf("uniform answer with no entities should fail")
	}
	if _, err := a.AttachAnswerUniform("a", []NodeID{q}); err == nil {
		t.Errorf("uniform answer to non-entity should fail")
	}
}

func TestAttachZeroCountSkipsEdge(t *testing.T) {
	a, ids := fig1(t)
	q, err := a.AttachQuery("q", []NodeID{ids["Stuck"], ids["Email"]}, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.HasEdge(q, ids["Stuck"]) {
		t.Errorf("zero-count entity should get no edge")
	}
	if w := a.Weight(q, ids["Email"]); w != 1 {
		t.Errorf("w(q,Email) = %v, want 1", w)
	}
}

func TestEntityBoundary(t *testing.T) {
	a, ids := fig1(t)
	if !a.IsEntity(ids["Stuck"]) {
		t.Errorf("Stuck should be an entity")
	}
	if a.Entities != 5 {
		t.Errorf("Entities = %d, want 5", a.Entities)
	}
	q, _ := a.AttachQuery("q", []NodeID{ids["Stuck"]}, []float64{1})
	ans, _ := a.AttachAnswerUniform("a", []NodeID{ids["Outlook"]})
	if a.IsEntity(q) || a.IsEntity(ans) {
		t.Errorf("query/answer nodes must not be entities")
	}
	if a.Entities != 5 {
		t.Errorf("Entities changed after attach: %d", a.Entities)
	}
}
