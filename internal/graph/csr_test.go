package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompileMatchesGraph(t *testing.T) {
	g := randomGraph(40, 4, rand.New(rand.NewSource(13)))
	c := Compile(g)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("shape: %d/%d vs %d/%d", c.NumNodes(), c.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	g.Edges(func(from, to NodeID, w float64) {
		if cw := c.Weight(from, to); math.Abs(cw-w) > 1e-15 {
			t.Errorf("edge %d->%d: %v vs %v", from, to, cw, w)
		}
	})
	// Rows preserve per-node edges.
	for i := 0; i < g.NumNodes(); i++ {
		cols, ws := c.Row(NodeID(i))
		out := g.Out(NodeID(i))
		if len(cols) != len(out) || len(ws) != len(out) {
			t.Fatalf("row %d length mismatch", i)
		}
		for j, e := range out {
			if cols[j] != e.To || ws[j] != e.Weight {
				t.Errorf("row %d entry %d mismatch", i, j)
			}
		}
	}
}

func TestCSREmptyAndOutOfRange(t *testing.T) {
	g := New(0)
	c := Compile(g)
	if c.NumNodes() != 0 || c.NumEdges() != 0 {
		t.Errorf("empty compile wrong: %d/%d", c.NumNodes(), c.NumEdges())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cols, ws := c.Row(5)
	if cols != nil || ws != nil {
		t.Errorf("out-of-range row should be nil")
	}
	if c.Weight(1, 2) != 0 {
		t.Errorf("missing edge weight should be 0")
	}
}

func TestCSRValidateDetectsCorruption(t *testing.T) {
	g := New(0)
	a, b := g.AddNode("a"), g.AddNode("b")
	g.MustSetEdge(a, b, 0.5)
	c := Compile(g)
	c.colIdx[0] = 99
	if err := c.Validate(); err == nil {
		t.Errorf("bad target not detected")
	}
	c = Compile(g)
	c.rowPtr[1] = 99
	if err := c.Validate(); err == nil {
		t.Errorf("bad row pointer not detected")
	}
	c = Compile(g)
	c.weights = c.weights[:0]
	if err := c.Validate(); err == nil {
		t.Errorf("weight/column mismatch not detected")
	}
}

// Property: Compile is a faithful snapshot — mutating the source graph
// afterwards never changes the CSR.
func TestQuickCSRSnapshotIsolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(15, 3, rng)
		c := Compile(g)
		var firstFrom, firstTo NodeID
		found := false
		g.Edges(func(from, to NodeID, w float64) {
			if !found {
				firstFrom, firstTo = from, to
				found = true
			}
		})
		if !found {
			return true
		}
		before := c.Weight(firstFrom, firstTo)
		if err := g.SetWeight(firstFrom, firstTo, 0.123456); err != nil {
			return false
		}
		return c.Weight(firstFrom, firstTo) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGraphOutTraversal(b *testing.B) {
	g := randomGraph(5000, 8, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for n := 0; n < g.NumNodes(); n++ {
			for _, e := range g.Out(NodeID(n)) {
				sink += e.Weight
			}
		}
	}
	_ = sink
}

func BenchmarkCSRRowTraversal(b *testing.B) {
	g := randomGraph(5000, 8, rand.New(rand.NewSource(1)))
	c := Compile(g)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for n := 0; n < c.NumNodes(); n++ {
			_, ws := c.Row(NodeID(n))
			for _, w := range ws {
				sink += w
			}
		}
	}
	_ = sink
}

func TestCompileAtEpochAndNames(t *testing.T) {
	g := New(4)
	a := g.AddNode("alpha")
	b := g.AddNode("beta")
	if err := g.SetEdge(a, b, 0.5); err != nil {
		t.Fatal(err)
	}
	c := CompileAt(g, 7)
	if c.Epoch() != 7 {
		t.Errorf("epoch = %d, want 7", c.Epoch())
	}
	if Compile(g).Epoch() != 0 {
		t.Error("plain Compile should leave epoch 0")
	}
	if c.Name(a) != "alpha" || c.Name(b) != "beta" {
		t.Errorf("names = %q, %q", c.Name(a), c.Name(b))
	}
	if c.Name(None) != "" || c.Name(NodeID(99)) != "" {
		t.Error("out-of-range name not empty")
	}
	// Names are a compile-time copy: later graph growth must not show
	// through the snapshot (lock-free readers depend on this).
	g.AddNode("gamma")
	if c.NumNodes() != 2 || c.Name(NodeID(2)) != "" {
		t.Error("snapshot saw post-compile growth")
	}
}
