package graph

import "fmt"

// CSR is an immutable compressed-sparse-row snapshot of a Graph, intended
// for high-throughput read paths (similarity serving) while the mutable
// Graph continues to take optimization writes elsewhere. A CSR is safe
// for concurrent use by multiple goroutines.
//
// A CSR carries the epoch it was compiled at: the serving path publishes a
// fresh snapshot after every optimization batch and readers use the epoch
// to observe graph generations without touching the mutable graph.
type CSR struct {
	rowPtr  []int32
	colIdx  []NodeID
	weights []float64
	names   []string
	epoch   uint64
}

// Compile snapshots g into CSR form. Edge order within a row follows the
// graph's insertion order.
func Compile(g *Graph) *CSR {
	n := g.NumNodes()
	c := &CSR{
		rowPtr:  make([]int32, n+1),
		colIdx:  make([]NodeID, 0, g.NumEdges()),
		weights: make([]float64, 0, g.NumEdges()),
		names:   append([]string(nil), g.names...),
	}
	for i := 0; i < n; i++ {
		c.rowPtr[i] = int32(len(c.colIdx))
		for _, e := range g.Out(NodeID(i)) {
			c.colIdx = append(c.colIdx, e.To)
			c.weights = append(c.weights, e.Weight)
		}
	}
	c.rowPtr[n] = int32(len(c.colIdx))
	return c
}

// CompileAt snapshots g into CSR form stamped with the given epoch.
func CompileAt(g *Graph, epoch uint64) *CSR {
	c := Compile(g)
	c.epoch = epoch
	return c
}

// Epoch returns the snapshot's generation counter (0 for snapshots built
// with plain Compile).
func (c *CSR) Epoch() uint64 { return c.epoch }

// Name returns the name of a node captured at compile time, or "" for
// anonymous or out-of-range IDs.
func (c *CSR) Name(id NodeID) string {
	if int(id) < 0 || int(id) >= len(c.names) {
		return ""
	}
	return c.names[id]
}

// NumNodes returns the number of nodes.
func (c *CSR) NumNodes() int { return len(c.rowPtr) - 1 }

// NumEdges returns the number of edges.
func (c *CSR) NumEdges() int { return len(c.colIdx) }

// Row returns the targets and weights of a node's out-edges. The returned
// slices alias the CSR's storage and must not be modified.
func (c *CSR) Row(id NodeID) ([]NodeID, []float64) {
	if int(id) < 0 || int(id) >= c.NumNodes() {
		return nil, nil
	}
	lo, hi := c.rowPtr[id], c.rowPtr[id+1]
	return c.colIdx[lo:hi], c.weights[lo:hi]
}

// Weight returns the weight of edge (from, to), or 0.
func (c *CSR) Weight(from, to NodeID) float64 {
	cols, ws := c.Row(from)
	for i, t := range cols {
		if t == to {
			return ws[i]
		}
	}
	return 0
}

// Validate checks structural invariants.
func (c *CSR) Validate() error {
	n := c.NumNodes()
	if n < 0 {
		return fmt.Errorf("%w: empty row pointer", ErrInvalid)
	}
	if len(c.colIdx) != len(c.weights) {
		return fmt.Errorf("%w: %d columns vs %d weights", ErrInvalid, len(c.colIdx), len(c.weights))
	}
	prev := int32(0)
	for i, p := range c.rowPtr {
		if p < prev || int(p) > len(c.colIdx) {
			return fmt.Errorf("%w: row pointer %d out of order at %d", ErrInvalid, p, i)
		}
		prev = p
	}
	if int(c.rowPtr[n]) != len(c.colIdx) {
		return fmt.Errorf("%w: final row pointer %d != %d edges", ErrInvalid, c.rowPtr[n], len(c.colIdx))
	}
	for _, t := range c.colIdx {
		if int(t) < 0 || int(t) >= n {
			return fmt.Errorf("%w: edge target %d out of range", ErrInvalid, t)
		}
	}
	return nil
}
