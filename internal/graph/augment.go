package graph

import "fmt"

// Augmented is a knowledge graph combined with query nodes and answer
// nodes, following Section III-A of the paper. Query and answer nodes are
// ordinary nodes of the underlying graph but are recorded separately so
// that similarity evaluation can distinguish them from entity nodes.
//
// A query node vq has outgoing edges to the entity nodes that occur in the
// query, weighted by occurrence frequency:
//
//	w(vq, vi) = #(q, vi) / Σ_j #(q, vj)
//
// An answer node va has incoming edges from the entity nodes that occur in
// the answer document, derived the same way (normalized over the entities
// of the answer).
type Augmented struct {
	*Graph
	// Entities is the number of original entity nodes; nodes with
	// ID < Entities are entity nodes.
	Entities int
	Queries  []NodeID
	Answers  []NodeID

	isQuery  map[NodeID]bool
	isAnswer map[NodeID]bool
}

// Augment wraps a knowledge graph for query/answer attachment. The
// underlying graph is used directly (not copied); callers that need to
// preserve the original should pass g.Clone().
func Augment(g *Graph) *Augmented {
	return &Augmented{
		Graph:    g,
		Entities: g.NumNodes(),
		isQuery:  make(map[NodeID]bool),
		isAnswer: make(map[NodeID]bool),
	}
}

// RestoreAugmented rebuilds an Augmented view over a graph whose query and
// answer nodes were attached in a previous session (persistence load
// path). The node lists must describe nodes already present in g.
func RestoreAugmented(g *Graph, entities int, queries, answers []NodeID) (*Augmented, error) {
	if entities < 0 || entities > g.NumNodes() {
		return nil, fmt.Errorf("graph: RestoreAugmented: entity count %d outside [0, %d]", entities, g.NumNodes())
	}
	a := &Augmented{
		Graph:    g,
		Entities: entities,
		isQuery:  make(map[NodeID]bool, len(queries)),
		isAnswer: make(map[NodeID]bool, len(answers)),
	}
	for _, q := range queries {
		if int(q) < entities || int(q) >= g.NumNodes() {
			return nil, fmt.Errorf("graph: RestoreAugmented: query node %d out of range", q)
		}
		if a.isQuery[q] {
			return nil, fmt.Errorf("graph: RestoreAugmented: duplicate query node %d", q)
		}
		a.Queries = append(a.Queries, q)
		a.isQuery[q] = true
	}
	for _, ans := range answers {
		if int(ans) < entities || int(ans) >= g.NumNodes() {
			return nil, fmt.Errorf("graph: RestoreAugmented: answer node %d out of range", ans)
		}
		if a.isQuery[ans] {
			return nil, fmt.Errorf("graph: RestoreAugmented: node %d is both query and answer", ans)
		}
		if a.isAnswer[ans] {
			return nil, fmt.Errorf("graph: RestoreAugmented: duplicate answer node %d", ans)
		}
		a.Answers = append(a.Answers, ans)
		a.isAnswer[ans] = true
	}
	return a, nil
}

// IsQuery reports whether id is a query node.
func (a *Augmented) IsQuery(id NodeID) bool { return a.isQuery[id] }

// IsAnswer reports whether id is an answer node.
func (a *Augmented) IsAnswer(id NodeID) bool { return a.isAnswer[id] }

// IsEntity reports whether id is an entity node of the original graph.
func (a *Augmented) IsEntity(id NodeID) bool {
	return int(id) < a.Entities && id >= 0 && !a.isQuery[id] && !a.isAnswer[id]
}

// AttachQuery adds a query node linked to the given entity nodes with the
// given occurrence counts. The counts are normalized into edge weights.
// At least one entity with a positive count is required.
func (a *Augmented) AttachQuery(name string, entities []NodeID, counts []float64) (NodeID, error) {
	id, err := a.attach(name, entities, counts, true)
	if err != nil {
		return None, fmt.Errorf("graph: AttachQuery(%q): %w", name, err)
	}
	a.Queries = append(a.Queries, id)
	a.isQuery[id] = true
	return id, nil
}

// AttachAnswer adds an answer node with incoming edges from the given
// entity nodes. For each entity vi the edge (vi, va) gets weight
// count_i / Σ counts, mirroring the query-side construction.
func (a *Augmented) AttachAnswer(name string, entities []NodeID, counts []float64) (NodeID, error) {
	id, err := a.attach(name, entities, counts, false)
	if err != nil {
		return None, fmt.Errorf("graph: AttachAnswer(%q): %w", name, err)
	}
	a.Answers = append(a.Answers, id)
	a.isAnswer[id] = true
	return id, nil
}

func (a *Augmented) attach(name string, entities []NodeID, counts []float64, outgoing bool) (NodeID, error) {
	if len(entities) == 0 {
		return None, fmt.Errorf("no entities")
	}
	if len(entities) != len(counts) {
		return None, fmt.Errorf("%d entities but %d counts", len(entities), len(counts))
	}
	var total float64
	for i, c := range counts {
		if c < 0 {
			return None, fmt.Errorf("negative count %v for entity %d", c, entities[i])
		}
		total += c
	}
	if total <= 0 {
		return None, fmt.Errorf("all counts are zero")
	}
	for _, e := range entities {
		if int(e) >= a.Entities || e < 0 {
			return None, fmt.Errorf("node %d is not an entity node", e)
		}
	}
	// Every attachment is a fresh node: silently reusing an existing node
	// by name would merge two queries/answers into one.
	if name != "" && a.Lookup(name) != None {
		return None, fmt.Errorf("node %q already exists", name)
	}
	id := a.AddNode(name)
	for i, e := range entities {
		if counts[i] == 0 {
			continue
		}
		w := counts[i] / total
		var err error
		if outgoing {
			err = a.SetEdge(id, e, w)
		} else {
			err = a.SetEdge(e, id, w)
		}
		if err != nil {
			return None, err
		}
	}
	return id, nil
}

// AttachAnswerUniform adds an answer node reachable from each listed
// entity with weight 1 (the construction used in the paper's Fig. 1, where
// the edge Outlook→a3 has weight 1). Unlike AttachAnswer it does not
// normalize across entities: each entity→answer edge gets weight 1, which
// models "this entity's document is this answer".
func (a *Augmented) AttachAnswerUniform(name string, entities []NodeID) (NodeID, error) {
	if len(entities) == 0 {
		return None, fmt.Errorf("graph: AttachAnswerUniform(%q): no entities", name)
	}
	for _, e := range entities {
		if int(e) >= a.Entities || e < 0 {
			return None, fmt.Errorf("graph: AttachAnswerUniform(%q): node %d is not an entity node", name, e)
		}
	}
	if name != "" && a.Lookup(name) != None {
		return None, fmt.Errorf("graph: AttachAnswerUniform(%q): node already exists", name)
	}
	id := a.AddNode(name)
	for _, e := range entities {
		if err := a.SetEdge(e, id, 1); err != nil {
			return None, err
		}
	}
	a.Answers = append(a.Answers, id)
	a.isAnswer[id] = true
	return id, nil
}
