package admit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestQueueCapacityShedding(t *testing.T) {
	c := New(Config{Capacity: 4})
	for depth := 0; depth < 4; depth++ {
		if d := c.Admit("a", depth, false); !d.OK {
			t.Fatalf("depth %d below capacity shed: %+v", depth, d)
		}
	}
	d := c.Admit("a", 4, false)
	if d.OK || d.Reason != ReasonQueueFull {
		t.Fatalf("at-capacity admit = %+v, want queue_full shed", d)
	}
	if d.RetryAfter <= 0 {
		t.Fatalf("queue_full shed has no Retry-After hint: %+v", d)
	}
	st := c.Stats()
	if st.Admitted != 4 || st.ShedQueueFull != 1 || st.Shed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlushWatermarkShedding(t *testing.T) {
	c := New(Config{Capacity: 10, Watermark: 3})
	// Without a flush in flight the watermark is inert.
	if d := c.Admit("a", 5, false); !d.OK {
		t.Fatalf("no-flush admit above watermark shed: %+v", d)
	}
	// With a flush in flight, depth >= watermark sheds early.
	d := c.Admit("a", 3, true)
	if d.OK || d.Reason != ReasonFlush {
		t.Fatalf("flushing at watermark = %+v, want flush_backpressure", d)
	}
	if d := c.Admit("a", 2, true); !d.OK {
		t.Fatalf("flushing below watermark shed: %+v", d)
	}
	if st := c.Stats(); st.ShedFlush != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{Capacity: 1000, PerClientRate: 2, PerClientBurst: 3, Now: clk.now})
	// Burst of 3 admits, then rate-limited.
	for i := 0; i < 3; i++ {
		if d := c.Admit("a", 0, false); !d.OK {
			t.Fatalf("burst admit %d shed: %+v", i, d)
		}
	}
	d := c.Admit("a", 0, false)
	if d.OK || d.Reason != ReasonRate {
		t.Fatalf("post-burst admit = %+v, want rate_limited", d)
	}
	// The hint must cover the refill time of one token (1/rate = 500ms).
	if d.RetryAfter < 400*time.Millisecond || d.RetryAfter > 600*time.Millisecond {
		t.Fatalf("retry hint = %v, want ~500ms", d.RetryAfter)
	}
	// After the hinted wait one token is back.
	clk.advance(d.RetryAfter)
	if d := c.Admit("a", 0, false); !d.OK {
		t.Fatalf("post-refill admit shed: %+v", d)
	}
	// Refill is capped at the burst.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if d := c.Admit("a", 0, false); !d.OK {
			t.Fatalf("capped-burst admit %d shed: %+v", i, d)
		}
	}
	if d := c.Admit("a", 0, false); d.OK {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestFairnessAcrossClients(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{Capacity: 1000, PerClientRate: 1, PerClientBurst: 2, Now: clk.now})
	// Client A floods until its bucket is dry.
	for i := 0; ; i++ {
		if d := c.Admit("a", 0, false); !d.OK {
			break
		}
		if i > 10 {
			t.Fatal("client a never rate-limited")
		}
	}
	// Client B is untouched by A's flood.
	if d := c.Admit("b", 0, false); !d.OK {
		t.Fatalf("client b shed after client a flood: %+v", d)
	}
}

func TestBucketTableBounded(t *testing.T) {
	c := New(Config{Capacity: 10, PerClientRate: 1, MaxClients: 8})
	for i := 0; i < 100; i++ {
		c.Admit(fmt.Sprintf("client-%d", i), 0, false)
	}
	if st := c.Stats(); st.Clients > 8 {
		t.Fatalf("bucket table grew to %d, cap 8", st.Clients)
	}
}

func TestRejectRollsBack(t *testing.T) {
	c := New(Config{Capacity: 4})
	if d := c.Admit("a", 0, false); !d.OK {
		t.Fatal("admit shed")
	}
	d := c.Reject("a")
	if d.OK || d.Reason != ReasonQueueFull || d.RetryAfter <= 0 {
		t.Fatalf("reject decision = %+v", d)
	}
	st := c.Stats()
	if st.Admitted != 0 || st.ShedQueueFull != 1 {
		t.Fatalf("stats after reject = %+v", st)
	}
}

// TestCancelRefundsToken proves a vote that never enqueued does not
// charge the client's rate bucket: with burst 1, Admit+Cancel repeated
// forever never rate-limits, and a Reject at the authoritative gate
// leaves the bucket full for the compliant retry.
func TestCancelRefundsToken(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{Capacity: 4, PerClientRate: 0.001, PerClientBurst: 1, Now: clk.now})
	for i := 0; i < 5; i++ {
		d := c.Admit("a", 0, false)
		if !d.OK {
			t.Fatalf("attempt %d shed as %s despite refunds", i, d.Reason)
		}
		c.Cancel("a")
	}
	if d := c.Admit("a", 4, false); d.Reason != ReasonQueueFull {
		t.Fatalf("full-queue admit = %+v, want queue_full", d)
	}
	if d := c.Admit("a", 0, false); !d.OK {
		t.Fatalf("admit after queue-full sheds = %+v", d)
	}
	if d := c.Reject("a"); d.Reason != ReasonQueueFull {
		t.Fatalf("reject = %+v", d)
	}
	// The rejected vote's token was refunded: the retry passes the bucket.
	if d := c.Admit("a", 0, false); !d.OK {
		t.Fatalf("compliant retry after Reject shed as %s (token not refunded)", d.Reason)
	}
}

func TestConcurrentAdmitRace(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, PerClientRate: 1e9, PerClientBurst: 1e9})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("c%d", w%3)
			for i := 0; i < 500; i++ {
				c.Admit(id, i%64, i%2 == 0)
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
}
