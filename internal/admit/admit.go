// Package admit is the ingestion-protection layer of the serving stack
// (DESIGN.md §12): a bounded, fairness-aware admission controller for the
// write path. It answers one question — "may this client enqueue one more
// vote right now?" — using three signals:
//
//   - queue depth: the pending-vote queue is bounded at Capacity; at or
//     above it every vote is shed (queue_full).
//   - flush watermark: while an optimization flush is in flight, votes
//     are shed earlier, at Watermark (flush_backpressure), exploiting the
//     paper's cheap-read/expensive-write asymmetry — reads keep serving
//     from the immutable snapshot, writes back off while the SGP solve
//     runs.
//   - per-client token buckets: each client (X-Client-ID header or remote
//     host) refills at PerClientRate votes/sec up to PerClientBurst, so
//     one flooding client exhausts its own bucket instead of the shared
//     queue (rate_limited).
//
// Every shed carries a Retry-After hint. The controller is advisory and
// lock-cheap: the server re-checks the queue bound under its writer gate,
// so Capacity is exact even under concurrent admission.
package admit

import (
	"math"
	"sync"
	"time"

	"kgvote/internal/lru"
)

// Shed reasons, also used as error-envelope codes by the server.
const (
	ReasonQueueFull = "queue_full"
	ReasonRate      = "rate_limited"
	ReasonFlush     = "flush_backpressure"
)

// Config sizes a Controller.
type Config struct {
	// Capacity bounds the pending-vote queue; admission at depth >=
	// Capacity is shed. Must be >= 1.
	Capacity int
	// Watermark sheds admissions at depth >= Watermark while a flush is
	// in flight (0 = Capacity, i.e. no early shedding).
	Watermark int
	// PerClientRate is the steady-state votes/sec each client may submit
	// (0 = per-client limiting disabled).
	PerClientRate float64
	// PerClientBurst is the bucket size (0 = max(1, PerClientRate)).
	PerClientBurst float64
	// MaxClients bounds the bucket table; least-recently-seen clients are
	// evicted (their bucket restarts full). Default 4096.
	MaxClients int
	// RetryAfter is the base hint attached to queue_full and
	// flush_backpressure sheds. Default 1s.
	RetryAfter time.Duration
	// Now is the clock (nil = time.Now); tests inject a fake.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Watermark <= 0 || c.Watermark > c.Capacity {
		c.Watermark = c.Capacity
	}
	if c.PerClientBurst <= 0 {
		c.PerClientBurst = math.Max(1, c.PerClientRate)
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Decision is the outcome of one admission check.
type Decision struct {
	OK bool
	// Reason is the shed reason (one of the Reason constants) when !OK.
	Reason string
	// RetryAfter is the hint for the client's next attempt when !OK.
	RetryAfter time.Duration
}

// Stats is a snapshot of the controller's counters.
type Stats struct {
	Capacity      int
	Admitted      int64
	Shed          int64
	ShedQueueFull int64
	ShedRate      int64
	ShedFlush     int64
	Clients       int
}

// bucket is one client's token bucket; guarded by the controller mutex.
type bucket struct {
	tokens float64
	last   time.Time
}

// Controller implements the admission policy. All methods are safe for
// concurrent use.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	buckets *lru.Cache[string, *bucket]

	admitted      int64
	shedQueueFull int64
	shedRate      int64
	shedFlush     int64
}

// New returns a controller; Capacity must be >= 1.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		buckets: lru.New[string, *bucket](cfg.MaxClients),
	}
}

// Capacity returns the configured queue bound.
func (c *Controller) Capacity() int { return c.cfg.Capacity }

// Admit decides whether client may enqueue one vote given the current
// queue depth and whether a flush is in flight. An OK decision consumes
// one token from the client's bucket.
func (c *Controller) Admit(client string, depth int, flushing bool) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if depth >= c.cfg.Capacity {
		c.shedQueueFull++
		return Decision{Reason: ReasonQueueFull, RetryAfter: c.cfg.RetryAfter}
	}
	if flushing && depth >= c.cfg.Watermark {
		c.shedFlush++
		return Decision{Reason: ReasonFlush, RetryAfter: c.cfg.RetryAfter}
	}
	if c.cfg.PerClientRate > 0 {
		if wait, ok := c.takeToken(client); !ok {
			c.shedRate++
			return Decision{Reason: ReasonRate, RetryAfter: wait}
		}
	}
	c.admitted++
	return Decision{OK: true}
}

// Cancel rolls back client's prior OK decision whose vote never entered
// the queue for a reason that is not load shedding (the request deadline
// expired at the writer gate, the body failed late validation). It
// adjusts the admitted count without recording a shed and refunds the
// token the advisory Admit consumed, so the client's compliant retry is
// not double-charged.
func (c *Controller) Cancel(client string) {
	c.mu.Lock()
	c.admitted--
	c.refundToken(client)
	c.mu.Unlock()
}

// Reject records that the server's authoritative re-check (under the
// writer gate) shed client's pre-admitted vote; it refunds the advisory
// Admit's token (the vote never enqueued) and returns the queue_full
// decision the handler should surface.
func (c *Controller) Reject(client string) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admitted--
	c.shedQueueFull++
	c.refundToken(client)
	return Decision{Reason: ReasonQueueFull, RetryAfter: c.cfg.RetryAfter}
}

// refundToken credits one token back to client's bucket, capped at the
// burst size. Caller holds c.mu. A client whose bucket was evicted needs
// no refund — a fresh bucket restarts full.
func (c *Controller) refundToken(client string) {
	if c.cfg.PerClientRate <= 0 {
		return
	}
	if b, found := c.buckets.Get(client); found {
		b.tokens = math.Min(c.cfg.PerClientBurst, b.tokens+1)
	}
}

// takeToken consumes one token from client's bucket, lazily creating and
// refilling it. Caller holds c.mu. On failure it returns how long until a
// token is available.
func (c *Controller) takeToken(client string) (wait time.Duration, ok bool) {
	now := c.cfg.Now()
	b, found := c.buckets.Get(client)
	if !found {
		b = &bucket{tokens: c.cfg.PerClientBurst, last: now}
		c.buckets.Add(client, b)
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(c.cfg.PerClientBurst, b.tokens+dt*c.cfg.PerClientRate)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / c.cfg.PerClientRate
	return time.Duration(math.Ceil(need*1e3)) * time.Millisecond, false
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Capacity:      c.cfg.Capacity,
		Admitted:      c.admitted,
		Shed:          c.shedQueueFull + c.shedRate + c.shedFlush,
		ShedQueueFull: c.shedQueueFull,
		ShedRate:      c.shedRate,
		ShedFlush:     c.shedFlush,
		Clients:       c.buckets.Len(),
	}
}
