package cluster

import (
	"fmt"
	"math"
)

// KMedoids clusters n points given their pairwise similarities into k
// clusters with a deterministic PAM-style alternation (assign to the most
// similar medoid, then recenter each cluster on its similarity-maximizing
// member). It is the fixed-k alternative to affinity propagation for the
// split strategy: AP chooses k automatically, k-medoids lets the operator
// pin it.
func KMedoids(sim [][]float64, k int, maxIter int) (Result, error) {
	n := len(sim)
	if n == 0 {
		return Result{}, fmt.Errorf("cluster: empty similarity matrix")
	}
	for i := range sim {
		if len(sim[i]) != n {
			return Result{}, fmt.Errorf("cluster: row %d has %d entries, want %d", i, len(sim[i]), n)
		}
		for j, v := range sim[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return Result{}, fmt.Errorf("cluster: sim[%d][%d] = %v", i, j, v)
			}
		}
	}
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("cluster: k = %d outside [1, %d]", k, n)
	}
	if maxIter == 0 {
		maxIter = 100
	}

	// Deterministic seeding: the first medoid is the point with the
	// greatest total similarity; each next medoid is the point least
	// similar to the chosen set (max-min spread, ties to lowest index).
	medoids := make([]int, 0, k)
	best, bestSum := 0, math.Inf(-1)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i != j {
				sum += sim[i][j]
			}
		}
		if sum > bestSum {
			best, bestSum = i, sum
		}
	}
	medoids = append(medoids, best)
	for len(medoids) < k {
		cand, candScore := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if contains(medoids, i) {
				continue
			}
			closest := math.Inf(-1)
			for _, m := range medoids {
				if sim[i][m] > closest {
					closest = sim[i][m]
				}
			}
			if closest < candScore {
				cand, candScore = i, closest
			}
		}
		medoids = append(medoids, cand)
	}

	assign := make([]int, n)
	res := Result{}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iters = iter
		// Assignment step.
		for i := 0; i < n; i++ {
			bestC, bestSim := 0, math.Inf(-1)
			for c, m := range medoids {
				s := sim[i][m]
				if i == m {
					s = math.Inf(1) // a medoid stays its own
				}
				if s > bestSim {
					bestC, bestSim = c, s
				}
			}
			assign[i] = bestC
		}
		// Update step: recenter each cluster on the member maximizing
		// total intra-cluster similarity.
		changed := false
		for c := range medoids {
			var members []int
			for i, a := range assign {
				if a == c {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			bestM, bestScore := medoids[c], math.Inf(-1)
			for _, cand := range members {
				var score float64
				for _, other := range members {
					if other != cand {
						score += sim[cand][other]
					}
				}
				if score > bestScore {
					bestM, bestScore = cand, score
				}
			}
			if bestM != medoids[c] {
				medoids[c] = bestM
				changed = true
			}
		}
		if !changed {
			res.Converged = true
			break
		}
	}
	// Canonical output: exemplars ascending, assignments re-indexed.
	order := make([]int, len(medoids))
	for i := range order {
		order[i] = i
	}
	sortByMedoid(order, medoids)
	remap := make([]int, len(medoids))
	sorted := make([]int, len(medoids))
	for newIdx, oldIdx := range order {
		remap[oldIdx] = newIdx
		sorted[newIdx] = medoids[oldIdx]
	}
	for i := range assign {
		assign[i] = remap[assign[i]]
	}
	res.Exemplars = sorted
	res.Assignment = assign
	return res, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func sortByMedoid(order, medoids []int) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && medoids[order[j]] < medoids[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}
