package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// blockSim builds a similarity matrix with two obvious blocks: points
// [0,half) are mutually similar (0.9), points [half,n) likewise, and
// cross-block similarity is low (0.05).
func blockSim(n, half int) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			if i == j {
				continue
			}
			same := (i < half) == (j < half)
			if same {
				s[i][j] = 0.9
			} else {
				s[i][j] = 0.05
			}
		}
	}
	return s
}

func TestTwoBlocks(t *testing.T) {
	sim := blockSim(10, 5)
	res, err := AffinityPropagation(sim, MedianPreference(sim), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exemplars) != 2 {
		t.Fatalf("exemplars = %v, want 2 clusters", res.Exemplars)
	}
	// Every point must share a cluster with its block.
	for i := 1; i < 5; i++ {
		if res.Assignment[i] != res.Assignment[0] {
			t.Errorf("point %d not in block 0's cluster", i)
		}
	}
	for i := 6; i < 10; i++ {
		if res.Assignment[i] != res.Assignment[5] {
			t.Errorf("point %d not in block 1's cluster", i)
		}
	}
	if res.Assignment[0] == res.Assignment[5] {
		t.Errorf("blocks merged into one cluster")
	}
	if !res.Converged {
		t.Errorf("should converge on a trivial instance")
	}
}

func TestClustersGrouping(t *testing.T) {
	sim := blockSim(6, 3)
	res, err := AffinityPropagation(sim, MedianPreference(sim), Options{})
	if err != nil {
		t.Fatal(err)
	}
	groups := res.Clusters()
	if len(groups) != len(res.Exemplars) {
		t.Fatalf("groups = %d, exemplars = %d", len(groups), len(res.Exemplars))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 6 {
		t.Errorf("grouped %d points, want 6", total)
	}
}

func TestSinglePoint(t *testing.T) {
	res, err := AffinityPropagation([][]float64{{0}}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exemplars) != 1 || res.Assignment[0] != 0 {
		t.Errorf("single point should be its own exemplar: %+v", res)
	}
}

func TestErrors(t *testing.T) {
	if _, err := AffinityPropagation(nil, 0, Options{}); err == nil {
		t.Errorf("empty matrix should fail")
	}
	if _, err := AffinityPropagation([][]float64{{0, 1}}, 0, Options{}); err == nil {
		t.Errorf("non-square matrix should fail")
	}
	if _, err := AffinityPropagation([][]float64{{0, math.NaN()}, {0, 0}}, 0, Options{}); err == nil {
		t.Errorf("NaN similarity should fail")
	}
	sim := blockSim(4, 2)
	if _, err := AffinityPropagation(sim, 0, Options{Damping: 0.2}); err == nil {
		t.Errorf("low damping should fail")
	}
	if _, err := AffinityPropagation(sim, 0, Options{Damping: 1}); err == nil {
		t.Errorf("damping = 1 should fail")
	}
}

func TestMedianPreference(t *testing.T) {
	sim := [][]float64{
		{0, 1, 2},
		{3, 0, 4},
		{5, 6, 0},
	}
	// Off-diagonal values: 1 2 3 4 5 6 → median 3.5.
	if got := MedianPreference(sim); got != 3.5 {
		t.Errorf("MedianPreference = %v, want 3.5", got)
	}
	odd := [][]float64{
		{0, 1},
		{2, 0},
	}
	if got := MedianPreference(odd); got != 1.5 {
		t.Errorf("MedianPreference = %v, want 1.5", got)
	}
	if got := MedianPreference([][]float64{{0}}); got != 0 {
		t.Errorf("degenerate median = %v, want 0", got)
	}
}

func TestLowPreferenceFewClusters(t *testing.T) {
	// A very negative preference forces few (here: one) exemplars even on
	// a blocky instance.
	sim := blockSim(8, 4)
	res, err := AffinityPropagation(sim, -100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exemplars) != 1 {
		t.Errorf("exemplars = %v, want a single cluster at very low preference", res.Exemplars)
	}
}

func TestHighPreferenceManyClusters(t *testing.T) {
	sim := blockSim(8, 4)
	res, err := AffinityPropagation(sim, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exemplars) != 8 {
		t.Errorf("exemplars = %v, want every point its own cluster at high preference", res.Exemplars)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 12
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			sim[i][j], sim[j][i] = v, v
		}
	}
	pref := MedianPreference(sim)
	a, err := AffinityPropagation(sim, pref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AffinityPropagation(sim, pref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Exemplars) != len(b.Exemplars) {
		t.Fatalf("nondeterministic exemplar count")
	}
	for i := range a.Exemplars {
		if a.Exemplars[i] != b.Exemplars[i] {
			t.Errorf("nondeterministic exemplars: %v vs %v", a.Exemplars, b.Exemplars)
		}
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Errorf("nondeterministic assignment at %d", i)
		}
	}
}

func TestAssignmentsPointToExemplars(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 15
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			if i != j {
				sim[i][j] = rng.Float64()
			}
		}
	}
	res, err := AffinityPropagation(sim, MedianPreference(sim), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exemplars) == 0 {
		t.Fatalf("no exemplars")
	}
	for i, c := range res.Assignment {
		if c < 0 || c >= len(res.Exemplars) {
			t.Errorf("point %d assigned to invalid cluster %d", i, c)
		}
	}
	// Each exemplar is assigned to itself.
	for idx, e := range res.Exemplars {
		if res.Assignment[e] != idx {
			t.Errorf("exemplar %d not assigned to its own cluster", e)
		}
	}
}

func BenchmarkAffinityPropagation(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 100
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			sim[i][j], sim[j][i] = v, v
		}
	}
	pref := MedianPreference(sim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AffinityPropagation(sim, pref, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMedoids(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 100
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			sim[i][j], sim[j][i] = v, v
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMedoids(sim, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}
