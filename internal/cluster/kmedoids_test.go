package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func TestKMedoidsTwoBlocks(t *testing.T) {
	sim := blockSim(10, 5)
	res, err := KMedoids(sim, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exemplars) != 2 {
		t.Fatalf("exemplars = %v", res.Exemplars)
	}
	if !res.Converged {
		t.Errorf("should converge on a trivial instance")
	}
	for i := 1; i < 5; i++ {
		if res.Assignment[i] != res.Assignment[0] {
			t.Errorf("point %d split from block 0", i)
		}
	}
	for i := 6; i < 10; i++ {
		if res.Assignment[i] != res.Assignment[5] {
			t.Errorf("point %d split from block 1", i)
		}
	}
	if res.Assignment[0] == res.Assignment[5] {
		t.Errorf("blocks merged")
	}
}

func TestKMedoidsKEqualsN(t *testing.T) {
	sim := blockSim(4, 2)
	res, err := KMedoids(sim, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exemplars) != 4 {
		t.Fatalf("exemplars = %v", res.Exemplars)
	}
	for i, e := range res.Exemplars {
		if res.Assignment[e] != i {
			t.Errorf("exemplar %d not self-assigned", e)
		}
	}
}

func TestKMedoidsSingleCluster(t *testing.T) {
	sim := blockSim(6, 3)
	res, err := KMedoids(sim, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Assignment {
		if a != 0 {
			t.Errorf("point %d not in the single cluster", i)
		}
	}
}

func TestKMedoidsErrors(t *testing.T) {
	if _, err := KMedoids(nil, 1, 0); err == nil {
		t.Errorf("empty matrix should fail")
	}
	if _, err := KMedoids([][]float64{{0, 1}}, 1, 0); err == nil {
		t.Errorf("non-square should fail")
	}
	if _, err := KMedoids([][]float64{{math.NaN()}}, 1, 0); err == nil {
		t.Errorf("NaN should fail")
	}
	sim := blockSim(4, 2)
	if _, err := KMedoids(sim, 0, 0); err == nil {
		t.Errorf("k = 0 should fail")
	}
	if _, err := KMedoids(sim, 9, 0); err == nil {
		t.Errorf("k > n should fail")
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 14
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			sim[i][j], sim[j][i] = v, v
		}
	}
	a, err := KMedoids(sim, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMedoids(sim, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Exemplars {
		if a.Exemplars[i] != b.Exemplars[i] {
			t.Fatalf("nondeterministic exemplars")
		}
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("nondeterministic assignment")
		}
	}
	// Exemplars ascending.
	for i := 1; i < len(a.Exemplars); i++ {
		if a.Exemplars[i] <= a.Exemplars[i-1] {
			t.Errorf("exemplars not ascending: %v", a.Exemplars)
		}
	}
}
