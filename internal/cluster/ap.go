// Package cluster implements affinity-propagation clustering (Frey &
// Dueck, Science 2007), the algorithm the paper's split-and-merge strategy
// uses to partition the vote set by pairwise similarity. AP picks the
// number of clusters automatically from the preference values.
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Options tunes AffinityPropagation.
type Options struct {
	// Damping in [0.5, 1); default 0.7.
	Damping float64
	// MaxIter bounds message-passing rounds; default 300.
	MaxIter int
	// ConvergeIter is how many consecutive rounds the exemplar set must be
	// stable to declare convergence; default 20.
	ConvergeIter int
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.7
	}
	if o.MaxIter == 0 {
		o.MaxIter = 300
	}
	if o.ConvergeIter == 0 {
		o.ConvergeIter = 20
	}
	return o
}

// Result is the outcome of a clustering run.
type Result struct {
	// Exemplars are the data-point indices chosen as cluster centers,
	// ascending.
	Exemplars []int
	// Assignment maps every data point to the index of its exemplar in
	// Exemplars (not the data-point index).
	Assignment []int
	// Iters is the number of message-passing rounds executed.
	Iters int
	// Converged reports whether the exemplar set stabilized before
	// MaxIter.
	Converged bool
}

// Clusters groups the data-point indices by cluster, in exemplar order.
func (r Result) Clusters() [][]int {
	out := make([][]int, len(r.Exemplars))
	for i, c := range r.Assignment {
		out[c] = append(out[c], i)
	}
	return out
}

// MedianPreference returns the median of the off-diagonal similarities,
// the preference value the paper selects ("we select the median of the
// similarities between votes as the classification criterion").
func MedianPreference(sim [][]float64) float64 {
	var vals []float64
	for i := range sim {
		for j := range sim[i] {
			if i != j {
				vals = append(vals, sim[i][j])
			}
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// AffinityPropagation clusters n data points given their pairwise
// similarity matrix. preference is written onto the diagonal: higher
// values yield more clusters; use MedianPreference for the paper's
// setting. The similarity matrix must be square; it is not modified.
func AffinityPropagation(sim [][]float64, preference float64, opt Options) (Result, error) {
	n := len(sim)
	if n == 0 {
		return Result{}, fmt.Errorf("cluster: empty similarity matrix")
	}
	for i := range sim {
		if len(sim[i]) != n {
			return Result{}, fmt.Errorf("cluster: row %d has %d entries, want %d", i, len(sim[i]), n)
		}
		for j, v := range sim[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return Result{}, fmt.Errorf("cluster: sim[%d][%d] = %v", i, j, v)
			}
		}
	}
	opt = opt.withDefaults()
	if opt.Damping < 0.5 || opt.Damping >= 1 {
		return Result{}, fmt.Errorf("cluster: damping %v outside [0.5, 1)", opt.Damping)
	}
	if n == 1 {
		return Result{Exemplars: []int{0}, Assignment: []int{0}, Converged: true}, nil
	}

	// Working copy of s with the preference on the diagonal, plus a tiny
	// deterministic tie-breaking jitter as in the reference implementation
	// (here: index-based, not random, to stay reproducible).
	s := make([][]float64, n)
	for i := range s {
		s[i] = append([]float64(nil), sim[i]...)
		s[i][i] = preference
		for j := range s[i] {
			s[i][j] += 1e-12 * float64(i*n+j%7)
		}
	}

	r := make([][]float64, n)
	a := make([][]float64, n)
	for i := range r {
		r[i] = make([]float64, n)
		a[i] = make([]float64, n)
	}

	lam := opt.Damping
	prevExemplars := ""
	stable := 0
	res := Result{}

	for iter := 1; iter <= opt.MaxIter; iter++ {
		res.Iters = iter
		// Responsibilities.
		for i := 0; i < n; i++ {
			// Find the top two values of a(i,k)+s(i,k) over k.
			max1, max2 := math.Inf(-1), math.Inf(-1)
			arg1 := -1
			for k := 0; k < n; k++ {
				v := a[i][k] + s[i][k]
				if v > max1 {
					max2 = max1
					max1 = v
					arg1 = k
				} else if v > max2 {
					max2 = v
				}
			}
			for k := 0; k < n; k++ {
				m := max1
				if k == arg1 {
					m = max2
				}
				r[i][k] = lam*r[i][k] + (1-lam)*(s[i][k]-m)
			}
		}
		// Availabilities.
		for k := 0; k < n; k++ {
			var sum float64
			for i := 0; i < n; i++ {
				if i != k && r[i][k] > 0 {
					sum += r[i][k]
				}
			}
			for i := 0; i < n; i++ {
				var v float64
				if i == k {
					v = sum
				} else {
					v = r[k][k] + sum
					if r[i][k] > 0 {
						v -= r[i][k]
					}
					if v > 0 {
						v = 0
					}
				}
				a[i][k] = lam*a[i][k] + (1-lam)*v
			}
		}
		// Current exemplar set.
		sig := exemplarSignature(r, a)
		if sig == prevExemplars && sig != "" {
			stable++
			if stable >= opt.ConvergeIter {
				res.Converged = true
				break
			}
		} else {
			stable = 0
			prevExemplars = sig
		}
	}

	exemplars := currentExemplars(r, a)
	if len(exemplars) == 0 {
		// Degenerate fallback: pick the point with the largest total
		// similarity as the single exemplar.
		best, bestSum := 0, math.Inf(-1)
		for k := 0; k < n; k++ {
			var sum float64
			for i := 0; i < n; i++ {
				sum += s[i][k]
			}
			if sum > bestSum {
				best, bestSum = k, sum
			}
		}
		exemplars = []int{best}
	}

	// Assign every point to its most similar exemplar.
	exIndex := make(map[int]int, len(exemplars))
	for idx, e := range exemplars {
		exIndex[e] = idx
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		if idx, ok := exIndex[i]; ok {
			assign[i] = idx
			continue
		}
		best, bestSim := 0, math.Inf(-1)
		for idx, e := range exemplars {
			if s[i][e] > bestSim {
				best, bestSim = idx, s[i][e]
			}
		}
		assign[i] = best
	}
	res.Exemplars = exemplars
	res.Assignment = assign
	return res, nil
}

func currentExemplars(r, a [][]float64) []int {
	var out []int
	for k := range r {
		if r[k][k]+a[k][k] > 0 {
			out = append(out, k)
		}
	}
	return out
}

func exemplarSignature(r, a [][]float64) string {
	ex := currentExemplars(r, a)
	b := make([]byte, 0, len(ex)*3)
	for _, e := range ex {
		b = append(b, byte(e), byte(e>>8), ',')
	}
	return string(b)
}
