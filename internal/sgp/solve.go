package sgp

import (
	"fmt"

	"kgvote/internal/optimize"
	"kgvote/internal/signomial"
)

// Mode selects the solving strategy for programs with soft constraints.
type Mode int

const (
	// Full solves the program exactly as written: deviation variables are
	// real variables and every constraint goes through the augmented
	// Lagrangian. This is the paper's formulation (fmincon equivalent).
	Full Mode = iota
	// Reduced exploits that at any optimum each deviation variable is
	// pinned to its constraint residual (the sigmoid is increasing), so
	// soft constraints can be folded into the objective:
	// λ₂·Σ sigmoid(w·sig_i(x)). Hard constraints still go through the
	// augmented Lagrangian. This is the ablation described in DESIGN.md.
	Reduced
)

// SolveOptions configures Program.Solve.
type SolveOptions struct {
	Mode Mode
	AL   optimize.ALOptions
	// Stop is polled throughout the solve (continuation stages, outer
	// augmented-Lagrangian iterations, inner projected-gradient steps);
	// when it fires the solve returns the best-so-far point with
	// Solution.Stopped set instead of an error, so a cancelled flush can
	// still apply a usable weight set (nil = run to convergence).
	Stop func() bool
}

// Solution is the outcome of a solve.
type Solution struct {
	// X holds the final value of every variable (edge weights and, in Full
	// mode, deviation variables; in Reduced mode deviations are
	// back-filled from the residuals).
	X []float64
	// Objective is Equation (19) evaluated at X.
	Objective float64
	// Satisfied counts the original (pre-relaxation) constraints that hold
	// at X: sig(x) ≤ 0 for soft, and hard constraints ≤ 0.
	Satisfied int
	// Violated = NumConstraints − Satisfied.
	Violated int
	// HardSatisfied and SoftSatisfied report per-constraint outcomes, in
	// the order the constraints were added.
	HardSatisfied []bool
	SoftSatisfied []bool
	// Feasible reports whether the relaxed program's constraints hold (in
	// Full mode, including the −dx slack).
	Feasible bool
	// MaxViolation is the largest relaxed-constraint violation.
	MaxViolation float64
	// Outer/InnerIters are solver statistics.
	Outer, InnerIters int
	// Stopped reports that the caller's Stop hook cut the solve short; X
	// is the best point reached when it fired, not a converged optimum.
	Stopped bool
}

// devWeights maps each deviation-variable index to its constraint's
// credibility weight (1 for deviation variables without a registered soft
// constraint).
func (p *Program) devWeights() map[int]float64 {
	w := make(map[int]float64, len(p.Soft))
	for _, sc := range p.Soft {
		cw := sc.Weight
		if cw == 0 {
			cw = 1
		}
		w[sc.Dev] = cw
	}
	return w
}

// objective builds Equation (19) over the program's variables, with each
// deviation's sigmoid term scaled by its vote-credibility weight.
func (p *Program) objective() optimize.Func {
	dw := p.devWeights()
	weightOf := func(i int) float64 {
		if w, ok := dw[i]; ok {
			return w
		}
		return 1
	}
	return optimize.Func{
		F: func(x []float64) float64 {
			var v float64
			for i, vr := range p.Vars {
				switch vr.Kind {
				case EdgeVar:
					d := x[i] - vr.Init
					v += p.Lambda1 * d * d
				case DeviationVar:
					v += p.Lambda2 * weightOf(i) * Sigmoid(p.SigmoidW, x[i])
				}
			}
			return v
		},
		Grad: func(x []float64, g []float64) {
			for i, vr := range p.Vars {
				switch vr.Kind {
				case EdgeVar:
					g[i] = 2 * p.Lambda1 * (x[i] - vr.Init)
				case DeviationVar:
					g[i] = p.Lambda2 * weightOf(i) * SigmoidDeriv(p.SigmoidW, x[i])
				}
			}
		},
	}
}

// constraintFuncs materializes the program's constraints for the
// augmented-Lagrangian solver: hard constraints as-is, soft constraints
// with the −dx term added.
func (p *Program) constraintFuncs() []optimize.Constraint {
	cons := make([]optimize.Constraint, 0, len(p.Hard)+len(p.Soft))
	for _, sig := range p.Hard {
		sig := sig
		cons = append(cons, optimize.Constraint{
			F:       sig.Eval,
			AddGrad: sig.AddGrad,
		})
	}
	for _, sc := range p.Soft {
		sc := sc
		cons = append(cons, optimize.Constraint{
			F: func(x []float64) float64 { return sc.Sig.Eval(x) - x[sc.Dev] },
			AddGrad: func(x []float64, g []float64, scale float64) {
				sc.Sig.AddGrad(x, g, scale)
				g[sc.Dev] -= scale
			},
		})
	}
	return cons
}

// Solve optimizes the program and returns the solution.
func (p *Program) Solve(opt SolveOptions) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch opt.Mode {
	case Full:
		return p.solveFull(opt)
	case Reduced:
		return p.solveReduced(opt)
	default:
		return nil, fmt.Errorf("sgp: unknown mode %d", opt.Mode)
	}
}

func (p *Program) solveFull(opt SolveOptions) (*Solution, error) {
	lo, hi := p.Bounds()
	box := optimize.Box{Lower: lo, Upper: hi}
	cons := p.constraintFuncs()
	obj := p.objective()
	x := p.InitialPoint()

	// With soft constraints, anneal the sigmoid steepness from a shallow
	// surrogate to the target w, warm-starting each stage: the shallow
	// stages give violated constraints usable gradient, the sharp final
	// stage releases comfortably-satisfied ones (objective ≈ step count).
	// Hard-only programs have no sigmoid term and need a single solve.
	schedule := []float64{p.SigmoidW}
	if len(p.Soft) > 0 {
		schedule = schedule[:0]
		for w := 4.0; w < p.SigmoidW; w *= 8 {
			schedule = append(schedule, w)
		}
		schedule = append(schedule, p.SigmoidW)
	}
	targetW := p.SigmoidW
	defer func() { p.SigmoidW = targetW }()
	alOpt := opt.AL
	alOpt.Stop = opt.Stop
	sol := &Solution{}
	for _, w := range schedule {
		if opt.Stop != nil && opt.Stop() {
			sol.Stopped = true
			break
		}
		p.SigmoidW = w // objective closures read p.SigmoidW
		res, err := optimize.AugmentedLagrangian(obj, cons, box, x, alOpt)
		if err != nil {
			return nil, err
		}
		x = res.X
		sol.Feasible = res.Feasible
		sol.MaxViolation = res.MaxViolation
		sol.Outer += res.Outer
		sol.InnerIters += res.InnerIters
		if res.Stopped {
			sol.Stopped = true
			break
		}
	}
	p.SigmoidW = targetW
	assessed := p.assess(x)
	assessed.Feasible = sol.Feasible
	assessed.MaxViolation = sol.MaxViolation
	assessed.Outer = sol.Outer
	assessed.InnerIters = sol.InnerIters
	assessed.Stopped = sol.Stopped
	return assessed, nil
}

// solveReduced eliminates deviation variables: they only appear in the
// objective through an increasing sigmoid and in one constraint each, so
// the optimum has dx_i = sig_i(x). The reduced problem optimizes edge
// variables only; hard constraints (if any) still use the augmented
// Lagrangian.
func (p *Program) solveReduced(opt SolveOptions) (*Solution, error) {
	// Mapping between full variable indices and reduced (edge-only) ones.
	fullToRed := make([]int, len(p.Vars))
	redToFull := make([]int, 0, len(p.Vars))
	for i, v := range p.Vars {
		if v.Kind == EdgeVar {
			fullToRed[i] = len(redToFull)
			redToFull = append(redToFull, i)
		} else {
			fullToRed[i] = -1
		}
	}
	nRed := len(redToFull)

	// Remap the soft/hard signomials onto reduced indices.
	remap := func(sig *signomial.Signomial) (*signomial.Signomial, error) {
		out := signomial.NewConst(sig.Const)
		for _, t := range sig.Terms {
			vars := make([]int, 0, len(t.Factors))
			for _, f := range t.Factors {
				ri := fullToRed[f.Var]
				if ri < 0 {
					return nil, fmt.Errorf("sgp: reduced mode: constraint references deviation variable %d", f.Var)
				}
				e := int(f.Exp)
				if float64(e) != f.Exp || e <= 0 {
					return nil, fmt.Errorf("sgp: reduced mode requires positive integer exponents, got %v", f.Exp)
				}
				for k := 0; k < e; k++ {
					vars = append(vars, ri)
				}
			}
			out.Add(signomial.Monomial(t.Coef, vars...))
		}
		return out, nil
	}
	softRed := make([]*signomial.Signomial, len(p.Soft))
	for i, sc := range p.Soft {
		s, err := remap(sc.Sig)
		if err != nil {
			return nil, err
		}
		softRed[i] = s
	}
	softWeights := make([]float64, len(p.Soft))
	for i, sc := range p.Soft {
		softWeights[i] = sc.Weight
		if softWeights[i] == 0 {
			softWeights[i] = 1
		}
	}
	hardRed := make([]*signomial.Signomial, len(p.Hard))
	for i, sig := range p.Hard {
		s, err := remap(sig)
		if err != nil {
			return nil, err
		}
		hardRed[i] = s
	}

	// The sigmoid at w = 300 saturates (near-zero gradient) away from the
	// origin, which would strand the reduced solve at its starting point.
	// Anneal the steepness from a shallow surrogate up to the target w,
	// warm-starting each stage (a standard continuation scheme).
	w := 1.0
	obj := optimize.Func{
		F: func(x []float64) float64 {
			var v float64
			for ri, fi := range redToFull {
				d := x[ri] - p.Vars[fi].Init
				v += p.Lambda1 * d * d
			}
			for i, sig := range softRed {
				v += p.Lambda2 * softWeights[i] * Sigmoid(w, sig.Eval(x))
			}
			return v
		},
		Grad: func(x []float64, g []float64) {
			for ri, fi := range redToFull {
				g[ri] = 2 * p.Lambda1 * (x[ri] - p.Vars[fi].Init)
			}
			for i, sig := range softRed {
				scale := p.Lambda2 * softWeights[i] * SigmoidDeriv(w, sig.Eval(x))
				sig.AddGrad(x, g, scale)
			}
		},
	}

	lo := make([]float64, nRed)
	hi := make([]float64, nRed)
	x0 := make([]float64, nRed)
	for ri, fi := range redToFull {
		lo[ri], hi[ri] = p.Vars[fi].Lower, p.Vars[fi].Upper
		x0[ri] = p.Vars[fi].Init
	}

	// Geometric continuation schedule from a shallow sigmoid to the target.
	var schedule []float64
	for s := 4.0; s < p.SigmoidW; s *= 4 {
		schedule = append(schedule, s)
	}
	schedule = append(schedule, p.SigmoidW)

	xRed := x0
	var outer, innerIters int
	feasible := true
	stopped := false
	maxViol := 0.0
	box := optimize.Box{Lower: lo, Upper: hi}
	if len(hardRed) == 0 {
		pgOpt := opt.AL.Inner
		pgOpt.Stop = opt.Stop
		for _, stage := range schedule {
			if opt.Stop != nil && opt.Stop() {
				stopped = true
				break
			}
			w = stage
			res, err := optimize.ProjectedGradient(obj, box, xRed, pgOpt)
			if err != nil {
				return nil, err
			}
			xRed = res.X
			innerIters += res.Iters
			if res.Status == optimize.Stopped {
				stopped = true
				break
			}
		}
		outer = len(schedule)
	} else {
		cons := make([]optimize.Constraint, len(hardRed))
		for i, sig := range hardRed {
			sig := sig
			cons[i] = optimize.Constraint{F: sig.Eval, AddGrad: sig.AddGrad}
		}
		alOpt := opt.AL
		alOpt.Stop = opt.Stop
		for _, stage := range schedule {
			if opt.Stop != nil && opt.Stop() {
				stopped = true
				break
			}
			w = stage
			res, err := optimize.AugmentedLagrangian(obj, cons, box, xRed, alOpt)
			if err != nil {
				return nil, err
			}
			xRed = res.X
			outer += res.Outer
			innerIters += res.InnerIters
			feasible = res.Feasible
			maxViol = res.MaxViolation
			if res.Stopped {
				stopped = true
				break
			}
		}
	}

	// Back-fill the full vector: edge vars from the reduced solution,
	// deviation vars pinned to their residuals.
	x := p.InitialPoint()
	for ri, fi := range redToFull {
		x[fi] = xRed[ri]
	}
	for i, sc := range p.Soft {
		x[sc.Dev] = clamp(softRed[i].Eval(xRed), p.Vars[sc.Dev].Lower, p.Vars[sc.Dev].Upper)
	}
	sol := p.assess(x)
	sol.Feasible = feasible
	sol.MaxViolation = maxViol
	sol.Outer = outer
	sol.InnerIters = innerIters
	sol.Stopped = stopped
	return sol, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// assess fills the solution fields derived from a final point.
func (p *Program) assess(x []float64) *Solution {
	sol := &Solution{X: x}
	obj := p.objective()
	sol.Objective = obj.F(x)
	sol.HardSatisfied = make([]bool, len(p.Hard))
	for i, sig := range p.Hard {
		if sig.Eval(x) <= 0 {
			sol.Satisfied++
			sol.HardSatisfied[i] = true
		}
	}
	sol.SoftSatisfied = make([]bool, len(p.Soft))
	for i, sc := range p.Soft {
		if sc.Sig.Eval(x) <= 0 {
			sol.Satisfied++
			sol.SoftSatisfied[i] = true
		}
	}
	sol.Violated = p.NumConstraints() - sol.Satisfied
	return sol
}
