package sgp

import "math"

// Step is the discontinuous indicator of Equation (16): 1 for t > 0,
// else 0. It counts an unsatisfied constraint.
func Step(t float64) float64 {
	if t > 0 {
		return 1
	}
	return 0
}

// Sigmoid is the smooth surrogate of Equation (17): 1 / (1 + e^{−w·t}).
// With the paper's w = 300 it closely approximates Step away from 0.
func Sigmoid(w, t float64) float64 {
	z := -w * t
	if z > 700 { // e^z overflows float64 beyond ~709
		return 0
	}
	return 1 / (1 + math.Exp(z))
}

// SigmoidDeriv is d/dt Sigmoid(w, t) = w·σ·(1−σ).
func SigmoidDeriv(w, t float64) float64 {
	s := Sigmoid(w, t)
	return w * s * (1 - s)
}
