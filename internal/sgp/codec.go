// Program and solution serialization for the distributed solve farm
// (DESIGN.md §13). A split-and-merge cluster's SGP is a self-contained
// object — variables with initial points and box bounds plus signomial
// constraints — so it can be shipped to a stateless worker that holds no
// copy of the knowledge graph. The codec is exact: every float travels as
// its IEEE-754 bit pattern and every slice keeps its order, so solving a
// decoded program yields a bitwise-identical Solution.X to solving the
// original in process. That is what makes remote, retried, and hedged
// solves interchangeable with local ones.
package sgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"kgvote/internal/graph"
	"kgvote/internal/optimize"
	"kgvote/internal/signomial"
)

// Params is the serializable subset of SolveOptions: everything a worker
// needs to reproduce a solve except the caller's Stop hook (cancellation
// travels out-of-band, via the transport's context).
type Params struct {
	Mode Mode
	AL   optimize.ALOptions // Stop is ignored by the codec
}

// programVersion guards the wire format; a worker refuses programs from a
// newer layout instead of mis-decoding them.
const programVersion = 1

// solutionVersion versions the solution encoding independently.
const solutionVersion = 1

// ErrCodec marks a malformed program or solution encoding.
var ErrCodec = errors.New("sgp: malformed encoding")

const varBytes = 1 + 4 + 4 + 8 + 8 + 8 // kind + edge(from,to) + init/lower/upper

// EncodeProgram appends the binary encoding of p and params to dst and
// returns the extended slice. The program must already be fully built
// (the encoder captures constraints and initial points as-is).
func EncodeProgram(dst []byte, p *Program, params Params) []byte {
	dst = append(dst, programVersion)
	dst = appendF64(dst, p.Lambda1)
	dst = appendF64(dst, p.Lambda2)
	dst = appendF64(dst, p.SigmoidW)

	dst = append(dst, byte(params.Mode))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(params.AL.MaxOuter))
	dst = appendF64(dst, params.AL.Mu0)
	dst = appendF64(dst, params.AL.MuGrowth)
	dst = appendF64(dst, params.AL.MuMax)
	dst = appendF64(dst, params.AL.ConstraintTol)
	inner := params.AL.Inner
	dst = binary.LittleEndian.AppendUint32(dst, uint32(inner.MaxIter))
	dst = appendF64(dst, inner.Tol)
	dst = appendF64(dst, inner.FTol)
	dst = appendF64(dst, inner.ArmijoC)
	dst = appendF64(dst, inner.Shrink)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(inner.MaxBacktracks))
	dst = appendF64(dst, inner.StepMin)
	dst = appendF64(dst, inner.StepMax)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(inner.NonmonotoneWindow))

	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Vars)))
	for _, v := range p.Vars {
		dst = append(dst, byte(v.Kind))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v.Edge.From)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v.Edge.To)))
		dst = appendF64(dst, v.Init)
		dst = appendF64(dst, v.Lower)
		dst = appendF64(dst, v.Upper)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Hard)))
	for _, sig := range p.Hard {
		dst = signomial.AppendBinary(dst, sig)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Soft)))
	for _, sc := range p.Soft {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(sc.Dev))
		dst = appendF64(dst, sc.Weight)
		dst = signomial.AppendBinary(dst, sc.Sig)
	}
	return dst
}

// DecodeProgram decodes a program and its solve parameters from data. The
// decoder validates counts against the input size before allocating and
// finishes with the program's own Validate, so a worker never solves a
// structurally broken program.
func DecodeProgram(data []byte) (*Program, Params, error) {
	var params Params
	r := &signomial.Reader{Data: data}
	ver, err := r.U8()
	if err != nil {
		return nil, params, err
	}
	if ver != programVersion {
		return nil, params, fmt.Errorf("%w: program version %d, want %d", ErrCodec, ver, programVersion)
	}
	p := NewProgram()
	if p.Lambda1, err = r.F64(); err != nil {
		return nil, params, err
	}
	if p.Lambda2, err = r.F64(); err != nil {
		return nil, params, err
	}
	if p.SigmoidW, err = r.F64(); err != nil {
		return nil, params, err
	}

	mode, err := r.U8()
	if err != nil {
		return nil, params, err
	}
	params.Mode = Mode(mode)
	if params.Mode != Full && params.Mode != Reduced {
		return nil, params, fmt.Errorf("%w: unknown solve mode %d", ErrCodec, mode)
	}
	if params.AL.MaxOuter, err = readInt(r); err != nil {
		return nil, params, err
	}
	if params.AL.Mu0, err = r.F64(); err != nil {
		return nil, params, err
	}
	if params.AL.MuGrowth, err = r.F64(); err != nil {
		return nil, params, err
	}
	if params.AL.MuMax, err = r.F64(); err != nil {
		return nil, params, err
	}
	if params.AL.ConstraintTol, err = r.F64(); err != nil {
		return nil, params, err
	}
	inner := &params.AL.Inner
	if inner.MaxIter, err = readInt(r); err != nil {
		return nil, params, err
	}
	if inner.Tol, err = r.F64(); err != nil {
		return nil, params, err
	}
	if inner.FTol, err = r.F64(); err != nil {
		return nil, params, err
	}
	if inner.ArmijoC, err = r.F64(); err != nil {
		return nil, params, err
	}
	if inner.Shrink, err = r.F64(); err != nil {
		return nil, params, err
	}
	if inner.MaxBacktracks, err = readInt(r); err != nil {
		return nil, params, err
	}
	if inner.StepMin, err = r.F64(); err != nil {
		return nil, params, err
	}
	if inner.StepMax, err = r.F64(); err != nil {
		return nil, params, err
	}
	if inner.NonmonotoneWindow, err = readInt(r); err != nil {
		return nil, params, err
	}

	nVars, err := r.Count(varBytes)
	if err != nil {
		return nil, params, err
	}
	p.Vars = make([]Variable, 0, nVars)
	for i := 0; i < nVars; i++ {
		kind, err := r.U8()
		if err != nil {
			return nil, params, err
		}
		if VarKind(kind) != EdgeVar && VarKind(kind) != DeviationVar {
			return nil, params, fmt.Errorf("%w: variable %d has unknown kind %d", ErrCodec, i, kind)
		}
		from, err := r.U32()
		if err != nil {
			return nil, params, err
		}
		to, err := r.U32()
		if err != nil {
			return nil, params, err
		}
		v := Variable{
			Kind: VarKind(kind),
			Edge: graph.EdgeKey{From: graph.NodeID(int32(from)), To: graph.NodeID(int32(to))},
		}
		if v.Init, err = r.F64(); err != nil {
			return nil, params, err
		}
		if v.Lower, err = r.F64(); err != nil {
			return nil, params, err
		}
		if v.Upper, err = r.F64(); err != nil {
			return nil, params, err
		}
		if v.Kind == EdgeVar {
			// Rebuild the edge index so the decoded program upholds the same
			// invariants as a locally built one.
			p.edgeIdx[v.Edge] = len(p.Vars)
		}
		p.Vars = append(p.Vars, v)
	}

	nHard, err := r.Count(12) // Const f64 + numTerms u32
	if err != nil {
		return nil, params, err
	}
	if nHard > 0 {
		p.Hard = make([]*signomial.Signomial, 0, nHard)
	}
	for i := 0; i < nHard; i++ {
		sig, err := r.Signomial()
		if err != nil {
			return nil, params, err
		}
		p.Hard = append(p.Hard, sig)
	}
	nSoft, err := r.Count(4 + 8 + 12) // Dev + Weight + signomial header
	if err != nil {
		return nil, params, err
	}
	if nSoft > 0 {
		p.Soft = make([]SoftConstraint, 0, nSoft)
	}
	for i := 0; i < nSoft; i++ {
		dev, err := r.U32()
		if err != nil {
			return nil, params, err
		}
		weight, err := r.F64()
		if err != nil {
			return nil, params, err
		}
		sig, err := r.Signomial()
		if err != nil {
			return nil, params, err
		}
		p.Soft = append(p.Soft, SoftConstraint{Sig: sig, Dev: int(dev), Weight: weight})
	}
	if r.Remaining() != 0 {
		return nil, params, fmt.Errorf("%w: %d trailing bytes after program", ErrCodec, r.Remaining())
	}
	if err := p.Validate(); err != nil {
		return nil, params, fmt.Errorf("%w: decoded program invalid: %v", ErrCodec, err)
	}
	return p, params, nil
}

// EncodeSolution appends the binary encoding of sol to dst.
func EncodeSolution(dst []byte, sol *Solution) []byte {
	dst = append(dst, solutionVersion)
	dst = append(dst, boolByte(sol.Stopped), boolByte(sol.Feasible))
	dst = appendF64(dst, sol.Objective)
	dst = appendF64(dst, sol.MaxViolation)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sol.Satisfied))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sol.Violated))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sol.Outer))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sol.InnerIters))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sol.X)))
	for _, x := range sol.X {
		dst = appendF64(dst, x)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sol.HardSatisfied)))
	for _, ok := range sol.HardSatisfied {
		dst = append(dst, boolByte(ok))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sol.SoftSatisfied)))
	for _, ok := range sol.SoftSatisfied {
		dst = append(dst, boolByte(ok))
	}
	return dst
}

// DecodeSolution decodes a solution produced by EncodeSolution.
func DecodeSolution(data []byte) (*Solution, error) {
	r := &signomial.Reader{Data: data}
	ver, err := r.U8()
	if err != nil {
		return nil, err
	}
	if ver != solutionVersion {
		return nil, fmt.Errorf("%w: solution version %d, want %d", ErrCodec, ver, solutionVersion)
	}
	sol := &Solution{}
	stopped, err := r.U8()
	if err != nil {
		return nil, err
	}
	feasible, err := r.U8()
	if err != nil {
		return nil, err
	}
	sol.Stopped = stopped != 0
	sol.Feasible = feasible != 0
	if sol.Objective, err = r.F64(); err != nil {
		return nil, err
	}
	if sol.MaxViolation, err = r.F64(); err != nil {
		return nil, err
	}
	if sol.Satisfied, err = readInt(r); err != nil {
		return nil, err
	}
	if sol.Violated, err = readInt(r); err != nil {
		return nil, err
	}
	if sol.Outer, err = readInt(r); err != nil {
		return nil, err
	}
	if sol.InnerIters, err = readInt(r); err != nil {
		return nil, err
	}
	nX, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	sol.X = make([]float64, nX)
	for i := range sol.X {
		if sol.X[i], err = r.F64(); err != nil {
			return nil, err
		}
	}
	nHard, err := r.Count(1)
	if err != nil {
		return nil, err
	}
	sol.HardSatisfied = make([]bool, nHard)
	for i := range sol.HardSatisfied {
		b, err := r.U8()
		if err != nil {
			return nil, err
		}
		sol.HardSatisfied[i] = b != 0
	}
	nSoft, err := r.Count(1)
	if err != nil {
		return nil, err
	}
	sol.SoftSatisfied = make([]bool, nSoft)
	for i := range sol.SoftSatisfied {
		b, err := r.U8()
		if err != nil {
			return nil, err
		}
		sol.SoftSatisfied[i] = b != 0
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after solution", ErrCodec, r.Remaining())
	}
	return sol, nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// readInt reads a u32 into an int, rejecting values that cannot round-trip.
func readInt(r *signomial.Reader) (int, error) {
	v, err := r.U32()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: integer field %d out of range", ErrCodec, v)
	}
	return int(v), nil
}
