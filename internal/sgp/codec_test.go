package sgp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/optimize"
	"kgvote/internal/signomial"
)

// randomProgram builds a solvable program with rng-chosen shape: a few
// edge variables, a hard constraint, and weighted soft constraints with
// deviation variables — the same structural mix the split-and-merge
// encoder produces.
func randomProgram(rng *rand.Rand) *Program {
	p := NewProgram()
	nEdges := 2 + rng.Intn(4)
	idx := make([]int, nEdges)
	for i := range idx {
		idx[i] = p.EdgeVarIndex(
			graph.EdgeKey{From: graph.NodeID(i), To: graph.NodeID(i + 1)},
			0.2+0.6*rng.Float64(),
		)
	}
	// One hard constraint: x1 − x0 ≤ 0.
	p.AddHardConstraint(signomial.NewConst(1e-9).Add(
		signomial.Monomial(1, idx[1]),
		signomial.Monomial(-1, idx[0]),
	))
	nSoft := 1 + rng.Intn(3)
	for i := 0; i < nSoft; i++ {
		a, b := idx[rng.Intn(nEdges)], idx[rng.Intn(nEdges)]
		if a == b {
			continue
		}
		sig := signomial.NewConst(1e-4*rng.Float64()).Add(
			signomial.Monomial(1, a),
			signomial.Monomial(-1, b),
		)
		p.AddWeightedSoftConstraint(sig, 0.5+2*rng.Float64())
	}
	return p
}

func TestProgramCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	params := Params{Mode: Full, AL: optimize.ALOptions{
		MaxOuter: 30,
		Inner:    optimize.PGOptions{MaxIter: 500},
	}}
	for trial := 0; trial < 20; trial++ {
		p := randomProgram(rng)
		enc := EncodeProgram(nil, p, params)
		dec, gotParams, err := DecodeProgram(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		// ALOptions holds a func field, so spot-check the numerics here; the
		// re-encode byte equality below covers every remaining field.
		if gotParams.Mode != params.Mode || gotParams.AL.MaxOuter != params.AL.MaxOuter ||
			gotParams.AL.Inner.MaxIter != params.AL.Inner.MaxIter {
			t.Fatalf("trial %d: params %+v != %+v", trial, gotParams, params)
		}
		// Re-encoding must reproduce the bytes exactly: the codec loses
		// nothing and invents nothing.
		if re := EncodeProgram(nil, dec, gotParams); !bytes.Equal(re, enc) {
			t.Fatalf("trial %d: re-encoding differs", trial)
		}
		// The edge index must be rebuilt, not just the variable list.
		for i, v := range p.Vars {
			if v.Kind == EdgeVar && dec.LookupEdgeVar(v.Edge) != i {
				t.Fatalf("trial %d: edge index lost var %d", trial, i)
			}
		}
	}
}

// TestDecodedProgramSolvesIdentically is the farm's determinism contract:
// solving the decoded program must yield a bitwise-identical Solution.X
// to solving the original, so a worker's result can replace a local solve
// (and a hedged duplicate can replace either) without changing the merge.
func TestDecodedProgramSolvesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		params := Params{Mode: Full}
		if trial%2 == 1 {
			params.Mode = Reduced
		}
		p := randomProgram(rng)
		enc := EncodeProgram(nil, p, params)
		dec, gotParams, err := DecodeProgram(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		want, err := p.Solve(SolveOptions{Mode: params.Mode, AL: params.AL})
		if err != nil {
			t.Fatalf("trial %d: solve original: %v", trial, err)
		}
		got, err := dec.Solve(SolveOptions{Mode: gotParams.Mode, AL: gotParams.AL})
		if err != nil {
			t.Fatalf("trial %d: solve decoded: %v", trial, err)
		}
		if len(want.X) != len(got.X) {
			t.Fatalf("trial %d: X length %d != %d", trial, len(got.X), len(want.X))
		}
		for i := range want.X {
			if want.X[i] != got.X[i] {
				t.Fatalf("trial %d: X[%d] = %x != %x (not bitwise identical)",
					trial, i, got.X[i], want.X[i])
			}
		}
		if want.Objective != got.Objective || want.Outer != got.Outer || want.InnerIters != got.InnerIters {
			t.Fatalf("trial %d: solve trajectories diverged", trial)
		}
	}
}

func TestSolutionCodecRoundTrip(t *testing.T) {
	sol := &Solution{
		X:             []float64{0.25, 0.75, -0.001},
		Objective:     1.2345e-3,
		Satisfied:     2,
		Violated:      1,
		HardSatisfied: []bool{true},
		SoftSatisfied: []bool{true, false},
		Feasible:      true,
		MaxViolation:  1e-9,
		Outer:         7,
		InnerIters:    321,
		Stopped:       true,
	}
	enc := EncodeSolution(nil, sol)
	got, err := DecodeSolution(enc)
	if err != nil {
		t.Fatal(err)
	}
	if re := EncodeSolution(nil, got); !bytes.Equal(re, enc) {
		t.Fatal("solution re-encoding differs")
	}
	if got.Objective != sol.Objective || !got.Stopped || !got.Feasible ||
		got.Satisfied != 2 || got.Violated != 1 || got.Outer != 7 || got.InnerIters != 321 {
		t.Fatalf("decoded solution fields wrong: %+v", got)
	}
}

func TestDecodeProgramRejectsCorruption(t *testing.T) {
	p := randomProgram(rand.New(rand.NewSource(3)))
	enc := EncodeProgram(nil, p, Params{Mode: Full})
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeProgram(enc[:n]); err == nil {
			t.Fatalf("prefix %d decoded successfully", n)
		}
	}
	if _, _, err := DecodeProgram(append(enc, 0)); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99 // future version
	if _, _, err := DecodeProgram(bad); !errors.Is(err, ErrCodec) {
		t.Fatalf("future version: want ErrCodec, got %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[25] = 42 // solve mode byte (1 version + 3 f64)
	if _, _, err := DecodeProgram(bad); !errors.Is(err, ErrCodec) {
		t.Fatalf("bad mode: want ErrCodec, got %v", err)
	}
}

// FuzzDecodeProgram hammers the decoder with arbitrary bytes: it must
// never panic, never over-allocate, and anything it accepts must
// re-encode to the exact input (the codec is bijective on valid
// encodings).
func FuzzDecodeProgram(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	f.Add([]byte{})
	f.Add([]byte{programVersion})
	for i := 0; i < 3; i++ {
		f.Add(EncodeProgram(nil, randomProgram(rng), Params{Mode: Full}))
	}
	corrupt := EncodeProgram(nil, randomProgram(rng), Params{Mode: Reduced})
	corrupt[len(corrupt)/2] ^= 0x20
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, params, err := DecodeProgram(data)
		if err != nil {
			return
		}
		if re := EncodeProgram(nil, p, params); !bytes.Equal(re, data) {
			t.Fatalf("accepted a %d-byte input that re-encodes to %d different bytes", len(data), len(re))
		}
	})
}
