package sgp

import (
	"math"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/optimize"
	"kgvote/internal/signomial"
)

func TestSigmoidApproximatesStep(t *testing.T) {
	// Fig. 2 of the paper: with w = 300 the sigmoid is a close
	// approximation of the step function away from the origin.
	for _, x := range []float64{-1, -0.5, -0.1, -0.05, 0.05, 0.1, 0.5, 1} {
		got := Sigmoid(DefaultSigmoidW, x)
		want := Step(x)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("Sigmoid(300, %v) = %v, want ≈ %v", x, got, want)
		}
	}
	if s := Sigmoid(DefaultSigmoidW, 0); s != 0.5 {
		t.Errorf("Sigmoid(300, 0) = %v, want 0.5", s)
	}
	// Extreme negative arguments must not overflow.
	if s := Sigmoid(DefaultSigmoidW, -1e6); s != 0 {
		t.Errorf("Sigmoid at −1e6 = %v, want 0", s)
	}
	if s := Sigmoid(DefaultSigmoidW, 1e6); s != 1 {
		t.Errorf("Sigmoid at 1e6 = %v, want 1", s)
	}
}

func TestSigmoidDeriv(t *testing.T) {
	const h = 1e-7
	for _, x := range []float64{-0.01, 0, 0.003, 0.02} {
		want := (Sigmoid(300, x+h) - Sigmoid(300, x-h)) / (2 * h)
		got := SigmoidDeriv(300, x)
		if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("SigmoidDeriv(300, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestStep(t *testing.T) {
	if Step(0.1) != 1 || Step(0) != 0 || Step(-3) != 0 {
		t.Errorf("Step wrong")
	}
}

// twoVarProgram builds: variables x0 (init 0.3) and x1 (init 0.5), with the
// single constraint x1 − x0 ≤ 0 (we want x0 to win).
func twoVarProgram(t *testing.T, soft bool) *Program {
	t.Helper()
	p := NewProgram()
	i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.3)
	i1 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 2}, 0.5)
	sig := signomial.NewConst(1e-9).Add(
		signomial.Monomial(1, i1),
		signomial.Monomial(-1, i0),
	)
	if soft {
		p.AddSoftConstraint(sig)
	} else {
		p.AddHardConstraint(sig)
	}
	return p
}

func TestSolveHardConstraint(t *testing.T) {
	p := twoVarProgram(t, false)
	p.Lambda1 = 1
	sol, err := p.Solve(SolveOptions{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("expected feasible, violation %v", sol.MaxViolation)
	}
	// Symmetric quadratic objective with x1 ≤ x0: optimum is x0 = x1 = 0.4.
	if math.Abs(sol.X[0]-0.4) > 1e-3 || math.Abs(sol.X[1]-0.4) > 1e-3 {
		t.Errorf("X = %v, want [0.4 0.4]", sol.X[:2])
	}
	if sol.Satisfied != 1 || sol.Violated != 0 {
		t.Errorf("satisfied/violated = %d/%d", sol.Satisfied, sol.Violated)
	}
}

func TestSolveSoftConstraint(t *testing.T) {
	p := twoVarProgram(t, true)
	sol, err := p.Solve(SolveOptions{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("relaxed program should always be feasible, violation %v", sol.MaxViolation)
	}
	if sol.Satisfied != 1 {
		t.Errorf("the single soft constraint should be satisfiable, got %d/%d", sol.Satisfied, sol.Violated)
	}
	// The deviation variable should be pushed at or below the residual, and
	// the residual should be ≤ 0.
	if res := sol.X[1] - sol.X[0] + 1e-9; res > 1e-6 {
		t.Errorf("residual = %v, want ≤ 0", res)
	}
}

func TestSolveConflictingSoftConstraints(t *testing.T) {
	// x1 − x0 + m ≤ 0 and x0 − x1 + m ≤ 0 conflict: exactly one can hold.
	p := NewProgram()
	i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.4)
	i1 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 2}, 0.4)
	m := 1e-4
	p.AddSoftConstraint(signomial.NewConst(m).Add(signomial.Monomial(1, i1), signomial.Monomial(-1, i0)))
	p.AddSoftConstraint(signomial.NewConst(m).Add(signomial.Monomial(1, i0), signomial.Monomial(-1, i1)))
	sol, err := p.Solve(SolveOptions{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("relaxed program must stay feasible, violation %v", sol.MaxViolation)
	}
	if sol.Satisfied > 1 {
		t.Errorf("conflicting constraints cannot both hold, satisfied = %d", sol.Satisfied)
	}
}

func TestReducedMatchesFull(t *testing.T) {
	build := func() *Program { return twoVarProgram(t, true) }
	full, err := build().Solve(SolveOptions{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	red, err := build().Solve(SolveOptions{Mode: Reduced})
	if err != nil {
		t.Fatal(err)
	}
	if full.Satisfied != red.Satisfied {
		t.Errorf("satisfied: full %d vs reduced %d", full.Satisfied, red.Satisfied)
	}
	// Edge variables should land close to each other.
	for i := 0; i < 2; i++ {
		if math.Abs(full.X[i]-red.X[i]) > 5e-2 {
			t.Errorf("X[%d]: full %v vs reduced %v", i, full.X[i], red.X[i])
		}
	}
}

func TestReducedRejectsDeviationInConstraint(t *testing.T) {
	p := NewProgram()
	i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.5)
	dev := p.AddDeviationVar()
	// Constraint that references the deviation variable directly.
	p.Soft = append(p.Soft, SoftConstraint{
		Sig: signomial.NewConst(0).Add(signomial.Monomial(1, i0), signomial.Monomial(1, dev)),
		Dev: dev,
	})
	if _, err := p.Solve(SolveOptions{Mode: Reduced}); err == nil {
		t.Errorf("reduced mode must reject deviation variables inside constraints")
	}
}

func TestEdgeVarIndexDedupAndClamp(t *testing.T) {
	p := NewProgram()
	k := graph.EdgeKey{From: 1, To: 2}
	i := p.EdgeVarIndex(k, 0.5)
	if j := p.EdgeVarIndex(k, 0.9); j != i {
		t.Errorf("dedup failed: %d vs %d", i, j)
	}
	if p.Vars[i].Init != 0.5 {
		t.Errorf("second registration overwrote init")
	}
	if got := p.LookupEdgeVar(k); got != i {
		t.Errorf("LookupEdgeVar = %d, want %d", got, i)
	}
	if got := p.LookupEdgeVar(graph.EdgeKey{From: 9, To: 9}); got != -1 {
		t.Errorf("missing edge should return -1")
	}
	// Inits outside the box are clamped.
	lo := p.EdgeVarIndex(graph.EdgeKey{From: 3, To: 4}, 0)
	if p.Vars[lo].Init != DefaultLowerBound {
		t.Errorf("zero init should clamp to lower bound, got %v", p.Vars[lo].Init)
	}
	hi := p.EdgeVarIndex(graph.EdgeKey{From: 4, To: 5}, 7)
	if p.Vars[hi].Init != DefaultUpperBound {
		t.Errorf("large init should clamp to upper bound, got %v", p.Vars[hi].Init)
	}
	if p.NumEdgeVars() != 3 || p.NumVars() != 3 {
		t.Errorf("var counts wrong: %d edge, %d total", p.NumEdgeVars(), p.NumVars())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	fresh := func() *Program {
		p := NewProgram()
		p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.5)
		return p
	}
	p := fresh()
	p.Lambda1 = -1
	if err := p.Validate(); err == nil {
		t.Errorf("negative lambda1 should fail")
	}
	p = fresh()
	p.SigmoidW = 0
	if err := p.Validate(); err == nil {
		t.Errorf("zero sigmoid w should fail")
	}
	p = fresh()
	p.Vars[0].Lower = 2
	if err := p.Validate(); err == nil {
		t.Errorf("empty variable box should fail")
	}
	p = fresh()
	p.Vars[0].Init = 5
	if err := p.Validate(); err == nil {
		t.Errorf("init outside box should fail")
	}
	p = fresh()
	p.AddHardConstraint(nil)
	if err := p.Validate(); err == nil {
		t.Errorf("nil constraint should fail")
	}
	p = fresh()
	p.AddHardConstraint(signomial.NewConst(0).Add(signomial.Monomial(1, 42)))
	if err := p.Validate(); err == nil {
		t.Errorf("out-of-range variable should fail")
	}
	p = fresh()
	p.Soft = append(p.Soft, SoftConstraint{Sig: signomial.NewConst(0), Dev: 99})
	if err := p.Validate(); err == nil {
		t.Errorf("bad deviation index should fail")
	}
	p = fresh()
	p.Soft = append(p.Soft, SoftConstraint{Sig: signomial.NewConst(0), Dev: 0})
	if err := p.Validate(); err == nil {
		t.Errorf("non-deviation dev index should fail")
	}
	p = fresh()
	if _, err := p.Solve(SolveOptions{Mode: Mode(42)}); err == nil {
		t.Errorf("unknown mode should fail")
	}
}

func TestObjectiveGradientMatchesFD(t *testing.T) {
	p := twoVarProgram(t, true)
	obj := p.objective()
	x := []float64{0.31, 0.52, -0.003}
	g := make([]float64, 3)
	obj.Grad(x, g)
	const h = 1e-7
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		fd := (obj.F(xp) - obj.F(xm)) / (2 * h)
		if math.Abs(fd-g[i]) > 1e-3*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, fd = %v", i, g[i], fd)
		}
	}
}

func TestSolveWithTighterAL(t *testing.T) {
	p := twoVarProgram(t, false)
	sol, err := p.Solve(SolveOptions{Mode: Full, AL: optimize.ALOptions{
		MaxOuter: 50,
		Inner:    optimize.PGOptions{MaxIter: 1000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Errorf("should be feasible")
	}
}

func TestWeightedSoftConstraintConflict(t *testing.T) {
	// Conflicting constraints: x1 − x0 + m ≤ 0 (wants x0 big) with weight
	// 10 versus x0 − x1 + m ≤ 0 with weight 0.1: the heavy constraint
	// should be the satisfied one.
	build := func(heavyFirst bool) *Program {
		p := NewProgram()
		i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.4)
		i1 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 2}, 0.4)
		m := 1e-3
		c1 := signomial.NewConst(m).Add(signomial.Monomial(1, i1), signomial.Monomial(-1, i0))
		c2 := signomial.NewConst(m).Add(signomial.Monomial(1, i0), signomial.Monomial(-1, i1))
		w1, w2 := 10.0, 0.1
		if !heavyFirst {
			w1, w2 = 0.1, 10.0
		}
		p.AddWeightedSoftConstraint(c1, w1)
		p.AddWeightedSoftConstraint(c2, w2)
		return p
	}
	for _, mode := range []Mode{Full, Reduced} {
		p := build(true)
		sol, err := p.Solve(SolveOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if sol.X[0] <= sol.X[1] {
			t.Errorf("mode %v: heavy constraint lost: x0=%v x1=%v", mode, sol.X[0], sol.X[1])
		}
		p = build(false)
		sol, err = p.Solve(SolveOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if sol.X[1] <= sol.X[0] {
			t.Errorf("mode %v: heavy constraint lost: x0=%v x1=%v", mode, sol.X[0], sol.X[1])
		}
	}
}

func TestNegativeWeightRejected(t *testing.T) {
	p := NewProgram()
	i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.5)
	p.AddWeightedSoftConstraint(signomial.NewConst(0).Add(signomial.Monomial(1, i0)), -1)
	if err := p.Validate(); err == nil {
		t.Errorf("negative constraint weight should fail validation")
	}
}

func TestDeviationInitializedToResidual(t *testing.T) {
	p := NewProgram()
	i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.5)
	// sig(x0) = x0 − 0.2: residual at init is 0.3.
	dev := p.AddSoftConstraint(signomial.NewConst(-0.2).Add(signomial.Monomial(1, i0)))
	if got := p.Vars[dev].Init; got != 0.3 {
		t.Errorf("deviation init = %v, want 0.3", got)
	}
}

func TestReducedModeWithHardConstraints(t *testing.T) {
	// Mix: a hard constraint x0 ≥ 0.5 (as 0.5 − x0 ≤ 0) plus a soft
	// constraint preferring x1 above x0. Reduced mode must route the hard
	// constraint through the augmented Lagrangian while folding the soft
	// one into the objective.
	p := NewProgram()
	i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.3)
	i1 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 2}, 0.3)
	p.AddHardConstraint(signomial.NewConst(0.5).Add(signomial.Monomial(-1, i0)))
	p.AddSoftConstraint(signomial.NewConst(0.01).Add(
		signomial.Monomial(1, i0), signomial.Monomial(-1, i1)))
	sol, err := p.Solve(SolveOptions{Mode: Reduced})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("hard constraint unsatisfied: violation %v", sol.MaxViolation)
	}
	if sol.X[i0] < 0.5-1e-6 {
		t.Errorf("hard constraint violated: x0 = %v", sol.X[i0])
	}
	if sol.X[i1] <= sol.X[i0] {
		t.Errorf("soft preference lost: x0=%v x1=%v", sol.X[i0], sol.X[i1])
	}
	if sol.Satisfied != 2 {
		t.Errorf("satisfied = %d, want 2", sol.Satisfied)
	}
}

func TestSolutionCountsWithViolatedHard(t *testing.T) {
	// Impossible hard constraint (x0 ≥ 2 with upper bound 1): infeasible,
	// and the original-constraint count reflects it.
	p := NewProgram()
	i0 := p.EdgeVarIndex(graph.EdgeKey{From: 0, To: 1}, 0.5)
	p.AddHardConstraint(signomial.NewConst(2).Add(signomial.Monomial(-1, i0)))
	sol, err := p.Solve(SolveOptions{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Errorf("impossible constraint reported feasible")
	}
	if sol.Satisfied != 0 || sol.Violated != 1 {
		t.Errorf("satisfied/violated = %d/%d", sol.Satisfied, sol.Violated)
	}
}
