// Package sgp models and solves the signomial geometric programs (SGP)
// that the paper's graph optimization reduces to (Equation (2)).
//
// A Program has edge-weight variables with box bounds 0 < xl ≤ x ≤ xu,
// hard signomial constraints f(x) ≤ 0 (single-vote solution, Equation
// (11)), and soft constraints f(x) − dx ≤ 0 with one deviation variable
// each (multi-vote solution, Equation (15)). The objective is the paper's
// Equation (19):
//
//	λ₁·Σ (x_edge − x₀)²  +  λ₂·Σ sigmoid(w·dx)
//
// Solving uses the hand-rolled augmented-Lagrangian method from
// internal/optimize; a reduced mode eliminates the deviation variables
// analytically (see Solve).
package sgp

import (
	"fmt"

	"kgvote/internal/graph"
	"kgvote/internal/signomial"
)

// Default bounds and objective parameters.
const (
	// DefaultLowerBound keeps edge weights strictly positive, matching the
	// SGP requirement 0 < xl.
	DefaultLowerBound = 1e-6
	// DefaultUpperBound caps edge weights at 1 (they are probabilities).
	DefaultUpperBound = 1.0
	// DefaultSigmoidW is the sigmoid steepness of Equation (17); the paper
	// sets w = 300.
	DefaultSigmoidW = 300.0
	// DefaultMargin turns the paper's strict inequalities S_best > S_other
	// into the closed form. The engine preconditions constraints to
	// relative scale, so this is a relative separation: the best answer
	// must beat every other answer by 1%.
	DefaultMargin = 0.01
	// DefaultDevBound bounds deviation variables to [−DevBound, DevBound].
	// Constraints are preconditioned to relative scale by the engine, so
	// residuals can exceed 1; a generous bound keeps the relaxation
	// feasible for any residual while the sigmoid saturates long before it.
	DefaultDevBound = 1e4
)

// VarKind distinguishes edge-weight variables from deviation variables.
type VarKind int

const (
	// EdgeVar is the weight of one graph edge.
	EdgeVar VarKind = iota
	// DeviationVar is the slack dx of one soft constraint.
	DeviationVar
)

// Variable is one SGP variable.
type Variable struct {
	Kind         VarKind
	Edge         graph.EdgeKey // meaningful for EdgeVar
	Init         float64
	Lower, Upper float64
}

// Program is a full SGP instance under construction.
type Program struct {
	Vars []Variable
	// Hard constraints: sig(x) ≤ 0.
	Hard []*signomial.Signomial
	// Soft constraints: Sig(x) − x[Dev] ≤ 0.
	Soft []SoftConstraint

	Lambda1  float64 // weight-change preference (λ₁)
	Lambda2  float64 // vote-satisfaction preference (λ₂)
	SigmoidW float64 // sigmoid steepness (w)

	edgeIdx map[graph.EdgeKey]int
}

// SoftConstraint couples a signomial with its deviation variable.
type SoftConstraint struct {
	Sig *signomial.Signomial
	Dev int // variable index of the deviation variable
	// Weight scales this constraint's sigmoid term in the objective
	// (vote credibility); 1 for ordinary constraints.
	Weight float64
}

// NewProgram returns an empty program with the paper's default objective
// parameters (λ₁ = λ₂ = 0.5, w = 300).
func NewProgram() *Program {
	return &Program{
		Lambda1:  0.5,
		Lambda2:  0.5,
		SigmoidW: DefaultSigmoidW,
		edgeIdx:  make(map[graph.EdgeKey]int),
	}
}

// NumVars returns the total variable count.
func (p *Program) NumVars() int { return len(p.Vars) }

// Reset empties the program for reuse, keeping the variable slice,
// constraint slices, and edge-index map capacity. The engine pools
// programs across per-cluster solves so each flush stops reallocating
// the same workspaces.
func (p *Program) Reset() {
	p.Vars = p.Vars[:0]
	p.Hard = p.Hard[:0]
	p.Soft = p.Soft[:0]
	p.Lambda1 = 0.5
	p.Lambda2 = 0.5
	p.SigmoidW = DefaultSigmoidW
	clear(p.edgeIdx)
}

// EvalAtInit evaluates a signomial at the program's per-variable initial
// values without materializing the initial-point vector — the encoder
// preconditions one constraint per (vote, answer) pair and used to
// allocate a fresh vector for each.
func (p *Program) EvalAtInit(sig *signomial.Signomial) float64 {
	return sig.EvalAt(func(i int) float64 { return p.Vars[i].Init })
}

// NumEdgeVars returns the number of edge-weight variables.
func (p *Program) NumEdgeVars() int {
	n := 0
	for _, v := range p.Vars {
		if v.Kind == EdgeVar {
			n++
		}
	}
	return n
}

// NumConstraints returns the total constraint count (hard + soft).
func (p *Program) NumConstraints() int { return len(p.Hard) + len(p.Soft) }

// EdgeVarIndex returns the variable index for an edge, creating the
// variable on first use with the given initial value and default bounds.
func (p *Program) EdgeVarIndex(key graph.EdgeKey, init float64) int {
	if i, ok := p.edgeIdx[key]; ok {
		return i
	}
	i := len(p.Vars)
	lo, hi := DefaultLowerBound, DefaultUpperBound
	if init < lo {
		init = lo
	}
	if init > hi {
		init = hi
	}
	p.Vars = append(p.Vars, Variable{Kind: EdgeVar, Edge: key, Init: init, Lower: lo, Upper: hi})
	p.edgeIdx[key] = i
	return i
}

// LookupEdgeVar returns the variable index of an edge, or -1.
func (p *Program) LookupEdgeVar(key graph.EdgeKey) int {
	if i, ok := p.edgeIdx[key]; ok {
		return i
	}
	return -1
}

// AddDeviationVar appends one deviation variable and returns its index.
func (p *Program) AddDeviationVar() int {
	i := len(p.Vars)
	p.Vars = append(p.Vars, Variable{
		Kind:  DeviationVar,
		Init:  0,
		Lower: -DefaultDevBound,
		Upper: DefaultDevBound,
	})
	return i
}

// AddHardConstraint adds sig(x) ≤ 0.
func (p *Program) AddHardConstraint(sig *signomial.Signomial) {
	p.Hard = append(p.Hard, sig)
}

// AddSoftConstraint adds sig(x) − dx ≤ 0 with a fresh deviation variable
// and returns the deviation variable's index. sig must not reference the
// deviation variable itself; the solver adds the −dx term.
//
// The deviation variable is initialized to the constraint's residual at
// the initial point, so the relaxed constraint starts exactly tight.
// Starting at dx = 0 instead would let the augmented Lagrangian launch dx
// deep into the sigmoid's saturated region (where its gradient vanishes)
// just to restore feasibility, dead-locking the solve.
func (p *Program) AddSoftConstraint(sig *signomial.Signomial) int {
	return p.AddWeightedSoftConstraint(sig, 1)
}

// AddWeightedSoftConstraint is AddSoftConstraint with a credibility weight
// scaling the constraint's sigmoid objective term.
func (p *Program) AddWeightedSoftConstraint(sig *signomial.Signomial, weight float64) int {
	residual := p.EvalAtInit(sig)
	dev := p.AddDeviationVar()
	v := &p.Vars[dev]
	v.Init = residual
	if v.Init < v.Lower {
		v.Init = v.Lower
	}
	if v.Init > v.Upper {
		v.Init = v.Upper
	}
	p.Soft = append(p.Soft, SoftConstraint{Sig: sig, Dev: dev, Weight: weight})
	return dev
}

// InitialPoint returns the vector of variable initial values.
func (p *Program) InitialPoint() []float64 {
	x := make([]float64, len(p.Vars))
	for i, v := range p.Vars {
		x[i] = v.Init
	}
	return x
}

// Bounds returns the lower and upper bound vectors.
func (p *Program) Bounds() (lo, hi []float64) {
	lo = make([]float64, len(p.Vars))
	hi = make([]float64, len(p.Vars))
	for i, v := range p.Vars {
		lo[i], hi[i] = v.Lower, v.Upper
	}
	return lo, hi
}

// Validate checks structural invariants before solving.
func (p *Program) Validate() error {
	if p.Lambda1 < 0 || p.Lambda2 < 0 {
		return fmt.Errorf("sgp: negative objective weights λ1=%v λ2=%v", p.Lambda1, p.Lambda2)
	}
	if p.SigmoidW <= 0 {
		return fmt.Errorf("sgp: sigmoid steepness %v must be positive", p.SigmoidW)
	}
	n := len(p.Vars)
	for i, v := range p.Vars {
		if v.Lower > v.Upper {
			return fmt.Errorf("sgp: variable %d has empty box [%v, %v]", i, v.Lower, v.Upper)
		}
		if v.Init < v.Lower || v.Init > v.Upper {
			return fmt.Errorf("sgp: variable %d init %v outside [%v, %v]", i, v.Init, v.Lower, v.Upper)
		}
	}
	check := func(sig *signomial.Signomial, what string, idx int) error {
		if sig == nil {
			return fmt.Errorf("sgp: %s constraint %d is nil", what, idx)
		}
		if mv := sig.MaxVar(); mv >= n {
			return fmt.Errorf("sgp: %s constraint %d references variable %d, have %d", what, idx, mv, n)
		}
		return nil
	}
	for i, sig := range p.Hard {
		if err := check(sig, "hard", i); err != nil {
			return err
		}
	}
	for i, sc := range p.Soft {
		if err := check(sc.Sig, "soft", i); err != nil {
			return err
		}
		if sc.Dev < 0 || sc.Dev >= n {
			return fmt.Errorf("sgp: soft constraint %d deviation index %d out of range", i, sc.Dev)
		}
		if p.Vars[sc.Dev].Kind != DeviationVar {
			return fmt.Errorf("sgp: soft constraint %d deviation index %d is not a deviation variable", i, sc.Dev)
		}
		if sc.Weight < 0 {
			return fmt.Errorf("sgp: soft constraint %d has negative weight %v", i, sc.Weight)
		}
	}
	return nil
}
