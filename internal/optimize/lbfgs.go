package optimize

import "math"

// LBFGSOptions tunes LBFGS.
type LBFGSOptions struct {
	MaxIter       int     // default 500
	Tol           float64 // ∞-norm of the gradient; default 1e-8
	FTol          float64 // relative objective change; default 1e-12
	Memory        int     // history pairs; default 8
	ArmijoC       float64 // default 1e-4
	Shrink        float64 // default 0.5
	MaxBacktracks int     // default 50
}

func (o LBFGSOptions) withDefaults() LBFGSOptions {
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.FTol == 0 {
		o.FTol = 1e-12
	}
	if o.Memory == 0 {
		o.Memory = 8
	}
	if o.ArmijoC == 0 {
		o.ArmijoC = 1e-4
	}
	if o.Shrink == 0 {
		o.Shrink = 0.5
	}
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 50
	}
	return o
}

// LBFGS minimizes an unconstrained smooth function with the limited-memory
// BFGS method and Armijo backtracking. It is used for the reduced
// (deviation-eliminated) multi-vote formulation and as a fast inner solver
// where no box is needed.
func LBFGS(f Func, x0 []float64, opt LBFGSOptions) Result {
	opt = opt.withDefaults()
	n := len(x0)
	if n == 0 {
		return Result{Status: Converged}
	}
	x := append([]float64(nil), x0...)
	g := make([]float64, n)
	fx := f.F(x)
	f.Grad(x, g)
	evals := 1

	m := opt.Memory
	sHist := make([][]float64, 0, m)
	yHist := make([][]float64, 0, m)
	rhoHist := make([]float64, 0, m)
	alpha := make([]float64, m)

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)
	res := Result{Status: MaxIterations}

	for iter := 1; iter <= opt.MaxIter; iter++ {
		gInf := 0.0
		for _, v := range g {
			if a := math.Abs(v); a > gInf {
				gInf = a
			}
		}
		if gInf <= opt.Tol {
			res.Status = Converged
			res.Iters = iter - 1
			res.GradNorm = gInf
			break
		}

		// Two-loop recursion for dir = −H·g.
		copy(dir, g)
		for i := len(sHist) - 1; i >= 0; i-- {
			var sd float64
			for j := range dir {
				sd += sHist[i][j] * dir[j]
			}
			alpha[i] = rhoHist[i] * sd
			for j := range dir {
				dir[j] -= alpha[i] * yHist[i][j]
			}
		}
		if k := len(sHist); k > 0 {
			var sy, yy float64
			for j := 0; j < n; j++ {
				sy += sHist[k-1][j] * yHist[k-1][j]
				yy += yHist[k-1][j] * yHist[k-1][j]
			}
			if yy > 0 {
				scale := sy / yy
				for j := range dir {
					dir[j] *= scale
				}
			}
		}
		for i := 0; i < len(sHist); i++ {
			var yd float64
			for j := range dir {
				yd += yHist[i][j] * dir[j]
			}
			beta := rhoHist[i] * yd
			for j := range dir {
				dir[j] += (alpha[i] - beta) * sHist[i][j]
			}
		}
		for j := range dir {
			dir[j] = -dir[j]
		}

		// Descent check: fall back to steepest descent if the curvature
		// history produced an ascent direction.
		var gd float64
		for j := range dir {
			gd += g[j] * dir[j]
		}
		if gd >= 0 {
			for j := range dir {
				dir[j] = -g[j]
			}
			gd = 0
			for j := range dir {
				gd += g[j] * dir[j]
			}
		}

		// Armijo backtracking.
		t := 1.0
		accepted := false
		var fNew float64
		for bt := 0; bt <= opt.MaxBacktracks; bt++ {
			for j := range xNew {
				xNew[j] = x[j] + t*dir[j]
			}
			fNew = f.F(xNew)
			evals++
			if fNew <= fx+opt.ArmijoC*t*gd {
				accepted = true
				break
			}
			t *= opt.Shrink
		}
		if !accepted {
			res.Status = LineSearchFailed
			res.Iters = iter
			res.GradNorm = gInf
			break
		}

		f.Grad(xNew, gNew)
		s := make([]float64, n)
		y := make([]float64, n)
		var sy float64
		for j := 0; j < n; j++ {
			s[j] = xNew[j] - x[j]
			y[j] = gNew[j] - g[j]
			sy += s[j] * y[j]
		}
		if sy > 1e-16 {
			if len(sHist) == m {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
		}

		relImprove := math.Abs(fx-fNew) / math.Max(1, math.Abs(fx))
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew
		res.Iters = iter
		res.GradNorm = gInf
		if relImprove < opt.FTol {
			res.Status = SmallImprovement
			break
		}
	}
	res.X = x
	res.F = fx
	res.Evals = evals
	return res
}
