// Package optimize is a small, dependency-free nonlinear optimization
// toolkit: a spectral projected-gradient method for box-constrained smooth
// minimization, a limited-memory BFGS method for unconstrained problems,
// and an augmented-Lagrangian outer loop for inequality-constrained
// problems.
//
// It exists because the paper solves its signomial geometric programs with
// MATLAB's fmincon; this package is the hand-rolled substitute. All
// methods use caller-supplied analytic gradients.
package optimize

import (
	"fmt"
	"math"
)

// Func is a smooth scalar function with an analytic gradient. Grad must
// overwrite g (len(g) == len(x)) with ∇f(x).
type Func struct {
	F    func(x []float64) float64
	Grad func(x []float64, g []float64)
}

// Box holds per-coordinate bounds. A nil Lower/Upper slice means
// unbounded on that side.
type Box struct {
	Lower, Upper []float64
}

// Project clamps x into the box in place.
func (b Box) Project(x []float64) {
	for i := range x {
		if b.Lower != nil && x[i] < b.Lower[i] {
			x[i] = b.Lower[i]
		}
		if b.Upper != nil && x[i] > b.Upper[i] {
			x[i] = b.Upper[i]
		}
	}
}

// Validate checks that the box is consistent with dimension n.
func (b Box) Validate(n int) error {
	if b.Lower != nil && len(b.Lower) != n {
		return fmt.Errorf("optimize: lower bound has dim %d, want %d", len(b.Lower), n)
	}
	if b.Upper != nil && len(b.Upper) != n {
		return fmt.Errorf("optimize: upper bound has dim %d, want %d", len(b.Upper), n)
	}
	if b.Lower != nil && b.Upper != nil {
		for i := range b.Lower {
			if b.Lower[i] > b.Upper[i] {
				return fmt.Errorf("optimize: empty box at coordinate %d: [%v, %v]", i, b.Lower[i], b.Upper[i])
			}
		}
	}
	return nil
}

// Status describes why an optimizer stopped.
type Status int

const (
	// Converged means the first-order optimality criterion was met.
	Converged Status = iota
	// SmallImprovement means successive objective values stopped changing.
	SmallImprovement
	// MaxIterations means the iteration budget ran out.
	MaxIterations
	// LineSearchFailed means no acceptable step was found; the best point
	// so far is returned.
	LineSearchFailed
	// Stopped means the caller's Stop hook fired (deadline or
	// cancellation); the best point so far is returned.
	Stopped
)

func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case SmallImprovement:
		return "small-improvement"
	case MaxIterations:
		return "max-iterations"
	case LineSearchFailed:
		return "line-search-failed"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result is the outcome of a single optimizer run.
type Result struct {
	X        []float64
	F        float64
	Iters    int
	Evals    int // objective evaluations (line search included)
	GradNorm float64
	Status   Status
}

// PGOptions tunes ProjectedGradient.
type PGOptions struct {
	MaxIter       int     // default 500
	Tol           float64 // ∞-norm of the projected gradient step; default 1e-8
	FTol          float64 // relative objective change; default 1e-12
	ArmijoC       float64 // sufficient-decrease constant; default 1e-4
	Shrink        float64 // backtracking factor; default 0.5
	MaxBacktracks int     // default 40
	StepMin       float64 // BB step clamp; default 1e-12
	StepMax       float64 // BB step clamp; default 1e6
	// NonmonotoneWindow is the GLL line-search history length: the Armijo
	// reference value is the max of the last N objective values, letting
	// spectral steps temporarily increase f (classic SPG). 1 (default)
	// is a strictly monotone search.
	NonmonotoneWindow int
	// Stop is polled once per iteration; when it returns true the solver
	// stops and returns the best point found so far with Status Stopped.
	// Deadline propagation threads context cancellation through here
	// (nil = never stop early).
	Stop func() bool
}

func (o PGOptions) withDefaults() PGOptions {
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.FTol == 0 {
		o.FTol = 1e-12
	}
	if o.ArmijoC == 0 {
		o.ArmijoC = 1e-4
	}
	if o.Shrink == 0 {
		o.Shrink = 0.5
	}
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 40
	}
	if o.StepMin == 0 {
		o.StepMin = 1e-12
	}
	if o.StepMax == 0 {
		o.StepMax = 1e6
	}
	if o.NonmonotoneWindow == 0 {
		o.NonmonotoneWindow = 1
	}
	return o
}

// ProjectedGradient minimizes f over the box using a spectral
// (Barzilai–Borwein) projected-gradient method with monotone Armijo
// backtracking along the projection arc.
func ProjectedGradient(f Func, box Box, x0 []float64, opt PGOptions) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{X: nil, Status: Converged}, nil
	}
	if err := box.Validate(n); err != nil {
		return Result{}, err
	}
	opt = opt.withDefaults()

	x := append([]float64(nil), x0...)
	box.Project(x)
	g := make([]float64, n)
	fx := f.F(x)
	f.Grad(x, g)
	evals := 1

	// GLL nonmonotone reference: ring buffer of recent objective values.
	history := make([]float64, 0, opt.NonmonotoneWindow)
	history = append(history, fx)
	fref := func() float64 {
		m := history[0]
		for _, v := range history[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}

	xNew := make([]float64, n)
	gNew := make([]float64, n)
	step := 1.0
	res := Result{Status: MaxIterations}

	for iter := 1; iter <= opt.MaxIter; iter++ {
		if opt.Stop != nil && opt.Stop() {
			res.Status = Stopped
			res.Iters = iter - 1
			break
		}
		// Optimality: the projected gradient step.
		pgNorm := 0.0
		for i := range x {
			xi := x[i] - g[i]
			if box.Lower != nil && xi < box.Lower[i] {
				xi = box.Lower[i]
			}
			if box.Upper != nil && xi > box.Upper[i] {
				xi = box.Upper[i]
			}
			d := math.Abs(xi - x[i])
			if d > pgNorm {
				pgNorm = d
			}
		}
		if pgNorm <= opt.Tol {
			res.Status = Converged
			res.Iters = iter - 1
			res.GradNorm = pgNorm
			break
		}

		// Backtracking along the projection arc: x(t) = P(x − t·step·g),
		// accepting against the (possibly nonmonotone) reference value.
		ref := fref()
		t := 1.0
		accepted := false
		var fNew float64
		for bt := 0; bt <= opt.MaxBacktracks; bt++ {
			for i := range xNew {
				xNew[i] = x[i] - t*step*g[i]
			}
			box.Project(xNew)
			// Directional decrease along d = xNew − x.
			var gd float64
			for i := range xNew {
				gd += g[i] * (xNew[i] - x[i])
			}
			fNew = f.F(xNew)
			evals++
			if fNew <= ref+opt.ArmijoC*gd || gd >= 0 && fNew < ref {
				accepted = true
				break
			}
			t *= opt.Shrink
		}
		if !accepted {
			res.Status = LineSearchFailed
			res.Iters = iter
			res.GradNorm = pgNorm
			break
		}

		f.Grad(xNew, gNew)
		// Barzilai–Borwein step for the next iteration.
		var sy, ss float64
		for i := range x {
			s := xNew[i] - x[i]
			y := gNew[i] - g[i]
			sy += s * y
			ss += s * s
		}
		if sy > 0 {
			step = ss / sy
		} else {
			step = 1
		}
		if step < opt.StepMin {
			step = opt.StepMin
		}
		if step > opt.StepMax {
			step = opt.StepMax
		}

		relImprove := math.Abs(fx-fNew) / math.Max(1, math.Abs(fx))
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew
		if len(history) == opt.NonmonotoneWindow {
			history = history[1:]
		}
		history = append(history, fx)
		res.Iters = iter
		res.GradNorm = pgNorm
		if relImprove < opt.FTol {
			res.Status = SmallImprovement
			break
		}
	}
	res.X = x
	res.F = fx
	res.Evals = evals
	return res, nil
}
