package optimize

import (
	"fmt"
	"math"
)

// Constraint is one smooth inequality constraint g(x) ≤ 0. AddGrad must
// accumulate scale·∇g(x) into grad (not overwrite).
type Constraint struct {
	F       func(x []float64) float64
	AddGrad func(x []float64, grad []float64, scale float64)
}

// ALOptions tunes the augmented-Lagrangian outer loop.
type ALOptions struct {
	MaxOuter      int     // outer iterations; default 30
	Mu0           float64 // initial penalty; default 10
	MuGrowth      float64 // penalty growth when progress stalls; default 4
	MuMax         float64 // penalty cap; default 1e10
	ConstraintTol float64 // feasibility tolerance; default 1e-8
	Inner         PGOptions
	// Stop is polled between (and, via Inner, inside) outer iterations;
	// when it returns true the solve stops and returns the best iterate so
	// far with Stopped set (nil = run to convergence).
	Stop func() bool
}

func (o ALOptions) withDefaults() ALOptions {
	if o.MaxOuter == 0 {
		o.MaxOuter = 30
	}
	if o.Mu0 == 0 {
		o.Mu0 = 10
	}
	if o.MuGrowth == 0 {
		o.MuGrowth = 4
	}
	if o.MuMax == 0 {
		o.MuMax = 1e10
	}
	if o.ConstraintTol == 0 {
		o.ConstraintTol = 1e-8
	}
	return o
}

// ALResult is the outcome of an augmented-Lagrangian solve.
type ALResult struct {
	X            []float64
	F            float64 // objective value (without penalty)
	MaxViolation float64 // max_i max(0, g_i(x))
	Feasible     bool
	Outer        int
	InnerIters   int
	InnerEvals   int
	Multipliers  []float64
	// Stopped reports that the Stop hook cut the solve short; X is the
	// best-so-far iterate, not a converged point.
	Stopped bool
}

// AugmentedLagrangian minimizes obj subject to cons[i](x) ≤ 0 and the box,
// using the Powell–Hestenes–Rockafellar augmented Lagrangian
//
//	L(x; λ, μ) = f(x) + 1/(2μ)·Σ_i [ max(0, λ_i + μ·g_i(x))² − λ_i² ]
//
// with the spectral projected-gradient method as the inner solver.
// Multiplier update: λ_i ← max(0, λ_i + μ·g_i(x)); the penalty μ grows
// when the maximum violation fails to shrink by at least 4×.
func AugmentedLagrangian(obj Func, cons []Constraint, box Box, x0 []float64, opt ALOptions) (ALResult, error) {
	n := len(x0)
	if err := box.Validate(n); err != nil {
		return ALResult{}, err
	}
	opt = opt.withDefaults()
	if opt.Mu0 <= 0 || opt.MuGrowth <= 1 {
		return ALResult{}, fmt.Errorf("optimize: invalid AL penalties mu0=%v growth=%v", opt.Mu0, opt.MuGrowth)
	}

	lambda := make([]float64, len(cons))
	mu := opt.Mu0
	x := append([]float64(nil), x0...)
	box.Project(x)

	gvals := make([]float64, len(cons))
	evalCons := func(x []float64) {
		for i, c := range cons {
			gvals[i] = c.F(x)
		}
	}
	maxViol := func() float64 {
		v := 0.0
		for _, gv := range gvals {
			if gv > v {
				v = gv
			}
		}
		return v
	}

	lag := Func{
		F: func(x []float64) float64 {
			v := obj.F(x)
			for i, c := range cons {
				t := lambda[i] + mu*c.F(x)
				if t > 0 {
					v += (t*t - lambda[i]*lambda[i]) / (2 * mu)
				} else {
					v -= lambda[i] * lambda[i] / (2 * mu)
				}
			}
			return v
		},
		Grad: func(x []float64, g []float64) {
			obj.Grad(x, g)
			for i, c := range cons {
				t := lambda[i] + mu*c.F(x)
				if t > 0 {
					c.AddGrad(x, g, t)
				}
			}
		},
	}

	innerOpt := opt.Inner
	innerOpt.Stop = opt.Stop
	res := ALResult{}
	evalCons(x)
	prevViol := maxViol()
	xPrev := append([]float64(nil), x...)
	for outer := 1; outer <= opt.MaxOuter; outer++ {
		if opt.Stop != nil && opt.Stop() {
			res.Stopped = true
			break
		}
		inner, err := ProjectedGradient(lag, box, x, innerOpt)
		if err != nil {
			return ALResult{}, err
		}
		x = inner.X
		res.Outer = outer
		res.InnerIters += inner.Iters
		res.InnerEvals += inner.Evals
		if inner.Status == Stopped {
			res.Stopped = true
			break
		}

		evalCons(x)
		viol := maxViol()
		for i := range lambda {
			lambda[i] = math.Max(0, lambda[i]+mu*gvals[i])
		}
		// Converged when feasible AND the iterate has stabilized across
		// outer iterations (feasibility alone can be reached far from the
		// constrained optimum).
		var dx float64
		for i := range x {
			if d := math.Abs(x[i] - xPrev[i]); d > dx {
				dx = d
			}
		}
		copy(xPrev, x)
		if viol <= opt.ConstraintTol && (dx <= 1e-7 || outer > 1 && prevViol <= opt.ConstraintTol && dx <= 1e-5) {
			res.Feasible = true
			res.MaxViolation = viol
			break
		}
		if viol > 0.25*prevViol && mu < opt.MuMax {
			mu *= opt.MuGrowth
			if mu > opt.MuMax {
				mu = opt.MuMax
			}
		}
		prevViol = viol
		res.MaxViolation = viol
	}
	res.X = x
	res.F = obj.F(x)
	res.Multipliers = lambda
	evalCons(x)
	res.MaxViolation = maxViol()
	res.Feasible = res.MaxViolation <= opt.ConstraintTol
	return res, nil
}
