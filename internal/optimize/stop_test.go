package optimize

import (
	"math"
	"testing"
)

func TestProjectedGradientStopImmediate(t *testing.T) {
	f := quadratic([]float64{3, -2})
	res, err := ProjectedGradient(f, Box{}, []float64{0, 0}, PGOptions{
		Stop: func() bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Stopped {
		t.Fatalf("status = %v, want Stopped", res.Status)
	}
	// No iterations ran: the best-so-far iterate is the start point.
	if res.X[0] != 0 || res.X[1] != 0 {
		t.Errorf("X = %v, want start point [0 0]", res.X)
	}
}

func TestProjectedGradientStopAfterBudget(t *testing.T) {
	f := quadratic([]float64{3, -2})
	polls := 0
	res, err := ProjectedGradient(f, Box{}, []float64{0, 0}, PGOptions{
		Stop: func() bool { polls++; return polls > 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Stopped {
		t.Fatalf("status = %v, want Stopped", res.Status)
	}
	// A handful of descent steps on a convex quadratic must improve on the
	// start point: best-so-far, not garbage.
	if f.F(res.X) >= f.F([]float64{0, 0}) {
		t.Errorf("stopped iterate %v did not improve on the start", res.X)
	}
}

func TestAugmentedLagrangianStopPropagates(t *testing.T) {
	obj := quadratic([]float64{0})
	cons := []Constraint{{
		F: func(x []float64) float64 { return 1 - x[0] },
		AddGrad: func(x []float64, g []float64, s float64) {
			g[0] += s * -1
		},
	}}
	polls := 0
	res, err := AugmentedLagrangian(obj, cons, Box{}, []float64{5}, ALOptions{
		Stop: func() bool { polls++; return polls > 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("result not marked Stopped")
	}
	if len(res.X) != 1 || math.IsNaN(res.X[0]) {
		t.Errorf("stopped X = %v, want a finite iterate", res.X)
	}
}

func TestAugmentedLagrangianNilStopConverges(t *testing.T) {
	obj := quadratic([]float64{0})
	cons := []Constraint{{
		F: func(x []float64) float64 { return 1 - x[0] },
		AddGrad: func(x []float64, g []float64, s float64) {
			g[0] += s * -1
		},
	}}
	res, err := AugmentedLagrangian(obj, cons, Box{}, []float64{5}, ALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped {
		t.Fatal("nil Stop must never mark the result Stopped")
	}
	if math.Abs(res.X[0]-1) > 1e-4 {
		t.Errorf("X = %v, want 1", res.X)
	}
}
