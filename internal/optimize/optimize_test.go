package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func quadratic(center []float64) Func {
	return Func{
		F: func(x []float64) float64 {
			var s float64
			for i := range x {
				d := x[i] - center[i]
				s += d * d
			}
			return s
		},
		Grad: func(x []float64, g []float64) {
			for i := range x {
				g[i] = 2 * (x[i] - center[i])
			}
		},
	}
}

func rosenbrock() Func {
	return Func{
		F: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
		Grad: func(x []float64, g []float64) {
			b := x[1] - x[0]*x[0]
			g[0] = -2*(1-x[0]) - 400*x[0]*b
			g[1] = 200 * b
		},
	}
}

func TestProjectedGradientUnconstrainedQuadratic(t *testing.T) {
	f := quadratic([]float64{3, -2})
	res, err := ProjectedGradient(f, Box{}, []float64{0, 0}, PGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-6 || math.Abs(res.X[1]+2) > 1e-6 {
		t.Errorf("X = %v, want [3 -2] (status %v)", res.X, res.Status)
	}
}

func TestProjectedGradientActiveBox(t *testing.T) {
	f := quadratic([]float64{3})
	res, err := ProjectedGradient(f, Box{Lower: []float64{0}, Upper: []float64{1}}, []float64{0.5}, PGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-9 {
		t.Errorf("X = %v, want clamp at 1", res.X)
	}
	if res.Status != Converged {
		t.Errorf("status = %v, want Converged", res.Status)
	}
}

func TestProjectedGradientProjectsStart(t *testing.T) {
	f := quadratic([]float64{0})
	res, err := ProjectedGradient(f, Box{Lower: []float64{2}, Upper: []float64{5}}, []float64{100}, PGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-9 {
		t.Errorf("X = %v, want 2", res.X)
	}
}

func TestProjectedGradientRosenbrock(t *testing.T) {
	res, err := ProjectedGradient(rosenbrock(), Box{Lower: []float64{-5, -5}, Upper: []float64{5, 5}},
		[]float64{-1.2, 1}, PGOptions{MaxIter: 20000, Tol: 1e-9, FTol: 1e-16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("X = %v (f=%v, status=%v), want [1 1]", res.X, res.F, res.Status)
	}
}

func TestProjectedGradientEmptyProblem(t *testing.T) {
	res, err := ProjectedGradient(Func{}, Box{}, nil, PGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Converged {
		t.Errorf("empty problem should converge trivially")
	}
}

func TestBoxValidate(t *testing.T) {
	if err := (Box{Lower: []float64{0}}).Validate(2); err == nil {
		t.Errorf("dim mismatch should fail")
	}
	if err := (Box{Upper: []float64{0}}).Validate(2); err == nil {
		t.Errorf("dim mismatch should fail")
	}
	if err := (Box{Lower: []float64{1}, Upper: []float64{0}}).Validate(1); err == nil {
		t.Errorf("empty box should fail")
	}
	if err := (Box{Lower: []float64{0}, Upper: []float64{1}}).Validate(1); err != nil {
		t.Errorf("valid box rejected: %v", err)
	}
}

func TestLBFGSQuadratic(t *testing.T) {
	f := quadratic([]float64{1, 2, 3, 4})
	res := LBFGS(f, make([]float64, 4), LBFGSOptions{})
	for i, want := range []float64{1, 2, 3, 4} {
		if math.Abs(res.X[i]-want) > 1e-6 {
			t.Errorf("X[%d] = %v, want %v", i, res.X[i], want)
		}
	}
	if res.Iters > 50 {
		t.Errorf("quadratic took %d iterations", res.Iters)
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	res := LBFGS(rosenbrock(), []float64{-1.2, 1}, LBFGSOptions{MaxIter: 2000, Tol: 1e-10, FTol: 1e-16})
	if math.Abs(res.X[0]-1) > 1e-5 || math.Abs(res.X[1]-1) > 1e-5 {
		t.Errorf("X = %v (f=%v, status=%v), want [1 1]", res.X, res.F, res.Status)
	}
}

func TestLBFGSEmpty(t *testing.T) {
	res := LBFGS(Func{}, nil, LBFGSOptions{})
	if res.Status != Converged {
		t.Errorf("empty problem should converge trivially")
	}
}

func TestAugmentedLagrangianSimple(t *testing.T) {
	// min x² s.t. 1 − x ≤ 0 → x* = 1.
	obj := quadratic([]float64{0})
	cons := []Constraint{{
		F: func(x []float64) float64 { return 1 - x[0] },
		AddGrad: func(x []float64, g []float64, s float64) {
			g[0] += s * -1
		},
	}}
	res, err := AugmentedLagrangian(obj, cons, Box{}, []float64{5}, ALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("not feasible: violation %v", res.MaxViolation)
	}
	if math.Abs(res.X[0]-1) > 1e-4 {
		t.Errorf("X = %v, want 1", res.X)
	}
	// The multiplier for the active constraint should be ≈ 2 (KKT: 2x = λ).
	if math.Abs(res.Multipliers[0]-2) > 1e-2 {
		t.Errorf("lambda = %v, want 2", res.Multipliers[0])
	}
}

func TestAugmentedLagrangianTwoVariables(t *testing.T) {
	// min x + y s.t. 1 − x·y ≤ 0, 0.1 ≤ x,y ≤ 10 → x = y = 1.
	obj := Func{
		F: func(x []float64) float64 { return x[0] + x[1] },
		Grad: func(x []float64, g []float64) {
			g[0], g[1] = 1, 1
		},
	}
	cons := []Constraint{{
		F: func(x []float64) float64 { return 1 - x[0]*x[1] },
		AddGrad: func(x []float64, g []float64, s float64) {
			g[0] += s * -x[1]
			g[1] += s * -x[0]
		},
	}}
	box := Box{Lower: []float64{0.1, 0.1}, Upper: []float64{10, 10}}
	res, err := AugmentedLagrangian(obj, cons, box, []float64{5, 0.3}, ALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("not feasible: violation %v", res.MaxViolation)
	}
	if math.Abs(res.X[0]*res.X[1]-1) > 1e-3 {
		t.Errorf("xy = %v, want 1", res.X[0]*res.X[1])
	}
	if math.Abs(res.F-2) > 1e-2 {
		t.Errorf("f = %v, want 2", res.F)
	}
}

func TestAugmentedLagrangianInactiveConstraint(t *testing.T) {
	// min (x−3)² s.t. x − 10 ≤ 0: the constraint is inactive, λ stays 0.
	obj := quadratic([]float64{3})
	cons := []Constraint{{
		F: func(x []float64) float64 { return x[0] - 10 },
		AddGrad: func(x []float64, g []float64, s float64) {
			g[0] += s
		},
	}}
	res, err := AugmentedLagrangian(obj, cons, Box{}, []float64{0}, ALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-5 {
		t.Errorf("X = %v, want 3", res.X)
	}
	if res.Multipliers[0] > 1e-6 {
		t.Errorf("inactive constraint has multiplier %v", res.Multipliers[0])
	}
}

func TestAugmentedLagrangianInfeasible(t *testing.T) {
	// x ≤ −1 and x ≥ 1 cannot both hold: the solve must report infeasible
	// and settle between the two constraints.
	obj := quadratic([]float64{0})
	cons := []Constraint{
		{
			F:       func(x []float64) float64 { return x[0] + 1 }, // x ≤ −1
			AddGrad: func(x []float64, g []float64, s float64) { g[0] += s },
		},
		{
			F:       func(x []float64) float64 { return 1 - x[0] }, // x ≥ 1
			AddGrad: func(x []float64, g []float64, s float64) { g[0] -= s },
		},
	}
	res, err := AugmentedLagrangian(obj, cons, Box{}, []float64{0}, ALOptions{MaxOuter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("infeasible problem reported feasible")
	}
	if res.MaxViolation < 0.5 {
		t.Errorf("violation = %v, expected ≈ 1", res.MaxViolation)
	}
}

func TestALOptionValidation(t *testing.T) {
	obj := quadratic([]float64{0})
	if _, err := AugmentedLagrangian(obj, nil, Box{Lower: []float64{0}}, []float64{0, 0}, ALOptions{}); err == nil {
		t.Errorf("box dim mismatch should fail")
	}
	if _, err := AugmentedLagrangian(obj, nil, Box{}, []float64{0}, ALOptions{Mu0: -1}); err == nil {
		t.Errorf("negative mu should fail")
	}
	if _, err := AugmentedLagrangian(obj, nil, Box{}, []float64{0}, ALOptions{MuGrowth: 0.5}); err == nil {
		t.Errorf("shrinking growth should fail")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Converged:        "converged",
		SmallImprovement: "small-improvement",
		MaxIterations:    "max-iterations",
		LineSearchFailed: "line-search-failed",
		Status(99):       "status(99)",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: on random convex quadratics with random boxes, PG lands at the
// projection of the unconstrained minimizer (which is the exact solution
// for a separable quadratic).
func TestQuickPGSolvesBoxedQuadratics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		center := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		x0 := make([]float64, n)
		for i := 0; i < n; i++ {
			center[i] = rng.NormFloat64() * 3
			lo[i] = -1 - rng.Float64()
			hi[i] = 1 + rng.Float64()
			x0[i] = rng.NormFloat64()
		}
		res, err := ProjectedGradient(quadratic(center), Box{Lower: lo, Upper: hi}, x0, PGOptions{MaxIter: 2000})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want := math.Max(lo[i], math.Min(hi[i], center[i]))
			if math.Abs(res.X[i]-want) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestProjectedGradientMaxIterations(t *testing.T) {
	// A single iteration budget on Rosenbrock cannot converge.
	res, err := ProjectedGradient(rosenbrock(), Box{}, []float64{-1.2, 1}, PGOptions{MaxIter: 1, FTol: 1e-300, Tol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Converged {
		t.Errorf("one iteration should not converge: %v", res.Status)
	}
}

func TestProjectedGradientSmallImprovement(t *testing.T) {
	// A flat function improves by nothing: the FTol exit fires.
	flat := Func{
		F:    func(x []float64) float64 { return 1 + 1e-18*x[0] },
		Grad: func(x []float64, g []float64) { g[0] = 1e-18 },
	}
	res, err := ProjectedGradient(flat, Box{}, []float64{0}, PGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Converged && res.Status != SmallImprovement {
		t.Errorf("flat function status = %v", res.Status)
	}
}

func TestLBFGSQuartic(t *testing.T) {
	// A quartic bowl: flat curvature near the origin stresses the
	// curvature-history updates without breaking convexity.
	f := Func{
		F: func(x []float64) float64 {
			x4 := x[0] * x[0] * x[0] * x[0]
			return x4 + x[1]*x[1]
		},
		Grad: func(x []float64, g []float64) {
			g[0] = 4 * x[0] * x[0] * x[0]
			g[1] = 2 * x[1]
		},
	}
	res := LBFGS(f, []float64{2, -3}, LBFGSOptions{MaxIter: 2000})
	if math.Abs(res.X[0]) > 5e-2 || math.Abs(res.X[1]) > 1e-4 {
		t.Errorf("X = %v, want near origin (status %v)", res.X, res.Status)
	}
}

func TestAugmentedLagrangianBoxOnly(t *testing.T) {
	// No constraints: AL reduces to a single PG solve.
	obj := quadratic([]float64{5})
	res, err := AugmentedLagrangian(obj, nil, Box{Lower: []float64{0}, Upper: []float64{2}}, []float64{1}, ALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("X = %v, want 2", res.X)
	}
	if !res.Feasible {
		t.Errorf("unconstrained problem must be feasible")
	}
}

func TestNonmonotoneSPGConverges(t *testing.T) {
	// GLL window 10 on Rosenbrock: must still reach the optimum, and on
	// this classic ill-conditioned valley it should not need more
	// objective evaluations than the strictly monotone search.
	mono, err := ProjectedGradient(rosenbrock(), Box{}, []float64{-1.2, 1},
		PGOptions{MaxIter: 20000, Tol: 1e-9, FTol: 1e-16})
	if err != nil {
		t.Fatal(err)
	}
	gll, err := ProjectedGradient(rosenbrock(), Box{}, []float64{-1.2, 1},
		PGOptions{MaxIter: 20000, Tol: 1e-9, FTol: 1e-16, NonmonotoneWindow: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gll.X[0]-1) > 1e-3 || math.Abs(gll.X[1]-1) > 1e-3 {
		t.Fatalf("nonmonotone SPG missed the optimum: %v (status %v)", gll.X, gll.Status)
	}
	if gll.Evals > 2*mono.Evals {
		t.Errorf("nonmonotone evals %d vs monotone %d", gll.Evals, mono.Evals)
	}
	t.Logf("monotone: %d iters / %d evals; GLL(10): %d iters / %d evals",
		mono.Iters, mono.Evals, gll.Iters, gll.Evals)
}
