package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"kgvote/internal/qa"
)

// CorpusConfig shapes the synthetic Taobao-style customer-service corpus.
// Documents are grouped into topics (e.g. "refund", "cart", "delivery");
// each document draws most entities from its topic and a few from the
// global pool, giving the co-occurrence graph the clustered structure the
// split strategy relies on ("the entities of athletes will be distributed
// in the sub-graph which represents Sports").
type CorpusConfig struct {
	Topics          int     // default 8
	EntitiesPer     int     // entities per topic; default 24
	Docs            int     // default 200
	EntitiesPerDoc  int     // default 6
	CrossTopicNoise float64 // probability an entity comes from another topic; default 0.1
	Seed            int64
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.Topics == 0 {
		c.Topics = 8
	}
	if c.EntitiesPer == 0 {
		c.EntitiesPer = 24
	}
	if c.Docs == 0 {
		c.Docs = 200
	}
	if c.EntitiesPerDoc == 0 {
		c.EntitiesPerDoc = 6
	}
	if c.CrossTopicNoise == 0 {
		c.CrossTopicNoise = 0.1
	}
	return c
}

// GenerateCorpus builds the synthetic corpus.
func GenerateCorpus(cfg CorpusConfig) (*qa.Corpus, error) {
	cfg = cfg.withDefaults()
	if cfg.Topics < 1 || cfg.EntitiesPer < 2 || cfg.Docs < 1 || cfg.EntitiesPerDoc < 1 {
		return nil, fmt.Errorf("synth: bad corpus config %+v", cfg)
	}
	if cfg.EntitiesPerDoc > cfg.Topics*cfg.EntitiesPer {
		return nil, fmt.Errorf("synth: EntitiesPerDoc %d exceeds vocabulary", cfg.EntitiesPerDoc)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	entity := func(topic, i int) string { return fmt.Sprintf("t%02de%02d", topic, i) }
	corpus := &qa.Corpus{}
	for d := 0; d < cfg.Docs; d++ {
		topic := d % cfg.Topics
		ents := make(map[string]int, cfg.EntitiesPerDoc)
		for len(ents) < cfg.EntitiesPerDoc {
			t := topic
			if rng.Float64() < cfg.CrossTopicNoise {
				t = rng.Intn(cfg.Topics)
			}
			e := entity(t, rng.Intn(cfg.EntitiesPer))
			ents[e]++
		}
		corpus.Docs = append(corpus.Docs, qa.Document{
			ID:       d,
			Title:    fmt.Sprintf("topic %d document %d", topic, d),
			Entities: ents,
		})
	}
	return corpus, corpus.Validate()
}

// QuestionConfig shapes synthetic questions.
type QuestionConfig struct {
	N           int     // number of questions; default 100
	EntitiesPer int     // entities per question; default 3
	Noise       float64 // probability an entity is drawn off-document; default 0.15
	Seed        int64
	// HotDocs/HotProb skew questions toward a "popular" document subset:
	// with probability HotProb the question's source document is drawn
	// from HotDocs documents chosen by a seeded shuffle with HotSeed.
	// Real user questions concentrate on popular topics, which is what
	// makes vote feedback transfer to future questions. 0 disables.
	HotDocs int
	HotProb float64
	HotSeed int64
}

func (c QuestionConfig) withDefaults() QuestionConfig {
	if c.N == 0 {
		c.N = 100
	}
	if c.EntitiesPer == 0 {
		c.EntitiesPer = 3
	}
	if c.Noise == 0 {
		c.Noise = 0.15
	}
	return c
}

// GenerateQuestions samples questions with known ground truth: each
// question is seeded from one document (its BestDoc) by sampling entities
// from that document, with occasional off-document noise entities.
func GenerateQuestions(c *qa.Corpus, cfg QuestionConfig) ([]qa.Question, error) {
	cfg = cfg.withDefaults()
	if len(c.Docs) == 0 {
		return nil, fmt.Errorf("synth: empty corpus")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Index: entity → documents containing it, for sampling "related"
	// noise entities (users phrase questions with semantically adjacent
	// vocabulary, which entity-overlap IR cannot bridge but the knowledge
	// graph can).
	entDocs := make(map[string][]int)
	for di, d := range c.Docs {
		for e := range d.Entities {
			entDocs[e] = append(entDocs[e], di)
		}
	}
	sortedEntities := func(d qa.Document) []string {
		out := make([]string, 0, len(d.Entities))
		for e := range d.Entities {
			out = append(out, e)
		}
		// Map iteration order is random; sort for determinism.
		sort.Strings(out)
		return out
	}
	// The hot subset is derived from HotSeed alone, so separate train and
	// test generations share it.
	var hot []int
	if cfg.HotDocs > 0 && cfg.HotProb > 0 {
		perm := rand.New(rand.NewSource(cfg.HotSeed)).Perm(len(c.Docs))
		n := cfg.HotDocs
		if n > len(perm) {
			n = len(perm)
		}
		hot = perm[:n]
	}
	out := make([]qa.Question, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		doc := c.Docs[rng.Intn(len(c.Docs))]
		if hot != nil && rng.Float64() < cfg.HotProb {
			doc = c.Docs[hot[rng.Intn(len(hot))]]
		}
		docEnts := sortedEntities(doc)
		ents := make(map[string]int, cfg.EntitiesPer)
		for len(ents) < cfg.EntitiesPer {
			var e string
			if rng.Float64() < cfg.Noise {
				// Noise: an entity from a document related to the true
				// best one (sharing at least one entity).
				seed := docEnts[rng.Intn(len(docEnts))]
				related := entDocs[seed]
				other := c.Docs[related[rng.Intn(len(related))]]
				otherEnts := sortedEntities(other)
				e = otherEnts[rng.Intn(len(otherEnts))]
			} else {
				e = docEnts[rng.Intn(len(docEnts))]
			}
			ents[e]++
		}
		q := qa.Question{ID: i, Entities: ents, BestDoc: doc.ID}
		// Multi-relevance judgments: documents sharing at least two
		// distinct entities with the ground-truth best one are graded
		// relevant too (capped), giving MAP independent signal from MRR.
		for di, other := range c.Docs {
			if other.ID == doc.ID {
				continue
			}
			shared := 0
			for e := range other.Entities {
				if _, ok := doc.Entities[e]; ok {
					shared++
				}
			}
			if shared >= 2 {
				q.Relevant = append(q.Relevant, c.Docs[di].ID)
				if len(q.Relevant) >= 5 {
					break
				}
			}
		}
		out = append(out, q)
	}
	return out, nil
}
