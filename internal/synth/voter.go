package synth

import (
	"fmt"
	"math/rand"

	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
)

// VoterConfig shapes the simulated user study that substitutes for the
// paper's five human volunteers.
type VoterConfig struct {
	// ErrorRate is the probability a vote picks a random wrong answer
	// instead of the ground-truth best one (models human error; the
	// judgment algorithm is meant to absorb these). Default 0.
	ErrorRate float64
	Seed      int64
	// Voters spreads the votes round-robin across this many distinct
	// voter identities named "<VoterPrefix>-<i>". Zero keeps the legacy
	// behaviour: every vote is anonymous.
	Voters int
	// VoterPrefix names the simulated voters; "honest" if empty.
	VoterPrefix string
}

// VoteRecord pairs a collected vote with its evaluation context.
type VoteRecord struct {
	Question qa.Question
	Query    graph.NodeID
	Vote     vote.Vote
	// TrueRank is the ground-truth best document's rank when the vote was
	// collected (1-based; 0 if outside the full ranking).
	TrueRank int
}

// SimulateVotes runs every question through the system and collects the
// vote a ground-truth-aware user would cast: positive when the true best
// document is ranked first, negative otherwise (when it still appears in
// the top-K list). Questions whose true best answer misses the top-K
// produce no vote, mirroring users who cannot find their answer at all.
func SimulateVotes(s *qa.System, questions []qa.Question, cfg VoterConfig) ([]VoteRecord, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []VoteRecord
	for _, q := range questions {
		if q.BestDoc < 0 {
			continue
		}
		qn, ranked, err := s.Ask(q)
		if err != nil {
			return nil, fmt.Errorf("synth: asking question %d: %w", q.ID, err)
		}
		best, err := s.AnswerOf(q.BestDoc)
		if err != nil {
			return nil, err
		}
		pos := 0
		for i, a := range ranked {
			if a == best {
				pos = i + 1
				break
			}
		}
		if pos == 0 {
			continue // true answer not in top-K: the user walks away
		}
		chosen := best
		if cfg.ErrorRate > 0 && rng.Float64() < cfg.ErrorRate {
			// An erroneous vote: pick some other answer from the list.
			for {
				c := ranked[rng.Intn(len(ranked))]
				if c != best || len(ranked) == 1 {
					chosen = c
					break
				}
			}
		}
		v, err := vote.FromRanking(qn, ranked, chosen)
		if err != nil {
			return nil, err
		}
		if cfg.Voters > 0 {
			v.Voter = voterName(cfg.VoterPrefix, "honest", len(out)%cfg.Voters)
		}
		trueRank, err := s.Engine.RankOf(qn, best, s.Answers())
		if err != nil {
			return nil, err
		}
		out = append(out, VoteRecord{Question: q, Query: qn, Vote: v, TrueRank: trueRank})
	}
	return out, nil
}

func voterName(prefix, fallback string, i int) string {
	if prefix == "" {
		prefix = fallback
	}
	return fmt.Sprintf("%s-%d", prefix, i)
}

// Votes extracts the plain votes from a record set.
func Votes(records []VoteRecord) []vote.Vote {
	out := make([]vote.Vote, len(records))
	for i, r := range records {
		out[i] = r.Vote
	}
	return out
}

// SplitByKind partitions records into negative and positive.
func SplitByKind(records []VoteRecord) (neg, pos []VoteRecord) {
	for _, r := range records {
		if r.Vote.Kind == vote.Negative {
			neg = append(neg, r)
		} else {
			pos = append(pos, r)
		}
	}
	return neg, pos
}
