// Package synth generates the synthetic datasets of Section VII: random
// and power-law graphs matched to the paper's KONECT profiles (Twitter,
// Digg, Gnutella), vote workloads over them, and a topic-structured QA
// corpus with a simulated voter that substitutes for the paper's Taobao
// user study (see DESIGN.md §2 for the substitution rationale).
//
// All generators are deterministic for a given seed.
package synth

import (
	"fmt"
	"math/rand"

	"kgvote/internal/graph"
)

// Profile describes a target graph shape. The three named profiles match
// the node/edge counts of the paper's datasets (Table II).
type Profile struct {
	Name     string
	Nodes    int
	Edges    int
	PowerLaw bool // preferential attachment (social graphs) vs uniform
}

// The paper's graph datasets (Table II).
var (
	Twitter  = Profile{Name: "Twitter", Nodes: 23370, Edges: 33101, PowerLaw: true}
	Digg     = Profile{Name: "Digg", Nodes: 30398, Edges: 87627, PowerLaw: true}
	Gnutella = Profile{Name: "Gnutella", Nodes: 62586, Edges: 147892, PowerLaw: false}
	Taobao   = Profile{Name: "Taobao", Nodes: 1663, Edges: 17591, PowerLaw: true}
)

// Scaled returns a proportionally resized profile: factor in (0, 1)
// shrinks (keeping benchmarks fast while preserving shape), factor > 1
// grows node and edge counts together (scaling studies). Factor <= 0 or
// exactly 1 returns p unchanged.
func (p Profile) Scaled(factor float64) Profile {
	if factor <= 0 || factor == 1 {
		return p
	}
	s := p
	s.Name = fmt.Sprintf("%s/%.3g", p.Name, factor)
	s.Nodes = max(4, int(float64(p.Nodes)*factor))
	s.Edges = max(4, int(float64(p.Edges)*factor))
	return s
}

// Generate builds a graph with approximately the profile's node and edge
// counts. Weights are per-node normalized transition probabilities.
func (p Profile) Generate(seed int64) (*graph.Graph, error) {
	if p.Nodes < 2 {
		return nil, fmt.Errorf("synth: profile %q needs >= 2 nodes", p.Name)
	}
	if p.Edges < 1 {
		return nil, fmt.Errorf("synth: profile %q needs >= 1 edge", p.Name)
	}
	if p.PowerLaw {
		return PowerLawGraph(p.Nodes, p.Edges, seed)
	}
	return RandomGraph(p.Nodes, p.Edges, seed)
}

// RandomGraph builds a uniform random directed graph with n nodes and
// (close to) m distinct edges, no self-loops, weights normalized per node.
func RandomGraph(n, m int, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("synth: RandomGraph needs >= 2 nodes, got %d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("synth: RandomGraph needs >= 1 edge, got %d", m)
	}
	maxEdges := n * (n - 1)
	if m > maxEdges {
		return nil, fmt.Errorf("synth: %d edges exceed maximum %d for %d nodes", m, maxEdges, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	g.AddNodes(n)
	added := 0
	for attempts := 0; added < m && attempts < 50*m; attempts++ {
		from := graph.NodeID(rng.Intn(n))
		to := graph.NodeID(rng.Intn(n))
		if from == to || g.HasEdge(from, to) {
			continue
		}
		g.MustSetEdge(from, to, 0.1+0.9*rng.Float64())
		added++
	}
	g.NormalizeAll()
	return g, nil
}

// PowerLawGraph builds a directed preferential-attachment graph: nodes
// arrive one at a time and send edges to targets sampled proportionally to
// in-degree+1, yielding the heavy-tailed degree distribution of social
// graphs. The total edge count is matched to m.
func PowerLawGraph(n, m int, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("synth: PowerLawGraph needs >= 2 nodes, got %d", n)
	}
	if m < n-1 {
		// Ensure at least one out-edge per arriving node on average.
		m = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	g.AddNodes(n)
	// targets is a repeated-node list for preferential sampling.
	targets := make([]graph.NodeID, 0, 2*m)
	targets = append(targets, 0)
	perNode := float64(m) / float64(n-1)
	carry := 0.0
	added := 0
	for v := 1; v < n; v++ {
		carry += perNode
		k := int(carry)
		carry -= float64(k)
		if k < 1 {
			k = 1
		}
		for e := 0; e < k && added < m; e++ {
			var to graph.NodeID
			for tries := 0; tries < 20; tries++ {
				to = targets[rng.Intn(len(targets))]
				if to != graph.NodeID(v) && !g.HasEdge(graph.NodeID(v), to) {
					break
				}
				to = graph.None
			}
			if to == graph.None {
				continue
			}
			g.MustSetEdge(graph.NodeID(v), to, 0.1+0.9*rng.Float64())
			targets = append(targets, to, graph.NodeID(v))
			added++
		}
	}
	g.NormalizeAll()
	return g, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
