package synth

import (
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
)

// TestSimulateVotesSingletonList covers the regression where a positive
// rank-1 vote on a singleton ranked list was skipped: the paper's users
// do cast confirming positive votes when the only answer shown is the
// right one.
func TestSimulateVotesSingletonList(t *testing.T) {
	oneDoc := &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
	}}
	twoDocs := &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
	}}
	cases := []struct {
		name      string
		corpus    *qa.Corpus
		question  qa.Question
		wantVotes int
		wantKind  vote.Kind
		wantLen   int
	}{
		{
			name:      "singleton list positive vote",
			corpus:    oneDoc,
			question:  qa.Question{ID: 1, Entities: map[string]int{"email": 1, "send": 1}, BestDoc: 0},
			wantVotes: 1,
			wantKind:  vote.Positive,
			wantLen:   1,
		},
		{
			name:      "singleton list no ground truth",
			corpus:    oneDoc,
			question:  qa.Question{ID: 2, Entities: map[string]int{"email": 1}, BestDoc: -1},
			wantVotes: 0,
		},
		{
			name:      "multi-answer list still votes",
			corpus:    twoDocs,
			question:  qa.Question{ID: 3, Entities: map[string]int{"email": 1, "outbox": 1}, BestDoc: 0},
			wantVotes: 1,
			wantKind:  vote.Positive,
			wantLen:   2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := qa.Build(tc.corpus, core.Options{K: 10})
			if err != nil {
				t.Fatal(err)
			}
			recs, err := SimulateVotes(s, []qa.Question{tc.question}, VoterConfig{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != tc.wantVotes {
				t.Fatalf("got %d votes, want %d", len(recs), tc.wantVotes)
			}
			if tc.wantVotes == 0 {
				return
			}
			v := recs[0].Vote
			if err := v.Validate(); err != nil {
				t.Fatalf("simulated vote invalid: %v", err)
			}
			if v.Kind != tc.wantKind {
				t.Errorf("kind = %v, want %v", v.Kind, tc.wantKind)
			}
			if len(v.Ranked) != tc.wantLen {
				t.Errorf("ranked list length = %d, want %d", len(v.Ranked), tc.wantLen)
			}
			best, err := s.AnswerOf(tc.question.BestDoc)
			if err != nil {
				t.Fatal(err)
			}
			if v.Best != best {
				t.Errorf("vote best = %d, want %d", v.Best, best)
			}
		})
	}
}

// TestSimulateVotesAssignsVoters: VoterConfig.Voters spreads attributed
// identities round-robin; zero keeps votes anonymous.
func TestSimulateVotesAssignsVoters(t *testing.T) {
	c, err := GenerateCorpus(CorpusConfig{Topics: 4, EntitiesPer: 10, Docs: 40, EntitiesPerDoc: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := qa.Build(c, core.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := GenerateQuestions(c, QuestionConfig{N: 30, EntitiesPer: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := SimulateVotes(s, qs, VoterConfig{Seed: 4, Voters: 3, VoterPrefix: "user"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("too few votes to check assignment: %d", len(recs))
	}
	seen := map[string]int{}
	for i, r := range recs {
		want := voterName("user", "honest", i%3)
		if r.Vote.Voter != want {
			t.Fatalf("vote %d voter = %q, want %q", i, r.Vote.Voter, want)
		}
		seen[r.Vote.Voter]++
	}
	if len(seen) != 3 {
		t.Errorf("distinct voters = %d, want 3", len(seen))
	}

	anon, err := SimulateVotes(s, qs, VoterConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range anon {
		if r.Vote.Voter != "" {
			t.Fatalf("legacy config produced attributed vote %q", r.Vote.Voter)
		}
	}
}
