package synth

import (
	"strings"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/qa"
)

func scenarioFixture(t *testing.T) (*qa.System, []qa.Question) {
	t.Helper()
	c, err := GenerateCorpus(CorpusConfig{Topics: 4, EntitiesPer: 10, Docs: 40, EntitiesPerDoc: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := qa.Build(c, core.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := GenerateQuestions(c, QuestionConfig{N: 30, EntitiesPer: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s, qs
}

func TestSimulateScenarioSpamFlood(t *testing.T) {
	s, qs := scenarioFixture(t)
	recs, err := SimulateScenario(s, qs, Scenario{Kind: SpamFlood, Volume: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("spam flood produced no votes")
	}
	voters := map[string]bool{}
	contradictions := 0
	bestByQuestion := map[int]map[int32]bool{}
	for _, r := range recs {
		if err := r.Vote.Validate(); err != nil {
			t.Fatalf("spam vote invalid: %v", err)
		}
		voters[r.Vote.Voter] = true
		seen := bestByQuestion[r.Question.ID]
		if seen == nil {
			seen = map[int32]bool{}
			bestByQuestion[r.Question.ID] = seen
		}
		seen[int32(r.Vote.Best)] = true
		if len(seen) > 1 {
			contradictions++
		}
	}
	if len(voters) != 1 {
		t.Errorf("spam flood used %d voters, want exactly 1", len(voters))
	}
	if !voters["spam-flood-0"] {
		t.Errorf("unexpected voter set %v", voters)
	}
	if contradictions == 0 {
		t.Error("spam flood never contradicted itself — reputation has nothing to key on")
	}
}

func TestSimulateScenarioColludingRing(t *testing.T) {
	s, qs := scenarioFixture(t)
	recs, err := SimulateScenario(s, qs, Scenario{Kind: ColludingRing, RingSize: 3, Waves: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("ring produced no votes")
	}
	voters := map[string]bool{}
	duplicates := 0
	type key struct {
		voter string
		qid   int
	}
	seen := map[key]int{}
	for _, r := range recs {
		if err := r.Vote.Validate(); err != nil {
			t.Fatalf("ring vote invalid: %v", err)
		}
		voters[r.Vote.Voter] = true
		best, err := s.AnswerOf(r.Question.BestDoc)
		if err != nil {
			t.Fatal(err)
		}
		if r.Vote.Best == best {
			t.Fatalf("ring vote backs the true answer for question %d", r.Question.ID)
		}
		k := key{r.Vote.Voter, r.Question.ID}
		seen[k]++
		if seen[k] > 1 {
			duplicates++
		}
	}
	if len(voters) != 3 {
		t.Errorf("ring used %d voters, want 3", len(voters))
	}
	if duplicates == 0 {
		t.Error("two waves produced no repeated voter/question votes")
	}
}

func TestSimulateScenarioContradictory(t *testing.T) {
	s, qs := scenarioFixture(t)
	recs, err := SimulateScenario(s, qs, Scenario{Kind: Contradictory, Voters: 2, Waves: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("contradictory campaign produced no votes")
	}
	type key struct {
		voter string
		qid   int
	}
	bests := map[key]map[int32]bool{}
	for _, r := range recs {
		if err := r.Vote.Validate(); err != nil {
			t.Fatalf("contradictory vote invalid: %v", err)
		}
		k := key{r.Vote.Voter, r.Question.ID}
		if bests[k] == nil {
			bests[k] = map[int32]bool{}
		}
		bests[k][int32(r.Vote.Best)] = true
	}
	flipped := 0
	for _, b := range bests {
		if len(b) > 1 {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("no voter ever flipped its best answer on a repeated query")
	}
}

func TestSimulateScenarioImplicit(t *testing.T) {
	s, qs := scenarioFixture(t)
	recs, err := SimulateScenario(s, qs, Scenario{Kind: Implicit, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("implicit scenario produced no votes")
	}
	correct := 0
	for _, r := range recs {
		if err := r.Vote.Validate(); err != nil {
			t.Fatalf("implicit vote invalid: %v", err)
		}
		if r.Vote.Weight != 0.5 {
			t.Fatalf("implicit vote weight = %v, want 0.5", r.Vote.Weight)
		}
		if !strings.HasPrefix(r.Vote.Voter, "implicit-") {
			t.Fatalf("unexpected voter %q", r.Vote.Voter)
		}
		best, err := s.AnswerOf(r.Question.BestDoc)
		if err != nil {
			t.Fatal(err)
		}
		if r.Vote.Best == best {
			correct++
		}
	}
	// The click model is noisy but must remain mostly helpful.
	if correct*2 <= len(recs) {
		t.Errorf("implicit clicks found the true answer only %d/%d times", correct, len(recs))
	}
}

func TestSimulateScenarioHonestDelegates(t *testing.T) {
	s, qs := scenarioFixture(t)
	recs, err := SimulateScenario(s, qs, Scenario{Kind: Honest, Voters: 4, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	want, err := SimulateVotes(s, qs, VoterConfig{Seed: 15, Voters: 4, VoterPrefix: "honest"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("honest scenario %d votes, SimulateVotes %d", len(recs), len(want))
	}
	for i := range recs {
		if recs[i].Vote.Voter != want[i].Vote.Voter || recs[i].Vote.Kind != want[i].Vote.Kind {
			t.Fatalf("vote %d diverges from SimulateVotes", i)
		}
	}
	adv := 0
	for _, k := range []ScenarioKind{Honest, Noisy, SpamFlood, ColludingRing, Contradictory, Implicit} {
		if (Scenario{Kind: k}).Adversarial() {
			adv++
		}
	}
	if adv != 3 {
		t.Errorf("adversarial kinds = %d, want 3", adv)
	}
}
