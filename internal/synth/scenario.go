package synth

import (
	"fmt"
	"math/rand"

	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
)

// ScenarioKind names one adversarial (or benign) vote-workload family.
type ScenarioKind int

const (
	// Honest voters always pick the ground-truth best answer.
	Honest ScenarioKind = iota
	// Noisy voters are honest with a per-vote error probability — the
	// paper's human-error regime the judgment algorithm is built for.
	Noisy
	// SpamFlood is one voter casting a high volume of random votes over
	// random questions. Its self-contradictions (different "best" answers
	// for the same question) are what reputation scoring keys on.
	SpamFlood
	// ColludingRing is a small set of voters coordinating on the
	// strongest wrong answer of each targeted question, in waves; the
	// repeated identical votes mark them as ballot stuffers.
	ColludingRing
	// Contradictory voters alternate between the true best answer and a
	// fixed wrong one on the same queries — a confusion campaign rather
	// than straightforward promotion.
	Contradictory
	// Implicit derives low-weight votes from synthetic click/dwell
	// signals under a position-bias examination model: mostly helpful,
	// but skewed toward whatever is already ranked high.
	Implicit
)

func (k ScenarioKind) String() string {
	switch k {
	case Honest:
		return "honest"
	case Noisy:
		return "noisy"
	case SpamFlood:
		return "spam-flood"
	case ColludingRing:
		return "colluding-ring"
	case Contradictory:
		return "contradictory"
	case Implicit:
		return "implicit"
	}
	return fmt.Sprintf("scenario(%d)", int(k))
}

// Scenario is a composable vote-workload description. Zero-valued knobs
// take per-kind defaults, so Scenario{Kind: SpamFlood} is runnable.
type Scenario struct {
	Kind ScenarioKind
	// Name labels the voters ("<Name>-<i>") and the scenario in reports.
	// Defaults to Kind.String().
	Name string
	// Voters is the number of distinct voter identities (honest, noisy,
	// contradictory, implicit). SpamFlood always uses exactly one;
	// ColludingRing uses RingSize.
	Voters int
	// ErrorRate is the noisy voters' per-vote error probability.
	ErrorRate float64
	// Volume is the total votes a spam flood casts. Default 3×questions.
	Volume int
	// RingSize is the number of colluding voters. Default 4.
	RingSize int
	// Waves is how many times a ring or contradictory campaign sweeps its
	// target set. Default 2 (≥2 makes rings re-cast identical votes and
	// contradictory voters flip, which is what the tracker punishes).
	Waves int
	// TargetFraction is the share of questions a ring or contradictory
	// campaign touches. Default 0.5.
	TargetFraction float64
	// Weight is the vote weight for implicit click votes. Default 0.5.
	Weight float64
	// PositionBias is the per-position examination decay for implicit
	// votes: position i is examined with probability PositionBias^i.
	// Default 0.6.
	PositionBias float64
	Seed         int64
}

func (sc Scenario) withDefaults(questions int) Scenario {
	if sc.Name == "" {
		sc.Name = sc.Kind.String()
	}
	if sc.Voters <= 0 {
		sc.Voters = 5
	}
	if sc.Kind == Noisy && sc.ErrorRate == 0 {
		sc.ErrorRate = 0.25
	}
	if sc.Volume <= 0 {
		sc.Volume = 3 * questions
	}
	if sc.RingSize <= 0 {
		sc.RingSize = 4
	}
	if sc.Waves <= 0 {
		sc.Waves = 2
	}
	if sc.TargetFraction <= 0 || sc.TargetFraction > 1 {
		sc.TargetFraction = 0.5
	}
	if sc.Weight <= 0 {
		sc.Weight = 0.5
	}
	if sc.PositionBias <= 0 || sc.PositionBias >= 1 {
		sc.PositionBias = 0.6
	}
	return sc
}

// Adversarial reports whether the scenario models hostile traffic (as
// opposed to honest-if-imperfect voters).
func (sc Scenario) Adversarial() bool {
	switch sc.Kind {
	case SpamFlood, ColludingRing, Contradictory:
		return true
	}
	return false
}

// SimulateScenario generates the scenario's vote stream against the
// system. Every vote carries a voter identity derived from the scenario
// name, and every record keeps its Question so callers can key
// reputation tracking on the stable question ID.
func SimulateScenario(s *qa.System, questions []qa.Question, sc Scenario) ([]VoteRecord, error) {
	sc = sc.withDefaults(len(questions))
	switch sc.Kind {
	case Honest, Noisy:
		return SimulateVotes(s, questions, VoterConfig{
			ErrorRate:   sc.ErrorRate,
			Seed:        sc.Seed,
			Voters:      sc.Voters,
			VoterPrefix: sc.Name,
		})
	case SpamFlood:
		return simulateSpamFlood(s, questions, sc)
	case ColludingRing:
		return simulateColludingRing(s, questions, sc)
	case Contradictory:
		return simulateContradictory(s, questions, sc)
	case Implicit:
		return simulateImplicit(s, questions, sc)
	}
	return nil, fmt.Errorf("synth: unknown scenario kind %d", int(sc.Kind))
}

// trueRank resolves the ground-truth best document's current full-list
// rank for an attached query (0 when the question has no ground truth).
func trueRank(s *qa.System, qn graph.NodeID, q qa.Question) (int, error) {
	if q.BestDoc < 0 {
		return 0, nil
	}
	best, err := s.AnswerOf(q.BestDoc)
	if err != nil {
		return 0, err
	}
	return s.Engine.RankOf(qn, best, s.Answers())
}

func simulateSpamFlood(s *qa.System, questions []qa.Question, sc Scenario) ([]VoteRecord, error) {
	rng := rand.New(rand.NewSource(sc.Seed))
	voter := voterName(sc.Name, "spammer", 0)
	var out []VoteRecord
	for i := 0; i < sc.Volume; i++ {
		q := questions[rng.Intn(len(questions))]
		qn, ranked, err := s.Ask(q)
		if err != nil {
			return nil, fmt.Errorf("synth: %s: asking question %d: %w", sc.Name, q.ID, err)
		}
		if len(ranked) == 0 {
			continue
		}
		v, err := vote.FromRanking(qn, ranked, ranked[rng.Intn(len(ranked))])
		if err != nil {
			return nil, err
		}
		v.Voter = voter
		tr, err := trueRank(s, qn, q)
		if err != nil {
			return nil, err
		}
		out = append(out, VoteRecord{Question: q, Query: qn, Vote: v, TrueRank: tr})
	}
	return out, nil
}

// targetQuestions picks the deterministic subset of questions a campaign
// sweeps, excluding any whose ground truth already is the promoted doc.
func targetQuestions(questions []qa.Question, frac float64, excludeBestDoc int, rng *rand.Rand) []qa.Question {
	n := int(float64(len(questions)) * frac)
	if n < 1 {
		n = 1
	}
	perm := rng.Perm(len(questions))
	var out []qa.Question
	for _, idx := range perm {
		if len(out) >= n {
			break
		}
		q := questions[idx]
		if excludeBestDoc >= 0 && q.BestDoc == excludeBestDoc {
			continue
		}
		out = append(out, q)
	}
	return out
}

func simulateColludingRing(s *qa.System, questions []qa.Question, sc Scenario) ([]VoteRecord, error) {
	rng := rand.New(rand.NewSource(sc.Seed))
	// The ring needs ground truth to aim at its strongest rival.
	var eligible []qa.Question
	for _, q := range questions {
		if q.BestDoc >= 0 {
			eligible = append(eligible, q)
		}
	}
	targets := targetQuestions(eligible, sc.TargetFraction, -1, rng)
	var out []VoteRecord
	for wave := 0; wave < sc.Waves; wave++ {
		for _, q := range targets {
			best, err := s.AnswerOf(q.BestDoc)
			if err != nil {
				return nil, err
			}
			for member := 0; member < sc.RingSize; member++ {
				qn, ranked, err := s.Ask(q)
				if err != nil {
					return nil, fmt.Errorf("synth: %s: asking question %d: %w", sc.Name, q.ID, err)
				}
				// Every member backs the strongest wrong answer: a positive
				// vote cementing a wrong frontrunner, or a negative vote
				// promoting the runner-up over the true answer — exactly
				// opposing what honest repair votes try to do.
				chosen := graph.None
				for _, a := range ranked {
					if a != best {
						chosen = a
						break
					}
				}
				if chosen == graph.None {
					continue // singleton list holding only the true answer
				}
				v, err := vote.FromRanking(qn, ranked, chosen)
				if err != nil {
					return nil, err
				}
				v.Voter = voterName(sc.Name, "ring", member)
				tr, err := trueRank(s, qn, q)
				if err != nil {
					return nil, err
				}
				out = append(out, VoteRecord{Question: q, Query: qn, Vote: v, TrueRank: tr})
			}
		}
	}
	return out, nil
}

func simulateContradictory(s *qa.System, questions []qa.Question, sc Scenario) ([]VoteRecord, error) {
	rng := rand.New(rand.NewSource(sc.Seed))
	targets := targetQuestions(questions, sc.TargetFraction, -1, rng)
	var out []VoteRecord
	for wave := 0; wave < sc.Waves; wave++ {
		for _, q := range targets {
			if q.BestDoc < 0 {
				continue
			}
			best, err := s.AnswerOf(q.BestDoc)
			if err != nil {
				return nil, err
			}
			for voter := 0; voter < sc.Voters; voter++ {
				qn, ranked, err := s.Ask(q)
				if err != nil {
					return nil, fmt.Errorf("synth: %s: asking question %d: %w", sc.Name, q.ID, err)
				}
				chosen := best
				if (wave+voter)%2 == 1 {
					// The opposing half of the campaign: back some other
					// ranked answer instead of the ground truth.
					chosen = graph.NodeID(-1)
					for _, a := range ranked {
						if a != best {
							chosen = a
							break
						}
					}
				}
				if chosen == graph.NodeID(-1) || !containsNode(ranked, chosen) {
					continue
				}
				v, err := vote.FromRanking(qn, ranked, chosen)
				if err != nil {
					return nil, err
				}
				v.Voter = voterName(sc.Name, "flip", voter)
				tr, err := trueRank(s, qn, q)
				if err != nil {
					return nil, err
				}
				out = append(out, VoteRecord{Question: q, Query: qn, Vote: v, TrueRank: tr})
			}
		}
	}
	return out, nil
}

func simulateImplicit(s *qa.System, questions []qa.Question, sc Scenario) ([]VoteRecord, error) {
	rng := rand.New(rand.NewSource(sc.Seed))
	var out []VoteRecord
	for i, q := range questions {
		if q.BestDoc < 0 {
			continue
		}
		qn, ranked, err := s.Ask(q)
		if err != nil {
			return nil, fmt.Errorf("synth: %s: asking question %d: %w", sc.Name, q.ID, err)
		}
		best, err := s.AnswerOf(q.BestDoc)
		if err != nil {
			return nil, err
		}
		// Cascade click model: the user scans top-down, examines position
		// p with probability PositionBias^p, and clicks an examined result
		// with high probability when it is the true answer and low
		// probability otherwise. The first click wins; dwell confidence is
		// folded into the (sub-unit) vote weight.
		chosen := graph.NodeID(-1)
		examine := 1.0
		for _, a := range ranked {
			if rng.Float64() < examine {
				click := 0.15
				if a == best {
					click = 0.85
				}
				if rng.Float64() < click {
					chosen = a
					break
				}
			}
			examine *= sc.PositionBias
		}
		if chosen == graph.NodeID(-1) {
			continue // abandoned session: no implicit signal
		}
		v, err := vote.FromRanking(qn, ranked, chosen)
		if err != nil {
			return nil, err
		}
		v.Weight = sc.Weight
		v.Voter = voterName(sc.Name, "implicit", i%sc.Voters)
		tr, err := trueRank(s, qn, q)
		if err != nil {
			return nil, err
		}
		out = append(out, VoteRecord{Question: q, Query: qn, Vote: v, TrueRank: tr})
	}
	return out, nil
}

func containsNode(list []graph.NodeID, n graph.NodeID) bool {
	for _, a := range list {
		if a == n {
			return true
		}
	}
	return false
}
