package synth

import (
	"math"
	"testing"

	"kgvote/internal/graph"
)

func TestCorruptWeightsChangesAndCaps(t *testing.T) {
	g, err := RandomGraph(60, 240, 9)
	if err != nil {
		t.Fatal(err)
	}
	orig := g.Clone()
	CorruptWeights(g, 0.8, 7)
	changed := 0
	orig.Edges(func(from, to graph.NodeID, w float64) {
		nw := g.Weight(from, to)
		if math.Abs(nw-w) > 1e-12 {
			changed++
		}
		if nw <= 0 || nw > 1 {
			t.Errorf("edge %d->%d corrupted out of (0,1]: %v", from, to, nw)
		}
	})
	if changed < orig.NumEdges()/2 {
		t.Errorf("only %d/%d edges changed", changed, orig.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		if s := g.OutWeightSum(graph.NodeID(i)); s > 1+1e-9 {
			t.Errorf("node %d out-sum %v exceeds 1 after corruption", i, s)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptWeightsDeterministic(t *testing.T) {
	a, err := RandomGraph(30, 90, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	CorruptWeights(a, 0.5, 11)
	CorruptWeights(b, 0.5, 11)
	a.Edges(func(from, to graph.NodeID, w float64) {
		if b.Weight(from, to) != w {
			t.Fatalf("corruption not deterministic at %d->%d", from, to)
		}
	})
}

func TestCorruptWeightsZeroSigmaNoOp(t *testing.T) {
	g, err := RandomGraph(20, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	orig := g.Clone()
	CorruptWeights(g, 0, 1)
	orig.Edges(func(from, to graph.NodeID, w float64) {
		if g.Weight(from, to) != w {
			t.Fatalf("sigma=0 changed weights")
		}
	})
}
