package synth

import (
	"fmt"
	"math/rand"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/vote"
)

// WorkloadConfig mirrors the synthetic-vote parameters of Section VII-A:
// NQ queries and NA answers randomly linked to an Nnodes-node subgraph;
// top-k lists of length K; negative votes with average best-answer
// position AveN.
type WorkloadConfig struct {
	NQ     int // number of queries (paper default 100)
	NA     int // number of answers (paper default 2379)
	Nnodes int // subgraph size the queries/answers link into (10000)
	K      int // answer-list length (20)
	AveN   int // average best-answer position for negative votes (10)
	// QueryFanout / AnswerFanout are how many subgraph nodes each query /
	// answer links to; default 3.
	QueryFanout, AnswerFanout int
	// PosFrac is the fraction of positive votes; default 0.5 (the paper's
	// real study had 53/100 positive).
	PosFrac float64
	// L and C configure the ranking scorer; defaults follow the paper.
	L    int
	C    float64
	Seed int64
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.NQ == 0 {
		c.NQ = 100
	}
	if c.NA == 0 {
		c.NA = 2379
	}
	if c.Nnodes == 0 {
		c.Nnodes = 10000
	}
	if c.K == 0 {
		c.K = 20
	}
	if c.AveN == 0 {
		c.AveN = 10
	}
	if c.QueryFanout == 0 {
		c.QueryFanout = 3
	}
	if c.AnswerFanout == 0 {
		c.AnswerFanout = 3
	}
	if c.PosFrac == 0 {
		c.PosFrac = 0.5
	}
	if c.L == 0 {
		c.L = pathidx.DefaultL
	}
	if c.C == 0 {
		c.C = 0.15
	}
	return c
}

// Workload is a generated vote benchmark: the augmented graph plus the
// query/answer nodes and the synthetic votes.
type Workload struct {
	Aug     *graph.Augmented
	Queries []graph.NodeID
	Answers []graph.NodeID
	Votes   []vote.Vote
}

// GenerateWorkload attaches queries and answers to a BFS-local subgraph of
// g and synthesizes votes per the paper's protocol: rank the answers for
// each query, then pick a best answer — the top one (positive vote) or one
// near position AveN (negative vote). Queries whose ranked list has fewer
// than two reachable answers produce no vote. The input graph is mutated
// (augmented); pass a clone to preserve it.
func GenerateWorkload(g *graph.Graph, cfg WorkloadConfig) (*Workload, error) {
	cfg = cfg.withDefaults()
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("synth: host graph too small (%d nodes)", g.NumNodes())
	}
	if cfg.Nnodes > g.NumNodes() {
		cfg.Nnodes = g.NumNodes()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sub := bfsSample(g, cfg.Nnodes, rng)
	aug := graph.Augment(g)
	w := &Workload{Aug: aug}

	pick := func(fanout int) ([]graph.NodeID, []float64) {
		ents := make([]graph.NodeID, 0, fanout)
		seen := make(map[graph.NodeID]bool, fanout)
		for len(ents) < fanout && len(seen) < len(sub) {
			n := sub[rng.Intn(len(sub))]
			if seen[n] {
				continue
			}
			seen[n] = true
			ents = append(ents, n)
		}
		counts := make([]float64, len(ents))
		for i := range counts {
			counts[i] = 1
		}
		return ents, counts
	}

	for i := 0; i < cfg.NA; i++ {
		ents, counts := pick(cfg.AnswerFanout)
		a, err := aug.AttachAnswer(fmt.Sprintf("ans#%d", i), ents, counts)
		if err != nil {
			return nil, fmt.Errorf("synth: answer %d: %w", i, err)
		}
		w.Answers = append(w.Answers, a)
	}
	for i := 0; i < cfg.NQ; i++ {
		ents, counts := pick(cfg.QueryFanout)
		q, err := aug.AttachQuery(fmt.Sprintf("qry#%d", i), ents, counts)
		if err != nil {
			return nil, fmt.Errorf("synth: query %d: %w", i, err)
		}
		w.Queries = append(w.Queries, q)
	}

	scorer, err := pathidx.NewScorer(g, pathidx.Options{L: cfg.L, C: cfg.C})
	if err != nil {
		return nil, err
	}
	for _, q := range w.Queries {
		ranked, err := scorer.Rank(q, w.Answers, cfg.K)
		if err != nil {
			return nil, err
		}
		// Keep only answers actually reachable (score > 0).
		list := make([]graph.NodeID, 0, len(ranked))
		for _, r := range ranked {
			if r.Score > 0 {
				list = append(list, r.Node)
			}
		}
		if len(list) < 2 {
			continue
		}
		var best graph.NodeID
		if rng.Float64() < cfg.PosFrac {
			best = list[0]
		} else {
			best = list[negativeRank(rng, cfg.AveN, len(list))-1]
		}
		v, err := vote.FromRanking(q, list, best)
		if err != nil {
			return nil, err
		}
		w.Votes = append(w.Votes, v)
	}
	return w, nil
}

// negativeRank samples a best-answer position in [2, n] whose mean is
// close to aveN, using a geometric-ish spread around the target.
func negativeRank(rng *rand.Rand, aveN, n int) int {
	if n < 2 {
		return n
	}
	target := aveN
	if target > n {
		target = n
	}
	if target < 2 {
		target = 2
	}
	// Uniform over [2, 2*target-2] has mean target; clamp into [2, n].
	hi := 2*target - 2
	if hi < 2 {
		hi = 2
	}
	r := 2 + rng.Intn(hi-2+1)
	if r > n {
		r = n
	}
	return r
}

// bfsSample returns up to n node IDs discovered by BFS from a random
// start, restarting on new random seeds until n nodes are collected. The
// locality makes queries and answers mutually reachable within L hops,
// matching the paper's "centrally distributed in a sub-graph" setting.
func bfsSample(g *graph.Graph, n int, rng *rand.Rand) []graph.NodeID {
	total := g.NumNodes()
	if n >= total {
		out := make([]graph.NodeID, total)
		for i := range out {
			out[i] = graph.NodeID(i)
		}
		return out
	}
	visited := make(map[graph.NodeID]bool, n)
	out := make([]graph.NodeID, 0, n)
	var queue []graph.NodeID
	for len(out) < n {
		if len(queue) == 0 {
			start := graph.NodeID(rng.Intn(total))
			if visited[start] {
				continue
			}
			queue = append(queue, start)
			visited[start] = true
		}
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, e := range g.Out(cur) {
			if !visited[e.To] && len(visited) < 4*n {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return out
}
