package synth

import (
	"math"
	"sort"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
)

func TestRandomGraphShape(t *testing.T) {
	g, err := RandomGraph(200, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 800 {
		t.Errorf("edges = %d, want 800", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Normalized: every node with out-edges sums to 1.
	for i := 0; i < g.NumNodes(); i++ {
		if g.OutDegree(graph.NodeID(i)) == 0 {
			continue
		}
		if s := g.OutWeightSum(graph.NodeID(i)); math.Abs(s-1) > 1e-9 {
			t.Fatalf("node %d out sum %v", i, s)
		}
	}
}

func TestRandomGraphErrors(t *testing.T) {
	if _, err := RandomGraph(1, 5, 0); err == nil {
		t.Errorf("too few nodes should fail")
	}
	if _, err := RandomGraph(5, 0, 0); err == nil {
		t.Errorf("zero edges should fail")
	}
	if _, err := RandomGraph(3, 100, 0); err == nil {
		t.Errorf("impossible edge count should fail")
	}
}

func TestRandomGraphDeterminism(t *testing.T) {
	a, err := RandomGraph(50, 150, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomGraph(50, 150, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ")
	}
	a.Edges(func(f, to graph.NodeID, w float64) {
		if b.Weight(f, to) != w {
			t.Errorf("edge %d->%d differs", f, to)
		}
	})
}

func TestPowerLawGraphSkew(t *testing.T) {
	g, err := PowerLawGraph(500, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 1000 {
		t.Errorf("edges = %d, want close to 1500", g.NumEdges())
	}
	// In-degree distribution should be skewed: the max in-degree node far
	// exceeds the average.
	indeg := make([]int, g.NumNodes())
	g.Edges(func(_, to graph.NodeID, _ float64) { indeg[to]++ })
	maxIn := 0
	for _, d := range indeg {
		if d > maxIn {
			maxIn = d
		}
	}
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	if float64(maxIn) < 5*avg {
		t.Errorf("max in-degree %d not skewed vs avg %.2f", maxIn, avg)
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{Twitter, Digg, Gnutella, Taobao} {
		s := p.Scaled(0.01)
		g, err := s.Generate(1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if g.NumNodes() != s.Nodes {
			t.Errorf("%s: nodes = %d, want %d", p.Name, g.NumNodes(), s.Nodes)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	// Bad scale factors leave the profile unchanged; factors above 1 grow it.
	if Twitter.Scaled(0).Nodes != Twitter.Nodes || Twitter.Scaled(2).Nodes != 2*Twitter.Nodes {
		t.Errorf("scale factors mishandled")
	}
	if _, err := (Profile{Name: "bad", Nodes: 1, Edges: 1}).Generate(0); err == nil {
		t.Errorf("degenerate profile should fail")
	}
	if _, err := (Profile{Name: "bad", Nodes: 5, Edges: 0}).Generate(0); err == nil {
		t.Errorf("edgeless profile should fail")
	}
}

func TestGenerateWorkload(t *testing.T) {
	g, err := RandomGraph(300, 1200, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := WorkloadConfig{NQ: 20, NA: 60, Nnodes: 150, K: 10, AveN: 4, Seed: 5}
	w, err := GenerateWorkload(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 20 || len(w.Answers) != 60 {
		t.Fatalf("queries/answers = %d/%d", len(w.Queries), len(w.Answers))
	}
	if len(w.Votes) == 0 {
		t.Fatalf("no votes generated")
	}
	negCount := 0
	for _, v := range w.Votes {
		if err := v.Validate(); err != nil {
			t.Fatalf("invalid vote: %v", err)
		}
		if len(v.Ranked) > cfg.K {
			t.Errorf("ranked list longer than K")
		}
		if v.Kind == vote.Negative {
			negCount++
			if r := v.BestRank(); r < 2 {
				t.Errorf("negative vote with rank %d", r)
			}
		}
	}
	if negCount == 0 || negCount == len(w.Votes) {
		t.Errorf("want a mix of kinds, got %d/%d negative", negCount, len(w.Votes))
	}
	if err := w.Aug.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateWorkloadSmallHost(t *testing.T) {
	tiny := graph.New(0)
	tiny.AddNodes(1)
	if _, err := GenerateWorkload(tiny, WorkloadConfig{}); err == nil {
		t.Errorf("tiny host should fail")
	}
}

func TestGenerateCorpusAndQuestions(t *testing.T) {
	c, err := GenerateCorpus(CorpusConfig{Topics: 4, EntitiesPer: 10, Docs: 40, EntitiesPerDoc: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 40 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	vocab := c.Vocabulary()
	if len(vocab) == 0 || len(vocab) > 40 {
		t.Errorf("vocabulary size = %d", len(vocab))
	}
	qs, err := GenerateQuestions(c, QuestionConfig{N: 25, EntitiesPer: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 25 {
		t.Fatalf("questions = %d", len(qs))
	}
	for _, q := range qs {
		if q.BestDoc < 0 || q.BestDoc >= 40 {
			t.Errorf("question %d has bad BestDoc %d", q.ID, q.BestDoc)
		}
		if len(q.Entities) == 0 {
			t.Errorf("question %d has no entities", q.ID)
		}
	}
	// Determinism.
	qs2, err := GenerateQuestions(c, QuestionConfig{N: 25, EntitiesPer: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if qs[i].BestDoc != qs2[i].BestDoc {
			t.Errorf("question generation not deterministic at %d", i)
		}
	}
}

func TestGenerateCorpusErrors(t *testing.T) {
	if _, err := GenerateCorpus(CorpusConfig{Topics: -1}); err == nil {
		t.Errorf("bad config should fail")
	}
	if _, err := GenerateCorpus(CorpusConfig{Topics: 1, EntitiesPer: 2, Docs: 1, EntitiesPerDoc: 50}); err == nil {
		t.Errorf("oversized docs should fail")
	}
	if _, err := GenerateQuestions(&qa.Corpus{}, QuestionConfig{}); err == nil {
		t.Errorf("empty corpus should fail")
	}
}

func TestSimulateVotes(t *testing.T) {
	c, err := GenerateCorpus(CorpusConfig{Topics: 4, EntitiesPer: 10, Docs: 40, EntitiesPerDoc: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := qa.Build(c, core.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := GenerateQuestions(c, QuestionConfig{N: 30, EntitiesPer: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := SimulateVotes(s, qs, VoterConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatalf("no votes simulated")
	}
	for _, r := range recs {
		if err := r.Vote.Validate(); err != nil {
			t.Fatalf("invalid simulated vote: %v", err)
		}
		if r.TrueRank < 1 {
			t.Errorf("record missing true rank")
		}
	}
	neg, pos := SplitByKind(recs)
	if len(neg)+len(pos) != len(recs) {
		t.Errorf("split lost records")
	}
	vs := Votes(recs)
	if len(vs) != len(recs) {
		t.Errorf("Votes lost records")
	}
	// Error-free votes always pick the true best document's answer.
	for _, r := range recs {
		best, err := s.AnswerOf(r.Question.BestDoc)
		if err != nil {
			t.Fatal(err)
		}
		if r.Vote.Best != best {
			t.Errorf("error-free vote picked wrong answer")
		}
	}
}

func TestSimulateVotesWithErrors(t *testing.T) {
	c, err := GenerateCorpus(CorpusConfig{Topics: 4, EntitiesPer: 10, Docs: 40, EntitiesPerDoc: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := qa.Build(c, core.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := GenerateQuestions(c, QuestionConfig{N: 30, EntitiesPer: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := SimulateVotes(s, qs, VoterConfig{ErrorRate: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for _, r := range recs {
		best, err := s.AnswerOf(r.Question.BestDoc)
		if err != nil {
			t.Fatal(err)
		}
		if r.Vote.Best != best {
			wrong++
		}
	}
	if wrong == 0 {
		t.Errorf("ErrorRate=1 should produce wrong votes")
	}
}

func TestGenerateQuestionsHotSkew(t *testing.T) {
	c, err := GenerateCorpus(CorpusConfig{Topics: 4, EntitiesPer: 10, Docs: 80, EntitiesPerDoc: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuestionConfig{N: 200, EntitiesPer: 3, Seed: 5, HotDocs: 10, HotProb: 0.8, HotSeed: 99}
	qs, err := GenerateQuestions(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, q := range qs {
		counts[q.BestDoc]++
	}
	// The top-10 most-asked docs should absorb well over half the
	// questions under an 80% hot probability.
	tops := make([]int, 0, len(counts))
	for _, n := range counts {
		tops = append(tops, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(tops)))
	sum := 0
	for i := 0; i < 10 && i < len(tops); i++ {
		sum += tops[i]
	}
	if sum < 120 {
		t.Errorf("hot skew too weak: top-10 docs got %d/200 questions", sum)
	}
	// The hot subset is shared across generations with different seeds.
	cfg2 := cfg
	cfg2.Seed = 77
	qs2, err := GenerateQuestions(c, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	hotSet := map[int]bool{}
	for _, q := range qs {
		if counts[q.BestDoc] > 5 {
			hotSet[q.BestDoc] = true
		}
	}
	shared := 0
	for _, q := range qs2 {
		if hotSet[q.BestDoc] {
			shared++
		}
	}
	if shared < 80 {
		t.Errorf("hot subset not shared across seeds: %d/200 overlap", shared)
	}
}

func TestProfileScaledUp(t *testing.T) {
	s := Twitter.Scaled(4)
	if s.Nodes != Twitter.Nodes*4 || s.Edges != Twitter.Edges*4 {
		t.Fatalf("Scaled(4) = %d nodes / %d edges, want %d / %d",
			s.Nodes, s.Edges, Twitter.Nodes*4, Twitter.Edges*4)
	}
	if s.Name != "Twitter/4" {
		t.Fatalf("Scaled(4) name %q", s.Name)
	}
	if !s.PowerLaw {
		t.Fatal("Scaled must preserve shape flags")
	}
	if half := Twitter.Scaled(0.5); half.Nodes != Twitter.Nodes/2 {
		t.Fatalf("Scaled(0.5) nodes = %d", half.Nodes)
	}
	if same := Twitter.Scaled(1); same != Twitter {
		t.Fatalf("Scaled(1) changed the profile: %+v", same)
	}
	if same := Twitter.Scaled(-2); same != Twitter {
		t.Fatalf("Scaled(-2) changed the profile: %+v", same)
	}
	// A scaled-up profile must still generate.
	g, err := Taobao.Scaled(2).Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != Taobao.Nodes*2 {
		t.Fatalf("generated %d nodes, want %d", g.NumNodes(), Taobao.Nodes*2)
	}
}
