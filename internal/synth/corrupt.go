package synth

import (
	"math"
	"math/rand"

	"kgvote/internal/graph"
)

// CorruptWeights injects multiplicative log-normal noise into every edge
// weight: w ← w·exp(sigma·N(0,1)), with each node's out-sum re-capped at
// 1 so the graph stays a valid sub-stochastic walk.
//
// This models the paper's motivating premise that "the knowledge graph
// constructed based on source data may contain errors": the corrupted
// graph mis-ranks answers in a way user votes can correct, which is the
// regime the effectiveness experiments (Tables IV–V, Fig 5) measure.
func CorruptWeights(g *graph.Graph, sigma float64, seed int64) {
	if sigma <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	// Collect edges first: mutating while iterating is safe for SetWeight,
	// but the deterministic order matters for reproducibility.
	keys := g.EdgeKeys()
	for _, k := range keys {
		w := g.Weight(k.From, k.To)
		if w <= 0 {
			continue
		}
		noisy := w * math.Exp(sigma*rng.NormFloat64())
		if noisy > 1 {
			noisy = 1
		}
		if noisy < 1e-6 {
			noisy = 1e-6
		}
		// The edge exists, so SetWeight cannot fail.
		_ = g.SetWeight(k.From, k.To, noisy)
	}
	for i := 0; i < g.NumNodes(); i++ {
		n := graph.NodeID(i)
		if s := g.OutWeightSum(n); s > 1 {
			for _, e := range g.Out(n) {
				_ = g.SetWeight(n, e.To, e.Weight/s)
			}
		}
	}
}
