// Package lru provides a small mutex-guarded bounded LRU map. The serving
// path uses it twice: as the per-snapshot query-rank cache (wholesale
// dropped on epoch swap) and as the server's pending-query table.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU map safe for concurrent use. A capacity below 1
// disables the cache: Get always misses and Add is a no-op.
//
// Each cache carries its own hit/miss/eviction counters (see Stats), so
// independent instances — the per-snapshot rank caches, the server's
// pending-query table — report independent numbers to the telemetry
// registry instead of sharing process-wide totals.
type Cache[K comparable, V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	m         map[K]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Len       int
}

type entry[K comparable, V any] struct {
	k K
	v V
}

// New returns a cache holding at most capacity entries.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	c := &Cache[K, V]{cap: capacity}
	if capacity >= 1 {
		c.ll = list.New()
		c.m = make(map[K]*list.Element, capacity)
	}
	return c
}

// Get returns the value under k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	var zero V
	if c == nil || c.cap < 1 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).v, true
}

// Add inserts or refreshes k→v, evicting the least recently used entry
// when the cache is full.
func (c *Cache[K, V]) Add(k K, v V) {
	if c == nil || c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*entry[K, V]).v = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*entry[K, V]).k)
		c.evictions++
	}
	c.m[k] = c.ll.PushFront(&entry[K, V]{k: k, v: v})
}

// Evictions returns how many entries have been evicted to make room for
// new ones (capacity pressure, not explicit replacement). The server
// surfaces it for the pending-query table, where an eviction means a
// still-outstanding query handle silently became un-votable.
func (c *Cache[K, V]) Evictions() int64 {
	if c == nil || c.cap < 1 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	if c == nil || c.cap < 1 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Range calls fn for every entry from least to most recently used,
// stopping early when fn returns false. It does not touch recency order
// or the hit/miss counters, so a new cache seeded by re-Adding a ranged
// snapshot preserves the original LRU order. fn must not call back into
// the cache (the lock is held).
func (c *Cache[K, V]) Range(fn func(k K, v V) bool) {
	if c == nil || c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry[K, V])
		if !fn(e.k, e.v) {
			return
		}
	}
}

// Stats snapshots this cache's counters. A disabled or nil cache
// reports zeros.
func (c *Cache[K, V]) Stats() Stats {
	if c == nil || c.cap < 1 {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.ll.Len()}
}
