package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestEviction(t *testing.T) {
	c := New[int, string](2)
	c.Add(1, "a")
	c.Add(2, "b")
	if _, ok := c.Get(1); !ok { // 1 becomes most recent
		t.Fatal("missing 1")
	}
	c.Add(3, "c") // evicts 2
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Errorf("1 = %q, %v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != "c" {
		t.Errorf("3 = %q, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	c.Add(3, "c2") // refresh in place
	if v, _ := c.Get(3); v != "c2" {
		t.Errorf("refresh lost: %q", v)
	}
}

func TestDisabledAndNil(t *testing.T) {
	c := New[int, int](0)
	c.Add(1, 1)
	if _, ok := c.Get(1); ok {
		t.Error("disabled cache stored a value")
	}
	if c.Len() != 0 {
		t.Error("disabled cache has length")
	}
	var nilCache *Cache[int, int]
	if _, ok := nilCache.Get(1); ok {
		t.Error("nil cache hit")
	}
	nilCache.Add(1, 1)
	if nilCache.Len() != 0 {
		t.Error("nil cache has length")
	}
}

func TestConcurrent(t *testing.T) {
	c := New[string, int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Add(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}

func TestStats(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 1)
	c.Get(1) // hit
	c.Get(9) // miss
	c.Get(1) // hit
	c.Add(2, 2)
	c.Add(3, 3) // evicts
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("stats = %+v, want hits=2 misses=1 evictions=1 len=2", st)
	}
	// Two caches count independently.
	other := New[int, int](2)
	other.Get(1)
	if got := other.Stats(); got.Misses != 1 || got.Hits != 0 {
		t.Fatalf("second cache stats = %+v", got)
	}
	if st2 := c.Stats(); st2.Misses != 1 {
		t.Fatalf("first cache polluted by second: %+v", st2)
	}
	var nilCache *Cache[int, int]
	if got := nilCache.Stats(); got != (Stats{}) {
		t.Errorf("nil cache stats = %+v", got)
	}
	disabled := New[int, int](0)
	disabled.Get(1)
	if got := disabled.Stats(); got != (Stats{}) {
		t.Errorf("disabled cache stats = %+v", got)
	}
}

func TestEvictions(t *testing.T) {
	c := New[int, int](2)
	if c.Evictions() != 0 {
		t.Fatalf("fresh cache evictions = %d", c.Evictions())
	}
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(1, 10) // refresh, not an eviction
	if c.Evictions() != 0 {
		t.Fatalf("evictions after refresh = %d, want 0", c.Evictions())
	}
	c.Add(3, 3) // evicts 2 (1 was refreshed more recently)
	c.Add(4, 4) // evicts 1
	if c.Evictions() != 2 {
		t.Fatalf("evictions = %d, want 2", c.Evictions())
	}
	if _, ok := c.Get(2); ok {
		t.Error("evicted key 2 still present")
	}
	var nilCache *Cache[int, int]
	if nilCache.Evictions() != 0 {
		t.Error("nil cache reports evictions")
	}
	disabled := New[int, int](0)
	disabled.Add(1, 1)
	if disabled.Evictions() != 0 {
		t.Error("disabled cache reports evictions")
	}
}

func TestRange(t *testing.T) {
	c := New[int, string](3)
	c.Add(1, "a")
	c.Add(2, "b")
	c.Add(3, "c")
	c.Get(1) // 1 becomes most-recent: iteration order must be 2, 3, 1
	var keys []int
	c.Range(func(k int, v string) bool {
		keys = append(keys, k)
		return true
	})
	want := []int{2, 3, 1}
	if len(keys) != len(want) {
		t.Fatalf("Range visited %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Range order %v, want LRU→MRU %v", keys, want)
		}
	}
	// Early stop.
	var n int
	c.Range(func(int, string) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range after false continued: %d visits", n)
	}
	// Range must not perturb recency: adding a 4th key still evicts 2.
	c.Add(4, "d")
	if _, ok := c.Get(2); ok {
		t.Fatal("Range perturbed recency: LRU key 2 survived eviction")
	}
}
