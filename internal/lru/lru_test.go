package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestEviction(t *testing.T) {
	c := New[int, string](2)
	c.Add(1, "a")
	c.Add(2, "b")
	if _, ok := c.Get(1); !ok { // 1 becomes most recent
		t.Fatal("missing 1")
	}
	c.Add(3, "c") // evicts 2
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Errorf("1 = %q, %v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != "c" {
		t.Errorf("3 = %q, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	c.Add(3, "c2") // refresh in place
	if v, _ := c.Get(3); v != "c2" {
		t.Errorf("refresh lost: %q", v)
	}
}

func TestDisabledAndNil(t *testing.T) {
	c := New[int, int](0)
	c.Add(1, 1)
	if _, ok := c.Get(1); ok {
		t.Error("disabled cache stored a value")
	}
	if c.Len() != 0 {
		t.Error("disabled cache has length")
	}
	var nilCache *Cache[int, int]
	if _, ok := nilCache.Get(1); ok {
		t.Error("nil cache hit")
	}
	nilCache.Add(1, 1)
	if nilCache.Len() != 0 {
		t.Error("nil cache has length")
	}
}

func TestConcurrent(t *testing.T) {
	c := New[string, int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Add(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}
