package shard

import (
	"sort"

	"kgvote/api"
)

// MergeTopK merges per-shard ranked lists into one global top-k. The
// order is the same one every shard (and the single-process oracle)
// produces locally — score descending, ties broken by ascending document
// ID — so the merged list over N shards is byte-identical to the oracle's
// list whenever the shards' graphs agree with the oracle's: each shard
// returns its local top-k over the documents it owns, ownership is
// disjoint, and any document in the global top-k is necessarily in its
// owner's local top-k.
//
// The oracle tie-break is (score desc, answer-node asc); answer nodes are
// attached in ascending document-ID order at build time, so document-ID
// order reproduces it exactly. k <= 0 keeps everything.
func MergeTopK(lists [][]api.AskResult, k int) []api.AskResult {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	merged := make([]api.AskResult, 0, total)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].Doc < merged[j].Doc
	})
	if k > 0 && len(merged) > k {
		merged = merged[:k]
	}
	return merged
}
