package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/api"
	"kgvote/internal/core"
)

// The pusher is the writer side of flush replication: after each local
// flush the server hands it (seq, applied weight set) and it delivers
// the set to every peer shard's POST /v1/weights, in order, one
// goroutine per peer so a slow peer never blocks the flush path or the
// other peers. Delivery is at-least-once: the receiver's per-source
// sequence dedupes retries, and any gap — a queue overflow here, a 409
// from a receiver that missed a delta, a peer that restarted from an
// older checkpoint — is healed by re-sending a Full absolute export,
// which supersedes every missed delta.

// PusherOptions configures a Pusher.
type PusherOptions struct {
	// Source is this shard's index, stamped into every push.
	Source int
	// Peers are the peer shard writers' base URLs (self excluded).
	Peers []string
	// Export returns the current replicable weight set and its flush
	// sequence, atomically (the server takes the writer gate). It backs
	// the full-sync fallback.
	Export func() ([]core.WeightChange, uint64)
	// Client is the HTTP client for pushes (nil = 10s-timeout default).
	Client *http.Client
	// QueueCap bounds each peer's delivery queue; overflow converts the
	// backlog into one full sync (0 = 64).
	QueueCap int
	// RetryBackoff spaces delivery retries (0 = 250ms).
	RetryBackoff time.Duration
}

type push struct {
	seq uint64
	set []core.WeightChange
}

type peerPusher struct {
	addr     string
	ch       chan push
	needFull atomic.Bool
	// synced counts successful deliveries (tests poll it).
	synced atomic.Int64
}

// Pusher replicates flushed weight sets to peer shards. Create with
// NewPusher, hand Publish to server.ShardConfig.OnFlush, Close on
// shutdown.
type Pusher struct {
	opt    PusherOptions
	client *http.Client
	peers  []*peerPusher
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewPusher starts one delivery goroutine per peer.
func NewPusher(opt PusherOptions) (*Pusher, error) {
	if opt.Export == nil {
		return nil, fmt.Errorf("shard: pusher needs an Export hook for full syncs")
	}
	if opt.QueueCap <= 0 {
		opt.QueueCap = 64
	}
	if opt.RetryBackoff <= 0 {
		opt.RetryBackoff = 250 * time.Millisecond
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	p := &Pusher{opt: opt, client: client, stop: make(chan struct{})}
	for _, addr := range opt.Peers {
		pp := &peerPusher{addr: addr, ch: make(chan push, opt.QueueCap)}
		p.peers = append(p.peers, pp)
		p.wg.Add(1)
		go p.run(pp)
	}
	return p, nil
}

// Close stops every delivery goroutine; queued pushes are abandoned
// (peers heal via the gap protocol on the next boot's first push).
func (p *Pusher) Close() {
	close(p.stop)
	p.wg.Wait()
}

// Publish enqueues one flush's weight set for every peer without
// blocking — it is called on the vote path, under the writer gate. A
// peer whose queue is full is switched to full-sync mode: the backlog
// is superseded by one absolute export.
func (p *Pusher) Publish(seq uint64, set []core.WeightChange) {
	for _, pp := range p.peers {
		if pp.needFull.Load() {
			continue // already owes a full sync, which will cover this set
		}
		select {
		case pp.ch <- push{seq: seq, set: set}:
		default:
			pp.needFull.Store(true)
		}
	}
}

func (p *Pusher) run(pp *peerPusher) {
	defer p.wg.Done()
	for {
		if pp.needFull.Load() {
			if !p.fullSync(pp) {
				return // stopped
			}
			continue
		}
		select {
		case <-p.stop:
			return
		case ps := <-pp.ch:
			if pp.needFull.Load() {
				continue // superseded by the pending full sync
			}
			if !p.send(pp, ps) {
				return
			}
		}
	}
}

// send delivers one delta push, retrying transport failures a few times
// before escalating to a full sync. Returns false only when stopped.
func (p *Pusher) send(pp *peerPusher, ps push) bool {
	for attempt := 0; attempt < 3; attempt++ {
		done, gap := p.post(pp, api.WeightPushRequest{
			Source: p.opt.Source,
			Seq:    ps.seq,
			Set:    api.WeightEdgesFromCore(ps.set),
		})
		if done {
			pp.synced.Add(1)
			return true
		}
		if gap {
			pp.needFull.Store(true)
			return true
		}
		if !p.sleep(p.opt.RetryBackoff) {
			return false
		}
	}
	pp.needFull.Store(true)
	return true
}

// fullSync exports the current absolute weight set and delivers it with
// Full set, retrying until it lands. Returns false only when stopped.
func (p *Pusher) fullSync(pp *peerPusher) bool {
	for {
		// Drain deltas that the export below will supersede.
		for {
			select {
			case <-pp.ch:
				continue
			default:
			}
			break
		}
		set, seq := p.opt.Export()
		done, _ := p.post(pp, api.WeightPushRequest{
			Source: p.opt.Source,
			Seq:    seq,
			Full:   true,
			Set:    api.WeightEdgesFromCore(set),
		})
		if done {
			pp.needFull.Store(false)
			pp.synced.Add(1)
			return true
		}
		if !p.sleep(p.opt.RetryBackoff) {
			return false
		}
	}
}

// post delivers one push. done reports delivery (including idempotent
// duplicates and terminal 4xx rejections — retrying those verbatim can
// never succeed, the gap protocol heals instead); gap reports a 409.
func (p *Pusher) post(pp *peerPusher, req api.WeightPushRequest) (done, gap bool) {
	body, err := json.Marshal(req)
	if err != nil {
		return true, false // cannot serialize: dropping is the only option
	}
	resp, err := p.client.Post(pp.addr+"/v1/weights", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode <= 299:
		return true, false
	case resp.StatusCode == http.StatusConflict:
		return false, true
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusRequestTimeout:
		return false, false // retriable
	default:
		// A terminal rejection (draining peer, validation): the next
		// successful push or full sync re-establishes the sequence.
		return true, false
	}
}

// sleep waits d unless the pusher is stopped first.
func (p *Pusher) sleep(d time.Duration) bool {
	select {
	case <-p.stop:
		return false
	case <-time.After(d):
		return true
	}
}
