package shard_test

// In-process cluster tests: N shard servers with real HTTP plumbing
// (httptest), flush replication via the real Pusher, a real Router in
// front — compared bit-for-bit against a single-process oracle server
// fed the identical ask/vote sequence. This is the determinism contract
// of DESIGN.md §14: sharding is a latency/throughput decision, never a
// results decision.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kgvote/api"
	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/server"
	"kgvote/internal/shard"
	"kgvote/internal/synth"
)

func testOptions() core.Options { return core.Options{K: 10, L: 4} }

func buildSystem(t *testing.T, corpus *qa.Corpus) *qa.System {
	t.Helper()
	sys, err := qa.Build(corpus, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getStats(t *testing.T, base string) api.StatsBody {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("GET %s/v1/stats: %v", base, err)
	}
	defer resp.Body.Close()
	var body api.StatsBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

// testCluster is N sharded writers + pushers + a router, all in-process.
type testCluster struct {
	smap    *shard.Map
	servers []*server.Server
	https   []*httptest.Server
	pushers []*shard.Pusher
	router  *shard.Router
	rhttp   *httptest.Server
}

func newTestCluster(t *testing.T, corpus *qa.Corpus, n int) *testCluster {
	t.Helper()
	smap, err := shard.NewMap(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{smap: smap}
	cfgs := make([]*server.ShardConfig, n)
	for i := 0; i < n; i++ {
		cfgs[i] = &server.ShardConfig{Map: smap, Index: i}
		srv, err := server.NewWithOptions(buildSystem(t, corpus), server.Options{
			BatchSize: 1,
			Solver:    core.StreamSingle,
			Shard:     cfgs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.servers = append(tc.servers, srv)
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		tc.https = append(tc.https, hs)
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, tc.https[j].URL)
			}
		}
		srv := tc.servers[i]
		pusher, err := shard.NewPusher(shard.PusherOptions{
			Source:       i,
			Peers:        peers,
			Export:       srv.ExportReplicated,
			RetryBackoff: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(pusher.Close)
		tc.pushers = append(tc.pushers, pusher)
		// OnFlush is late-bound: the pusher needs the server's export
		// hook, the server's config needs the pusher's publish hook.
		cfgs[i].OnFlush = pusher.Publish
	}
	eps := make([]shard.ShardEndpoints, n)
	for i := 0; i < n; i++ {
		eps[i] = shard.ShardEndpoints{Writer: tc.https[i].URL}
	}
	rt, err := shard.NewRouter(shard.RouterOptions{
		Map:        smap,
		Shards:     eps,
		TopK:       testOptions().K,
		Timeout:    5 * time.Second,
		HedgeAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	tc.router = rt
	tc.rhttp = httptest.NewServer(rt.Handler())
	t.Cleanup(tc.rhttp.Close)
	return tc
}

// waitReplicated polls every non-owner shard until it has applied the
// owner's replication stream up to wantSeq.
func (tc *testCluster) waitReplicated(t *testing.T, owner int, wantSeq uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for i := range tc.servers {
		if i == owner {
			continue
		}
		for {
			st := getStats(t, tc.https[i].URL)
			if st.Shard != nil && st.Shard.RemoteSeqs[uint32(owner)] >= wantSeq {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d never applied shard %d's push seq %d (stats: %+v)", i, owner, wantSeq, st.Shard)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func sameResults(a, b []api.AskResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || a[i].Title != b[i].Title ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// TestClusterMatchesOracle is the golden determinism test: for N in
// {1,2,4}, a routed cluster fed an interleaved ask/vote stream returns,
// after every replication convergence, rankings bit-identical to a
// single-process server fed the same stream.
func TestClusterMatchesOracle(t *testing.T) {
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			oracle, err := server.NewWithOptions(buildSystem(t, corpus), server.Options{
				BatchSize: 1,
				Solver:    core.StreamSingle,
			})
			if err != nil {
				t.Fatal(err)
			}
			oh := httptest.NewServer(oracle.Handler())
			t.Cleanup(oh.Close)
			tc := newTestCluster(t, corpus, n)

			flushSeq := make(map[int]uint64) // shard -> flush count
			votes := 0
			for qi, q := range questions {
				askReq := api.AskRequest{Entities: q.Entities}
				var oresp, rresp api.AskResponse
				if st := postJSON(t, oh.URL+"/v1/ask", askReq, &oresp); st != http.StatusOK {
					t.Fatalf("oracle ask: http %d", st)
				}
				if st := postJSON(t, tc.rhttp.URL+"/v1/ask", askReq, &rresp); st != http.StatusOK {
					t.Fatalf("router ask: http %d", st)
				}
				if rresp.Partial || rresp.ShardsAnswered != n {
					t.Fatalf("router ask degraded with all shards up: %+v", rresp)
				}
				if !sameResults(oresp.Results, rresp.Results) {
					t.Fatalf("question %d: merged ranking diverged from oracle\noracle: %+v\nrouter: %+v",
						qi, oresp.Results, rresp.Results)
				}
				if len(oresp.Results) < 2 {
					continue
				}
				// Vote the second-ranked document to the top: the vote
				// actually moves weights, unlike confirming rank 1.
				ranked := make([]int, len(oresp.Results))
				for i, r := range oresp.Results {
					ranked[i] = r.Doc
				}
				best := ranked[1]
				voteReq := api.VoteRequest{Ranked: ranked, BestDoc: best}
				var ovr, rvr api.VoteResponse
				ov := voteReq
				ov.Query = oresp.Query
				if st := postJSON(t, oh.URL+"/v1/vote", ov, &ovr); st != http.StatusOK {
					t.Fatalf("oracle vote: http %d", st)
				}
				rv := voteReq
				rv.Query = rresp.Query
				if st := postJSON(t, tc.rhttp.URL+"/v1/vote", rv, &rvr); st != http.StatusOK {
					t.Fatalf("router vote: http %d", st)
				}
				if !ovr.Flushed || !rvr.Flushed {
					t.Fatalf("batch=1 vote did not flush (oracle %v, routed %v)", ovr.Flushed, rvr.Flushed)
				}
				votes++
				owner := tc.smap.Owner(best)
				flushSeq[owner]++
				tc.waitReplicated(t, owner, flushSeq[owner])
			}
			if votes == 0 {
				t.Fatal("workload produced no votes")
			}
			// Final sweep: every question must still rank identically.
			for qi, q := range questions {
				var oresp, rresp api.AskResponse
				postJSON(t, oh.URL+"/v1/ask", api.AskRequest{Entities: q.Entities}, &oresp)
				postJSON(t, tc.rhttp.URL+"/v1/ask", api.AskRequest{Entities: q.Entities}, &rresp)
				if !sameResults(oresp.Results, rresp.Results) {
					t.Fatalf("post-vote question %d: merged ranking diverged from oracle\noracle: %+v\nrouter: %+v",
						qi, oresp.Results, rresp.Results)
				}
			}
		})
	}
}

// TestClusterBatchAskMatchesOracle checks the fanned /v1/askbatch merge
// against the oracle's batch surface.
func TestClusterBatchAskMatchesOracle(t *testing.T) {
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: 36, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := server.NewWithOptions(buildSystem(t, corpus), server.Options{BatchSize: 1, Solver: core.StreamSingle})
	if err != nil {
		t.Fatal(err)
	}
	oh := httptest.NewServer(oracle.Handler())
	t.Cleanup(oh.Close)
	tc := newTestCluster(t, corpus, 3)
	req := api.AskBatchRequest{}
	for _, q := range questions {
		req.Questions = append(req.Questions, api.AskRequest{Entities: q.Entities})
	}
	var ob, rb api.AskBatchResponse
	if st := postJSON(t, oh.URL+"/v1/askbatch", req, &ob); st != http.StatusOK {
		t.Fatalf("oracle askbatch: http %d", st)
	}
	if st := postJSON(t, tc.rhttp.URL+"/v1/askbatch", req, &rb); st != http.StatusOK {
		t.Fatalf("router askbatch: http %d", st)
	}
	if rb.Partial || rb.ShardsAnswered != 3 {
		t.Fatalf("batch degraded with all shards up: %+v", rb)
	}
	if len(rb.Results) != len(ob.Results) {
		t.Fatalf("batch sizes differ: %d vs %d", len(rb.Results), len(ob.Results))
	}
	for i := range ob.Results {
		if !sameResults(ob.Results[i], rb.Results[i]) {
			t.Fatalf("batch question %d diverged\noracle: %+v\nrouter: %+v", i, ob.Results[i], rb.Results[i])
		}
	}
}

// TestRouterPartialDegradation kills one shard and expects the router to
// keep answering with Partial set and the X-KG-Shards-Answered header.
func TestRouterPartialDegradation(t *testing.T) {
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: 36, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestCluster(t, corpus, 3)
	// Use a question every shard can answer: entity maps are corpus-wide.
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	askReq := api.AskRequest{Entities: questions[0].Entities}
	var full api.AskResponse
	if st := postJSON(t, tc.rhttp.URL+"/v1/ask", askReq, &full); st != http.StatusOK {
		t.Fatalf("ask with all shards up: http %d", st)
	}
	if full.Partial {
		t.Fatalf("healthy cluster answered partial: %+v", full)
	}
	tc.https[1].Close() // SIGKILL stand-in: connections refuse instantly
	body, _ := json.Marshal(askReq)
	resp, err := http.Post(tc.rhttp.URL+"/v1/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded ask: http %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-KG-Shards-Answered"); got != "2/3" {
		t.Fatalf("X-KG-Shards-Answered = %q, want 2/3", got)
	}
	var degraded api.AskResponse
	if err := json.NewDecoder(resp.Body).Decode(&degraded); err != nil {
		t.Fatal(err)
	}
	if !degraded.Partial || degraded.ShardsAnswered != 2 || degraded.ShardsTotal != 3 {
		t.Fatalf("degraded response: %+v", degraded)
	}
	if len(degraded.Results) == 0 {
		t.Fatal("degraded response carried no results from the surviving shards")
	}
	// Votes for documents owned by live shards must still land.
	for _, r := range degraded.Results {
		if tc.smap.Owner(r.Doc) != 1 {
			var vr api.VoteResponse
			ranked := []int{degraded.Results[0].Doc, r.Doc}
			if ranked[0] == r.Doc && len(degraded.Results) > 1 {
				ranked = []int{degraded.Results[1].Doc, r.Doc}
			}
			st := postJSON(t, tc.rhttp.URL+"/v1/vote",
				api.VoteRequest{Query: degraded.Query, Ranked: ranked, BestDoc: r.Doc}, &vr)
			if st != http.StatusOK {
				t.Fatalf("vote to a live shard during degradation: http %d", st)
			}
			break
		}
	}
}

// TestReplicaServesAndRejectsWrites stands up a writer + read replica,
// drives a vote through the writer, and expects the replica to converge
// to the writer's epoch via snapshot polling while rejecting writes.
func TestReplicaServesAndRejectsWrites(t *testing.T) {
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: 24, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	smap, _ := shard.NewMap(1, 1)
	writer, err := server.NewWithOptions(buildSystem(t, corpus), server.Options{
		BatchSize: 1,
		Solver:    core.StreamSingle,
		Shard:     &server.ShardConfig{Map: smap, Index: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	wh := httptest.NewServer(writer.Handler())
	t.Cleanup(wh.Close)
	replica, err := server.NewWithOptions(buildSystem(t, corpus), server.Options{
		BatchSize: 1,
		Solver:    core.StreamSingle,
		ReadOnly:  true,
		Shard:     &server.ShardConfig{Map: smap, Index: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	rh := httptest.NewServer(replica.Handler())
	t.Cleanup(rh.Close)
	follower, err := shard.NewFollower(shard.FollowerOptions{
		Writer: wh.URL,
		Every:  25 * time.Millisecond,
		Apply:  replica.ImportSnapshot,
		OnSync: replica.ReportReplica,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Close)

	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	askReq := api.AskRequest{Entities: questions[0].Entities}
	var wAsk api.AskResponse
	if st := postJSON(t, wh.URL+"/v1/ask", askReq, &wAsk); st != http.StatusOK {
		t.Fatalf("writer ask: http %d", st)
	}
	if len(wAsk.Results) < 2 {
		t.Fatalf("writer returned %d results", len(wAsk.Results))
	}
	ranked := make([]int, len(wAsk.Results))
	for i, r := range wAsk.Results {
		ranked[i] = r.Doc
	}
	var vr api.VoteResponse
	if st := postJSON(t, wh.URL+"/v1/vote",
		api.VoteRequest{Query: wAsk.Query, Ranked: ranked, BestDoc: ranked[1]}, &vr); st != http.StatusOK {
		t.Fatalf("writer vote: http %d", st)
	}
	writerEpoch := getStats(t, wh.URL).Epoch

	// The replica must catch up to the writer's epoch and then serve the
	// writer's exact post-vote ranking.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStats(t, rh.URL)
		if st.Replica != nil && st.Replica.Epoch >= writerEpoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reached writer epoch %d (stats: %+v)", writerEpoch, st.Replica)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var wAsk2, rAsk api.AskResponse
	postJSON(t, wh.URL+"/v1/ask", askReq, &wAsk2)
	postJSON(t, rh.URL+"/v1/ask", askReq, &rAsk)
	if !sameResults(wAsk2.Results, rAsk.Results) {
		t.Fatalf("replica ranking diverged from writer\nwriter:  %+v\nreplica: %+v", wAsk2.Results, rAsk.Results)
	}

	// Writes bounce with 501/read_only.
	var envelope api.ErrorBody
	st := postJSON(t, rh.URL+"/v1/vote",
		api.VoteRequest{Query: rAsk.Query, Ranked: ranked, BestDoc: ranked[1]}, &envelope)
	if st != http.StatusNotImplemented || envelope.Error.Code != api.CodeReadOnly {
		t.Fatalf("replica vote: http %d code %q, want 501 read_only", st, envelope.Error.Code)
	}
}

// TestShardMisrouteRejected sends a vote for a foreign document straight
// to a non-owner shard and expects the 421 misrouted envelope.
func TestShardMisrouteRejected(t *testing.T) {
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: 36, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestCluster(t, corpus, 2)
	foreign := -1
	for doc := range corpus.Docs {
		if tc.smap.Owner(doc) != 0 {
			foreign = doc
			break
		}
	}
	if foreign < 0 {
		t.Fatal("no foreign document found")
	}
	var envelope api.ErrorBody
	st := postJSON(t, tc.https[0].URL+"/v1/vote",
		api.VoteRequest{Query: -2, Ranked: []int{0, foreign}, BestDoc: foreign}, &envelope)
	if st != http.StatusMisdirectedRequest || envelope.Error.Code != api.CodeMisrouted {
		t.Fatalf("misrouted vote: http %d code %q, want 421 misrouted", st, envelope.Error.Code)
	}
}
