// Package shard partitions a knowledge-graph Q&A deployment into N
// writer shards behind a fan-out/merge router (DESIGN.md §14).
//
// The unit of partitioning is the document (answer) space: a deterministic
// seeded hash assigns every document ID to exactly one shard, and the
// assignment is persisted in a CRC-framed shard-map file so that every
// process in the cluster — shard writers, their read replicas, and the
// router — provably agrees on ownership. Each shard holds the full entity
// graph (vote solves re-weight shared entity edges, so slicing the graph
// itself would make per-shard scores incomparable) but serves and accepts
// votes only for the documents it owns; after each flush the owner pushes
// its applied absolute weight set to its peers (push.go), which apply it
// solver-free, keeping every shard's graph convergent with the
// single-process oracle.
//
// The package provides the shard map (this file), the binary snapshot and
// map codecs (codec.go), deterministic ranked-list merging (merge.go), the
// stateless fan-out/merge router (router.go), the peer weight-set pusher
// (push.go), and the replica snapshot follower (follow.go).
package shard

import (
	"fmt"
	"os"
)

// Map is the cluster's document→shard assignment. It is immutable after
// construction; every process loads the same map file and therefore
// computes identical ownership.
type Map struct {
	// Shards is the number of writer shards (>= 1).
	Shards int
	// Seed perturbs the assignment hash so re-sharding with the same
	// shard count still produces a fresh placement.
	Seed uint64
}

// NewMap returns a map over n shards with the given hash seed.
func NewMap(n int, seed uint64) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: map needs at least 1 shard, got %d", n)
	}
	return &Map{Shards: n, Seed: seed}, nil
}

// fnv64a constants (hash/fnv is not used directly to keep the hash's
// byte-level definition pinned in this file: the assignment is part of the
// on-disk contract and must never drift).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Owner returns the shard index that owns document doc. The hash folds
// the map seed and the document ID little-endian byte by byte, so the
// assignment is deterministic across processes, architectures, and Go
// versions.
func (m *Map) Owner(doc int) int {
	h := uint64(fnvOffset)
	x := m.Seed
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime
		x >>= 8
	}
	d := uint64(int64(doc))
	for i := 0; i < 8; i++ {
		h = (h ^ (d & 0xff)) * fnvPrime
		d >>= 8
	}
	return int(h % uint64(m.Shards))
}

// Owns reports whether shard index owns document doc.
func (m *Map) Owns(index, doc int) bool { return m.Owner(doc) == index }

// WriteFile persists the map atomically (temp file + rename) in the
// CRC-framed binary format described in codec.go.
func (m *Map) WriteFile(path string) error {
	b, err := m.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads and verifies a shard-map file.
func LoadFile(path string) (*Map, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeMap(b)
	if err != nil {
		return nil, fmt.Errorf("shard: map file %s: %w", path, err)
	}
	return m, nil
}
