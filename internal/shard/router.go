package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/api"
	"kgvote/internal/graph"
	"kgvote/internal/lru"
)

// The router is the cluster's stateless front door: it fans /v1/ask (and
// /v1/askbatch) out to every shard, merges the per-shard ranked lists
// into one global top-k, and routes /v1/vote to the shard that owns the
// voted document. Per-shard reads are hedged — the writer is tried
// first (its answer carries a reusable vote handle), and if it has not
// answered within HedgeAfter the request is raced against the shard's
// snapshot replicas — and a shard that answers nothing within the
// deadline degrades the response to Partial instead of failing it.
//
// The router's only state is soft: endpoint health bits (passive
// mark-down on transport errors, active /v1/healthz probe revival) and
// an LRU of served ask handles, kept so a follow-up vote can travel
// with the original question's entities. Losing a router loses nothing.

// routerHandleCap bounds the served-ask handle table.
const routerHandleCap = 1 << 16

// ShardEndpoints names one shard's processes: the single writer and any
// read-only snapshot replicas.
type ShardEndpoints struct {
	Writer   string
	Replicas []string
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Map is the cluster's shard map; len(Shards) must equal Map.Shards.
	Map *Map
	// Shards lists each shard's endpoints, indexed by shard.
	Shards []ShardEndpoints
	// TopK is the merged result length (0 = 10).
	TopK int
	// Timeout bounds each per-shard fan-out leg (0 = 5s).
	Timeout time.Duration
	// HedgeAfter is how long the first endpoint may stay silent before
	// the request is raced against the next one (0 = 75ms).
	HedgeAfter time.Duration
	// ProbeEvery is the health-probe interval for marked-down endpoints
	// (0 = 2s).
	ProbeEvery time.Duration
	// Client is the HTTP client for all shard traffic (nil = a default
	// with the fan-out timeout).
	Client *http.Client
	// HandleCap bounds the served-ask handle table (0 = 2^16).
	HandleCap int
}

// endpoint is one shard process plus its health bit.
type endpoint struct {
	addr    string
	index   int // owning shard
	replica bool
	healthy atomic.Bool
}

// shardClient is one shard's endpoint set, writer first.
type shardClient struct {
	index  int
	writer *endpoint
	eps    []*endpoint
}

// ordered returns the endpoints to try, healthy before marked-down,
// writer before replicas within each class.
func (sc *shardClient) ordered() []*endpoint {
	out := make([]*endpoint, 0, len(sc.eps))
	for _, ep := range sc.eps {
		if ep.healthy.Load() {
			out = append(out, ep)
		}
	}
	for _, ep := range sc.eps {
		if !ep.healthy.Load() {
			out = append(out, ep)
		}
	}
	return out
}

// routedAsk is what the router remembers about one served ask: the
// resolved entities (so a vote can be forwarded to a shard that never
// saw the ask) and, per shard whose *writer* answered, that writer's own
// handle (so the owner resolves the vote exactly as a single process
// would).
type routedAsk struct {
	entities map[string]int
	handles  map[int]graph.NodeID
}

// Router fans the /v1 read surface out across the cluster and routes
// writes to document owners. Create with NewRouter, serve Handler(),
// Close when done.
type Router struct {
	opt        RouterOptions
	client     *http.Client
	shards     []*shardClient
	handles    *lru.Cache[graph.NodeID, *routedAsk]
	nextHandle atomic.Int32
	stop       chan struct{}
	wg         sync.WaitGroup
}

// NewRouter validates the topology and starts the health-probe loop.
func NewRouter(opt RouterOptions) (*Router, error) {
	if opt.Map == nil {
		return nil, fmt.Errorf("shard: router needs a shard map")
	}
	if len(opt.Shards) != opt.Map.Shards {
		return nil, fmt.Errorf("shard: router has %d endpoint sets for %d shards", len(opt.Shards), opt.Map.Shards)
	}
	if opt.TopK <= 0 {
		opt.TopK = 10
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Second
	}
	if opt.HedgeAfter <= 0 {
		opt.HedgeAfter = 75 * time.Millisecond
	}
	if opt.ProbeEvery <= 0 {
		opt.ProbeEvery = 2 * time.Second
	}
	if opt.HandleCap <= 0 {
		opt.HandleCap = routerHandleCap
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: opt.Timeout}
	}
	rt := &Router{
		opt:     opt,
		client:  client,
		handles: lru.New[graph.NodeID, *routedAsk](opt.HandleCap),
		stop:    make(chan struct{}),
	}
	for i, se := range opt.Shards {
		if se.Writer == "" {
			return nil, fmt.Errorf("shard: shard %d has no writer endpoint", i)
		}
		sc := &shardClient{index: i}
		w := &endpoint{addr: se.Writer, index: i}
		w.healthy.Store(true)
		sc.writer = w
		sc.eps = append(sc.eps, w)
		for _, addr := range se.Replicas {
			rep := &endpoint{addr: addr, index: i, replica: true}
			rep.healthy.Store(true)
			sc.eps = append(sc.eps, rep)
		}
		rt.shards = append(rt.shards, sc)
	}
	rt.nextHandle.Store(int32(graph.None))
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the health-probe loop.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

// probeLoop revives marked-down endpoints (and demotes silently dead
// ones) by polling /v1/healthz. Passive traffic marks endpoints down the
// moment a transport error surfaces; the probe is how they come back.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.opt.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			for _, sc := range rt.shards {
				for _, ep := range sc.eps {
					ep.healthy.Store(rt.probe(ep))
				}
			}
		}
	}
}

func (rt *Router) probe(ep *endpoint) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opt.ProbeEvery)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ep.addr+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// Handler returns the router's mux: the /v1 read-and-vote surface, fanned
// across the cluster.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", rt.handleHealth)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("POST /v1/ask", rt.handleAsk)
	mux.HandleFunc("POST /v1/askbatch", rt.handleAskBatch)
	mux.HandleFunc("POST /v1/vote", rt.handleVote)
	mux.HandleFunc("POST /v1/flush", rt.handleFlush)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.ErrorBody{Error: api.Error{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// postJSON posts body to ep and decodes a 2xx response into out. A non-2xx
// envelope comes back as *api.Error (terminal: the peer answered, it just
// said no); a transport failure marks the endpoint down and comes back as
// a plain error (retriable on another endpoint).
func (rt *Router) postJSON(ctx context.Context, ep *endpoint, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, "POST", ep.addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		ep.healthy.Store(false)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope api.ErrorBody
		if derr := json.NewDecoder(resp.Body).Decode(&envelope); derr != nil || envelope.Error.Code == "" {
			return fmt.Errorf("shard %d (%s): http %d", ep.index, ep.addr, resp.StatusCode)
		}
		envelope.Error.HTTPStatus = resp.StatusCode
		return &envelope.Error
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// hedged runs do against eps in order, racing a new attempt whenever the
// previous ones have been silent for hedgeAfter (or failed outright).
// The first success wins; an *api.Error is terminal (the shard answered).
func hedged[T any](ctx context.Context, eps []*endpoint, hedgeAfter time.Duration,
	do func(context.Context, *endpoint) (T, error)) (T, *endpoint, error) {
	var zero T
	type attempt struct {
		v   T
		ep  *endpoint
		err error
	}
	results := make(chan attempt, len(eps))
	launch := func(ep *endpoint) {
		go func() {
			v, err := do(ctx, ep)
			results <- attempt{v, ep, err}
		}()
	}
	launch(eps[0])
	inflight, next := 1, 1
	var lastErr error
	for {
		var hedge <-chan time.Time
		var tm *time.Timer
		if next < len(eps) {
			tm = time.NewTimer(hedgeAfter)
			hedge = tm.C
		}
		select {
		case a := <-results:
			if tm != nil {
				tm.Stop()
			}
			inflight--
			if a.err == nil {
				return a.v, a.ep, nil
			}
			if apiErr := (*api.Error)(nil); asAPIError(a.err, &apiErr) {
				return zero, a.ep, apiErr
			}
			lastErr = a.err
			if next < len(eps) {
				launch(eps[next])
				next++
				inflight++
			}
			if inflight == 0 {
				return zero, nil, lastErr
			}
		case <-hedge:
			launch(eps[next])
			next++
			inflight++
		case <-ctx.Done():
			if tm != nil {
				tm.Stop()
			}
			return zero, nil, ctx.Err()
		}
	}
}

// asAPIError is errors.As for *api.Error without importing errors twice
// in hot paths — the router never wraps, so a direct type check is exact.
func asAPIError(err error, out **api.Error) bool {
	e, ok := err.(*api.Error)
	if ok {
		*out = e
	}
	return ok
}

// shardAsk is one shard's contribution to a fanned-out ask.
type shardAsk struct {
	index int
	resp  *api.AskResponse
	ep    *endpoint
	err   error
}

// fanAsk sends payload to every shard's /v1/ask with hedging and collects
// the per-shard outcomes.
func (rt *Router) fanAsk(ctx context.Context, path string, payload []byte) []shardAsk {
	out := make([]shardAsk, len(rt.shards))
	var wg sync.WaitGroup
	for i, sc := range rt.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			legCtx, cancel := context.WithTimeout(ctx, rt.opt.Timeout)
			defer cancel()
			resp, ep, err := hedged(legCtx, sc.ordered(), rt.opt.HedgeAfter,
				func(ctx context.Context, ep *endpoint) (*api.AskResponse, error) {
					var r api.AskResponse
					if err := rt.postJSON(ctx, ep, path, payload, &r); err != nil {
						return nil, err
					}
					return &r, nil
				})
			out[i] = shardAsk{index: i, resp: resp, ep: ep, err: err}
		}(i, sc)
	}
	wg.Wait()
	return out
}

func (rt *Router) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req api.AskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	payload, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	answers := rt.fanAsk(r.Context(), "/v1/ask", payload)
	var (
		lists    [][]api.AskResult
		answered int
		epoch    uint64
		firstErr error
	)
	ra := &routedAsk{handles: make(map[int]graph.NodeID)}
	for _, a := range answers {
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			continue
		}
		answered++
		lists = append(lists, a.resp.Results)
		if a.resp.Epoch > epoch {
			epoch = a.resp.Epoch
		}
		if ra.entities == nil && len(a.resp.Entities) > 0 {
			ra.entities = a.resp.Entities
		}
		if a.ep != nil && !a.ep.replica {
			// Only a writer's handle is reusable for the follow-up vote:
			// a replica's pending table is not visible to its writer.
			ra.handles[a.index] = a.resp.Query
		}
	}
	if answered == 0 {
		// A terminal per-shard envelope (bad question) beats a generic
		// unavailable: every shard would have said the same thing.
		if apiErr := (*api.Error)(nil); asAPIError(firstErr, &apiErr) {
			status := apiErr.HTTPStatus
			if status == 0 {
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, api.ErrorBody{Error: *apiErr})
			return
		}
		writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable, "ask: no shard answered: %v", firstErr)
		return
	}
	handle := graph.NodeID(rt.nextHandle.Add(-1))
	rt.handles.Add(handle, ra)
	resp := api.AskResponse{
		Query:          handle,
		Epoch:          epoch,
		Results:        MergeTopK(lists, rt.opt.TopK),
		Entities:       ra.entities,
		Partial:        answered < len(rt.shards),
		ShardsAnswered: answered,
		ShardsTotal:    len(rt.shards),
	}
	w.Header().Set("X-KG-Shards-Answered", fmt.Sprintf("%d/%d", answered, len(rt.shards)))
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleAskBatch(w http.ResponseWriter, r *http.Request) {
	var req api.AskBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Questions) == 0 {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "askbatch: empty batch")
		return
	}
	payload, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	out := make([]shardBatch, len(rt.shards))
	var wg sync.WaitGroup
	for i, sc := range rt.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			legCtx, cancel := context.WithTimeout(r.Context(), rt.opt.Timeout)
			defer cancel()
			resp, _, err := hedged(legCtx, sc.ordered(), rt.opt.HedgeAfter,
				func(ctx context.Context, ep *endpoint) (*api.AskBatchResponse, error) {
					var b api.AskBatchResponse
					if err := rt.postJSON(ctx, ep, "/v1/askbatch", payload, &b); err != nil {
						return nil, err
					}
					return &b, nil
				})
			out[i] = shardBatch{resp: resp, err: err}
		}(i, sc)
	}
	wg.Wait()
	var (
		answered int
		epoch    uint64
		firstErr error
	)
	for _, b := range out {
		if b.err != nil {
			if firstErr == nil {
				firstErr = b.err
			}
			continue
		}
		answered++
		if b.resp.Epoch > epoch {
			epoch = b.resp.Epoch
		}
	}
	if answered == 0 {
		if apiErr := (*api.Error)(nil); asAPIError(firstErr, &apiErr) {
			status := apiErr.HTTPStatus
			if status == 0 {
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, api.ErrorBody{Error: *apiErr})
			return
		}
		writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable, "askbatch: no shard answered: %v", firstErr)
		return
	}
	resp := api.AskBatchResponse{
		Epoch:          epoch,
		Results:        make([][]api.AskResult, len(req.Questions)),
		Partial:        answered < len(rt.shards),
		ShardsAnswered: answered,
		ShardsTotal:    len(rt.shards),
	}
	for qi := range req.Questions {
		var lists [][]api.AskResult
		for _, b := range out {
			if b.err == nil && qi < len(b.resp.Results) {
				lists = append(lists, b.resp.Results[qi])
			}
		}
		resp.Results[qi] = MergeTopK(lists, rt.opt.TopK)
	}
	w.Header().Set("X-KG-Shards-Answered", fmt.Sprintf("%d/%d", answered, len(rt.shards)))
	writeJSON(w, http.StatusOK, resp)
}

type shardBatch struct {
	resp *api.AskBatchResponse
	err  error
}

// handleVote routes the vote to the shard owning the voted document,
// rewriting the router handle into either the owner writer's own handle
// (when that writer answered the ask — exact single-process semantics)
// or graph.None plus the original question's entities (the owner
// materializes the query one-shot). The owner's response — success or
// envelope, including Retry-After — is passed through verbatim.
func (rt *Router) handleVote(w http.ResponseWriter, r *http.Request) {
	var req api.VoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	owner := rt.opt.Map.Owner(req.BestDoc)
	if req.Query < 0 {
		if ra, ok := rt.handles.Get(req.Query); ok {
			if h, ok := ra.handles[owner]; ok {
				req.Query = h
			} else {
				req.Query = graph.None
			}
			if len(req.Entities) == 0 {
				req.Entities = ra.entities
			}
		} else if len(req.Entities) == 0 {
			writeErr(w, http.StatusBadRequest, api.CodeBadRequest,
				"unknown or expired query handle %d (and no entities to re-materialize from)", req.Query)
			return
		} else {
			req.Query = graph.None
		}
	}
	payload, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, api.CodeInternal, "vote: %v", err)
		return
	}
	ep := rt.shards[owner].writer
	ctx, cancel := context.WithTimeout(r.Context(), rt.opt.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, "POST", ep.addr+"/v1/vote", bytes.NewReader(payload))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, api.CodeInternal, "vote: %v", err)
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := r.Header.Get("X-Client-ID"); id != "" {
		hreq.Header.Set("X-Client-ID", id) // preserve admission fairness keys
	}
	resp, err := rt.client.Do(hreq)
	if err != nil {
		ep.healthy.Store(false)
		writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable, "vote: shard %d writer unreachable: %v", owner, err)
		return
	}
	defer resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleFlush fans the flush to every shard writer and reports each
// outcome; a single dead shard does not fail the cluster flush.
func (rt *Router) handleFlush(w http.ResponseWriter, r *http.Request) {
	resp := api.ClusterFlushResponse{Shards: make([]api.ShardFlush, len(rt.shards))}
	var wg sync.WaitGroup
	for i, sc := range rt.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), rt.opt.Timeout)
			defer cancel()
			sf := api.ShardFlush{Index: i}
			var vr api.VoteResponse
			if err := rt.postJSON(ctx, sc.writer, "/v1/flush", []byte("{}"), &vr); err != nil {
				sf.Error = err.Error()
			} else {
				sf.Pending = vr.Pending
				sf.Flushed = vr.Flushed
			}
			resp.Shards[i] = sf
		}(i, sc)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := api.RouterStats{
		Shards:      len(rt.shards),
		MapChecksum: fmt.Sprintf("%08x", rt.opt.Map.Checksum()),
	}
	type slot struct {
		sh api.RouterShard
	}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		slots []*slot
	)
	for _, sc := range rt.shards {
		for _, ep := range sc.eps {
			s := &slot{sh: api.RouterShard{Index: ep.index, Addr: ep.addr, Replica: ep.replica}}
			slots = append(slots, s)
			wg.Add(1)
			go func(ep *endpoint, s *slot) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(r.Context(), rt.opt.Timeout)
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, "GET", ep.addr+"/v1/stats", nil)
				if err != nil {
					return
				}
				resp, err := rt.client.Do(req)
				if err != nil {
					return
				}
				defer resp.Body.Close()
				var body api.StatsBody
				if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&body) == nil {
					mu.Lock()
					s.sh.Healthy = true
					s.sh.Stats = &body
					mu.Unlock()
				}
			}(ep, s)
		}
	}
	wg.Wait()
	healthyShards := make(map[int]bool)
	for _, s := range slots {
		stats.Endpoints = append(stats.Endpoints, s.sh)
		if s.sh.Healthy {
			healthyShards[s.sh.Index] = true
		}
	}
	stats.ShardsHealthy = len(healthyShards)
	writeJSON(w, http.StatusOK, stats)
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, sc := range rt.shards {
		for _, ep := range sc.eps {
			if ep.healthy.Load() {
				healthy++
				break
			}
		}
	}
	status := "ok"
	if healthy < len(rt.shards) {
		status = "degraded"
	}
	w.Header().Set("X-KG-Shards-Answered", strconv.Itoa(healthy)+"/"+strconv.Itoa(len(rt.shards)))
	writeJSON(w, http.StatusOK, api.HealthBody{Status: status})
}
