package shard

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/api"
	"kgvote/internal/core"
)

// The follower is the replica side of snapshot shipping: a read-only
// kgvoted polls its writer's GET /v1/snapshot?since=<epoch> and, when
// the writer's serving epoch has advanced, imports the returned absolute
// weight export at the writer's epoch. Polling (rather than writer push)
// keeps the writer entirely ignorant of its replicas: replicas can be
// added, killed, and lag arbitrarily without the writer carrying state
// for them.

// maxSnapshotBody bounds one snapshot download.
const maxSnapshotBody = 256 << 20

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Writer is the followed writer's base URL.
	Writer string
	// Every is the poll interval (0 = 500ms).
	Every time.Duration
	// Client is the HTTP client for polls (nil = 30s-timeout default).
	Client *http.Client
	// Apply installs an imported weight set at the writer's epoch
	// (server.ImportSnapshot).
	Apply func(ws []core.WeightChange, epoch uint64) error
	// OnSync, when non-nil, observes each successful import
	// (server.ReportReplica).
	OnSync func(api.ReplicaStats)
}

// Follower polls a writer's snapshot endpoint and feeds imports into a
// read-only server. Create with NewFollower, Close on shutdown.
type Follower struct {
	opt       FollowerOptions
	client    *http.Client
	lastEpoch atomic.Uint64
	syncs     atomic.Int64
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewFollower validates the options and starts the poll loop.
func NewFollower(opt FollowerOptions) (*Follower, error) {
	if opt.Writer == "" {
		return nil, fmt.Errorf("shard: follower needs a writer URL")
	}
	if opt.Apply == nil {
		return nil, fmt.Errorf("shard: follower needs an Apply hook")
	}
	if opt.Every <= 0 {
		opt.Every = 500 * time.Millisecond
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 30 * time.Second}
	}
	f := &Follower{opt: opt, client: opt.Client, stop: make(chan struct{})}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Close stops the poll loop.
func (f *Follower) Close() {
	close(f.stop)
	f.wg.Wait()
}

func (f *Follower) run() {
	defer f.wg.Done()
	// Sync immediately so a fresh replica serves real weights as soon as
	// the writer is reachable, then poll.
	_ = f.SyncOnce()
	tick := time.NewTicker(f.opt.Every)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			_ = f.SyncOnce() // transient failures retry next tick
		}
	}
}

// SyncOnce performs one poll-and-import cycle: a no-op when the writer's
// epoch has not advanced past the last import.
func (f *Follower) SyncOnce() error {
	since := f.lastEpoch.Load()
	url := fmt.Sprintf("%s/v1/snapshot?since=%d", f.opt.Writer, since)
	resp, err := f.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("shard: snapshot poll: http %d", resp.StatusCode)
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBody))
	if err != nil {
		return err
	}
	epoch, ws, err := DecodeSnapshot(frame)
	if err != nil {
		return fmt.Errorf("shard: snapshot poll: %w", err)
	}
	if epoch <= f.lastEpoch.Load() {
		return nil // raced with a concurrent sync; nothing newer
	}
	if err := f.opt.Apply(ws, epoch); err != nil {
		return fmt.Errorf("shard: snapshot import: %w", err)
	}
	f.lastEpoch.Store(epoch)
	n := f.syncs.Add(1)
	if f.opt.OnSync != nil {
		f.opt.OnSync(api.ReplicaStats{Following: f.opt.Writer, Epoch: epoch, Syncs: n})
	}
	return nil
}

// Epoch reports the last imported writer epoch.
func (f *Follower) Epoch() uint64 { return f.lastEpoch.Load() }
