package shard

import (
	"math"
	"path/filepath"
	"testing"

	"kgvote/api"
	"kgvote/internal/core"
)

func TestOwnerDeterministicAndTotal(t *testing.T) {
	m, err := NewMap(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := NewMap(4, 1)
	for doc := 0; doc < 1000; doc++ {
		o := m.Owner(doc)
		if o < 0 || o >= 4 {
			t.Fatalf("doc %d: owner %d out of range", doc, o)
		}
		if o2 := m2.Owner(doc); o2 != o {
			t.Fatalf("doc %d: owner differs across identical maps: %d vs %d", doc, o, o2)
		}
		if !m.Owns(o, doc) {
			t.Fatalf("doc %d: Owns(%d) false for its owner", doc, o)
		}
	}
}

func TestOwnerDistribution(t *testing.T) {
	const docs = 256
	for _, n := range []int{2, 3, 4, 8} {
		m, err := NewMap(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for doc := 0; doc < docs; doc++ {
			counts[m.Owner(doc)]++
		}
		for i, c := range counts {
			if c == 0 {
				t.Fatalf("n=%d: shard %d owns no documents out of %d", n, i, docs)
			}
		}
	}
}

func TestOwnerSeedChangesAssignment(t *testing.T) {
	a, _ := NewMap(4, 1)
	b, _ := NewMap(4, 99)
	same := 0
	for doc := 0; doc < 256; doc++ {
		if a.Owner(doc) == b.Owner(doc) {
			same++
		}
	}
	if same == 256 {
		t.Fatal("different seeds produced identical assignments")
	}
}

func TestMapFileRoundtrip(t *testing.T) {
	m, err := NewMap(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.map")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 5 || got.Seed != 42 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if got.Checksum() != m.Checksum() {
		t.Fatalf("checksum mismatch: %08x vs %08x", got.Checksum(), m.Checksum())
	}
}

func TestMapDecodeRejectsCorruption(t *testing.T) {
	m, _ := NewMap(3, 7)
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMap(enc); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := DecodeMap(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	if _, err := DecodeMap(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	ws := []core.WeightChange{
		{From: 0, To: 3, Weight: 0.25},
		{From: 1, To: 4, Weight: 1.0 / 3.0},
		{From: 2, To: 5, Weight: math.Nextafter(0.5, 1)},
	}
	frame := EncodeSnapshot(17, ws)
	epoch, got, err := DecodeSnapshot(frame)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 17 {
		t.Fatalf("epoch %d, want 17", epoch)
	}
	if len(got) != len(ws) {
		t.Fatalf("%d edges, want %d", len(got), len(ws))
	}
	for i := range ws {
		if got[i] != ws[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, got[i], ws[i])
		}
		if math.Float64bits(got[i].Weight) != math.Float64bits(ws[i].Weight) {
			t.Fatalf("edge %d: weight bits differ", i)
		}
	}
	// Empty sets are valid (an empty flush still ships the epoch).
	epoch, got, err = DecodeSnapshot(EncodeSnapshot(3, nil))
	if err != nil || epoch != 3 || len(got) != 0 {
		t.Fatalf("empty snapshot roundtrip: epoch=%d n=%d err=%v", epoch, len(got), err)
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	frame := EncodeSnapshot(9, []core.WeightChange{{From: 1, To: 2, Weight: 0.5}})
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x10
		if _, _, err := DecodeSnapshot(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	if _, _, err := DecodeSnapshot(frame[:8]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := DecodeMap(frame); err == nil {
		t.Fatal("snapshot frame accepted as a map")
	}
}

func TestMergeTopK(t *testing.T) {
	lists := [][]api.AskResult{
		{{Doc: 4, Score: 0.9}, {Doc: 0, Score: 0.5}},
		{{Doc: 1, Score: 0.9}, {Doc: 3, Score: 0.7}},
		{{Doc: 2, Score: 0.5}},
	}
	got := MergeTopK(lists, 4)
	wantDocs := []int{1, 4, 3, 0} // 0.9 tie broken by doc asc; 0.5 tie: doc 0 beats doc 2
	if len(got) != 4 {
		t.Fatalf("got %d results, want 4", len(got))
	}
	for i, d := range wantDocs {
		if got[i].Doc != d {
			t.Fatalf("pos %d: doc %d, want %d (merged %+v)", i, got[i].Doc, d, got)
		}
	}
	if all := MergeTopK(lists, 0); len(all) != 5 {
		t.Fatalf("k=0 kept %d results, want all 5", len(all))
	}
	if none := MergeTopK(nil, 3); len(none) != 0 {
		t.Fatalf("empty merge returned %d results", len(none))
	}
}

func TestNewMapValidates(t *testing.T) {
	if _, err := NewMap(0, 1); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := NewMap(-2, 1); err == nil {
		t.Fatal("negative shards accepted")
	}
}
