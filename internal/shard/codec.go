// Binary codecs for the two artifacts shards exchange on disk and over
// the wire, both reusing the WAL framing idiom (internal/wal): a fixed
// magic, a little-endian length, and a CRC-32C (Castagnoli) checksum over
// the payload, so torn or corrupted bytes are detected before anything is
// interpreted.
//
// Shard-map file ("KGSM"):
//
//	magic [4]byte | len u32 | crc u32 | payload
//	payload = version u16 | shards u32 | seed u64
//
// Snapshot export ("KGSS", the GET /v1/snapshot body):
//
//	magic [4]byte | len u32 | crc u32 | payload
//	payload = version u16 | epoch u64 | nEdges uvarint |
//	          (from i32, to i32, weight f64bits)...
//
// Weights travel as IEEE-754 bit patterns, so a replica that imports a
// snapshot serves bit-identical scores to its writer.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"kgvote/internal/core"
	"kgvote/internal/graph"
)

const (
	mapMagic  = "KGSM"
	snapMagic = "KGSS"

	codecVersion = 1

	// maxFramePayload bounds the declared payload length so a corrupt
	// header cannot demand an absurd allocation (64 MiB matches the solve
	// farm's frame cap).
	maxFramePayload = 64 << 20
)

// ErrBadFrame wraps every framing or payload decoding failure.
var ErrBadFrame = errors.New("shard: malformed frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame prepends magic|len|crc to a payload.
func frame(magic string, payload []byte) []byte {
	b := make([]byte, 0, len(magic)+8+len(payload))
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// unframe verifies magic, length, and checksum, returning the payload.
func unframe(magic string, b []byte) ([]byte, error) {
	if len(b) < len(magic)+8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a header", ErrBadFrame, len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrBadFrame, b[:len(magic)], magic)
	}
	b = b[len(magic):]
	n := binary.LittleEndian.Uint32(b[0:4])
	crcWant := binary.LittleEndian.Uint32(b[4:8])
	if n > maxFramePayload {
		return nil, fmt.Errorf("%w: declared payload %d exceeds cap", ErrBadFrame, n)
	}
	payload := b[8:]
	if uint32(len(payload)) != n {
		return nil, fmt.Errorf("%w: declared payload %d bytes, have %d", ErrBadFrame, n, len(payload))
	}
	if crc := crc32.Checksum(payload, castagnoli); crc != crcWant {
		return nil, fmt.Errorf("%w: checksum mismatch (want %08x, got %08x)", ErrBadFrame, crcWant, crc)
	}
	return payload, nil
}

// Encode serializes the map into its framed file bytes.
func (m *Map) Encode() ([]byte, error) {
	if m.Shards < 1 || m.Shards > math.MaxUint32 {
		return nil, fmt.Errorf("shard: cannot encode map with %d shards", m.Shards)
	}
	payload := make([]byte, 0, 14)
	payload = binary.LittleEndian.AppendUint16(payload, codecVersion)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(m.Shards))
	payload = binary.LittleEndian.AppendUint64(payload, m.Seed)
	return frame(mapMagic, payload), nil
}

// Checksum returns the CRC-32C of the map's payload — a compact
// fingerprint processes can compare in /v1/stats to prove they loaded the
// same map.
func (m *Map) Checksum() uint32 {
	b, err := m.Encode()
	if err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[len(mapMagic)+4:])
}

// DecodeMap parses framed map bytes.
func DecodeMap(b []byte) (*Map, error) {
	payload, err := unframe(mapMagic, b)
	if err != nil {
		return nil, err
	}
	if len(payload) != 14 {
		return nil, fmt.Errorf("%w: map payload is %d bytes, want 14", ErrBadFrame, len(payload))
	}
	if v := binary.LittleEndian.Uint16(payload[0:2]); v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported map version %d", ErrBadFrame, v)
	}
	shards := binary.LittleEndian.Uint32(payload[2:6])
	if shards < 1 {
		return nil, fmt.Errorf("%w: map declares 0 shards", ErrBadFrame)
	}
	return &Map{Shards: int(shards), Seed: binary.LittleEndian.Uint64(payload[6:14])}, nil
}

// EncodeSnapshot serializes an epoch-stamped absolute weight set.
func EncodeSnapshot(epoch uint64, ws []core.WeightChange) []byte {
	payload := make([]byte, 0, 2+8+binary.MaxVarintLen64+16*len(ws))
	payload = binary.LittleEndian.AppendUint16(payload, codecVersion)
	payload = binary.LittleEndian.AppendUint64(payload, epoch)
	payload = binary.AppendUvarint(payload, uint64(len(ws)))
	for _, wc := range ws {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(int32(wc.From)))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(int32(wc.To)))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(wc.Weight))
	}
	return frame(snapMagic, payload)
}

// DecodeSnapshot parses an EncodeSnapshot frame.
func DecodeSnapshot(b []byte) (epoch uint64, ws []core.WeightChange, err error) {
	payload, err := unframe(snapMagic, b)
	if err != nil {
		return 0, nil, err
	}
	if len(payload) < 10 {
		return 0, nil, fmt.Errorf("%w: snapshot payload is %d bytes", ErrBadFrame, len(payload))
	}
	if v := binary.LittleEndian.Uint16(payload[0:2]); v != codecVersion {
		return 0, nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrBadFrame, v)
	}
	epoch = binary.LittleEndian.Uint64(payload[2:10])
	rest := payload[10:]
	n, consumed := binary.Uvarint(rest)
	if consumed <= 0 || n > uint64(len(rest)/16)+1 {
		return 0, nil, fmt.Errorf("%w: bad edge count", ErrBadFrame)
	}
	rest = rest[consumed:]
	if uint64(len(rest)) != n*16 {
		return 0, nil, fmt.Errorf("%w: %d edges declared, %d payload bytes", ErrBadFrame, n, len(rest))
	}
	ws = make([]core.WeightChange, n)
	for i := range ws {
		ws[i].From = graph.NodeID(int32(binary.LittleEndian.Uint32(rest[0:4])))
		ws[i].To = graph.NodeID(int32(binary.LittleEndian.Uint32(rest[4:8])))
		ws[i].Weight = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:16]))
		rest = rest[16:]
	}
	return epoch, ws, nil
}
