package core

import (
	"context"
	"math"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/sgp"
	"kgvote/internal/vote"
)

// codecRoundTripSolver solves each cluster program after pushing it
// through the farm's program codec and its solution back through the
// solution codec — the exact transformation a remote worker applies,
// minus the network. A flush through it must be byte-identical to the
// in-process flush; this is the serialization half of the solve farm's
// determinism contract, provable without sockets.
type codecRoundTripSolver struct{ t *testing.T }

func (s codecRoundTripSolver) SolveProgram(ctx context.Context, p *sgp.Program, params sgp.Params) (*sgp.Solution, error) {
	enc := sgp.EncodeProgram(nil, p, params)
	dec, decParams, err := sgp.DecodeProgram(enc)
	if err != nil {
		s.t.Fatalf("program codec: %v", err)
	}
	sol, err := dec.Solve(sgp.SolveOptions{Mode: decParams.Mode, AL: decParams.AL, Stop: stopFunc(ctx)})
	if err != nil {
		return nil, err
	}
	back, err := sgp.DecodeSolution(sgp.EncodeSolution(nil, sol))
	if err != nil {
		s.t.Fatalf("solution codec: %v", err)
	}
	return back, nil
}

// fourRegionVotes builds the four independent query regions of
// TestSolveSplitMergeTwoRegions and one negative vote per region.
func fourRegionVotes(t *testing.T) (*graph.Graph, func(*Engine) []vote.Vote) {
	t.Helper()
	g := graph.New(0)
	type region struct {
		q       graph.NodeID
		answers []graph.NodeID
		best    graph.NodeID
	}
	regions := make([]region, 4)
	for i := range regions {
		q := g.AddNodes(5)
		a, b, x, y := q+1, q+2, q+3, q+4
		g.MustSetEdge(q, a, 0.6)
		g.MustSetEdge(q, b, 0.4)
		g.MustSetEdge(a, x, 1)
		g.MustSetEdge(b, y, 1)
		regions[i] = region{q: q, answers: []graph.NodeID{x, y}, best: y}
	}
	collect := func(e *Engine) []vote.Vote {
		votes := make([]vote.Vote, 0, len(regions))
		for _, r := range regions {
			v, err := e.CollectVote(r.q, r.answers, r.best)
			if err != nil {
				t.Fatal(err)
			}
			votes = append(votes, v)
		}
		return votes
	}
	return g, collect
}

func flushWeights(t *testing.T, g *graph.Graph, collect func(*Engine) []vote.Vote, cs ClusterSolver) map[graph.EdgeKey]float64 {
	t.Helper()
	e, err := New(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cs != nil {
		e.SetClusterSolver(cs)
	}
	if _, err := e.SolveSplitMerge(collect(e)); err != nil {
		t.Fatal(err)
	}
	out := make(map[graph.EdgeKey]float64)
	g.Edges(func(from, to graph.NodeID, w float64) {
		out[graph.EdgeKey{From: from, To: to}] = w
	})
	return out
}

// TestCodecRoundTripSolverMatchesLocal pins the golden determinism
// property: a flush whose every cluster solve round-trips through the
// farm codec produces bitwise-identical final weights.
func TestCodecRoundTripSolverMatchesLocal(t *testing.T) {
	g, collect := fourRegionVotes(t)
	local := flushWeights(t, g.Clone(), collect, nil)
	remote := flushWeights(t, g.Clone(), collect, codecRoundTripSolver{t})
	if len(local) != len(remote) {
		t.Fatalf("edge counts differ: %d vs %d", len(local), len(remote))
	}
	for k, w := range local {
		if rw := remote[k]; rw != w {
			t.Fatalf("edge %v: %x != %x (not bitwise identical)", k, rw, w)
		}
	}
}

// mergeEngine builds a minimal engine for exercising mergeDeltas
// directly; the graph carries one known edge weight.
func mergeEngine(t *testing.T, merge MergeRule) (*Engine, graph.EdgeKey) {
	t.Helper()
	g, _, _ := twoAnswer(t)
	e, err := New(g, Options{Merge: merge})
	if err != nil {
		t.Fatal(err)
	}
	return e, graph.EdgeKey{From: 0, To: 1} // q→a, weight 0.6
}

func mergeOne(e *Engine, results []clusterResult, k graph.EdgeKey) (float64, bool) {
	changes := e.mergeDeltas(results)
	w, ok := changes[k]
	return w, ok
}

func TestMergeDeltasSingleClusterUsesRecordedDelta(t *testing.T) {
	for _, d := range []float64{-0.2, 0.15} {
		e, k := mergeEngine(t, VoteWeighted)
		w, ok := mergeOne(e, []clusterResult{
			{votes: 3, deltas: map[graph.EdgeKey]float64{k: d}},
		}, k)
		if !ok {
			t.Fatalf("delta %v: edge missing from merge", d)
		}
		if want := 0.6 + d; w != want {
			t.Errorf("delta %v: weight = %v, want %v", d, w, want)
		}
	}
}

func TestMergeDeltasVoteWeightedSign(t *testing.T) {
	// Non-negative weighted sum picks the max delta…
	e, k := mergeEngine(t, VoteWeighted)
	w, _ := mergeOne(e, []clusterResult{
		{votes: 3, deltas: map[graph.EdgeKey]float64{k: 0.1}},
		{votes: 1, deltas: map[graph.EdgeKey]float64{k: -0.05}},
	}, k)
	if want := 0.6 + 0.1; w != want {
		t.Errorf("non-negative sum: weight = %v, want %v", w, want)
	}
	// …a negative weighted sum picks the min.
	e, k = mergeEngine(t, VoteWeighted)
	w, _ = mergeOne(e, []clusterResult{
		{votes: 3, deltas: map[graph.EdgeKey]float64{k: -0.1}},
		{votes: 1, deltas: map[graph.EdgeKey]float64{k: 0.05}},
	}, k)
	if want := 0.6 - 0.1; w != want {
		t.Errorf("negative sum: weight = %v, want %v", w, want)
	}
}

func TestMergeDeltasAverage(t *testing.T) {
	e, k := mergeEngine(t, AverageDeltas)
	w, _ := mergeOne(e, []clusterResult{
		{votes: 3, deltas: map[graph.EdgeKey]float64{k: 0.1}},
		{votes: 1, deltas: map[graph.EdgeKey]float64{k: -0.05}},
	}, k)
	if want := 0.6 + (3*0.1-1*0.05)/4; math.Abs(w-want) > 1e-15 {
		t.Errorf("average: weight = %v, want %v", w, want)
	}
}

func TestMergeDeltasClampsToBounds(t *testing.T) {
	// A merged point outside the solver's box must be pinned back inside,
	// under both rules and on both sides.
	e, k := mergeEngine(t, VoteWeighted)
	w, _ := mergeOne(e, []clusterResult{
		{votes: 1, deltas: map[graph.EdgeKey]float64{k: 2.0}},
	}, k)
	if w != sgp.DefaultUpperBound {
		t.Errorf("upper clamp: weight = %v, want %v", w, sgp.DefaultUpperBound)
	}
	e, k = mergeEngine(t, AverageDeltas)
	w, _ = mergeOne(e, []clusterResult{
		{votes: 1, deltas: map[graph.EdgeKey]float64{k: -2.0}},
		{votes: 1, deltas: map[graph.EdgeKey]float64{k: -0.59}},
	}, k)
	if w != sgp.DefaultLowerBound {
		t.Errorf("lower clamp: weight = %v, want %v", w, sgp.DefaultLowerBound)
	}
}

func TestMergeDeltasUntouchedEdgesAbsent(t *testing.T) {
	e, k := mergeEngine(t, VoteWeighted)
	changes := e.mergeDeltas([]clusterResult{
		{votes: 1, deltas: map[graph.EdgeKey]float64{k: 0.1}},
	})
	if len(changes) != 1 {
		t.Fatalf("changes = %v, want only %v", changes, k)
	}
}
