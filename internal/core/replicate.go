package core

import (
	"fmt"

	"kgvote/internal/graph"
)

// This file is the engine's replication surface (DESIGN.md §14): a shard
// writer exports the corpus-stable region of its serving snapshot as an
// absolute weight set, and peers or read replicas import such a set
// solver-free. Node IDs below the boundary — entities plus build-time
// answer nodes — are identical in every process built from the same
// corpus, while query nodes (attached at runtime, above the boundary)
// diverge and must never travel.

// ExportWeights returns every edge of the snapshot whose endpoints are
// both below boundary, as absolute weights in deterministic CSR row
// order. It is the full-sync payload of GET /v1/snapshot and of a
// replication gap repair: because WeightChange carries final absolute
// values, importing the export supersedes any number of missed deltas.
func (s *GraphSnapshot) ExportWeights(boundary graph.NodeID) []WeightChange {
	n := s.csr.NumNodes()
	if int(boundary) > n {
		boundary = graph.NodeID(n)
	}
	var out []WeightChange
	for from := graph.NodeID(0); from < boundary; from++ {
		cols, wts := s.csr.Row(from)
		for i, to := range cols {
			if to < boundary {
				out = append(out, WeightChange{From: from, To: to, Weight: wts[i]})
			}
		}
	}
	return out
}

// ImportWeightSet writes an absolute weight set into the graph — no
// solving, no normalization — and republishes the serving snapshot at
// exactly the given epoch instead of the next local one. It is the
// replica's apply path: a follower that imports its writer's exported
// snapshot serves the writer's scores under the writer's epoch, so
// clients (and the router's hedged reads) can compare freshness across
// the pair. Epochs must not go backwards — a stale import is rejected so
// a reordered poll can never roll the replica back; re-importing the
// current epoch is allowed (absolute weights make it idempotent).
func (e *Engine) ImportWeightSet(ws []WeightChange, epoch uint64) error {
	if epoch == 0 {
		return fmt.Errorf("core: import weight set: epoch 0 is invalid (epochs start at 1)")
	}
	if cur := e.Serving().Epoch(); epoch < cur {
		return fmt.Errorf("core: import weight set: epoch %d is behind serving epoch %d", epoch, cur)
	}
	for _, wc := range ws {
		if err := e.g.SetWeight(wc.From, wc.To, wc.Weight); err != nil {
			return fmt.Errorf("core: import weight set: %w", err)
		}
	}
	e.epoch = epoch - 1
	return e.publish(ws)
}
