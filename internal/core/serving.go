package core

import (
	"fmt"
	"sort"
	"time"

	"kgvote/internal/graph"
	"kgvote/internal/lru"
	"kgvote/internal/pathidx"
	"kgvote/internal/ppr"
)

// DefaultRankCacheSize is the default capacity of the per-snapshot
// query-rank cache (Options.RankCacheSize = 0).
const DefaultRankCacheSize = 1024

// rankEntry is one cached ranking plus the seed node set it was
// computed from, kept so delta-aware republish can retain entries whose
// seeds provably cannot reach any changed edge (see carryRankCache).
type rankEntry struct {
	seeds  []graph.NodeID
	ranked []pathidx.Ranked
}

// GraphSnapshot is one immutable, epoch-stamped generation of the
// engine's graph compiled for lock-free serving: a CSR of the weights, a
// scorer pool for concurrent ranking, and a bounded query-rank cache.
//
// The engine republishes a fresh snapshot (next epoch) after every
// optimization batch mutates weights. When the flush's changed-edge set
// is known, cached rankings whose seed sets provably cannot reach a
// changed edge are carried into the new snapshot's cache; everything
// else (and every entry, when the delta is unknown) is dropped with the
// old snapshot, so cached rankings can never outlive weights that could
// have influenced them. A snapshot is safe for concurrent use by any
// number of goroutines.
//
// Query nodes attached to the mutable graph after the snapshot was
// compiled are intentionally absent: query nodes have no in-edges, so no
// walk between entities and answers can pass through one, and questions
// are scored against the snapshot as virtual sources (seed vectors)
// instead — see RankSeeded.
type GraphSnapshot struct {
	csr   *graph.CSR
	pool  *pathidx.ScorerPool
	cache *lru.Cache[string, rankEntry]
	opt   Options
	// push, set when Options.Scorer == pathidx.BackendPush, is the
	// engine's shared incremental tracker. It advances with the writer;
	// a reader holding a stale snapshot falls back to the enumerator.
	push *ppr.Incremental
}

// Epoch returns the snapshot's generation counter. Epochs start at 1 and
// advance monotonically with every publication.
func (s *GraphSnapshot) Epoch() uint64 { return s.csr.Epoch() }

// CSR returns the compiled graph.
func (s *GraphSnapshot) CSR() *graph.CSR { return s.csr }

// Pool returns the snapshot's scorer pool for callers that manage their
// own scorer checkout (zero-allocation loops).
func (s *GraphSnapshot) Pool() *pathidx.ScorerPool { return s.pool }

// NumNodes returns the snapshot's node count.
func (s *GraphSnapshot) NumNodes() int { return s.csr.NumNodes() }

// NumEdges returns the snapshot's edge count.
func (s *GraphSnapshot) NumEdges() int { return s.csr.NumEdges() }

// RankSeeded ranks candidates for a virtual query node whose out-edges
// are (ids[i], ws[i]), equivalent to attaching the query and ranking from
// it but without mutating the graph. A non-empty cacheKey consults the
// snapshot's rank cache first, so repeated questions skip the sparse
// sweeps entirely; the returned slice may then be shared with other
// readers and must be treated as immutable. k ≤ 0 ranks all candidates.
func (s *GraphSnapshot) RankSeeded(cacheKey string, ids []graph.NodeID, ws []float64, candidates []graph.NodeID, k int) ([]pathidx.Ranked, error) {
	ranked, _, err := s.RankSeededCached(cacheKey, ids, ws, candidates, k)
	return ranked, err
}

// RankSeededCached is RankSeeded plus a cache-hit report, so callers
// (telemetry, /ask?trace=1) can distinguish a cached ranking from a
// fresh scoring pass.
//
// Backend dispatch happens here: under pathidx.BackendPush the ranking
// comes from the incremental tracker (tracked seeds answer in
// O(candidates) after an O(delta) per-flush repair); the enumerator
// serves as the fallback whenever the push path declines — stale
// snapshot epoch after a republish race, or invalid seeds.
func (s *GraphSnapshot) RankSeededCached(cacheKey string, ids []graph.NodeID, ws []float64, candidates []graph.NodeID, k int) ([]pathidx.Ranked, bool, error) {
	if cacheKey != "" {
		if ent, ok := s.cache.Get(cacheKey); ok {
			return ent.ranked, true, nil
		}
	}
	if s.push != nil {
		if ranked, ok := s.rankPush(cacheKey, ids, ws, candidates, k); ok {
			s.cacheAdd(cacheKey, ids, ranked)
			return ranked, false, nil
		}
	}
	sc := s.pool.Get()
	ranked, err := sc.RankSeeded(ids, ws, candidates, k)
	s.pool.Put(sc)
	if err != nil {
		return nil, false, err
	}
	s.cacheAdd(cacheKey, ids, ranked)
	return ranked, false, nil
}

// rankPush ranks through the incremental push tracker; ok=false sends
// the caller to the exact enumerator.
func (s *GraphSnapshot) rankPush(cacheKey string, ids []graph.NodeID, ws []float64, candidates []graph.NodeID, k int) ([]pathidx.Ranked, bool) {
	rs, _, err := s.push.RankSeeded(cacheKey, s.csr, s.csr.Epoch(), ids, ws, candidates, k)
	if err != nil {
		return nil, false
	}
	out := make([]pathidx.Ranked, len(rs))
	for i, r := range rs {
		out[i] = pathidx.Ranked{Node: r.Node, Score: r.Score}
	}
	return out, true
}

// cacheAdd stores a fresh ranking under its key together with a copy of
// the seed ids (the caller may reuse its slice).
func (s *GraphSnapshot) cacheAdd(cacheKey string, ids []graph.NodeID, ranked []pathidx.Ranked) {
	if cacheKey == "" {
		return
	}
	s.cache.Add(cacheKey, rankEntry{
		seeds:  append([]graph.NodeID(nil), ids...),
		ranked: ranked,
	})
}

// CacheStats snapshots the rank cache's counters. Each snapshot carries
// its own cache, so the numbers reset at every epoch swap — by design:
// they describe the serving cache, not the process lifetime.
func (s *GraphSnapshot) CacheStats() lru.Stats { return s.cache.Stats() }

// SimilaritySeeded evaluates S(vq, target) for a virtual query node.
func (s *GraphSnapshot) SimilaritySeeded(ids []graph.NodeID, ws []float64, target graph.NodeID) (float64, error) {
	if int(target) < 0 || int(target) >= s.csr.NumNodes() {
		return 0, fmt.Errorf("core: target %d out of range", target)
	}
	sc := s.pool.Get()
	defer s.pool.Put(sc)
	scores, err := sc.ScoresSeeded(ids, ws)
	if err != nil {
		return 0, err
	}
	return scores[target], nil
}

// ExplainSeeded decomposes the virtual-query similarity S(vq, target)
// into its constituent walks by enumeration over the snapshot, the
// lock-free twin of Engine.Explain. Returned paths start with graph.None
// standing in for the virtual query node. topN ≤ 0 returns all walks.
func (s *GraphSnapshot) ExplainSeeded(ids []graph.NodeID, ws []float64, target graph.NodeID, topN int) (*Explanation, error) {
	n := s.csr.NumNodes()
	if int(target) < 0 || int(target) >= n {
		return nil, fmt.Errorf("core: explain target %d out of range", target)
	}
	if len(ids) != len(ws) {
		return nil, fmt.Errorf("core: %d seed ids but %d weights", len(ids), len(ws))
	}
	c, L, maxPaths := s.opt.C, s.opt.L, s.opt.MaxPaths
	ex := &Explanation{Query: graph.None, Answer: target}
	stack := make([]graph.NodeID, 1, L+1)
	stack[0] = graph.None
	var dfs func(at graph.NodeID, depth int, prob float64) error
	dfs = func(at graph.NodeID, depth int, prob float64) error {
		if at == target {
			ex.TotalPaths++
			if ex.TotalPaths > maxPaths {
				return fmt.Errorf("%w (%d)", pathidx.ErrTooManyPaths, maxPaths)
			}
			damp := c
			for l := 0; l < depth; l++ {
				damp *= 1 - c
			}
			score := prob * damp
			ex.Similarity += score
			ex.Paths = append(ex.Paths, PathContribution{
				Path:  pathidx.Path{Nodes: append([]graph.NodeID(nil), stack...)},
				Score: score,
			})
		}
		if depth == L {
			return nil
		}
		cols, wts := s.csr.Row(at)
		for i, to := range cols {
			if wts[i] == 0 {
				continue
			}
			stack = append(stack, to)
			if err := dfs(to, depth+1, prob*wts[i]); err != nil {
				return err
			}
			stack = stack[:len(stack)-1]
		}
		return nil
	}
	for i, e := range ids {
		if ws[i] == 0 {
			continue
		}
		if int(e) < 0 || int(e) >= n {
			return nil, fmt.Errorf("core: seed %d out of range", e)
		}
		stack = append(stack[:1], e)
		if err := dfs(e, 1, ws[i]); err != nil {
			return nil, err
		}
	}
	if ex.Similarity > 0 {
		for i := range ex.Paths {
			ex.Paths[i].Fraction = ex.Paths[i].Score / ex.Similarity
		}
	}
	sort.SliceStable(ex.Paths, func(i, j int) bool {
		return ex.Paths[i].Score > ex.Paths[j].Score
	})
	if topN > 0 && len(ex.Paths) > topN {
		ex.Paths = ex.Paths[:topN]
	}
	return ex, nil
}

// publish compiles the current graph into a fresh snapshot at the next
// epoch and swaps it into the serving pointer. Only graph-mutating paths
// call it (engine construction, post-solve weight application, restore),
// all of which run under the engine's single-writer discipline.
//
// delta is the flush's final weight set (Report.Applied semantics): the
// post-change weights of every edge the flush could have touched. nil
// means the change set is unknown — the rank cache is dropped wholesale
// and the push tracker reset, exactly the pre-delta behavior. A non-nil
// delta (even empty) drives the two O(delta) paths: the incremental
// push repair and delta-aware rank-cache retention. Edges whose listed
// weight equals the previous snapshot's are discarded up front, so a
// normalization-widened Applied list costs nothing extra. If the graph
// gained nodes or edges since the previous snapshot, delta cannot be
// complete and is demoted to nil.
func (e *Engine) publish(delta []WeightChange) error {
	prev := e.serving.Load()
	e.epoch++
	csr := graph.CompileAt(e.g, e.epoch)
	pool, err := pathidx.NewScorerPool(csr, e.opt.pathOptions())
	if err != nil {
		return fmt.Errorf("core: publish snapshot: %w", err)
	}
	snap := &GraphSnapshot{
		csr:   csr,
		pool:  pool,
		cache: lru.New[string, rankEntry](e.opt.rankCacheSize()),
		opt:   e.opt,
		push:  e.push,
	}
	// A complete delta needs an unchanged structure: edges are append-only,
	// so equal node and edge counts mean the same edge set.
	var changed []ppr.EdgeDelta
	if delta != nil && prev != nil &&
		prev.csr.NumNodes() == csr.NumNodes() && prev.csr.NumEdges() == csr.NumEdges() {
		changed = edgeDeltas(prev.csr, delta)
	}
	if e.push != nil {
		start := time.Now()
		rep := e.push.Update(csr, e.epoch, changed)
		e.metrics.observePushUpdate(time.Since(start), rep)
	}
	if changed != nil {
		retained, dropped := carryRankCache(prev.cache, snap.cache, csr, changed, e.opt.L)
		e.metrics.observeRankCacheCarry(retained, dropped)
	}
	e.serving.Store(snap)
	return nil
}

// edgeDeltas resolves a flush's weight list against the previous
// snapshot into the actually-changed edges (old weight bitwise different
// from new), deduplicated last-write-wins and sorted by (From, To). The
// result is never nil: an all-unchanged list yields an empty slice,
// meaning "provably nothing moved".
func edgeDeltas(prev *graph.CSR, delta []WeightChange) []ppr.EdgeDelta {
	final := make(map[graph.EdgeKey]float64, len(delta))
	for _, wc := range delta {
		final[graph.EdgeKey{From: wc.From, To: wc.To}] = wc.Weight
	}
	changed := make([]ppr.EdgeDelta, 0, len(final))
	for k, w := range final {
		if old := prev.Weight(k.From, k.To); old != w {
			changed = append(changed, ppr.EdgeDelta{From: k.From, To: k.To, Old: old, New: w})
		}
	}
	ppr.SortEdgeDeltas(changed)
	return changed
}

// carryRankCache moves the previous snapshot's cached rankings into the
// new cache, skipping every entry whose seed set can reach the source
// endpoint of some changed edge within L−2 forward steps. Retention
// rule (DESIGN.md §16): a cached ranking was computed from walks
// virtual-query → seed → ≤L−1 graph edges; a changed edge (u,v) can
// only contribute if some seed reaches u in ≤L−2 steps, so an entry
// with no such seed is bitwise identical under the new weights. The
// reachability test is structural (weights ignored), which is
// conservative under both the old and the new weight assignment.
func carryRankCache(prev, next *lru.Cache[string, rankEntry], csr *graph.CSR, changed []ppr.EdgeDelta, l int) (retained, dropped int) {
	if len(changed) == 0 {
		// Nothing moved: every entry survives.
		prev.Range(func(k string, v rankEntry) bool {
			next.Add(k, v)
			retained++
			return true
		})
		return retained, 0
	}
	dirty := dirtySeedSet(csr, changed, l-2)
	prev.Range(func(k string, v rankEntry) bool {
		for _, s := range v.seeds {
			if _, bad := dirty[s]; bad {
				dropped++
				return true
			}
		}
		next.Add(k, v)
		retained++
		return true
	})
	return retained, dropped
}

// dirtySeedSet returns every node that reaches the source endpoint of a
// changed edge within depth forward steps: a reverse BFS over the CSR's
// structural edges from the changed-edge sources. depth < 0 returns an
// empty set (L ≤ 1: no graph edge participates in any scored walk).
func dirtySeedSet(csr *graph.CSR, changed []ppr.EdgeDelta, depth int) map[graph.NodeID]struct{} {
	dirty := make(map[graph.NodeID]struct{})
	if depth < 0 {
		return dirty
	}
	// Reverse adjacency: two passes over the CSR rows.
	n := csr.NumNodes()
	counts := make([]int32, n)
	for v := 0; v < n; v++ {
		cols, _ := csr.Row(graph.NodeID(v))
		for _, u := range cols {
			counts[u]++
		}
	}
	starts := make([]int32, n+1)
	for v := 0; v < n; v++ {
		starts[v+1] = starts[v] + counts[v]
	}
	revCols := make([]graph.NodeID, starts[n])
	fill := make([]int32, n)
	copy(fill, starts[:n])
	for v := 0; v < n; v++ {
		cols, _ := csr.Row(graph.NodeID(v))
		for _, u := range cols {
			revCols[fill[u]] = graph.NodeID(v)
			fill[u]++
		}
	}
	frontier := make([]graph.NodeID, 0, len(changed))
	for _, d := range changed {
		if _, seen := dirty[d.From]; !seen {
			dirty[d.From] = struct{}{}
			frontier = append(frontier, d.From)
		}
	}
	for step := 0; step < depth && len(frontier) > 0; step++ {
		var nextFrontier []graph.NodeID
		for _, v := range frontier {
			for _, u := range revCols[starts[v]:starts[v+1]] {
				if _, seen := dirty[u]; !seen {
					dirty[u] = struct{}{}
					nextFrontier = append(nextFrontier, u)
				}
			}
		}
		frontier = nextFrontier
	}
	return dirty
}

// Serving returns the currently published snapshot. The pointer is
// swapped atomically on republication; readers may keep using a loaded
// snapshot for as long as they like (it is immutable) but should reload
// per request to observe fresh epochs.
func (e *Engine) Serving() *GraphSnapshot { return e.serving.Load() }
