package core

import (
	"fmt"
	"sort"

	"kgvote/internal/graph"
	"kgvote/internal/lru"
	"kgvote/internal/pathidx"
)

// DefaultRankCacheSize is the default capacity of the per-snapshot
// query-rank cache (Options.RankCacheSize = 0).
const DefaultRankCacheSize = 1024

// GraphSnapshot is one immutable, epoch-stamped generation of the
// engine's graph compiled for lock-free serving: a CSR of the weights, a
// scorer pool for concurrent ranking, and a bounded query-rank cache.
//
// The engine republishes a fresh snapshot (next epoch) after every
// optimization batch mutates weights; the cache is dropped wholesale with
// the old snapshot, so cached rankings can never outlive the weights they
// were computed from. A snapshot is safe for concurrent use by any number
// of goroutines.
//
// Query nodes attached to the mutable graph after the snapshot was
// compiled are intentionally absent: query nodes have no in-edges, so no
// walk between entities and answers can pass through one, and questions
// are scored against the snapshot as virtual sources (seed vectors)
// instead — see RankSeeded.
type GraphSnapshot struct {
	csr   *graph.CSR
	pool  *pathidx.ScorerPool
	cache *lru.Cache[string, []pathidx.Ranked]
	opt   Options
}

// Epoch returns the snapshot's generation counter. Epochs start at 1 and
// advance monotonically with every publication.
func (s *GraphSnapshot) Epoch() uint64 { return s.csr.Epoch() }

// CSR returns the compiled graph.
func (s *GraphSnapshot) CSR() *graph.CSR { return s.csr }

// Pool returns the snapshot's scorer pool for callers that manage their
// own scorer checkout (zero-allocation loops).
func (s *GraphSnapshot) Pool() *pathidx.ScorerPool { return s.pool }

// NumNodes returns the snapshot's node count.
func (s *GraphSnapshot) NumNodes() int { return s.csr.NumNodes() }

// NumEdges returns the snapshot's edge count.
func (s *GraphSnapshot) NumEdges() int { return s.csr.NumEdges() }

// RankSeeded ranks candidates for a virtual query node whose out-edges
// are (ids[i], ws[i]), equivalent to attaching the query and ranking from
// it but without mutating the graph. A non-empty cacheKey consults the
// snapshot's rank cache first, so repeated questions skip the sparse
// sweeps entirely; the returned slice may then be shared with other
// readers and must be treated as immutable. k ≤ 0 ranks all candidates.
func (s *GraphSnapshot) RankSeeded(cacheKey string, ids []graph.NodeID, ws []float64, candidates []graph.NodeID, k int) ([]pathidx.Ranked, error) {
	ranked, _, err := s.RankSeededCached(cacheKey, ids, ws, candidates, k)
	return ranked, err
}

// RankSeededCached is RankSeeded plus a cache-hit report, so callers
// (telemetry, /ask?trace=1) can distinguish a cached ranking from a
// fresh sparse sweep.
func (s *GraphSnapshot) RankSeededCached(cacheKey string, ids []graph.NodeID, ws []float64, candidates []graph.NodeID, k int) ([]pathidx.Ranked, bool, error) {
	if cacheKey != "" {
		if r, ok := s.cache.Get(cacheKey); ok {
			return r, true, nil
		}
	}
	sc := s.pool.Get()
	ranked, err := sc.RankSeeded(ids, ws, candidates, k)
	s.pool.Put(sc)
	if err != nil {
		return nil, false, err
	}
	if cacheKey != "" {
		s.cache.Add(cacheKey, ranked)
	}
	return ranked, false, nil
}

// CacheStats snapshots the rank cache's counters. Each snapshot carries
// its own cache, so the numbers reset at every epoch swap — by design:
// they describe the serving cache, not the process lifetime.
func (s *GraphSnapshot) CacheStats() lru.Stats { return s.cache.Stats() }

// SimilaritySeeded evaluates S(vq, target) for a virtual query node.
func (s *GraphSnapshot) SimilaritySeeded(ids []graph.NodeID, ws []float64, target graph.NodeID) (float64, error) {
	if int(target) < 0 || int(target) >= s.csr.NumNodes() {
		return 0, fmt.Errorf("core: target %d out of range", target)
	}
	sc := s.pool.Get()
	defer s.pool.Put(sc)
	scores, err := sc.ScoresSeeded(ids, ws)
	if err != nil {
		return 0, err
	}
	return scores[target], nil
}

// ExplainSeeded decomposes the virtual-query similarity S(vq, target)
// into its constituent walks by enumeration over the snapshot, the
// lock-free twin of Engine.Explain. Returned paths start with graph.None
// standing in for the virtual query node. topN ≤ 0 returns all walks.
func (s *GraphSnapshot) ExplainSeeded(ids []graph.NodeID, ws []float64, target graph.NodeID, topN int) (*Explanation, error) {
	n := s.csr.NumNodes()
	if int(target) < 0 || int(target) >= n {
		return nil, fmt.Errorf("core: explain target %d out of range", target)
	}
	if len(ids) != len(ws) {
		return nil, fmt.Errorf("core: %d seed ids but %d weights", len(ids), len(ws))
	}
	c, L, maxPaths := s.opt.C, s.opt.L, s.opt.MaxPaths
	ex := &Explanation{Query: graph.None, Answer: target}
	stack := make([]graph.NodeID, 1, L+1)
	stack[0] = graph.None
	var dfs func(at graph.NodeID, depth int, prob float64) error
	dfs = func(at graph.NodeID, depth int, prob float64) error {
		if at == target {
			ex.TotalPaths++
			if ex.TotalPaths > maxPaths {
				return fmt.Errorf("%w (%d)", pathidx.ErrTooManyPaths, maxPaths)
			}
			damp := c
			for l := 0; l < depth; l++ {
				damp *= 1 - c
			}
			score := prob * damp
			ex.Similarity += score
			ex.Paths = append(ex.Paths, PathContribution{
				Path:  pathidx.Path{Nodes: append([]graph.NodeID(nil), stack...)},
				Score: score,
			})
		}
		if depth == L {
			return nil
		}
		cols, wts := s.csr.Row(at)
		for i, to := range cols {
			if wts[i] == 0 {
				continue
			}
			stack = append(stack, to)
			if err := dfs(to, depth+1, prob*wts[i]); err != nil {
				return err
			}
			stack = stack[:len(stack)-1]
		}
		return nil
	}
	for i, e := range ids {
		if ws[i] == 0 {
			continue
		}
		if int(e) < 0 || int(e) >= n {
			return nil, fmt.Errorf("core: seed %d out of range", e)
		}
		stack = append(stack[:1], e)
		if err := dfs(e, 1, ws[i]); err != nil {
			return nil, err
		}
	}
	if ex.Similarity > 0 {
		for i := range ex.Paths {
			ex.Paths[i].Fraction = ex.Paths[i].Score / ex.Similarity
		}
	}
	sort.SliceStable(ex.Paths, func(i, j int) bool {
		return ex.Paths[i].Score > ex.Paths[j].Score
	})
	if topN > 0 && len(ex.Paths) > topN {
		ex.Paths = ex.Paths[:topN]
	}
	return ex, nil
}

// publish compiles the current graph into a fresh snapshot at the next
// epoch and swaps it into the serving pointer. Only graph-mutating paths
// call it (engine construction, post-solve weight application, restore),
// all of which run under the engine's single-writer discipline.
func (e *Engine) publish() error {
	e.epoch++
	csr := graph.CompileAt(e.g, e.epoch)
	pool, err := pathidx.NewScorerPool(csr, e.opt.pathOptions())
	if err != nil {
		return fmt.Errorf("core: publish snapshot: %w", err)
	}
	e.serving.Store(&GraphSnapshot{
		csr:   csr,
		pool:  pool,
		cache: lru.New[string, []pathidx.Ranked](e.opt.rankCacheSize()),
		opt:   e.opt,
	})
	return nil
}

// Serving returns the currently published snapshot. The pointer is
// swapped atomically on republication; readers may keep using a loaded
// snapshot for as long as they like (it is immutable) but should reload
// per request to observe fresh epochs.
func (e *Engine) Serving() *GraphSnapshot { return e.serving.Load() }
