package core

import (
	"math"
	"strings"
	"testing"
)

func TestExplainDecomposesSimilarity(t *testing.T) {
	g, q, answers := twoAnswer(t)
	x := answers[0]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.Explain(q, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.TotalPaths != 1 || len(ex.Paths) != 1 {
		t.Fatalf("paths = %d/%d, want 1", len(ex.Paths), ex.TotalPaths)
	}
	// The explanation's total must equal the engine's similarity.
	s, err := e.Similarity(q, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex.Similarity-s) > 1e-12 {
		t.Errorf("explanation total %v vs similarity %v", ex.Similarity, s)
	}
	if math.Abs(ex.Paths[0].Fraction-1) > 1e-12 {
		t.Errorf("single walk should carry 100%%: %v", ex.Paths[0].Fraction)
	}
}

func TestExplainOrderingAndTruncation(t *testing.T) {
	// Two walks with different weights reach the answer.
	g, q, _ := twoAnswer(t)
	a := g.Lookup("a")
	b := g.Lookup("b")
	z := g.AddNode("z")
	g.MustSetEdge(a, z, 0.9)
	g.MustSetEdge(b, z, 0.1)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.Explain(q, z, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.TotalPaths != 2 {
		t.Fatalf("paths = %d, want 2", ex.TotalPaths)
	}
	if ex.Paths[0].Score < ex.Paths[1].Score {
		t.Errorf("paths not sorted by contribution")
	}
	var fracSum float64
	for _, pc := range ex.Paths {
		fracSum += pc.Fraction
	}
	if math.Abs(fracSum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", fracSum)
	}
	// Truncation keeps the top walk only.
	top1, err := e.Explain(q, z, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top1.Paths) != 1 || top1.TotalPaths != 2 {
		t.Errorf("truncation wrong: %d/%d", len(top1.Paths), top1.TotalPaths)
	}
	// Formatting includes node names and percentages.
	out := top1.Format(g)
	for _, want := range []string{"q", "z", "->", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainUnreachable(t *testing.T) {
	g, q, _ := twoAnswer(t)
	orphan := g.AddNode("orphan")
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.Explain(q, orphan, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Similarity != 0 || ex.TotalPaths != 0 {
		t.Errorf("unreachable answer should explain to zero: %+v", ex)
	}
	// Anonymous nodes format as #id.
	if !strings.Contains(ex.Format(g), "orphan") {
		t.Errorf("named node should appear in format")
	}
}
