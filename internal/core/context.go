package core

import "context"

// stopFunc converts a context into the SGP solver's polling hook. A
// context that can never be cancelled yields nil, keeping the solver's
// hot loops branch-free in the common case.
func stopFunc(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// ctxErr wraps a pre-solve cancellation so callers (Stream.FlushCtx) can
// distinguish "nothing was applied, retry later" from solver failures.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
