package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

// countCtx is a context whose Err() flips to DeadlineExceeded after a
// fixed number of polls, making "cancelled mid-solve" deterministic
// without timers. Done() returns a non-nil (never closed) channel so
// stopFunc installs the polling hook.
type countCtx struct {
	context.Context
	done  chan struct{}
	after int64
	calls atomic.Int64
}

func newCountCtx(after int64) *countCtx {
	return &countCtx{Context: context.Background(), done: make(chan struct{}), after: after}
}

func (c *countCtx) Done() <-chan struct{} { return c.done }

func (c *countCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.DeadlineExceeded
	}
	return nil
}

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func graphWeights(g *graph.Graph) map[[2]graph.NodeID]float64 {
	m := make(map[[2]graph.NodeID]float64)
	g.Edges(func(f, to graph.NodeID, w float64) {
		m[[2]graph.NodeID{f, to}] = w
	})
	return m
}

func TestSolveMultiCtxPreSolveCancelled(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := graphWeights(g)
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.SolveMultiCtx(cancelledCtx(), []vote.Vote{v})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after := graphWeights(g)
	for k, w := range before {
		if after[k] != w {
			t.Fatalf("edge %v changed (%v -> %v) despite pre-solve cancellation", k, w, after[k])
		}
	}
}

func TestSolveMultiCtxMidSolvePartial(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	// Survive the two pre-solve ctxErr checks, then trip on an early
	// Stop poll inside the solver.
	rep, err := e.SolveMultiCtx(newCountCtx(3), []vote.Vote{v})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatalf("report not marked Partial: %+v", rep)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid after partial solve: %v", err)
	}
}

func TestSolveSplitMergeCtxPreSolveCancelled(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := graphWeights(g)
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.SolveSplitMergeCtx(cancelledCtx(), []vote.Vote{v})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after := graphWeights(g)
	for k, w := range before {
		if after[k] != w {
			t.Fatalf("edge %v changed (%v -> %v) despite pre-solve cancellation", k, w, after[k])
		}
	}
}

func TestSolveSingleCtxPartial(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	// First loop check passes, then the sub-solve's Stop poll fires:
	// the vote's solve stops at its best-so-far iterate and is applied.
	rep, err := e.SolveSingleCtx(newCountCtx(1), []vote.Vote{v, v})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatalf("report not marked Partial: %+v", rep)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid after partial solve: %v", err)
	}
}

func TestSolveSingleCtxPreSolveCancelled(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := graphWeights(g)
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.SolveSingleCtx(cancelledCtx(), []vote.Vote{v, v})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after := graphWeights(g)
	for k, w := range before {
		if after[k] != w {
			t.Fatalf("edge %v changed (%v -> %v) despite pre-solve cancellation", k, w, after[k])
		}
	}
}

// TestFlushCtxRequeuesSingleSolverRemainder is the no-admitted-vote-lost
// contract for -solver single: a deadline that expires after the first
// greedy sub-solve consumes only that vote; the unprocessed tail goes
// back to the buffer and a later flush drains it.
func TestFlushCtxRequeuesSingleSolverRemainder(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewStream(3, StreamSingle)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.PushQueue(v); err != nil {
			t.Fatal(err)
		}
	}
	// The first loop check passes; the context cancels during (or right
	// after) vote 1's processing, so the loop stops before vote 2.
	rep, err := s.FlushCtx(newCountCtx(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial || rep.Consumed != 1 {
		t.Fatalf("report Partial=%v Consumed=%d, want true/1: %+v", rep.Partial, rep.Consumed, rep)
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d after mid-batch cancellation, want 2 (remainder requeued)", s.Pending())
	}
	if s.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", s.Flushes)
	}
	// A later uncancelled flush consumes the requeued remainder.
	rep2, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep2 == nil || rep2.Votes != 2 || rep2.Consumed != 2 {
		t.Fatalf("retry flush report = %+v, want 2 votes all consumed", rep2)
	}
	if s.Pending() != 0 || s.Flushes != 2 {
		t.Fatalf("pending=%d flushes=%d after retry, want 0/2", s.Pending(), s.Flushes)
	}
}

func TestFlushCtxRestoresVotesOnCancel(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewStream(10, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.PushQueue(v); err != nil {
			t.Fatal(err)
		}
	}
	_, err = s.FlushCtx(cancelledCtx())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d after cancelled flush, want 3 (votes restored)", s.Pending())
	}
	if s.Flushes != 0 {
		t.Fatalf("flushes = %d, want 0", s.Flushes)
	}
	// A later uncancelled flush consumes the restored votes.
	rep, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Votes != 3 {
		t.Fatalf("retry flush report = %+v, want 3 votes", rep)
	}
	if s.Pending() != 0 || s.Flushes != 1 {
		t.Fatalf("pending=%d flushes=%d after retry, want 0/1", s.Pending(), s.Flushes)
	}
}

func TestPushQueueNeverFlushes(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewStream(2, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.PushQueue(v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 5 || s.Flushes != 0 {
		t.Fatalf("pending=%d flushes=%d, want 5/0 (PushQueue must never solve)", s.Pending(), s.Flushes)
	}
	if !s.NeedsFlush() {
		t.Fatal("NeedsFlush() = false with 5 pending and batch 2")
	}
}
