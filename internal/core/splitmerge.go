package core

import (
	"fmt"
	"math"
	"sync"

	"kgvote/internal/cluster"
	"kgvote/internal/graph"
	"kgvote/internal/sgp"
	"kgvote/internal/vote"
)

// clusterResult is the outcome of one per-cluster SGP solve.
type clusterResult struct {
	votes  int
	deltas map[graph.EdgeKey]float64
	rep    Report
}

// SolveSplitMerge is the split-and-merge strategy of Section VI: votes are
// clustered by the Jaccard similarity of their edge sets with affinity
// propagation (preference = median similarity); each cluster becomes an
// independent multi-vote SGP (solved in parallel when Options.Workers >
// 1); per-edge weight deltas are merged with the paper's vote-weighted
// sign rule and applied once.
func (e *Engine) SolveSplitMerge(votes []vote.Vote) (*Report, error) {
	report := &Report{Votes: len(votes)}
	kept, discarded, err := e.filterVotes(votes)
	if err != nil {
		return nil, err
	}
	report.Discarded = len(discarded)
	if len(kept) == 0 {
		return report, nil
	}

	clusters, err := e.clusterVotes(kept)
	if err != nil {
		return nil, err
	}
	report.Clusters = len(clusters)
	for _, cl := range clusters {
		e.metrics.observeCluster(len(cl))
	}

	results := make([]clusterResult, len(clusters))
	if e.opt.Workers <= 1 || len(clusters) == 1 {
		for i, cl := range clusters {
			res, err := e.solveCluster(cl)
			if err != nil {
				return nil, fmt.Errorf("core: cluster %d: %w", i, err)
			}
			results[i] = res
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.opt.Workers)
		errs := make([]error, len(clusters))
		for i, cl := range clusters {
			wg.Add(1)
			go func(i int, cl []vote.Vote) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				res, err := e.solveCluster(cl)
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = res
			}(i, cl)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("core: cluster %d: %w", i, err)
			}
		}
	}

	for _, res := range results {
		report.merge(res.rep)
	}
	changes := e.mergeDeltas(results)
	report.ChangedEdges = len(changes)
	applied, err := e.applyWeights(changes)
	report.Applied = applied
	return report, err
}

// clusterVotes computes E(t) per vote, the pairwise Jaccard similarities,
// and runs affinity propagation; it returns the votes grouped by cluster.
func (e *Engine) clusterVotes(votes []vote.Vote) ([][]vote.Vote, error) {
	if len(votes) == 1 {
		return [][]vote.Vote{votes}, nil
	}
	sets := make([]map[graph.EdgeKey]struct{}, len(votes))
	for i, v := range votes {
		set, err := vote.EdgeSet(e.g, v, e.opt.pathOptions())
		if err != nil {
			return nil, fmt.Errorf("core: edge set of vote %d: %w", i, err)
		}
		sets[i] = set
	}
	n := len(votes)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := vote.Similarity(sets[i], sets[j])
			sim[i][j], sim[j][i] = s, s
		}
	}
	var res cluster.Result
	var err error
	switch e.opt.Cluster {
	case KMedoidsCluster:
		k := e.opt.ClusterK
		if k == 0 {
			k = int(math.Ceil(math.Sqrt(float64(n))))
		}
		if k > n {
			k = n
		}
		res, err = cluster.KMedoids(sim, k, 0)
	default:
		res, err = cluster.AffinityPropagation(sim, cluster.MedianPreference(sim), cluster.Options{})
	}
	if err != nil {
		return nil, fmt.Errorf("core: clustering votes: %w", err)
	}
	groups := res.Clusters()
	out := make([][]vote.Vote, 0, len(groups))
	for _, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		g := make([]vote.Vote, 0, len(idxs))
		for _, i := range idxs {
			g = append(g, votes[i])
		}
		out = append(out, g)
	}
	return out, nil
}

// solveCluster runs the multi-vote encoding and solve for one cluster's
// votes against the engine's current graph, returning weight deltas
// relative to the current weights. The graph is only read, never written,
// so cluster solves can run concurrently.
func (e *Engine) solveCluster(votes []vote.Vote) (clusterResult, error) {
	res := clusterResult{votes: len(votes), deltas: make(map[graph.EdgeKey]float64)}
	p := e.newProgram()
	for i, v := range votes {
		n, err := e.encodeVote(p, v, true)
		if err != nil {
			return res, fmt.Errorf("encoding vote %d: %w", i, err)
		}
		res.rep.Constraints += n
		res.rep.Encoded++
	}
	e.addCapacityConstraints(p)
	sol, err := p.Solve(sgp.SolveOptions{Mode: e.opt.Mode, AL: e.opt.AL})
	if err != nil {
		return res, err
	}
	res.rep.Variables = p.NumVars()
	for _, ok := range sol.SoftSatisfied {
		if ok {
			res.rep.Satisfied++
		}
	}
	res.rep.Outer = sol.Outer
	res.rep.InnerIters = sol.InnerIters
	for i, v := range p.Vars {
		if v.Kind != sgp.EdgeVar {
			continue
		}
		if d := sol.X[i] - v.Init; d != 0 {
			res.deltas[v.Edge] = d
		}
	}
	return res, nil
}

// mergeDeltas implements the merge strategy of Section VI-A: an edge
// changed in a single cluster takes that change; an edge changed in
// several clusters takes the maximum change if the vote-weighted sum
// Σ_C n_C·Δx_C is non-negative, otherwise the minimum.
func (e *Engine) mergeDeltas(results []clusterResult) map[graph.EdgeKey]float64 {
	type acc struct {
		weighted float64 // Σ n_C · Δ_C
		votes    int     // Σ n_C over clusters that changed the edge
		min, max float64
		count    int
	}
	accs := make(map[graph.EdgeKey]*acc)
	for _, res := range results {
		for k, d := range res.deltas {
			a, ok := accs[k]
			if !ok {
				a = &acc{min: d, max: d}
				accs[k] = a
			} else {
				if d < a.min {
					a.min = d
				}
				if d > a.max {
					a.max = d
				}
			}
			a.weighted += float64(res.votes) * d
			a.votes += res.votes
			a.count++
		}
	}
	changes := make(map[graph.EdgeKey]float64, len(accs))
	for k, a := range accs {
		var delta float64
		switch {
		case a.count == 1:
			delta = a.max // the single recorded change (min == max)
		case e.opt.Merge == AverageDeltas:
			delta = a.weighted / float64(a.votes)
		case a.weighted >= 0:
			delta = a.max
		default:
			delta = a.min
		}
		w := e.g.Weight(k.From, k.To) + delta
		if w < sgp.DefaultLowerBound {
			w = sgp.DefaultLowerBound
		}
		if w > sgp.DefaultUpperBound {
			w = sgp.DefaultUpperBound
		}
		changes[k] = w
	}
	return changes
}
