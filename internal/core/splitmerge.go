package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"kgvote/internal/cluster"
	"kgvote/internal/graph"
	"kgvote/internal/sgp"
	"kgvote/internal/signomial"
	"kgvote/internal/vote"
)

// clusterResult is the outcome of one per-cluster SGP solve.
type clusterResult struct {
	votes  int
	deltas map[graph.EdgeKey]float64
	rep    Report
}

// SolveSplitMerge is the split-and-merge strategy of Section VI: votes are
// clustered by the Jaccard similarity of their edge sets with affinity
// propagation (preference = median similarity); each cluster becomes an
// independent multi-vote SGP; per-edge weight deltas are merged with the
// paper's vote-weighted sign rule and applied once.
//
// The whole pre-solve pipeline is parallel when Options.Workers > 1:
// walk enumeration (once per query, shared cache), judgment filtering,
// per-vote edge sets, the O(n²) Jaccard similarity matrix, and the
// per-cluster solves all fan out over a bounded worker pool. Results are
// collected into index-addressed slots, so the merged outcome is
// byte-identical to a Workers=1 run.
func (e *Engine) SolveSplitMerge(votes []vote.Vote) (*Report, error) {
	return e.SolveSplitMergeCtx(context.Background(), votes)
}

// SolveSplitMergeCtx is SolveSplitMerge with deadline propagation: a
// context cancelled before the per-cluster solves start aborts with the
// context error (nothing applied); cancelled during the solve stage each
// in-flight cluster returns its best-so-far iterate and not-yet-started
// clusters contribute their initial weights (zero deltas), so the merge
// still applies a coherent weight set, marked Partial.
func (e *Engine) SolveSplitMergeCtx(ctx context.Context, votes []vote.Vote) (*Report, error) {
	// The per-cluster solves either all contribute (possibly best-so-far)
	// or the whole flush errors, so any returned report consumed every vote.
	report := &Report{Votes: len(votes), Consumed: len(votes)}

	tEnum := time.Now()
	fc, err := e.newFlushEnum(votes)
	if err != nil {
		return nil, err
	}
	report.EnumSeconds = time.Since(tEnum).Seconds()
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: split-merge flush cancelled before judgment: %w", err)
	}

	tJudge := time.Now()
	kept, discarded, err := e.filterVotes(votes, fc)
	if err != nil {
		return nil, err
	}
	report.JudgeSeconds = time.Since(tJudge).Seconds()
	report.Discarded = len(discarded)
	report.KeptVotes, report.RejectedVotes = kept, discarded
	if len(kept) == 0 {
		e.finishFlush(report, fc)
		return report, nil
	}

	tCluster := time.Now()
	clusters, err := e.clusterVotes(kept, fc)
	if err != nil {
		return nil, err
	}
	report.ClusterSeconds = time.Since(tCluster).Seconds()
	report.Clusters = len(clusters)
	for _, cl := range clusters {
		e.metrics.observeCluster(len(cl))
	}
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: split-merge flush cancelled before solve: %w", err)
	}

	// Per-cluster solves: min(Workers, clusters) goroutines pulling
	// cluster indices from a shared channel (no goroutine-per-cluster
	// spawn storm, no semaphore).
	tSolve := time.Now()
	results := make([]clusterResult, len(clusters))
	err = runIndexed(e.opt.Workers, len(clusters), func(i int) error {
		res, err := e.solveCluster(ctx, clusters[i], fc)
		if err != nil {
			return fmt.Errorf("core: cluster %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	report.SolveSeconds = time.Since(tSolve).Seconds()

	tMerge := time.Now()
	for _, res := range results {
		report.merge(res.rep)
	}
	changes := e.mergeDeltas(results)
	report.ChangedEdges = len(changes)
	applied, err := e.applyWeights(changes)
	report.Applied = applied
	report.MergeSeconds = time.Since(tMerge).Seconds()
	e.finishFlush(report, fc)
	return report, err
}

// clusterVotes computes E(t) per vote, the pairwise Jaccard similarities,
// and runs affinity propagation; it returns the votes grouped by cluster.
// Edge-set computation and similarity rows are embarrassingly parallel
// and fan out over Options.Workers; every worker writes disjoint
// index-addressed slots, so the similarity matrix — and therefore the
// clustering — is identical to a sequential run.
func (e *Engine) clusterVotes(votes []vote.Vote, fc *flushEnum) ([][]vote.Vote, error) {
	if len(votes) == 1 {
		return [][]vote.Vote{votes}, nil
	}
	sets := make([]map[graph.EdgeKey]struct{}, len(votes))
	err := runIndexed(e.opt.Workers, len(votes), func(i int) error {
		set, err := e.voteEdgeSet(votes[i], fc)
		if err != nil {
			return fmt.Errorf("core: edge set of vote %d: %w", i, err)
		}
		sets[i] = set
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := len(votes)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	_ = runIndexed(e.opt.Workers, n, func(i int) error {
		for j := i + 1; j < n; j++ {
			s := vote.Similarity(sets[i], sets[j])
			sim[i][j], sim[j][i] = s, s
		}
		return nil
	})
	var res cluster.Result
	switch e.opt.Cluster {
	case KMedoidsCluster:
		k := e.opt.ClusterK
		if k == 0 {
			k = int(math.Ceil(math.Sqrt(float64(n))))
		}
		if k > n {
			k = n
		}
		res, err = cluster.KMedoids(sim, k, 0)
	default:
		res, err = cluster.AffinityPropagation(sim, cluster.MedianPreference(sim), cluster.Options{})
	}
	if err != nil {
		return nil, fmt.Errorf("core: clustering votes: %w", err)
	}
	groups := res.Clusters()
	out := make([][]vote.Vote, 0, len(groups))
	for _, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		g := make([]vote.Vote, 0, len(idxs))
		for _, i := range idxs {
			g = append(g, votes[i])
		}
		out = append(out, g)
	}
	return out, nil
}

// voteEdgeSet computes E(t) for one vote, served from the flush's walk
// cache when available.
func (e *Engine) voteEdgeSet(v vote.Vote, fc *flushEnum) (map[graph.EdgeKey]struct{}, error) {
	if fc == nil {
		return vote.EdgeSet(e.g, v, e.opt.pathOptions())
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	paths, err := fc.paths(e, v.Query, v.Ranked)
	if err != nil {
		return nil, err
	}
	return vote.EdgeSetFromPaths(v, paths), nil
}

// solveCluster runs the multi-vote encoding and solve for one cluster's
// votes against the engine's current graph, returning weight deltas
// relative to the current weights. The graph is only read, never written,
// so cluster solves can run concurrently.
func (e *Engine) solveCluster(ctx context.Context, votes []vote.Vote, fc *flushEnum) (clusterResult, error) {
	res := clusterResult{votes: len(votes), deltas: make(map[graph.EdgeKey]float64)}
	p := e.newProgram()
	b := &signomial.Builder{}
	for i, v := range votes {
		n, err := e.encodeVote(p, v, true, fc, b)
		if err != nil {
			return res, fmt.Errorf("encoding vote %d: %w", i, err)
		}
		res.rep.Constraints += n
		res.rep.Encoded++
	}
	e.addCapacityConstraints(p)
	sol, err := e.solver().SolveProgram(ctx, p, e.solveParams())
	if err != nil {
		return res, err
	}
	res.rep.Partial = sol.Stopped
	res.rep.Variables = p.NumVars()
	for _, ok := range sol.SoftSatisfied {
		if ok {
			res.rep.Satisfied++
		}
	}
	res.rep.Outer = sol.Outer
	res.rep.InnerIters = sol.InnerIters
	for i, v := range p.Vars {
		if v.Kind != sgp.EdgeVar {
			continue
		}
		if d := sol.X[i] - v.Init; d != 0 {
			res.deltas[v.Edge] = d
		}
	}
	e.putProgram(p)
	return res, nil
}

// mergeDeltas implements the merge strategy of Section VI-A: an edge
// changed in a single cluster takes that change; an edge changed in
// several clusters takes the maximum change if the vote-weighted sum
// Σ_C n_C·Δx_C is non-negative, otherwise the minimum. Results are
// folded in cluster order, keeping the accumulated float sums — and so
// the merged weights — deterministic under parallel solves.
func (e *Engine) mergeDeltas(results []clusterResult) map[graph.EdgeKey]float64 {
	type acc struct {
		weighted float64 // Σ n_C · Δ_C
		votes    int     // Σ n_C over clusters that changed the edge
		single   float64 // the one recorded delta while count == 1
		min, max float64
		count    int
	}
	accs := make(map[graph.EdgeKey]*acc)
	for _, res := range results {
		for k, d := range res.deltas {
			a, ok := accs[k]
			if !ok {
				a = &acc{single: d, min: d, max: d}
				accs[k] = a
			} else {
				if d < a.min {
					a.min = d
				}
				if d > a.max {
					a.max = d
				}
			}
			a.weighted += float64(res.votes) * d
			a.votes += res.votes
			a.count++
		}
	}
	changes := make(map[graph.EdgeKey]float64, len(accs))
	for k, a := range accs {
		var delta float64
		switch {
		case a.count == 1:
			delta = a.single
		case e.opt.Merge == AverageDeltas:
			delta = a.weighted / float64(a.votes)
		case a.weighted >= 0:
			delta = a.max
		default:
			delta = a.min
		}
		// Every branch funnels through the same bound clamp: the picked
		// delta keeps the weight inside the solver's box under VoteWeighted
		// (each recorded delta came from a bounded solve against the same
		// pre-flush weight), but the AverageDeltas combination is a new
		// point that float rounding can push past a bound.
		changes[k] = clampWeight(e.g.Weight(k.From, k.To) + delta)
	}
	return changes
}

// clampWeight pins a merged weight back into the SGP's default box.
func clampWeight(w float64) float64 {
	if w < sgp.DefaultLowerBound {
		return sgp.DefaultLowerBound
	}
	if w > sgp.DefaultUpperBound {
		return sgp.DefaultUpperBound
	}
	return w
}
