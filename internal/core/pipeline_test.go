package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/telemetry"
	"kgvote/internal/vote"
)

func TestRunIndexed(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var sum atomic.Int64
		if err := runIndexed(workers, 100, func(i int) error {
			sum.Add(int64(i))
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.Load() != 4950 {
			t.Errorf("workers=%d: sum = %d, want 4950", workers, sum.Load())
		}
	}
	if err := runIndexed(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Errorf("n=0 should be a no-op: %v", err)
	}
	// The lowest-index error wins regardless of scheduling.
	wantErr := errors.New("err-3")
	err := runIndexed(4, 10, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("err-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
}

// regionGraph builds n disjoint query regions, each shaped like
// twoAnswer, and returns one negative vote per region.
func regionGraph(t *testing.T, n int) (*graph.Graph, []vote.Vote) {
	t.Helper()
	g := graph.New(0)
	votes := make([]vote.Vote, 0, n)
	for i := 0; i < n; i++ {
		q := g.AddNodes(5)
		a, b, x, y := q+1, q+2, q+3, q+4
		g.MustSetEdge(q, a, 0.6)
		g.MustSetEdge(q, b, 0.4)
		g.MustSetEdge(a, x, 1)
		g.MustSetEdge(b, y, 1)
		votes = append(votes, vote.Vote{
			Kind: vote.Negative, Query: q,
			Ranked: []graph.NodeID{x, y}, Best: y,
		})
	}
	return g, votes
}

// The tentpole contract: one flush runs Enumerate exactly once per
// distinct query node, no matter how many votes share a query or how
// many stages (judge, edge set, encode) need the walks.
func TestFlushEnumeratesOncePerQuery(t *testing.T) {
	for _, solver := range []string{"multi", "sm"} {
		for _, workers := range []int{1, 4} {
			g, votes := regionGraph(t, 3)
			// A second vote on region 0's query: same query node must not
			// enumerate twice.
			dup := votes[0]
			votes = append(votes, dup)
			e, err := New(g, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			before := pathidx.EnumerateCalls()
			switch solver {
			case "multi":
				_, err = e.SolveMulti(votes)
			case "sm":
				_, err = e.SolveSplitMerge(votes)
			}
			if err != nil {
				t.Fatalf("%s workers=%d: %v", solver, workers, err)
			}
			distinctQueries := uint64(3)
			if got := pathidx.EnumerateCalls() - before; got != distinctQueries {
				t.Errorf("%s workers=%d: Enumerate ran %d times, want %d",
					solver, workers, got, distinctQueries)
			}
		}
	}
}

// Disabling the cache restores the legacy multi-enumeration flush and
// must still produce the same graph (the ablation baseline is honest).
func TestFlushNoEnumCacheLegacyPath(t *testing.T) {
	g, votes := regionGraph(t, 2)
	e, err := New(g, Options{NoEnumCache: true})
	if err != nil {
		t.Fatal(err)
	}
	before := pathidx.EnumerateCalls()
	rep, err := e.SolveSplitMerge(votes)
	if err != nil {
		t.Fatal(err)
	}
	if got := pathidx.EnumerateCalls() - before; got <= 2 {
		t.Errorf("legacy path enumerated only %d times; cache knob has no effect", got)
	}
	if rep.EnumCacheHits != 0 || rep.EnumCacheMisses != 0 {
		t.Errorf("cache counters nonzero without a cache: %+v", rep)
	}
}

// Golden determinism: the parallel pipeline and the enumeration cache
// must leave the graph byte-identical to the sequential, cache-free
// solve — same weights bitwise, same rankings.
func TestFlushParallelMatchesSequentialBitwise(t *testing.T) {
	type variant struct {
		name string
		opt  Options
	}
	variants := []variant{
		{"legacy", Options{Workers: 1, NoEnumCache: true}},
		{"cached-seq", Options{Workers: 1}},
		{"cached-par", Options{Workers: 4}},
	}
	for _, solver := range []string{"multi", "sm"} {
		weights := make([]map[graph.EdgeKey]float64, len(variants))
		for vi, va := range variants {
			g, votes := regionGraph(t, 4)
			e, err := New(g, va.opt)
			if err != nil {
				t.Fatal(err)
			}
			var rep *Report
			switch solver {
			case "multi":
				rep, err = e.SolveMulti(votes)
			case "sm":
				rep, err = e.SolveSplitMerge(votes)
			}
			if err != nil {
				t.Fatalf("%s/%s: %v", solver, va.name, err)
			}
			if rep.Encoded != 4 {
				t.Fatalf("%s/%s: encoded = %d, want 4", solver, va.name, rep.Encoded)
			}
			w := make(map[graph.EdgeKey]float64)
			g.Edges(func(from, to graph.NodeID, wt float64) {
				w[graph.EdgeKey{From: from, To: to}] = wt
			})
			weights[vi] = w
		}
		for vi := 1; vi < len(variants); vi++ {
			if len(weights[vi]) != len(weights[0]) {
				t.Fatalf("%s/%s: edge count %d != legacy %d",
					solver, variants[vi].name, len(weights[vi]), len(weights[0]))
			}
			for k, w0 := range weights[0] {
				if w, ok := weights[vi][k]; !ok || w != w0 {
					t.Errorf("%s/%s: edge %v weight %v != legacy %v (bitwise)",
						solver, variants[vi].name, k, w, w0)
				}
			}
		}
	}
}

// Report carries the stage timings and cache counters, and the engine's
// metrics publish them to the registry.
func TestFlushStageTelemetry(t *testing.T) {
	g, votes := regionGraph(t, 3)
	e, err := New(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	e.SetMetrics(m)
	rep, err := e.SolveSplitMerge(votes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnumCacheMisses != 3 {
		t.Errorf("misses = %d, want 3 (one per query)", rep.EnumCacheMisses)
	}
	// Judge (3) + edge sets (3) + encodes (3) all served from the cache.
	if rep.EnumCacheHits < 6 {
		t.Errorf("hits = %d, want ≥ 6", rep.EnumCacheHits)
	}
	for name, v := range map[string]float64{
		"enum":    rep.EnumSeconds,
		"judge":   rep.JudgeSeconds,
		"cluster": rep.ClusterSeconds,
		"solve":   rep.SolveSeconds,
		"merge":   rep.MergeSeconds,
	} {
		if v < 0 {
			t.Errorf("stage %s seconds = %v, want ≥ 0", name, v)
		}
	}
	if rep.SolveSeconds == 0 {
		t.Errorf("solve stage not timed")
	}
	if got := m.EnumCacheHits.Value(); uint64(got) != rep.EnumCacheHits {
		t.Errorf("metrics hits = %d, report %d", got, rep.EnumCacheHits)
	}
	if got := m.EnumCacheMisses.Value(); uint64(got) != rep.EnumCacheMisses {
		t.Errorf("metrics misses = %d, report %d", got, rep.EnumCacheMisses)
	}
	for stage, h := range map[string]*telemetry.Histogram{
		"enumerate": m.StageEnum,
		"judge":     m.StageJudge,
		"cluster":   m.StageCluster,
		"solve":     m.StageSolve,
		"merge":     m.StageMerge,
	} {
		if h.Count() != 1 {
			t.Errorf("stage %s histogram count = %d, want 1", stage, h.Count())
		}
	}
	// Report.merge folds the new fields.
	a := Report{EnumSeconds: 1, SolveSeconds: 2, EnumCacheHits: 3, EnumCacheMisses: 1}
	b := &Report{EnumSeconds: 0.5, SolveSeconds: 1, EnumCacheHits: 2, EnumCacheMisses: 1}
	a.merge(*b)
	if a.EnumSeconds != 1.5 || a.SolveSeconds != 3 || a.EnumCacheHits != 5 || a.EnumCacheMisses != 2 {
		t.Errorf("merge dropped flush fields: %+v", a)
	}
}
