package core

import (
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

// servingFixture builds an engine over the twoAnswer graph. The "query"
// node q is part of the host graph here, which lets tests compare the
// attached-query path with the virtual-seed path: seeds mirror q's
// out-edges.
func servingFixture(t testing.TB) (*Engine, graph.NodeID, []graph.NodeID, []graph.NodeID, []float64) {
	t.Helper()
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{K: 5, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ids []graph.NodeID
	var ws []float64
	for _, out := range g.Out(q) {
		ids = append(ids, out.To)
		ws = append(ws, out.Weight)
	}
	return e, q, answers, ids, ws
}

func TestServingPublishedAtConstruction(t *testing.T) {
	e, _, _, _, _ := servingFixture(t)
	snap := e.Serving()
	if snap == nil {
		t.Fatal("no snapshot published at construction")
	}
	if snap.Epoch() != 1 {
		t.Errorf("initial epoch = %d, want 1", snap.Epoch())
	}
	if snap.NumNodes() != e.Graph().NumNodes() || snap.NumEdges() != e.Graph().NumEdges() {
		t.Errorf("snapshot shape %d/%d vs graph %d/%d",
			snap.NumNodes(), snap.NumEdges(), e.Graph().NumNodes(), e.Graph().NumEdges())
	}
}

func TestRankSeededMatchesEngineRank(t *testing.T) {
	e, q, answers, ids, ws := servingFixture(t)
	want, err := e.RankAll(q, answers)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Serving().RankSeeded("", ids, ws, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d ranked, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Node != want[i].Node {
			t.Errorf("rank %d: snapshot %d, engine %d", i, got[i].Node, want[i].Node)
		}
		if d := got[i].Score - want[i].Score; d > 1e-12 || d < -1e-12 {
			t.Errorf("rank %d: score %.15f vs %.15f", i, got[i].Score, want[i].Score)
		}
	}
}

func TestRankSeededCache(t *testing.T) {
	e, _, answers, ids, ws := servingFixture(t)
	snap := e.Serving()
	first, err := snap.RankSeeded("key", ids, ws, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := snap.RankSeeded("key", ids, ws, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &second[0] {
		t.Error("cache miss on identical key: sweeps were repeated")
	}
	// Distinct key recomputes.
	third, err := snap.RankSeeded("other", ids, ws, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] == &third[0] {
		t.Error("different keys shared a cache entry")
	}
}

func TestRankSeededCacheDisabled(t *testing.T) {
	g, q, _ := twoAnswer(t)
	_ = q
	e, err := New(g, Options{K: 5, L: 4, RankCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Serving()
	ids := []graph.NodeID{1}
	ws := []float64{1}
	answers := []graph.NodeID{3, 4}
	first, err := snap.RankSeeded("key", ids, ws, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := snap.RankSeeded("key", ids, ws, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] == &second[0] {
		t.Error("disabled cache returned a shared slice")
	}
}

// TestEpochAdvancesOnSolve verifies that every optimization batch
// republishes the snapshot at the next epoch and that the new snapshot
// reflects the new weights while the old one keeps the old weights.
func TestEpochAdvancesOnSolve(t *testing.T) {
	e, q, answers, ids, ws := servingFixture(t)
	old := e.Serving()
	v, err := vote.FromRanking(q, answers, answers[1]) // prefer the loser
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SolveSingle([]vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	cur := e.Serving()
	if cur.Epoch() <= old.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", old.Epoch(), cur.Epoch())
	}
	oldRank, err := old.RankSeeded("", ids, ws, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	newRank, err := cur.RankSeeded("", ids, ws, answers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oldRank[0].Node != answers[0] {
		t.Errorf("old snapshot mutated: top answer %d", oldRank[0].Node)
	}
	if newRank[0].Node != answers[1] {
		t.Errorf("vote did not take effect in new snapshot: top answer %d", newRank[0].Node)
	}

	// Restore also republishes.
	before := e.epoch
	if err := e.Restore(e.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if e.Serving().Epoch() != before+1 {
		t.Errorf("restore did not republish: epoch %d, want %d", e.Serving().Epoch(), before+1)
	}
}

func TestExplainSeededMatchesExplain(t *testing.T) {
	e, q, answers, ids, ws := servingFixture(t)
	want, err := e.Explain(q, answers[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Serving().ExplainSeeded(ids, ws, answers[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalPaths != want.TotalPaths {
		t.Errorf("total paths %d vs %d", got.TotalPaths, want.TotalPaths)
	}
	if d := got.Similarity - want.Similarity; d > 1e-12 || d < -1e-12 {
		t.Errorf("similarity %.15f vs %.15f", got.Similarity, want.Similarity)
	}
	if len(got.Paths) != len(want.Paths) {
		t.Fatalf("path count %d vs %d", len(got.Paths), len(want.Paths))
	}
	for i := range got.Paths {
		if d := got.Paths[i].Score - want.Paths[i].Score; d > 1e-12 || d < -1e-12 {
			t.Errorf("path %d score %.15f vs %.15f", i, got.Paths[i].Score, want.Paths[i].Score)
		}
		gp, wp := got.Paths[i].Path.Nodes, want.Paths[i].Path.Nodes
		if len(gp) != len(wp) {
			t.Fatalf("path %d length %d vs %d", i, len(gp), len(wp))
		}
		if gp[0] != graph.None {
			t.Errorf("seeded path %d does not start with the virtual query: %v", i, gp)
		}
		for j := 1; j < len(gp); j++ {
			if gp[j] != wp[j] {
				t.Errorf("path %d node %d: %d vs %d", i, j, gp[j], wp[j])
			}
		}
	}

	if _, err := e.Serving().ExplainSeeded(ids, ws, graph.NodeID(99), 0); err == nil {
		t.Error("out-of-range target accepted")
	}
}
