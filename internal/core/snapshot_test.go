package core

import (
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

func TestSnapshotRestore(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SolveMulti([]vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	diff := e.Diff(snap, 1e-9)
	if len(diff) == 0 {
		t.Fatalf("solve changed nothing")
	}
	for k, pair := range diff {
		if pair[0] == pair[1] {
			t.Errorf("diff %v reports equal weights", k)
		}
	}
	if r, _ := e.RankOf(q, y, answers); r != 1 {
		t.Fatalf("premise broken: vote did not flip ranking")
	}
	// Roll back: the original ranking returns and the diff empties.
	if err := e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if r, _ := e.RankOf(q, y, answers); r != 2 {
		t.Errorf("restore did not revert the ranking: rank %d", r)
	}
	if len(e.Diff(snap, 1e-12)) != 0 {
		t.Errorf("diff after restore should be empty")
	}
}

func TestSnapshotSurvivesGraphGrowth(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	// Grow the graph after the snapshot: restore must not touch new edges.
	n := g.AddNodes(1)
	g.MustSetEdge(q, n, 0.123)
	if err := e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if g.Weight(q, n) != 0.123 {
		t.Errorf("restore clobbered a post-snapshot edge")
	}
	_ = answers
}

func TestRestoreNilAndMissingEdge(t *testing.T) {
	g, _, _ := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(nil); err == nil {
		t.Errorf("nil snapshot should fail")
	}
	snap := e.Snapshot()
	// Fabricate a snapshot edge that does not exist in the graph.
	snap.weights[graph.EdgeKey{From: 0, To: 0}] = 0.5
	if err := e.Restore(snap); err == nil {
		t.Errorf("missing edge should fail")
	}
	if e.Diff(nil, 0) == nil {
		t.Errorf("Diff(nil) should return an empty map, not nil")
	}
}
