package core

import (
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

func TestStreamBatching(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(2, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.Push(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatalf("first push should buffer, got report %+v", rep)
	}
	if st.Pending() != 1 || st.TotalVotes != 1 {
		t.Errorf("pending=%d total=%d", st.Pending(), st.TotalVotes)
	}
	// Second vote fills the batch and triggers a solve.
	rep, err = st.Push(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatalf("batch-filling push should solve")
	}
	if st.Pending() != 0 || st.Flushes != 1 {
		t.Errorf("pending=%d flushes=%d", st.Pending(), st.Flushes)
	}
	if r, _ := e.RankOf(q, y, answers); r != 1 {
		t.Errorf("streamed votes did not optimize: rank %d", r)
	}
}

func TestStreamFlushPartial(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(10, StreamSplitMerge)
	if err != nil {
		t.Fatal(err)
	}
	// Empty flush is a no-op.
	rep, err := st.Flush()
	if err != nil || rep != nil {
		t.Fatalf("empty flush: %v %v", rep, err)
	}
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Push(v); err != nil {
		t.Fatal(err)
	}
	rep, err = st.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Votes != 1 {
		t.Fatalf("partial flush report: %+v", rep)
	}
	if r, _ := e.RankOf(q, y, answers); r != 1 {
		t.Errorf("flushed vote did not optimize: rank %d", r)
	}
}

func TestStreamSingleSolver(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(1, StreamSingle)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.Push(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Encoded != 1 {
		t.Fatalf("batch=1 should solve immediately: %+v", rep)
	}
}

func TestStreamValidation(t *testing.T) {
	g, _, _ := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewStream(0, StreamMulti); err == nil {
		t.Errorf("batch 0 should fail")
	}
	if _, err := e.NewStream(1, StreamSolver(9)); err == nil {
		t.Errorf("unknown solver should fail")
	}
	st, err := e.NewStream(1, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	bad := vote.Vote{Kind: vote.Negative, Ranked: []graph.NodeID{1}, Best: 9}
	if _, err := st.Push(bad); err == nil {
		t.Errorf("invalid vote should fail")
	}
}

// Streaming the same votes in two batches should end up close to the
// one-shot multi-vote result in effectiveness (both flip the ranking).
func TestStreamEquivalentEffect(t *testing.T) {
	build := func() (*Engine, graph.NodeID, []graph.NodeID) {
		g, q, answers := twoAnswer(t)
		e, err := New(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return e, q, answers
	}
	e1, q1, a1 := build()
	v1, err := e1.CollectVote(q1, a1, a1[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.SolveMulti([]vote.Vote{v1, v1}); err != nil {
		t.Fatal(err)
	}
	r1, _ := e1.RankOf(q1, a1[1], a1)

	e2, q2, a2 := build()
	st, err := e2.NewStream(1, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e2.CollectVote(q2, a2, a2[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Push(v2); err != nil {
		t.Fatal(err)
	}
	// The second streamed vote is collected against the UPDATED graph.
	after, err := e2.Rank(q2, a2)
	if err != nil {
		t.Fatal(err)
	}
	list := make([]graph.NodeID, len(after))
	for i, r := range after {
		list[i] = r.Node
	}
	v3, err := vote.FromRanking(q2, list, a2[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Push(v3); err != nil {
		t.Fatal(err)
	}
	r2, _ := e2.RankOf(q2, a2[1], a2)
	if r1 != 1 || r2 != 1 {
		t.Errorf("one-shot rank %d, streamed rank %d; want both 1", r1, r2)
	}
}

// TestAppliedWeightsReplayIdentical pins the durability contract: applying
// a flush's Report.Applied to a pristine clone via ApplyWeightSet must
// reproduce the optimized graph bit-for-bit, without re-solving.
func TestAppliedWeightsReplayIdentical(t *testing.T) {
	g, q, answers := twoAnswer(t)
	replica := g.Clone()
	y := answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.SolveMulti([]vote.Vote{v})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Applied) == 0 {
		t.Fatal("solve reported no applied weights")
	}

	re, err := New(replica, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.ApplyWeightSet(rep.Applied); err != nil {
		t.Fatal(err)
	}
	g.Edges(func(from, to graph.NodeID, w float64) {
		if got := replica.Weight(from, to); got != w {
			t.Errorf("edge %d->%d: replica %v, original %v", from, to, got, w)
		}
	})
	if replica.NumEdges() != g.NumEdges() {
		t.Errorf("edge count: replica %d, original %d", replica.NumEdges(), g.NumEdges())
	}
	if re.Serving().Epoch() < 2 {
		t.Errorf("ApplyWeightSet did not republish the snapshot")
	}
}

func TestStreamRestore(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(3, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Restore([]vote.Vote{v, v}, 5, 1); err != nil {
		t.Fatal(err)
	}
	if st.Pending() != 2 || st.TotalVotes != 5 || st.Flushes != 1 {
		t.Fatalf("restored pending=%d total=%d flushes=%d", st.Pending(), st.TotalVotes, st.Flushes)
	}
	if got := st.PendingVotes(); len(got) != 2 {
		t.Fatalf("PendingVotes = %d", len(got))
	}
	// Restore refuses a used stream.
	if err := st.Restore(nil, 0, 0); err == nil {
		t.Error("second restore should fail")
	}
	// The next push completes the batch of three and solves.
	rep, err := st.Push(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || st.Pending() != 0 || st.Flushes != 2 {
		t.Errorf("push after restore: rep=%v pending=%d flushes=%d", rep, st.Pending(), st.Flushes)
	}
	// Restored invalid votes are rejected.
	st2, _ := e.NewStream(3, StreamMulti)
	if err := st2.Restore([]vote.Vote{{}}, 1, 0); err == nil {
		t.Error("invalid restored vote should fail")
	}
}
