package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/sgp"
	"kgvote/internal/vote"
)

// synthRandom builds a random normalized host graph. It lives here rather
// than reusing internal/synth because this internal test package cannot
// import synth (synth → qa → core would cycle).
func synthRandom(n, m int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	g.AddNodes(n)
	added := 0
	for attempts := 0; added < m && attempts < 50*m; attempts++ {
		from := graph.NodeID(rng.Intn(n))
		to := graph.NodeID(rng.Intn(n))
		if from == to || g.HasEdge(from, to) {
			continue
		}
		g.MustSetEdge(from, to, 0.1+0.9*rng.Float64())
		added++
	}
	if added == 0 {
		return nil, fmt.Errorf("no edges added")
	}
	g.NormalizeAll()
	return g, nil
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// twoAnswer builds q→a (0.6), q→b (0.4), a→x (1), b→y (1): answer x
// initially outranks answer y.
func twoAnswer(t testing.TB) (*graph.Graph, graph.NodeID, []graph.NodeID) {
	t.Helper()
	g := graph.New(0)
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x := g.AddNode("x")
	y := g.AddNode("y")
	g.MustSetEdge(q, a, 0.6)
	g.MustSetEdge(q, b, 0.4)
	g.MustSetEdge(a, x, 1)
	g.MustSetEdge(b, y, 1)
	return g, q, []graph.NodeID{x, y}
}

func TestNewValidation(t *testing.T) {
	g, _, _ := twoAnswer(t)
	if _, err := New(nil, Options{}); err == nil {
		t.Errorf("nil graph should fail")
	}
	if _, err := New(g, Options{C: 2}); err == nil {
		t.Errorf("bad C should fail")
	}
	if _, err := New(g, Options{K: 1}); err == nil {
		t.Errorf("K=1 should fail")
	}
	if _, err := New(g, Options{L: -1}); err == nil {
		t.Errorf("bad L should fail")
	}
	if _, err := New(g, Options{Margin: -1}); err == nil {
		t.Errorf("negative margin should fail")
	}
	if _, err := New(g, Options{ExtremeConst: 1.5}); err == nil {
		t.Errorf("bad extreme const should fail")
	}
	if _, err := New(g, Options{Workers: -2}); err == nil {
		t.Errorf("bad workers should fail")
	}
	if _, err := New(g, Options{Normalize: NormalizeMode(9)}); err == nil {
		t.Errorf("bad normalize mode should fail")
	}
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Options().K != 20 || e.Options().L != 5 || e.Options().C != 0.15 {
		t.Errorf("defaults not applied: %+v", e.Options())
	}
}

func TestRankAndRankOf(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := e.Rank(q, answers)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Node != answers[0] {
		t.Fatalf("x should rank first initially, got %v", ranked)
	}
	r, err := e.RankOf(q, answers[1], answers)
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 {
		t.Errorf("rank of y = %d, want 2", r)
	}
	if _, err := e.RankOf(q, 999, answers); err == nil {
		t.Errorf("unknown answer should fail")
	}
}

func TestCollectVote(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != vote.Negative || v.BestRank() != 2 {
		t.Errorf("vote = %+v, want negative at rank 2", v)
	}
	v, err = e.CollectVote(q, answers, answers[0])
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != vote.Positive {
		t.Errorf("top answer vote should be positive")
	}
}

func TestSolveSingleFlipsRanking(t *testing.T) {
	g, q, answers := twoAnswer(t)
	x, y := answers[0], answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.SolveSingle([]vote.Vote{v})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Encoded != 1 || rep.Constraints != 1 {
		t.Errorf("report = %+v", rep)
	}
	sy, err := e.Similarity(q, y)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := e.Similarity(q, x)
	if err != nil {
		t.Fatal(err)
	}
	if sy <= sx {
		t.Errorf("after optimization S(q,y)=%v should exceed S(q,x)=%v", sy, sx)
	}
	r, err := e.RankOf(q, y, answers)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("voted answer ranks %d after optimization, want 1", r)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSingleIgnoresPositive(t *testing.T) {
	g, q, answers := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := g.Clone()
	v, err := e.CollectVote(q, answers, answers[0])
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.SolveSingle([]vote.Vote{v})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Discarded != 1 || rep.Encoded != 0 {
		t.Errorf("positive vote should be skipped: %+v", rep)
	}
	before.Edges(func(f, to graph.NodeID, w float64) {
		if g.Weight(f, to) != w {
			t.Errorf("graph changed by a positive-only vote set")
		}
	})
}

func TestSolveSingleUnreachableBest(t *testing.T) {
	g, q, answers := twoAnswer(t)
	orphan := g.AddNode("orphan")
	all := append(append([]graph.NodeID(nil), answers...), orphan)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := vote.Vote{Kind: vote.Negative, Query: q, Ranked: all, Best: orphan}
	rep, err := e.SolveSingle([]vote.Vote{v})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Discarded != 1 {
		t.Errorf("unreachable best should be discarded: %+v", rep)
	}
}

func TestSolveMultiFlipsRankingAndKeepsPositive(t *testing.T) {
	// Two independent query regions: a negative vote in region 1, a
	// positive vote in region 2.
	g := graph.New(0)
	q1 := g.AddNode("q1")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x1 := g.AddNode("x1")
	y1 := g.AddNode("y1")
	g.MustSetEdge(q1, a, 0.6)
	g.MustSetEdge(q1, b, 0.4)
	g.MustSetEdge(a, x1, 1)
	g.MustSetEdge(b, y1, 1)
	q2 := g.AddNode("q2")
	c := g.AddNode("c")
	d := g.AddNode("d")
	x2 := g.AddNode("x2")
	y2 := g.AddNode("y2")
	g.MustSetEdge(q2, c, 0.7)
	g.MustSetEdge(q2, d, 0.3)
	g.MustSetEdge(c, x2, 1)
	g.MustSetEdge(d, y2, 1)

	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ans1 := []graph.NodeID{x1, y1}
	ans2 := []graph.NodeID{x2, y2}
	neg, err := e.CollectVote(q1, ans1, y1)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := e.CollectVote(q2, ans2, x2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.SolveMulti([]vote.Vote{neg, pos})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Encoded != 2 {
		t.Errorf("both votes should encode: %+v", rep)
	}
	if r, _ := e.RankOf(q1, y1, ans1); r != 1 {
		t.Errorf("negative vote's answer ranks %d, want 1", r)
	}
	if r, _ := e.RankOf(q2, x2, ans2); r != 1 {
		t.Errorf("positive vote's answer dropped to rank %d", r)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMultiDiscardsUnoptimizable(t *testing.T) {
	// b is strictly downstream of a: voting b over a can never be
	// satisfied, and the judgment algorithm must discard it.
	g := graph.New(0)
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.MustSetEdge(q, a, 0.9)
	g.MustSetEdge(a, b, 0.9)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := vote.Vote{Kind: vote.Negative, Query: q, Ranked: []graph.NodeID{a, b}, Best: b}
	rep, err := e.SolveMulti([]vote.Vote{v})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Discarded != 1 || rep.Encoded != 0 {
		t.Errorf("unoptimizable vote should be discarded: %+v", rep)
	}
}

func TestSolveMultiConflictingVotes(t *testing.T) {
	// Two users vote opposite best answers on the same query: at most one
	// can be satisfied, and the solve must not error.
	g, q, answers := twoAnswer(t)
	x, y := answers[0], answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vNeg, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	vPos, err := e.CollectVote(q, answers, x)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.SolveMulti([]vote.Vote{vNeg, vPos})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Encoded != 2 {
		t.Errorf("both conflicting votes should encode: %+v", rep)
	}
	if rep.Satisfied > 1 {
		t.Errorf("conflicting constraints cannot both hold: %+v", rep)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMultiReducedMode(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	e, err := New(g, Options{Mode: sgp.Reduced})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SolveMulti([]vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	if r, _ := e.RankOf(q, y, answers); r != 1 {
		t.Errorf("reduced mode: voted answer ranks %d, want 1", r)
	}
}

func TestSolveSplitMergeTwoRegions(t *testing.T) {
	// Four independent query regions, each with a negative vote; all four
	// rankings must flip regardless of how AP groups them.
	g := graph.New(0)
	type region struct {
		q       graph.NodeID
		answers []graph.NodeID
		best    graph.NodeID
	}
	regions := make([]region, 4)
	for i := range regions {
		q := g.AddNodes(5)
		a, b, x, y := q+1, q+2, q+3, q+4
		g.MustSetEdge(q, a, 0.6)
		g.MustSetEdge(q, b, 0.4)
		g.MustSetEdge(a, x, 1)
		g.MustSetEdge(b, y, 1)
		regions[i] = region{q: q, answers: []graph.NodeID{x, y}, best: y}
	}
	for workers := 1; workers <= 4; workers += 3 {
		gg := g.Clone()
		e, err := New(gg, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		votes := make([]vote.Vote, 0, len(regions))
		for _, r := range regions {
			v, err := e.CollectVote(r.q, r.answers, r.best)
			if err != nil {
				t.Fatal(err)
			}
			votes = append(votes, v)
		}
		rep, err := e.SolveSplitMerge(votes)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clusters < 1 {
			t.Errorf("workers=%d: clusters = %d", workers, rep.Clusters)
		}
		if rep.Encoded != 4 {
			t.Errorf("workers=%d: encoded = %d, want 4", workers, rep.Encoded)
		}
		for i, r := range regions {
			if got, _ := e.RankOf(r.q, r.best, r.answers); got != 1 {
				t.Errorf("workers=%d region %d: rank = %d, want 1", workers, i, got)
			}
		}
		if err := gg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSolveSplitMergeSingleVote(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.SolveSplitMerge([]vote.Vote{v})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clusters != 1 {
		t.Errorf("single vote should form one cluster, got %d", rep.Clusters)
	}
	if r, _ := e.RankOf(q, y, answers); r != 1 {
		t.Errorf("rank = %d, want 1", r)
	}
}

func TestSolveEmptyVoteSets(t *testing.T) {
	g, _, _ := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func([]vote.Vote) (*Report, error){
		"single": e.SolveSingle,
		"multi":  e.SolveMulti,
		"sm":     e.SolveSplitMerge,
	} {
		rep, err := fn(nil)
		if err != nil {
			t.Errorf("%s: empty vote set should succeed: %v", name, err)
			continue
		}
		if rep.Votes != 0 || rep.Encoded != 0 {
			t.Errorf("%s: report = %+v", name, rep)
		}
	}
}

func TestNormalizeModes(t *testing.T) {
	for _, mode := range []NormalizeMode{CapSum, UnitSum, NoNormalize} {
		g, q, answers := twoAnswer(t)
		y := answers[1]
		e, err := New(g, Options{Normalize: mode})
		if err != nil {
			t.Fatal(err)
		}
		v, err := e.CollectVote(q, answers, y)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.SolveSingle([]vote.Vote{v}); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		sum := g.OutWeightSum(q)
		switch mode {
		case CapSum:
			if sum > 1+1e-9 {
				t.Errorf("CapSum: out sum = %v, want ≤ 1", sum)
			}
		case UnitSum:
			if math.Abs(sum-1.0) > 1e-9 {
				t.Errorf("UnitSum: out sum = %v, want 1", sum)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergeDeltasRule(t *testing.T) {
	g, _, _ := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := graph.EdgeKey{From: 0, To: 1} // q→a, weight 0.6
	// The paper's example: deltas ⟨−0.01, +0.03, +0.07⟩ with cluster sizes
	// 10, 8, 9 → weighted sum = 0.77 ≥ 0 → take the max, +0.07.
	results := []clusterResult{
		{votes: 10, deltas: map[graph.EdgeKey]float64{k: -0.01}},
		{votes: 8, deltas: map[graph.EdgeKey]float64{k: +0.03}},
		{votes: 9, deltas: map[graph.EdgeKey]float64{k: +0.07}},
	}
	changes := e.mergeDeltas(results)
	if got, want := changes[k], 0.6+0.07; math.Abs(got-want) > 1e-12 {
		t.Errorf("merged weight = %v, want %v", got, want)
	}
	// Flip the sizes so the weighted sum goes negative → take the min.
	results[0].votes = 1000
	changes = e.mergeDeltas(results)
	if got, want := changes[k], 0.6-0.01; math.Abs(got-want) > 1e-12 {
		t.Errorf("merged weight = %v, want %v", got, want)
	}
	// Single-cluster edge takes its own delta even when negative.
	solo := []clusterResult{{votes: 3, deltas: map[graph.EdgeKey]float64{k: -0.2}}}
	changes = e.mergeDeltas(solo)
	if got, want := changes[k], 0.4; math.Abs(got-want) > 1e-12 {
		t.Errorf("solo merged weight = %v, want %v", got, want)
	}
	// Clamping at the bounds.
	big := []clusterResult{{votes: 1, deltas: map[graph.EdgeKey]float64{k: 5}}}
	if got := e.mergeDeltas(big)[k]; got != 1 {
		t.Errorf("clamped weight = %v, want 1", got)
	}
	neg := []clusterResult{{votes: 1, deltas: map[graph.EdgeKey]float64{k: -5}}}
	if got := e.mergeDeltas(neg)[k]; got != sgp.DefaultLowerBound {
		t.Errorf("clamped weight = %v, want lower bound", got)
	}
}

func TestApplyWeightsEmpty(t *testing.T) {
	g, _, _ := twoAnswer(t)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	applied, err := e.applyWeights(nil)
	if err != nil {
		t.Errorf("empty changes should be a no-op: %v", err)
	}
	if len(applied) != 0 {
		t.Errorf("empty changes reported %d applied weights", len(applied))
	}
}

func TestKMedoidsClusterOption(t *testing.T) {
	g := graph.New(0)
	type region struct {
		q       graph.NodeID
		answers []graph.NodeID
		best    graph.NodeID
	}
	regions := make([]region, 3)
	for i := range regions {
		q := g.AddNodes(5)
		a, b, x, y := q+1, q+2, q+3, q+4
		g.MustSetEdge(q, a, 0.6)
		g.MustSetEdge(q, b, 0.4)
		g.MustSetEdge(a, x, 1)
		g.MustSetEdge(b, y, 1)
		regions[i] = region{q: q, answers: []graph.NodeID{x, y}, best: y}
	}
	e, err := New(g, Options{Cluster: KMedoidsCluster, ClusterK: 3})
	if err != nil {
		t.Fatal(err)
	}
	votes := make([]vote.Vote, 0, len(regions))
	for _, r := range regions {
		v, err := e.CollectVote(r.q, r.answers, r.best)
		if err != nil {
			t.Fatal(err)
		}
		votes = append(votes, v)
	}
	rep, err := e.SolveSplitMerge(votes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clusters != 3 {
		t.Errorf("clusters = %d, want 3 (pinned k)", rep.Clusters)
	}
	for i, r := range regions {
		if got, _ := e.RankOf(r.q, r.best, r.answers); got != 1 {
			t.Errorf("region %d: rank = %d, want 1", i, got)
		}
	}
}

func TestClusterOptionValidation(t *testing.T) {
	g, _, _ := twoAnswer(t)
	if _, err := New(g, Options{Cluster: ClusterAlgo(7)}); err == nil {
		t.Errorf("bad cluster algo should fail")
	}
	if _, err := New(g, Options{ClusterK: -1}); err == nil {
		t.Errorf("negative ClusterK should fail")
	}
}

// A positive vote with a comfortable margin should leave the graph nearly
// untouched: the preconditioned, annealed sigmoid objective must not leak
// gradient into already-satisfied constraints (regression for the
// over-correction failure mode described in DESIGN.md §5).
func TestPositiveVoteMinimalDisturbance(t *testing.T) {
	g := graph.New(0)
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x := g.AddNode("x")
	y := g.AddNode("y")
	g.MustSetEdge(q, a, 0.8)
	g.MustSetEdge(q, b, 0.2)
	g.MustSetEdge(a, x, 1)
	g.MustSetEdge(b, y, 1)
	before := g.Clone()
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	answers := []graph.NodeID{x, y}
	v, err := e.CollectVote(q, answers, x)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != vote.Positive {
		t.Fatalf("premise broken: vote is %v", v.Kind)
	}
	if _, err := e.SolveMulti([]vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	var maxDrift float64
	before.Edges(func(from, to graph.NodeID, w float64) {
		if d := math.Abs(g.Weight(from, to) - w); d > maxDrift {
			maxDrift = d
		}
	})
	if maxDrift > 0.05 {
		t.Errorf("positive vote drifted weights by %v", maxDrift)
	}
	if r, _ := e.RankOf(q, x, answers); r != 1 {
		t.Errorf("positive vote changed the top answer")
	}
}

// Property: on random workloads, every solver leaves the graph valid with
// all weights in (0, 1].
func TestQuickSolversPreserveGraphValidity(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		host, err := synthRandom(80, 240, seed)
		if err != nil {
			t.Fatal(err)
		}
		aug := graph.Augment(host)
		rng := newRand(seed)
		var answers []graph.NodeID
		for i := 0; i < 10; i++ {
			ents := []graph.NodeID{graph.NodeID(rng.Intn(80)), graph.NodeID(rng.Intn(80))}
			if ents[0] == ents[1] {
				ents[1] = (ents[1] + 1) % 80
			}
			a, err := aug.AttachAnswer("", ents, []float64{1, 1})
			if err != nil {
				t.Fatal(err)
			}
			answers = append(answers, a)
		}
		q, err := aug.AttachQuery("", []graph.NodeID{graph.NodeID(rng.Intn(80))}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		for _, solver := range []string{"single", "multi", "sm"} {
			g2 := host.Clone()
			e, err := New(g2, Options{K: 6, L: 3})
			if err != nil {
				t.Fatal(err)
			}
			ranked, err := e.Rank(q, answers)
			if err != nil {
				t.Fatal(err)
			}
			if len(ranked) < 2 || ranked[1].Score == 0 {
				continue
			}
			list := make([]graph.NodeID, 0, len(ranked))
			for _, r := range ranked {
				if r.Score > 0 {
					list = append(list, r.Node)
				}
			}
			v, err := vote.FromRanking(q, list, list[len(list)-1])
			if err != nil {
				t.Fatal(err)
			}
			switch solver {
			case "single":
				_, err = e.SolveSingle([]vote.Vote{v})
			case "multi":
				_, err = e.SolveMulti([]vote.Vote{v})
			case "sm":
				_, err = e.SolveSplitMerge([]vote.Vote{v})
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, solver, err)
			}
			if err := g2.Validate(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, solver, err)
			}
			bad := false
			g2.Edges(func(_, _ graph.NodeID, w float64) {
				if w < 0 || w > 1+1e-9 {
					bad = true
				}
			})
			if bad {
				t.Fatalf("seed %d %s: weight out of range", seed, solver)
			}
		}
	}
}

// Vote credibility: when two users cast conflicting votes on the same
// query, the heavily-weighted vote should win the tie-break.
func TestVoteCredibilityWeightBreaksConflict(t *testing.T) {
	run := func(heavyOnY bool) graph.NodeID {
		g, q, answers := twoAnswer(t)
		x, y := answers[0], answers[1]
		e, err := New(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		vy, err := e.CollectVote(q, answers, y) // negative: promote y
		if err != nil {
			t.Fatal(err)
		}
		vx, err := e.CollectVote(q, answers, x) // positive: keep x
		if err != nil {
			t.Fatal(err)
		}
		if heavyOnY {
			vy.Weight = 10
			vx.Weight = 0.1
		} else {
			vy.Weight = 0.1
			vx.Weight = 10
		}
		if _, err := e.SolveMulti([]vote.Vote{vy, vx}); err != nil {
			t.Fatal(err)
		}
		ranked, err := e.Rank(q, answers)
		if err != nil {
			t.Fatal(err)
		}
		return ranked[0].Node
	}
	g, _, answers := twoAnswer(t)
	_ = g
	x, y := answers[0], answers[1]
	if got := run(true); got != y {
		t.Errorf("heavy vote for y lost: top = %d", got)
	}
	if got := run(false); got != x {
		t.Errorf("heavy vote for x lost: top = %d", got)
	}
}

func TestSolveErrorPropagation(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	// A MaxPaths budget of 1 makes enumeration fail during encoding.
	e, err := New(g, Options{MaxPaths: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := vote.Vote{Kind: vote.Negative, Query: q, Ranked: answers, Best: y}
	if _, err := e.SolveMulti([]vote.Vote{v}); err == nil {
		t.Errorf("multi: enumeration overflow should propagate")
	}
	if _, err := e.SolveSplitMerge([]vote.Vote{v}); err == nil {
		t.Errorf("split-merge: enumeration overflow should propagate")
	}
	if _, err := e.SolveSingle([]vote.Vote{v}); err == nil {
		t.Errorf("single: enumeration overflow should propagate")
	}
	// Invalid votes are rejected up front.
	bad := vote.Vote{Kind: vote.Negative, Query: q, Ranked: answers, Best: 999}
	e2, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.SolveMulti([]vote.Vote{bad}); err == nil {
		t.Errorf("multi: invalid vote should fail")
	}
	if _, err := e2.SolveSplitMerge([]vote.Vote{bad}); err == nil {
		t.Errorf("split-merge: invalid vote should fail")
	}
}

func TestSolveSplitMergeParallelErrorPropagation(t *testing.T) {
	// Two disjoint regions so AP forms ≥ 2 clusters, plus a MaxPaths
	// budget that only fails once solving begins: the parallel path must
	// surface the error.
	g := graph.New(0)
	var votes []vote.Vote
	for i := 0; i < 3; i++ {
		q := g.AddNodes(5)
		a, b, x, y := q+1, q+2, q+3, q+4
		g.MustSetEdge(q, a, 0.6)
		g.MustSetEdge(q, b, 0.4)
		g.MustSetEdge(a, x, 1)
		g.MustSetEdge(b, y, 1)
		votes = append(votes, vote.Vote{Kind: vote.Negative, Query: q, Ranked: []graph.NodeID{x, y}, Best: y})
	}
	// MaxPaths 2 lets the judge (2 targets, 1 path each) pass but the
	// encoder (2 answers × 1 path + margin scaling needs both) overflow.
	e, err := New(g, Options{Workers: 3, MaxPaths: 2, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.SolveSplitMerge(votes)
	// Whether clustering or encoding hits the limit first, the error must
	// not be swallowed by the worker pool.
	if err == nil {
		// If the tiny budget happened to suffice, force the serial bound.
		t.Skip("path budget was sufficient; nothing to propagate")
	}
}

// The whole point of vote optimization is that FUTURE questions benefit:
// a fresh query node with the same attachment as the voted one must see
// the flipped ranking. (Regression: the solver once "satisfied" votes by
// adjusting the voted query node's own attachment weights, which no
// future question shares.)
func TestVoteGeneralizesToFreshQuery(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SolveMulti([]vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	// Attach a brand-new query node with the original attachment weights.
	q2 := g.AddNodes(1)
	g.MustSetEdge(q2, g.Lookup("a"), 0.6)
	g.MustSetEdge(q2, g.Lookup("b"), 0.4)
	if r, _ := e.RankOf(q2, y, answers); r != 1 {
		t.Errorf("fresh query does not see the optimization: rank %d", r)
	}
	// The voted query's own attachment weights are untouched.
	if w := g.Weight(q, g.Lookup("a")); w != 0.6 {
		t.Errorf("query attachment weight changed: %v", w)
	}
	if w := g.Weight(q, g.Lookup("b")); w != 0.4 {
		t.Errorf("query attachment weight changed: %v", w)
	}
}

// After any solve, no touched node's out-sum may exceed max(1, its
// pre-solve sum): the node-capacity constraints plus CapSum guarantee
// walk-valid weights.
func TestCapacityInvariantAfterSolve(t *testing.T) {
	g, q, answers := twoAnswer(t)
	pre := map[graph.NodeID]float64{}
	for i := 0; i < g.NumNodes(); i++ {
		pre[graph.NodeID(i)] = g.OutWeightSum(graph.NodeID(i))
	}
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, answers[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SolveMulti([]vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	for n, p := range pre {
		cap := p
		if cap < 1 {
			cap = 1
		}
		if s := g.OutWeightSum(n); s > cap+1e-6 {
			t.Errorf("node %d out-sum %v exceeds cap %v", n, s, cap)
		}
	}
}
