package core

import (
	"math"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
)

// pushHost builds a host graph with two structurally disjoint regions so
// retention tests can change one side without touching the other:
//
//	a→x→u (left), b→y→v (right), all unit-ish weights.
func pushHost(t testing.TB) (g *graph.Graph, a, b, x, y graph.NodeID) {
	t.Helper()
	g = graph.New(0)
	a = g.AddNode("a")
	x = g.AddNode("x")
	u := g.AddNode("u")
	b = g.AddNode("b")
	y = g.AddNode("y")
	v := g.AddNode("v")
	g.MustSetEdge(a, x, 0.9)
	g.MustSetEdge(x, u, 0.5)
	g.MustSetEdge(b, y, 0.8)
	g.MustSetEdge(y, v, 0.5)
	return g, a, b, x, y
}

// TestPushBackendMatchesEnum: the push backend must rank like the
// enumerator within the certified bound, expose PushStats, and keep
// serving correctly across a weight flush (the repair path).
func TestPushBackendMatchesEnum(t *testing.T) {
	build := func(scorer pathidx.Backend) *Engine {
		g, _, _, _, _ := pushHost(t)
		e, err := New(g, Options{Scorer: scorer, Normalize: NoNormalize})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	pushE := build(pathidx.BackendPush)
	enumE := build(pathidx.BackendEnum)
	if _, ok := enumE.PushStats(); ok {
		t.Fatal("enum engine reports push stats")
	}
	if _, ok := pushE.PushStats(); !ok {
		t.Fatal("push engine has no push stats")
	}

	g := pushE.Graph()
	seeds := []graph.NodeID{g.Lookup("a"), g.Lookup("b")}
	ws := []float64{0.5, 0.5}
	cands := []graph.NodeID{g.Lookup("x"), g.Lookup("y"), g.Lookup("u"), g.Lookup("v")}
	compare := func(stage string) {
		gotP, _, err := pushE.Serving().RankSeededCached("q", seeds, ws, cands, 0)
		if err != nil {
			t.Fatalf("%s: push rank: %v", stage, err)
		}
		gotE, _, err := enumE.Serving().RankSeededCached("q", seeds, ws, cands, 0)
		if err != nil {
			t.Fatalf("%s: enum rank: %v", stage, err)
		}
		for i := range gotE {
			if gotP[i].Node != gotE[i].Node {
				t.Fatalf("%s: rank[%d] node %d vs %d", stage, i, gotP[i].Node, gotE[i].Node)
			}
			if d := math.Abs(gotP[i].Score - gotE[i].Score); d > 1e-5 {
				t.Fatalf("%s: rank[%d] score diff %v", stage, i, d)
			}
		}
	}
	compare("cold")
	st, _ := pushE.PushStats()
	if st.ColdRanks != 1 || st.TrackedSeeds != 1 || st.Pushes == 0 {
		t.Fatalf("after cold rank: %+v", st)
	}

	// Flush: change one weight on both engines, re-rank, re-compare. The
	// push engine serves the repaired tracked state (no new cold rank).
	wc := []WeightChange{{From: g.Lookup("a"), To: g.Lookup("x"), Weight: 0.4}}
	if err := pushE.ApplyWeightSet(wc); err != nil {
		t.Fatal(err)
	}
	if err := enumE.ApplyWeightSet(wc); err != nil {
		t.Fatal(err)
	}
	compare("post-flush")
	st, _ = pushE.PushStats()
	if st.ColdRanks != 1 {
		t.Fatalf("repair did not serve the tracked state: %+v", st)
	}
	if st.Updates < 2 {
		t.Fatalf("updates = %d, want one per publish ≥ 2", st.Updates)
	}
}

// TestPushBackendStaleSnapshotFallsBack: a reader holding a pre-flush
// snapshot must still get exact answers — the push tracker refuses the
// stale epoch and the enumerator serves the request.
func TestPushBackendStaleSnapshotFallsBack(t *testing.T) {
	g, a, b, _, _ := pushHost(t)
	e, err := New(g, Options{Scorer: pathidx.BackendPush, Normalize: NoNormalize})
	if err != nil {
		t.Fatal(err)
	}
	old := e.Serving()
	if err := e.ApplyWeightSet([]WeightChange{{From: a, To: g.Lookup("x"), Weight: 0.2}}); err != nil {
		t.Fatal(err)
	}
	ranked, _, err := old.RankSeededCached("stale", []graph.NodeID{a, b}, []float64{0.5, 0.5},
		[]graph.NodeID{g.Lookup("u"), g.Lookup("v")}, 0)
	if err != nil {
		t.Fatalf("stale snapshot rank: %v", err)
	}
	if len(ranked) != 2 {
		t.Fatalf("stale snapshot returned %d results", len(ranked))
	}
	st, _ := e.PushStats()
	if st.StaleFallbacks == 0 {
		t.Fatal("stale read did not register a fallback")
	}
}

// TestRankCacheDeltaRetention: a republish with a known delta must retain
// cached rankings whose seeds cannot reach any changed edge and drop the
// rest — for both backends, since retention is backend-independent.
func TestRankCacheDeltaRetention(t *testing.T) {
	for _, backend := range []pathidx.Backend{pathidx.BackendEnum, pathidx.BackendPush} {
		t.Run(backend.String(), func(t *testing.T) {
			g, a, b, _, y := pushHost(t)
			e, err := New(g, Options{Scorer: backend, Normalize: NoNormalize})
			if err != nil {
				t.Fatal(err)
			}
			cands := []graph.NodeID{g.Lookup("u"), g.Lookup("v")}
			rank := func(key string, seed graph.NodeID) bool {
				_, hit, err := e.Serving().RankSeededCached(key, []graph.NodeID{seed}, []float64{1}, cands, 0)
				if err != nil {
					t.Fatal(err)
				}
				return hit
			}
			rank("left", a)
			rank("right", b)

			// Change an edge only the right component can reach.
			if err := e.ApplyWeightSet([]WeightChange{{From: y, To: g.Lookup("v"), Weight: 0.3}}); err != nil {
				t.Fatal(err)
			}
			if !rank("left", a) {
				t.Fatal("left entry dropped despite provably-untouched seeds")
			}
			if rank("right", b) {
				t.Fatal("right entry survived a reachable weight change")
			}

			// A no-op flush (same weights) retains everything.
			if err := e.ApplyWeightSet([]WeightChange{{From: y, To: g.Lookup("v"), Weight: 0.3}}); err != nil {
				t.Fatal(err)
			}
			if !rank("left", a) || !rank("right", b) {
				t.Fatal("no-op flush dropped cache entries")
			}

			// An unknown delta (publish(nil): restore/import semantics)
			// drops the cache wholesale.
			if err := e.publish(nil); err != nil {
				t.Fatal(err)
			}
			if rank("left", a) || rank("right", b) {
				t.Fatal("unknown delta retained cache entries")
			}
		})
	}
}

// TestEdgeDeltas: dedup is last-write-wins, unchanged weights are
// filtered, output is sorted, and the result is non-nil even when empty.
func TestEdgeDeltas(t *testing.T) {
	g, a, _, x, _ := pushHost(t)
	csr := graph.Compile(g)
	ds := edgeDeltas(csr, []WeightChange{
		{From: a, To: x, Weight: 0.7},
		{From: a, To: x, Weight: 0.9}, // last write wins; equals old 0.9 → filtered
	})
	if ds == nil || len(ds) != 0 {
		t.Fatalf("edgeDeltas = %#v, want empty non-nil", ds)
	}
	ds = edgeDeltas(csr, []WeightChange{{From: a, To: x, Weight: 0.25}})
	if len(ds) != 1 || ds[0].Old != 0.9 || ds[0].New != 0.25 {
		t.Fatalf("edgeDeltas = %+v", ds)
	}
}
