package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"kgvote/internal/sgp"
	"kgvote/internal/signomial"
	"kgvote/internal/vote"
)

// SolveSingle is the basic single-vote solution (Algorithm 1): it
// processes the negative votes sequentially in a greedy manner, encoding
// each as its own SGP with hard constraints, solving it, updating the
// graph, and normalizing, before moving to the next vote. Positive votes
// are ignored (Section IV-B: a positive vote's best answer is already
// first, so there is nothing to optimize).
func (e *Engine) SolveSingle(votes []vote.Vote) (*Report, error) {
	return e.SolveSingleCtx(context.Background(), votes)
}

// SolveSingleCtx is SolveSingle with deadline propagation. Each greedy
// sub-solve applies its result before the next starts, so the
// cancellation contract is per-vote: a context cancelled before the
// first vote was processed aborts with the context error (nothing
// applied, callers retry the whole batch); cancelled between votes it
// returns the report accumulated so far, marked Partial with Consumed
// set to the processed prefix — the unprocessed remainder was neither
// applied nor discarded, so callers (Stream.FlushCtx) requeue it.
// Cancellation mid-solve stops the running sub-solve at its best-so-far
// iterate and applies it; that vote counts as consumed.
func (e *Engine) SolveSingleCtx(ctx context.Context, votes []vote.Vote) (*Report, error) {
	report := &Report{Votes: len(votes), Clusters: 1}
	consumed := 0
	for i, v := range votes {
		if err := ctxErr(ctx); err != nil {
			if consumed == 0 {
				return nil, fmt.Errorf("core: single-vote flush cancelled before solve: %w", err)
			}
			report.Partial = true
			break
		}
		if v.Kind == vote.Positive {
			report.Discarded++
			consumed++
			continue
		}
		sub, err := e.solveOneVote(ctx, v)
		if err != nil {
			return nil, fmt.Errorf("core: single-vote %d: %w", i, err)
		}
		report.merge(sub)
		consumed++
	}
	report.Consumed = consumed
	e.metrics.observeFlushStages(report)
	return report, nil
}

// solveOneVote encodes and solves the SGP of a single negative vote
// against the current graph, then applies the result. The vote's walks
// are enumerated once: a per-vote cache (the graph changes between the
// greedy loop's votes, so no wider scope is sound) is shared by the
// reachability probe and the encoder.
func (e *Engine) solveOneVote(ctx context.Context, v vote.Vote) (rep Report, err error) {
	tEnum := time.Now()
	fc, err := e.newFlushEnum([]vote.Vote{v})
	if err != nil {
		return rep, err
	}
	rep.EnumSeconds = time.Since(tEnum).Seconds()
	defer func() { rep.EnumCacheHits, rep.EnumCacheMisses = fc.stats() }()
	reachable, err := e.bestReachable(v, fc)
	if err != nil {
		return rep, err
	}
	if !reachable {
		rep.Discarded = 1
		return rep, nil
	}
	p := e.newProgram()
	// The single-vote objective is only the weight-change distance of
	// Equation (12); there are no deviation variables.
	p.Lambda1 = 1
	p.Lambda2 = 0
	n, err := e.encodeVote(p, v, false, fc, &signomial.Builder{})
	if err != nil {
		return rep, err
	}
	e.addCapacityConstraints(p)
	tSolve := time.Now()
	// Routed through the cluster solver so an injected farm dispatcher
	// offloads single-vote solves too (the Lambda overrides ride along in
	// the serialized program; the mode override rides in the params).
	sol, err := e.solver().SolveProgram(ctx, p, sgp.Params{Mode: sgp.Full, AL: e.opt.AL})
	if err != nil {
		return rep, err
	}
	rep.Partial = sol.Stopped
	rep.SolveSeconds = time.Since(tSolve).Seconds()
	changes := extractChanges(p, sol.X)
	rep.Encoded = 1
	rep.Variables = p.NumVars()
	rep.Constraints = n
	// The first n hard constraints are the vote's; the rest are node
	// capacity constraints.
	for i := 0; i < n && i < len(sol.HardSatisfied); i++ {
		if sol.HardSatisfied[i] {
			rep.Satisfied++
		}
	}
	rep.Outer = sol.Outer
	rep.InnerIters = sol.InnerIters
	rep.ChangedEdges = countChanged(p, sol.X)
	e.putProgram(p)
	applied, err := e.applyWeights(changes)
	rep.Applied = applied
	return rep, err
}

// countChanged counts edge variables that moved away from their initial
// value by more than a hair.
func countChanged(p *sgp.Program, x []float64) int {
	n := 0
	for i, v := range p.Vars {
		if v.Kind == sgp.EdgeVar && math.Abs(x[i]-v.Init) > 1e-9 {
			n++
		}
	}
	return n
}
