package core

// Report summarizes one optimization run.
type Report struct {
	// Votes is the number of votes supplied.
	Votes int
	// Encoded is the number of votes that produced constraints.
	Encoded int
	// Discarded counts votes dropped by the judgment algorithm (multi-vote
	// and split-and-merge) or skipped because the best answer is
	// unreachable / already top-ranked (single-vote).
	Discarded int
	// Clusters is the number of affinity-propagation clusters (split-and-
	// merge only; 1 otherwise).
	Clusters int
	// Variables is the total number of SGP variables across all programs.
	Variables int
	// Constraints is the total number of SGP constraints.
	Constraints int
	// Satisfied is the number of original vote constraints holding at the
	// solution(s).
	Satisfied int
	// ChangedEdges is the number of distinct edges whose weight moved.
	ChangedEdges int
	// Outer and InnerIters aggregate solver statistics.
	Outer, InnerIters int
}

// merge folds another report's counters into r (used when a run solves
// several programs: single-vote greedy loop, split-and-merge clusters).
func (r *Report) merge(o Report) {
	r.Encoded += o.Encoded
	r.Discarded += o.Discarded
	r.Variables += o.Variables
	r.Constraints += o.Constraints
	r.Satisfied += o.Satisfied
	r.ChangedEdges += o.ChangedEdges
	r.Outer += o.Outer
	r.InnerIters += o.InnerIters
}
