package core

import (
	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

// WeightChange records one edge's final weight after a solve has been
// applied and normalized — an absolute value, not a delta, so replaying
// the sequence of WeightChange lists reproduces the graph bit-for-bit.
type WeightChange struct {
	From, To graph.NodeID
	Weight   float64
}

// Report summarizes one optimization run.
type Report struct {
	// Votes is the number of votes supplied.
	Votes int
	// Encoded is the number of votes that produced constraints.
	Encoded int
	// Discarded counts votes dropped by the judgment algorithm (multi-vote
	// and split-and-merge) or skipped because the best answer is
	// unreachable / already top-ranked (single-vote).
	Discarded int
	// Quarantined counts votes excluded from the flush because their
	// voter's reputation was below the quarantine threshold at flush time
	// (Stream.FlushCtx with a VoterPolicy installed). Quarantined votes
	// are consumed — dropped permanently, never requeued.
	Quarantined int
	// Clusters is the number of affinity-propagation clusters (split-and-
	// merge only; 1 otherwise).
	Clusters int
	// Variables is the total number of SGP variables across all programs.
	Variables int
	// Constraints is the total number of SGP constraints.
	Constraints int
	// Satisfied is the number of original vote constraints holding at the
	// solution(s).
	Satisfied int
	// ChangedEdges is the number of distinct edges whose weight moved.
	ChangedEdges int
	// Outer and InnerIters aggregate solver statistics.
	Outer, InnerIters int
	// EnumSeconds through MergeSeconds are the wall-clock durations of the
	// flush pipeline's stages: walk enumeration (cache prewarm), judgment
	// filtering, vote clustering (split-and-merge only), SGP solving, and
	// delta merge + weight application.
	EnumSeconds    float64
	JudgeSeconds   float64
	ClusterSeconds float64
	SolveSeconds   float64
	MergeSeconds   float64
	// EnumCacheHits and EnumCacheMisses count the flush's enumeration-
	// cache outcomes; misses equal the Enumerate invocations actually run.
	EnumCacheHits   uint64
	EnumCacheMisses uint64
	// Partial reports that the flush's deadline expired mid-solve: the
	// applied weight set is the solver's best-so-far iterate, not a
	// converged optimum (graceful degradation, DESIGN.md §12).
	Partial bool
	// Consumed is the number of leading input votes the solver fully
	// processed (applied or legitimately discarded). The batch solvers
	// always consume the whole input — a mid-solve cancellation still
	// applies best-so-far weights for every vote — but the single-vote
	// greedy loop can be cancelled between sub-solves, leaving
	// Consumed < Votes; Stream.FlushCtx requeues the unprocessed
	// remainder so no admitted vote is silently dropped.
	Consumed int `json:"-"`
	// Applied lists the final post-normalization weight of every edge the
	// run touched, in application order (later entries for the same edge
	// supersede earlier ones). The durability layer logs it so crash
	// recovery can reapply a flush without re-solving; it is omitted from
	// JSON responses.
	Applied []WeightChange `json:"-"`
	// KeptVotes and RejectedVotes are the judgment filter's verdict lists
	// (multi-vote and split-and-merge only — the single-vote greedy loop
	// has no batch judgment pass). Stream.FlushCtx feeds them to the
	// installed VoterPolicy so judgment outcomes move voter reputation;
	// they are never serialized.
	KeptVotes     []vote.Vote `json:"-"`
	RejectedVotes []vote.Vote `json:"-"`
}

// merge folds another report's counters into r (used when a run solves
// several programs: single-vote greedy loop, split-and-merge clusters).
func (r *Report) merge(o Report) {
	r.Encoded += o.Encoded
	r.Discarded += o.Discarded
	r.Variables += o.Variables
	r.Constraints += o.Constraints
	r.Satisfied += o.Satisfied
	r.ChangedEdges += o.ChangedEdges
	r.Outer += o.Outer
	r.InnerIters += o.InnerIters
	r.EnumSeconds += o.EnumSeconds
	r.JudgeSeconds += o.JudgeSeconds
	r.ClusterSeconds += o.ClusterSeconds
	r.SolveSeconds += o.SolveSeconds
	r.MergeSeconds += o.MergeSeconds
	r.EnumCacheHits += o.EnumCacheHits
	r.EnumCacheMisses += o.EnumCacheMisses
	r.Partial = r.Partial || o.Partial
	r.Applied = append(r.Applied, o.Applied...)
	r.KeptVotes = append(r.KeptVotes, o.KeptVotes...)
	r.RejectedVotes = append(r.RejectedVotes, o.RejectedVotes...)
}
