package core

import (
	"fmt"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/sgp"
	"kgvote/internal/signomial"
	"kgvote/internal/vote"
)

// similaritySignomial turns a set of walks into the signomial
// Σ_z c·(1−c)^{|z|} · Π x_edge, registering every edge on the walks as a
// program variable initialized to its current graph weight.
//
// Out-edges of the query node itself are frozen: they fold into the
// monomial coefficient instead of becoming variables. Those weights are
// derived from the question's text (Section III-A) and are re-derived for
// every future question, so "optimizing" them satisfies the vote without
// teaching the knowledge graph anything — exactly the failure the paper's
// Fig. 1 avoids, where the q→entity weights stay 0.33 while the entity
// edges change.
func (e *Engine) similaritySignomial(p *sgp.Program, query graph.NodeID, paths []pathidx.Path, b *signomial.Builder) *signomial.Signomial {
	sig := signomial.NewConst(0)
	c := e.opt.C
	for _, walk := range paths {
		coef := c
		b.StartMonomial()
		for i := 0; i < walk.Len(); i++ {
			edge := walk.Edge(i)
			coef *= 1 - c
			if edge.From == query {
				coef *= e.g.Weight(edge.From, edge.To)
				continue
			}
			b.Var(p.EdgeVarIndex(edge, e.g.Weight(edge.From, edge.To)))
		}
		sig.Add(b.Finish(coef))
	}
	return sig.Normalize()
}

// encodeVote adds the constraints of one vote to the program: for every
// non-best answer a in the ranked list,
//
//	S(q, a) − S(q, a*) + margin ≤ 0
//
// as a hard constraint (Equation (11), single-vote) or a soft constraint
// with a deviation variable (Equation (15), multi-vote). It returns the
// number of constraints added.
func (e *Engine) encodeVote(p *sgp.Program, v vote.Vote, soft bool, fc *flushEnum, b *signomial.Builder) (int, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	paths, err := fc.paths(e, v.Query, v.Ranked)
	if err != nil {
		return 0, err
	}
	bestSig := e.similaritySignomial(p, v.Query, paths[v.Best], b)
	// Precondition: divide the vote's constraints by S(q, a*) at the
	// initial point, so residuals are relative similarity gaps of order 1
	// rather than raw scores of order 1e-2. This leaves the feasible set
	// unchanged but puts the sigmoid objective (w = 300) into its intended
	// regime: comfortably-satisfied constraints saturate to 0 instead of
	// leaking gradient that would distort the graph.
	scale := p.EvalAtInit(bestSig)
	if scale < 1e-12 {
		scale = 1e-12
	}
	added := 0
	for _, a := range v.Ranked {
		if a == v.Best {
			continue
		}
		sig := e.similaritySignomial(p, v.Query, paths[a], b)
		sig.AddScaled(bestSig, -1)
		sig.Normalize()
		// The margin is added after preconditioning, making it a relative
		// separation: S(q,a) ≤ (1 − margin)·S(q,a*). A meaningful relative
		// margin keeps the solved ordering stable through the post-solve
		// normalization nudge.
		scaled := signomial.NewConst(e.opt.Margin)
		scaled.AddScaled(sig, 1/scale)
		if soft {
			p.AddWeightedSoftConstraint(scaled, v.EffectiveWeight())
		} else {
			p.AddHardConstraint(scaled)
		}
		added++
	}
	return added, nil
}

// addCapacityConstraints adds one hard constraint per source node whose
// edges are program variables:
//
//	Σ x_e (registered edges of the node) + fixed − cap ≤ 0
//
// where fixed is the node's out-weight outside the program and cap is
// max(1, the node's current out-sum). The solver therefore can never grow
// a node's out-mass beyond what the graph already grants it — which makes
// the post-solve NormalizeEdges step a no-op (the solution is feasible as
// solved) and lets vote constraints use small margins without being
// perturbed after the fact.
func (e *Engine) addCapacityConstraints(p *sgp.Program) {
	type nodeAcc struct {
		vars []int
		sum  float64 // Σ inits of registered vars
	}
	nodes := make(map[graph.NodeID]*nodeAcc)
	order := make([]graph.NodeID, 0)
	for i, v := range p.Vars {
		if v.Kind != sgp.EdgeVar {
			continue
		}
		acc, ok := nodes[v.Edge.From]
		if !ok {
			acc = &nodeAcc{}
			nodes[v.Edge.From] = acc
			order = append(order, v.Edge.From)
		}
		acc.vars = append(acc.vars, i)
		acc.sum += v.Init
	}
	for _, n := range order {
		acc := nodes[n]
		total := e.g.OutWeightSum(n)
		cap := total
		if cap < 1 {
			cap = 1
		}
		fixed := total - acc.sum
		sig := signomial.NewConst(fixed - cap)
		for _, vi := range acc.vars {
			sig.Add(signomial.Monomial(1, vi))
		}
		p.AddHardConstraint(sig)
	}
}

// newProgram returns an sgp.Program configured from the engine options,
// reusing a pooled workspace (variable slices, edge index, constraint
// slices) from an earlier solve when one is available — per-cluster
// solves run back to back every flush and would otherwise rebuild these
// from scratch each time.
func (e *Engine) newProgram() *sgp.Program {
	p, _ := e.progPool.Get().(*sgp.Program)
	if p == nil {
		p = sgp.NewProgram()
	} else {
		p.Reset()
	}
	p.Lambda1 = e.opt.Lambda1
	p.Lambda2 = e.opt.Lambda2
	p.SigmoidW = e.opt.SigmoidW
	return p
}

// putProgram returns a program's workspace to the pool. The caller must
// not retain references into the program afterwards.
func (e *Engine) putProgram(p *sgp.Program) { e.progPool.Put(p) }

// extractChanges reads the solved edge-variable values out of a solution.
func extractChanges(p *sgp.Program, x []float64) map[graph.EdgeKey]float64 {
	out := make(map[graph.EdgeKey]float64)
	for i, v := range p.Vars {
		if v.Kind == sgp.EdgeVar {
			out[v.Edge] = x[i]
		}
	}
	return out
}

// bestReachable reports whether any walk of length ≤ L reaches the vote's
// best answer. Votes whose best answer is unreachable cannot be encoded
// meaningfully (their similarity signomial is identically zero).
func (e *Engine) bestReachable(v vote.Vote, fc *flushEnum) (bool, error) {
	paths, err := fc.paths(e, v.Query, []graph.NodeID{v.Best})
	if err != nil {
		return false, err
	}
	return len(paths[v.Best]) > 0, nil
}

// judge applies the Section V judgment algorithm to one vote, reusing the
// flush's cached walk sets when available.
func (e *Engine) judge(v vote.Vote, fc *flushEnum) (bool, error) {
	if fc == nil {
		return vote.Judge(e.g, v, e.opt.ExtremeConst, e.opt.pathOptions())
	}
	if err := v.Validate(); err != nil {
		return false, err
	}
	if v.Kind == vote.Positive {
		return true, nil
	}
	rank := v.BestRank()
	rival := v.Ranked[rank-2]
	paths, err := fc.paths(e, v.Query, []graph.NodeID{v.Best, rival})
	if err != nil {
		return false, err
	}
	return vote.JudgeWithPaths(v, e.opt.ExtremeConst, e.opt.pathOptions(), paths)
}

// filterVotes partitions votes into encodable and discarded per the
// judgment algorithm, fanning the per-vote judgments out over
// Options.Workers. Positive votes always pass. The partition preserves
// input order regardless of worker scheduling.
func (e *Engine) filterVotes(votes []vote.Vote, fc *flushEnum) (kept, discarded []vote.Vote, err error) {
	oks := make([]bool, len(votes))
	err = runIndexed(e.opt.Workers, len(votes), func(i int) error {
		ok, err := e.judge(votes[i], fc)
		if err != nil {
			return fmt.Errorf("core: judging vote %d: %w", i, err)
		}
		oks[i] = ok
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, v := range votes {
		if oks[i] {
			kept = append(kept, v)
		} else {
			discarded = append(discarded, v)
		}
	}
	return kept, discarded, nil
}
