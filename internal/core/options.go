// Package core implements the paper's graph-optimization framework: the
// single-vote solution (Algorithm 1), the multi-vote solution (Section V),
// and the split-and-merge strategy (Section VI), all on top of the
// internal substrates (pathidx, signomial, sgp, vote, cluster).
package core

import (
	"fmt"

	"kgvote/internal/optimize"
	"kgvote/internal/pathidx"
	"kgvote/internal/ppr"
	"kgvote/internal/sgp"
	"kgvote/internal/vote"
)

// NormalizeMode controls the NormalizeEdges step after weights are
// written back to the graph (Algorithm 1, line 16).
type NormalizeMode int

const (
	// CapSum rescales a touched node's out-weights only when their sum
	// exceeds 1, bringing it back to exactly 1. Weights stay valid
	// (sub-)stochastic transition probabilities while the solver's
	// reductions are preserved. This is the default: a proportional
	// rescale back to the original sum would silently undo the solve on
	// nodes with a single out-edge.
	CapSum NormalizeMode = iota
	// UnitSum rescales each touched node's out-weights to sum to exactly
	// 1 regardless of direction (ablation; closest to a literal reading of
	// Algorithm 1's NormalizeEdges).
	UnitSum
	// NoNormalize skips normalization (ablation).
	NoNormalize
)

// MergeRule selects how split-and-merge combines per-cluster deltas of an
// edge changed in several clusters.
type MergeRule int

const (
	// VoteWeighted is the paper's rule: the sign of Σ_C n_C·Δx_C picks the
	// max (non-negative) or min (negative) delta.
	VoteWeighted MergeRule = iota
	// AverageDeltas takes the vote-weighted mean of the deltas (ablation).
	AverageDeltas
)

// ClusterAlgo selects the clustering algorithm of the split strategy.
type ClusterAlgo int

const (
	// APCluster is the paper's choice: affinity propagation with the
	// median similarity as preference (picks the cluster count itself).
	APCluster ClusterAlgo = iota
	// KMedoidsCluster pins the cluster count to Options.ClusterK
	// (default ⌈√votes⌉), trading the paper's adaptivity for
	// predictability.
	KMedoidsCluster
)

// Options configures an Engine.
type Options struct {
	// C is the restart probability (paper: c ≈ 0.15).
	C float64
	// L is the path-length pruning threshold (paper: 5).
	L int
	// K is the answer-list length (paper: top-20).
	K int
	// Margin ε encodes strict constraint inequalities as ≤ −ε.
	Margin float64
	// Lambda1 and Lambda2 weight the objective terms of Equation (19)
	// (paper: both 0.5).
	Lambda1, Lambda2 float64
	// SigmoidW is the sigmoid steepness of Equation (17) (paper: 300).
	SigmoidW float64
	// ExtremeConst is the shared-edge weight of the judgment algorithm's
	// extreme condition.
	ExtremeConst float64
	// MaxPaths bounds path enumeration per query.
	MaxPaths int
	// Workers bounds the concurrency of the flush pipeline: enumeration
	// prewarm, judgment filtering, edge sets, similarity rows, and the
	// per-cluster solves of the split-and-merge strategy ("distributed"
	// variant when > 1) all fan out over this many pool workers.
	Workers int
	// NoEnumCache disables the per-flush walk-enumeration cache, restoring
	// the legacy up-to-three-enumerations-per-vote flush path. Benchmark /
	// ablation knob: the flush benchmark uses it as the baseline.
	NoEnumCache bool
	// Mode selects the SGP solving strategy for multi-vote programs.
	Mode sgp.Mode
	// Normalize selects the post-solve normalization.
	Normalize NormalizeMode
	// Merge selects the split-and-merge delta combination rule.
	Merge MergeRule
	// Cluster selects the split strategy's clustering algorithm.
	Cluster ClusterAlgo
	// ClusterK fixes the cluster count for KMedoidsCluster (0 = ⌈√votes⌉).
	ClusterK int
	// RankCacheSize bounds the per-snapshot query-rank LRU cache on the
	// serving path (0 = DefaultRankCacheSize, negative = cache disabled).
	RankCacheSize int
	// Scorer selects the serving-path ranking backend: BackendEnum (the
	// exact bounded-walk sweeps — default and exactness oracle) or
	// BackendPush (incremental local push, repaired in O(delta) per
	// flush within a certified additive bound; DESIGN.md §16).
	Scorer pathidx.Backend
	// PushRMax is the local-push residual-drop threshold for
	// BackendPush (0 = ppr.DefaultRMax, negative = exact). Smaller
	// thresholds tighten the certified bound and cost more pushes.
	PushRMax float64
	// PushMaxTracked bounds the push tracker's incrementally maintained
	// seed sets (0 = ppr.DefaultMaxTracked); further seeds rank cold
	// and evict the oldest tracked entry.
	PushMaxTracked int
	// AL tunes the augmented-Lagrangian solver.
	AL optimize.ALOptions
}

// Defaults returns the paper's parameter settings.
func Defaults() Options {
	return Options{
		C:            0.15,
		L:            pathidx.DefaultL,
		K:            20,
		Margin:       sgp.DefaultMargin,
		Lambda1:      0.5,
		Lambda2:      0.5,
		SigmoidW:     sgp.DefaultSigmoidW,
		ExtremeConst: vote.DefaultExtremeConst,
		MaxPaths:     pathidx.DefaultMaxPaths,
		Workers:      1,
		Mode:         sgp.Full,
		Normalize:    CapSum,
	}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.C == 0 {
		o.C = d.C
	}
	if o.L == 0 {
		o.L = d.L
	}
	if o.K == 0 {
		o.K = d.K
	}
	if o.Margin == 0 {
		o.Margin = d.Margin
	}
	if o.Lambda1 == 0 && o.Lambda2 == 0 {
		o.Lambda1, o.Lambda2 = d.Lambda1, d.Lambda2
	}
	if o.SigmoidW == 0 {
		o.SigmoidW = d.SigmoidW
	}
	if o.ExtremeConst == 0 {
		o.ExtremeConst = d.ExtremeConst
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = d.MaxPaths
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("core: restart probability %v outside (0,1)", o.C)
	}
	if o.L < 1 {
		return fmt.Errorf("core: L = %d must be >= 1", o.L)
	}
	if o.K < 2 {
		return fmt.Errorf("core: K = %d must be >= 2 (a vote needs a rival)", o.K)
	}
	if o.Margin < 0 {
		return fmt.Errorf("core: negative margin %v", o.Margin)
	}
	if o.ExtremeConst <= 0 || o.ExtremeConst >= 1 {
		return fmt.Errorf("core: extreme constant %v outside (0,1)", o.ExtremeConst)
	}
	if o.Workers < 1 {
		return fmt.Errorf("core: workers = %d must be >= 1", o.Workers)
	}
	switch o.Normalize {
	case CapSum, UnitSum, NoNormalize:
	default:
		return fmt.Errorf("core: unknown normalize mode %d", o.Normalize)
	}
	switch o.Merge {
	case VoteWeighted, AverageDeltas:
	default:
		return fmt.Errorf("core: unknown merge rule %d", o.Merge)
	}
	switch o.Cluster {
	case APCluster, KMedoidsCluster:
	default:
		return fmt.Errorf("core: unknown cluster algorithm %d", o.Cluster)
	}
	if o.ClusterK < 0 {
		return fmt.Errorf("core: negative ClusterK %d", o.ClusterK)
	}
	if !o.Scorer.Valid() {
		return fmt.Errorf("core: unknown scorer backend %d", o.Scorer)
	}
	if o.PushMaxTracked < 0 {
		return fmt.Errorf("core: negative PushMaxTracked %d", o.PushMaxTracked)
	}
	return nil
}

// pathOptions projects the engine options onto pathidx.Options.
func (o Options) pathOptions() pathidx.Options {
	return pathidx.Options{L: o.L, C: o.C, MaxPaths: o.MaxPaths}
}

// pushOptions projects the engine options onto ppr.PushOptions. The
// restart probability and truncation depth are shared with the
// enumerator, so both backends score the same quantity.
func (o Options) pushOptions() ppr.PushOptions {
	return ppr.PushOptions{C: o.C, L: o.L, RMax: o.PushRMax}
}

// rankCacheSize resolves the effective serving-cache capacity.
func (o Options) rankCacheSize() int {
	switch {
	case o.RankCacheSize < 0:
		return 0
	case o.RankCacheSize == 0:
		return DefaultRankCacheSize
	}
	return o.RankCacheSize
}
