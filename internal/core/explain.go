package core

import (
	"fmt"
	"sort"
	"strings"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
)

// PathContribution is one walk's share of a similarity score.
type PathContribution struct {
	Path pathidx.Path
	// Score is the walk's term P[z]·c·(1−c)^{|z|} of the extended inverse
	// P-distance.
	Score float64
	// Fraction is Score / S(q, a).
	Fraction float64
}

// Explanation decomposes one query→answer similarity into its walks. The
// paper contrasts its framework with end-to-end neural rankers precisely
// on interpretability (Section II); this is that interpretability made
// concrete.
type Explanation struct {
	Query, Answer graph.NodeID
	Similarity    float64
	// Paths holds the top contributing walks, descending by score.
	Paths []PathContribution
	// TotalPaths is the number of walks of length ≤ L (before truncation
	// to the requested top-N).
	TotalPaths int
}

// Explain decomposes S(query, answer) into its constituent walks and
// returns the topN largest contributors (topN ≤ 0 returns all).
func (e *Engine) Explain(query, answer graph.NodeID, topN int) (*Explanation, error) {
	paths, err := pathidx.Enumerate(e.g, query, []graph.NodeID{answer}, e.opt.pathOptions())
	if err != nil {
		return nil, err
	}
	walks := paths[answer]
	ex := &Explanation{Query: query, Answer: answer, TotalPaths: len(walks)}
	c := e.opt.C
	contribs := make([]PathContribution, 0, len(walks))
	var total float64
	for _, w := range walks {
		damp := c
		for i := 0; i < w.Len(); i++ {
			damp *= 1 - c
		}
		s := w.Prob(e.g) * damp
		total += s
		contribs = append(contribs, PathContribution{Path: w, Score: s})
	}
	ex.Similarity = total
	if total > 0 {
		for i := range contribs {
			contribs[i].Fraction = contribs[i].Score / total
		}
	}
	sort.SliceStable(contribs, func(i, j int) bool {
		return contribs[i].Score > contribs[j].Score
	})
	if topN > 0 && len(contribs) > topN {
		contribs = contribs[:topN]
	}
	ex.Paths = contribs
	return ex, nil
}

// Format renders the explanation with node names for human consumption.
func (ex *Explanation) Format(g *graph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "S(%s, %s) = %.6f over %d walks\n",
		nodeLabel(g, ex.Query), nodeLabel(g, ex.Answer), ex.Similarity, ex.TotalPaths)
	for _, pc := range ex.Paths {
		names := make([]string, len(pc.Path.Nodes))
		for i, n := range pc.Path.Nodes {
			names[i] = nodeLabel(g, n)
		}
		fmt.Fprintf(&b, "  %5.1f%%  %.6f  %s\n", 100*pc.Fraction, pc.Score, strings.Join(names, " -> "))
	}
	return b.String()
}

func nodeLabel(g *graph.Graph, id graph.NodeID) string {
	if name := g.Name(id); name != "" {
		return name
	}
	return fmt.Sprintf("#%d", id)
}
